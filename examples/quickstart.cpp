// Quickstart: build a carbon-nanotube FET from its chirality, inspect the
// band structure, sweep its I-V curves, and extract the headline metrics.
//
//   $ ./quickstart
//
// This is the 5-minute tour of the library's device layer; see the other
// examples for circuits, the benchmark engine and the wafer-scale models.
#include <cstdio>

#include "band/cnt.h"
#include "device/cntfet.h"
#include "device/ivmodel.h"

int main() {
  using namespace carbon;

  // 1) Pick a tube. (19,0) is a 1.49 nm semiconducting zigzag CNT.
  const band::Chirality chirality{19, 0};
  const band::CntBandStructure bands(chirality);
  std::printf("CNT(%d,%d): d = %.3f nm, Eg = %.3f eV, %s\n", chirality.n,
              chirality.m, bands.diameter() * 1e9, bands.band_gap(),
              bands.is_metallic() ? "metallic" : "semiconducting");

  // 2) Build a gate-all-around FET on it (paper Fig. 3 geometry).
  device::CntfetParams params;
  params.chirality = chirality;
  params.gate_length = 20e-9;
  params.gate.geometry = device::GateGeometry::kGateAllAround;
  params.gate.t_ox = 3e-9;   // 3 nm HfO2
  params.gate.eps_r = 16.0;
  params.ef_source_ev = -0.10;
  const device::CntfetModel fet(params);

  // 3) Transfer curve at VDS = 0.5 V.
  std::printf("\ntransfer curve (VDS = 0.5 V):\n  vgs[V]   id[uA]\n");
  for (double vg = 0.0; vg <= 0.61; vg += 0.1) {
    std::printf("  %5.2f  %9.4f\n", vg, fet.drain_current(vg, 0.5) * 1e6);
  }

  // 4) Output family: the current saturation that makes it a logic switch.
  std::printf("\noutput curves:\n  vds[V]");
  for (double vg : {0.3, 0.4, 0.5}) std::printf("   id@%.1fV[uA]", vg);
  std::printf("\n");
  for (double vd = 0.1; vd <= 0.51; vd += 0.1) {
    std::printf("  %5.2f", vd);
    for (double vg : {0.3, 0.4, 0.5}) {
      std::printf("   %10.4f", fet.drain_current(vg, vd) * 1e6);
    }
    std::printf("\n");
  }

  // 5) Headline metrics.
  const double ss =
      device::subthreshold_swing_mv_dec(fet, 0.05, 0.20, 0.5);
  const double gain = device::intrinsic_gain(fet, 0.5, 0.4);
  const double ion = fet.drain_current(0.6, 0.5);
  const double ioff = fet.drain_current(0.0, 0.5);
  std::printf("\nSS = %.1f mV/dec, intrinsic gain = %.0f, Ion/Ioff = %.1e\n",
              ss, gain, ion / ioff);
  std::printf("Ion = %.1f uA/tube = %.2f mA/um (diameter-normalized)\n",
              ion * 1e6, ion / (fet.diameter() * 1e6) * 1e3);
  return 0;
}
