// The Fig. 2 experiment as an application: build two inverters from
// complementary FET pairs — one with current saturation, one without —
// sweep their voltage transfer curves, and watch the noise margins vanish
// for the non-saturating pair.  Then do it with a real CNTFET model at
// half-volt supply.
#include <cstdio>
#include <memory>

#include "circuit/cells.h"
#include "circuit/vtc.h"
#include "device/alpha_power.h"
#include "device/cntfet.h"
#include "device/linear_fet.h"

namespace {

void report(const char* label, const carbon::spice::VtcMetrics& m) {
  std::printf(
      "%-22s VM=%.3f V  max|gain|=%6.2f  NML=%.3f V  NMH=%.3f V  %s\n",
      label, m.v_switch, m.max_abs_gain, m.nm_low, m.nm_high,
      m.regenerative ? "[works as logic]" : "[NOT a logic gate]");
}

}  // namespace

int main() {
  using namespace carbon;

  circuit::CellOptions opt;
  opt.v_dd = 1.0;
  opt.c_load = 10e-15;  // the paper's 10 fF load

  std::printf("inverters at VDD = %.1f V, CL = %.0f fF\n\n", opt.v_dd,
              opt.c_load * 1e15);

  // Saturating pair (Fig. 2(a)/(c)).
  auto sat = std::make_shared<device::AlphaPowerModel>(
      device::make_fig2_saturating_params());
  auto bench_sat = circuit::make_inverter(sat, opt);
  report("saturating FETs:", circuit::measure_vtc(bench_sat));

  // Non-saturating pair (Fig. 2(b)/(d)).
  auto lin = std::make_shared<device::LinearFetModel>(
      device::make_fig2_linear_params());
  auto bench_lin = circuit::make_inverter(lin, opt);
  report("linear (GNR-like):", circuit::measure_vtc(bench_lin));

  // A real CNTFET pair at aggressive supply scaling.
  circuit::CellOptions cnt_opt;
  cnt_opt.v_dd = 0.5;
  cnt_opt.c_load = 1e-15;
  auto cnt = std::make_shared<device::CntfetModel>(
      device::make_franklin_cntfet_params(20e-9));
  auto bench_cnt = circuit::make_inverter(cnt, cnt_opt);
  report("CNTFET @ 0.5 V:", circuit::measure_vtc(bench_cnt));

  // Switching dynamics of the saturating inverter.
  const auto se = circuit::measure_switching(bench_sat, 4e-9, 2e-12);
  std::printf("\nsaturating inverter transient: tpHL = %.1f ps, tpLH = %.1f"
              " ps, energy/cycle = %.1f fJ\n",
              se.t_phl_s * 1e12, se.t_plh_s * 1e12, se.energy_j * 1e15);
  return 0;
}
