// Tunnel-FET design-space walk (Section IV): sweep the gated PIN CNT TFET
// across gate stacks and junction sharpness, extract the subthreshold
// swing and on-current of each design, and print the Fig. 6 transfer curve
// of the measured device.
#include <cmath>
#include <cstdio>

#include "device/tfet.h"

namespace {

using carbon::device::CntTfetModel;
using carbon::device::CntTfetParams;

struct Extraction {
  double vg_on = 0.0;
  double ss_avg = 0.0;
  double ion_ua = 0.0;
};

Extraction extract(const CntTfetModel& m) {
  Extraction e;
  const double floor_a = m.params().leakage_floor_a;
  e.vg_on = 1.0;
  for (double vg = 0.5; vg >= -3.0; vg -= 0.002) {
    if (std::abs(m.drain_current(vg, -0.5)) > 100.0 * floor_a) {
      e.vg_on = vg;
      break;
    }
  }
  const double i1 = std::abs(m.drain_current(e.vg_on, -0.5));
  const double i2 = std::abs(m.drain_current(e.vg_on - 0.25, -0.5));
  e.ss_avg = 0.25 / std::log10(i2 / i1) * 1e3;
  e.ion_ua = std::abs(m.drain_current(-2.0, -0.5)) * 1e6;
  return e;
}

}  // namespace

int main() {
  using namespace carbon;

  // The fabricated device of Fig. 6.
  const CntTfetModel fig6(device::make_fig6_tfet_params());
  std::printf("Fig. 6 device (10 nm SiO2 back gate, PEI-doped PIN):\n");
  std::printf("  vg[V]   |I_rev|[A]    |I_fwd|[A]\n");
  for (double vg = 0.5; vg >= -2.01; vg -= 0.25) {
    std::printf("  %5.2f  %.3e  %.3e\n", vg,
                std::abs(fig6.drain_current(vg, -0.5)),
                std::abs(fig6.drain_current(vg, +0.5)));
  }
  const auto base = extract(fig6);
  std::printf("  -> SS(avg) = %.0f mV/dec, Ion = %.2f uA (%.2f mA/um)\n",
              base.ss_avg, base.ion_ua,
              base.ion_ua * 1e-6 / (fig6.width_normalization() * 1e6) * 1e3);

  // Design space: gate efficiency x junction screening length.
  std::printf("\ndesign space (rows: gate efficiency; cols: tunnel length"
              " [nm]) — SS[mV/dec] / Ion[uA]:\n        ");
  const double lts[] = {2.0, 3.0, 4.0, 5.0};
  for (double lt : lts) std::printf("   lt=%.0fnm       ", lt);
  std::printf("\n");
  for (double gamma : {0.35, 0.55, 0.75, 0.95}) {
    std::printf("  g=%.2f", gamma);
    for (double lt : lts) {
      CntTfetParams p = device::make_fig6_tfet_params();
      p.gate_efficiency = gamma;
      p.tunnel_length = lt * 1e-9;
      const auto e = extract(CntTfetModel(p));
      std::printf("  %5.0f/%-8.3g", e.ss_avg, e.ion_ua);
    }
    std::printf("\n");
  }
  std::printf("\nreading: better gate coupling (high-k, segmented gates) and"
              " sharper junctions push SS below the baseline and raise Ion —"
              " the paper's Section IV outlook.\n");
  return 0;
}
