// RF small-signal & noise tour: bias a CNTFET common-source stage, sweep
// its AC gain on the complex sparse engine, then run the device noise
// analysis — output / input-referred spectral densities, the 1/f corner,
// integrated noise and the per-source breakdown.  This is the analysis
// pillar behind the paper's RF/analog argument (CNT LNAs, graphene RF
// stages): transconductance and noise at scaled supply voltages.
//
//   $ ./rf_noise
#include <cstdio>
#include <memory>

#include "device/cntfet.h"
#include "device/ivmodel.h"
#include "device/tabulated.h"
#include "spice/ac.h"
#include "spice/analyses.h"
#include "spice/circuit.h"
#include "spice/smallsignal.h"

int main() {
  using namespace carbon;

  // 1) Device: a table-compiled 20 nm CNTFET with explicit noise
  //    parameters — quasi-ballistic channel thermal factor gamma ~ 1 and
  //    a flicker pair that puts the 1/f corner in the measurable range.
  device::CntfetParams params = device::make_franklin_cntfet_params(20e-9);
  params.ef_source_ev = -0.18;
  device::NoiseParams noise;
  noise.gamma = 1.0;
  noise.kf = 1e-14;
  noise.af = 1.0;
  const device::DeviceModelPtr model = device::with_noise(
      device::make_tabulated(std::make_shared<device::CntfetModel>(params),
                             0.6),
      noise);

  // 2) Common-source stage at VDD = 0.6 V with a 100 fF load.  A single
  //    20 nm tube is a digital device; an RF stage gangs tubes in
  //    parallel (the multiplier) to buy transconductance.
  spice::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 0.6);
  auto* vg = ckt.add_vsource("vg", "g", "0", 0.45);
  ckt.add_resistor("rl", "vdd", "d", 20e3);
  ckt.add_capacitor("cl", "d", "0", 100e-15);
  ckt.add_fet("m1", "d", "g", "0", model, 20.0);

  // 3) AC sweep on the small-signal engine (sparse/dense auto-selected;
  //    symbolic analysis amortized across the whole sweep).
  spice::AcOptions ac;
  ac.f_start_hz = 1e4;
  ac.f_stop_hz = 1e11;
  ac.points_per_decade = 5;
  const auto gain = spice::ac_sweep(ckt, *vg, {"d"}, ac);
  const double a0 = gain.at(0, gain.column_index("mag(d)"));
  const double f3db = spice::corner_frequency(gain, "mag(d)");
  std::printf("common-source stage: |A(0)| = %.2f (%.1f dB), f3dB = %.3g Hz\n",
              a0, 20.0 * std::log10(a0), f3db);

  // 4) Noise analysis: one adjoint solve per frequency propagates every
  //    device noise source to the output simultaneously.
  spice::NoiseOptions nopt;
  nopt.f_start_hz = 1e2;
  nopt.f_stop_hz = 1e10;
  nopt.points_per_decade = 4;
  const spice::NoiseResult nres = spice::noise_sweep(ckt, *vg, "d", nopt);

  std::printf("\n  freq[Hz]   onoise[V^2/Hz]  inoise[V^2/Hz]  |H|\n");
  for (int i = 0; i < nres.table.num_rows(); i += 8) {
    std::printf("  %9.3g  %13.4g  %13.4g  %6.2f\n", nres.table.at(i, 0),
                nres.table.at(i, 1), nres.table.at(i, 2),
                nres.table.at(i, 3));
  }

  std::printf("\nintegrated output noise: %.4g V^2 (%.3g uVrms)\n",
              nres.onoise_total_v2, std::sqrt(nres.onoise_total_v2) * 1e6);
  std::printf("per-source contributions:\n");
  for (const auto& [label, v2] : nres.contributions) {
    std::printf("  %-14s %10.3g V^2  (%5.1f%%)\n", label.c_str(), v2,
                100.0 * v2 / nres.onoise_total_v2);
  }
  return 0;
}
