// Drive the simulator from a SPICE-style text deck: register CNTFET models
// under familiar names, parse a CMOS NAND2 netlist, and verify its truth
// table — then run a transient and an AC sweep on a parsed RC network.
#include <cstdio>
#include <memory>

#include "device/cntfet.h"
#include "spice/ac.h"
#include "spice/analyses.h"
#include "spice/netlist_parser.h"

int main() {
  using namespace carbon;

  // 1) Model registry: "cnfet" / "cpfet" become usable on m-cards.
  auto n = std::make_shared<device::CntfetModel>(
      device::make_franklin_cntfet_params(20e-9));
  spice::ModelRegistry models;
  models["cnfet"] = n;
  models["cpfet"] = std::make_shared<device::PTypeMirror>(n);

  // 2) A CNT NAND2 as a plain text deck.
  const char* deck = R"(
* CNT CMOS NAND2 at VDD = 0.5 V
vdd vdd 0 0.5
va  a   0 0
vb  b   0 0
mna out a mid cnfet
mnb mid b 0   cnfet
mpa out a vdd cpfet
mpb out b vdd cpfet
cl  out 0 0.2f
)";
  auto nand = spice::parse_netlist(deck, models);
  auto* va = dynamic_cast<spice::VSource*>(nand->elements()[1].get());
  auto* vb = dynamic_cast<spice::VSource*>(nand->elements()[2].get());

  std::printf("CNT NAND2 truth table (VDD = 0.5 V):\n  a    b    out\n");
  for (double a : {0.0, 0.5}) {
    for (double b : {0.0, 0.5}) {
      va->set_wave(spice::dc(a));
      vb->set_wave(spice::dc(b));
      const auto sol = spice::operating_point(*nand);
      std::printf("  %.1f  %.1f  %.3f V\n", a, b,
                  spice::node_voltage(*nand, sol, "out"));
    }
  }

  // 3) A parsed RC low-pass, then its Bode magnitude via AC analysis.
  auto rc = spice::parse_netlist(R"(
vin in  0 0
r1  in  out 10k
c1  out 0   1p
)");
  auto* vin = dynamic_cast<spice::VSource*>(rc->elements()[0].get());
  spice::AcOptions opt;
  opt.f_start_hz = 1e5;
  opt.f_stop_hz = 1e10;
  opt.points_per_decade = 4;
  const auto ac = spice::ac_sweep(*rc, *vin, {"out"}, opt);
  std::printf("\nRC low-pass (10k / 1p, fc = %.1f MHz):\n  f[Hz]      |H|\n",
              1.0 / (2 * 3.14159265 * 1e4 * 1e-12) * 1e-6);
  for (int i = 0; i < ac.num_rows(); i += 4) {
    std::printf("  %.3e  %.4f\n", ac.at(i, 0), ac.at(i, 1));
  }
  std::printf("measured -3 dB corner: %.3e Hz\n",
              spice::corner_frequency(ac, "mag(out)"));
  return 0;
}
