// The carbon nanotube computer (Shulaker et al., Nature 2013; paper refs
// [20, 21]) end to end: characterize CNTFET standard cells with the SPICE
// engine, build a gate-level SUBNEG datapath from them, and run counting
// and sorting programs on the one-instruction machine.
#include <cstdio>
#include <memory>

#include "device/cntfet.h"
#include "logic/stdcell.h"
#include "logic/subneg.h"

int main() {
  using namespace carbon;

  // 1) The transistor: a 20 nm wrap-gate CNTFET at VDD = 0.5 V.
  auto fet = std::make_shared<device::CntfetModel>(
      device::make_franklin_cntfet_params(20e-9));

  // 2) SPICE-characterized standard cells.
  logic::CharacterizationOptions copt;
  copt.v_dd = 0.5;
  copt.c_load_f = 0.05e-15;
  const logic::CellTiming cells = logic::characterize_cells(fet, copt);
  std::printf("CNT standard cells @ %.1f V: t_inv = %.1f ps, t_nand2 = %.1f"
              " ps, E/transition = %.2f aJ\n",
              cells.v_dd, cells.t_inv_s * 1e12, cells.t_nand2_s * 1e12,
              cells.energy_per_transition_j * 1e18);

  // 3) Gate-level SUBNEG datapath built from those cells.
  logic::SubnegDatapath datapath(8, cells);
  bool negative = false;
  const auto diff = datapath.subtract(42, 17, &negative);
  std::printf("\ndatapath: %d gates; 42 - 17 = %llu (negative=%d), settled "
              "in %.2f ns\n",
              datapath.num_gates(),
              static_cast<unsigned long long>(diff), negative ? 1 : 0,
              datapath.last_settle_time_s() * 1e9);

  // 4) The counting program of the Nature demonstration.
  logic::SubnegMachine machine(16);
  machine.load(logic::make_counting_program(0, 1, 10));
  const int steps = machine.run();
  std::printf("\ncounting program: counted to %lld in %d SUBNEG "
              "instructions\n",
              static_cast<long long>(machine.read(0)), steps);
  std::printf("estimated wall time on the CNT datapath: %.1f ns (%d ops x "
              "%.2f ns/op)\n",
              steps * datapath.last_settle_time_s() * 1e9, steps,
              datapath.last_settle_time_s() * 1e9);

  // 5) And the sorting workload.
  logic::SubnegMachine sorter(16);
  sorter.load(logic::make_sort2_program(9, 4));
  sorter.run();
  std::printf("\nsort2(9, 4) -> (%lld, %lld)\n",
              static_cast<long long>(sorter.read(10)),
              static_cast<long long>(sorter.read(11)));

  // 6) Execution trace of the first few instructions.
  std::printf("\nfirst instructions of the counting run:\n");
  int shown = 0;
  for (const auto& st : machine.trace()) {
    if (shown++ >= 8) break;
    std::printf("  pc=%d  (a=%d b=%d c=%d)  result=%lld  %s\n", st.pc,
                st.insn.a, st.insn.b, st.insn.c,
                static_cast<long long>(st.result),
                st.branched ? "branch" : "fallthrough");
  }
  return 0;
}
