// Section V as an application: from as-grown chirality soup through
// purification and trench self-assembly to a >10,000-device statistical
// study (Park et al., ref [22]) and wafer-scale yield projections.
#include <cstdio>

#include "fab/devstats.h"
#include "fab/placement.h"
#include "fab/sorting.h"
#include "fab/yield.h"

int main() {
  using namespace carbon;

  // 1) As-grown material: CVD tubes around d = 1.4 +/- 0.2 nm.
  fab::ChiralityPopulation population(1.4e-9, 0.2e-9);
  std::printf("as-grown: %d chiral species, %.1f%% metallic, <d> = %.2f nm\n",
              population.num_species(),
              population.metallic_fraction() * 100.0,
              population.mean_diameter() * 1e9);

  // 2) Purify by gel chromatography until below 100 ppm metallic.
  const auto process = fab::gel_chromatography();
  const auto target = fab::passes_for_purity(process, 100.0,
                                             population.metallic_fraction());
  fab::apply_to_population(process, target.passes, population);
  std::printf("after %d gel passes: %.1f ppm metallic, %.1f%% of the "
              "material retained\n",
              target.passes, population.metallic_fraction() * 1e6,
              target.overall_mass_yield * 100.0);

  // 3) Deposit into trenches and fabricate blindly (the Park experiment).
  phys::Rng rng(22);
  fab::TrenchAssemblyModel trench;
  const auto sites = trench.run(population, 10609, rng);
  const auto devices = fab::measure_sites(sites, {}, rng);
  const auto stats = fab::summarize(devices);
  std::printf("\nstatistical study of %d CNTFETs:\n", stats.devices);
  std::printf("  functional yield    %.1f%%\n", stats.yield * 100.0);
  std::printf("  median Ion/Ioff     %.2e\n", stats.median_on_off);
  std::printf("  median Ion          %.2f uA\n", stats.median_ion_a * 1e6);
  std::printf("  tubes per site      %.2f\n", stats.mean_tubes);
  std::printf("  metallic shorts     %.2f%%\n", stats.short_fraction * 100.0);

  // 4) What would a chip take? ("... an illusional dream" otherwise.)
  std::printf("\nrequired metallic tolerance for 50%% circuit yield "
              "(3 tubes/FET, 4 FETs/gate):\n");
  for (long long gates : {178LL, 10000LL, 1000000LL, 1000000000LL}) {
    const double m = fab::required_metallic_fraction(gates, 3, 4, 0.5);
    std::printf("  %11lld gates: %10.4f ppm\n", gates, m * 1e6);
  }

  // 5) Can this sorted batch build the CNT computer? A VLSI chip?
  const double m_frac = population.metallic_fraction();
  const double y_gate = fab::gate_yield(m_frac, 3, 4);
  std::printf("\nwith the batch above (gate yield %.6f):\n", y_gate);
  std::printf("  178-gate CNT computer yield: %.1f%%\n",
              fab::circuit_yield(y_gate, 178) * 100.0);
  std::printf("  1M-gate circuit yield:       %.2e\n",
              fab::circuit_yield(y_gate, 1000000));
  return 0;
}
