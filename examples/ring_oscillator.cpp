// Ring oscillators from complementary FET pairs: a saturating-device ring
// oscillates cleanly; this is the dynamic face of the Fig. 2 argument (and
// of ref [4], where GNR ring oscillators needed high supplies).
#include <cstdio>
#include <memory>

#include "circuit/cells.h"
#include "phys/require.h"
#include "device/alpha_power.h"
#include "spice/analyses.h"
#include "spice/measure.h"

int main() {
  using namespace carbon;

  auto fet = std::make_shared<device::AlphaPowerModel>(
      device::make_fig2_saturating_params());

  for (int stages : {3, 5, 7}) {
    circuit::CellOptions opt;
    opt.v_dd = 1.0;
    opt.c_load = 5e-15;
    auto bench = circuit::make_ring_oscillator(fet, stages, opt);

    spice::TransientOptions topt;
    topt.t_stop = 6e-9;
    topt.dt = 2e-12;  // initial step; the LTE controller takes over
    topt.adaptive = true;
    topt.lte_reltol = 1e-3;  // plotting-grade tolerance
    topt.dt_print = 2e-12;
    topt.bypass_vtol = 1e-4;
    spice::TransientStats stats;
    topt.stats = &stats;
    const auto tr = spice::transient(*bench.ckt, topt, {"n0"});

    double period = -1.0, f_ghz = 0.0, stage_delay_ps = 0.0;
    try {
      period = spice::oscillation_period(tr, "v(n0)", opt.v_dd / 2, 2);
      f_ghz = 1.0 / period * 1e-9;
      stage_delay_ps = period / (2.0 * stages) * 1e12;
    } catch (const phys::PreconditionError&) {
      std::printf("%d stages: did not reach steady oscillation in the "
                  "simulated window\n", stages);
      continue;
    }
    std::printf("%d-stage ring: f = %.2f GHz, period = %.1f ps, "
                "%.1f ps/stage\n",
                stages, f_ghz, period * 1e12, stage_delay_ps);
    // This alpha-power ring switches in ~10 ps/stage, so the LTE
    // controller keeps the step near the slew resolution; the step-count
    // win shows on workloads with quiescent intervals (see BM_Transient*).
    std::printf("   adaptive: %ld steps (dt %.2g..%.2g ps, %ld LTE "
                "rejects), %ld Newton iters, %ld FET evals + %ld bypassed\n",
                stats.steps_accepted, stats.dt_smallest * 1e12,
                stats.dt_largest * 1e12, stats.steps_rejected_lte,
                stats.newton_iterations, stats.evals.device_evals,
                stats.evals.device_bypasses);
  }

  std::printf("\n(period scales ~linearly with stage count: each stage "
              "contributes one rising + one falling delay per cycle)\n");
  return 0;
}
