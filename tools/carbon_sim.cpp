/// @file carbon_sim.cpp
/// Batch simulation driver: SPICE decks in, JSON documents out.
///
///   carbon_sim deck1.cir deck2.cir      # one JSON document per file
///   carbon_sim < decks.cir              # stdin; decks separated by .end
///   carbon_sim --compact deck.cir       # single-line JSON
///   carbon_sim --deadline-ms 5000 ...   # per-deck wall-clock budget
///   carbon_sim --trace-out t.json ...   # per-deck Chrome trace (deck N
///                                       # past the first lands in t.json.N;
///                                       # open in chrome://tracing or
///                                       # ui.perfetto.dev)
///   carbon_sim --profile ...            # phase-time table on stderr
///
/// Robustness: every deck runs inside a catch-all boundary — an
/// unexpected exception becomes a structured {"type": "internal"}
/// document instead of killing the rest of the batch; --deadline-ms arms
/// a per-deck phys::CancelToken deadline (polled through every Newton
/// iteration, transient step and AC/noise frequency point) so a hung
/// solve renders as {"type": "timeout"} instead of running forever; and
/// SIGPIPE is ignored so a consumer closing the output pipe ends the
/// batch with a clean write error instead of a signal death.
///
/// The process is a single long-lived SimSession, so consecutive decks
/// sharing a topology (a parameter-sweep batch, a regression suite over
/// one circuit) reuse the cached matrix pattern and symbolic analyses —
/// the "session" block of each document reports the reuse counters.
///
/// Exit status: 0 when every deck ran, 1 when any deck failed (its
/// document still prints, with {"ok": false, "error": {...}}) or a file
/// could not be read.

#include <csignal>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "device/alpha_power.h"
#include "device/ivmodel.h"
#include "device/linear_fet.h"
#include "obs/trace.h"
#include "phys/cancel.h"
#include "spice/session.h"

namespace {

using carbon::spice::ModelRegistry;

/// Built-in registry: the paper's Fig. 2 device family, usable from any
/// deck without a .model card.  nfet/pfet are the saturating alpha-power
/// devices; linfet_n/linfet_p the non-saturating (Fig. 2(b)/(d)) ones.
ModelRegistry builtin_models() {
  using namespace carbon::device;
  ModelRegistry reg;
  auto nfet = std::make_shared<AlphaPowerModel>(make_fig2_saturating_params());
  reg["nfet"] = nfet;
  reg["pfet"] = std::make_shared<PTypeMirror>(nfet);
  auto linn = std::make_shared<LinearFetModel>(make_fig2_linear_params());
  reg["linfet_n"] = linn;
  reg["linfet_p"] = std::make_shared<PTypeMirror>(linn);
  return reg;
}

/// Split a stream into decks on `.end` lines (the .end stays with its
/// deck).  Text after the last .end that is only blank/comment lines is
/// discarded; anything else becomes a final deck of its own.
std::vector<std::string> split_decks(std::istream& in) {
  std::vector<std::string> decks;
  std::string current;
  std::string line;
  bool any_content = false;
  while (std::getline(in, line)) {
    current += line;
    current += '\n';
    // Lowercased first token of the line, cheaply.
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    for (char& c : tok) c = static_cast<char>(std::tolower(c));
    if (!tok.empty() && tok[0] != '*' && tok[0] != '#') any_content = true;
    if (tok == ".end") {
      decks.push_back(std::move(current));
      current.clear();
      any_content = false;
    }
  }
  if (any_content) decks.push_back(std::move(current));
  return decks;
}

void print_doc(const carbon::core::Json& doc, bool compact) {
  std::cout << (compact ? doc.dump() : doc.dump(2)) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // A consumer closing our stdout pipe must surface as a write error on
  // the stream, not a SIGPIPE process death mid-batch.
  std::signal(SIGPIPE, SIG_IGN);

  bool compact = false;
  bool profile = false;
  double deadline_ms = 0.0;  // 0 = no per-deck budget
  std::string trace_out;     // empty = tracing off
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compact") {
      compact = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) {
        std::cerr << "carbon_sim: --trace-out wants a file path\n";
        return 1;
      }
      trace_out = argv[++i];
    } else if (arg == "--deadline-ms") {
      if (i + 1 >= argc) {
        std::cerr << "carbon_sim: --deadline-ms wants a value\n";
        return 1;
      }
      try {
        deadline_ms = std::stod(argv[++i]);
      } catch (const std::exception&) {
        deadline_ms = -1.0;
      }
      if (!(deadline_ms > 0.0)) {
        std::cerr << "carbon_sim: --deadline-ms wants a positive number\n";
        return 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: carbon_sim [--compact] [--deadline-ms N] "
                   "[--trace-out FILE] [--profile] [deck.cir ...]\n"
                   "       carbon_sim [options] < decks.cir\n"
                   "  --trace-out FILE  write a Chrome trace_event JSON per "
                   "deck (FILE, FILE.1, ...)\n"
                   "  --profile         solver phase-time table on stderr\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "carbon_sim: unknown option " << arg << "\n";
      return 1;
    } else {
      files.push_back(arg);
    }
  }

  carbon::spice::SessionOptions sopts;
  sopts.collect_phases = profile;
  carbon::spice::SimSession session(builtin_models(), sopts);
  bool any_failed = false;
  int deck_index = 0;

  auto run_one = [&](const std::string& text) {
    carbon::core::Json doc;
    // Per-deck tracer: one bounded ring per deck so each trace file stands
    // alone.  Unused (no --trace-out) it allocates nothing — rings are
    // created on first record, and nothing records while detached.
    carbon::obs::Tracer tracer;
    // Catch-all at the per-deck boundary: run_deck_text already converts
    // known failures to documents, but an unexpected exception from
    // anywhere else must not kill the rest of the batch either.
    try {
      carbon::phys::CancelToken budget;
      if (deadline_ms > 0.0) budget.set_deadline_after(deadline_ms * 1e-3);
      carbon::obs::TraceAttach attach(trace_out.empty() ? nullptr : &tracer);
      doc = session.run_deck_text(text,
                                  deadline_ms > 0.0 ? &budget : nullptr);
    } catch (const std::exception& e) {
      auto err = carbon::core::Json::object();
      err.set("type", "internal");
      err.set("what", std::string(e.what()));
      doc = carbon::core::Json::object();
      doc.set("ok", false);
      doc.set("error", std::move(err));
    }
    if (!trace_out.empty()) {
      const std::string path =
          deck_index == 0 ? trace_out
                          : trace_out + "." + std::to_string(deck_index);
      std::ofstream tf(path);
      if (tf) {
        tf << tracer.chrome_json_text() << "\n";
      } else {
        std::cerr << "carbon_sim: cannot write trace file: " << path << "\n";
        any_failed = true;
      }
    }
    ++deck_index;
    const carbon::core::Json* ok = doc.find("ok");
    if (!ok || !ok->is_bool() || !ok->as_bool()) any_failed = true;
    print_doc(doc, compact);
  };

  if (files.empty()) {
    for (const std::string& deck : split_decks(std::cin)) run_one(deck);
  } else {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        auto err = carbon::core::Json::object();
        err.set("type", "io");
        err.set("what", "cannot read deck file: " + path);
        auto doc = carbon::core::Json::object();
        doc.set("ok", false);
        doc.set("file", path);
        doc.set("error", std::move(err));
        print_doc(doc, compact);
        any_failed = true;
        continue;
      }
      std::ostringstream text;
      text << in.rdbuf();
      run_one(text.str());
    }
  }

  if (profile) {
    const carbon::obs::PhaseTimes& pt = session.phase_times();
    const long long total =
        pt.stamp_ns + pt.eval_ns + pt.factor_ns + pt.solve_ns;
    const double denom = total > 0 ? static_cast<double>(total) : 1.0;
    auto row = [&](const char* name, long long ns) {
      std::fprintf(stderr, "  %-12s %12.3f ms  %5.1f%%\n", name, ns * 1e-6,
                   100.0 * static_cast<double>(ns) / denom);
    };
    std::fprintf(stderr, "carbon_sim profile (%d deck%s):\n", deck_index,
                 deck_index == 1 ? "" : "s");
    row("device-eval", pt.eval_ns);
    row("stamp", pt.stamp_ns);
    row("factor", pt.factor_ns);
    row("back-solve", pt.solve_ns);
    row("total", total);
  }
  return any_failed ? 1 : 0;
}
