/// @file carbon_simd.cpp
/// The concurrent simulation service: SPICE decks in, JSON documents out,
/// over a TCP or Unix-domain socket speaking newline-delimited JSON.
///
///   carbon_simd --tcp 9900                  # TCP on 127.0.0.1:9900
///   carbon_simd --tcp 0                     # ephemeral port (printed)
///   carbon_simd --unix /tmp/carbon.sock     # Unix-domain socket
///
/// On startup one ready line is printed to stdout:
///   {"ready":true,"endpoint":"127.0.0.1:9900","port":9900,"workers":4}
/// so a supervisor (or the smoke script) can wait for it and learn an
/// ephemeral port.  Requests and responses are one JSON object per line:
///
///   {"type":"run","deck":"v1 in 0 1\n...\n.end\n","deadline_ms":5000,"id":1}
///   {"type":"health"}
///   {"type":"metrics"}    (Prometheus text + JSON metric snapshot)
///
/// SIGTERM/SIGINT start the graceful drain: stop accepting, finish or
/// cancel in-flight work within --drain-ms, flush every response, exit 0.
/// See src/serve/server.h for the full robustness contract.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "device/alpha_power.h"
#include "device/faulty.h"
#include "device/ivmodel.h"
#include "device/linear_fet.h"
#include "serve/server.h"

namespace {

/// Built-in registry, matching carbon_sim: the paper's Fig. 2 device
/// family usable from any deck without a .model card.
carbon::spice::ModelRegistry builtin_models() {
  using namespace carbon::device;
  carbon::spice::ModelRegistry reg;
  auto nfet = std::make_shared<AlphaPowerModel>(make_fig2_saturating_params());
  reg["nfet"] = nfet;
  reg["pfet"] = std::make_shared<PTypeMirror>(nfet);
  auto linn = std::make_shared<LinearFetModel>(make_fig2_linear_params());
  reg["linfet_n"] = linn;
  reg["linfet_p"] = std::make_shared<PTypeMirror>(linn);
  return reg;
}

/// Fault-injection models for the integration tests and the CI smoke
/// script (--test-models): "hangfet" stalls 20 ms per eval — a deck using
/// it never finishes inside a sane deadline, exercising the timeout and
/// drain paths; "nanfet" goes NaN, exercising solver-failure isolation.
void add_test_models(carbon::spice::ModelRegistry& reg) {
  using namespace carbon::device;
  FaultSpec stall;
  stall.kind = FaultKind::kStall;
  stall.stall_s = 20e-3;
  reg["hangfet"] = with_fault(reg["nfet"], stall);
  FaultSpec nan;
  nan.kind = FaultKind::kNanEval;
  reg["nanfet"] = with_fault(reg["nfet"], nan);
}

carbon::serve::Server* g_server = nullptr;

extern "C" void drain_signal_handler(int) {
  // Async-signal-safe: one byte into the server's drain pipe.
  if (g_server != nullptr) {
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n =
        ::write(g_server->drain_notify_fd(), &byte, 1);
  }
}

int usage(int code) {
  std::cout
      << "usage: carbon_simd [--tcp PORT | --unix PATH] [options]\n"
         "  --tcp PORT            listen on 127.0.0.1:PORT (0 = ephemeral)\n"
         "  --host ADDR           TCP listen address (default 127.0.0.1)\n"
         "  --unix PATH           listen on a Unix-domain socket instead\n"
         "  --workers N           worker threads / concurrent sessions "
         "(default 4)\n"
         "  --queue N             admission queue capacity (default 64)\n"
         "  --max-request-bytes N per-frame ceiling (default 4194304)\n"
         "  --deadline-ms N       default per-request budget (default "
         "30000)\n"
         "  --max-deadline-ms N   cap on client deadlines (default 600000)\n"
         "  --write-timeout-ms N  slow-client write budget (default 10000)\n"
         "  --drain-ms N          in-flight budget after SIGTERM (default "
         "5000)\n"
         "  --cache N             per-worker topology-cache capacity "
         "(default 16)\n"
         "  --stats-interval-s N  print a one-line counter summary to "
         "stderr every N s\n"
         "  --no-tables           suppress table blocks in responses\n"
         "  --test-models         register fault-injection models "
         "(hangfet, nanfet)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  // A worker writing to a freshly dead client must get EPIPE, not die.
  std::signal(SIGPIPE, SIG_IGN);

  carbon::serve::ServerConfig cfg;
  cfg.registry = builtin_models();
  bool have_listener = false;

  auto num_arg = [&](int& i, const char* flag) -> double {
    if (i + 1 >= argc) {
      std::cerr << "carbon_simd: " << flag << " wants a value\n";
      std::exit(2);
    }
    try {
      return std::stod(argv[++i]);
    } catch (const std::exception&) {
      std::cerr << "carbon_simd: bad value for " << flag << "\n";
      std::exit(2);
    }
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tcp") {
      cfg.tcp_port = static_cast<int>(num_arg(i, "--tcp"));
      cfg.unix_path.clear();
      have_listener = true;
    } else if (arg == "--host") {
      if (i + 1 >= argc) return usage(2);
      cfg.tcp_host = argv[++i];
    } else if (arg == "--unix") {
      if (i + 1 >= argc) return usage(2);
      cfg.unix_path = argv[++i];
      have_listener = true;
    } else if (arg == "--workers") {
      cfg.workers = static_cast<int>(num_arg(i, "--workers"));
    } else if (arg == "--queue") {
      cfg.queue_capacity = static_cast<int>(num_arg(i, "--queue"));
    } else if (arg == "--max-request-bytes") {
      cfg.max_request_bytes =
          static_cast<std::size_t>(num_arg(i, "--max-request-bytes"));
    } else if (arg == "--deadline-ms") {
      cfg.default_deadline_s = num_arg(i, "--deadline-ms") * 1e-3;
    } else if (arg == "--max-deadline-ms") {
      cfg.max_deadline_s = num_arg(i, "--max-deadline-ms") * 1e-3;
    } else if (arg == "--write-timeout-ms") {
      cfg.write_timeout_s = num_arg(i, "--write-timeout-ms") * 1e-3;
    } else if (arg == "--drain-ms") {
      cfg.drain_budget_s = num_arg(i, "--drain-ms") * 1e-3;
    } else if (arg == "--cache") {
      cfg.session.cache_capacity = static_cast<int>(num_arg(i, "--cache"));
    } else if (arg == "--stats-interval-s") {
      cfg.stats_interval_s = num_arg(i, "--stats-interval-s");
    } else if (arg == "--no-tables") {
      cfg.session.emit_tables = false;
    } else if (arg == "--test-models") {
      add_test_models(cfg.registry);
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::cerr << "carbon_simd: unknown option " << arg << "\n";
      return usage(2);
    }
  }
  if (!have_listener) {
    std::cerr << "carbon_simd: need --tcp PORT or --unix PATH\n";
    return usage(2);
  }

  carbon::serve::Server server(std::move(cfg));
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "carbon_simd: " << e.what() << "\n";
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, drain_signal_handler);
  std::signal(SIGINT, drain_signal_handler);

  {
    auto ready = carbon::core::Json::object();
    ready.set("ready", true);
    ready.set("endpoint", server.endpoint());
    ready.set("port", server.port());
    ready.set("workers", server.workers());
    std::cout << ready.dump() << std::endl;  // endl: flush for supervisors
  }

  const int rc = [&] {
    server.wait();
    return 0;
  }();

  // Final one-line drain report to stderr (stdout carries only protocol
  // and the ready line).
  const carbon::serve::ServerStats& s = server.stats();
  std::fprintf(stderr,
               "carbon_simd: drained; accepted=%ld run=%ld ok=%ld "
               "timeout=%ld overload=%ld disconnects=%ld\n",
               s.accepted.load(), s.requests_run.load(),
               s.requests_ok.load(), s.timeouts.load(),
               s.rejected_overload.load(), s.disconnects.load());
  g_server = nullptr;
  return rc;
}
