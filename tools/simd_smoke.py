#!/usr/bin/env python3
"""Fault-mix smoke test for carbon_simd, the concurrent simulation service.

Boots the daemon on an ephemeral TCP port with the fault-injection models
registered, then hammers it from concurrent client threads with the full
fault mix — good decks, parse errors, NaN solve failures, injected hangs
under tight deadlines, oversized requests and mid-request disconnects —
and asserts the robustness contract:

  * every request on a surviving connection yields exactly one JSON
    document (ok, or a structured error of the expected type);
  * hung solves come back as bounded {"type":"timeout"} documents;
  * oversized frames are rejected with {"type":"too_large"};
  * a saturated queue sheds load with {"type":"overload"} documents;
  * health reporting stays coherent (in_flight returns to 0);
  * {"type":"metrics"} exposes a conserved Prometheus snapshot: each
    carbon_request_seconds{outcome=X} histogram count equals the
    matching carbon_requests_total{outcome=X} counter, and the
    queue-wait histogram count equals accepted minus overload-shed
    connections once the storm quiesces;
  * SIGTERM drains gracefully: the process exits 0 within the drain
    budget after finishing or cancelling in-flight work.

Exits 0 when every assertion holds.  Stdlib only.
"""

import argparse
import json
import re
import signal
import socket
import subprocess
import sys
import threading
import time

GOOD_DECK = (
    "v1 in 0 1\nr1 in out 1k\nr2 out 0 1k\n"
    ".op\n.probe none\n.measure op vout value v(out)\n.end\n"
)
PARSE_DECK = "r1 in out\n.op\n.end\n"
NAN_DECK = "v1 d 0 1\nv2 g 0 1\nm1 d g 0 nanfet\n.op\n.end\n"
# A transient on a stalling FET: every accepted step burns a stalled
# eval, so the run cannot finish inside the deadline below.
HANG_DECK = (
    "v1 d 0 1\n"
    "v2 g 0 pulse(0 1 1n 1n 1n 5n 10n)\n"
    "m1 d g 0 hangfet\n"
    "c1 d 0 1p\n"
    ".tran 0.1n 1000n\n.probe none\n.end\n"
)

failures = []
failures_lock = threading.Lock()


def fail(msg):
    with failures_lock:
        failures.append(msg)
    print("FAIL: " + msg, file=sys.stderr)


class Client:
    def __init__(self, port, timeout=20.0):
        self.sock = socket.create_connection(("127.0.0.1", port),
                                             timeout=timeout)
        self.buf = b""

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def recv_doc(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                return None
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def rpc(self, obj):
        try:
            self.send(obj)
        except OSError:
            pass  # shed connections may EPIPE; the rejection doc is readable
        try:
            return self.recv_doc()
        except (OSError, ValueError):
            return None

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


def expect_type(doc, want, what):
    if doc is None:
        fail(f"{what}: no document received")
        return
    if want == "ok":
        if not doc.get("ok"):
            fail(f"{what}: expected ok, got {json.dumps(doc)[:200]}")
    else:
        got = (doc.get("error") or {}).get("type")
        if doc.get("ok") or got != want:
            fail(f"{what}: expected error type {want!r}, got "
                 f"{json.dumps(doc)[:200]}")


def client_mix(port, seed, rounds):
    for i in range(rounds):
        kind = (seed + i) % 5
        try:
            c = Client(port)
        except OSError:
            continue  # connect refused under load: acceptable shedding
        try:
            if kind == 0:
                doc = c.rpc({"type": "run", "deck": GOOD_DECK, "id": i})
                expect_type(doc, "ok", "good deck")
                if doc and doc.get("ok"):
                    vout = doc["steps"][0]["measures"]["vout"]
                    if abs(vout - 0.5) > 1e-9:
                        fail(f"good deck: vout {vout} != 0.5")
                    if doc.get("id") != i:
                        fail("good deck: response id not echoed")
            elif kind == 1:
                expect_type(c.rpc({"type": "run", "deck": PARSE_DECK}),
                            "parse", "parse-error deck")
            elif kind == 2:
                expect_type(c.rpc({"type": "run", "deck": NAN_DECK}),
                            "solve_failure", "NaN deck")
            elif kind == 3:
                expect_type(c.rpc({"type": "run", "deck": HANG_DECK,
                                   "deadline_ms": 300}),
                            "timeout", "hung deck")
            else:
                # Mid-request disconnect: send a hung solve and walk away.
                c.send({"type": "run", "deck": HANG_DECK,
                        "deadline_ms": 10000})
                time.sleep(0.02)
        except OSError as e:
            fail(f"kind {kind}: transport error {e}")
        finally:
            c.close()


def prom_value(text, name, labels=""):
    """Value of a single Prometheus sample, e.g.
    prom_value(text, "carbon_requests_total", 'outcome="ok"')."""
    sample = name + ("{" + labels + "}" if labels else "")
    m = re.search(r"^%s (-?\d+(?:\.\d+)?(?:e[+-]?\d+)?)$"
                  % re.escape(sample), text, re.MULTILINE)
    return float(m.group(1)) if m else None


def wait_quiescent(port, budget_s=15.0):
    """Poll health until no work is queued or in flight."""
    deadline = time.monotonic() + budget_s
    while time.monotonic() < deadline:
        c = Client(port)
        health = c.rpc({"type": "health"})
        c.close()
        if health and health.get("ok"):
            srv = health["server"]
            if srv["in_flight"] == 0 and srv["queue_depth"] == 0:
                return True
        time.sleep(0.1)
    return False


def check_metrics(port):
    """Histogram-count conservation: the request-latency histograms must
    agree exactly with the per-outcome counters, and the queue-wait
    histogram with admission accounting, once the storm has quiesced."""
    if not wait_quiescent(port):
        fail("metrics: server did not quiesce")
        return
    c = Client(port)
    doc = c.rpc({"type": "metrics"})
    c.close()
    if not doc or not doc.get("ok") or doc.get("type") != "metrics":
        fail("metrics request failed: " + json.dumps(doc)[:200])
        return
    text = doc.get("prometheus", "")
    outcomes = ["ok", "parse", "solve_failure", "timeout", "cancelled",
                "internal"]
    finished = 0
    for outcome in outcomes:
        labels = 'outcome="%s"' % outcome
        counter = prom_value(text, "carbon_requests_total", labels)
        hist = prom_value(text, "carbon_request_seconds_count", labels)
        if counter is None or hist is None:
            fail(f"metrics: missing samples for outcome {outcome}")
            continue
        if counter != hist:
            fail(f"metrics: carbon_request_seconds_count{{{labels}}} "
                 f"{hist} != carbon_requests_total {counter}")
        finished += int(counter)
    if finished < 1:
        fail("metrics: no finished requests recorded")
    accepted = prom_value(text, "carbon_accepted_total")
    shed = prom_value(text, "carbon_rejected_total", 'reason="overload"')
    qwait = prom_value(text, "carbon_queue_wait_seconds_count")
    if accepted is None or shed is None or qwait is None:
        fail("metrics: missing admission samples")
    elif qwait != accepted - shed:
        fail(f"metrics: queue-wait count {qwait} != accepted {accepted} "
             f"- overload {shed}")
    # The JSON snapshot must carry the same vocabulary.
    if "carbon_request_seconds" not in (doc.get("metrics") or {}):
        fail("metrics: JSON snapshot missing carbon_request_seconds")
    print("metrics: conserved over %d finished requests "
          "(accepted=%d shed=%d)" % (finished, accepted, shed))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True, help="path to carbon_simd")
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--rounds", type=int, default=10)
    ap.add_argument("--drain-ms", type=int, default=3000)
    args = ap.parse_args()

    proc = subprocess.Popen(
        [args.binary, "--tcp", "0", "--workers", "4", "--queue", "8",
         "--test-models", "--no-tables", "--max-request-bytes", "65536",
         "--drain-ms", str(args.drain_ms)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        ready = json.loads(proc.stdout.readline())
        if not ready.get("ready"):
            sys.exit("carbon_simd did not report ready: " + json.dumps(ready))
        port = ready["port"]
        print(f"ready on port {port}, {ready['workers']} workers")

        # Oversized request: rejected with a structured document, closed.
        c = Client(port)
        doc = c.rpc({"type": "run", "deck": "x" * 100000})
        expect_type(doc, "too_large", "oversized request")
        c.close()

        # Malformed request: structured bad_request, connection survives.
        c = Client(port)
        c.sock.sendall(b"this is not json\n")
        expect_type(c.recv_doc(), "bad_request", "malformed request")
        expect_type(c.rpc({"type": "run", "deck": GOOD_DECK}), "ok",
                    "request after bad_request")
        c.close()

        # The concurrent fault mix.
        threads = [threading.Thread(target=client_mix,
                                    args=(port, t, args.rounds))
                   for t in range(args.clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Overload burst: more simultaneous hung solves than workers+queue
        # slots; at least one connection must be shed with an overload doc.
        burst = []
        for _ in range(16):
            try:
                b = Client(port)
                b.send({"type": "run", "deck": HANG_DECK,
                        "deadline_ms": 1500})
                burst.append(b)
            except OSError:
                pass
        outcomes = {"overload": 0, "timeout": 0, "none": 0}
        for b in burst:
            d = b.recv_doc() if b else None
            if d is None:
                outcomes["none"] += 1
            else:
                outcomes[(d.get("error") or {}).get("type", "?")] = \
                    outcomes.get((d.get("error") or {}).get("type", "?"),
                                 0) + 1
            b.close()
        print("overload burst outcomes:", outcomes)
        if outcomes.get("overload", 0) < 1:
            fail("overload burst: no connection was shed")
        if outcomes.get("none", 0):
            fail(f"overload burst: {outcomes['none']} connections got no "
                 "document")

        # Health must be coherent after the storm.
        c = Client(port)
        health = c.rpc({"type": "health"})
        c.close()
        if not health or not health.get("ok"):
            fail("health request failed")
        else:
            srv = health["server"]
            print("health:", json.dumps(srv["requests"]))
            if srv["requests"]["timeout"] < 1:
                fail("health: no timeouts recorded despite hung decks")
            if srv["disconnects"] < 1:
                fail("health: no disconnects recorded")

        # Metrics exposition: histogram/counter conservation at rest.
        check_metrics(port)

        # Graceful drain: SIGTERM, exit 0 within budget + slack.
        t0 = time.monotonic()
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=args.drain_ms / 1000.0 + 10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            sys.exit("carbon_simd did not drain within budget")
        elapsed = time.monotonic() - t0
        print(f"drained in {elapsed:.2f}s, exit {rc}")
        print(proc.stderr.read().strip(), file=sys.stderr)
        if rc != 0:
            fail(f"drain exit code {rc} != 0")
    finally:
        if proc.poll() is None:
            proc.kill()

    if failures:
        sys.exit(f"{len(failures)} smoke assertion(s) failed")
    print("carbon_simd smoke: all assertions passed")


if __name__ == "__main__":
    main()
