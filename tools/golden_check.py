#!/usr/bin/env python3
"""Golden-deck regression checker for carbon_sim.

Runs the carbon_sim binary over every ``*.cir`` deck in a directory and
compares each JSON document against the checked-in golden
``<deck-stem>.json``.  Numbers compare with mixed relative/absolute
tolerance (goldens are produced by a Release build and must hold across
-O levels and compilers); everything else compares exactly, except a few
volatile keys that are checked for presence only.

Regenerate goldens after an intentional behaviour change with::

    tools/golden_check.py --binary build/carbon_sim \
        --decks examples/decks --golden examples/decks/golden --update
"""

import argparse
import json
import pathlib
import subprocess
import sys

# Numeric slack: solver iteration order is deterministic, but FP totals
# (energies, integrated noise, adaptive step counts feeding averages)
# may wiggle across compilers/-O levels.
RELTOL = 5e-5
ABSTOL = 1e-12

# Keys whose *values* are environment- or history-dependent: assert they
# exist with the right type, ignore the payload.
VOLATILE_KEYS = {"decks_run", "cache_entries", "topology_uses"}

# Stats blocks are solver-internals (iteration counts move when the
# ladder's heuristics are retuned); golden-compare their presence only.
VOLATILE_SUBTREES = {"stats"}


def numbers_close(a, b):
    if a == b:
        return True
    return abs(a - b) <= max(ABSTOL, RELTOL * max(abs(a), abs(b)))


def diff(golden, actual, path="$"):
    """Return a list of human-readable mismatch strings."""
    if isinstance(golden, bool) or isinstance(actual, bool):
        # bool is an int subclass; compare strictly before the number path.
        if golden is not actual:
            return [f"{path}: expected {golden!r}, got {actual!r}"]
        return []
    if isinstance(golden, (int, float)) and isinstance(actual, (int, float)):
        if not numbers_close(float(golden), float(actual)):
            return [f"{path}: expected {golden!r}, got {actual!r}"]
        return []
    if type(golden) is not type(actual):
        return [f"{path}: type mismatch "
                f"({type(golden).__name__} vs {type(actual).__name__})"]
    if isinstance(golden, dict):
        errors = []
        for key in golden:
            if key not in actual:
                errors.append(f"{path}.{key}: missing")
            elif key in VOLATILE_KEYS:
                continue
            elif key in VOLATILE_SUBTREES:
                continue
            else:
                errors.extend(diff(golden[key], actual[key], f"{path}.{key}"))
        for key in actual:
            if key not in golden:
                errors.append(f"{path}.{key}: unexpected key")
        return errors
    if isinstance(golden, list):
        if len(golden) != len(actual):
            return [f"{path}: length {len(golden)} vs {len(actual)}"]
        errors = []
        for i, (g, a) in enumerate(zip(golden, actual)):
            errors.extend(diff(g, a, f"{path}[{i}]"))
            if len(errors) > 20:  # don't drown the log on a shifted table
                errors.append(f"{path}: ... further diffs suppressed")
                return errors
        return errors
    if golden != actual:
        return [f"{path}: expected {golden!r}, got {actual!r}"]
    return []


def run_deck(binary, deck):
    proc = subprocess.run([binary, "--compact", str(deck)],
                          capture_output=True, text=True, timeout=600)
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        raise SystemExit(
            f"{deck.name}: carbon_sim emitted invalid JSON ({e});"
            f" stderr:\n{proc.stderr}")
    # Failing decks are part of the suite (error-JSON goldens); the exit
    # status just has to agree with the document.
    ok = bool(doc.get("ok"))
    if ok != (proc.returncode == 0):
        raise SystemExit(f"{deck.name}: ok={ok} but exit={proc.returncode}")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True)
    ap.add_argument("--decks", required=True)
    ap.add_argument("--golden", required=True)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the goldens from the current binary")
    args = ap.parse_args()

    decks = sorted(pathlib.Path(args.decks).glob("*.cir"))
    if not decks:
        raise SystemExit(f"no decks found in {args.decks}")
    golden_dir = pathlib.Path(args.golden)

    failures = 0
    for deck in decks:
        doc = run_deck(args.binary, deck)
        golden_path = golden_dir / (deck.stem + ".json")
        if args.update:
            golden_path.parent.mkdir(parents=True, exist_ok=True)
            golden_path.write_text(json.dumps(doc, indent=1) + "\n")
            print(f"UPDATED {deck.name}")
            continue
        if not golden_path.exists():
            print(f"FAIL    {deck.name}: no golden {golden_path}")
            failures += 1
            continue
        golden = json.loads(golden_path.read_text())
        errors = diff(golden, doc)
        if errors:
            print(f"FAIL    {deck.name}:")
            for e in errors[:25]:
                print(f"        {e}")
            failures += 1
        else:
            print(f"ok      {deck.name}")

    if failures:
        raise SystemExit(f"{failures}/{len(decks)} golden decks failed")
    print(f"all {len(decks)} golden decks match")


if __name__ == "__main__":
    main()
