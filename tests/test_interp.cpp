// Interpolation: exact recovery, extrapolation rules, and the PCHIP
// monotonicity guarantee the I-V table caching depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "phys/interp.h"
#include "phys/require.h"

namespace {

using carbon::phys::LinearInterp;
using carbon::phys::PchipInterp;

TEST(LinearInterp, RecoversLinesExactly) {
  const LinearInterp li({0.0, 1.0, 2.0}, {1.0, 3.0, 5.0});
  EXPECT_DOUBLE_EQ(li(0.5), 2.0);
  EXPECT_DOUBLE_EQ(li(1.75), 4.5);
  EXPECT_DOUBLE_EQ(li.derivative(0.3), 2.0);
}

TEST(LinearInterp, ExtrapolatesWithEdgeSegments) {
  const LinearInterp li({0.0, 1.0}, {0.0, 2.0});
  EXPECT_DOUBLE_EQ(li(-1.0), -2.0);
  EXPECT_DOUBLE_EQ(li(3.0), 6.0);
}

TEST(LinearInterp, HitsSamplePoints) {
  const std::vector<double> x{-2.0, -0.5, 0.1, 4.0};
  const std::vector<double> y{3.0, -1.0, 7.0, 2.0};
  const LinearInterp li(x, y);
  for (size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(li(x[i]), y[i]);
}

TEST(LinearInterp, RejectsBadGrids) {
  EXPECT_THROW(LinearInterp({0.0, 0.0}, {1.0, 2.0}),
               carbon::phys::PreconditionError);
  EXPECT_THROW(LinearInterp({1.0, 0.0}, {1.0, 2.0}),
               carbon::phys::PreconditionError);
  EXPECT_THROW(LinearInterp({0.0}, {1.0}), carbon::phys::PreconditionError);
  EXPECT_THROW(LinearInterp({0.0, 1.0}, {1.0}),
               carbon::phys::PreconditionError);
}

TEST(Pchip, InterpolatesSamplePoints) {
  const std::vector<double> x{0.0, 1.0, 2.5, 4.0};
  const std::vector<double> y{0.0, 1.0, 0.5, 3.0};
  const PchipInterp p(x, y);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(p(x[i]), y[i], 1e-14);
  }
}

TEST(Pchip, ReproducesSmoothFunctionsAccurately) {
  std::vector<double> x, y;
  for (int i = 0; i <= 40; ++i) {
    x.push_back(i * 0.1);
    y.push_back(std::exp(-x.back()));
  }
  const PchipInterp p(x, y);
  for (double q = 0.05; q < 4.0; q += 0.17) {
    EXPECT_NEAR(p(q), std::exp(-q), 2e-4) << "at " << q;
  }
}

TEST(Pchip, DerivativeConsistentWithFiniteDifference) {
  std::vector<double> x, y;
  for (int i = 0; i <= 30; ++i) {
    x.push_back(i * 0.2);
    y.push_back(std::sin(x.back()));
  }
  const PchipInterp p(x, y);
  const double h = 1e-6;
  for (double q : {0.5, 1.7, 3.3, 5.1}) {
    const double fd = (p(q + h) - p(q - h)) / (2.0 * h);
    EXPECT_NEAR(p.derivative(q), fd, 1e-5);
  }
}

TEST(Pchip, TwoPointFallsBackToLinear) {
  const PchipInterp p({0.0, 2.0}, {1.0, 5.0});
  EXPECT_NEAR(p(1.0), 3.0, 1e-12);
}

// Property: PCHIP never overshoots monotone data — essential when the
// interpolant caches a carrier-density or I-V table.
class PchipMonotone : public ::testing::TestWithParam<unsigned> {};

TEST_P(PchipMonotone, PreservesMonotonicity) {
  std::mt19937 gen(GetParam());
  std::uniform_real_distribution<double> step(0.01, 2.0);
  std::vector<double> x{0.0}, y{0.0};
  for (int i = 0; i < 25; ++i) {
    x.push_back(x.back() + step(gen));
    y.push_back(y.back() + step(gen) * step(gen));  // increasing data
  }
  const PchipInterp p(x, y);
  double prev = p(x.front());
  for (double q = x.front(); q <= x.back(); q += (x.back() - x.front()) / 997) {
    const double v = p(q);
    EXPECT_GE(v, prev - 1e-12) << "non-monotone at " << q;
    prev = v;
  }
  // And never outside the data range.
  EXPECT_GE(prev, y.front());
  EXPECT_LE(prev, y.back() + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PchipMonotone,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
