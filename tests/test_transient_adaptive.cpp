// Adaptive transient engine: LTE step controller and predictor unit tests,
// breakpoint collection, adaptive-vs-fixed waveform agreement on the
// standard decks (RC ladder, diode ladder, CNTFET inverter, ring
// oscillator, SRAM write), quiescent-FET bypass equivalence, output
// thinning, OP-consistent initial conditions and the static stamp split.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "circuit/cells.h"
#include "circuit/sram.h"
#include "device/alpha_power.h"
#include "device/cntfet.h"
#include "device/tabulated.h"
#include "phys/require.h"
#include "spice/analyses.h"
#include "spice/circuit.h"
#include "spice/integrator.h"
#include "spice/measure.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;
namespace ckt = carbon::circuit;

sp::LteControlConfig test_config() {
  sp::LteControlConfig cfg;
  cfg.dt_min = 1e-15;
  cfg.dt_max = 1e-9;
  return cfg;
}

// ---------------------------------------------------------------- controller

TEST(LteController, GrowsOnSmallErrorUpToLimit) {
  const sp::LteController ctl(test_config());
  const auto d = ctl.decide(1e-12, 1e-4, 3);
  EXPECT_TRUE(d.accept);
  // 0.9 * (1e-4)^(-1/3) ~ 19 — clamped to the 2x growth limit.
  EXPECT_DOUBLE_EQ(d.dt_next, 2e-12);
}

TEST(LteController, ModestErrorGrowsModestly) {
  const sp::LteController ctl(test_config());
  const auto d = ctl.decide(1e-12, 0.5, 3);
  EXPECT_TRUE(d.accept);
  const double expect = 1e-12 * 0.9 * std::pow(0.5, -1.0 / 3.0);
  EXPECT_NEAR(d.dt_next, expect, 1e-27);
  EXPECT_GT(d.dt_next, 1e-12);
  EXPECT_LT(d.dt_next, 2e-12);
}

TEST(LteController, RejectsOversizedStepAndShrinks) {
  const sp::LteController ctl(test_config());
  const auto d = ctl.decide(1e-12, 8.0, 3);
  EXPECT_FALSE(d.accept);
  EXPECT_LT(d.dt_next, 1e-12);
  EXPECT_GE(d.dt_next, 0.1e-12);  // shrink_limit floor
}

TEST(LteController, HugeErrorShrinkClampedToLimit) {
  const sp::LteController ctl(test_config());
  const auto d = ctl.decide(1e-12, 1e9, 2);
  EXPECT_FALSE(d.accept);
  EXPECT_DOUBLE_EQ(d.dt_next, 0.1e-12);
}

TEST(LteController, StepAtFloorAlwaysAccepted) {
  sp::LteControlConfig cfg = test_config();
  cfg.dt_min = 1e-12;
  const sp::LteController ctl(cfg);
  const auto d = ctl.decide(1e-12, 50.0, 3);
  EXPECT_TRUE(d.accept) << "a step at dt_min must make progress";
  EXPECT_DOUBLE_EQ(d.dt_next, 1e-12);
}

TEST(LteController, GrowthRespectsDtMax) {
  sp::LteControlConfig cfg = test_config();
  cfg.dt_max = 1.5e-12;
  const sp::LteController ctl(cfg);
  const auto d = ctl.decide(1e-12, 1e-6, 3);
  EXPECT_TRUE(d.accept);
  EXPECT_DOUBLE_EQ(d.dt_next, 1.5e-12);
}

TEST(LteController, BeOrderUsesSquareRootExponent) {
  const sp::LteController ctl(test_config());
  const auto d2 = ctl.decide(1e-12, 4.0, 2);
  const auto d3 = ctl.decide(1e-12, 4.0, 3);
  // Same error ratio shrinks harder at lower order: 4^(-1/2) < 4^(-1/3).
  EXPECT_LT(d2.dt_next, d3.dt_next);
}

TEST(LteController, RejectsBadConfig) {
  sp::LteControlConfig cfg = test_config();
  cfg.trtol = 0.5;
  EXPECT_THROW(sp::LteController{cfg}, carbon::phys::PreconditionError);
}

// ----------------------------------------------------------------- predictor

TEST(PredictorHistory, ExactOnQuadraticTrajectory) {
  // x(t) = 2 + 3t + 4t^2 sampled at t = 0, 1, 3 (nonuniform steps).
  const auto f = [](double t) { return 2.0 + 3.0 * t + 4.0 * t * t; };
  sp::PredictorHistory hist;
  hist.advance({f(0.0)}, 1.0);  // accepted step 0 -> 1
  hist.advance({f(1.0)}, 2.0);  // accepted step 1 -> 3
  const std::vector<double> x_now{f(3.0)};
  std::vector<double> pred;
  EXPECT_EQ(hist.predict(x_now, 1.5, pred), 2);
  EXPECT_NEAR(pred[0], f(4.5), 1e-9);
}

TEST(PredictorHistory, OrdersRampUpAndResetDrops) {
  sp::PredictorHistory hist;
  std::vector<double> out;
  const std::vector<double> x{1.0};
  EXPECT_EQ(hist.predict(x, 1.0, out), 0);
  EXPECT_DOUBLE_EQ(out[0], 1.0);  // no history: prediction = current
  hist.advance({0.0}, 1.0);
  EXPECT_EQ(hist.predict(x, 1.0, out), 1);
  EXPECT_DOUBLE_EQ(out[0], 2.0);  // linear extrapolation of 0 -> 1
  hist.advance({1.0}, 1.0);
  EXPECT_EQ(hist.predict(x, 1.0, out), 2);
  hist.reset();
  EXPECT_EQ(hist.predict(x, 1.0, out), 0);
}

TEST(PredictorHistory, LteFactorMatchesUniformStepConstants) {
  sp::PredictorHistory hist;
  hist.advance({0.0}, 1.0);
  hist.advance({0.0}, 1.0);
  // Uniform steps h = h1 = h2 = 1: trap/quadratic factor = (1/12)/(1 +
  // 1/12) = 1/13; BE/linear factor = 1/(2 + 1) = 1/3; BE against the
  // x''-exact quadratic predictor sees the corrector error directly.
  EXPECT_NEAR(hist.lte_factor(1.0, true, 2), 1.0 / 13.0, 1e-12);
  EXPECT_NEAR(hist.lte_factor(1.0, false, 1), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(hist.lte_factor(1.0, false, 2), 1.0);
}

TEST(LteErrorRatio, WorstNodeOnlyOverNodeEntries) {
  sp::LteControlConfig cfg = test_config();
  cfg.reltol = 1e-3;
  cfg.abstol = 1e-6;
  cfg.trtol = 1.0;
  const std::vector<double> corr{1.0, 0.5, 100.0};
  const std::vector<double> pred{1.0, 0.6, 0.0};
  // n_nodes = 2: the huge branch-current mismatch in entry 2 is ignored.
  const double r = sp::lte_error_ratio(corr, pred, 2, 0.5, cfg);
  EXPECT_NEAR(r, 0.5 * 0.1 / (1e-6 + 1e-3 * 0.6), 1e-9);
}

// --------------------------------------------------------------- breakpoints

TEST(Breakpoints, PulseAndPwlCornersCollected) {
  sp::Circuit c;
  c.add_vsource("vp", "a", "0",
                sp::pulse(0.0, 1.0, 1e-9, 0.1e-9, 0.2e-9, 1e-9, 4e-9));
  c.add_vsource("vw", "b", "0", sp::pwl({{0.0, 0.0}, {2e-9, 1.0}}));
  c.add_resistor("r1", "a", "b", 1e3);
  const auto bps = c.collect_breakpoints(5e-9);
  // Pulse: 1, 1.1, 2.1, 2.3 ns (first period; second period base 5 ns is
  // outside).  PWL: 2 ns.  All sorted, 0 and t_stop excluded.
  ASSERT_EQ(bps.size(), 5u);
  EXPECT_NEAR(bps[0], 1.0e-9, 1e-18);
  EXPECT_NEAR(bps[1], 1.1e-9, 1e-18);
  EXPECT_NEAR(bps[2], 2.0e-9, 1e-18);
  EXPECT_NEAR(bps[3], 2.1e-9, 1e-18);
  EXPECT_NEAR(bps[4], 2.3e-9, 1e-18);
  EXPECT_TRUE(std::is_sorted(bps.begin(), bps.end()));
}

TEST(Breakpoints, MergeDedupesAndClips) {
  const auto m =
      sp::merge_breakpoints({3.0, 1.0, 1.0 + 1e-15, -1.0, 0.0, 5.0, 7.0}, 5.0);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 3.0);
}

TEST(Breakpoints, AdaptiveLandsExactlyOnCorners) {
  sp::Circuit c;
  c.add_vsource("v1", "a", "0",
                sp::pwl({{0.0, 0.0}, {1e-9, 0.0}, {1.5e-9, 1.0}, {4e-9, 1.0}}));
  c.add_resistor("r1", "a", "b", 1e3);
  c.add_capacitor("c1", "b", "0", 1e-13);
  sp::TransientOptions opt;
  opt.t_stop = 4e-9;
  opt.dt = 1e-11;
  opt.adaptive = true;
  sp::TransientStats stats;
  opt.stats = &stats;
  const auto tr = sp::transient(c, opt, {"b"});
  // PWL corners at 1 and 1.5 ns; the 4 ns point coincides with t_stop and
  // is not a breakpoint.
  EXPECT_EQ(stats.breakpoints_hit, 2);
  // With dt_print = 0 every accepted step is a row, so the corner times
  // appear exactly.
  bool found = false;
  for (int i = 0; i < tr.num_rows(); ++i) {
    if (tr.at(i, 0) == 1.5e-9) found = true;
  }
  EXPECT_TRUE(found) << "corner at 1.5 ns not landed on exactly";
}

// ----------------------------------------------- adaptive-vs-fixed agreement

double rms_diff(const carbon::phys::DataTable& a,
                const carbon::phys::DataTable& b, int col) {
  EXPECT_EQ(a.num_rows(), b.num_rows());
  const int n = std::min(a.num_rows(), b.num_rows());
  double s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = a.at(i, col) - b.at(i, col);
    s2 += d * d;
  }
  return std::sqrt(s2 / n);
}

TEST(AdaptiveTran, RcLadderMatchesFixedReference) {
  const double t_stop = 50e-9, dt_print = 0.1e-9;
  auto run = [&](bool adaptive, double dt, sp::TransientStats* st) {
    auto bench = ckt::make_rc_ladder(20, 1e3, 1e-13, 1.0);
    bench.vin->set_wave(
        sp::pulse(0.0, 1.0, 1e-9, 0.5e-9, 0.5e-9, 20e-9, 100e-9));
    sp::TransientOptions opt;
    opt.t_stop = t_stop;
    opt.dt = dt;
    opt.adaptive = adaptive;
    opt.dt_print = dt_print;
    opt.lte_reltol = 3e-5;  // timing-grade tolerance
    opt.stats = st;
    return sp::transient(*bench.ckt, opt, {bench.out_node});
  };
  sp::TransientStats sf, sa;
  const auto fixed = run(false, 0.01e-9, &sf);
  const auto adapt = run(true, 0.01e-9, &sa);
  EXPECT_LT(rms_diff(fixed, adapt, 1), 1e-4);
  // The ladder output is smooth: the controller must take far fewer steps.
  EXPECT_LT(sa.steps_accepted, sf.steps_accepted / 4);
  EXPECT_GT(sa.dt_largest, sa.dt_smallest * 10);
}

TEST(AdaptiveTran, DiodeLadderMatchesFixedReference) {
  const double t_stop = 20e-9, dt_print = 0.05e-9;
  auto run = [&](bool adaptive, double dt) {
    auto bench = ckt::make_diode_ladder(10, 1e3, 1e-14, 0.0);
    bench.vin->set_wave(
        sp::pwl({{0.0, 0.0}, {2e-9, 0.0}, {6e-9, 5.0}, {20e-9, 5.0}}));
    sp::TransientOptions opt;
    opt.t_stop = t_stop;
    opt.dt = dt;
    opt.adaptive = adaptive;
    opt.dt_print = dt_print;
    opt.lte_reltol = 1e-4;
    return sp::transient(*bench.ckt, opt, {bench.out_node});
  };
  const auto fixed = run(false, 0.01e-9);
  const auto adapt = run(true, 0.01e-9);
  EXPECT_LT(rms_diff(fixed, adapt, 1), 2e-4);
}

TEST(AdaptiveTran, CntfetInverterDelayMatchesFixed) {
  dev::CntfetParams p = dev::make_franklin_cntfet_params(20e-9);
  p.ef_source_ev = -0.18;
  const auto tab =
      dev::make_tabulated(std::make_shared<dev::CntfetModel>(p), 0.6);
  ckt::CellOptions copt;
  copt.v_dd = 0.6;
  copt.c_load = 5e-15;
  const double t_stop = 8e-9, dt_print = 8e-12;
  auto run = [&](bool adaptive, double dt, sp::TransientStats* st) {
    auto bench = ckt::make_inverter(tab, copt);
    bench.vin->set_wave(sp::pulse(0.0, 0.6, 1e-9, 50e-12, 50e-12, 3e-9,
                                  100e-9));
    sp::TransientOptions opt;
    opt.t_stop = t_stop;
    opt.dt = dt;
    opt.adaptive = adaptive;
    opt.dt_print = dt_print;
    opt.lte_reltol = 1e-4;
    opt.bypass_vtol = adaptive ? 1e-4 : 0.0;
    opt.ic = sp::TransientIc::kFromOperatingPoint;
    opt.stats = st;
    return sp::transient(*bench.ckt, opt, {"in", "out"});
  };
  sp::TransientStats sf, sa;
  const auto fixed = run(false, 2e-12, &sf);
  const auto adapt = run(true, 2e-12, &sa);
  EXPECT_LT(rms_diff(fixed, adapt, 2), 1e-3);
  const double d_fixed =
      sp::propagation_delay(fixed, "v(in)", "v(out)", 0.6, true);
  const double d_adapt =
      sp::propagation_delay(adapt, "v(in)", "v(out)", 0.6, true);
  EXPECT_NEAR(d_adapt, d_fixed, 0.01 * d_fixed + 1e-12);
  EXPECT_LT(sa.newton_iterations, sf.newton_iterations / 2);
  EXPECT_LT(sa.evals.device_evals, sf.evals.device_evals / 5);
}

TEST(AdaptiveTran, RingOscillatorPeriodMatchesFixed) {
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  ckt::CellOptions copt;
  copt.c_load = 5e-15;
  const double t_stop = 2e-9, dt_print = 2e-12;
  auto run = [&](bool adaptive, sp::TransientStats* st) {
    auto bench = ckt::make_ring_oscillator(m, 5, copt);
    sp::TransientOptions opt;
    opt.t_stop = t_stop;
    opt.dt = 1e-12;
    opt.adaptive = adaptive;
    opt.dt_print = dt_print;
    opt.lte_reltol = 1e-4;
    opt.bypass_vtol = adaptive ? 1e-4 : 0.0;
    opt.stats = st;
    return sp::transient(*bench.ckt, opt, {"n0"});
  };
  sp::TransientStats sf, sa;
  const auto fixed = run(false, &sf);
  const auto adapt = run(true, &sa);
  const double p_fixed = sp::oscillation_period(fixed, "v(n0)", 0.5, 1);
  const double p_adapt = sp::oscillation_period(adapt, "v(n0)", 0.5, 1);
  EXPECT_NEAR(p_adapt, p_fixed, 0.01 * p_fixed);
  EXPECT_LT(sa.newton_iterations, sf.newton_iterations);
}

TEST(AdaptiveTran, SramWriteFlipsCellAndMatchesFixed) {
  dev::CntfetParams p = dev::make_franklin_cntfet_params(20e-9);
  p.ef_source_ev = -0.18;
  const auto tab =
      dev::make_tabulated(std::make_shared<dev::CntfetModel>(p), 0.6);
  ckt::CellOptions copt;
  copt.v_dd = 0.6;
  auto run = [&](bool adaptive, double dt, sp::TransientStats* st) {
    auto bench = ckt::make_sram_write_bench(tab, copt);
    sp::TransientOptions opt;
    opt.t_stop = 4e-9;
    opt.dt = dt;
    opt.adaptive = adaptive;
    opt.dt_print = 4e-12;
    opt.lte_reltol = 1e-4;
    opt.bypass_vtol = adaptive ? 1e-4 : 0.0;
    opt.ic = sp::TransientIc::kFromOperatingPoint;
    opt.stats = st;
    return sp::transient(*bench.ckt, opt, {"q", "qb"});
  };
  sp::TransientStats sf, sa;
  const auto fixed = run(false, 1e-12, &sf);
  const auto adapt = run(true, 1e-12, &sa);
  // The write flips the cell: q starts high (hold state), ends low.
  EXPECT_GT(adapt.at(0, 1), 0.5);
  EXPECT_LT(adapt.at(adapt.num_rows() - 1, 1), 0.1);
  EXPECT_GT(adapt.at(adapt.num_rows() - 1, 2), 0.5);
  // Matched waveforms at a fraction of the work.
  EXPECT_LT(rms_diff(fixed, adapt, 1), 1e-4);
  EXPECT_LT(rms_diff(fixed, adapt, 2), 1e-4);
  EXPECT_LT(sa.newton_iterations, sf.newton_iterations / 2);
  EXPECT_LT(sa.evals.device_evals, sf.evals.device_evals / 5);
}

// ------------------------------------------------------------------- bypass

TEST(Bypass, OnOffWaveformsAgreeWithinTolerance) {
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  ckt::CellOptions copt;
  auto run = [&](double bypass) {
    auto bench = ckt::make_inverter(m, copt);
    bench.vin->set_wave(
        sp::pulse(0.0, 1.0, 0.1e-9, 20e-12, 20e-12, 0.4e-9, 1e-9));
    sp::TransientOptions opt;
    opt.t_stop = 1e-9;
    opt.dt = 1e-12;
    opt.bypass_vtol = bypass;
    return sp::transient(*bench.ckt, opt, {"out"});
  };
  const auto off = run(0.0);
  const auto on = run(1e-4);
  ASSERT_EQ(off.num_rows(), on.num_rows());
  double worst = 0.0;
  for (int i = 0; i < off.num_rows(); ++i) {
    worst = std::max(worst, std::abs(off.at(i, 1) - on.at(i, 1)));
  }
  // The bypass serves a cached first-order expansion valid within
  // bypass_vtol, so the waveform error is bounded by a small multiple of
  // the tolerance.
  EXPECT_LT(worst, 1e-3);
  EXPECT_GT(worst, 0.0) << "bypass had no effect at all (suspicious)";
}

TEST(Bypass, CountersTrackEvalsAndBypasses) {
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  ckt::CellOptions copt;
  auto bench = ckt::make_inverter(m, copt);
  bench.vin->set_wave(
      sp::pulse(0.0, 1.0, 0.1e-9, 20e-12, 20e-12, 0.4e-9, 1e-9));
  sp::TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 1e-12;
  opt.bypass_vtol = 1e-4;
  sp::TransientStats stats;
  opt.stats = &stats;
  sp::transient(*bench.ckt, opt, {"out"});
  EXPECT_GT(stats.evals.device_evals, 0);
  EXPECT_GT(stats.evals.device_bypasses, 0);
  // Two FETs stamped once per Newton iteration: every stamp either
  // evaluates or bypasses.
  EXPECT_EQ(stats.evals.device_evals + stats.evals.device_bypasses,
            2 * stats.newton_iterations);
}

TEST(Bypass, DiodeOnOffWaveformsAgreeWithinTolerance) {
  // Mirrors the FET on/off bound: the diode bypass serves a cached
  // first-order expansion valid within bypass_vtol, so the waveform error
  // stays a small multiple of the tolerance.
  auto run = [&](double bypass) {
    auto bench = ckt::make_diode_ladder(10, 1e3, 1e-14, 0.0);
    bench.vin->set_wave(
        sp::pulse(0.0, 3.0, 1e-9, 0.5e-9, 0.5e-9, 8e-9, 100e-9));
    sp::TransientOptions opt;
    opt.t_stop = 15e-9;
    opt.dt = 0.01e-9;
    opt.bypass_vtol = bypass;
    return sp::transient(*bench.ckt, opt, {bench.out_node});
  };
  const auto off = run(0.0);
  const auto on = run(1e-4);
  ASSERT_EQ(off.num_rows(), on.num_rows());
  double worst = 0.0;
  for (int i = 0; i < off.num_rows(); ++i) {
    worst = std::max(worst, std::abs(off.at(i, 1) - on.at(i, 1)));
  }
  EXPECT_LT(worst, 1e-3);
  EXPECT_GT(worst, 0.0) << "diode bypass had no effect at all (suspicious)";
}

TEST(Bypass, DiodeCountersTrackEvalsAndBypasses) {
  auto bench = ckt::make_diode_ladder(10, 1e3, 1e-14, 0.0);
  bench.vin->set_wave(
      sp::pulse(0.0, 3.0, 1e-9, 0.5e-9, 0.5e-9, 8e-9, 100e-9));
  sp::TransientOptions opt;
  opt.t_stop = 15e-9;
  opt.dt = 0.01e-9;
  opt.bypass_vtol = 1e-4;
  sp::TransientStats stats;
  opt.stats = &stats;
  sp::transient(*bench.ckt, opt, {bench.out_node});
  EXPECT_GT(stats.evals.device_evals, 0);
  EXPECT_GT(stats.evals.device_bypasses, 0);
  // Ten diodes stamped once per Newton iteration: every stamp either
  // evaluates the exponential or serves the cache.
  EXPECT_EQ(stats.evals.device_evals + stats.evals.device_bypasses,
            10 * stats.newton_iterations);
}

// ------------------------------------------------------------ PI controller

TEST(PiController, DampsGrowthWhileErrorRises) {
  sp::LteControlConfig cfg = test_config();
  cfg.pi = true;
  sp::LteController ctl(cfg);
  // First decision (no history) matches the deadbeat rule.
  const auto first = ctl.step(1e-12, 0.2, 3);
  const auto deadbeat = sp::LteController(test_config()).decide(1e-12, 0.2, 3);
  EXPECT_TRUE(first.accept);
  EXPECT_DOUBLE_EQ(first.dt_next, deadbeat.dt_next);
  // Error rising 0.2 -> 0.8: the PI term must grow the step less than the
  // deadbeat rule would.
  const auto pi = ctl.step(first.dt_next, 0.8, 3);
  const auto db =
      sp::LteController(test_config()).decide(first.dt_next, 0.8, 3);
  EXPECT_TRUE(pi.accept);
  EXPECT_LT(pi.dt_next, db.dt_next);
}

TEST(PiController, CapsRegrowthAfterRejection) {
  sp::LteControlConfig cfg = test_config();
  cfg.pi = true;
  sp::LteController ctl(cfg);
  ctl.step(1e-12, 0.5, 3);              // seed history
  const auto rej = ctl.step(2e-12, 4.0, 3);
  EXPECT_FALSE(rej.accept);
  EXPECT_LT(rej.dt_next, 2e-12);
  // The accept right after a rejection must not grow the step again.
  const auto acc = ctl.step(rej.dt_next, 0.3, 3);
  EXPECT_TRUE(acc.accept);
  EXPECT_LE(acc.dt_next, rej.dt_next * (1.0 + 1e-12));
  // reset_history() returns to deadbeat behaviour.
  ctl.reset_history();
  const auto fresh = ctl.step(1e-12, 0.2, 3);
  EXPECT_DOUBLE_EQ(
      fresh.dt_next,
      sp::LteController(test_config()).decide(1e-12, 0.2, 3).dt_next);
}

TEST(PiController, CutsRingRejectionRateAtMatchedAccuracy) {
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  ckt::CellOptions copt;
  copt.c_load = 5e-15;
  auto run = [&](bool pi, sp::TransientStats* st) {
    auto bench = ckt::make_ring_oscillator(m, 5, copt);
    sp::TransientOptions opt;
    opt.t_stop = 2e-9;
    opt.dt = 1e-12;
    opt.adaptive = true;
    opt.dt_print = 2e-12;
    opt.lte_reltol = 1e-4;
    opt.lte_pi = pi;
    opt.stats = st;
    return sp::transient(*bench.ckt, opt, {"n0"});
  };
  sp::TransientStats classic, pi;
  const auto tr_classic = run(false, &classic);
  const auto tr_pi = run(true, &pi);

  ASSERT_GT(classic.steps_rejected_lte, 0)
      << "deadbeat controller rejected nothing; deck no longer stresses it";
  const double rate_classic =
      static_cast<double>(classic.steps_rejected_lte) /
      (classic.steps_accepted + classic.steps_rejected_lte);
  const double rate_pi =
      static_cast<double>(pi.steps_rejected_lte) /
      (pi.steps_accepted + pi.steps_rejected_lte);
  EXPECT_LT(rate_pi, 0.75 * rate_classic)
      << "PI control must cut the LTE rejection rate";

  // Matched accuracy: the oscillation period agrees with the classic run.
  const double p_classic = sp::oscillation_period(tr_classic, "v(n0)", 0.5, 1);
  const double p_pi = sp::oscillation_period(tr_pi, "v(n0)", 0.5, 1);
  EXPECT_NEAR(p_pi, p_classic, 0.01 * p_classic);
  // And the total work must not regress.
  EXPECT_LT(pi.newton_iterations, classic.newton_iterations * 1.1);
}

// ------------------------------------------------- identical-Jacobian reuse

TEST(JacobianReuse, LinearRcSkipsRefactors) {
  // A linear deck at fixed dt reassembles the exact same Jacobian every
  // iteration of every step: after the first factorization, the
  // Shamanskii fast path must serve essentially all factor() calls.
  auto bench = ckt::make_rc_ladder(20, 1e3, 1e-13, 1.0);
  sp::TransientOptions opt;
  opt.t_stop = 10e-9;
  opt.dt = 0.1e-9;
  sp::TransientStats stats;
  opt.stats = &stats;
  sp::transient(*bench.ckt, opt, {bench.out_node});
  EXPECT_GE(stats.jacobian_reuses, stats.steps_accepted)
      << "linear circuit at fixed dt must reuse the factorization";
}

TEST(JacobianReuse, BypassedQuiescentStepsSkipRefactors) {
  // SRAM write: long quiescent hold phases around the wordline pulse.
  // With the device bypass on, whole Newton iterations assemble
  // bit-identical Jacobians and must skip the numeric refactor.
  dev::CntfetParams p = dev::make_franklin_cntfet_params(20e-9);
  p.ef_source_ev = -0.18;
  const auto tab =
      dev::make_tabulated(std::make_shared<dev::CntfetModel>(p), 0.6);
  ckt::CellOptions copt;
  copt.v_dd = 0.6;
  auto bench = ckt::make_sram_write_bench(tab, copt);
  sp::TransientOptions opt;
  opt.t_stop = 4e-9;
  opt.dt = 1e-12;
  opt.adaptive = true;
  opt.dt_print = 4e-12;
  opt.lte_reltol = 1e-4;
  opt.bypass_vtol = 1e-4;
  opt.ic = sp::TransientIc::kFromOperatingPoint;
  sp::TransientStats stats;
  opt.stats = &stats;
  const auto tr = sp::transient(*bench.ckt, opt, {"q", "qb"});
  EXPECT_GT(stats.jacobian_reuses, 0);
  // The write still flips the cell (the reuse is exact, not approximate).
  EXPECT_GT(tr.at(0, 1), 0.5);
  EXPECT_LT(tr.at(tr.num_rows() - 1, 1), 0.1);
}

// ------------------------------------------------------- SRAM column array

TEST(SramColumn, WriteFlipsRow0AndHoldsTheRest) {
  dev::CntfetParams p = dev::make_franklin_cntfet_params(20e-9);
  p.ef_source_ev = -0.18;
  const auto tab =
      dev::make_tabulated(std::make_shared<dev::CntfetModel>(p), 0.6);
  ckt::CellOptions copt;
  copt.v_dd = 0.6;
  auto bench = ckt::make_sram_column_bench(tab, 4, copt);
  sp::TransientOptions opt;
  opt.t_stop = 4e-9;
  opt.dt = 1e-12;
  opt.adaptive = true;
  opt.dt_print = 8e-12;
  opt.lte_reltol = 1e-4;
  opt.bypass_vtol = 1e-4;
  opt.lte_pi = true;
  opt.ic = sp::TransientIc::kFromOperatingPoint;
  const auto tr =
      sp::transient(*bench.ckt, opt, {"q0", "q1", "q2", "q3"});
  const int last = tr.num_rows() - 1;
  // Row 0 written low; held rows keep their 1.
  EXPECT_GT(tr.at(0, 1), 0.5);
  EXPECT_LT(tr.at(last, 1), 0.1);
  for (int cell = 1; cell < 4; ++cell) {
    EXPECT_GT(tr.at(last, 1 + cell), 0.5) << "cell " << cell << " disturbed";
  }
}

// ----------------------------------------------------------------- thinning

TEST(Thinning, UniformGridAndInterpolationAccuracy) {
  sp::Circuit c;
  c.add_vsource("v1", "a", "0",
                sp::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 2.0));
  c.add_resistor("r1", "a", "b", 1e3);
  c.add_capacitor("c1", "b", "0", 1e-9);  // tau = 1 us
  sp::TransientOptions opt;
  opt.t_stop = 5e-6;
  opt.dt = 1e-8;
  opt.adaptive = true;
  opt.dt_print = 5e-8;
  const auto tr = sp::transient(c, opt, {"b"});
  // 0 .. 5 us at 50 ns: 101 rows, uniformly spaced.
  ASSERT_EQ(tr.num_rows(), 101);
  for (int i = 1; i < tr.num_rows(); ++i) {
    EXPECT_NEAR(tr.at(i, 0) - tr.at(i - 1, 0), 5e-8, 1e-12);
  }
  for (int i = 0; i < tr.num_rows(); ++i) {
    const double t = tr.at(i, 0);
    if (t < 2e-9) continue;
    const double ref = 1.0 - std::exp(-(t - 1e-9) / 1e-6);
    EXPECT_NEAR(tr.at(i, 1), ref, 1e-3) << "t = " << t;
  }
}

TEST(Thinning, FixedPathThinsToo) {
  sp::Circuit c;
  c.add_vsource("v1", "a", "0", sp::dc(1.0));
  c.add_resistor("r1", "a", "b", 1e3);
  c.add_capacitor("c1", "b", "0", 1e-12);
  sp::TransientOptions opt;
  opt.t_stop = 10e-9;
  opt.dt = 1e-11;
  opt.dt_print = 1e-9;
  const auto tr = sp::transient(c, opt, {"b"});
  EXPECT_EQ(tr.num_rows(), 11);
}

// ------------------------------------------------------ initial conditions

TEST(TransientIc, OperatingPointStartHoldsBiasedNode) {
  // A node held at 1 V by the OP but loaded by a v_init = 0 capacitor:
  // kFromInit snaps it down on the first step, kFromOperatingPoint holds.
  auto build = [] {
    auto c = std::make_unique<sp::Circuit>();
    c->add_vsource("v1", "a", "0", sp::dc(1.0));
    c->add_resistor("r1", "a", "b", 1e3);
    c->add_resistor("r2", "b", "0", 1e6);
    c->add_capacitor("c1", "b", "0", 1e-12);
    return c;
  };
  sp::TransientOptions opt;
  opt.t_stop = 1e-10;
  opt.dt = 1e-12;

  auto c1 = build();
  const auto from_init = sp::transient(*c1, opt, {"b"});
  EXPECT_LT(from_init.at(1, 1), 0.5) << "seed semantics: cap starts at 0";

  opt.ic = sp::TransientIc::kFromOperatingPoint;
  auto c2 = build();
  const auto from_op = sp::transient(*c2, opt, {"b"});
  for (int i = 0; i < from_op.num_rows(); ++i) {
    EXPECT_NEAR(from_op.at(i, 1), 1e6 / (1e6 + 1e3), 1e-6);
  }
}

// ------------------------------------------------------- static stamp split

TEST(StaticSplit, ResistorsLeaveTheStampLoop) {
  auto bench = ckt::make_rc_ladder(50, 1e3, 1e-15, 1.0);
  sp::SolverOptions opts;
  sp::NewtonWorkspace ws;
  const auto sol = sp::operating_point(*bench.ckt, opts, nullptr, &ws);
  // All 50 resistors are static with no RHS footprint.
  EXPECT_EQ(ws.mna.static_skipped_count(), 50);
  // And the solve is still correct: no load, so every node sits at 1 V.
  EXPECT_NEAR(sp::node_voltage(*bench.ckt, sol, bench.out_node), 1.0, 1e-9);
}

TEST(StaticSplit, VoltageDividerStillExact) {
  sp::Circuit c;
  c.add_vsource("v1", "a", "0", sp::dc(2.0));
  c.add_resistor("r1", "a", "b", 1e3);
  c.add_resistor("r2", "b", "0", 3e3);
  const auto sol = sp::operating_point(c);
  EXPECT_NEAR(sp::node_voltage(c, sol, "b"), 1.5, 1e-9);
}

}  // namespace
