// Cell builders and the Fig. 2 inverter experiments end to end.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <memory>

#include "circuit/cells.h"
#include "circuit/vtc.h"
#include "device/alpha_power.h"
#include "device/cntfet.h"
#include "device/linear_fet.h"
#include "spice/analyses.h"

namespace {

namespace ckt = carbon::circuit;
namespace dev = carbon::device;
namespace sp = carbon::spice;

std::shared_ptr<dev::AlphaPowerModel> saturating() {
  return std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
}

std::shared_ptr<dev::LinearFetModel> linear_fet() {
  return std::make_shared<dev::LinearFetModel>(
      dev::make_fig2_linear_params());
}

TEST(InverterVtc, SaturatingPairIsRegenerative) {
  auto bench = ckt::make_inverter(saturating());
  const auto m = ckt::measure_vtc(bench);
  EXPECT_TRUE(m.regenerative);
  EXPECT_GT(m.max_abs_gain, 5.0);
  EXPECT_NEAR(m.v_switch, 0.5, 0.03);  // symmetric pair switches at VDD/2
  EXPECT_GT(m.nm_low, 0.2);
  EXPECT_GT(m.nm_high, 0.2);
}

TEST(InverterVtc, LinearPairHasNoNoiseMargin) {
  // The paper's Fig. 2(d): "the absolute gain of this inverter never
  // exceeds unity and therefore the noise margin is almost zero."
  auto bench = ckt::make_inverter(linear_fet());
  const auto m = ckt::measure_vtc(bench);
  EXPECT_FALSE(m.regenerative);
  EXPECT_LE(m.max_abs_gain, 1.05);
  EXPECT_DOUBLE_EQ(m.nm_low, 0.0);
  EXPECT_DOUBLE_EQ(m.nm_high, 0.0);
}

TEST(InverterVtc, RailsReachedAtEnds) {
  auto bench = ckt::make_inverter(saturating());
  const auto vtc = ckt::run_vtc(bench, 61);
  EXPECT_GT(vtc.at(0, 1), 0.97);                      // vin=0 -> vout~VDD
  EXPECT_LT(vtc.at(vtc.num_rows() - 1, 1), 0.03);     // vin=VDD -> vout~0
}

TEST(InverterVtc, CntfetInverterWorksAtHalfVolt) {
  // The paper's end goal: CNT switches enabling low-voltage CMOS.
  auto n = std::make_shared<dev::CntfetModel>(
      dev::make_franklin_cntfet_params(20e-9));
  ckt::CellOptions opt;
  opt.v_dd = 0.5;
  opt.c_load = 1e-15;
  auto bench = ckt::make_inverter(n, opt);
  const auto m = ckt::measure_vtc(bench, 81);
  EXPECT_TRUE(m.regenerative);
  EXPECT_GT(m.nm_low + m.nm_high, 0.25);  // healthy combined margins
}

TEST(Nand2, TruthTable) {
  auto bench = ckt::make_nand2(saturating());
  const auto out_for = [&](double a, double b) {
    bench.va->set_wave(sp::dc(a));
    bench.vb->set_wave(sp::dc(b));
    const auto sol = sp::operating_point(*bench.ckt);
    return sp::node_voltage(*bench.ckt, sol, "out");
  };
  EXPECT_GT(out_for(0.0, 0.0), 0.9);
  EXPECT_GT(out_for(0.0, 1.0), 0.9);
  EXPECT_GT(out_for(1.0, 0.0), 0.9);
  EXPECT_LT(out_for(1.0, 1.0), 0.1);
}

TEST(InverterChain, OddChainInverts) {
  // Odd number of inversions: low in -> high out and vice versa.
  auto bench = ckt::make_inverter_chain(saturating(), 3);
  bench.vin->set_wave(sp::dc(0.0));
  auto sol = sp::operating_point(*bench.ckt);
  EXPECT_GT(sp::node_voltage(*bench.ckt, sol, bench.out_node), 0.9);
  bench.vin->set_wave(sp::dc(1.0));
  sol = sp::operating_point(*bench.ckt);
  EXPECT_LT(sp::node_voltage(*bench.ckt, sol, bench.out_node), 0.1);
}

TEST(InverterChain, EvenChainFollows) {
  auto bench = ckt::make_inverter_chain(saturating(), 2);
  bench.vin->set_wave(sp::dc(1.0));
  const auto sol = sp::operating_point(*bench.ckt);
  EXPECT_GT(sp::node_voltage(*bench.ckt, sol, bench.out_node), 0.9);
}

TEST(Switching, DelayAndEnergyPositive) {
  auto bench = ckt::make_inverter(saturating());
  const auto se = ckt::measure_switching(bench, 4e-9, 2e-12);
  EXPECT_GT(se.t_phl_s, 1e-12);
  EXPECT_GT(se.t_plh_s, 1e-12);
  EXPECT_GT(se.energy_j, 0.0);
  // CV^2 = 10 fF * 1 V^2 = 10 fJ sets the scale; short-circuit adds more.
  EXPECT_GT(se.energy_j, 5e-15);
  EXPECT_LT(se.energy_j, 500e-15);
}

TEST(RingOscillator, OscillatesWithExpectedPeriodScale) {
  auto bench = ckt::make_ring_oscillator(saturating(), 3);
  sp::TransientOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 2e-12;
  const auto tr = sp::transient(*bench.ckt, opt, {"n0"});
  const double period =
      sp::oscillation_period(tr, "v(n0)", 0.5, 1);
  EXPECT_GT(period, 1e-11);
  EXPECT_LT(period, 2e-9);
}

TEST(CellBuilders, RejectNullAndBadArguments) {
  EXPECT_THROW(ckt::make_inverter(nullptr), carbon::phys::PreconditionError);
  EXPECT_THROW(ckt::make_ring_oscillator(saturating(), 4),
               carbon::phys::PreconditionError);
  EXPECT_THROW(ckt::make_inverter_chain(saturating(), 0),
               carbon::phys::PreconditionError);
}

}  // namespace
