// Self-consistent top-of-barrier solver: equilibrium, monotonicity,
// electrostatic control and the charge-feedback physics.
#include "phys/constants.h"
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "band/cnt.h"
#include "transport/top_of_barrier.h"

namespace {

namespace tr = carbon::transport;

tr::TopOfBarrierParams base_params() {
  tr::TopOfBarrierParams p;
  p.ladder = carbon::band::make_cnt_ladder_from_gap(0.56, 3);
  p.alpha_g = 0.97;
  p.alpha_d = 0.015;
  p.c_total = 5.6e-10;
  p.ef_source_ev = -0.14;
  p.include_holes = false;
  return p;
}

TEST(TopOfBarrier, EquilibriumHasZeroCurrentAndZeroShift) {
  const tr::TopOfBarrierSolver s(base_params());
  const auto st = s.solve(0.0, 0.0);
  EXPECT_NEAR(st.current_a, 0.0, 1e-18);
  EXPECT_NEAR(st.u_scf_ev, 0.0, 1e-5);
  EXPECT_NEAR(st.n_electrons, s.equilibrium_density(), 1e-3);
}

TEST(TopOfBarrier, CurrentMonotoneInGateVoltage) {
  const tr::TopOfBarrierSolver s(base_params());
  double prev = 0.0;
  for (double vg = 0.0; vg <= 0.8; vg += 0.05) {
    const double i = s.current(vg, 0.5);
    EXPECT_GT(i, prev) << "vg=" << vg;
    prev = i;
  }
}

TEST(TopOfBarrier, CurrentMonotoneInDrainVoltage) {
  const tr::TopOfBarrierSolver s(base_params());
  double prev = -1.0;
  for (double vd = 0.0; vd <= 0.6; vd += 0.04) {
    const double i = s.current(0.5, vd);
    EXPECT_GE(i, prev) << "vd=" << vd;
    prev = i;
  }
}

TEST(TopOfBarrier, OutputCurveSaturates) {
  // The defining well-behaved-FET property of Fig. 1(b): between
  // VDS = 0.2 V and 0.5 V the current "hardly changes".
  const tr::TopOfBarrierSolver s(base_params());
  const double i02 = s.current(0.5, 0.2);
  const double i05 = s.current(0.5, 0.5);
  EXPECT_LT(i05 / i02, 1.12);
  EXPECT_GE(i05, i02);
}

TEST(TopOfBarrier, SubthresholdSwingNearThermalLimit) {
  // SS = (kT/q) ln10 / alpha_g ~ 61.5/0.97 = 63 mV/dec.
  const tr::TopOfBarrierSolver s(base_params());
  const double i1 = s.current(0.05, 0.5);
  const double i2 = s.current(0.15, 0.5);
  const double ss = 0.1 / std::log10(i2 / i1) * 1e3;
  EXPECT_NEAR(ss, 61.5 / 0.97, 3.0);
}

TEST(TopOfBarrier, DiblFollowsAlphaD) {
  // In subthreshold, raising vd by dV lowers the barrier by alpha_d*dV:
  // current rises by exp(alpha_d dV / kT).
  tr::TopOfBarrierParams p = base_params();
  p.alpha_d = 0.10;
  const tr::TopOfBarrierSolver s(p);
  const double i1 = s.current(0.1, 0.3);
  const double i2 = s.current(0.1, 0.5);
  const double expected = std::exp(0.10 * 0.2 / 0.02585);
  EXPECT_NEAR(i2 / i1, expected, 0.12 * expected);
}

TEST(TopOfBarrier, ChargeFeedbackReducesOnCurrent) {
  // Halving C_total strengthens the Poisson push-back: less current at the
  // same gate drive (the quantum-capacitance effect).
  tr::TopOfBarrierParams weak = base_params();
  weak.c_total = 1.4e-10;
  const tr::TopOfBarrierSolver strong(base_params());
  const tr::TopOfBarrierSolver weaker(weak);
  EXPECT_GT(strong.current(0.6, 0.5), weaker.current(0.6, 0.5));
}

TEST(TopOfBarrier, GateControlScalesWithAlphaG) {
  tr::TopOfBarrierParams poor = base_params();
  poor.alpha_g = 0.55;  // back-gate-grade control
  const tr::TopOfBarrierSolver good(base_params());
  const tr::TopOfBarrierSolver bad(poor);
  // Same bias, worse gate: higher barrier, lower current.
  EXPECT_GT(good.current(0.4, 0.5), bad.current(0.4, 0.5));
}

TEST(TopOfBarrier, HoleBranchAddsAmbipolarLeakage) {
  tr::TopOfBarrierParams ambi = base_params();
  ambi.include_holes = true;
  const tr::TopOfBarrierSolver uni(base_params());
  const tr::TopOfBarrierSolver amb(ambi);
  // At negative gate drive and high vd the valence branch conducts.
  const double i_uni = uni.current(-0.3, 0.6);
  const double i_amb = amb.current(-0.3, 0.6);
  EXPECT_GT(i_amb, i_uni * 5.0);
}

TEST(TopOfBarrier, HolesOffEquilibriumIsConsistent) {
  // Regression for the p0 bookkeeping bug: with holes disabled the zero-
  // bias potential must stay ~0, not drift to +70 meV.
  tr::TopOfBarrierParams p = base_params();
  p.ef_source_ev = -0.32;  // deep: large would-be hole density
  const tr::TopOfBarrierSolver s(p);
  EXPECT_NEAR(s.solve(0.0, 0.0).u_scf_ev, 0.0, 1e-4);
  EXPECT_NEAR(s.solve(0.0, 0.5).u_scf_ev, -p.alpha_d * 0.5, 5e-3);
}

TEST(TopOfBarrier, DegeneracyRatioInSubthreshold) {
  // CNT (D=4) vs GNR (D=2) with identical gap and electrostatics: exactly
  // a factor 2 in subthreshold — invisible on the paper's log plot.
  tr::TopOfBarrierParams gnr = base_params();
  for (auto& sb : gnr.ladder.subbands) sb.degeneracy = 2;
  const tr::TopOfBarrierSolver cnt(base_params());
  const tr::TopOfBarrierSolver gnr_s(gnr);
  const double ratio = cnt.current(0.1, 0.5) / gnr_s.current(0.1, 0.5);
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(TopOfBarrier, SolverValidatesParameters) {
  tr::TopOfBarrierParams p = base_params();
  p.c_total = 0.0;
  EXPECT_THROW(tr::TopOfBarrierSolver{p}, carbon::phys::PreconditionError);
  p = base_params();
  p.alpha_g = 1.5;
  EXPECT_THROW(tr::TopOfBarrierSolver{p}, carbon::phys::PreconditionError);
  p = base_params();
  p.ladder.subbands.clear();
  EXPECT_THROW(tr::TopOfBarrierSolver{p}, carbon::phys::PreconditionError);
}

// Property sweep: the converged state must satisfy its own self-consistency
// equation across the bias plane.
class TobBiasGrid
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(TobBiasGrid, SelfConsistencyResidualSmall) {
  const auto [vg, vd] = GetParam();
  const tr::TopOfBarrierParams p = base_params();
  const tr::TopOfBarrierSolver s(p);
  const auto st = s.solve(vg, vd);
  const double u_l = -(p.alpha_g * vg + p.alpha_d * vd);
  const double charging = carbon::phys::kQ / p.c_total;
  const double residual =
      st.u_scf_ev - u_l -
      charging * (st.n_electrons - s.equilibrium_density());
  EXPECT_NEAR(residual, 0.0, 1e-6) << "vg=" << vg << " vd=" << vd;
}

INSTANTIATE_TEST_SUITE_P(
    BiasPlane, TobBiasGrid,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{0.2, 0.1},
                      std::pair{0.4, 0.3}, std::pair{0.6, 0.5},
                      std::pair{0.8, 0.6}, std::pair{0.3, 0.6}));

TEST(TopOfBarrier, DeepBiasSweepStaysOnDensityTable) {
  // The old fixed +-2.5 eV eta window was exceeded by deep gate sweeps,
  // silently degrading every residual evaluation to the exact DOS integral.
  // The window now covers the ladder extent plus a bias allowance, so a
  // +-2 V sweep must never leave the table.
  tr::TopOfBarrierParams p = base_params();
  p.include_holes = true;
  const tr::TopOfBarrierSolver s(p);
  for (double vg = -2.0; vg <= 2.0; vg += 0.25) {
    const auto st = s.solve(vg, 0.5);
    EXPECT_EQ(st.table_fallbacks, 0) << "vg=" << vg;
  }
}

TEST(TopOfBarrier, FallbacksAreCountedPastTheWindow) {
  // Drive the barrier far beyond any physical bias: the exact-integral
  // fallback must kick in and be reported instead of staying silent.
  const tr::TopOfBarrierSolver s(base_params());
  const auto st = s.solve(12.0, 0.0);
  EXPECT_GT(st.table_fallbacks, 0);
}

}  // namespace
