// Fault-tolerant ensemble engine: per-trial fault isolation across every
// injected failure kind, retry escalation recovering recoverable corners,
// per-trial and per-batch deadlines, cooperative cancellation mid-Newton
// and mid-transient, deterministic checkpoint/resume with bit-identical
// statistics, thread-count invariance, and the JSON report surface.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "circuit/cells.h"
#include "circuit/sram.h"
#include "device/alpha_power.h"
#include "device/faulty.h"
#include "device/ivmodel.h"
#include "fab/devstats.h"
#include "phys/cancel.h"
#include "phys/require.h"
#include "spice/analyses.h"
#include "spice/circuit.h"
#include "spice/ensemble.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;
namespace cc = carbon::circuit;
namespace fab = carbon::fab;
namespace phys = carbon::phys;

dev::AlphaPowerParams nominal_params() {
  return dev::make_fig2_saturating_params();
}

// ---------------------------------------------------------------------------
// Worker state for the cheap DC yield trials: one inverter bench + Newton
// workspace per worker, device models swapped per trial (topology and the
// shared matrix pattern stay fixed).
// ---------------------------------------------------------------------------

struct InvWorker {
  cc::InverterBench bench;
  sp::NewtonWorkspace ws;
  sp::Fet* nfet = nullptr;
  sp::Fet* pfet = nullptr;
};

std::shared_ptr<InvWorker> make_inv_worker() {
  auto w = std::make_shared<InvWorker>();
  w->bench = cc::make_inverter(
      std::make_shared<dev::AlphaPowerModel>(nominal_params()));
  w->bench.vin->set_wave(sp::dc(0.45));
  for (const auto& el : w->bench.ckt->elements()) {
    if (auto* f = dynamic_cast<sp::Fet*>(el.get())) {
      (f->model().polarity() == dev::Polarity::kPType ? w->pfet : w->nfet) = f;
    }
  }
  return w;
}

using FaultChooser = std::function<dev::FaultSpec(long index)>;

/// DC trial: perturb the nominal device from the trial's RNG stream,
/// optionally wrap it in an injected fault, swap it into the shared bench
/// and solve the operating point.  Metric = v(out); pass = output high.
sp::EnsembleRunner::TrialFn inv_trial(std::shared_ptr<InvWorker> w,
                                      FaultChooser fault = nullptr) {
  return [w, fault](sp::TrialContext& tctx) -> sp::TrialMeasurement {
    fab::DeviceVariation var;
    const auto p = fab::perturb_alpha_power(nominal_params(), var, tctx.rng);
    dev::DeviceModelPtr n = std::make_shared<dev::AlphaPowerModel>(p);
    if (fault) {
      const dev::FaultSpec spec = fault(tctx.index);
      if (spec.kind != dev::FaultKind::kNone) n = dev::with_fault(n, spec);
    }
    w->nfet->set_model(n);
    w->pfet->set_model(std::make_shared<dev::PTypeMirror>(n));
    w->bench.ckt->reset_state();
    const auto sol =
        sp::operating_point(*w->bench.ckt, tctx.solver, nullptr, &w->ws);
    const double vout = sp::node_voltage(*w->bench.ckt, sol, "out");
    sp::TrialMeasurement m;
    m.metric = vout;
    m.pass = vout > 0.5;
    m.stats.op = sol.stats;
    return m;
  };
}

std::string temp_ckpt(const std::string& tag) {
  const auto path =
      std::filesystem::temp_directory_path() / ("carbon_ens_" + tag + ".ckpt");
  std::filesystem::remove(path);
  return path.string();
}

// ---------------------------------------------------------------------------
// Fault isolation
// ---------------------------------------------------------------------------

TEST(Ensemble, IsolatesEveryTrialFault) {
  sp::EnsembleOptions eo;
  eo.seed = 11;
  eo.num_threads = 2;
  eo.max_retries = 0;
  eo.trial_deadline_s = 0.15;
  const long n = 12;
  const auto fault = [](long i) {
    dev::FaultSpec s;
    if (i == 3) {
      s.kind = dev::FaultKind::kNanEval;  // permanent NaN from eval 0
    } else if (i == 5) {
      s.kind = dev::FaultKind::kOpenCircuit;
    } else if (i == 7) {
      s.kind = dev::FaultKind::kStall;  // 50 ms/eval vs a 150 ms deadline
      s.stall_s = 50e-3;
    }
    return s;
  };
  sp::EnsembleRunner runner(eo);
  const auto res = runner.run(n, [&](int) {
    auto w = make_inv_worker();
    auto base = inv_trial(w, fault);
    return [base](sp::TrialContext& tctx) -> sp::TrialMeasurement {
      if (tctx.index == 9) throw std::runtime_error("synthetic trial bug");
      return base(tctx);
    };
  });

  ASSERT_EQ(static_cast<long>(res.trials.size()), n);
  // Every trial has a terminal structured record; the batch completed.
  for (const auto& r : res.trials) {
    EXPECT_NE(r.outcome, sp::TrialOutcome::kCancelled) << "trial " << r.index;
  }
  // NaN device: the ladder fails with a non-finite attribution.
  const auto& nan_trial = res.trials[3];
  EXPECT_FALSE(nan_trial.ok);
  EXPECT_EQ(nan_trial.outcome, sp::TrialOutcome::kSolveFailure);
  EXPECT_EQ(nan_trial.failure.cause, sp::SolveFailure::Cause::kNonFinite);
  EXPECT_FALSE(nan_trial.error.empty());
  // Stalled device: the per-trial deadline converts the hang to timed_out.
  const auto& stall_trial = res.trials[7];
  EXPECT_FALSE(stall_trial.ok);
  EXPECT_EQ(stall_trial.outcome, sp::TrialOutcome::kTimedOut);
  // A bug in the trial body itself is contained too.
  const auto& bug_trial = res.trials[9];
  EXPECT_FALSE(bug_trial.ok);
  EXPECT_EQ(bug_trial.outcome, sp::TrialOutcome::kError);
  EXPECT_NE(bug_trial.error.find("synthetic trial bug"), std::string::npos);
  // The healthy neighbours all succeeded despite sharing workers with the
  // faulty ones.
  for (long i : {0L, 1L, 2L, 4L, 6L, 8L, 10L, 11L}) {
    EXPECT_TRUE(res.trials[i].ok) << "trial " << i << ": "
                                  << res.trials[i].error;
  }
  EXPECT_EQ(res.summary.trials, n);
  EXPECT_GE(res.summary.failed, 2);
  EXPECT_EQ(res.summary.timed_out, 1);
  EXPECT_FALSE(res.summary.failure_taxonomy.empty());
}

// ---------------------------------------------------------------------------
// Retry escalation
// ---------------------------------------------------------------------------

TEST(Ensemble, EscalationPolicyStrengthensMonotonically) {
  sp::SolverOptions base;
  base.allow_gmin_stepping = false;
  base.allow_source_stepping = false;
  base.allow_pseudo_transient = false;
  const auto a0 = sp::EnsembleRunner::escalate_solver(base, 0);
  EXPECT_FALSE(a0.allow_gmin_stepping);  // attempt 0 = the caller's options
  const auto a1 = sp::EnsembleRunner::escalate_solver(base, 1);
  const auto a2 = sp::EnsembleRunner::escalate_solver(base, 2);
  EXPECT_TRUE(a1.allow_gmin_stepping);
  EXPECT_TRUE(a1.allow_source_stepping);
  EXPECT_TRUE(a1.allow_pseudo_transient);
  EXPECT_GT(a1.max_iterations, base.max_iterations);
  EXPECT_GT(a2.max_iterations, a1.max_iterations);
  EXPECT_LT(a1.v_step_limit, base.v_step_limit);  // tighter damping
  EXPECT_GT(a2.gmin_max_rungs, a1.gmin_max_rungs);

  sp::TransientOptions t1;
  t1.dt = 1e-12;
  t1.max_step_halvings = 12;
  sp::EnsembleRunner::escalate_transient(t1, 1);
  EXPECT_LT(t1.dt, 1e-12);
  EXPECT_GT(t1.max_step_halvings, 12);
}

TEST(Ensemble, RetryRecoversNonMonotoneCorner) {
  // The injected wiggle defeats plain damped Newton (the weak attempt-0
  // options below), but the escalated retry opens the full ladder, which
  // cracks it — the "recoverable corner" contract.
  sp::EnsembleOptions eo;
  eo.seed = 21;
  eo.num_threads = 1;
  eo.max_retries = 2;
  eo.solver.allow_gmin_stepping = false;
  eo.solver.allow_source_stepping = false;
  eo.solver.allow_pseudo_transient = false;
  const auto fault = [](long i) {
    dev::FaultSpec s;
    if (i == 1) {
      s.kind = dev::FaultKind::kNonMonotone;
      s.wiggle_amp_a = 3e-4;        // comparable to the device's mA-scale
      s.wiggle_freq_per_v = 300.0;  // current: folds the I-V hard
    }
    return s;
  };
  sp::EnsembleRunner runner(eo);
  const auto res =
      runner.run(3, [&](int) { return inv_trial(make_inv_worker(), fault); });
  const auto& wiggly = res.trials[1];
  EXPECT_TRUE(wiggly.ok) << wiggly.error;
  EXPECT_GE(wiggly.retries, 1);
  EXPECT_GE(res.summary.recovered_by_retry, 1);
  EXPECT_GE(res.summary.retries_total, 1);
  // Clean trials did not pay for the faulty one's retries.
  EXPECT_EQ(res.trials[0].retries, 0);
  EXPECT_EQ(res.trials[2].retries, 0);
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation
// ---------------------------------------------------------------------------

TEST(Cancellation, StopsNewtonMidSolve) {
  // Every eval sleeps 10 ms; the armed 40 ms deadline fires between Newton
  // iterations and unwinds as CancelledError — NOT as a convergence
  // failure the escalation ladder would swallow.
  dev::FaultSpec s;
  s.kind = dev::FaultKind::kStall;
  s.stall_s = 10e-3;
  auto bench = cc::make_inverter(dev::with_fault(
      std::make_shared<dev::AlphaPowerModel>(nominal_params()), s));
  phys::CancelToken tok;
  tok.set_deadline_after(0.04);
  sp::SolverOptions o;
  o.cancel = &tok;
  EXPECT_THROW(sp::operating_point(*bench.ckt, o), phys::CancelledError);
}

TEST(Cancellation, StopsTransientMidRun) {
  // The stall arms only after 200 faithful evals, so the operating point
  // succeeds and the deadline fires inside the step loop.
  dev::FaultSpec s;
  s.kind = dev::FaultKind::kStall;
  s.stall_s = 10e-3;
  s.trigger_evals = 200;
  auto bench = cc::make_inverter(dev::with_fault(
      std::make_shared<dev::AlphaPowerModel>(nominal_params()), s));
  phys::CancelToken tok;
  tok.set_deadline_after(0.05);
  sp::TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 1e-12;
  opt.solver.cancel = &tok;
  EXPECT_THROW(sp::transient(*bench.ckt, opt, {"out"}), phys::CancelledError);
}

TEST(Cancellation, ExplicitCancelWinsImmediately) {
  auto bench = cc::make_inverter(
      std::make_shared<dev::AlphaPowerModel>(nominal_params()));
  phys::CancelToken tok;
  tok.cancel();
  sp::SolverOptions o;
  o.cancel = &tok;
  try {
    sp::operating_point(*bench.ckt, o);
    FAIL() << "expected CancelledError";
  } catch (const phys::CancelledError& e) {
    EXPECT_FALSE(e.deadline_expired());
  }
}

TEST(Ensemble, BatchDeadlineExpiresMidEnsemble) {
  // Two workers; the first few trials per block are fast, then every trial
  // stalls.  The 250 ms batch budget lets the fast ones finish, converts
  // the in-flight stalled ones to timed_out, and stamps structured
  // "never ran" records on the rest — the batch returns promptly either
  // way.
  sp::EnsembleOptions eo;
  eo.seed = 31;
  eo.num_threads = 2;
  eo.max_retries = 0;
  eo.batch_deadline_s = 0.25;
  const long n = 30;
  const auto fault = [](long i) {
    dev::FaultSpec s;
    if (i % 15 >= 4) {  // indices 0-3 and 15-18 are healthy
      s.kind = dev::FaultKind::kStall;
      s.stall_s = 25e-3;
    }
    return s;
  };
  sp::EnsembleRunner runner(eo);
  const auto res =
      runner.run(n, [&](int) { return inv_trial(make_inv_worker(), fault); });
  EXPECT_GE(res.summary.ok, 2);
  EXPECT_GE(res.summary.timed_out, n / 2);
  EXPECT_EQ(res.summary.ok + res.summary.timed_out + res.summary.failed +
                res.summary.cancelled,
            n);
  // The batch did not run anywhere near the serial stall time (~16 s).
  EXPECT_LT(res.summary.wall_s, 5.0);
  for (const auto& r : res.trials) {
    if (!r.ok) EXPECT_EQ(r.outcome, sp::TrialOutcome::kTimedOut);
  }
}

TEST(Ensemble, ExternalCancelStopsBatch) {
  auto external = std::make_shared<phys::CancelToken>();
  sp::EnsembleOptions eo;
  eo.seed = 41;
  eo.num_threads = 1;  // deterministic order: trial k runs k-th
  eo.cancel = external.get();
  sp::EnsembleRunner runner(eo);
  const auto res = runner.run(10, [&](int) {
    auto base = inv_trial(make_inv_worker());
    return [base, external](sp::TrialContext& tctx) -> sp::TrialMeasurement {
      auto m = base(tctx);
      if (tctx.index == 2) external->cancel();  // after finishing trial 2
      return m;
    };
  });
  EXPECT_TRUE(res.trials[0].ok);
  EXPECT_TRUE(res.trials[2].ok);
  for (long i = 3; i < 10; ++i) {
    EXPECT_EQ(res.trials[i].outcome, sp::TrialOutcome::kCancelled);
  }
  EXPECT_EQ(res.summary.cancelled, 7);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

sp::EnsembleOptions ckpt_options(const std::string& path) {
  sp::EnsembleOptions eo;
  eo.seed = 77;
  eo.num_threads = 2;
  eo.max_retries = 1;
  eo.checkpoint_path = path;
  eo.config_tag = "dc-yield-v1";
  return eo;
}

FaultChooser sparse_nan_fault() {
  return [](long i) {
    dev::FaultSpec s;
    if (i % 10 == 7) s.kind = dev::FaultKind::kNanEval;
    return s;
  };
}

void expect_bit_identical(const sp::EnsembleResult& a,
                          const sp::EnsembleResult& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].ok, b.trials[i].ok) << "trial " << i;
    EXPECT_EQ(a.trials[i].pass, b.trials[i].pass) << "trial " << i;
    EXPECT_EQ(a.trials[i].metric, b.trials[i].metric)
        << "trial " << i << " (bit-identical metric)";
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(a.trials[i].retries, b.trials[i].retries) << "trial " << i;
  }
  EXPECT_EQ(a.summary.ok, b.summary.ok);
  EXPECT_EQ(a.summary.passed, b.summary.passed);
  EXPECT_EQ(a.summary.yield, b.summary.yield);
  EXPECT_EQ(a.summary.retries_total, b.summary.retries_total);
}

TEST(EnsembleCheckpoint, KilledRunResumesBitIdentical) {
  const long n = 40;
  // Reference: one uninterrupted run, no checkpoint.
  sp::EnsembleOptions ref = ckpt_options("");
  const auto full = sp::EnsembleRunner(ref).run(
      n, [&](int) { return inv_trial(make_inv_worker(), sparse_nan_fault()); });

  // Interrupted run: an external cancel "kills" the batch partway through.
  const std::string path = temp_ckpt("resume");
  phys::CancelToken killer;
  std::atomic<long> completed{0};
  sp::EnsembleOptions eo = ckpt_options(path);
  eo.cancel = &killer;
  const auto partial = sp::EnsembleRunner(eo).run(n, [&](int) {
    auto base = inv_trial(make_inv_worker(), sparse_nan_fault());
    return [base, &killer,
            &completed](sp::TrialContext& tctx) -> sp::TrialMeasurement {
      auto m = base(tctx);
      if (completed.fetch_add(1) + 1 >= 10) killer.cancel();
      return m;
    };
  });
  const long done = partial.summary.ok + partial.summary.failed;
  ASSERT_GT(done, 0);
  ASSERT_LT(done, n) << "the kill must interrupt the batch for this test";
  ASSERT_GT(partial.summary.cancelled, 0);

  // Resume: same configuration, no kill.  Loaded trials are not re-run.
  sp::EnsembleOptions resume = ckpt_options(path);
  const auto resumed = sp::EnsembleRunner(resume).run(n, [&](int) {
    return inv_trial(make_inv_worker(), sparse_nan_fault());
  });
  EXPECT_GT(resumed.summary.from_checkpoint, 0);
  EXPECT_EQ(resumed.summary.cancelled, 0);
  expect_bit_identical(full, resumed);

  // And a second resume is a pure replay: everything from the checkpoint.
  const auto replay = sp::EnsembleRunner(resume).run(n, [&](int) {
    return inv_trial(make_inv_worker(), sparse_nan_fault());
  });
  EXPECT_EQ(replay.summary.from_checkpoint, n);
  expect_bit_identical(full, replay);
  std::filesystem::remove(path);
}

TEST(EnsembleCheckpoint, ToleratesTornTail) {
  const long n = 12;
  const std::string path = temp_ckpt("torn");
  sp::EnsembleOptions eo = ckpt_options(path);
  const auto full = sp::EnsembleRunner(eo).run(
      n, [&](int) { return inv_trial(make_inv_worker()); });

  // Simulate a kill mid-append: chop a few bytes off the last record.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  const auto resumed = sp::EnsembleRunner(eo).run(
      n, [&](int) { return inv_trial(make_inv_worker()); });
  EXPECT_EQ(resumed.summary.from_checkpoint, n - 1);  // torn record re-ran
  expect_bit_identical(full, resumed);
  std::filesystem::remove(path);
}

TEST(EnsembleCheckpoint, RejectsMismatchedConfiguration) {
  const long n = 4;
  const std::string path = temp_ckpt("mismatch");
  sp::EnsembleOptions eo = ckpt_options(path);
  sp::EnsembleRunner(eo).run(n,
                             [&](int) { return inv_trial(make_inv_worker()); });
  sp::EnsembleOptions other = eo;
  other.seed = 78;  // different stream: its results must not be mixed in
  EXPECT_THROW(sp::EnsembleRunner(other).run(
                   n, [&](int) { return inv_trial(make_inv_worker()); }),
               carbon::phys::PreconditionError);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(Ensemble, ThreadCountInvariant) {
  const long n = 64;
  auto run_with = [&](int threads) {
    sp::EnsembleOptions eo;
    eo.seed = 55;
    eo.num_threads = threads;
    eo.max_retries = 1;
    return sp::EnsembleRunner(eo).run(n, [&](int) {
      return inv_trial(make_inv_worker(), sparse_nan_fault());
    });
  };
  const auto one = run_with(1);
  const auto four = run_with(4);
  expect_bit_identical(one, four);
}

// ---------------------------------------------------------------------------
// Scale: the acceptance workload (cheap DC trials)
// ---------------------------------------------------------------------------

TEST(Ensemble, ThousandTrialsWithInjectedFaultsComplete) {
  sp::EnsembleOptions eo;
  eo.seed = 99;
  eo.max_retries = 1;
  const long n = 1000;
  const auto fault = [](long i) {
    dev::FaultSpec s;
    if (i % 20 == 7) s.kind = dev::FaultKind::kNanEval;       // 5%
    else if (i % 50 == 13) s.kind = dev::FaultKind::kOpenCircuit;
    return s;
  };
  sp::EnsembleRunner runner(eo);
  const auto res =
      runner.run(n, [&](int) { return inv_trial(make_inv_worker(), fault); });
  EXPECT_EQ(res.summary.trials, n);
  EXPECT_EQ(res.summary.ok + res.summary.failed + res.summary.timed_out +
                res.summary.cancelled,
            n);
  EXPECT_EQ(res.summary.cancelled, 0);
  EXPECT_EQ(res.summary.timed_out, 0);
  EXPECT_GE(res.summary.failed, 50);  // every NaN trial fails structurally
  EXPECT_GE(res.summary.ok, 900);
  EXPECT_GT(res.summary.yield, 0.0);
  EXPECT_FALSE(res.summary.failure_taxonomy.empty());
  // Every NaN-injected trial carries a structured, attributed record.
  for (long i = 7; i < n; i += 20) {
    EXPECT_FALSE(res.trials[i].ok);
    EXPECT_EQ(res.trials[i].outcome, sp::TrialOutcome::kSolveFailure);
    EXPECT_EQ(res.trials[i].failure.cause, sp::SolveFailure::Cause::kNonFinite);
  }
}

// ---------------------------------------------------------------------------
// SRAM-write transient realism
// ---------------------------------------------------------------------------

TEST(Ensemble, SramWriteYieldWithFaultInjection) {
  sp::EnsembleOptions eo;
  eo.seed = 123;
  eo.max_retries = 1;
  eo.trial_deadline_s = 30.0;  // generous; guards the suite against hangs
  const long n = 24;
  const auto fault = [](long i) {
    dev::FaultSpec s;
    if (i % 6 == 2) {  // ~17% fault-injected trials
      s.kind = dev::FaultKind::kNanEval;
      s.trigger_evals = 400;  // arm mid-transient, past the operating point
    }
    return s;
  };
  sp::EnsembleRunner runner(eo);
  const auto res = runner.run(n, [&](int) {
    struct Worker {
      cc::SramWriteBench bench;
      sp::NewtonWorkspace ws;
      std::vector<sp::Fet*> nfets, pfets;
    };
    auto w = std::make_shared<Worker>();
    w->bench = cc::make_sram_write_bench(
        std::make_shared<dev::AlphaPowerModel>(nominal_params()));
    for (const auto& el : w->bench.ckt->elements()) {
      if (auto* f = dynamic_cast<sp::Fet*>(el.get())) {
        (f->model().polarity() == dev::Polarity::kPType ? w->pfets : w->nfets)
            .push_back(f);
      }
    }
    return [w, fault](sp::TrialContext& tctx) -> sp::TrialMeasurement {
      fab::DeviceVariation var;
      const auto p = fab::perturb_alpha_power(nominal_params(), var, tctx.rng);
      dev::DeviceModelPtr nm = std::make_shared<dev::AlphaPowerModel>(p);
      const dev::FaultSpec spec = fault(tctx.index);
      if (spec.kind != dev::FaultKind::kNone) nm = dev::with_fault(nm, spec);
      for (auto* f : w->nfets) f->set_model(nm);
      auto pm = std::make_shared<dev::PTypeMirror>(nm);
      for (auto* f : w->pfets) f->set_model(pm);
      w->bench.ckt->reset_state();

      sp::TransientOptions base;
      base.t_stop = 4e-9;
      base.dt = 1e-12;
      base.adaptive = true;
      base.lte_reltol = 1e-3;
      base.dt_print = 20e-12;
      base.ic = sp::TransientIc::kFromOperatingPoint;
      base.workspace = &w->ws;
      sp::TransientOptions opt = tctx.tuned(base);
      sp::TrialMeasurement m;
      opt.stats = &m.stats;
      const auto tr = sp::transient(*w->bench.ckt, opt, {"q", "qb"});
      const double q_end = tr.at(tr.num_rows() - 1, 1);
      const double qb_end = tr.at(tr.num_rows() - 1, 2);
      m.metric = q_end;
      m.pass = q_end < 0.1 && qb_end > 0.5;  // the write flipped the cell
      return m;
    };
  });
  EXPECT_EQ(res.summary.trials, n);
  EXPECT_EQ(res.summary.cancelled, 0);
  EXPECT_EQ(res.summary.timed_out, 0);
  // All fault-free trials complete and the nominal cell writes correctly.
  EXPECT_GE(res.summary.ok, n - 4 - 2);
  EXPECT_GT(res.summary.passed, n / 2);
  // Every injected mid-transient NaN produced a structured failure record.
  long injected_failures = 0;
  for (long i = 2; i < n; i += 6) {
    if (!res.trials[i].ok) {
      ++injected_failures;
      EXPECT_NE(res.trials[i].taxonomy(), "ok");
      EXPECT_FALSE(res.trials[i].error.empty());
    }
  }
  EXPECT_GE(injected_failures, 3);
}

// ---------------------------------------------------------------------------
// JSON report surface
// ---------------------------------------------------------------------------

TEST(EnsembleJson, SerializesTrialsAndSummary) {
  sp::EnsembleOptions eo;
  eo.seed = 7;
  eo.num_threads = 1;
  eo.max_retries = 0;
  const auto fault = [](long i) {
    dev::FaultSpec s;
    if (i == 1) s.kind = dev::FaultKind::kNanEval;
    return s;
  };
  const auto res = sp::EnsembleRunner(eo).run(
      3, [&](int) { return inv_trial(make_inv_worker(), fault); });
  const std::string text = to_json(res).dump(2);
  EXPECT_NE(text.find("\"summary\""), std::string::npos);
  EXPECT_NE(text.find("\"failure_taxonomy\""), std::string::npos);
  EXPECT_NE(text.find("\"solve-failure/"), std::string::npos);
  EXPECT_NE(text.find("\"yield\""), std::string::npos);
  // The failed trial carries its structured failure block.
  EXPECT_NE(text.find("\"cause\": \"non-finite\""), std::string::npos);

  // Compact dump is valid single-line JSON-ish (no stray newlines).
  const std::string compact = to_json(res.summary).dump();
  EXPECT_EQ(compact.find('\n'), std::string::npos);

  // String escaping round-trips quotes and control characters.
  auto j = carbon::core::Json::object();
  j.set("k", "a\"b\\c\n\x01");
  EXPECT_EQ(j.dump(), "{\"k\":\"a\\\"b\\\\c\\n\\u0001\"}");
}

}  // namespace
