// The two GNR models: the simulated ballistic GNR-FET of Fig. 1 (overlaps
// the CNT on a log plot) and the experimental linear-resistor GNR.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "device/cntfet.h"
#include "device/gnrfet.h"
#include "device/linear_fet.h"
#include "device/real_gnr.h"

namespace {

namespace dev = carbon::device;

TEST(GnrfetSim, MatchesPaperRibbon) {
  const dev::GnrfetModel m(dev::make_fig1_gnrfet_params());
  EXPECT_NEAR(m.band_gap(), 0.56, 1e-9);
  EXPECT_NEAR(m.width() * 1e9, 2.09, 0.05);
}

TEST(GnrfetSim, SaturatesLikeTheCnt) {
  const dev::GnrfetModel m(dev::make_fig1_gnrfet_params());
  const double ratio = m.drain_current(0.5, 0.5) / m.drain_current(0.5, 0.2);
  EXPECT_LT(ratio, 1.15);
}

TEST(GnrfetSim, LogScaleOverlapWithCnt) {
  // Fig. 1(a): "the data overlap on this scale" — the CNT/GNR current
  // ratio stays within one minor division (< 4x) over seven decades.
  const dev::CntfetModel cnt(dev::make_fig1_cntfet_params());
  const dev::GnrfetModel gnr(dev::make_fig1_gnrfet_params());
  for (double vg = 0.0; vg <= 0.6; vg += 0.1) {
    const double ratio =
        cnt.drain_current(vg, 0.5) / gnr.drain_current(vg, 0.5);
    EXPECT_GT(ratio, 1.0) << "vg=" << vg;
    EXPECT_LT(ratio, 4.0) << "vg=" << vg;
  }
}

TEST(GnrfetSim, LinearScaleDifferenceVisible) {
  // Fig. 1(b): "only a small difference, which shows up in the linear
  // plot": the GNR carries measurably less on-current (2-fold degeneracy).
  const dev::CntfetModel cnt(dev::make_fig1_cntfet_params());
  const dev::GnrfetModel gnr(dev::make_fig1_gnrfet_params());
  const double ratio = cnt.drain_current(0.5, 0.5) / gnr.drain_current(0.5, 0.5);
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 4.0);
}

TEST(GnrfetSim, MetallicRibbonRejected) {
  dev::GnrfetParams p;
  p.num_dimer_lines = 14;  // 3q+2: gapless without edge correction
  p.band_gap_override.reset();
  EXPECT_THROW(dev::GnrfetModel{p}, carbon::phys::PreconditionError);
}

TEST(RealGnr, StrictlyLinearOutput) {
  const dev::RealGnrModel m(dev::make_wang_gnr_params());
  // No saturation whatsoever: I(2*vd) = 2*I(vd) exactly, at any gate bias.
  for (double vg : {0.5, 1.5, 2.5}) {
    const double i1 = m.drain_current(vg, 0.25);
    const double i2 = m.drain_current(vg, 0.50);
    EXPECT_NEAR(i2 / i1, 2.0, 1e-12) << "vg=" << vg;
  }
}

TEST(RealGnr, CalibratedToWangNumbers) {
  // 2 mA/um at VDS = 1 V in the on-state; Ion/Ioff = 1e6 across the sweep.
  const dev::RealGnrModel m(dev::make_wang_gnr_params());
  const double w_um = m.width_normalization() * 1e6;
  const double on = m.drain_current(6.0, 1.0) / w_um;  // deep on-state
  EXPECT_NEAR(on * 1e3, 2.0, 0.2);  // mA/um
  const double onoff = m.conductance(6.0) / m.conductance(-4.0);
  EXPECT_NEAR(onoff, 1e6, 2e5);
}

TEST(RealGnr, NoSaturationMeansLowIntrinsicGain) {
  // In a CMOS-scale bias window (|V| <= 0.5 V) the linear device's gain
  // gm/gds = (dlnG/dVg) * Vds stays at or below ~1: no amplification, no
  // logic.  (At multi-volt back-gate drive the slope term can exceed 1 —
  // which is why the experiments need volts where CMOS has half of one.)
  const dev::RealGnrModel m(dev::make_wang_gnr_params());
  const double gain = carbon::device::intrinsic_gain(m, 0.5, 0.5);
  EXPECT_LT(gain, 1.5);
  // And the gain identity of a conductance-steered resistor holds.
  const double slope = (std::log(m.conductance(0.51)) -
                        std::log(m.conductance(0.49))) / 0.02;
  EXPECT_NEAR(carbon::device::intrinsic_gain(m, 0.5, 0.4), slope * 0.4,
              0.05 * slope * 0.4);
}

TEST(RealGnr, GateSweepIsMonotone) {
  const dev::RealGnrModel m(dev::make_wang_gnr_params());
  double prev = 0.0;
  for (double vg = -4.0; vg <= 6.0; vg += 0.5) {
    const double g = m.conductance(vg);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(LinearFet, Fig2DeviceTurnsOffButNeverSaturates) {
  const dev::LinearFetModel m(dev::make_fig2_linear_params());
  // Turns off below threshold...
  EXPECT_LT(m.drain_current(-0.4, 1.0), 0.01 * m.drain_current(1.0, 1.0));
  // ...but output stays linear at every gate voltage.
  for (double vg : {0.4, 0.7, 1.0}) {
    EXPECT_NEAR(m.drain_current(vg, 1.0) / m.drain_current(vg, 0.5), 2.0,
                1e-9);
  }
}

TEST(LinearFet, MatchesSaturatingTwinOnCurrent) {
  // Fig. 2 compares devices with the same I(1 V, 1 V) scale (~0.4 mA).
  const dev::LinearFetModel m(dev::make_fig2_linear_params());
  EXPECT_NEAR(m.drain_current(1.0, 1.0) * 1e3, 0.43, 0.08);  // mA
}

TEST(LinearFet, EquallySpacedOutputLines) {
  // Conductance linear in overdrive: G(0.8)-G(0.6) = G(0.6)-G(0.4).
  const dev::LinearFetModel m(dev::make_fig2_linear_params());
  const double g1 = m.conductance(0.4);
  const double g2 = m.conductance(0.6);
  const double g3 = m.conductance(0.8);
  EXPECT_NEAR((g3 - g2) / (g2 - g1), 1.0, 0.05);
}

}  // namespace
