// Virtual-source baselines (Si trigate, InAs/InGaAs HEMT), the alpha-power
// Fig. 2 device, and the Skotnicki-Boeuf dark-space electrostatics.
#include <gtest/gtest.h>

#include <cmath>

#include "device/alpha_power.h"
#include "device/mosfet.h"
#include "device/rf_metrics.h"

namespace {

namespace dev = carbon::device;

TEST(SiTrigate, PaperCalibrationPoint) {
  // "~66 uA at VDS = 1 V and VGS = 1 V" for the 30 nm trigate fin.
  const dev::VirtualSourceModel m(dev::make_si_trigate_params(30e-9));
  EXPECT_NEAR(m.drain_current(1.0, 1.0) * 1e6, 66.0, 12.0);
}

TEST(SiTrigate, WeffIs88nm) {
  const auto p = dev::make_si_trigate_params();
  EXPECT_NEAR(p.width * 1e9, 88.0, 1e-9);
}

TEST(VirtualSource, OutputSaturates) {
  const dev::VirtualSourceModel m(dev::make_si_trigate_params());
  const double ratio = m.drain_current(1.0, 1.0) / m.drain_current(1.0, 0.6);
  EXPECT_LT(ratio, 1.25);
}

TEST(VirtualSource, InAsBeatsSiAtLowVoltage) {
  // del Alamo's headline: III-V HEMTs deliver more current at VDD = 0.5 V.
  const dev::VirtualSourceModel si(dev::make_si_trigate_params(30e-9));
  const dev::VirtualSourceModel inas(dev::make_inas_hemt_params(30e-9));
  const double si_ma_um =
      si.drain_current(0.5, 0.5) / (si.width_normalization() * 1e6) * 1e3;
  const double inas_ma_um =
      inas.drain_current(0.5, 0.5) / (inas.width_normalization() * 1e6) * 1e3;
  EXPECT_GT(inas_ma_um, si_ma_um);
  EXPECT_NEAR(inas_ma_um, 0.55, 0.2);  // ~0.5-0.6 mA/um benchmark band
}

TEST(VirtualSource, InGaAsBelowInAs) {
  const dev::VirtualSourceModel inas(dev::make_inas_hemt_params(30e-9));
  const dev::VirtualSourceModel ingaas(dev::make_ingaas_hemt_params(30e-9));
  EXPECT_GT(inas.drain_current(0.5, 0.5), ingaas.drain_current(0.5, 0.5));
}

TEST(DarkSpace, IIIVScaleLengthExceedsSi) {
  // The Skotnicki-Boeuf penalty: low DOS + high permittivity = large dark
  // space = larger electrostatic scale length despite high-k gating.
  const auto si = dev::make_si_trigate_params(30e-9);
  const auto inas = dev::make_inas_hemt_params(30e-9);
  EXPECT_GT(inas.scale_length_m(), si.scale_length_m());
}

TEST(DarkSpace, ShortChannelDegradesIIIVFaster) {
  const auto long_inas = dev::make_inas_hemt_params(60e-9);
  const auto short_inas = dev::make_inas_hemt_params(15e-9);
  EXPECT_GT(short_inas.dibl(), 3.0 * long_inas.dibl());
  EXPECT_GT(short_inas.ideality(), long_inas.ideality());
}

TEST(DarkSpace, RemovingDarkSpaceImprovesElectrostatics) {
  auto with = dev::make_inas_hemt_params(20e-9);
  auto without = with;
  without.dark_space = 0.0;
  EXPECT_LT(without.scale_length_m(), with.scale_length_m());
  EXPECT_LT(without.dibl(), with.dibl());
}

TEST(VirtualSource, SubthresholdSwingTracksIdeality) {
  const auto p = dev::make_si_trigate_params(30e-9);
  const dev::VirtualSourceModel m(p);
  const double ss =
      carbon::device::subthreshold_swing_mv_dec(m, 0.05, 0.2, 0.5);
  EXPECT_NEAR(ss, p.ideality() * 61.5, 8.0);
}

TEST(VirtualSource, ReverseBiasAntisymmetry) {
  const dev::VirtualSourceModel m(dev::make_si_trigate_params());
  const double fwd = m.drain_current(0.8, 0.4);
  EXPECT_NEAR(m.drain_current(0.8 - 0.4, -0.4), -fwd, std::abs(fwd) * 1e-6);
}

TEST(AlphaPower, SaturatesAboveVdsat) {
  const dev::AlphaPowerModel m(dev::make_fig2_saturating_params());
  const double i08 = m.drain_current(1.0, 0.8);
  const double i10 = m.drain_current(1.0, 1.0);
  EXPECT_LT(i10 / i08, 1.05);
}

TEST(AlphaPower, Fig2OnCurrentScale) {
  const dev::AlphaPowerModel m(dev::make_fig2_saturating_params());
  EXPECT_NEAR(m.drain_current(1.0, 1.0) * 1e3, 0.45, 0.12);  // ~0.4 mA
}

TEST(AlphaPower, TriodeRegionRoughlyLinear) {
  const dev::AlphaPowerModel m(dev::make_fig2_saturating_params());
  const double g_lin =
      m.drain_current(1.0, 0.05) / 0.05;
  EXPECT_GT(g_lin, 0.0);
  // Small-vds slope exceeds the saturated slope by a wide margin.
  const double g_sat = carbon::device::output_conductance(m, 1.0, 0.9);
  EXPECT_GT(g_lin, 5.0 * g_sat);
}

TEST(RfMetrics, SaturatingDeviceHasGainAndFmax) {
  const dev::AlphaPowerModel m(dev::make_fig2_saturating_params());
  const auto ss = dev::extract_small_signal(m, 0.8, 0.8);
  EXPECT_GT(ss.gain, 3.0);
  EXPECT_GT(ss.ft_hz, 1e9);
  EXPECT_GT(ss.fmax_hz, 0.0);
}

// Gate-length sweep: currents grow as channels shrink; electrostatics
// degrade smoothly (no kinks that would break the benchmark root solves).
class VsLengthSweep : public ::testing::TestWithParam<double> {};

TEST_P(VsLengthSweep, CurrentsFiniteAndOrdered) {
  const double lg = GetParam();
  const dev::VirtualSourceModel m(dev::make_inas_hemt_params(lg));
  const double ion = m.drain_current(0.5, 0.5);
  EXPECT_GT(ion, 0.0);
  EXPECT_TRUE(std::isfinite(ion));
  const double ioff = m.drain_current(0.0, 0.5);
  EXPECT_GT(ion, ioff);
}

INSTANTIATE_TEST_SUITE_P(Lengths, VsLengthSweep,
                         ::testing::Values(15e-9, 30e-9, 60e-9, 120e-9));

}  // namespace
