// Dense LU and tridiagonal solvers behind the MNA engine.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "phys/linalg.h"
#include "phys/require.h"

namespace {

using carbon::phys::LuFactorization;
using carbon::phys::Matrix;
using carbon::phys::norm2;
using carbon::phys::norm_inf;
using carbon::phys::solve_dense;
using carbon::phys::solve_tridiagonal;

TEST(Matrix, StorageAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -4.0;
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
  m.fill(0.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 0.0);
}

TEST(Lu, Solves2x2Exactly) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const auto x = solve_dense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, PivotsOnZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const auto x = solve_dense(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingularity) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(LuFactorization{a}, carbon::phys::ConvergenceError);
}

TEST(Lu, SingularityCarriesTypedRowAndColumn) {
  using carbon::phys::SingularMatrixError;
  Matrix a(3, 3);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(0, 2) = 0.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0; a(1, 2) = 0.0;  // row 1 = 2 * row 0
  a(2, 2) = 1.0;
  try {
    LuFactorization lu{a};
    FAIL() << "rank-deficient matrix factored";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.kind(), SingularMatrixError::Kind::kSingular);
    // The collapse happens at elimination step 1 on one of the two
    // dependent original rows.
    EXPECT_EQ(e.col(), 1);
    EXPECT_TRUE(e.row() == 0 || e.row() == 1) << e.row();
  }
}

TEST(Lu, NonFinitePivotIsTypedNotSilent) {
  using carbon::phys::SingularMatrixError;
  Matrix a(2, 2);
  a(0, 0) = std::nan(""); a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0;
  try {
    LuFactorization lu{a};
    FAIL() << "NaN matrix factored";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.kind(), SingularMatrixError::Kind::kNonFinite);
    EXPECT_GE(e.row(), 0);
  }
}

TEST(Lu, RandomSystemsResidualSmall) {
  std::mt19937 gen(7);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 12;
    Matrix a(n, n);
    std::vector<double> b(n);
    for (int i = 0; i < n; ++i) {
      b[i] = u(gen);
      for (int j = 0; j < n; ++j) a(i, j) = u(gen);
      a(i, i) += 4.0;  // diagonally dominant: well conditioned
    }
    const auto x = solve_dense(a, b);
    // residual
    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
      double r = -b[i];
      for (int j = 0; j < n; ++j) r += a(i, j) * x[j];
      worst = std::max(worst, std::abs(r));
    }
    EXPECT_LT(worst, 1e-11);
  }
}

TEST(Lu, FactorizationReusableForManyRhs) {
  Matrix a(3, 3);
  a(0, 0) = 4; a(0, 1) = 1; a(0, 2) = 0;
  a(1, 0) = 1; a(1, 1) = 4; a(1, 2) = 1;
  a(2, 0) = 0; a(2, 1) = 1; a(2, 2) = 4;
  const LuFactorization lu(a);
  const auto x1 = lu.solve({1.0, 0.0, 0.0});
  const auto x2 = lu.solve({0.0, 0.0, 1.0});
  // Symmetric matrix: solutions mirror each other.
  EXPECT_NEAR(x1[0], x2[2], 1e-13);
  EXPECT_NEAR(x1[2], x2[0], 1e-13);
  EXPECT_GT(lu.pivot_quality(), 0.0);
}

TEST(Tridiagonal, MatchesDenseSolve) {
  const int n = 6;
  std::vector<double> sub(n - 1, -1.0), diag(n, 2.5), sup(n - 1, -1.0);
  std::vector<double> rhs{1, 2, 3, 4, 5, 6};
  const auto x = solve_tridiagonal(sub, diag, sup, rhs);
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = diag[i];
    if (i > 0) a(i, i - 1) = sub[i - 1];
    if (i < n - 1) a(i, i + 1) = sup[i];
  }
  const auto xd = solve_dense(a, rhs);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], xd[i], 1e-12);
}

TEST(Tridiagonal, SizeMismatchThrows) {
  EXPECT_THROW(
      solve_tridiagonal({1.0}, {1.0, 1.0, 1.0}, {1.0}, {1.0, 1.0, 1.0}),
      carbon::phys::PreconditionError);
}

TEST(Norms, BasicValues) {
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-7.0, 2.0, 5.0}), 7.0);
  EXPECT_DOUBLE_EQ(norm2({}), 0.0);
}

// ---- the reusable-workspace API the SPICE Newton loop runs on ----

TEST(LuWorkspace, RefactorMatchesSolveDenseAcrossReuses) {
  std::mt19937 gen(21);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  LuFactorization lu;
  EXPECT_FALSE(lu.factored());
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 10;
    Matrix a(n, n);
    std::vector<double> b(n);
    for (int i = 0; i < n; ++i) {
      b[i] = u(gen);
      for (int j = 0; j < n; ++j) a(i, j) = u(gen) + (i == j ? 4.0 : 0.0);
    }
    lu.factor(a);
    EXPECT_TRUE(lu.factored());
    std::vector<double> x = b;
    lu.solve_in_place(x);
    const auto x_ref = solve_dense(a, b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-11);
  }
}

TEST(LuWorkspace, HandlesSizeChanges) {
  LuFactorization lu;
  for (int n : {3, 8, 2, 12}) {
    Matrix a(n, n);
    for (int i = 0; i < n; ++i) a(i, i) = 2.0 + i;
    lu.factor(a);
    std::vector<double> x(n, 1.0);
    lu.solve_in_place(x);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0 / (2.0 + i), 1e-13);
  }
}

TEST(LuWorkspace, SingularityThrowsAndWorkspaceRecovers) {
  LuFactorization lu;
  Matrix bad(2, 2);
  bad(0, 0) = 1.0; bad(0, 1) = 2.0;
  bad(1, 0) = 2.0; bad(1, 1) = 4.0;
  EXPECT_THROW(lu.factor(bad), carbon::phys::ConvergenceError);
  EXPECT_FALSE(lu.factored());
  std::vector<double> x{1.0, 1.0};
  EXPECT_THROW(lu.solve_in_place(x), carbon::phys::PreconditionError);

  Matrix good(2, 2);
  good(0, 0) = 2.0; good(0, 1) = 0.0;
  good(1, 0) = 0.0; good(1, 1) = 4.0;
  lu.factor(good);
  x = {2.0, 4.0};
  lu.solve_in_place(x);
  EXPECT_NEAR(x[0], 1.0, 1e-13);
  EXPECT_NEAR(x[1], 1.0, 1e-13);
}

}  // namespace
