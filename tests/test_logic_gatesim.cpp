// Event-driven gate simulator: truth tables, delays, buses and latches.
#include "phys/require.h"
#include <gtest/gtest.h>

#include "logic/gatesim.h"

namespace {

using carbon::logic::GateSim;
using carbon::logic::GateType;
using carbon::logic::NetId;

struct TruthCase {
  GateType type;
  bool a, b, expected;
};

class TwoInputTruth : public ::testing::TestWithParam<TruthCase> {};

TEST_P(TwoInputTruth, Table) {
  const auto& tc = GetParam();
  GateSim sim;
  const NetId a = sim.add_net("a");
  const NetId b = sim.add_net("b");
  const NetId y = sim.add_net("y");
  sim.add_gate(tc.type, {a, b}, y, 1e-12);
  sim.set_input(a, tc.a, 0.0);
  sim.set_input(b, tc.b, 0.0);
  sim.run_until(1e-9);
  EXPECT_EQ(sim.value(y), tc.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, TwoInputTruth,
    ::testing::Values(
        TruthCase{GateType::kAnd2, true, true, true},
        TruthCase{GateType::kAnd2, true, false, false},
        TruthCase{GateType::kOr2, false, false, false},
        TruthCase{GateType::kOr2, false, true, true},
        TruthCase{GateType::kNand2, true, true, false},
        TruthCase{GateType::kNand2, false, true, true},
        TruthCase{GateType::kNor2, false, false, true},
        TruthCase{GateType::kNor2, true, false, false},
        TruthCase{GateType::kXor2, true, false, true},
        TruthCase{GateType::kXor2, true, true, false},
        TruthCase{GateType::kXnor2, true, true, true},
        TruthCase{GateType::kXnor2, false, true, false}));

TEST(GateSimTest, InverterChainAccumulatesDelay) {
  GateSim sim;
  const NetId in = sim.add_net("in");
  NetId prev = in;
  const double d = 5e-12;
  NetId last = -1;
  for (int i = 0; i < 4; ++i) {
    last = sim.add_net("n" + std::to_string(i));
    sim.add_gate(GateType::kInv, {prev}, last, d);
    prev = last;
  }
  // Settle the x-propagation of initial values first.
  sim.run_until(1e-9);
  EXPECT_EQ(sim.value(last), false);  // even # of inversions of 0... wait 4 inversions of 0 -> 0
  sim.set_input(in, true, 2e-9);
  const double t_done = sim.run_until(3e-9);
  EXPECT_EQ(sim.value(last), true);
  EXPECT_NEAR(t_done - 2e-9, 4 * d, 1e-15);
}

TEST(GateSimTest, BufferFollows) {
  GateSim sim;
  const NetId a = sim.add_net("a");
  const NetId y = sim.add_net("y");
  sim.add_gate(GateType::kBuf, {a}, y, 1e-12);
  sim.set_input(a, true, 0.0);
  sim.run_until(1e-10);
  EXPECT_TRUE(sim.value(y));
}

TEST(GateSimTest, DLatchTransparencyAndHold) {
  GateSim sim;
  const NetId d = sim.add_net("d");
  const NetId en = sim.add_net("en");
  const NetId q = sim.add_net("q");
  sim.add_gate(GateType::kDLatch, {d, en}, q, 1e-12);
  // Enable high: q follows d.
  sim.set_input(en, true, 1e-9);
  sim.set_input(d, true, 2e-9);
  sim.run_until(3e-9);
  EXPECT_TRUE(sim.value(q));
  // Enable low: q holds despite d falling.
  sim.set_input(en, false, 4e-9);
  sim.set_input(d, false, 5e-9);
  sim.run_until(6e-9);
  EXPECT_TRUE(sim.value(q));
  // Re-open: q tracks the new d.
  sim.set_input(en, true, 7e-9);
  sim.run_until(8e-9);
  EXPECT_FALSE(sim.value(q));
}

TEST(GateSimTest, BusReadWrite) {
  GateSim sim;
  std::vector<NetId> bus;
  for (int i = 0; i < 8; ++i) bus.push_back(sim.add_net("b" + std::to_string(i)));
  sim.set_bus(bus, 0xA5, 0.0);
  sim.run_until(1e-12);
  EXPECT_EQ(sim.read_bus(bus), 0xA5u);
}

TEST(GateSimTest, EventCountTracksActivity) {
  GateSim sim;
  const NetId a = sim.add_net("a");
  const NetId y = sim.add_net("y");
  sim.add_gate(GateType::kInv, {a}, y, 1e-12);
  sim.run_until(1e-12);  // initial propagation: y = !0 = 1
  const long long before = sim.events_processed();
  sim.set_input(a, true, 1e-9);
  sim.run_until(2e-9);
  EXPECT_GT(sim.events_processed(), before);
}

TEST(GateSimTest, NoChangeNoEvents) {
  GateSim sim;
  const NetId a = sim.add_net("a");
  const NetId y = sim.add_net("y");
  sim.add_gate(GateType::kInv, {a}, y, 1e-12);
  sim.run_until(1e-10);
  const long long settled = sim.events_processed();
  sim.set_input(a, false, 1e-9);  // same value as current
  sim.run_until(2e-9);
  EXPECT_EQ(sim.events_processed(), settled);
}

TEST(GateSimTest, ValidatesArguments) {
  GateSim sim;
  const NetId a = sim.add_net("a");
  const NetId y = sim.add_net("y");
  EXPECT_THROW(sim.add_gate(GateType::kInv, {a, a}, y, 1e-12),
               carbon::phys::PreconditionError);
  EXPECT_THROW(sim.add_gate(GateType::kAnd2, {a}, y, 1e-12),
               carbon::phys::PreconditionError);
  EXPECT_THROW(sim.add_gate(GateType::kInv, {a}, 99, 1e-12),
               carbon::phys::PreconditionError);
  EXPECT_THROW(sim.value(42), carbon::phys::PreconditionError);
}

}  // namespace
