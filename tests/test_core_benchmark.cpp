// The Fig. 5 benchmark engine: off-current retargeting, cross-technology
// ordering, and the scaling studies.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/scaling.h"
#include "core/technology.h"
#include "device/cntfet.h"
#include "device/mosfet.h"

namespace {

namespace core = carbon::core;
namespace dev = carbon::device;

TEST(Benchmark, RetargetHitsIoffSpec) {
  auto m = std::make_shared<dev::VirtualSourceModel>(
      dev::make_si_trigate_params(30e-9));
  const auto pt = core::benchmark_at_fixed_ioff(m, 0.5, 100e-9);
  // Verify the spec is actually met after the shift.
  const double w_um = m->width_normalization() * 1e6;
  const double ioff =
      std::abs(m->drain_current(pt.gate_shift_v, 0.5)) / w_um;
  EXPECT_NEAR(ioff / 100e-9, 1.0, 0.02);
  EXPECT_GT(pt.ion_a_per_um, 0.0);
}

TEST(Benchmark, CntBeatsIIIVBeatsSiAtHalfVolt) {
  // The Fig. 5 verdict: "Clearly, the CNTFET outperforms the alternatives."
  const auto cnt = core::make_cnt_technology().make_device(30e-9);
  const auto inas = core::make_inas_technology().make_device(30e-9);
  const auto si = core::make_si_technology().make_device(30e-9);
  const double i_cnt =
      core::benchmark_at_fixed_ioff(cnt, 0.5, 100e-9).ion_a_per_um;
  const double i_inas =
      core::benchmark_at_fixed_ioff(inas, 0.5, 100e-9).ion_a_per_um;
  const double i_si =
      core::benchmark_at_fixed_ioff(si, 0.5, 100e-9).ion_a_per_um;
  EXPECT_GT(i_cnt, i_inas);
  EXPECT_GT(i_inas, i_si);
  // Magnitude band: CNT well above 1 mA/um, Si a few tenths.
  EXPECT_GT(i_cnt * 1e3, 1.0);   // mA/um
  EXPECT_LT(i_si * 1e3, 0.8);
  EXPECT_GT(i_si * 1e3, 0.1);
}

TEST(Benchmark, TableCoversAllTechnologies) {
  const auto techs = core::fig5_technologies();
  const auto table = core::benchmark_table(techs, 0.5, 100e-9);
  EXPECT_EQ(table.num_cols(), 1 + static_cast<int>(techs.size()));
  EXPECT_GT(table.num_rows(), 5);
  // Every technology contributes at least one finite value.
  for (int c = 1; c < table.num_cols(); ++c) {
    bool any = false;
    for (int r = 0; r < table.num_rows(); ++r) {
      if (std::isfinite(table.at(r, c))) any = true;
    }
    EXPECT_TRUE(any) << table.columns()[c];
  }
}

TEST(Benchmark, CntIonDecreasesWithGateLength) {
  const auto tech = core::make_cnt_technology();
  const double i_short =
      core::benchmark_at_fixed_ioff(tech.make_device(15e-9), 0.5, 100e-9)
          .ion_a_per_um;
  const double i_long =
      core::benchmark_at_fixed_ioff(tech.make_device(300e-9), 0.5, 100e-9)
          .ion_a_per_um;
  EXPECT_GT(i_short, 1.3 * i_long);
}

TEST(Benchmark, TenXIoffGivesMoreIon) {
  // The paper plots the 9 nm point at 10x the off-spec: that must help.
  const auto dev9 = core::make_cnt_technology().make_device(9e-9);
  const double at_1x =
      core::benchmark_at_fixed_ioff(dev9, 0.5, 100e-9).ion_a_per_um;
  const double at_10x =
      core::benchmark_at_fixed_ioff(dev9, 0.5, 1000e-9).ion_a_per_um;
  EXPECT_GT(at_10x, at_1x);
}

TEST(Scaling, IonDropsWithSupply) {
  const dev::VirtualSourceModel m(dev::make_si_trigate_params());
  const auto t = core::supply_scaling_table(m);
  // Rows go from vdd_max down to vdd_min: ion must decrease monotonically.
  for (int r = 1; r < t.num_rows(); ++r) {
    EXPECT_LT(t.at(r, 1), t.at(r - 1, 1));
  }
}

TEST(Scaling, DelayGrowsAsSupplyShrinks) {
  const dev::CntfetModel m(dev::make_franklin_cntfet_params(20e-9));
  const auto t = core::supply_scaling_table(m);
  const int dcol = t.column_index("cv_over_i_s");
  EXPECT_GT(t.at(t.num_rows() - 1, dcol), t.at(0, dcol));
}

TEST(Scaling, ShortChannelTableShowsIIIVDegradation) {
  const auto make = [](double lg) {
    return std::static_pointer_cast<const dev::IDeviceModel>(
        std::make_shared<dev::VirtualSourceModel>(
            dev::make_inas_hemt_params(lg)));
  };
  const auto t = core::short_channel_table(make, {15e-9, 30e-9, 60e-9}, 0.5);
  const int ss = t.column_index("ss_mv_dec");
  const int dibl = t.column_index("dibl_mv_v");
  // Shorter gate: worse SS and DIBL.
  EXPECT_GT(t.at(0, ss), t.at(2, ss));
  EXPECT_GT(t.at(0, dibl), t.at(2, dibl));
}

TEST(Benchmark, RejectsModelsWithoutWidth) {
  class Widthless final : public dev::IDeviceModel {
   public:
    double drain_current(double, double) const override { return 1e-6; }
    const std::string& name() const override { return name_; }

   private:
    std::string name_ = "widthless";
  };
  auto m = std::make_shared<Widthless>();
  EXPECT_THROW(core::benchmark_at_fixed_ioff(m, 0.5, 100e-9),
               carbon::phys::PreconditionError);
}

}  // namespace
