// Small-signal subsystem: dense/sparse complex backend agreement on the
// standard decks (RC ladder, diode ladder, FET amplifier chain), symbolic
// analysis amortized across a sweep, adjoint-transfer consistency, and the
// noise analysis against closed forms (4kTR divider, kT/C integrated
// noise, diode shot noise, FET channel thermal and 1/f flicker).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "circuit/cells.h"
#include "device/alpha_power.h"
#include "phys/require.h"
#include "spice/ac.h"
#include "spice/analyses.h"
#include "spice/smallsignal.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;
namespace ckt_lib = carbon::circuit;

constexpr double kBoltzmann = 1.380649e-23;
constexpr double kQ = 1.602176634e-19;

/// Common-source amplifier chain: per stage a resistor load, a FET whose
/// gate taps the previous drain, and a load capacitor.  The FET deck of
/// the dense/sparse agreement tests.
void build_fet_chain(sp::Circuit& ckt, int stages, sp::VSource** vg_out) {
  static auto model = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  *vg_out = ckt.add_vsource("vg", "g0", "0", 0.45);
  for (int s = 0; s < stages; ++s) {
    const std::string drain = "d" + std::to_string(s);
    const std::string gate =
        s == 0 ? "g0" : "d" + std::to_string(s - 1);
    ckt.add_resistor("r" + std::to_string(s), "vdd", drain, 2e3);
    ckt.add_fet("m" + std::to_string(s), drain, gate, "0", model);
    ckt.add_capacitor("c" + std::to_string(s), drain, "0", 10e-15);
  }
}

/// Max |dense - sparse| over the full solution vectors across a sweep,
/// with both backends fed the SAME operating point.
double backend_disagreement(sp::Circuit& ckt, sp::VSource& input,
                            const std::vector<double>& x_dc, double f_start,
                            double f_stop) {
  input.set_ac_magnitude(1.0);
  sp::AcSystem dense, sparse;
  dense.build(ckt, x_dc, sp::LinearBackend::kDense, 48);
  sparse.build(ckt, x_dc, sp::LinearBackend::kSparse, 48);
  EXPECT_FALSE(dense.is_sparse());
  EXPECT_TRUE(sparse.is_sparse());

  double worst = 0.0;
  for (const double f : sp::log_frequency_grid(f_start, f_stop, 4)) {
    const double w = 2.0 * M_PI * f;
    EXPECT_TRUE(dense.assemble_factor(w));
    EXPECT_TRUE(sparse.assemble_factor(w));
    std::vector<carbon::phys::Complex> xd = dense.stimulus();
    std::vector<carbon::phys::Complex> xs = sparse.stimulus();
    dense.solve_in_place(xd);
    sparse.solve_in_place(xs);
    for (size_t i = 0; i < xd.size(); ++i) {
      worst = std::max(worst, std::abs(xd[i] - xs[i]));
    }
  }
  input.set_ac_magnitude(0.0);
  return worst;
}

// ------------------------------------------- dense/sparse backend agreement

TEST(AcBackends, RcLadderAgreesTo1em9) {
  auto bench = ckt_lib::make_rc_ladder(40, 1e3, 1e-15, 1.0);
  const sp::Solution sol = sp::operating_point(*bench.ckt);
  EXPECT_LT(backend_disagreement(*bench.ckt, *bench.vin, sol.x, 1e5, 1e11),
            1e-9);
}

TEST(AcBackends, DiodeLadderAgreesTo1em9) {
  auto bench = ckt_lib::make_diode_ladder(20, 1e3, 1e-14, 2.0);
  const sp::Solution sol = sp::operating_point(*bench.ckt);
  EXPECT_LT(backend_disagreement(*bench.ckt, *bench.vin, sol.x, 1e3, 1e9),
            1e-9);
}

TEST(AcBackends, FetChainAgreesTo1em9) {
  sp::Circuit ckt;
  sp::VSource* vg = nullptr;
  build_fet_chain(ckt, 20, &vg);
  const sp::Solution sol = sp::operating_point(ckt);
  EXPECT_LT(backend_disagreement(ckt, *vg, sol.x, 1e5, 1e11), 1e-9);
}

TEST(AcBackends, SweepLevelAgreementOnLinearDeck) {
  // Full ac_sweep through both backends on a linear deck (the operating
  // point is backend-exact there): magnitudes agree to 1e-9.
  auto run = [](sp::LinearBackend be) {
    auto bench = ckt_lib::make_rc_ladder(30, 1e3, 1e-15, 1.0);
    sp::AcOptions opt;
    opt.f_start_hz = 1e5;
    opt.f_stop_hz = 1e11;
    opt.points_per_decade = 5;
    opt.dc.backend = be;
    return sp::ac_sweep(*bench.ckt, *bench.vin, {bench.out_node}, opt);
  };
  const auto d = run(sp::LinearBackend::kDense);
  const auto s = run(sp::LinearBackend::kSparse);
  ASSERT_EQ(d.num_rows(), s.num_rows());
  for (int i = 0; i < d.num_rows(); ++i) {
    EXPECT_NEAR(d.at(i, 1), s.at(i, 1), 1e-9) << "row " << i;
  }
}

// ---------------------------------------------------------- symbolic reuse

TEST(AcSystem, SymbolicAnalysisAmortizedAcrossSweep) {
  auto bench = ckt_lib::make_rc_ladder(100, 1e3, 1e-15, 1.0);
  const sp::Solution sol = sp::operating_point(*bench.ckt);
  bench.vin->set_ac_magnitude(1.0);

  sp::AcSystem sys;
  sys.build(*bench.ckt, sol.x, sp::LinearBackend::kSparse, 48);
  std::vector<carbon::phys::Complex> x;
  for (const double f : sp::log_frequency_grid(1e3, 1e12, 10)) {
    ASSERT_TRUE(sys.assemble_factor(2.0 * M_PI * f));
    x = sys.stimulus();
    sys.solve_in_place(x);
  }
  EXPECT_EQ(sys.analyze_count(), 1)
      << "pattern is frequency-independent: one symbolic analysis per sweep";

  // Rebuild for the same topology (re-biased sweep): the pattern and the
  // LU analysis survive; only values are refreshed.
  sys.build(*bench.ckt, sol.x, sp::LinearBackend::kSparse, 48);
  for (const double f : sp::log_frequency_grid(1e3, 1e12, 5)) {
    ASSERT_TRUE(sys.assemble_factor(2.0 * M_PI * f));
  }
  EXPECT_EQ(sys.analyze_count(), 1);
}

TEST(AcSystem, AutoSelectionMirrorsNewtonWorkspace) {
  auto small = ckt_lib::make_rc_ladder(10, 1e3, 1e-15, 1.0);
  const sp::Solution sol_s = sp::operating_point(*small.ckt);
  sp::AcSystem sys_s;
  sys_s.build(*small.ckt, sol_s.x, sp::LinearBackend::kAuto, 48);
  EXPECT_FALSE(sys_s.is_sparse());

  auto big = ckt_lib::make_rc_ladder(60, 1e3, 1e-15, 1.0);
  const sp::Solution sol_b = sp::operating_point(*big.ckt);
  sp::AcSystem sys_b;
  sys_b.build(*big.ckt, sol_b.x, sp::LinearBackend::kAuto, 48);
  EXPECT_TRUE(sys_b.is_sparse());
}

// ------------------------------------------------------------ adjoint solve

TEST(AcSystem, AdjointTransferMatchesForwardSolve) {
  auto bench = ckt_lib::make_rc_ladder(12, 1e3, 1e-13, 1.0);
  sp::Circuit& ckt = *bench.ckt;
  const sp::Solution sol = sp::operating_point(ckt);
  const int out = ckt.find_node(bench.out_node);

  sp::AcSystem sys;
  sys.build(ckt, sol.x, sp::LinearBackend::kSparse, 1);
  ASSERT_TRUE(sys.assemble_factor(2.0 * M_PI * 1e6));
  const int n = sys.size();

  // Adjoint: y[j] = transfer from unit current at row j to V(out).
  std::vector<carbon::phys::Complex> y(n);
  y[out - 1] = {1.0, 0.0};
  sys.solve_transpose_in_place(y);

  // Forward check at a handful of injection rows.
  for (const int row : {1, 4, 7, n - 1}) {
    std::vector<carbon::phys::Complex> b(n);
    b[row] = {1.0, 0.0};
    sys.solve_in_place(b);
    EXPECT_LT(std::abs(b[out - 1] - y[row]), 1e-12) << "row " << row;
  }
}

// ------------------------------------------------------------------- noise

TEST(Noise, ResistorDividerMatches4kTParallelR) {
  sp::Circuit ckt;
  auto* vin = ckt.add_vsource("vin", "in", "0", 0.0);
  ckt.add_resistor("r1", "in", "out", 1e3);
  ckt.add_resistor("r2", "out", "0", 3e3);

  sp::NoiseOptions opt;
  opt.f_start_hz = 1e3;
  opt.f_stop_hz = 1e6;
  opt.points_per_decade = 3;
  const sp::NoiseResult res = sp::noise_sweep(ckt, *vin, "out", opt);

  const double r_par = 1e3 * 3e3 / (1e3 + 3e3);  // 750 ohm
  const double s_expected = 4.0 * kBoltzmann * 300.0 * r_par;
  const int oc = res.table.column_index("onoise_v2_hz");
  const int ic = res.table.column_index("inoise_v2_hz");
  const int gc = res.table.column_index("gain_mag");
  for (int i = 0; i < res.table.num_rows(); ++i) {
    EXPECT_NEAR(res.table.at(i, oc), s_expected, 1e-3 * s_expected);
    EXPECT_NEAR(res.table.at(i, gc), 0.75, 1e-9);
    EXPECT_NEAR(res.table.at(i, ic), s_expected / (0.75 * 0.75),
                1e-3 * s_expected);
  }

  // Per-source contributions are labelled and sum to the total.
  ASSERT_EQ(res.contributions.size(), 2u);
  EXPECT_EQ(res.contributions[0].first, "r1.thermal");
  EXPECT_EQ(res.contributions[1].first, "r2.thermal");
  const double sum =
      res.contributions[0].second + res.contributions[1].second;
  EXPECT_NEAR(sum, res.onoise_total_v2, 1e-9 * res.onoise_total_v2);
}

TEST(Noise, RcIntegratedOutputNoiseIsKtOverC) {
  // The textbook result: integrating 4kTR / (1 + (2 pi f R C)^2) over all
  // frequency gives kT/C, independent of R.
  sp::Circuit ckt;
  auto* vin = ckt.add_vsource("vin", "in", "0", 0.0);
  ckt.add_resistor("r1", "in", "out", 1e3);
  ckt.add_capacitor("c1", "out", "0", 1e-9);

  const double fc = 1.0 / (2.0 * M_PI * 1e3 * 1e-9);  // 159.2 kHz
  sp::NoiseOptions opt;
  opt.f_start_hz = fc / 100.0;
  opt.f_stop_hz = 1000.0 * fc;
  opt.points_per_decade = 20;
  const sp::NoiseResult res = sp::noise_sweep(ckt, *vin, "out", opt);

  const double kt_over_c = kBoltzmann * 300.0 / 1e-9;
  EXPECT_NEAR(res.onoise_total_v2, kt_over_c, 0.01 * kt_over_c);
}

TEST(Noise, DiodeShotNoiseMatchesAnalytic) {
  sp::Circuit ckt;
  auto* vin = ckt.add_vsource("vin", "in", "0", 1.0);
  ckt.add_resistor("r1", "in", "d", 1e4);
  ckt.add_diode("d1", "d", "0", 1e-14);

  const sp::Solution sol = sp::operating_point(ckt);
  const double vd = sp::node_voltage(ckt, sol, "d");
  const double i_d = (1.0 - vd) / 1e4;
  ASSERT_GT(i_d, 1e-6);  // forward biased

  sp::NoiseOptions opt;
  opt.f_start_hz = 1e3;
  opt.f_stop_hz = 1e4;
  opt.points_per_decade = 2;
  const sp::NoiseResult res = sp::noise_sweep(ckt, *vin, "d", opt);

  // Small-signal: diode conductance gd ~ I/Vt; output resistance R||rd.
  const double vt = 8.617333e-5 * 300.0;
  const double gd = (i_d + 1e-14) / vt;
  const double r_out = 1.0 / (1.0 / 1e4 + gd);
  const double s_expected =
      (2.0 * kQ * i_d + 4.0 * kBoltzmann * 300.0 / 1e4) * r_out * r_out;
  const int oc = res.table.column_index("onoise_v2_hz");
  EXPECT_NEAR(res.table.at(0, oc), s_expected, 0.02 * s_expected);

  ASSERT_EQ(res.contributions.size(), 2u);
  EXPECT_EQ(res.contributions[1].first, "d1.shot");
  EXPECT_GT(res.contributions[1].second, 0.0);
}

TEST(Noise, CommonSourceChannelThermalMatchesSmallSignal) {
  auto base = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  dev::NoiseParams np;
  np.gamma = 1.0;
  const auto m = dev::with_noise(base, np);

  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  auto* vg = ckt.add_vsource("vg", "g", "0", 0.45);
  ckt.add_resistor("rl", "vdd", "d", 2e3);
  ckt.add_fet("m1", "d", "g", "0", m);

  const sp::Solution sol = sp::operating_point(ckt);
  const double vd = sp::node_voltage(ckt, sol, "d");
  const dev::DeviceEval e = m->eval(0.45, vd);

  sp::NoiseOptions opt;
  opt.f_start_hz = 1e3;
  opt.f_stop_hz = 1e4;
  opt.points_per_decade = 2;
  const sp::NoiseResult res = sp::noise_sweep(ckt, *vg, "d", opt);

  const double r_out = 1.0 / (1.0 / 2e3 + e.gds);
  const double s_thermal = 1.0 * 4.0 * kBoltzmann * 300.0 * e.gm;
  const double s_rl = 4.0 * kBoltzmann * 300.0 / 2e3;
  const double s_expected = (s_thermal + s_rl) * r_out * r_out;
  const int oc = res.table.column_index("onoise_v2_hz");
  EXPECT_NEAR(res.table.at(0, oc), s_expected, 0.03 * s_expected);

  // Input-referred: S_out / (gm r_out)^2.
  const int ic = res.table.column_index("inoise_v2_hz");
  const double gain = e.gm * r_out;
  EXPECT_NEAR(res.table.at(0, ic), s_expected / (gain * gain),
              0.05 * s_expected / (gain * gain));
}

TEST(Noise, FetFlickerHasOneOverFSlope) {
  auto base = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  dev::NoiseParams np;
  np.gamma = 1.0;
  np.kf = 1e-10;  // flicker floods thermal noise below ~MHz
  np.af = 1.0;
  const auto m = dev::with_noise(base, np);

  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  auto* vg = ckt.add_vsource("vg", "g", "0", 0.45);
  ckt.add_resistor("rl", "vdd", "d", 2e3);
  ckt.add_fet("m1", "d", "g", "0", m);

  sp::NoiseOptions opt;
  opt.f_start_hz = 1.0;
  opt.f_stop_hz = 100.0;
  opt.points_per_decade = 1;
  const sp::NoiseResult res = sp::noise_sweep(ckt, *vg, "d", opt);
  const int oc = res.table.column_index("onoise_v2_hz");
  ASSERT_GE(res.table.num_rows(), 3);
  // S(1 Hz) / S(100 Hz) ~ 100 in the flicker-dominated band.
  const double ratio = res.table.at(0, oc) / res.table.at(2, oc);
  EXPECT_NEAR(ratio, 100.0, 5.0);

  bool has_flicker = false;
  for (const auto& [label, v] : res.contributions) {
    if (label == "m1.flicker") {
      has_flicker = true;
      EXPECT_GT(v, 0.0);
    }
  }
  EXPECT_TRUE(has_flicker);
}

TEST(Noise, OutputNodeMustNotBeGround) {
  sp::Circuit ckt;
  auto* vin = ckt.add_vsource("vin", "in", "0", 0.0);
  ckt.add_resistor("r1", "in", "0", 1e3);
  EXPECT_THROW(sp::noise_sweep(ckt, *vin, "0"),
               carbon::phys::PreconditionError);
}

}  // namespace
