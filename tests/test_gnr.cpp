// Armchair GNR band structure: width families, the Fig. 1 ribbon, and the
// edge-bond-relaxation gap opening.
#include <gtest/gtest.h>

#include "band/gnr.h"
#include "phys/require.h"

namespace {

using carbon::band::GnrBandStructure;
using carbon::band::GnrFamily;
using carbon::band::gnr_dimer_lines_for_width;
using carbon::band::make_fig1_gnr;

TEST(Gnr, WidthFormula) {
  // w = (N-1) * 0.246/2 nm.
  EXPECT_NEAR(GnrBandStructure(18).width() * 1e9, 17 * 0.123, 1e-3);
  EXPECT_NEAR(GnrBandStructure(7).width() * 1e9, 6 * 0.123, 1e-3);
}

TEST(Gnr, FamilyClassification) {
  EXPECT_EQ(GnrBandStructure(18).family(), GnrFamily::kThreeQ);
  EXPECT_EQ(GnrBandStructure(13).family(), GnrFamily::kThreeQPlus1);
  EXPECT_EQ(GnrBandStructure(14).family(), GnrFamily::kThreeQPlus2);
}

TEST(Gnr, Fig1RibbonIsThePaperDevice) {
  const auto gnr = make_fig1_gnr();
  EXPECT_NEAR(gnr.width() * 1e9, 2.1, 0.05);     // "width of 2.1 nm"
  EXPECT_NEAR(gnr.band_gap(), 0.56, 0.02);       // "band-gap of 0.56 eV"
}

TEST(Gnr, ThreeQPlus2IsMetallicInPlainTightBinding) {
  EXPECT_NEAR(GnrBandStructure(14, 0.0).band_gap(), 0.0, 1e-12);
  EXPECT_NEAR(GnrBandStructure(23, 0.0).band_gap(), 0.0, 1e-12);
}

TEST(Gnr, EdgeRelaxationOpensGapInThreeQPlus2) {
  const double eg = GnrBandStructure(14, 0.12).band_gap();
  EXPECT_GT(eg, 0.05);
  EXPECT_LT(eg, 0.5);
  // Perturbative estimate: 6 gamma0 delta / (N+1).
  EXPECT_NEAR(eg, 6.0 * 3.0 * 0.12 / 15.0, 0.05);
}

TEST(Gnr, GapShrinksWithWidthWithinFamily) {
  // Same family (3q+1), increasing N -> smaller gap.
  const double g7 = GnrBandStructure(7).band_gap();
  const double g13 = GnrBandStructure(13).band_gap();
  const double g19 = GnrBandStructure(19).band_gap();
  EXPECT_GT(g7, g13);
  EXPECT_GT(g13, g19);
}

TEST(Gnr, FamilyGapOrderingAtSimilarWidth) {
  // Both semiconducting families carry comparable gaps in plain NN tight
  // binding (they alternate with N); 3q+2 is gapless.
  const double g3q1 = GnrBandStructure(13).band_gap();
  const double g3q = GnrBandStructure(12).band_gap();
  const double g3q2 = GnrBandStructure(14).band_gap();
  EXPECT_NEAR(g3q1 / g3q, 1.0, 0.15);
  EXPECT_GT(g3q1, g3q2 + 0.5);
  EXPECT_GT(g3q, g3q2 + 0.5);
}

TEST(Gnr, LadderTwofoldDegenerateAndSorted) {
  const auto ladder = GnrBandStructure(18).ladder(4);
  ASSERT_EQ(ladder.subbands.size(), 4u);
  for (size_t i = 0; i < ladder.subbands.size(); ++i) {
    EXPECT_EQ(ladder.subbands[i].degeneracy, 2);
    if (i > 0) {
      EXPECT_GE(ladder.subbands[i].delta_ev,
                ladder.subbands[i - 1].delta_ev);
    }
  }
}

TEST(Gnr, DimerCountFromWidthRoundTrips) {
  for (int n : {6, 12, 18, 24, 35}) {
    const double w = GnrBandStructure(n).width();
    EXPECT_EQ(gnr_dimer_lines_for_width(w), n);
  }
}

TEST(Gnr, SubbandEdgeIndexChecked) {
  const GnrBandStructure gnr(10);
  EXPECT_THROW(gnr.subband_edge(0), carbon::phys::PreconditionError);
  EXPECT_THROW(gnr.subband_edge(11), carbon::phys::PreconditionError);
}

TEST(Gnr, TooNarrowRejected) {
  EXPECT_THROW(GnrBandStructure(2), carbon::phys::PreconditionError);
}

// Property sweep: every armchair ribbon's analytic gap is non-negative and
// bounded by the graphene bandwidth; families behave consistently.
class GnrWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(GnrWidthSweep, GapBoundsAndFamilyConsistency) {
  const int n = GetParam();
  const GnrBandStructure gnr(n);
  EXPECT_GE(gnr.band_gap(), 0.0);
  EXPECT_LE(gnr.band_gap(), 6.0);
  if (n % 3 == 2) {
    EXPECT_NEAR(gnr.band_gap(), 0.0, 1e-9);
  } else {
    EXPECT_GT(gnr.band_gap(), 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, GnrWidthSweep,
                         ::testing::Range(3, 40));

}  // namespace
