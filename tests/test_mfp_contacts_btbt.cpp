// Mean-free-path transmission, contact resistance scaling (paper III.B /
// T2 claim) and band-to-band tunneling primitives.
#include <gtest/gtest.h>

#include <cmath>

#include "phys/constants.h"
#include "transport/btbt.h"
#include "transport/mfp.h"
#include "transport/schottky.h"

namespace {

namespace tr = carbon::transport;
namespace phys = carbon::phys;

TEST(Mfp, LowBiasIsAcousticLimited) {
  const tr::MfpModel m;
  EXPECT_NEAR(m.lambda_eff(0.01), m.lambda_acoustic, 0.05 * m.lambda_acoustic);
}

TEST(Mfp, HighBiasIsOpticalLimited) {
  const tr::MfpModel m;
  const double expected =
      1.0 / (1.0 / m.lambda_acoustic + 1.0 / m.lambda_optical);
  EXPECT_NEAR(m.lambda_eff(0.6), expected, 0.05 * expected);
}

TEST(Mfp, TransmissionLimits) {
  const tr::MfpModel m;
  EXPECT_NEAR(m.transmission(0.0, 0.05), 1.0, 1e-12);
  EXPECT_GT(m.transmission(10e-9, 0.05), 0.9);   // short channel ~ ballistic
  EXPECT_LT(m.transmission(1e-6, 0.05), 0.30);   // long channel diffusive
}

TEST(Mfp, TransmissionDecreasesWithLength) {
  const tr::MfpModel m;
  double prev = 1.1;
  for (double l : {5e-9, 20e-9, 100e-9, 500e-9}) {
    const double t = m.transmission(l, 0.3);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

TEST(Contacts, QuantumFloorPlusTwoContacts) {
  // Long contacts: total = h/4e^2 + 2 * r_long ~ 6.45k + 5k = 11.45 kOhm —
  // the paper's "as low as 11 kOhm" series resistance (ref [16]).
  const tr::ContactResistanceModel c;  // defaults: 2.5 kOhm long contacts
  const double total = c.total_series_resistance(300e-9);
  EXPECT_NEAR(total, phys::kCntQuantumResistance + 2.0 * 2.5e3, 100.0);
  EXPECT_NEAR(total, 11.5e3, 1.0e3);
}

TEST(Contacts, ShortContactsGrowAsCoth) {
  const tr::ContactResistanceModel c;
  // At Lc = LT: coth(1) = 1.313; at Lc = LT/4: ~ 4.08.
  EXPECT_NEAR(c.contact_resistance(c.transfer_length) / c.r_long_ohm,
              1.0 / std::tanh(1.0), 1e-9);
  const double short_r = c.contact_resistance(c.transfer_length / 4.0);
  EXPECT_GT(short_r, 3.5 * c.r_long_ohm);
}

TEST(Contacts, TwentyNmContactStillUsable) {
  // Paper: "a device with 20 nm channel and 20 nm contact length performs
  // still very well": resistance grows but stays within ~3x the long limit.
  const tr::ContactResistanceModel c;
  const double r20 = c.total_series_resistance(20e-9);
  const double r_long = c.total_series_resistance(1e-6);
  EXPECT_LT(r20 / r_long, 3.0);
  EXPECT_GT(r20 / r_long, 1.2);
}

TEST(Contacts, MonotoneInContactLength) {
  const tr::ContactResistanceModel c;
  double prev = 1e18;
  for (double lc : {5e-9, 10e-9, 20e-9, 50e-9, 100e-9, 400e-9}) {
    const double r = c.contact_resistance(lc);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Wkb, TransmissionBounds) {
  const double m_eff = 0.05 * phys::kElectronMass;
  const double t = tr::wkb_triangular_transmission(0.3, 1e8, m_eff);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1.0);
  EXPECT_EQ(tr::wkb_triangular_transmission(-0.1, 1e8, m_eff), 1.0);
}

TEST(Wkb, MoreFieldMoreTransmission) {
  const double m_eff = 0.05 * phys::kElectronMass;
  EXPECT_GT(tr::wkb_triangular_transmission(0.3, 2e8, m_eff),
            tr::wkb_triangular_transmission(0.3, 1e8, m_eff));
}

TEST(Btbt, MonotoneInFieldAndGap) {
  const double m_eff = 0.05 * phys::kElectronMass;
  EXPECT_GT(tr::btbt_transmission(0.6, m_eff, 2e8),
            tr::btbt_transmission(0.6, m_eff, 1e8));
  EXPECT_GT(tr::btbt_transmission(0.4, m_eff, 1e8),
            tr::btbt_transmission(0.8, m_eff, 1e8));
  EXPECT_EQ(tr::btbt_transmission(0.6, m_eff, 0.0), 0.0);
}

TEST(Btbt, SmallDiameterTubesTunnelMore) {
  // Smaller d => smaller gap AND smaller mass; both help. Quantifies the
  // paper's "nanotubes are very small (sharp)" TFET advantage.
  const double t_small = tr::btbt_transmission(
      0.5, 0.04 * phys::kElectronMass, 1.5e8);
  const double t_large = tr::btbt_transmission(
      0.8, 0.07 * phys::kElectronMass, 1.5e8);
  EXPECT_GT(t_small, 20.0 * t_large);
}

TEST(Btbt, CurrentScalesWithWindowAndDegeneracy) {
  const double i1 = tr::btbt_current(0.1, 0.2, 4);
  EXPECT_NEAR(tr::btbt_current(0.1, 0.4, 4) / i1, 2.0, 1e-12);
  EXPECT_NEAR(tr::btbt_current(0.1, 0.2, 2) / i1, 0.5, 1e-12);
  EXPECT_EQ(tr::btbt_current(0.1, -0.05, 4), 0.0);
}

TEST(JunctionField, SharpFeaturesEnhanceField) {
  EXPECT_GT(tr::junction_field(0.6, 2e-9), tr::junction_field(0.6, 10e-9));
}

}  // namespace
