// Hyperbolic subband DOS, carrier statistics and quantum capacitance.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "band/cnt.h"
#include "band/subband.h"
#include "phys/constants.h"

namespace {

using carbon::band::Subband;
using carbon::band::SubbandLadder;
using carbon::band::make_cnt_ladder_from_gap;
namespace phys = carbon::phys;

constexpr double kKt = 0.02585;

Subband make_band(double delta = 0.28, int deg = 4, double vf = 9.06e5) {
  Subband s;
  s.delta_ev = delta;
  s.degeneracy = deg;
  s.fermi_velocity = vf;
  return s;
}

TEST(SubbandDos, ZeroBelowBandEdge) {
  const Subband s = make_band();
  EXPECT_DOUBLE_EQ(s.dos(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.dos(0.27), 0.0);
}

TEST(SubbandDos, VanHoveDivergenceNearEdge) {
  const Subband s = make_band();
  EXPECT_GT(s.dos(0.2801), s.dos(0.30));
  EXPECT_GT(s.dos(0.30), s.dos(0.50));
}

TEST(SubbandDos, ApproachesUniversalValueFarAboveEdge) {
  // g -> D / (pi hbar vF) at E >> Delta.
  const Subband s = make_band();
  const double hbar_vf = phys::kHbar * s.fermi_velocity / phys::kQ;
  const double universal = s.degeneracy / (M_PI * hbar_vf);
  EXPECT_NEAR(s.dos(5.0) / universal, 1.0, 0.01);
}

TEST(SubbandDos, EffectiveMassMatchesHyperbolicBand) {
  // m* = Delta / vF^2 ~ 0.055 m0 for Delta = 0.28 eV.
  const Subband s = make_band();
  EXPECT_NEAR(s.effective_mass() / phys::kElectronMass, 0.060, 0.005);
}

TEST(SubbandLadderTest, BandGapIsTwiceSmallestDelta) {
  const SubbandLadder lad = make_cnt_ladder_from_gap(0.56, 3);
  EXPECT_NEAR(lad.band_gap(), 0.56, 1e-12);
}

TEST(SubbandLadderTest, DensityMonotoneInFermiLevel) {
  const SubbandLadder lad = make_cnt_ladder_from_gap(0.56, 3);
  double prev = 0.0;
  for (double mu = -0.3; mu <= 0.6; mu += 0.05) {
    const double n = lad.electron_density(mu, kKt);
    EXPECT_GE(n, prev) << "mu=" << mu;
    prev = n;
  }
}

TEST(SubbandLadderTest, NondegenerateDensityIsBoltzmann) {
  // Deep in the gap the density scales as exp(mu/kT).
  const SubbandLadder lad = make_cnt_ladder_from_gap(0.56, 1);
  const double n1 = lad.electron_density(-0.20, kKt);
  const double n2 = lad.electron_density(-0.20 + kKt * std::log(10.0), kKt);
  EXPECT_NEAR(n2 / n1, 10.0, 0.3);
}

TEST(SubbandLadderTest, DegeneracyScalesDensity) {
  SubbandLadder l2, l4;
  l2.subbands = {make_band(0.28, 2)};
  l4.subbands = {make_band(0.28, 4)};
  const double mu = 0.1;
  EXPECT_NEAR(l4.electron_density(mu, kKt) / l2.electron_density(mu, kKt),
              2.0, 1e-9);
}

TEST(QuantumCapacitance, PositiveAndPeaksNearBandEdge) {
  const SubbandLadder lad = make_cnt_ladder_from_gap(0.56, 2);
  const double cq_gap = lad.quantum_capacitance(0.0, kKt);
  const double cq_edge = lad.quantum_capacitance(0.28, kKt);
  const double cq_deep = lad.quantum_capacitance(0.8, kKt);
  EXPECT_GT(cq_edge, cq_gap);
  EXPECT_GT(cq_edge, 0.0);
  EXPECT_GT(cq_deep, 0.0);
}

TEST(QuantumCapacitance, ApproachesUniversalLimitWellAboveEdge) {
  // Cq -> q^2 D / (pi hbar vF) ~ 0.34 nF/m for D=4 at vF = 9.06e5 m/s,
  // approached from above once several kT past the band edge.
  SubbandLadder lad;
  lad.subbands = {make_band(0.28, 4)};
  const double hbar_vf = phys::kHbar * 9.06e5 / phys::kQ;
  const double cq_inf = phys::kQ * 4.0 / (M_PI * hbar_vf);
  // The van Hove factor E/sqrt(E^2-Delta^2) still lifts Cq ~18% at 0.25 eV
  // past the edge; approach from above.
  const double cq = lad.quantum_capacitance(0.28 + 0.25, kKt);
  EXPECT_NEAR(cq / cq_inf, 1.18, 0.12);
  EXPECT_GT(cq, cq_inf);
  EXPECT_NEAR(cq_inf, 3.4e-10, 0.4e-10);  // literature anchor
}

TEST(SubbandLadderTest, EmptyLadderRejected) {
  const SubbandLadder empty;
  EXPECT_THROW(empty.band_gap(), carbon::phys::PreconditionError);
}

}  // namespace
