// Landauer transport formulas: quantum limits, closed form vs numeric
// integral, and the sign conventions of electron vs hole branches.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "phys/constants.h"
#include "transport/landauer.h"

namespace {

namespace tr = carbon::transport;
namespace phys = carbon::phys;

constexpr double kKt = 0.02585;

TEST(Landauer, ConductanceQuantumValue) {
  // q^2/h = 38.74 uS; CNT first subband (D=4): 155 uS => 6.45 kOhm.
  EXPECT_NEAR(tr::conductance_quantum_per_mode(), 38.74e-6, 0.02e-6);
  EXPECT_NEAR(phys::kCntQuantumResistance, 6453.0, 5.0);
}

TEST(Landauer, ZeroBiasZeroCurrent) {
  EXPECT_DOUBLE_EQ(
      tr::landauer_current_conduction(0.1, 0.0, 0.0, kKt, 4, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(
      tr::landauer_current_valence(-0.1, 0.0, 0.0, kKt, 4, 1.0), 0.0);
}

TEST(Landauer, DegenerateLimitOhmicConductance) {
  // Band edge far below both chemical potentials: G = D q^2/h.
  const double vd = 1e-4;
  const double i =
      tr::landauer_current_conduction(-0.5, 0.0, -vd, kKt, 4, 1.0);
  EXPECT_NEAR(i / vd, 4.0 * tr::conductance_quantum_per_mode(), 1e-7);
}

TEST(Landauer, SubthresholdExponential) {
  // Barrier well above mu: current scales as exp(-Ec/kT).
  const double i1 =
      tr::landauer_current_conduction(0.30, 0.0, -0.2, kKt, 4, 1.0);
  const double i2 =
      tr::landauer_current_conduction(0.30 + kKt * std::log(10.0), 0.0, -0.2,
                                      kKt, 4, 1.0);
  EXPECT_NEAR(i1 / i2, 10.0, 0.05);
}

TEST(Landauer, TransmissionScalesLinearly) {
  const double i_full =
      tr::landauer_current_conduction(0.05, 0.0, -0.3, kKt, 4, 1.0);
  const double i_half =
      tr::landauer_current_conduction(0.05, 0.0, -0.3, kKt, 4, 0.5);
  EXPECT_NEAR(i_half / i_full, 0.5, 1e-12);
}

TEST(Landauer, ClosedFormMatchesNumericIntegral) {
  const double ec = 0.05, mu_s = 0.0, mu_d = -0.3;
  const auto t_step = [ec](double e) { return e >= ec ? 1.0 : 0.0; };
  const double numeric = tr::landauer_current_numeric(
      t_step, mu_s, mu_d, kKt, ec, ec + 40.0 * kKt);
  const double closed =
      tr::landauer_current_conduction(ec, mu_s, mu_d, kKt, 1, 1.0);
  EXPECT_NEAR(numeric / closed, 1.0, 1e-4);
}

TEST(Landauer, ValenceMirrorsConduction) {
  // By particle-hole symmetry: valence current for Ev = -Ec under reversed
  // bias equals the conduction current.
  const double ic =
      tr::landauer_current_conduction(0.1, 0.0, -0.3, kKt, 4, 1.0);
  // Mirror: E -> -E and mu -> -mu maps conduction onto valence.
  const double iv =
      tr::landauer_current_valence(-0.1, 0.0, 0.3, kKt, 4, 1.0);
  EXPECT_NEAR(iv / ic, -1.0, 1e-9);  // reversed bias flips the sign
}

TEST(Landauer, BothCarrierTypesDriveSameDirection) {
  // With mu_s > mu_d, both electron and hole branches give positive
  // (source->drain) current: the ambipolar CNTFET branch adds, not cancels.
  const double ic =
      tr::landauer_current_conduction(0.2, 0.0, -0.4, kKt, 4, 1.0);
  const double iv =
      tr::landauer_current_valence(-0.2, 0.0, -0.4, kKt, 4, 1.0);
  EXPECT_GT(ic, 0.0);
  EXPECT_GT(iv, 0.0);
}

TEST(Landauer, SaturationWithDrainBias) {
  // Once mu_d is far below the band edge the drain term dies: current
  // saturates. This is the microscopic origin of the paper's Fig. 1(b).
  const double i1 =
      tr::landauer_current_conduction(0.0, 0.0, -0.2, kKt, 4, 1.0);
  const double i2 =
      tr::landauer_current_conduction(0.0, 0.0, -0.5, kKt, 4, 1.0);
  EXPECT_NEAR(i2 / i1, 1.0, 0.01);
}

TEST(Landauer, InvalidTransmissionRejected) {
  EXPECT_THROW(
      tr::landauer_current_conduction(0.0, 0.0, -0.1, kKt, 4, 1.5),
      carbon::phys::PreconditionError);
  EXPECT_THROW(
      tr::landauer_current_conduction(0.0, 0.0, -0.1, 0.0, 4, 1.0),
      carbon::phys::PreconditionError);
}

}  // namespace
