// Quadrature: exactness on polynomials, convergence on smooth and
// singular-ish integrands, semi-infinite tails.
#include <gtest/gtest.h>

#include <cmath>

#include "phys/integrate.h"
#include "phys/require.h"

namespace {

using carbon::phys::integrate_adaptive;
using carbon::phys::integrate_semi_infinite;
using carbon::phys::integrate_simpson;
using carbon::phys::integrate_trapezoid;

TEST(AdaptiveSimpson, ExactOnCubics) {
  const auto f = [](double x) { return 3.0 * x * x * x - x + 2.0; };
  // integral over [0,2]: 3*4 - 2 + 4 = 14
  EXPECT_NEAR(integrate_adaptive(f, 0.0, 2.0), 14.0, 1e-12);
}

TEST(AdaptiveSimpson, ReversedLimitsFlipSign) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(integrate_adaptive(f, 1.0, 0.0),
              -integrate_adaptive(f, 0.0, 1.0), 1e-12);
}

TEST(AdaptiveSimpson, EmptyIntervalIsZero) {
  const auto f = [](double) { return 123.0; };
  EXPECT_EQ(integrate_adaptive(f, 1.0, 1.0), 0.0);
}

TEST(AdaptiveSimpson, SinOverFullPeriod) {
  EXPECT_NEAR(integrate_adaptive([](double x) { return std::sin(x); }, 0.0,
                                 2.0 * M_PI),
              0.0, 1e-10);
}

TEST(AdaptiveSimpson, GaussianMass) {
  const auto f = [](double x) { return std::exp(-x * x); };
  EXPECT_NEAR(integrate_adaptive(f, -8.0, 8.0), std::sqrt(M_PI), 1e-9);
}

TEST(AdaptiveSimpson, SharpPeakResolved) {
  // Narrow Lorentzian: adaptive refinement must find the peak.
  const double w = 1e-3;
  const auto f = [w](double x) { return w / (x * x + w * w); };
  EXPECT_NEAR(integrate_adaptive(f, -1.0, 1.0, 1e-12), 2.0 * std::atan(1.0 / w),
              1e-7);
}

TEST(CompositeSimpson, MatchesAdaptiveOnSmooth) {
  const auto f = [](double x) { return std::exp(x) * std::cos(3.0 * x); };
  EXPECT_NEAR(integrate_simpson(f, 0.0, 1.0, 512),
              integrate_adaptive(f, 0.0, 1.0), 1e-8);
}

TEST(CompositeSimpson, OddPanelCountRoundsUp) {
  const auto f = [](double x) { return x; };
  EXPECT_NEAR(integrate_simpson(f, 0.0, 1.0, 7), 0.5, 1e-12);
}

TEST(SemiInfinite, ExponentialTail) {
  const double scale = 0.05;
  const auto f = [scale](double x) { return std::exp(-x / scale); };
  EXPECT_NEAR(integrate_semi_infinite(f, 0.0, scale), scale, 1e-9);
}

TEST(SemiInfinite, ShiftedLowerLimit) {
  const auto f = [](double x) { return std::exp(-(x - 2.0)); };
  EXPECT_NEAR(integrate_semi_infinite(f, 2.0, 1.0), 1.0, 1e-9);
}

TEST(Trapezoid, LinearDataExact) {
  const double x[] = {0.0, 0.5, 2.0, 3.0};
  const double y[] = {0.0, 1.0, 4.0, 6.0};  // y = 2x
  EXPECT_NEAR(integrate_trapezoid(x, y, 4), 9.0, 1e-12);
}

TEST(Trapezoid, RejectsSinglePoint) {
  const double x[] = {0.0};
  const double y[] = {1.0};
  EXPECT_THROW(integrate_trapezoid(x, y, 1),
               carbon::phys::PreconditionError);
}

class ToleranceSweep : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceSweep, ErrorScalesWithRequest) {
  const double tol = GetParam();
  const auto f = [](double x) { return std::sin(10.0 * x) / (1.0 + x * x); };
  const double tight = integrate_adaptive(f, 0.0, 3.0, 1e-14);
  const double loose = integrate_adaptive(f, 0.0, 3.0, tol);
  EXPECT_NEAR(loose, tight, 50.0 * tol + 1e-14);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ToleranceSweep,
                         ::testing::Values(1e-6, 1e-8, 1e-10, 1e-12));

}  // namespace
