// Fermi-Dirac statistics: values, symmetry, stability and the analytic
// integral identities the transport solvers rely on.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "phys/constants.h"
#include "phys/fermi.h"
#include "phys/integrate.h"

namespace {

using carbon::phys::fermi;
using carbon::phys::fermi_dirac_f0;
using carbon::phys::fermi_dirac_f_half;
using carbon::phys::fermi_dirac_fm_half;
using carbon::phys::fermi_minus_dfde;
using carbon::phys::softplus;

constexpr double kKt = 0.02585;  // 300 K in eV

TEST(Fermi, HalfAtChemicalPotential) {
  EXPECT_DOUBLE_EQ(fermi(0.3, 0.3, kKt), 0.5);
}

TEST(Fermi, LimitsDeepAndFarAboveMu) {
  EXPECT_NEAR(fermi(-1.0, 0.0, kKt), 1.0, 1e-12);
  EXPECT_NEAR(fermi(1.0, 0.0, kKt), 0.0, 1e-12);
}

TEST(Fermi, NoOverflowForExtremeArguments) {
  EXPECT_EQ(fermi(1e4, 0.0, kKt), 0.0);
  EXPECT_EQ(fermi(-1e4, 0.0, kKt), 1.0);
  EXPECT_TRUE(std::isfinite(fermi_minus_dfde(1e4, 0.0, kKt)));
}

TEST(Fermi, ParticleHoleSymmetry) {
  for (double e : {0.01, 0.05, 0.2, 0.5}) {
    EXPECT_NEAR(fermi(e, 0.0, kKt) + fermi(-e, 0.0, kKt), 1.0, 1e-12)
        << "at E=" << e;
  }
}

TEST(Fermi, ThermalBroadeningDerivativeIntegratesToOne) {
  const auto f = [](double e) { return fermi_minus_dfde(e, 0.0, kKt); };
  const double integral = carbon::phys::integrate_adaptive(f, -1.0, 1.0);
  EXPECT_NEAR(integral, 1.0, 1e-9);
}

TEST(Fermi, DerivativePeaksAtMu) {
  const double peak = fermi_minus_dfde(0.0, 0.0, kKt);
  EXPECT_NEAR(peak, 0.25 / kKt, 1e-9);
  EXPECT_LT(fermi_minus_dfde(0.05, 0.0, kKt), peak);
  EXPECT_LT(fermi_minus_dfde(-0.05, 0.0, kKt), peak);
}

TEST(Softplus, MatchesLogFormInMidRange) {
  for (double x : {-5.0, -1.0, 0.0, 1.0, 5.0}) {
    EXPECT_NEAR(softplus(x), std::log1p(std::exp(x)), 1e-12);
  }
}

TEST(Softplus, AsymptoticTails) {
  EXPECT_DOUBLE_EQ(softplus(100.0), 100.0);
  EXPECT_NEAR(softplus(-100.0), std::exp(-100.0), 1e-60);
  EXPECT_NEAR(softplus(0.0), std::log(2.0), 1e-14);
}

TEST(FermiDiracF0, EqualsSoftplus) {
  EXPECT_DOUBLE_EQ(fermi_dirac_f0(2.5), softplus(2.5));
}

TEST(FermiDiracHalf, NondegenerateLimitIsExponential) {
  // F_j(eta) -> exp(eta) for eta << 0, every order j.
  for (double eta : {-8.0, -6.0, -4.0}) {
    EXPECT_NEAR(fermi_dirac_f_half(eta) / std::exp(eta), 1.0, 2e-2);
    EXPECT_NEAR(fermi_dirac_fm_half(eta) / std::exp(eta), 1.0, 2e-2);
  }
}

TEST(FermiDiracHalf, DegenerateLimitGrowsAsPower) {
  // F_{1/2}(eta) ~ (4/3/sqrt(pi)) eta^{3/2} for large eta.
  const double eta = 30.0;
  const double expected = 4.0 / (3.0 * std::sqrt(M_PI)) * std::pow(eta, 1.5);
  EXPECT_NEAR(fermi_dirac_f_half(eta) / expected, 1.0, 5e-2);
}

TEST(FermiDiracHalf, MonotoneIncreasing) {
  double prev = 0.0;
  for (double eta = -6.0; eta <= 6.0; eta += 0.25) {
    const double v = fermi_dirac_fm_half(eta);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

// Parameterized: identities must hold across temperatures.
class FermiTemperature : public ::testing::TestWithParam<double> {};

TEST_P(FermiTemperature, SymmetryAndNormalization) {
  const double kt = carbon::phys::kBoltzmannEv * GetParam();
  EXPECT_NEAR(fermi(0.1, 0.0, kt) + fermi(-0.1, 0.0, kt), 1.0, 1e-12);
  const auto df = [kt](double e) { return fermi_minus_dfde(e, 0.0, kt); };
  const double width = 40.0 * kt;
  EXPECT_NEAR(carbon::phys::integrate_adaptive(df, -width, width), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Temperatures, FermiTemperature,
                         ::testing::Values(77.0, 200.0, 300.0, 400.0));

TEST(Fermi, RejectsNonPositiveTemperature) {
  EXPECT_THROW(fermi(0.0, 0.0, 0.0), carbon::phys::PreconditionError);
  EXPECT_THROW(fermi(0.0, 0.0, -1.0), carbon::phys::PreconditionError);
}

}  // namespace
