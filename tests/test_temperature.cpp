// Temperature physics across the stack: thermal-limit scaling of
// subthreshold swing, carrier statistics and device currents from 77 K to
// 400 K (parameterized property sweeps).
#include <gtest/gtest.h>

#include <cmath>

#include "band/cnt.h"
#include "device/cntfet.h"
#include "phys/constants.h"
#include "transport/top_of_barrier.h"

namespace {

namespace dev = carbon::device;
namespace tr = carbon::transport;
namespace phys = carbon::phys;

class TemperatureSweep : public ::testing::TestWithParam<double> {};

TEST_P(TemperatureSweep, SubthresholdSwingScalesWithT) {
  const double t_k = GetParam();
  dev::CntfetParams p = dev::make_franklin_cntfet_params(20e-9);
  p.temperature_k = t_k;
  const dev::CntfetModel m(p);
  const double ss = dev::subthreshold_swing_mv_dec(m, 0.05, 0.2, 0.5);
  // SS = ln10 kT/q / alpha_g; alpha_g = 0.97 (GAA).
  const double expected =
      std::log(10.0) * phys::kBoltzmannEv * t_k * 1e3 / 0.97;
  EXPECT_NEAR(ss, expected, 0.08 * expected) << "T = " << t_k;
}

TEST_P(TemperatureSweep, OffCurrentActivated) {
  // Ioff is thermally activated over the barrier: colder = exponentially
  // less leakage.
  const double t_k = GetParam();
  if (t_k >= 400.0) GTEST_SKIP();  // compare each T against 400 K below
  dev::CntfetParams p_cold = dev::make_franklin_cntfet_params(20e-9);
  p_cold.temperature_k = t_k;
  dev::CntfetParams p_hot = p_cold;
  p_hot.temperature_k = 400.0;
  const dev::CntfetModel cold(p_cold);
  const dev::CntfetModel hot(p_hot);
  EXPECT_LT(cold.drain_current(0.0, 0.5), hot.drain_current(0.0, 0.5));
}

TEST_P(TemperatureSweep, EquilibriumDensityGrowsWithT) {
  const double t_k = GetParam();
  const auto ladder = carbon::band::make_cnt_ladder_from_gap(0.56, 2);
  const double kt = phys::kBoltzmannEv * t_k;
  const double n_cold = ladder.electron_density(-0.1, kt * 0.8);
  const double n_warm = ladder.electron_density(-0.1, kt);
  EXPECT_GT(n_warm, n_cold);
}

INSTANTIATE_TEST_SUITE_P(Kelvin, TemperatureSweep,
                         ::testing::Values(77.0, 150.0, 250.0, 300.0, 400.0));

TEST(Temperature, OnCurrentOnlyWeaklyTemperatureDependent) {
  // Above threshold the ballistic current is set by the Landauer integral
  // over a degenerate window: far less T-sensitive than the off state.
  dev::CntfetParams p_cold = dev::make_franklin_cntfet_params(20e-9);
  p_cold.temperature_k = 200.0;
  dev::CntfetParams p_hot = p_cold;
  p_hot.temperature_k = 400.0;
  const dev::CntfetModel cold(p_cold);
  const dev::CntfetModel hot(p_hot);
  const double ratio_on =
      hot.drain_current(0.6, 0.5) / cold.drain_current(0.6, 0.5);
  const double ratio_off =
      hot.drain_current(0.0, 0.5) / cold.drain_current(0.0, 0.5);
  EXPECT_LT(std::abs(ratio_on - 1.0), 0.35);
  EXPECT_GT(ratio_off, 100.0);
}

TEST(Temperature, BarrierSolverConsistentAtLowT) {
  // The solver must stay stable at 77 K (sharp Fermi edges).
  tr::TopOfBarrierParams p;
  p.ladder = carbon::band::make_cnt_ladder_from_gap(0.56, 2);
  p.alpha_g = 0.97;
  p.alpha_d = 0.02;
  p.c_total = 5e-10;
  p.ef_source_ev = -0.14;
  p.include_holes = false;
  p.temperature_k = 77.0;
  const tr::TopOfBarrierSolver s(p);
  double prev = 0.0;
  for (double vg = 0.0; vg <= 0.8; vg += 0.05) {
    const double i = s.current(vg, 0.4);
    EXPECT_TRUE(std::isfinite(i));
    EXPECT_GE(i, prev);
    prev = i;
  }
}

}  // namespace
