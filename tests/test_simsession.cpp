// SimSession: deck-in -> JSON-out dispatch, per-step measures, the
// topology cache (symbolic analysis once per topology across .step
// points and repeated decks), structured error documents, and the
// core::Json reader that everything round-trips through.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/report.h"
#include "phys/cancel.h"
#include "spice/session.h"

namespace {

namespace sp = carbon::spice;
using carbon::core::Json;

// The acceptance deck: hierarchical (.subckt + x cards), stepped supply,
// sparse backend, measures — everything the frontend promises at once.
constexpr const char* kAcceptanceDeck = R"(
.title stepped inverter chain
.param vdd=1.0 cl=10f
.model ndev alphan(vt=0.2 alpha=1.3 k=60u lambda=0.08)
.model pdev alphap(vt=0.2 alpha=1.3 k=60u lambda=0.08)
.subckt inv in out vdd cl=10f
mp out in vdd pdev
mn out in 0   ndev
cld out 0 {cl}
.ends
vdd vdd 0 {vdd}
vin in  0 0
x1 in  m1  vdd inv cl={2*cl}
x2 m1  out vdd inv
.options backend=sparse
.dc vin 0 {vdd} 0.05
.step param vdd 0.8 1.2 0.2
.probe v(out)
.measure dc gain vtc v(in) v(m1) vdd={vdd} metric=gain
.measure dc vswitch vtc v(in) v(m1) vdd={vdd} metric=vswitch
.end
)";

TEST(SimSession, SteppedHierarchicalDeckEndToEnd) {
  sp::SimSession session;
  const Json doc = session.run_deck_text(kAcceptanceDeck);
  ASSERT_TRUE(doc["ok"].as_bool()) << doc.dump(1);

  // One step block per .step grid point, each with its own measures.
  const Json& steps = doc["steps"];
  ASSERT_EQ(steps.size(), 3u);
  for (size_t i = 0; i < steps.size(); ++i) {
    const Json& step = steps.at(i);
    const double vdd = step["params"]["vdd"].as_double();
    EXPECT_NEAR(vdd, 0.8 + 0.2 * static_cast<double>(i), 1e-12);
    const double gain = step["measures"]["gain"].as_double();
    const double vswitch = step["measures"]["vswitch"].as_double();
    EXPECT_GT(gain, 1.0) << "inverter must be regenerative";
    EXPECT_NEAR(vswitch, vdd / 2, 0.05 * vdd);
    // The per-step sweep table is present and spans 0..vdd.
    const Json& table = step["analyses"].at(0)["table"];
    const size_t rows = table["rows"].size();
    EXPECT_EQ(rows, static_cast<size_t>(std::lround(vdd / 0.05)) + 1);
  }

  // The heart of the cache claim: three step points, ONE matrix pattern
  // build and ONE sparse symbolic analysis (values retuned in place).
  const Json& stats = doc["session"];
  EXPECT_EQ(stats["mna_pattern_builds"].as_int(), 1) << doc.dump(1);
  EXPECT_EQ(stats["symbolic_analyses"].as_int(), 1) << doc.dump(1);
  EXPECT_FALSE(doc["topology"]["cache_hit"].as_bool());

  // Re-running the same deck hits the cache; the pattern/symbolic work
  // STILL happened exactly once, now across 6 step solves.
  const Json again = session.run_deck_text(kAcceptanceDeck);
  ASSERT_TRUE(again["ok"].as_bool());
  EXPECT_TRUE(again["topology"]["cache_hit"].as_bool());
  EXPECT_EQ(again["session"]["mna_pattern_builds"].as_int(), 1);
  EXPECT_EQ(again["session"]["symbolic_analyses"].as_int(), 1);
  EXPECT_EQ(again["session"]["decks_run"].as_int(), 2);

  // A deck with different values but the same topology shares the entry.
  std::string retuned = kAcceptanceDeck;
  const auto pos = retuned.find("cl=10f");
  retuned.replace(pos, 6, "cl=20f");
  const Json third = session.run_deck_text(retuned);
  ASSERT_TRUE(third["ok"].as_bool()) << third.dump(1);
  EXPECT_TRUE(third["topology"]["cache_hit"].as_bool());
  EXPECT_EQ(session.cache_entries(), 1u);
}

TEST(SimSession, StepsRetuneToTheSameResultAsFreshRuns) {
  // Per-step results from the retuned cached circuit must match a fresh
  // session seeing only that step's values.
  sp::SimSession stepped;
  const Json doc = stepped.run_deck_text(kAcceptanceDeck);
  ASSERT_TRUE(doc["ok"].as_bool());
  const Json& step1 = doc["steps"].at(1);

  std::string single = kAcceptanceDeck;
  const auto pos = single.find(".step param vdd 0.8 1.2 0.2\n");
  ASSERT_NE(pos, std::string::npos);
  single.erase(pos, std::string(".step param vdd 0.8 1.2 0.2\n").size());
  const auto ppos = single.find("vdd=1.0");
  single.replace(ppos, 7, "vdd=1.0");  // step 1 is exactly the base point
  sp::SimSession fresh;
  const Json ref = fresh.run_deck_text(single);
  ASSERT_TRUE(ref["ok"].as_bool());
  const Json& step_ref = ref["steps"].at(0);
  EXPECT_NEAR(step1["measures"]["gain"].as_double(),
              step_ref["measures"]["gain"].as_double(), 1e-9);
  EXPECT_NEAR(step1["measures"]["vswitch"].as_double(),
              step_ref["measures"]["vswitch"].as_double(), 1e-12);
}

TEST(SimSession, MalformedDeckYieldsStructuredError) {
  sp::SimSession session;
  const Json doc = session.run_deck_text(
      "v1 in 0 1\nr1 in out 1k\nr2 out\n.op\n.end\n");
  ASSERT_FALSE(doc["ok"].as_bool());
  const Json& err = doc["error"];
  EXPECT_EQ(err["type"].as_string(), "parse");
  EXPECT_EQ(err["line"].as_int(), 3);
  EXPECT_EQ(err["line_text"].as_string(), "r2 out");
  EXPECT_NE(err["reason"].as_string().find("R wants"), std::string::npos);
}

TEST(SimSession, SolveFailureYieldsStructuredError) {
  // Two series diodes head-to-tail across a supply with no DC path for
  // the middle node: the ladder exhausts and reports a SolveFailure.
  sp::SimSession session;
  const Json doc = session.run_deck_text(
      "v1 a 0 1\n"
      "d1 a b is=1e-14\n"
      "d2 a b is=1e-14\n"
      ".op\n"
      ".end\n");
  if (!doc["ok"].as_bool()) {
    EXPECT_EQ(doc["error"]["type"].as_string(), "solve_failure");
    EXPECT_TRUE(doc["error"].find("stage") != nullptr) << doc.dump(1);
  }
  // (If the ladder happens to converge this still counts: the contract
  // under test is the error document's shape, asserted above.)
}

TEST(SimSession, MeasureFailuresAreNullNotFatal) {
  sp::SimSession session;
  const Json doc = session.run_deck_text(
      "v1 in 0 1\n"
      "r1 in out 1k\n"
      "r2 out 0 1k\n"
      ".op\n"
      ".measure op vout value v(out)\n"
      ".measure op vmissing value v(nosuchnode)\n"
      ".end\n");
  ASSERT_TRUE(doc["ok"].as_bool()) << doc.dump(1);
  const Json& step = doc["steps"].at(0);
  EXPECT_NEAR(step["measures"]["vout"].as_double(), 0.5, 1e-12);
  EXPECT_TRUE(step["measures"]["vmissing"].is_null());
  EXPECT_TRUE(step["measure_errors"].find("vmissing") != nullptr);
}

TEST(SimSession, ProbeNoneSuppressesTables) {
  sp::SimSession session;
  const Json doc = session.run_deck_text(
      "v1 in 0 1\nr1 in out 1k\nr2 out 0 1k\n"
      ".op\n.probe none\n"
      ".measure op vout value v(out)\n.end\n");
  ASSERT_TRUE(doc["ok"].as_bool());
  const Json& op = doc["steps"].at(0)["analyses"].at(0);
  EXPECT_EQ(op.find("voltages"), nullptr);
  EXPECT_NEAR(doc["steps"].at(0)["measures"]["vout"].as_double(), 0.5,
              1e-12);
}

// A trivial divider with @p stages series resistors: each stage count is a
// distinct topology, so running several of them populates distinct cache
// entries.
std::string divider_deck(int stages) {
  std::string deck = "v1 n0 0 1\n";
  for (int i = 0; i < stages; ++i) {
    deck += "r" + std::to_string(i) + " n" + std::to_string(i) + " n" +
            std::to_string(i + 1) + " 1k\n";
  }
  deck += "rl n" + std::to_string(stages) + " 0 1k\n.op\n.probe none\n.end\n";
  return deck;
}

TEST(SimSession, TopologyCacheIsBoundedLru) {
  sp::SessionOptions opts;
  opts.cache_capacity = 2;
  sp::SimSession session(sp::ModelRegistry{}, opts);

  // Three distinct topologies through a capacity-2 cache: the oldest
  // entry (A) must be evicted.
  ASSERT_TRUE(session.run_deck_text(divider_deck(1))["ok"].as_bool());  // A
  ASSERT_TRUE(session.run_deck_text(divider_deck(2))["ok"].as_bool());  // B
  const Json c = session.run_deck_text(divider_deck(3));                // C
  ASSERT_TRUE(c["ok"].as_bool());
  EXPECT_EQ(c["session"]["cache_evictions"].as_int(), 1);
  EXPECT_EQ(session.cache_entries(), 2u);

  // B is still cached...
  EXPECT_TRUE(session.run_deck_text(divider_deck(2))["topology"]["cache_hit"]
                  .as_bool());
  // ...and that hit refreshed B's recency: inserting A again must evict
  // C, not B.
  ASSERT_TRUE(session.run_deck_text(divider_deck(1))["ok"].as_bool());
  const Json b = session.run_deck_text(divider_deck(2));
  EXPECT_TRUE(b["topology"]["cache_hit"].as_bool());
  const Json cc = session.run_deck_text(divider_deck(3));
  EXPECT_FALSE(cc["topology"]["cache_hit"].as_bool()) << "C was LRU";

  const sp::SessionCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 5);  // A B C | A C reinserted after eviction
  EXPECT_EQ(stats.evictions, 3);
  // The same numbers are published in the response document.
  EXPECT_EQ(cc["session"]["cache_hits"].as_int(), 2);
  EXPECT_EQ(cc["session"]["cache_misses"].as_int(), 5);
  EXPECT_EQ(cc["session"]["cache_capacity"].as_int(), 2);
}

TEST(SimSession, ExpiredDeadlineRendersTimeoutDocument) {
  sp::SimSession session;
  carbon::phys::CancelToken token;
  token.set_deadline_after(0.0);  // fires immediately
  const Json doc = session.run_deck_text(divider_deck(1), &token);
  ASSERT_FALSE(doc["ok"].as_bool());
  EXPECT_EQ(doc["error"]["type"].as_string(), "timeout");
  EXPECT_TRUE(doc["error"].find("where") != nullptr) << doc.dump(1);
}

TEST(SimSession, ExplicitCancelRendersCancelledDocument) {
  sp::SimSession session;
  carbon::phys::CancelToken token;
  token.cancel();
  const Json doc = session.run_deck_text(divider_deck(1), &token);
  ASSERT_FALSE(doc["ok"].as_bool());
  EXPECT_EQ(doc["error"]["type"].as_string(), "cancelled");
}

// ---------------------------------------------------------------------------
// core::Json reader

TEST(JsonParse, RoundTripsSessionDocuments) {
  sp::SimSession session;
  const Json doc = session.run_deck_text(kAcceptanceDeck);
  const std::string text = doc.dump();
  const Json back = Json::parse(text);
  // Re-serializing the parse must reproduce the text exactly (ordered
  // objects, %.17g doubles).
  EXPECT_EQ(back.dump(), text);
  EXPECT_EQ(back["steps"].size(), 3u);
  EXPECT_NEAR(back["steps"].at(0)["measures"]["gain"].as_double(),
              doc["steps"].at(0)["measures"]["gain"].as_double(), 0.0);
}

TEST(JsonParse, ScalarsAndEscapes) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-42").as_int(), -42);
  EXPECT_TRUE(Json::parse("-42").is_int());
  EXPECT_DOUBLE_EQ(Json::parse("6.02e23").as_double(), 6.02e23);
  EXPECT_FALSE(Json::parse("6.02e23").is_int());
  EXPECT_EQ(Json::parse(R"("a\nb\t\"q\"")").as_string(), "a\nb\t\"q\"");
  EXPECT_EQ(Json::parse(R"("\u00e9\u20ac")").as_string(), "\xc3\xa9\xe2\x82\xac");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
  EXPECT_TRUE(Json::parse("[1, 2, 3]").is_array());
  EXPECT_EQ(Json::parse("[1, 2, 3]").size(), 3u);
  EXPECT_EQ(Json::parse(R"({"a": {"b": [false]}})")["a"]["b"].at(0).as_bool(),
            false);
}

TEST(JsonParse, MalformedDocumentsThrow) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "01",
        "{\"a\":1,}", "[1 2]", "\"\\ud83d\"", "nully", "1 2"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
}

}  // namespace
