// Generic series-resistance solver: analytic checks against a linear
// device, wrapper semantics and both polarities.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "device/cntfet.h"
#include "device/linear_fet.h"
#include "device/series_resistance.h"

namespace {

namespace dev = carbon::device;

// A device that is a pure resistor (gate ignored): the series solution has
// a closed form I = V / (R_dev + Rs + Rd).
class ResistorDevice final : public dev::IDeviceModel {
 public:
  explicit ResistorDevice(double ohms) : ohms_(ohms) {}
  double drain_current(double, double vds) const override {
    return vds / ohms_;
  }
  const std::string& name() const override { return name_; }

 private:
  double ohms_;
  std::string name_ = "resistor-device";
};

TEST(SeriesResistance, LinearDeviceClosedForm) {
  auto r = std::make_shared<ResistorDevice>(10e3);
  const double i =
      dev::solve_with_series_resistance(*r, 0.0, 1.0, 20e3, 30e3);
  EXPECT_NEAR(i, 1.0 / 60e3, 1e-12);
}

TEST(SeriesResistance, ZeroResistanceIdentity) {
  const dev::CntfetModel m(dev::make_franklin_cntfet_params(20e-9));
  EXPECT_DOUBLE_EQ(dev::solve_with_series_resistance(m, 0.5, 0.5, 0.0, 0.0),
                   m.drain_current(0.5, 0.5));
}

TEST(SeriesResistance, AlwaysReducesCurrent) {
  const dev::CntfetModel m(dev::make_franklin_cntfet_params(20e-9));
  for (double vg : {0.3, 0.5, 0.7}) {
    const double i0 = m.drain_current(vg, 0.5);
    const double ir = dev::solve_with_series_resistance(m, vg, 0.5, 25e3,
                                                        25e3);
    EXPECT_LT(ir, i0) << "vg=" << vg;
    EXPECT_GT(ir, 0.0);
  }
}

TEST(SeriesResistance, ConsistentInternalBias) {
  // The solved current must satisfy I = f(vg - I rs, vd - I (rs+rd)).
  const dev::CntfetModel m(dev::make_franklin_cntfet_params(20e-9));
  const double rs = 30e3, rd = 20e3;
  const double i = dev::solve_with_series_resistance(m, 0.6, 0.5, rs, rd);
  const double check =
      m.drain_current(0.6 - i * rs, 0.5 - i * (rs + rd));
  EXPECT_NEAR(check, i, std::abs(i) * 1e-6);
}

TEST(SeriesResistance, PTypePolarityHandled) {
  auto n = std::make_shared<dev::CntfetModel>(
      dev::make_franklin_cntfet_params(20e-9));
  auto p = std::make_shared<dev::PTypeMirror>(n);
  const double i = dev::solve_with_series_resistance(*p, -0.6, -0.5, 10e3,
                                                     10e3);
  EXPECT_LT(i, 0.0);
  // Magnitude mirrors the n-type solve.
  const double i_n =
      dev::solve_with_series_resistance(*n, 0.6, 0.5, 10e3, 10e3);
  EXPECT_NEAR(i, -i_n, std::abs(i_n) * 1e-9);
}

TEST(SeriesResistanceModel, WrapperDelegatesAndNames) {
  auto inner = std::make_shared<dev::LinearFetModel>(
      dev::make_fig2_linear_params());
  const dev::SeriesResistanceModel wrapped(inner, 1e3, 1e3);
  EXPECT_NE(wrapped.name().find("+Rsd"), std::string::npos);
  EXPECT_LT(wrapped.drain_current(1.0, 1.0),
            inner->drain_current(1.0, 1.0));
  EXPECT_EQ(wrapped.width_normalization(), inner->width_normalization());
}

TEST(SeriesResistanceModel, NegativeResistanceRejected) {
  auto inner = std::make_shared<dev::LinearFetModel>(
      dev::make_fig2_linear_params());
  EXPECT_THROW(dev::SeriesResistanceModel(inner, -1.0, 0.0),
               carbon::phys::PreconditionError);
}

TEST(SeriesResistance, LargeResistanceApproachesOhmicLimit) {
  // When Rs+Rd >> device resistance the current approaches V/(Rs+Rd): the
  // Fig. 4 "linearization" effect taken to its extreme.
  const dev::CntfetModel m(dev::make_franklin_cntfet_params(20e-9));
  const double r_total = 10e6;
  const double i = dev::solve_with_series_resistance(m, 0.8, 0.5, r_total / 2,
                                                     r_total / 2);
  EXPECT_NEAR(i, 0.5 / r_total, 0.3 * 0.5 / r_total);
}

}  // namespace
