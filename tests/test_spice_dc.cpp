// DC analyses of the MNA engine: linear networks with known solutions,
// nonlinear convergence (diode, FET), sweeps and source bookkeeping.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "device/alpha_power.h"
#include "device/linear_fet.h"
#include "spice/analyses.h"
#include "spice/circuit.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;

TEST(SpiceDc, VoltageDivider) {
  sp::Circuit ckt;
  ckt.add_vsource("v1", "a", "0", 10.0);
  ckt.add_resistor("r1", "a", "b", 2e3);
  ckt.add_resistor("r2", "b", "0", 3e3);
  const auto sol = sp::operating_point(ckt);
  EXPECT_NEAR(sp::node_voltage(ckt, sol, "b"), 6.0, 1e-9);
  EXPECT_NEAR(sp::node_voltage(ckt, sol, "a"), 10.0, 1e-9);
}

TEST(SpiceDc, VsourceCurrentSignConvention) {
  // Sourcing supply: branch current (into + terminal) is negative.
  sp::Circuit ckt;
  auto* v1 = ckt.add_vsource("v1", "a", "0", 5.0);
  ckt.add_resistor("r1", "a", "0", 1e3);
  const auto sol = sp::operating_point(ckt);
  EXPECT_NEAR(sp::vsource_current(ckt, sol, *v1), -5e-3, 1e-12);
}

TEST(SpiceDc, CurrentSourceIntoResistor) {
  sp::Circuit ckt;
  ckt.add_isource("i1", "0", "a", sp::dc(1e-3));  // pushes into node a
  ckt.add_resistor("r1", "a", "0", 2e3);
  const auto sol = sp::operating_point(ckt);
  EXPECT_NEAR(sp::node_voltage(ckt, sol, "a"), 2.0, 1e-9);
}

TEST(SpiceDc, WheatstoneBridge) {
  sp::Circuit ckt;
  ckt.add_vsource("v1", "top", "0", 10.0);
  ckt.add_resistor("r1", "top", "l", 1e3);
  ckt.add_resistor("r2", "top", "r", 2e3);
  ckt.add_resistor("r3", "l", "0", 2e3);
  ckt.add_resistor("r4", "r", "0", 1e3);
  ckt.add_resistor("rb", "l", "r", 5e3);
  const auto sol = sp::operating_point(ckt);
  // Nodal solution: 17L - 2R = 100, 17R - 2L = 50 => L = 1800/285,
  // R = 1050/285.
  EXPECT_NEAR(sp::node_voltage(ckt, sol, "l"), 1800.0 / 285.0, 1e-6);
  EXPECT_NEAR(sp::node_voltage(ckt, sol, "r"), 1050.0 / 285.0, 1e-6);
}

TEST(SpiceDc, DiodeOperatingPoint) {
  // 5 V through 1 kOhm into a diode: V_d settles near 0.6-0.8 V and KCL
  // holds: (5 - Vd)/R = Is (exp(Vd/nVt) - 1).
  sp::Circuit ckt;
  ckt.add_vsource("v1", "a", "0", 5.0);
  ckt.add_resistor("r1", "a", "d", 1e3);
  ckt.add_diode("d1", "d", "0", 1e-14, 1.0);
  const auto sol = sp::operating_point(ckt);
  const double vd = sp::node_voltage(ckt, sol, "d");
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 0.8);
  const double i_r = (5.0 - vd) / 1e3;
  const double i_d = 1e-14 * (std::exp(vd / 0.02585) - 1.0);
  EXPECT_NEAR(i_r / i_d, 1.0, 5e-3);
}

TEST(SpiceDc, DiodeReverseBlocks) {
  sp::Circuit ckt;
  ckt.add_vsource("v1", "a", "0", -5.0);
  ckt.add_resistor("r1", "a", "d", 1e3);
  ckt.add_diode("d1", "d", "0", 1e-14, 1.0);
  const auto sol = sp::operating_point(ckt);
  EXPECT_NEAR(sp::node_voltage(ckt, sol, "d"), -5.0, 0.01);
}

TEST(SpiceDc, FetCommonSourceAmplifier) {
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  ckt.add_vsource("vg", "g", "0", 0.45);
  ckt.add_resistor("rl", "vdd", "d", 2e3);
  ckt.add_fet("m1", "d", "g", "0", m);
  const auto sol = sp::operating_point(ckt);
  const double vd = sp::node_voltage(ckt, sol, "d");
  // KCL at the drain: (vdd - vd)/RL = Id(vg, vd).
  const double i_r = (1.0 - vd) / 2e3;
  const double i_fet = m->drain_current(0.45, vd);
  EXPECT_NEAR(i_r / i_fet, 1.0, 1e-4);
  EXPECT_GT(vd, 0.05);
  EXPECT_LT(vd, 0.95);
}

TEST(SpiceDc, DcSweepTracksAnalytic) {
  sp::Circuit ckt;
  auto* vin = ckt.add_vsource("vin", "a", "0", 0.0);
  ckt.add_resistor("r1", "a", "b", 1e3);
  ckt.add_resistor("r2", "b", "0", 1e3);
  const auto table =
      sp::dc_sweep(ckt, *vin, {0.0, 1.0, 2.0, 3.0}, {"b"});
  ASSERT_EQ(table.num_rows(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(table.at(i, 1), table.at(i, 0) / 2.0, 1e-9);
  }
}

TEST(SpiceDc, FloatingGateHandledByShunt) {
  // A FET gate with no DC path must not make the system singular.
  auto m = std::make_shared<dev::LinearFetModel>(
      dev::make_fig2_linear_params());
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  ckt.add_resistor("rd", "vdd", "d", 1e4);
  ckt.add_capacitor("cg", "g", "0", 1e-15);  // only capacitive gate tie
  ckt.add_fet("m1", "d", "g", "0", m);
  EXPECT_NO_THROW(sp::operating_point(ckt));
}

TEST(SpiceDc, EmptyCircuitRejected) {
  sp::Circuit ckt;
  EXPECT_THROW(sp::operating_point(ckt), carbon::phys::PreconditionError);
}

TEST(SpiceDc, WarmStartConvergesFaster) {
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  ckt.add_vsource("vg", "g", "0", 0.5);
  ckt.add_resistor("rl", "vdd", "d", 2e3);
  ckt.add_fet("m1", "d", "g", "0", m);
  const auto cold = sp::operating_point(ckt);
  const auto warm = sp::operating_point(ckt, {}, &cold.x);
  EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(SpiceDc, SharedNewtonWorkspaceReproducesFreshSolves) {
  // Sweep drivers keep one NewtonWorkspace across points (and even across
  // differently-sized circuits); the solutions must match fresh solves.
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  sp::NewtonWorkspace ws;

  sp::Circuit small;
  small.add_vsource("v1", "a", "0", 10.0);
  small.add_resistor("r1", "a", "b", 2e3);
  small.add_resistor("r2", "b", "0", 3e3);
  const auto s1 = sp::operating_point(small, {}, nullptr, &ws);
  EXPECT_NEAR(sp::node_voltage(small, s1, "b"), 6.0, 1e-9);

  sp::Circuit fet;
  fet.add_vsource("vdd", "vdd", "0", 1.0);
  fet.add_vsource("vg", "g", "0", 0.5);
  fet.add_resistor("rl", "vdd", "d", 2e3);
  fet.add_fet("m1", "d", "g", "0", m);
  const auto with_ws = sp::operating_point(fet, {}, nullptr, &ws);
  const auto fresh = sp::operating_point(fet);
  ASSERT_EQ(with_ws.x.size(), fresh.x.size());
  for (size_t i = 0; i < fresh.x.size(); ++i) {
    EXPECT_NEAR(with_ws.x[i], fresh.x[i], 1e-12);
  }

  // Workspace still valid for the first circuit again (size shrinks back).
  const auto s2 = sp::operating_point(small, {}, nullptr, &ws);
  EXPECT_NEAR(sp::node_voltage(small, s2, "b"), 6.0, 1e-9);
}

TEST(SpiceDc, NodeNameLookup) {
  sp::Circuit ckt;
  ckt.add_resistor("r1", "alpha", "0", 1.0);
  EXPECT_EQ(ckt.find_node("alpha"), 1);
  EXPECT_EQ(ckt.find_node("gnd"), 0);
  EXPECT_THROW(ckt.find_node("nope"), carbon::phys::PreconditionError);
  EXPECT_EQ(ckt.node_name(1), "alpha");
}

}  // namespace
