// Chirality populations and solution-phase sorting (Section V).
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "fab/chirality.h"
#include "fab/sorting.h"

namespace {

namespace fab = carbon::fab;

TEST(ChiralityPopulation, MetallicThirdForWidePopulation) {
  const fab::ChiralityPopulation pop(1.4e-9, 0.25e-9);
  EXPECT_GT(pop.num_species(), 20);
  EXPECT_NEAR(pop.metallic_fraction(), 1.0 / 3.0, 0.07);
}

TEST(ChiralityPopulation, MeanDiameterTracksTarget) {
  const fab::ChiralityPopulation pop(1.4e-9, 0.15e-9);
  EXPECT_NEAR(pop.mean_diameter() * 1e9, 1.4, 0.08);
}

TEST(ChiralityPopulation, SamplingMatchesWeights) {
  const fab::ChiralityPopulation pop(1.2e-9, 0.2e-9);
  carbon::phys::Rng rng(7);
  int metallic = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    metallic += pop.sample(rng).is_metallic() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(metallic) / n, pop.metallic_fraction(),
              0.02);
}

TEST(ChiralityPopulation, ReweightSuppressesMetals) {
  fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  pop.reweight(0.01, 1.0);
  EXPECT_LT(pop.metallic_fraction(), 0.01);
}

TEST(ChiralityPopulation, ReweightCannotAnnihilate) {
  fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  EXPECT_THROW(pop.reweight(0.0, 0.0), carbon::phys::PreconditionError);
}

TEST(Sorting, SinglePassClosedForm) {
  // One pass: m' = m*rm / (m*rm + s*rs).
  const fab::SortingProcess p = fab::gel_chromatography();
  const auto r = fab::apply_sorting(p, 1, 1.0 / 3.0);
  const double m = (1.0 / 3.0) * p.metallic_retention;
  const double s = (2.0 / 3.0) * p.semiconducting_retention;
  EXPECT_NEAR(r.metallic_ppm, m / (m + s) * 1e6, 1.0);
  EXPECT_NEAR(r.semiconducting_purity, s / (m + s), 1e-9);
}

TEST(Sorting, PurityImprovesGeometrically) {
  const fab::SortingProcess p = fab::gel_chromatography();
  const auto r1 = fab::apply_sorting(p, 1);
  const auto r2 = fab::apply_sorting(p, 2);
  const auto r3 = fab::apply_sorting(p, 3);
  const double ratio12 = r1.metallic_ppm / r2.metallic_ppm;
  const double ratio23 = r2.metallic_ppm / r3.metallic_ppm;
  EXPECT_NEAR(ratio12 / ratio23, 1.0, 0.05);  // constant enrichment factor
  EXPECT_GT(ratio12, 50.0);                   // strong per-pass selectivity
}

TEST(Sorting, MassYieldDecays) {
  const fab::SortingProcess p = fab::density_gradient();
  const auto r3 = fab::apply_sorting(p, 3);
  EXPECT_LT(r3.overall_mass_yield, 0.2);
  EXPECT_GT(r3.overall_mass_yield, 0.0);
}

TEST(Sorting, ZeroPassesIsIdentity) {
  const auto r = fab::apply_sorting(fab::dna_sorting(), 0, 0.25);
  EXPECT_NEAR(r.metallic_ppm, 0.25e6, 1.0);
  EXPECT_DOUBLE_EQ(r.overall_mass_yield, 1.0);
}

TEST(Sorting, PassesForPurityConsistent) {
  const fab::SortingProcess p = fab::gel_chromatography();
  const auto r = fab::passes_for_purity(p, 1.0);  // 1 ppm target
  ASSERT_GT(r.passes, 0);
  EXPECT_LE(r.metallic_ppm, 1.0);
  // One fewer pass would miss the target.
  const auto prev = fab::apply_sorting(p, r.passes - 1);
  EXPECT_GT(prev.metallic_ppm, 1.0);
}

TEST(Sorting, PopulationReweightMatchesScalarMath) {
  fab::ChiralityPopulation pop(1.4e-9, 0.25e-9);
  const double m0 = pop.metallic_fraction();
  const fab::SortingProcess p = fab::gel_chromatography();
  fab::apply_to_population(p, 2, pop);
  const auto scalar = fab::apply_sorting(p, 2, m0);
  EXPECT_NEAR(pop.metallic_fraction() * 1e6, scalar.metallic_ppm, 2.0);
}

// Every canned process must be a real enrichment step.
class ProcessSweep : public ::testing::TestWithParam<fab::SortingProcess> {};

TEST_P(ProcessSweep, SelectivityAndYieldSane) {
  const auto& p = GetParam();
  EXPECT_GT(p.semiconducting_retention, p.metallic_retention);
  EXPECT_GT(p.mass_yield, 0.0);
  EXPECT_LE(p.mass_yield, 1.0);
  const auto r = fab::apply_sorting(p, 4);
  EXPECT_LT(r.metallic_ppm, 1e4);  // 4 passes: below 1% metallic
}

INSTANTIATE_TEST_SUITE_P(Processes, ProcessSweep,
                         ::testing::Values(fab::gel_chromatography(),
                                           fab::density_gradient(),
                                           fab::dna_sorting()));

}  // namespace
