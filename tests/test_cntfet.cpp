// CNTFET compact model: Fig. 1 calibration, Fig. 4 contact-resistance
// degradation, reverse-bias symmetry and the OP current ceiling.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "device/cntfet.h"
#include "device/ivmodel.h"

namespace {

using carbon::device::CntfetModel;
using carbon::device::CntfetParams;
using carbon::device::make_fig1_cntfet_params;
using carbon::device::make_franklin_cntfet_params;

TEST(CntfetFig1, BandGapAndDiameter) {
  const CntfetModel m(make_fig1_cntfet_params());
  EXPECT_NEAR(m.band_gap(), 0.56, 1e-12);
  EXPECT_NEAR(m.diameter() * 1e9, 1.52, 0.05);
  EXPECT_GT(m.width_normalization(), 0.0);
}

TEST(CntfetFig1, OnCurrentInOuyangRange) {
  // Ref [3]'s ballistic CNTFET carries ~5-10 uA at VG = VDS = 0.5 V.
  const CntfetModel m(make_fig1_cntfet_params());
  const double i = m.drain_current(0.5, 0.5);
  EXPECT_GT(i, 3e-6);
  EXPECT_LT(i, 15e-6);
}

TEST(CntfetFig1, SaturationBetween02And05V) {
  // The Fig. 1(b) criterion: "the current hardly changes between
  // VDS = 0.2 V and VDS = 0.5 V".
  const CntfetModel m(make_fig1_cntfet_params());
  const double ratio = m.drain_current(0.5, 0.5) / m.drain_current(0.5, 0.2);
  EXPECT_LT(ratio, 1.15);
  EXPECT_GE(ratio, 1.0);
}

TEST(CntfetFig1, SixDecadeSwitching) {
  const CntfetModel m(make_fig1_cntfet_params());
  const double on = m.drain_current(0.6, 0.5);
  const double off = m.drain_current(0.0, 0.5);
  EXPECT_GT(on / off, 1e6);
}

TEST(CntfetFig1, SubthresholdSwingNearThermal) {
  const CntfetModel m(make_fig1_cntfet_params());
  const double ss =
      carbon::device::subthreshold_swing_mv_dec(m, 0.05, 0.2, 0.5);
  EXPECT_GT(ss, 58.0);
  EXPECT_LT(ss, 72.0);
}

TEST(Cntfet, ReverseBiasSymmetry) {
  // Swapping source and drain: I(vgs, vds) = -I(vgs - vds, -vds).
  const CntfetModel m(make_franklin_cntfet_params(20e-9));
  const double fwd = m.drain_current(0.3, 0.4);
  const double rev = m.drain_current(0.3 - 0.4, -0.4);
  EXPECT_NEAR(rev, -fwd, std::abs(fwd) * 1e-9);
}

TEST(Cntfet, ZeroDrainBiasZeroCurrent) {
  const CntfetModel m(make_franklin_cntfet_params(20e-9));
  EXPECT_NEAR(m.drain_current(0.5, 0.0), 0.0, 1e-15);
}

TEST(CntfetFig4, FiftyKohmContactsDegradeAndLinearize) {
  // The Fig. 4 experiment: identical device, 50 kOhm on each contact.
  CntfetParams ideal = make_franklin_cntfet_params(20e-9);
  CntfetParams loaded = ideal;
  loaded.r_source_ohm = 50e3;
  loaded.r_drain_ohm = 50e3;
  const CntfetModel mi(ideal);
  const CntfetModel ml(loaded);

  // (1) current drops substantially at the on-state
  const double ii = mi.drain_current(0.6, 0.5);
  const double il = ml.drain_current(0.6, 0.5);
  EXPECT_LT(il, 0.55 * ii);

  // (2) the output curve becomes more linear: saturation ratio
  //     I(0.5)/I(0.25) moves away from ~1 toward ~2.
  const double sat_i = mi.drain_current(0.6, 0.5) / mi.drain_current(0.6, 0.25);
  const double sat_l = ml.drain_current(0.6, 0.5) / ml.drain_current(0.6, 0.25);
  EXPECT_LT(sat_i, 1.35);
  EXPECT_GT(sat_l, sat_i + 0.2);
}

TEST(Cntfet, OpCeilingCapsHighOverdriveCurrent) {
  CntfetParams p = make_franklin_cntfet_params(15e-9);
  p.ef_source_ev = -0.02;  // very low threshold: pushes into the ceiling
  const CntfetModel m(p);
  const double i = m.drain_current(0.9, 0.7);
  EXPECT_LT(i, p.op_current_ceiling_a);
  // And the ceiling is what binds, not the barrier.
  CntfetParams open = p;
  open.op_current_ceiling_a = 1.0;  // effectively off
  const CntfetModel mo(open);
  EXPECT_GT(mo.drain_current(0.9, 0.7), 1.2 * i);
}

TEST(Cntfet, BallisticBeatsQuasiBallistic) {
  CntfetParams bal = make_franklin_cntfet_params(40e-9);
  bal.ballistic = true;
  const CntfetModel mb(bal);
  const CntfetModel mq(make_franklin_cntfet_params(40e-9));
  EXPECT_GT(mb.drain_current(0.5, 0.5), mq.drain_current(0.5, 0.5));
}

TEST(Cntfet, LongerChannelLessCurrent) {
  const CntfetModel short_dev(make_franklin_cntfet_params(15e-9));
  const CntfetModel long_dev(make_franklin_cntfet_params(300e-9));
  EXPECT_GT(short_dev.drain_current(0.5, 0.5),
            1.5 * long_dev.drain_current(0.5, 0.5));
}

TEST(Cntfet, MetallicTubeRejected) {
  CntfetParams p;
  p.chirality = {12, 0};  // metallic
  EXPECT_THROW(CntfetModel{p}, carbon::phys::PreconditionError);
}

TEST(Cntfet, PTypeMirrorIsComplementary) {
  auto n = std::make_shared<CntfetModel>(make_fig1_cntfet_params());
  const carbon::device::PTypeMirror p(n);
  EXPECT_NEAR(p.drain_current(-0.5, -0.5), -n->drain_current(0.5, 0.5),
              1e-18);
  EXPECT_EQ(p.polarity(), carbon::device::Polarity::kPType);
}

TEST(Cntfet, GateShiftMovesThreshold) {
  auto base = std::make_shared<CntfetModel>(make_fig1_cntfet_params());
  const carbon::device::GateShifted shifted(base, 0.1);
  EXPECT_NEAR(shifted.drain_current(0.3, 0.5),
              base->drain_current(0.4, 0.5), 1e-18);
}

// Monotonicity property across the full bias plane: the SPICE Newton
// solver requires it.
class CntfetMonotone : public ::testing::TestWithParam<double> {};

TEST_P(CntfetMonotone, TransferCurveMonotone) {
  const double vds = GetParam();
  const CntfetModel m(make_franklin_cntfet_params(25e-9));
  double prev = -1.0;
  for (double vg = 0.0; vg <= 0.9; vg += 0.03) {
    const double i = m.drain_current(vg, vds);
    EXPECT_GE(i, prev) << "vg=" << vg << " vds=" << vds;
    prev = i;
  }
}

INSTANTIATE_TEST_SUITE_P(DrainBiases, CntfetMonotone,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7));

}  // namespace
