// Cross-module integration: device physics -> SPICE cells -> logic timing
// -> computer; and the full Fig. 2 contrast experiment end to end.
#include <gtest/gtest.h>

#include <memory>

#include "circuit/cells.h"
#include "circuit/vtc.h"
#include "core/technology.h"
#include "device/cntfet.h"
#include "device/linear_fet.h"
#include "device/alpha_power.h"
#include "device/mosfet.h"
#include "fab/devstats.h"
#include "fab/sorting.h"
#include "fab/yield.h"
#include "logic/stdcell.h"
#include "logic/subneg.h"

namespace {

namespace dev = carbon::device;
namespace ckt = carbon::circuit;
namespace lg = carbon::logic;
namespace fab = carbon::fab;

TEST(Integration, CntfetCharacterizesToWorkingStandardCells) {
  // Device model -> SPICE inverter -> cell timing.
  auto n = std::make_shared<dev::CntfetModel>(
      dev::make_franklin_cntfet_params(20e-9));
  lg::CharacterizationOptions opt;
  opt.v_dd = 0.5;
  opt.c_load_f = 0.05e-15;
  const lg::CellTiming timing = lg::characterize_cells(n, opt);
  EXPECT_GT(timing.t_inv_s, 1e-13);
  EXPECT_LT(timing.t_inv_s, 1e-9);
  EXPECT_GT(timing.energy_per_transition_j, 1e-19);
  EXPECT_GT(timing.t_nand2_s, timing.t_inv_s);
}

TEST(Integration, CntComputerDatapathRunsOnCharacterizedCells) {
  // The full chain of the Shulaker demonstration: CNTFET physics ->
  // standard cells -> gate-level SUBNEG datapath -> program semantics.
  auto n = std::make_shared<dev::CntfetModel>(
      dev::make_franklin_cntfet_params(20e-9));
  lg::CharacterizationOptions copt;
  copt.v_dd = 0.5;
  copt.c_load_f = 0.05e-15;
  const lg::CellTiming timing = lg::characterize_cells(n, copt);

  lg::SubnegDatapath dp(8, timing);
  bool neg = false;
  EXPECT_EQ(dp.subtract(42, 17, &neg), 25u);
  EXPECT_FALSE(neg);
  EXPECT_GT(dp.last_settle_time_s(), 0.0);

  // The same operation in the architectural interpreter.
  lg::SubnegMachine m(16);
  lg::SubnegProgram p;
  p.data = {{0, 42}, {1, 17}};
  p.code = {{1, 0, 0}};
  m.load(p);
  m.run();
  EXPECT_EQ(m.read(0), 25);
}

TEST(Integration, Fig2ContrastSaturatingVsLinear) {
  // The paper's central circuit argument in one test: identical on-current
  // devices; saturation decides whether logic works.
  auto sat = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  auto lin = std::make_shared<dev::LinearFetModel>(
      dev::make_fig2_linear_params());
  // Matched drive: within 25% at (1 V, 1 V).
  EXPECT_NEAR(sat->drain_current(1.0, 1.0) / lin->drain_current(1.0, 1.0),
              1.0, 0.25);

  auto bench_sat = ckt::make_inverter(sat);
  auto bench_lin = ckt::make_inverter(lin);
  const auto m_sat = ckt::measure_vtc(bench_sat);
  const auto m_lin = ckt::measure_vtc(bench_lin);

  EXPECT_TRUE(m_sat.regenerative);
  EXPECT_FALSE(m_lin.regenerative);
  EXPECT_GT(m_sat.nm_low, 0.2);
  EXPECT_GT(m_sat.nm_high, 0.2);
  EXPECT_DOUBLE_EQ(m_lin.nm_low, 0.0);
  EXPECT_DOUBLE_EQ(m_lin.nm_high, 0.0);
  EXPECT_GT(m_sat.max_abs_gain, 10.0 * m_lin.max_abs_gain);
}

TEST(Integration, SortingFeedsYieldModelConsistently) {
  // Purification passes -> metallic ppm -> circuit yield: the Section V
  // pipeline in one line of reasoning.
  const auto sorted = fab::apply_sorting(fab::gel_chromatography(), 3);
  const double m_frac = sorted.metallic_ppm * 1e-6;
  const double y_gate = fab::gate_yield(m_frac, 2, 4);
  // A 10k-gate circuit (CNT-computer scale) must be buildable...
  EXPECT_GT(fab::circuit_yield(y_gate, 10000), 0.5);
  // ...but a 100M-gate VLSI chip is not, at this purity.
  EXPECT_LT(fab::circuit_yield(y_gate, 100000000LL), 0.01);
}

TEST(Integration, BenchmarkUsesRealDeviceModels) {
  // Fig. 5 engine drives the same CntfetModel the circuit layer uses.
  const auto tech = carbon::core::make_cnt_technology();
  const auto model = tech.make_device(20e-9);
  EXPECT_NE(dynamic_cast<const dev::CntfetModel*>(model.get()), nullptr);
  const auto pt = carbon::core::benchmark_at_fixed_ioff(model, 0.5, 100e-9);
  EXPECT_GT(pt.ion_a, 0.0);
  EXPECT_LT(pt.ss_mv_dec, 100.0);  // bottom-gated device: SS ~ 92
}

TEST(Integration, HalfVoltCntInverterFasterThanSiAtSameLoad) {
  // Voltage-scaling thesis: at VDD = 0.5 V the CNT inverter switches a
  // small load faster than the Si trigate inverter (per-device drive).
  auto cnt = std::make_shared<dev::CntfetModel>(
      dev::make_franklin_cntfet_params(30e-9));
  auto si = std::make_shared<dev::VirtualSourceModel>(
      dev::make_si_trigate_params(30e-9));
  lg::CharacterizationOptions opt;
  opt.v_dd = 0.5;
  opt.c_load_f = 0.05e-15;
  const auto t_cnt = lg::characterize_cells(cnt, opt);
  const auto t_si = lg::characterize_cells(si, opt);
  EXPECT_GT(t_cnt.t_inv_s, 0.0);
  EXPECT_GT(t_si.t_inv_s, 0.0);
  // Single-fin Si at 0.5 V drives ~10 uA; the CNT tube ~8 uA but into the
  // same tiny load with ~1/300 the cross-section. Require same order.
  EXPECT_LT(t_cnt.t_inv_s / t_si.t_inv_s, 5.0);
}

}  // namespace
