// The device-characterization helpers themselves: threshold extraction,
// DIBL, swing measurement, sweep tables and small-signal derivatives, all
// validated on an analytically known model.
#include <gtest/gtest.h>

#include "phys/require.h"

#include <cmath>
#include <memory>

#include "device/ivmodel.h"

namespace {

namespace dev = carbon::device;

/// Analytic exponential-subthreshold + linear-saturation model:
///   I = I0 * exp((vgs - vt_eff)/sv) for vgs < vt_eff (sv = SS in volts/e)
///   I = I0 * (1 + (vgs - vt_eff)/sv0) above, with vt_eff = vt0 - dibl*vds.
/// Every characterization quantity has a closed form.
class AnalyticFet final : public dev::IDeviceModel {
 public:
  AnalyticFet(double vt0, double ss_mv_dec, double dibl_v_per_v)
      : vt0_(vt0), sv_(ss_mv_dec * 1e-3 / std::log(10.0)),
        dibl_(dibl_v_per_v) {}

  double drain_current(double vgs, double vds) const override {
    const double vt_eff = vt0_ - dibl_ * vds;
    const double x = (vgs - vt_eff) / sv_;
    const double sat = x < 0.0 ? std::exp(x) : 1.0 + x;
    return 1e-6 * sat * std::tanh(vds / 0.05);  // saturating output
  }
  const std::string& name() const override { return name_; }
  double width_normalization() const override { return 1e-6; }

 private:
  double vt0_, sv_, dibl_;
  std::string name_ = "analytic-fet";
};

TEST(Characterization, SubthresholdSwingRecovered) {
  const AnalyticFet m(0.4, 75.0, 0.0);
  const double ss = dev::subthreshold_swing_mv_dec(m, 0.05, 0.25, 0.5);
  EXPECT_NEAR(ss, 75.0, 0.5);
}

TEST(Characterization, ThresholdVoltageAtCriterionCurrent) {
  const AnalyticFet m(0.4, 75.0, 0.0);
  // At vgs = vt0 the current is I0 * tanh(10) ~ 1 uA: use that criterion.
  const double vt = dev::threshold_voltage(m, 1e-6 * std::tanh(10.0), 0.5,
                                           -0.2, 0.9);
  EXPECT_NEAR(vt, 0.4, 1e-3);
}

TEST(Characterization, DiblRecovered) {
  const double dibl_true = 0.120;  // V/V
  const AnalyticFet m(0.4, 75.0, dibl_true);
  // Probe biases both deep in the tanh-saturated output region so only
  // the threshold shift moves the crossing.
  const double dibl =
      dev::dibl_mv_per_v(m, 1e-8, 0.25, 0.5, -0.3, 0.9);
  EXPECT_NEAR(dibl, dibl_true * 1e3, 2.0);
}

TEST(Characterization, MinPointSwingFindsSteepestSegment) {
  const AnalyticFet m(0.4, 75.0, 0.0);
  const double best = dev::min_point_swing_mv_dec(m, 0.0, 0.3, 0.5, 201);
  EXPECT_NEAR(best, 75.0, 1.5);  // uniform exponential: min == average
}

TEST(Characterization, TransconductanceMatchesAnalyticDerivative) {
  const AnalyticFet m(0.4, 75.0, 0.0);
  const double sv = 75.0e-3 / std::log(10.0);
  const double vgs = 0.2;  // subthreshold: dI/dV = I/sv
  const double i = m.drain_current(vgs, 0.5);
  EXPECT_NEAR(dev::transconductance(m, vgs, 0.5), i / sv, i / sv * 1e-4);
}

TEST(Characterization, OutputConductanceOfTanhSaturation) {
  const AnalyticFet m(0.4, 75.0, 0.0);
  // d tanh(v/0.05)/dv at v = 0.5: sech^2(10)/0.05 ~ 0: deep saturation.
  const double gds = dev::output_conductance(m, 0.6, 0.5);
  EXPECT_LT(std::abs(gds), 1e-9);
  EXPECT_GT(dev::intrinsic_gain(m, 0.6, 0.5), 1e3);
}

TEST(Characterization, TransferCurveTableShape) {
  const AnalyticFet m(0.4, 75.0, 0.0);
  const auto t = dev::transfer_curve(m, 0.0, 0.8, 41, 0.5);
  ASSERT_EQ(t.num_rows(), 41);
  ASSERT_EQ(t.num_cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.at(40, 0), 0.8);
  // Monotone current column.
  for (int i = 1; i < 41; ++i) EXPECT_GT(t.at(i, 1), t.at(i - 1, 1));
}

TEST(Characterization, OutputFamilyColumnsPerGateVoltage) {
  const AnalyticFet m(0.4, 75.0, 0.0);
  const auto t = dev::output_family(m, 0.0, 0.6, 13, {0.3, 0.5, 0.7});
  ASSERT_EQ(t.num_cols(), 4);
  ASSERT_EQ(t.num_rows(), 13);
  // Higher gate voltage column carries more current at the last row.
  EXPECT_GT(t.at(12, 3), t.at(12, 2));
  EXPECT_GT(t.at(12, 2), t.at(12, 1));
}

TEST(Characterization, ThresholdRequiresCrossing) {
  const AnalyticFet m(0.4, 75.0, 0.0);
  // Criterion far above any achievable current: no crossing in range.
  EXPECT_THROW(dev::threshold_voltage(m, 1.0, 0.5, 0.0, 0.5),
               carbon::phys::PreconditionError);
}

TEST(Characterization, SwingNeedsDistinctPoints) {
  const AnalyticFet m(0.4, 75.0, 0.0);
  EXPECT_THROW(dev::subthreshold_swing_mv_dec(m, 0.1, 0.1, 0.5),
               carbon::phys::PreconditionError);
}

}  // namespace
