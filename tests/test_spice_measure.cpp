// Measurement layer: VTC analysis (the Fig. 2 metrics), crossing times,
// oscillation period and supply energy on synthetic waveforms.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "phys/table.h"
#include "spice/measure.h"

namespace {

namespace sp = carbon::spice;
using carbon::phys::DataTable;

DataTable make_ideal_vtc(double vdd, double steepness, int points = 201) {
  // vout = vdd/2 * (1 - tanh(s (vin - vdd/2))) : analytic inverter curve.
  DataTable t({"vin", "vout"});
  for (int i = 0; i < points; ++i) {
    const double vin = vdd * i / (points - 1);
    const double vout =
        0.5 * vdd * (1.0 - std::tanh(steepness * (vin - 0.5 * vdd)));
    t.add_row({vin, vout});
  }
  return t;
}

TEST(AnalyzeVtc, SteepCurveMetrics) {
  const double vdd = 1.0, s = 20.0;
  const auto m = sp::analyze_vtc(make_ideal_vtc(vdd, s), "vin", "vout", vdd);
  EXPECT_TRUE(m.regenerative);
  // Peak gain of the tanh curve is s*vdd/2 = 10.
  EXPECT_NEAR(m.max_abs_gain, 10.0, 0.5);
  EXPECT_NEAR(m.v_switch, 0.5, 0.01);
  // Unity-gain points of tanh: s*vdd/2 * sech^2(s(x-1/2)) = 1.
  EXPECT_LT(m.v_il, 0.5);
  EXPECT_GT(m.v_ih, 0.5);
  EXPECT_NEAR(m.v_il + m.v_ih, 1.0, 0.02);  // symmetry
  EXPECT_GT(m.nm_low, 0.2);
  EXPECT_NEAR(m.nm_low, m.nm_high, 0.02);
}

TEST(AnalyzeVtc, ShallowCurveHasZeroMargins) {
  // Max gain s*vdd/2 = 0.4 < 1: the Fig. 2(d) situation.
  const auto m =
      sp::analyze_vtc(make_ideal_vtc(1.0, 0.8), "vin", "vout", 1.0);
  EXPECT_FALSE(m.regenerative);
  EXPECT_LT(m.max_abs_gain, 1.0);
  EXPECT_DOUBLE_EQ(m.nm_low, 0.0);
  EXPECT_DOUBLE_EQ(m.nm_high, 0.0);
}

TEST(AnalyzeVtc, SteeperMeansWiderMargins) {
  const auto m1 = sp::analyze_vtc(make_ideal_vtc(1.0, 6.0), "vin", "vout", 1.0);
  const auto m2 =
      sp::analyze_vtc(make_ideal_vtc(1.0, 40.0), "vin", "vout", 1.0);
  EXPECT_GT(m2.nm_low, m1.nm_low);
  EXPECT_GT(m2.nm_high, m1.nm_high);
}

DataTable make_wave(const std::vector<std::pair<double, double>>& pts) {
  DataTable t({"time_s", "v(x)"});
  for (const auto& [tt, vv] : pts) t.add_row({tt, vv});
  return t;
}

TEST(CrossingTime, LinearInterpolation) {
  const auto tr = make_wave({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  EXPECT_NEAR(sp::crossing_time(tr, "v(x)", 0.5, true), 0.5, 1e-12);
  EXPECT_NEAR(sp::crossing_time(tr, "v(x)", 0.5, false), 1.5, 1e-12);
  EXPECT_LT(sp::crossing_time(tr, "v(x)", 2.0, true), 0.0);  // never
}

TEST(CrossingTime, RespectsStartTime) {
  const auto tr = make_wave(
      {{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}, {3.0, 1.0}});
  EXPECT_NEAR(sp::crossing_time(tr, "v(x)", 0.5, true, 1.5), 2.5, 1e-12);
}

TEST(PropagationDelay, FiftyPercentCrossings) {
  DataTable t({"time_s", "v(in)", "v(out)"});
  // Input rises at t=1 (50% at 1.0), output falls at t=1.3 (50% at 1.3).
  t.add_row({0.0, 0.0, 1.0});
  t.add_row({0.9, 0.0, 1.0});
  t.add_row({1.1, 1.0, 1.0});
  t.add_row({1.2, 1.0, 1.0});
  t.add_row({1.4, 1.0, 0.0});
  EXPECT_NEAR(sp::propagation_delay(t, "v(in)", "v(out)", 1.0, true), 0.3,
              1e-9);
}

TEST(OscillationPeriod, UniformSquareWave) {
  DataTable t({"time_s", "v(x)"});
  const double period = 2.0;
  for (int i = 0; i < 400; ++i) {
    const double tt = i * 0.05;
    const double ph = std::fmod(tt, period);
    t.add_row({tt, ph < period / 2 ? 1.0 : 0.0});
  }
  EXPECT_NEAR(sp::oscillation_period(t, "v(x)", 0.5), period, 0.02);
}

TEST(SupplyEnergy, ConstantSourcingCurrent) {
  DataTable t({"time_s", "i(vdd)"});
  t.add_row({0.0, -1e-3});
  t.add_row({1.0, -1e-3});
  t.add_row({2.0, -1e-3});
  // E = V * I * T = 2.0 V * 1 mA * 2 s = 4 mJ (sourcing => positive).
  EXPECT_NEAR(sp::supply_energy(t, "i(vdd)", 2.0), 4e-3, 1e-12);
}

TEST(AnalyzeVtc, RejectsTinyTables) {
  DataTable t({"vin", "vout"});
  t.add_row({0.0, 1.0});
  EXPECT_THROW(sp::analyze_vtc(t, "vin", "vout", 1.0),
               carbon::phys::PreconditionError);
}

}  // namespace
