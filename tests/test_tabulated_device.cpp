// The table-compiled fast path: BicubicTable partial derivatives, the
// DeviceEval API (finite-difference fallback, mirror/shift chain rules) and
// TabulatedDeviceModel accuracy against the exact self-consistent CNTFET —
// including the vds < 0 exchange-symmetry branch the SPICE engine exercises.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "circuit/cells.h"
#include "circuit/vtc.h"
#include "device/alpha_power.h"
#include "device/cntfet.h"
#include "device/tabulated.h"
#include "phys/interp.h"
#include "phys/require.h"

namespace {

namespace dev = carbon::device;
using carbon::phys::BicubicTable;

// ------------------------------------------------------------ BicubicTable

BicubicTable make_table(int nx, int ny, double (*f)(double, double),
                        double x_max = 1.0, double y_max = 1.0) {
  std::vector<double> x(nx), y(ny), z(nx * ny);
  for (int i = 0; i < nx; ++i) x[i] = x_max * i / (nx - 1);
  for (int j = 0; j < ny; ++j) y[j] = y_max * j / (ny - 1);
  for (int i = 0; i < nx; ++i) {
    for (int j = 0; j < ny; ++j) z[i * ny + j] = f(x[i], y[j]);
  }
  return BicubicTable(std::move(x), std::move(y), std::move(z));
}

TEST(BicubicTable, RecoversPlanesExactly) {
  const auto t =
      make_table(5, 7, [](double x, double y) { return 2.0 * x - 3.0 * y + 1.0; });
  for (double x : {0.13, 0.5, 0.87}) {
    for (double y : {0.09, 0.41, 0.93}) {
      const auto e = t.eval(x, y);
      EXPECT_NEAR(e.f, 2.0 * x - 3.0 * y + 1.0, 1e-12);
      EXPECT_NEAR(e.fx, 2.0, 1e-12);
      EXPECT_NEAR(e.fy, -3.0, 1e-12);
    }
  }
}

TEST(BicubicTable, HitsSamplePoints) {
  const auto t = make_table(9, 9, [](double x, double y) {
    return std::sin(3.0 * x) * std::cos(2.0 * y);
  });
  for (int i = 0; i < 9; ++i) {
    for (int j = 0; j < 9; ++j) {
      EXPECT_NEAR(t(i / 8.0, j / 8.0),
                  std::sin(3.0 * i / 8.0) * std::cos(2.0 * j / 8.0), 1e-13);
    }
  }
}

TEST(BicubicTable, SmoothSurfaceAccurate) {
  const auto t = make_table(41, 41, [](double x, double y) {
    return std::exp(-x) * std::sin(2.0 * y);
  });
  for (double x = 0.03; x < 1.0; x += 0.11) {
    for (double y = 0.05; y < 1.0; y += 0.13) {
      EXPECT_NEAR(t(x, y), std::exp(-x) * std::sin(2.0 * y), 5e-4)
          << "at (" << x << ", " << y << ")";
    }
  }
}

TEST(BicubicTable, PartialsMatchFiniteDifferences) {
  const auto t = make_table(33, 33, [](double x, double y) {
    return x * x * y + 0.5 * std::sin(2.0 * x + y);
  });
  const double h = 1e-6;
  for (double x : {0.21, 0.55, 0.83}) {
    for (double y : {0.17, 0.49, 0.91}) {
      const auto e = t.eval(x, y);
      EXPECT_NEAR(e.fx, (t(x + h, y) - t(x - h, y)) / (2 * h), 1e-5);
      EXPECT_NEAR(e.fy, (t(x, y + h) - t(x, y - h)) / (2 * h), 1e-5);
    }
  }
}

TEST(BicubicTable, ExtrapolatesContinuouslyPastEdges) {
  const auto t =
      make_table(9, 9, [](double x, double y) { return x + 2.0 * y; });
  // Just outside vs just inside the box: C1 edge patch, no jump.
  EXPECT_NEAR(t(-0.01, 0.5), t(0.0, 0.5) - 0.01, 1e-9);
  EXPECT_NEAR(t(1.01, 0.5), t(1.0, 0.5) + 0.01, 1e-9);
  EXPECT_NEAR(t(0.5, -0.01), t(0.5, 0.0) - 0.02, 1e-9);
}

TEST(BicubicTable, RejectsBadInput) {
  EXPECT_THROW(BicubicTable({0.0, 1.0}, {0.0, 1.0}, {1.0, 2.0, 3.0}),
               carbon::phys::PreconditionError);
  EXPECT_THROW(BicubicTable({1.0, 0.0}, {0.0, 1.0}, {1.0, 2.0, 3.0, 4.0}),
               carbon::phys::PreconditionError);
}

// -------------------------------------------------------------- DeviceEval

TEST(DeviceEval, BaseClassFallbackMatchesCentralDifferences) {
  const dev::AlphaPowerModel m(dev::make_fig2_saturating_params());
  const auto e = m.eval(0.7, 0.5);
  EXPECT_DOUBLE_EQ(e.id, m.drain_current(0.7, 0.5));
  EXPECT_NEAR(e.gm, dev::transconductance(m, 0.7, 0.5), 1e-12);
  EXPECT_NEAR(e.gds, dev::output_conductance(m, 0.7, 0.5), 1e-12);
}

TEST(DeviceEval, PTypeMirrorChainRule) {
  auto n = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  const dev::PTypeMirror p(n);
  const double vgs = -0.6, vds = -0.4;
  const auto e = p.eval(vgs, vds);
  EXPECT_DOUBLE_EQ(e.id, p.drain_current(vgs, vds));
  EXPECT_NEAR(e.gm, dev::transconductance(p, vgs, vds), 1e-9);
  EXPECT_NEAR(e.gds, dev::output_conductance(p, vgs, vds), 1e-9);
}

TEST(DeviceEval, GateShiftedDelegatesWithShift) {
  auto base = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  const dev::GateShifted shifted(base, 0.12);
  const auto e = shifted.eval(0.5, 0.5);
  const auto direct = base->eval(0.62, 0.5);
  EXPECT_DOUBLE_EQ(e.id, direct.id);
  EXPECT_DOUBLE_EQ(e.gm, direct.gm);
  EXPECT_DOUBLE_EQ(e.gds, direct.gds);
}

// ------------------------------------------------- TabulatedDeviceModel

class TabulatedCntfet : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    exact_ = std::make_shared<dev::CntfetModel>(
        dev::make_franklin_cntfet_params(20e-9));
    dev::TabulatedGrid g;
    g.vgs_min = -0.1;
    g.vgs_max = 0.8;
    g.n_vgs = 73;
    g.vds_min = 0.0;
    g.vds_max = 0.7;
    g.n_vds = 57;
    tab_ = std::make_shared<dev::TabulatedDeviceModel>(exact_, g);
  }
  static void TearDownTestSuite() {
    tab_.reset();
    exact_.reset();
  }

  static std::shared_ptr<const dev::CntfetModel> exact_;
  static std::shared_ptr<const dev::TabulatedDeviceModel> tab_;
};

std::shared_ptr<const dev::CntfetModel> TabulatedCntfet::exact_;
std::shared_ptr<const dev::TabulatedDeviceModel> TabulatedCntfet::tab_;

TEST_F(TabulatedCntfet, CurrentWithinOnePercentAcrossBiasBox) {
  // Off-grid sample points across the box: 1% relative or 1 nA absolute,
  // the ISSUE acceptance tolerance.
  for (double vgs = -0.07; vgs <= 0.78; vgs += 0.085) {
    for (double vds = 0.013; vds <= 0.69; vds += 0.068) {
      const double exact = exact_->drain_current(vgs, vds);
      const double tab = tab_->drain_current(vgs, vds);
      const double tol = std::max(1e-9, 0.01 * std::abs(exact));
      EXPECT_NEAR(tab, exact, tol) << "at vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_F(TabulatedCntfet, ConductancesTrackTheExactModel) {
  for (double vgs : {0.25, 0.45, 0.65}) {
    for (double vds : {0.08, 0.33, 0.61}) {
      const auto e = tab_->eval(vgs, vds);
      const double gm_exact = dev::transconductance(*exact_, vgs, vds);
      const double gds_exact = dev::output_conductance(*exact_, vgs, vds);
      EXPECT_NEAR(e.gm, gm_exact,
                  std::max(5e-7, 0.05 * std::abs(gm_exact)))
          << "gm at vgs=" << vgs << " vds=" << vds;
      EXPECT_NEAR(e.gds, gds_exact,
                  std::max(5e-7, 0.05 * std::abs(gds_exact)))
          << "gds at vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_F(TabulatedCntfet, AnalyticDerivativesConsistentWithOwnSurface) {
  const double h = 1e-6;
  for (double vgs : {0.2, 0.5}) {
    for (double vds : {-0.3, 0.15, 0.55}) {  // includes the mirror branch
      const auto e = tab_->eval(vgs, vds);
      const double gm_fd = (tab_->drain_current(vgs + h, vds) -
                            tab_->drain_current(vgs - h, vds)) /
                           (2 * h);
      const double gds_fd = (tab_->drain_current(vgs, vds + h) -
                             tab_->drain_current(vgs, vds - h)) /
                            (2 * h);
      EXPECT_NEAR(e.gm, gm_fd, 1e-8 + 1e-5 * std::abs(gm_fd));
      EXPECT_NEAR(e.gds, gds_fd, 1e-8 + 1e-5 * std::abs(gds_fd));
    }
  }
}

TEST_F(TabulatedCntfet, MirrorBranchMatchesExactModelForNegativeVds) {
  // The exact CNTFET applies the same source/drain exchange symmetry, so
  // the mirrored table must track it at vds < 0 too.  Points are chosen so
  // the mirrored lookup (vgs - vds, -vds) stays inside the grid — the
  // accuracy contract of the mirror branch.
  for (double vgs : {0.1, 0.3, 0.5}) {
    for (double vds : {-0.05, -0.15, -0.28}) {
      const double exact = exact_->drain_current(vgs, vds);
      const double tab = tab_->drain_current(vgs, vds);
      EXPECT_NEAR(tab, exact, std::max(1e-9, 0.01 * std::abs(exact)))
          << "at vgs=" << vgs << " vds=" << vds;
    }
  }
}

TEST_F(TabulatedCntfet, CurrentContinuousAcrossVdsZero) {
  for (double vgs : {0.2, 0.6}) {
    const double below = tab_->drain_current(vgs, -1e-7);
    const double above = tab_->drain_current(vgs, 1e-7);
    EXPECT_NEAR(below, above, 1e-10);
    EXPECT_NEAR(tab_->drain_current(vgs, 0.0), 0.0, 1e-10);
  }
}

TEST_F(TabulatedCntfet, MetadataPassesThrough) {
  EXPECT_EQ(tab_->name(), exact_->name() + "/tab");
  EXPECT_EQ(tab_->polarity(), exact_->polarity());
  EXPECT_DOUBLE_EQ(tab_->width_normalization(),
                   exact_->width_normalization());
}

TEST(TabulatedModel, InverterVtcMatchesDirectModel) {
  // End to end through the SPICE engine: the table-compiled CNTFET must
  // reproduce the direct model's inverter transfer curve.  This is the
  // fast path every VTC / SNM / oscillator study now takes.
  auto exact = std::make_shared<dev::CntfetModel>(
      dev::make_franklin_cntfet_params(20e-9));
  const dev::DeviceModelPtr tab = dev::make_tabulated(exact, 0.6, 73, 49);

  namespace ckt = carbon::circuit;
  ckt::CellOptions opt;
  opt.v_dd = 0.6;
  auto direct_bench = ckt::make_inverter(exact, opt);
  auto tab_bench = ckt::make_inverter(tab, opt);
  const auto direct = ckt::run_vtc(direct_bench, 31);
  const auto fast = ckt::run_vtc(tab_bench, 31);

  ASSERT_EQ(direct.num_rows(), fast.num_rows());
  for (int r = 0; r < direct.num_rows(); ++r) {
    EXPECT_NEAR(fast.at(r, 1), direct.at(r, 1), 2e-3)  // 2 mV on a 0.6 V VTC
        << "at vin=" << direct.at(r, 0);
  }
}

TEST(TabulatedModel, MakeTabulatedGuardsAndMirrors) {
  auto base = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  const auto tab = dev::make_tabulated(base, 1.0, 49, 33);
  // Forward box within 1%.
  for (double vgs : {0.3, 0.6, 0.9}) {
    for (double vds : {0.1, 0.5, 0.95}) {
      const double exact = base->drain_current(vgs, vds);
      EXPECT_NEAR(tab->drain_current(vgs, vds), exact,
                  std::max(1e-9, 0.01 * std::abs(exact)));
    }
  }
  EXPECT_THROW(dev::make_tabulated(base, -1.0),
               carbon::phys::PreconditionError);
}

}  // namespace
