// The thread-pool / parallel_for utility and the determinism contract of
// the parallel fab Monte Carlo: fixed seed => bit-identical results for any
// thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "fab/devstats.h"
#include "fab/placement.h"
#include "phys/parallel.h"

namespace {

namespace fab = carbon::fab;
namespace phys = carbon::phys;

TEST(ParallelFor, CoversTheRangeExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<int> hits(1000, 0);
    phys::parallel_for_each(
        1000, [&](long i) { ++hits[i]; }, threads);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << threads << " threads";
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelFor, BlockedVariantCoversRange) {
  std::atomic<long> sum{0};
  phys::parallel_for(
      10000,
      [&](long begin, long end) {
        long local = 0;
        for (long i = begin; i < end; ++i) local += i;
        sum += local;
      },
      4);
  EXPECT_EQ(sum.load(), 10000L * 9999L / 2);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  int calls = 0;
  phys::parallel_for_each(0, [&](long) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  phys::parallel_for_each(1, [&](long) { ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(phys::parallel_for_each(
                   100,
                   [](long i) {
                     if (i == 57) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> ok{0};
  phys::parallel_for_each(10, [&](long) { ++ok; }, 4);
  EXPECT_EQ(ok.load(), 10);
}

TEST(ParallelFor, FailFastSkipsUnclaimedTasksAfterThrow) {
  // The first task to execute throws; the batch must rethrow on the caller
  // AND retire the unclaimed remainder without running it (tasks already
  // claimed by other workers still finish).  With 100 instant tasks, a
  // non-fail-fast pool would execute all of them.
  auto& pool = phys::ThreadPool::instance();
  std::atomic<int> executed{0};
  std::atomic<bool> thrown{false};
  EXPECT_THROW(pool.run(100,
                        [&](int) {
                          if (!thrown.exchange(true)) {
                            throw std::runtime_error("first task dies");
                          }
                          ++executed;
                        }),
               std::runtime_error);
  // At most one in-flight task per worker (plus the caller) can slip in
  // between the throw and the skip.
  EXPECT_LE(executed.load(), pool.num_workers() + 1);
  // The pool survives and runs the next batch in full.
  std::atomic<int> ok{0};
  pool.run(50, [&](int) { ++ok; });
  EXPECT_EQ(ok.load(), 50);
}

TEST(ParallelFor, NestedCallExecutesInline) {
  // parallel_for from inside a pool task (e.g. an ensemble trial compiling
  // a tabulated model) must degrade to inline execution with full
  // coverage, not deadlock or trip a reentrancy precondition.
  std::atomic<long> total{0};
  phys::parallel_for_each(
      8,
      [&](long) {
        std::atomic<long> inner{0};
        phys::parallel_for_each(
            100, [&](long i) { inner += i; }, 4);
        EXPECT_EQ(inner.load(), 100L * 99L / 2);
        total += inner.load();
      },
      4);
  EXPECT_EQ(total.load(), 8 * (100L * 99L / 2));
}

TEST(ParallelFor, NestedCallPropagatesExceptions) {
  // An exception from a nested (inline) parallel_for surfaces through the
  // outer batch as usual.
  EXPECT_THROW(phys::parallel_for_each(
                   4,
                   [&](long outer) {
                     phys::parallel_for_each(
                         10,
                         [&](long i) {
                           if (outer == 2 && i == 5) {
                             throw std::runtime_error("nested boom");
                           }
                         },
                         4);
                   },
                   4),
               std::runtime_error);
  std::atomic<int> ok{0};
  phys::parallel_for_each(10, [&](long) { ++ok; }, 4);
  EXPECT_EQ(ok.load(), 10);
}

TEST(StreamSeed, DecorrelatesAdjacentStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(phys::stream_seed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions
  // Different base seeds give different streams.
  EXPECT_NE(phys::stream_seed(1, 0), phys::stream_seed(2, 0));
}

bool sites_identical(const std::vector<fab::DeviceSite>& a,
                     const std::vector<fab::DeviceSite>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].tubes.size() != b[i].tubes.size()) return false;
    for (size_t t = 0; t < a[i].tubes.size(); ++t) {
      const auto& ta = a[i].tubes[t];
      const auto& tb = b[i].tubes[t];
      if (ta.chirality.n != tb.chirality.n ||
          ta.chirality.m != tb.chirality.m ||
          ta.misalignment_deg != tb.misalignment_deg ||  // bit-for-bit
          ta.bridges_channel != tb.bridges_channel) {
        return false;
      }
    }
  }
  return true;
}

TEST(ParallelMonteCarlo, TrenchAssemblyThreadCountInvariant) {
  const fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  fab::TrenchAssemblyModel model;
  const auto one = model.run_parallel(pop, 5000, 99, 1);
  for (int threads : {2, 3, 8}) {
    EXPECT_TRUE(sites_identical(one, model.run_parallel(pop, 5000, 99,
                                                        threads)))
        << threads << " threads";
  }
  // And a different seed actually changes the draw.
  EXPECT_FALSE(sites_identical(one, model.run_parallel(pop, 5000, 100, 1)));
}

TEST(ParallelMonteCarlo, QuartzGrowthThreadCountInvariant) {
  const fab::ChiralityPopulation pop(1.4e-9, 0.25e-9);
  fab::QuartzGrowthModel model;
  const auto one = model.run_parallel(pop, 2000, 7, 1.0, 1);
  EXPECT_TRUE(sites_identical(one, model.run_parallel(pop, 2000, 7, 1.0, 4)));
}

TEST(ParallelMonteCarlo, TrenchStatisticsMatchSerialModel) {
  // The parallel variant draws per-site streams, so sequences differ from
  // the serial API — but the physics (fill statistics) must agree.
  const fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  fab::TrenchAssemblyModel model;
  const auto sites = model.run_parallel(pop, 20000, 5, 0);
  int empty = 0;
  double tubes = 0;
  for (const auto& s : sites) {
    empty += s.tubes.empty() ? 1 : 0;
    tubes += s.tubes.size();
  }
  const double p_empty_expected =
      (1.0 - model.fill_probability) * std::exp(-model.mean_extra_tubes);
  EXPECT_NEAR(empty / 20000.0, p_empty_expected, 0.01);
  EXPECT_NEAR(tubes / 20000.0,
              model.fill_probability + model.mean_extra_tubes, 0.03);
}

TEST(ParallelMonteCarlo, MeasurementThreadCountInvariant) {
  const fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  fab::TrenchAssemblyModel model;
  const auto sites = model.run_parallel(pop, 8000, 31, 0);
  const fab::MeasurementModel mm;
  const auto one = fab::measure_sites_parallel(sites, mm, 77, 1);
  const auto many = fab::measure_sites_parallel(sites, mm, 77, 4);
  ASSERT_EQ(one.size(), many.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].tubes, many[i].tubes);
    EXPECT_EQ(one[i].metallic_tubes, many[i].metallic_tubes);
    EXPECT_EQ(one[i].ion_a, many[i].ion_a);    // bit-for-bit
    EXPECT_EQ(one[i].ioff_a, many[i].ioff_a);  // bit-for-bit
    EXPECT_EQ(one[i].functional, many[i].functional);
  }
  const auto s1 = fab::summarize(one);
  const auto sN = fab::summarize(many);
  EXPECT_EQ(s1.yield, sN.yield);
  EXPECT_EQ(s1.median_on_off, sN.median_on_off);
}

}  // namespace
