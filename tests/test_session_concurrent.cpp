/// Concurrent SimSessions sharing one immutable ModelRegistry — the
/// threading model of the carbon_simd worker pool, exercised directly so
/// the sanitize-thread CI job can prove it race-free.  Each thread owns
/// its session (sessions are not thread-safe; sharing the registry is the
/// only cross-thread edge) and runs a mixed diet of good decks, parse
/// errors, NaN solve failures and deadline-cancelled solves.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "device/alpha_power.h"
#include "device/faulty.h"
#include "phys/cancel.h"
#include "spice/session.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;
using carbon::core::Json;

sp::ModelRegistry shared_registry() {
  sp::ModelRegistry reg;
  auto nfet =
      std::make_shared<dev::AlphaPowerModel>(dev::make_fig2_saturating_params());
  reg["nfet"] = nfet;
  reg["pfet"] = std::make_shared<dev::PTypeMirror>(nfet);
  dev::FaultSpec stall;
  stall.kind = dev::FaultKind::kStall;
  stall.stall_s = 2e-3;
  reg["hangfet"] = dev::with_fault(nfet, stall);
  dev::FaultSpec nan;
  nan.kind = dev::FaultKind::kNanEval;
  reg["nanfet"] = dev::with_fault(nfet, nan);
  return reg;
}

const char kGoodOp[] =
    "v1 in 0 1\nr1 in out 1k\nr2 out 0 1k\n"
    ".op\n.probe none\n.measure op vout value v(out)\n.end\n";

const char kGoodFetDc[] =
    "v1 d 0 1\nv2 g 0 1\nm1 d g 0 nfet\n"
    ".dc v2 0 1 0.1\n.probe none\n.end\n";

const char kParseError[] = "r1 in out\n.op\n.end\n";

const char kNanOp[] = "v1 d 0 1\nv2 g 0 1\nm1 d g 0 nanfet\n.op\n.end\n";

const char kHangTran[] =
    "v1 d 0 1\n"
    "v2 g 0 pulse(0 1 1n 1n 1n 5n 10n)\n"
    "m1 d g 0 hangfet\n"
    "c1 d 0 1p\n"
    ".tran 0.1n 1000n\n.probe none\n.end\n";

TEST(SessionConcurrent, SharedRegistryMixedDecksAcrossThreads) {
  const sp::ModelRegistry registry = shared_registry();
  constexpr int kThreads = 8;
  constexpr int kRounds = 12;

  std::atomic<int> ok{0}, parse{0}, solve_failure{0}, unexpected{0};
  auto worker = [&](int seed) {
    sp::SimSession session(registry);  // copies the shared_ptr map: the
                                       // model objects stay shared
    for (int i = 0; i < kRounds; ++i) {
      const char* deck = nullptr;
      const char* want = nullptr;
      switch ((seed + i) % 4) {
        case 0: deck = kGoodOp; want = "ok"; break;
        case 1: deck = kGoodFetDc; want = "ok"; break;
        case 2: deck = kParseError; want = "parse"; break;
        case 3: deck = kNanOp; want = "solve_failure"; break;
      }
      const Json doc = session.run_deck_text(deck);
      if (doc["ok"].as_bool()) {
        if (std::string(want) == "ok") {
          ++ok;
        } else {
          ++unexpected;
        }
      } else if (doc["error"]["type"].as_string() == want) {
        (std::string(want) == "parse") ? ++parse : ++solve_failure;
      } else {
        ++unexpected;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_EQ(ok.load(), kThreads * kRounds / 2);
  EXPECT_EQ(parse.load(), kThreads * kRounds / 4);
  EXPECT_EQ(solve_failure.load(), kThreads * kRounds / 4);
}

TEST(SessionConcurrent, PerThreadDeadlinesCutHungSolves) {
  const sp::ModelRegistry registry = shared_registry();
  constexpr int kThreads = 4;

  std::atomic<int> timeouts{0}, unexpected{0};
  auto worker = [&] {
    sp::SimSession session(registry);
    carbon::phys::CancelToken token;
    token.set_deadline_after(0.05);
    const Json doc = session.run_deck_text(kHangTran, &token);
    if (!doc["ok"].as_bool() &&
        doc["error"]["type"].as_string() == "timeout") {
      ++timeouts;
    } else {
      ++unexpected;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  EXPECT_EQ(timeouts.load(), kThreads);
  EXPECT_EQ(unexpected.load(), 0);
}

TEST(SessionConcurrent, SharedParentTokenCancelsEveryThread) {
  // The drain pattern: one parent token, a child per worker; cancelling
  // the parent stops every in-flight solve.
  const sp::ModelRegistry registry = shared_registry();
  constexpr int kThreads = 4;

  carbon::phys::CancelToken parent;
  std::atomic<int> cancelled{0}, unexpected{0};
  auto worker = [&] {
    sp::SimSession session(registry);
    carbon::phys::CancelToken child(&parent);
    const Json doc = session.run_deck_text(kHangTran, &child);
    if (!doc["ok"].as_bool() &&
        doc["error"]["type"].as_string() == "cancelled") {
      ++cancelled;
    } else {
      ++unexpected;
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  parent.cancel();
  for (auto& t : threads) t.join();

  EXPECT_EQ(cancelled.load(), kThreads);
  EXPECT_EQ(unexpected.load(), 0);
}

}  // namespace
