// Sparse CSR matrix + sparse LU: pattern construction, agreement with the
// dense solver, symbolic-pattern reuse via refactor(), fill behaviour of the
// minimum-degree preorder, and the singularity / pivot-collapse contracts.
#include "phys/sparse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "phys/linalg.h"
#include "phys/require.h"
#include "phys/rng.h"

namespace {

using carbon::phys::Matrix;
using carbon::phys::SparseLu;
using carbon::phys::SparseMatrix;

SparseMatrix tridiagonal_pattern(int n) {
  std::vector<std::pair<int, int>> coords;
  for (int i = 0; i < n; ++i) {
    coords.emplace_back(i, i);
    if (i > 0) coords.emplace_back(i, i - 1);
    if (i < n - 1) coords.emplace_back(i, i + 1);
  }
  return SparseMatrix::from_coords(n, coords);
}

void fill_tridiagonal(SparseMatrix& m, double diag, double off) {
  const int n = m.size();
  for (int i = 0; i < n; ++i) {
    m.values()[m.slot(i, i)] = diag;
    if (i > 0) m.values()[m.slot(i, i - 1)] = off;
    if (i < n - 1) m.values()[m.slot(i, i + 1)] = off;
  }
}

/// Random sparse diagonally-weighted test matrix (always nonsingular).
SparseMatrix random_sparse(int n, int extra_per_row, carbon::phys::Rng& rng) {
  std::vector<std::pair<int, int>> coords;
  for (int i = 0; i < n; ++i) {
    coords.emplace_back(i, i);
    for (int k = 0; k < extra_per_row; ++k) {
      coords.emplace_back(i, static_cast<int>(rng.uniform(0.0, n)));
    }
  }
  SparseMatrix m = SparseMatrix::from_coords(n, coords);
  for (int r = 0; r < n; ++r) {
    for (int t = m.row_ptr()[r]; t < m.row_ptr()[r + 1]; ++t) {
      m.values()[t] = rng.uniform(-1.0, 1.0);
    }
    m.values()[m.slot(r, r)] = 4.0 + rng.uniform(0.0, 1.0);
  }
  return m;
}

TEST(SparseMatrix, FromCoordsMergesDuplicates) {
  const SparseMatrix m = SparseMatrix::from_coords(
      3, {{0, 0}, {1, 2}, {0, 0}, {2, 1}, {1, 2}});
  EXPECT_EQ(m.size(), 3);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_GE(m.slot(0, 0), 0);
  EXPECT_GE(m.slot(1, 2), 0);
  EXPECT_GE(m.slot(2, 1), 0);
  EXPECT_EQ(m.slot(0, 1), -1);
  EXPECT_EQ(m.at(0, 1), 0.0);
}

TEST(SparseMatrix, SlotWritesLandInDense) {
  SparseMatrix m = SparseMatrix::from_coords(2, {{0, 0}, {0, 1}, {1, 1}});
  m.values()[m.slot(0, 1)] = 2.5;
  m.values()[m.slot(1, 1)] = -1.0;
  const Matrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(d(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 2.5);
  m.zero_values();
  EXPECT_DOUBLE_EQ(m.max_abs(), 0.0);
}

TEST(SparseMatrix, CoordOutOfRangeRejected) {
  EXPECT_THROW(SparseMatrix::from_coords(2, {{0, 2}}),
               carbon::phys::PreconditionError);
}

TEST(SparseLu, MatchesDenseOnRandomMatrices) {
  carbon::phys::Rng rng(42);
  for (const int n : {1, 2, 5, 40, 200}) {
    SparseMatrix a = random_sparse(n, 3, rng);
    std::vector<double> b(n);
    for (double& v : b) v = rng.uniform(-2.0, 2.0);

    SparseLu lu;
    lu.analyze_factor(a);
    const std::vector<double> xs = lu.solve(b);
    const std::vector<double> xd = carbon::phys::solve_dense(a.to_dense(), b);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(xs[i], xd[i], 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SparseLu, RefactorReusesPatternAndMatchesFreshAnalysis) {
  carbon::phys::Rng rng(7);
  SparseMatrix a = random_sparse(60, 3, rng);
  SparseLu lu;
  lu.analyze_factor(a);
  EXPECT_EQ(lu.analyze_count(), 1);

  std::vector<double> b(60);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);

  // Change values (same pattern) several times; refactor must track.
  for (int round = 0; round < 4; ++round) {
    for (double& v : a.values()) v *= 1.0 + 0.1 * (round + 1);
    for (int r = 0; r < a.size(); ++r) {
      a.values()[a.slot(r, r)] += 1.0;  // keep it comfortably nonsingular
    }
    ASSERT_TRUE(lu.refactor(a));
    const std::vector<double> xs = lu.solve(b);
    const std::vector<double> xd = carbon::phys::solve_dense(a.to_dense(), b);
    for (int i = 0; i < a.size(); ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
  }
  EXPECT_EQ(lu.analyze_count(), 1);  // the symbolic work ran exactly once
}

TEST(SparseLu, SolveInPlaceMatchesSolve) {
  carbon::phys::Rng rng(3);
  SparseMatrix a = random_sparse(30, 2, rng);
  SparseLu lu;
  lu.factor(a);
  std::vector<double> b(30);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const std::vector<double> x1 = lu.solve(b);
  std::vector<double> x2 = b;
  lu.solve_in_place(x2);
  for (int i = 0; i < 30; ++i) EXPECT_DOUBLE_EQ(x1[i], x2[i]);
}

TEST(SparseLu, HandlesStructurallyZeroDiagonal) {
  // MNA voltage-source block: [[g, 1], [1, 0]] — the branch row has a
  // structurally zero diagonal, so the pivot order must go off-diagonal.
  SparseMatrix a =
      SparseMatrix::from_coords(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  a.values()[a.slot(0, 0)] = 1e-3;
  a.values()[a.slot(0, 1)] = 1.0;
  a.values()[a.slot(1, 0)] = 1.0;
  a.values()[a.slot(1, 1)] = 0.0;
  SparseLu lu;
  lu.analyze_factor(a);
  // Solve [g v + i = 0; v = 5]  ->  v = 5, i = -5e-3.
  const std::vector<double> x = lu.solve({0.0, 5.0});
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], -5e-3, 1e-12);
}

TEST(SparseLu, TridiagonalFillStaysLinear) {
  const int n = 500;
  SparseMatrix a = tridiagonal_pattern(n);
  fill_tridiagonal(a, 4.0, -1.0);
  SparseLu lu;
  lu.analyze_factor(a);
  // A good ordering keeps a tridiagonal factorization free of fill-in:
  // nnz(L + U) stays within a small constant of the matrix itself.
  EXPECT_LE(lu.fill_nnz(), 2 * a.nnz());

  const std::vector<double> b(n, 1.0);
  const std::vector<double> x = lu.solve(b);
  // Residual check against the matrix itself.
  for (int i = 1; i + 1 < n; ++i) {
    const double r = 4.0 * x[i] - x[i - 1] - x[i + 1];
    EXPECT_NEAR(r, 1.0, 1e-10);
  }
}

TEST(SparseLu, MinDegreeAvoidsArrowheadFill) {
  // Arrowhead matrix: a hub row/column plus a diagonal.  Natural-order
  // elimination of the hub first would fill the whole matrix (O(n^2));
  // minimum degree eliminates the spokes first and keeps fill linear.
  const int n = 200;
  std::vector<std::pair<int, int>> coords;
  for (int i = 0; i < n; ++i) {
    coords.emplace_back(i, i);
    coords.emplace_back(0, i);
    coords.emplace_back(i, 0);
  }
  SparseMatrix a = SparseMatrix::from_coords(n, coords);
  for (int i = 0; i < n; ++i) {
    a.values()[a.slot(i, i)] = 10.0;
    if (i > 0) {
      a.values()[a.slot(0, i)] = 1.0;
      a.values()[a.slot(i, 0)] = 1.0;
    }
  }
  SparseLu lu;
  lu.analyze_factor(a);
  EXPECT_LE(lu.fill_nnz(), 2 * a.nnz());

  const std::vector<double> b(n, 1.0);
  const std::vector<double> xs = lu.solve(b);
  const std::vector<double> xd = carbon::phys::solve_dense(a.to_dense(), b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseLu, SingularMatrixThrows) {
  SparseMatrix a =
      SparseMatrix::from_coords(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  a.values()[a.slot(0, 0)] = 1.0;
  a.values()[a.slot(0, 1)] = 2.0;
  a.values()[a.slot(1, 0)] = 2.0;
  a.values()[a.slot(1, 1)] = 4.0;  // rank 1
  SparseLu lu;
  EXPECT_THROW(lu.analyze_factor(a), carbon::phys::ConvergenceError);
}

TEST(SparseLu, SingularityCarriesTypedRowAndColumn) {
  using carbon::phys::SingularMatrixError;
  SparseMatrix a =
      SparseMatrix::from_coords(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  a.values()[a.slot(0, 0)] = 1.0;
  a.values()[a.slot(0, 1)] = 2.0;
  a.values()[a.slot(1, 0)] = 2.0;
  a.values()[a.slot(1, 1)] = 4.0;  // rank 1
  SparseLu lu;
  try {
    lu.analyze_factor(a);
    FAIL() << "rank-1 matrix factored";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.kind(), SingularMatrixError::Kind::kSingular);
    EXPECT_GE(e.row(), 0);
    EXPECT_LT(e.row(), 2);
    EXPECT_GE(e.col(), 0);
    EXPECT_LT(e.col(), 2);
  }
  EXPECT_GE(lu.failure_row(), 0);  // accessors mirror the thrown attribution
  EXPECT_FALSE(lu.failure_nonfinite());
}

TEST(SparseLu, NonFiniteValueIsTypedNotSilent) {
  using carbon::phys::SingularMatrixError;
  SparseMatrix a = tridiagonal_pattern(4);
  fill_tridiagonal(a, 4.0, -1.0);
  a.values()[a.slot(2, 2)] = std::nan("");
  SparseLu lu;
  try {
    lu.analyze_factor(a);
    FAIL() << "NaN matrix factored";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.kind(), SingularMatrixError::Kind::kNonFinite);
    EXPECT_GE(e.row(), 0);
  }
  EXPECT_TRUE(lu.failure_nonfinite());
}

TEST(SparseLu, StalePivotOrderIsDetectedAndReanalyzed) {
  // Record the pivot order on a diagonally dominant matrix, then hand
  // factor() values whose diagonal has collapsed to 1e-9 with unit
  // off-diagonals: reusing the recorded (diagonal) pivots would give
  // element growth ~1e9 and a solution with ~1e-7 relative error — silent,
  // since nothing is singular.  The refactor quality guard must notice and
  // trigger a fresh analysis with off-diagonal pivots.
  SparseMatrix a =
      SparseMatrix::from_coords(2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  a.values()[a.slot(0, 0)] = 1.0;
  a.values()[a.slot(0, 1)] = 0.5;
  a.values()[a.slot(1, 0)] = 0.5;
  a.values()[a.slot(1, 1)] = 1.0;
  SparseLu lu;
  lu.analyze_factor(a);
  EXPECT_EQ(lu.analyze_count(), 1);

  a.values()[a.slot(0, 0)] = 1e-9;
  a.values()[a.slot(1, 1)] = 1e-9;
  a.values()[a.slot(0, 1)] = 1.0;
  a.values()[a.slot(1, 0)] = 1.0;
  lu.factor(a);
  EXPECT_EQ(lu.analyze_count(), 2);  // guard tripped -> re-analysis

  const std::vector<double> x = lu.solve({1.0, 1.0});
  const std::vector<double> xd =
      carbon::phys::solve_dense(a.to_dense(), {1.0, 1.0});
  EXPECT_NEAR(x[0], xd[0], 1e-12);
  EXPECT_NEAR(x[1], xd[1], 1e-12);
}

TEST(SparseLu, RefactorReportsPivotCollapseAndFactorRecovers) {
  SparseMatrix a = tridiagonal_pattern(4);
  fill_tridiagonal(a, 4.0, -1.0);
  SparseLu lu;
  lu.analyze_factor(a);

  // Make the matrix singular in value (pattern unchanged): refactor must
  // refuse rather than divide by a vanished pivot.
  fill_tridiagonal(a, 0.0, 0.0);
  a.values()[a.slot(0, 0)] = 1.0;  // keep max_abs() nonzero
  EXPECT_FALSE(lu.refactor(a));
  EXPECT_FALSE(lu.factored());
  EXPECT_GE(lu.failure_row(), 0);  // collapse position is attributed
  EXPECT_GE(lu.failure_col(), 0);
  EXPECT_FALSE(lu.failure_nonfinite());

  // Back to healthy values: factor() transparently recovers.
  fill_tridiagonal(a, 4.0, -1.0);
  lu.factor(a);
  EXPECT_TRUE(lu.factored());
  const std::vector<double> x = lu.solve(std::vector<double>(4, 1.0));
  const std::vector<double> xd =
      carbon::phys::solve_dense(a.to_dense(), std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x[i], xd[i], 1e-12);
}

TEST(SparseLu, SolveBeforeFactorRejected) {
  SparseLu lu;
  std::vector<double> b{1.0};
  EXPECT_THROW(lu.solve_in_place(b), carbon::phys::PreconditionError);
}

TEST(MinDegreeOrder, IsAPermutation) {
  carbon::phys::Rng rng(11);
  const SparseMatrix a = random_sparse(50, 3, rng);
  const std::vector<int> order = carbon::phys::min_degree_order(a);
  ASSERT_EQ(order.size(), 50u);
  std::vector<char> seen(50, 0);
  for (int v : order) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 50);
    EXPECT_FALSE(seen[v]);
    seen[v] = 1;
  }
}

}  // namespace
