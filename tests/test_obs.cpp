/// Tests of the observability subsystem (src/obs): lock-free histogram
/// recording with exact-count conservation under concurrent writers,
/// snapshot consistency while writers are running (the TSan targets),
/// tracer ring wraparound, Chrome-trace JSON well-formedness, Prometheus
/// exposition, the per-deck phase-time split end-to-end through a
/// SimSession, and the golden metric schema of the serve::Server registry.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/report.h"
#include "device/alpha_power.h"
#include "device/ivmodel.h"
#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "spice/session.h"

namespace obs = carbon::obs;
using carbon::core::Json;

namespace {

// ------------------------------------------------------------- histograms

TEST(ObsHistogram, BucketIndexing) {
  obs::Histogram h;
  h.record_ns(500);      // <= 1 us -> bucket 0
  h.record_ns(1000);     // boundary: still bucket 0 (bounds are inclusive)
  h.record_ns(1500);     // <= 2 us -> bucket 1
  h.record_ns(2000);     // boundary of bucket 1
  h.record_ns(4000000);  // 4 ms -> <= 1e-6 * 2^12 s
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.buckets[0], 2);
  EXPECT_EQ(s.buckets[1], 2);
  EXPECT_EQ(s.buckets[12], 1);
  EXPECT_NEAR(s.sum_s, (500 + 1000 + 1500 + 2000 + 4000000) * 1e-9, 1e-12);
}

TEST(ObsHistogram, OverflowBucket) {
  obs::Histogram h;
  // bound(27) ~ 134.2 s; 1000 s must land in the overflow cell.
  h.record(1000.0);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.buckets[obs::Histogram::kBuckets], 1);
}

/// The TSan target: concurrent record() from many threads, then an exact
/// conservation check — every record lands in exactly one bucket, so the
/// final count must equal the number of calls.
TEST(ObsHistogram, ConcurrentRecordingConservesCount) {
  obs::Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Spread records across buckets; value depends on both loop vars
        // so threads do not serialize on one cell.
        h.record_ns(1000LL * (1 + ((t * kPerThread + i) % 4096)));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<long>(kThreads) * kPerThread);
  long from_buckets = 0;
  for (long b : s.buckets) from_buckets += b;
  EXPECT_EQ(from_buckets, s.count);
}

/// Snapshots taken while writers are running must always be internally
/// conserved (count == sum of bucket cells) and monotonically
/// nondecreasing — the snapshot-on-read contract.
TEST(ObsHistogram, SnapshotConsistentUnderWriters) {
  obs::Histogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        h.record_ns(12345);
        h.record_ns(98765432);
      }
    });
  }
  long prev = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto s = h.snapshot();
    long from_buckets = 0;
    for (long b : s.buckets) from_buckets += b;
    ASSERT_EQ(from_buckets, s.count);
    ASSERT_GE(s.count, prev);
    prev = s.count;
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

// --------------------------------------------------------------- registry

TEST(ObsRegistry, SameNameAndLabelsIsSameInstrument) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x_total", "k=\"1\"", "help text");
  obs::Counter& b = reg.counter("x_total", "k=\"1\"");
  obs::Counter& c = reg.counter("x_total", "k=\"2\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  EXPECT_EQ(b.load(), 3);
  EXPECT_EQ(c.load(), 0);
}

TEST(ObsRegistry, PrometheusExposition) {
  obs::MetricsRegistry reg;
  reg.counter("req_total", "outcome=\"ok\"", "requests").inc(7);
  reg.gauge("depth", "", "queue depth").set(3);
  obs::Histogram& h = reg.histogram("lat_seconds", "", "latency");
  h.record_ns(1500);
  h.record_ns(1500);
  const std::string text = reg.prometheus();
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total{outcome=\"ok\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2"), std::string::npos);
}

TEST(ObsRegistry, JsonExportParsesAndMatchesSchema) {
  obs::MetricsRegistry reg;
  reg.counter("a_total").inc();
  reg.gauge("b");
  reg.histogram("c_seconds").record_ns(1000);
  const Json doc = Json::parse(reg.to_json().dump());
  ASSERT_NE(doc.find("a_total"), nullptr);
  ASSERT_NE(doc.find("c_seconds"), nullptr);
  const auto schema = reg.schema();
  ASSERT_EQ(schema.size(), 3u);
  EXPECT_EQ(schema[0], (std::pair<std::string, std::string>{"a_total",
                                                            "counter"}));
  EXPECT_EQ(schema[1], (std::pair<std::string, std::string>{"b", "gauge"}));
  EXPECT_EQ(schema[2], (std::pair<std::string, std::string>{"c_seconds",
                                                            "histogram"}));
}

// ----------------------------------------------------------------- tracer

TEST(ObsTracer, UnattachedByDefault) {
  EXPECT_EQ(obs::tracer(), nullptr);
  obs::Tracer t;
  {
    obs::TraceAttach attach(&t);
    EXPECT_EQ(obs::tracer(), &t);
    {
      obs::TraceAttach suppress(nullptr);
      EXPECT_EQ(obs::tracer(), nullptr);
    }
    EXPECT_EQ(obs::tracer(), &t);
  }
  EXPECT_EQ(obs::tracer(), nullptr);
}

TEST(ObsTracer, RingWraparoundKeepsLatestWindow) {
  obs::Tracer t(16);  // minimum capacity
  ASSERT_EQ(t.capacity_per_thread(), 16u);
  obs::TraceAttach attach(&t);
  for (int i = 0; i < 100; ++i) t.instant("tick", 1000 + i);
  EXPECT_EQ(t.total_recorded(), 100);
  EXPECT_EQ(t.held(), 16u);
  // The held window is the *latest* 16 events: timestamps 1084..1099.
  const Json doc = Json::parse(t.chrome_json_text());
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 16u);
}

TEST(ObsTracer, ChromeJsonWellFormed) {
  obs::Tracer t;
  obs::TraceAttach attach(&t);
  t.span("solve", 5000, 2500);
  t.instant("reject", 6000);
  {
    obs::ScopedSpan s("scoped");
  }
  const Json doc = Json::parse(t.chrome_json_text());
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 3u);
  bool saw_span = false, saw_instant = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    const std::string ph = e.find("ph")->as_string();
    if (ph == "X") {
      saw_span = true;
      ASSERT_NE(e.find("dur"), nullptr);
    } else if (ph == "i") {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

/// Concurrent recording: one ring per thread, no event lost while the
/// rings have room (the other TSan target).
TEST(ObsTracer, ConcurrentThreadsGetOwnRings) {
  obs::Tracer t(1u << 12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      obs::TraceAttach attach(&t);
      for (int k = 0; k < kPerThread; ++k) {
        obs::tracer()->instant("evt", obs::now_ns());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.total_recorded(),
            static_cast<long long>(kThreads) * kPerThread);
  EXPECT_EQ(t.held(), static_cast<std::size_t>(kThreads) * kPerThread);
  const Json doc = Json::parse(t.chrome_json_text());
  EXPECT_EQ(doc.find("traceEvents")->size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

// ------------------------------------------------- session phase split

TEST(ObsPhase, SessionCollectsPhaseSplit) {
  using namespace carbon::device;
  carbon::spice::ModelRegistry reg;
  auto nfet = std::make_shared<AlphaPowerModel>(make_fig2_saturating_params());
  reg["nfet"] = nfet;
  carbon::spice::SessionOptions opts;
  opts.collect_phases = true;
  carbon::spice::SimSession session(std::move(reg), opts);
  const char kDeck[] =
      "v1 d 0 1\nv2 g 0 0.8\nm1 d g 0 nfet\nr1 d 0 10k\n"
      ".op\n.probe none\n.end\n";
  const Json doc = session.run_deck_text(kDeck, nullptr);
  const Json* ok = doc.find("ok");
  ASSERT_NE(ok, nullptr);
  ASSERT_TRUE(ok->as_bool());
  const Json* sess = doc.find("session");
  ASSERT_NE(sess, nullptr);
  const Json* phase = sess->find("phase_ns");
  ASSERT_NE(phase, nullptr) << "collect_phases must emit session.phase_ns";
  for (const char* key : {"stamp", "eval", "factor", "solve"}) {
    ASSERT_NE(phase->find(key), nullptr);
    EXPECT_GE(phase->find(key)->as_double(), 0.0);
  }
  // A Newton solve on a nonlinear deck must spend time in device eval and
  // the factorization; lifetime accumulation must match the deck's split.
  EXPECT_GT(phase->find("eval")->as_double(), 0.0);
  EXPECT_GT(phase->find("factor")->as_double(), 0.0);
  const obs::PhaseTimes& pt = session.phase_times();
  EXPECT_TRUE(pt.any());
  EXPECT_EQ(static_cast<double>(pt.eval_ns),
            phase->find("eval")->as_double());
}

TEST(ObsPhase, OffByDefaultKeepsSessionBlockClean) {
  carbon::spice::SimSession session;
  const Json doc =
      session.run_deck_text("v1 a 0 1\nr1 a 0 1k\n.op\n.probe none\n.end\n",
                            nullptr);
  const Json* sess = doc.find("session");
  ASSERT_NE(sess, nullptr);
  EXPECT_EQ(sess->find("phase_ns"), nullptr);
  EXPECT_FALSE(session.phase_times().any());
}

// ------------------------------------------------------ server schema

/// Golden schema: the (family, type) vocabulary the server registers, in
/// registration order.  A rename, retype or reorder is a dashboard /
/// scraper compatibility break and must show up in review as a diff of
/// this list.
TEST(ObsServe, MetricSchemaIsStable) {
  carbon::serve::ServerConfig cfg;
  cfg.workers = 2;
  carbon::serve::Server server(std::move(cfg));  // constructed, not started
  const std::vector<std::pair<std::string, std::string>> kGolden = {
      {"carbon_accepted_total", "counter"},
      {"carbon_rejected_total", "counter"},
      {"carbon_bad_requests_total", "counter"},
      {"carbon_requests_started_total", "counter"},
      {"carbon_requests_total", "counter"},
      {"carbon_health_requests_total", "counter"},
      {"carbon_metrics_requests_total", "counter"},
      {"carbon_disconnects_total", "counter"},
      {"carbon_in_flight", "gauge"},
      {"carbon_queue_depth", "gauge"},
      {"carbon_queue_wait_seconds", "histogram"},
      {"carbon_request_seconds", "histogram"},
      {"carbon_session_cache_total", "counter"},
      {"carbon_phase_ns_total", "counter"},
      {"carbon_session_cache_entries", "gauge"},
  };
  EXPECT_EQ(server.metrics().schema(), kGolden);
}

}  // namespace
