// Statistics accumulators, percentiles, histograms, and the deterministic
// RNG facade used by the fabrication Monte Carlo.
#include <gtest/gtest.h>

#include <cmath>

#include "phys/require.h"
#include "phys/rng.h"
#include "phys/stats.h"

namespace {

using carbon::phys::Histogram;
using carbon::phys::median;
using carbon::phys::percentile;
using carbon::phys::Rng;
using carbon::phys::RunningStats;

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Percentile, OrderStatistics) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 30.0), 3.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), carbon::phys::PreconditionError);
  EXPECT_THROW(percentile({1.0}, 101.0), carbon::phys::PreconditionError);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(50.0);  // clamped to bin 9
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(9), 2);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.5);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NormalMomentsConverge) {
  Rng rng(42);
  RunningStats s;
  for (int i = 0; i < 40000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, PoissonMeanConverges) {
  Rng rng(43);
  RunningStats s;
  for (int i = 0; i < 40000; ++i) s.add(rng.poisson(3.7));
  EXPECT_NEAR(s.mean(), 3.7, 0.06);
}

TEST(RngTest, BernoulliFraction) {
  Rng rng(44);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, TruncatedNormalRespectsBounds) {
  Rng rng(45);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.truncated_normal(1.0, 2.0, 0.5, 1.5);
    EXPECT_GE(x, 0.5);
    EXPECT_LE(x, 1.5);
  }
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(46);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.categorical({1.0, 2.0, 7.0})];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(RngTest, CategoricalRejectsDegenerateWeights) {
  Rng rng(47);
  EXPECT_THROW(rng.categorical({}), carbon::phys::PreconditionError);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), carbon::phys::PreconditionError);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), carbon::phys::PreconditionError);
}

TEST(RngTest, UniformIntRange) {
  Rng rng(48);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

}  // namespace
