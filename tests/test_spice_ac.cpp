// AC small-signal analysis: RC poles with closed forms, amplifier gain
// consistent with the DC derivative, and complex LU correctness.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "device/alpha_power.h"
#include "phys/linalg_complex.h"
#include "phys/require.h"
#include "spice/ac.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;

TEST(ComplexLu, SolvesKnownSystem) {
  using carbon::phys::Complex;
  carbon::phys::ComplexMatrix a(2, 2);
  a(0, 0) = {1.0, 1.0};
  a(0, 1) = {0.0, -1.0};
  a(1, 0) = {2.0, 0.0};
  a(1, 1) = {1.0, 0.0};
  // Pick x = (1+0i, 2i) and check recovery from b = A x.
  const std::vector<Complex> x_true{{1.0, 0.0}, {0.0, 2.0}};
  std::vector<Complex> b(2);
  for (int i = 0; i < 2; ++i) {
    b[i] = a(i, 0) * x_true[0] + a(i, 1) * x_true[1];
  }
  const auto x = carbon::phys::solve_dense_complex(a, b);
  EXPECT_NEAR(std::abs(x[0] - x_true[0]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(x[1] - x_true[1]), 0.0, 1e-12);
}

TEST(ComplexLu, SingularDetected) {
  carbon::phys::ComplexMatrix a(2, 2);
  a(0, 0) = {1.0, 0.0};
  a(0, 1) = {2.0, 0.0};
  a(1, 0) = {2.0, 0.0};
  a(1, 1) = {4.0, 0.0};
  EXPECT_THROW(carbon::phys::solve_dense_complex(a, {{1, 0}, {0, 0}}),
               carbon::phys::ConvergenceError);
}

TEST(SpiceAc, RcLowPassPole) {
  sp::Circuit ckt;
  auto* vin = ckt.add_vsource("vin", "a", "0", 0.0);
  ckt.add_resistor("r1", "a", "b", 1e3);
  ckt.add_capacitor("c1", "b", "0", 1e-9);  // f_c = 1/(2 pi RC) = 159.2 kHz
  sp::AcOptions opt;
  opt.f_start_hz = 1e3;
  opt.f_stop_hz = 1e8;
  opt.points_per_decade = 20;
  const auto ac = sp::ac_sweep(ckt, *vin, {"b"}, opt);
  // Low-frequency gain ~ 1.
  EXPECT_NEAR(ac.at(0, ac.column_index("mag(b)")), 1.0, 1e-3);
  const double fc = sp::corner_frequency(ac, "mag(b)");
  EXPECT_NEAR(fc, 1.0 / (2.0 * M_PI * 1e3 * 1e-9), 0.05 * 159.2e3);
}

TEST(SpiceAc, RcPhaseAtPole) {
  sp::Circuit ckt;
  auto* vin = ckt.add_vsource("vin", "a", "0", 0.0);
  ckt.add_resistor("r1", "a", "b", 1e3);
  ckt.add_capacitor("c1", "b", "0", 1e-9);
  sp::AcOptions opt;
  opt.f_start_hz = 159.15e3;  // exactly at the pole
  opt.f_stop_hz = 159.16e3;
  opt.points_per_decade = 100000;
  const auto ac = sp::ac_sweep(ckt, *vin, {"b"}, opt);
  EXPECT_NEAR(ac.at(0, ac.column_index("phase_deg(b)")), -45.0, 0.5);
  EXPECT_NEAR(ac.at(0, ac.column_index("mag(b)")), 1.0 / std::sqrt(2.0),
              0.01);
}

TEST(SpiceAc, HighPassBlocksDc) {
  sp::Circuit ckt;
  auto* vin = ckt.add_vsource("vin", "a", "0", 0.0);
  ckt.add_capacitor("c1", "a", "b", 1e-9);
  ckt.add_resistor("r1", "b", "0", 1e3);
  sp::AcOptions opt;
  opt.f_start_hz = 1e2;
  opt.f_stop_hz = 1e9;
  opt.points_per_decade = 10;
  const auto ac = sp::ac_sweep(ckt, *vin, {"b"}, opt);
  const int mag = ac.column_index("mag(b)");
  EXPECT_LT(ac.at(0, mag), 0.01);                 // blocked at low f
  EXPECT_NEAR(ac.at(ac.num_rows() - 1, mag), 1.0, 0.01);  // passes high f
}

TEST(SpiceAc, CommonSourceGainMatchesSmallSignal) {
  // Common-source amplifier: |A| at low frequency = gm * (RL || ro).
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  auto* vg = ckt.add_vsource("vg", "g", "0", 0.45);
  ckt.add_resistor("rl", "vdd", "d", 2e3);
  ckt.add_fet("m1", "d", "g", "0", m);
  sp::AcOptions opt;
  opt.f_start_hz = 1e3;
  opt.f_stop_hz = 1e4;
  opt.points_per_decade = 2;
  const auto ac = sp::ac_sweep(ckt, *vg, {"d"}, opt);

  // Independent estimate from the device model at the same bias.
  const auto sol = sp::operating_point(ckt);
  const double vd = sp::node_voltage(ckt, sol, "d");
  const double gm = carbon::device::transconductance(*m, 0.45, vd);
  const double gds = carbon::device::output_conductance(*m, 0.45, vd);
  const double expected = gm / (1.0 / 2e3 + gds);
  EXPECT_NEAR(ac.at(0, ac.column_index("mag(d)")), expected,
              0.02 * expected);
  // Inverting stage: phase ~ 180 deg.
  EXPECT_NEAR(std::abs(ac.at(0, ac.column_index("phase_deg(d)"))), 180.0,
              1.0);
}

TEST(SpiceAc, LoadCapacitorRollsOffAmplifier) {
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  auto* vg = ckt.add_vsource("vg", "g", "0", 0.45);
  ckt.add_resistor("rl", "vdd", "d", 2e3);
  ckt.add_capacitor("cl", "d", "0", 100e-15);
  ckt.add_fet("m1", "d", "g", "0", m);
  sp::AcOptions opt;
  opt.f_start_hz = 1e5;
  opt.f_stop_hz = 1e12;
  opt.points_per_decade = 10;
  const auto ac = sp::ac_sweep(ckt, *vg, {"d"}, opt);
  const double fc = sp::corner_frequency(ac, "mag(d)");
  EXPECT_GT(fc, 0.0);
  // Pole at 1/(2 pi (RL || ro) CL): within a factor ~1.3 of RL-only value.
  const double f_est = 1.0 / (2.0 * M_PI * 2e3 * 100e-15);
  EXPECT_NEAR(fc / f_est, 1.0, 0.35);
}

TEST(SpiceAc, InvalidRangeRejected) {
  sp::Circuit ckt;
  auto* vin = ckt.add_vsource("vin", "a", "0", 0.0);
  ckt.add_resistor("r1", "a", "0", 1e3);
  sp::AcOptions opt;
  opt.f_start_hz = 1e6;
  opt.f_stop_hz = 1e3;
  EXPECT_THROW(sp::ac_sweep(ckt, *vin, {"a"}, opt),
               carbon::phys::PreconditionError);
}

}  // namespace
