/// Loopback integration tests of the concurrent simulation service
/// (src/serve): an in-process Server driven over real sockets through the
/// same code paths carbon_simd uses.  Covers the whole robustness
/// contract — good decks, parse errors, solve failures, injected hangs
/// cut by deadlines, admission-control overload shedding, oversized-frame
/// rejection, mid-solve client disconnects cancelling the in-flight
/// solve, and the graceful drain flushing every admitted response.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/report.h"
#include "device/alpha_power.h"
#include "device/faulty.h"
#include "device/linear_fet.h"
#include "serve/framing.h"
#include "serve/queue.h"
#include "serve/server.h"

namespace serve = carbon::serve;
namespace sp = carbon::spice;
namespace dev = carbon::device;
using carbon::core::Json;

namespace {

/// Registry with the builtin devices plus deterministic fault models:
/// "hangfet" stalls per eval (deadline tests), "nanfet" goes NaN
/// (solve-failure isolation tests).
sp::ModelRegistry test_registry(double stall_s = 20e-3) {
  sp::ModelRegistry reg;
  auto nfet =
      std::make_shared<dev::AlphaPowerModel>(dev::make_fig2_saturating_params());
  reg["nfet"] = nfet;
  reg["pfet"] = std::make_shared<dev::PTypeMirror>(nfet);
  dev::FaultSpec stall;
  stall.kind = dev::FaultKind::kStall;
  stall.stall_s = stall_s;
  reg["hangfet"] = dev::with_fault(nfet, stall);
  dev::FaultSpec nan;
  nan.kind = dev::FaultKind::kNanEval;
  reg["nanfet"] = dev::with_fault(nfet, nan);
  return reg;
}

const char kGoodDeck[] =
    "v1 in 0 1\nr1 in out 1k\nr2 out 0 1k\n"
    ".op\n.probe none\n.measure op vout value v(out)\n.end\n";

/// A transient on a stalling FET: each accepted step costs one stalled
/// eval, so the run cannot finish inside any sane deadline.
const char kHangDeck[] =
    "v1 d 0 1\n"
    "v2 g 0 pulse(0 1 1n 1n 1n 5n 10n)\n"
    "m1 d g 0 hangfet\n"
    "c1 d 0 1p\n"
    ".tran 0.1n 1000n\n.probe none\n.end\n";

const char kNanDeck[] = "v1 d 0 1\nv2 g 0 1\nm1 d g 0 nanfet\n.op\n.end\n";

/// Unique, short (sun_path-safe) socket path per test.
std::string test_socket_path() {
  static int counter = 0;
  return "/tmp/carbon_serve_t" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

/// Minimal blocking line client over a Unix-domain socket.
class Client {
 public:
  explicit Client(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    connected_ = ::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                           sizeof addr) == 0;
  }
  ~Client() { close(); }

  bool connected() const { return connected_; }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool send_line(const std::string& line) {
    return serve::write_frame(fd_, line, 5.0);
  }

  /// Read one newline-terminated frame within @p timeout_s; nullopt on
  /// EOF / timeout / error.
  std::optional<std::string> recv_line(double timeout_s = 15.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<long>(timeout_s * 1000));
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string out = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return out;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return std::nullopt;
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int n = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return std::nullopt;
      }
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof chunk);
      if (got <= 0) return std::nullopt;
      buf_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  /// send + recv + parse.  A failed send still attempts the read: an
  /// overload-shed connection gets its rejection document written and
  /// closed server-side, which can EPIPE a concurrent send while the
  /// document sits readable in the socket buffer.
  std::optional<Json> rpc(const Json& req, double timeout_s = 15.0) {
    send_line(req.dump());
    const auto line = recv_line(timeout_s);
    if (!line) return std::nullopt;
    return Json::parse(*line);
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

Json run_request(const std::string& deck, double deadline_ms = 0.0) {
  auto req = Json::object();
  req.set("type", "run");
  req.set("deck", deck);
  if (deadline_ms > 0.0) req.set("deadline_ms", deadline_ms);
  return req;
}

serve::ServerConfig base_config(const std::string& path) {
  serve::ServerConfig cfg;
  cfg.unix_path = path;
  cfg.workers = 2;
  cfg.queue_capacity = 8;
  cfg.default_deadline_s = 20.0;
  cfg.write_timeout_s = 5.0;
  cfg.drain_budget_s = 2.0;
  cfg.registry = test_registry();
  cfg.session.emit_tables = false;  // keep responses small
  return cfg;
}

struct SigpipeGuard {
  SigpipeGuard() { std::signal(SIGPIPE, SIG_IGN); }
} const sigpipe_guard;  // write_frame contract: SIGPIPE must be ignored

}  // namespace

// ---------------------------------------------------------------------------

TEST(BoundedQueue, AdmissionControlAndDrain) {
  serve::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full: shed
  EXPECT_EQ(q.depth(), 2u);
  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed: shed
  // Admitted items still drain after close...
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  // ...then poppers see end-of-queue.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(Serve, RunRequestAndKeepAlive) {
  const std::string path = test_socket_path();
  serve::Server server(base_config(path));
  server.start();

  Client c(path);
  ASSERT_TRUE(c.connected());
  auto req = run_request(kGoodDeck);
  req.set("id", 7);
  const auto doc = c.rpc(req);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE((*doc)["ok"].as_bool()) << doc->dump(1);
  EXPECT_EQ((*doc)["id"].as_int(), 7);
  EXPECT_NEAR((*doc)["steps"].at(0)["measures"]["vout"].as_double(), 0.5,
              1e-9);

  // Keep-alive: a second request on the same connection.
  const auto again = c.rpc(run_request(kGoodDeck));
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE((*again)["ok"].as_bool());
  // Second run of the same topology on the same worker: a session-cache
  // hit, visible in the response's session block.
  EXPECT_GE((*again)["session"]["cache_hits"].as_int(), 1);

  server.request_drain();
  server.wait();
  EXPECT_EQ(server.stats().requests_ok.load(), 2);
}

TEST(Serve, BadDecksAreIsolatedDocuments) {
  const std::string path = test_socket_path();
  serve::Server server(base_config(path));
  server.start();
  {
    Client c(path);
    ASSERT_TRUE(c.connected());

    const auto parse = c.rpc(run_request("not a deck card\n.end\n"));
    ASSERT_TRUE(parse.has_value());
    EXPECT_FALSE((*parse)["ok"].as_bool());
    EXPECT_EQ((*parse)["error"]["type"].as_string(), "parse");

    const auto nan = c.rpc(run_request(kNanDeck));
    ASSERT_TRUE(nan.has_value());
    EXPECT_FALSE((*nan)["ok"].as_bool());
    EXPECT_EQ((*nan)["error"]["type"].as_string(), "solve_failure");

    // The connection — and the server — survive both.
    const auto good = c.rpc(run_request(kGoodDeck));
    ASSERT_TRUE(good.has_value());
    EXPECT_TRUE((*good)["ok"].as_bool());
  }
  server.request_drain();
  server.wait();
  EXPECT_EQ(server.stats().parse_errors.load(), 1);
  EXPECT_EQ(server.stats().solve_failures.load(), 1);
}

TEST(Serve, MalformedRequestsGetBadRequestDocuments) {
  const std::string path = test_socket_path();
  serve::Server server(base_config(path));
  server.start();
  {
    Client c(path);
    ASSERT_TRUE(c.connected());
    ASSERT_TRUE(c.send_line("this is not json"));
    auto doc = Json::parse(c.recv_line().value());
    EXPECT_EQ(doc["error"]["type"].as_string(), "bad_request");

    auto req = Json::object();
    req.set("type", "frobnicate");
    doc = c.rpc(req).value();
    EXPECT_EQ(doc["error"]["type"].as_string(), "bad_request");

    auto norun = Json::object();
    norun.set("type", "run");  // no deck
    doc = c.rpc(norun).value();
    EXPECT_EQ(doc["error"]["type"].as_string(), "bad_request");
  }
  server.request_drain();
  server.wait();
  EXPECT_EQ(server.stats().bad_requests.load(), 3);
}

TEST(Serve, OversizedFrameIsRejectedAndConnectionClosed) {
  const std::string path = test_socket_path();
  serve::ServerConfig cfg = base_config(path);
  cfg.max_request_bytes = 512;
  serve::Server server(std::move(cfg));
  server.start();
  {
    Client c(path);
    ASSERT_TRUE(c.connected());
    const std::string big(4096, 'x');
    ASSERT_TRUE(c.send_line(big));
    const auto doc = Json::parse(c.recv_line().value());
    EXPECT_EQ(doc["error"]["type"].as_string(), "too_large");
    // The frame boundary is unrecoverable: the server closes.
    EXPECT_FALSE(c.recv_line(2.0).has_value());
  }
  server.request_drain();
  server.wait();
  EXPECT_EQ(server.stats().rejected_too_large.load(), 1);
}

TEST(Serve, DeadlineCutsHungSolve) {
  const std::string path = test_socket_path();
  serve::Server server(base_config(path));
  server.start();
  {
    Client c(path);
    ASSERT_TRUE(c.connected());
    const auto t0 = std::chrono::steady_clock::now();
    const auto doc = c.rpc(run_request(kHangDeck, 400.0));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ASSERT_TRUE(doc.has_value());
    EXPECT_FALSE((*doc)["ok"].as_bool());
    EXPECT_EQ((*doc)["error"]["type"].as_string(), "timeout") << doc->dump(1);
    // Bounded: the 0.4 s budget, the in-flight stalled eval, and slack.
    EXPECT_LT(elapsed, 5.0);
  }
  server.request_drain();
  server.wait();
  EXPECT_EQ(server.stats().timeouts.load(), 1);
}

TEST(Serve, OverloadIsShedWithStructuredDocument) {
  const std::string path = test_socket_path();
  serve::ServerConfig cfg = base_config(path);
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  serve::Server server(std::move(cfg));
  server.start();

  // A occupies the single worker with a hung solve...
  Client a(path);
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(a.send_line(run_request(kHangDeck, 1500.0).dump()));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // ...B occupies the single queue slot...
  Client b(path);
  ASSERT_TRUE(b.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // ...so C must be shed with an overload document.
  Client c(path);
  ASSERT_TRUE(c.connected());
  const auto shed = c.recv_line(5.0);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(Json::parse(*shed)["error"]["type"].as_string(), "overload");

  // A still gets its (timeout) document: admitted work always completes.
  const auto a_doc = a.recv_line();
  ASSERT_TRUE(a_doc.has_value());
  EXPECT_EQ(Json::parse(*a_doc)["error"]["type"].as_string(), "timeout");
  a.close();  // release the keep-alive so the worker can pop B
  // B was admitted: once the worker frees up it gets served.
  const auto b_doc = b.rpc(run_request(kGoodDeck));
  ASSERT_TRUE(b_doc.has_value());
  EXPECT_TRUE((*b_doc)["ok"].as_bool());

  server.request_drain();
  server.wait();
  EXPECT_EQ(server.stats().rejected_overload.load(), 1);
}

TEST(Serve, DisconnectCancelsInFlightSolve) {
  const std::string path = test_socket_path();
  serve::Server server(base_config(path));
  server.start();
  {
    Client a(path);
    ASSERT_TRUE(a.connected());
    // A very generous deadline: only the disconnect can stop this solve.
    ASSERT_TRUE(a.send_line(run_request(kHangDeck, 60000.0).dump()));
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    a.close();  // client gives up mid-solve

    // The monitor cancels the solve and the worker frees up well before
    // the 60 s deadline.
    Client b(path);
    ASSERT_TRUE(b.connected());
    bool cleared = false;
    for (int i = 0; i < 100 && !cleared; ++i) {
      auto req = Json::object();
      req.set("type", "health");
      const auto h = b.rpc(req);
      ASSERT_TRUE(h.has_value());
      cleared = (*h)["server"]["in_flight"].as_int() == 0 &&
                (*h)["server"]["disconnects"].as_int() >= 1;
      if (!cleared) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
    EXPECT_TRUE(cleared) << "in-flight solve not cancelled on disconnect";
  }
  server.request_drain();
  server.wait();
  EXPECT_GE(server.stats().disconnects.load(), 1);
}

TEST(Serve, GracefulDrainFlushesAdmittedWork) {
  const std::string path = test_socket_path();
  serve::ServerConfig cfg = base_config(path);
  cfg.drain_budget_s = 0.8;
  serve::Server server(std::move(cfg));
  server.start();

  // In-flight hung work at drain time...
  Client a(path);
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(a.send_line(run_request(kHangDeck, 60000.0).dump()));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const auto t0 = std::chrono::steady_clock::now();
  server.request_drain();

  // ...is cancelled at the drain budget and still gets its document.
  const auto doc = a.recv_line(10.0);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(Json::parse(*doc)["error"]["type"].as_string(), "timeout");

  server.wait();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Budget + one in-flight stalled eval + join slack.
  EXPECT_LT(elapsed, 6.0);

  // Drained server accepts nothing new.
  Client late(path);
  EXPECT_FALSE(late.connected());
}

TEST(Serve, HealthReportsCountersAndCacheStats) {
  const std::string path = test_socket_path();
  serve::Server server(base_config(path));
  server.start();
  {
    Client c(path);
    ASSERT_TRUE(c.connected());
    ASSERT_TRUE(c.rpc(run_request(kGoodDeck)).has_value());
    ASSERT_TRUE(c.rpc(run_request(kGoodDeck)).has_value());
    auto req = Json::object();
    req.set("type", "health");
    req.set("id", "h1");
    const auto h = c.rpc(req);
    ASSERT_TRUE(h.has_value());
    EXPECT_TRUE((*h)["ok"].as_bool());
    EXPECT_EQ((*h)["id"].as_string(), "h1");
    const Json& srv = (*h)["server"];
    EXPECT_EQ(srv["requests"]["run"].as_int(), 2);
    EXPECT_EQ(srv["requests"]["ok"].as_int(), 2);
    EXPECT_EQ(srv["in_flight"].as_int(), 0);
    EXPECT_EQ(srv["queue_capacity"].as_int(), 8);
    EXPECT_FALSE(srv["draining"].as_bool());
    // Both runs hit one worker: 1 miss then 1 hit.
    EXPECT_EQ(srv["session_cache"]["misses"].as_int(), 1);
    EXPECT_GE(srv["session_cache"]["hits"].as_int(), 1);
  }
  server.request_drain();
  server.wait();
}

/// The acceptance-criteria fault mix, concurrently: good decks, parse
/// errors, solve failures, injected hangs under tight deadlines, an
/// oversized request and a mid-request disconnect, from several client
/// threads at once — every completed request gets exactly one document,
/// the server never crashes, and the drain exits cleanly.
TEST(Serve, ConcurrentFaultMixLoad) {
  const std::string path = test_socket_path();
  serve::ServerConfig cfg = base_config(path);
  cfg.workers = 4;
  cfg.queue_capacity = 4;
  cfg.registry = test_registry(5e-3);  // faster stalls: tighter test
  serve::Server server(std::move(cfg));
  server.start();

  std::atomic<int> docs{0}, transport_failures{0};
  auto client_thread = [&](int seed) {
    for (int i = 0; i < 6; ++i) {
      Client c(path);
      if (!c.connected()) continue;  // overload shed at accept is fine
      const int kind = (seed + i) % 5;
      std::optional<Json> doc;
      switch (kind) {
        case 0: doc = c.rpc(run_request(kGoodDeck)); break;
        case 1: doc = c.rpc(run_request("bogus\n.end\n")); break;
        case 2: doc = c.rpc(run_request(kNanDeck)); break;
        case 3: doc = c.rpc(run_request(kHangDeck, 120.0)); break;
        case 4:
          // Mid-request disconnect: send and leave without reading.
          c.send_line(run_request(kHangDeck, 2000.0).dump());
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          c.close();
          continue;
      }
      if (!doc.has_value()) {
        // Overload rejection arrives as a document too; only transport
        // breakage counts as failure.
        ++transport_failures;
        continue;
      }
      ++docs;
      EXPECT_TRUE(doc->find("ok") != nullptr) << doc->dump(1);
    }
  };
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) clients.emplace_back(client_thread, t);
  for (auto& t : clients) t.join();

  EXPECT_GT(docs.load(), 0);
  EXPECT_EQ(transport_failures.load(), 0);

  server.request_drain();
  server.wait();
  const serve::ServerStats& s = server.stats();
  // Conservation: every run request was accounted to exactly one outcome.
  EXPECT_EQ(s.requests_run.load(),
            s.requests_ok.load() + s.parse_errors.load() +
                s.solve_failures.load() + s.timeouts.load() +
                s.cancelled.load() + s.internal_errors.load());
  EXPECT_EQ(s.in_flight.load(), 0);
}

TEST(Serve, TcpListenerServesEphemeralPort) {
  serve::ServerConfig cfg = base_config("");
  cfg.unix_path.clear();
  cfg.tcp_port = 0;
  serve::Server server(std::move(cfg));
  server.start();
  ASSERT_GT(server.port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof addr),
            0);
  ASSERT_TRUE(serve::write_frame(fd, run_request(kGoodDeck).dump(), 5.0));
  serve::FrameReader reader(fd, 1u << 20);
  std::string line;
  ASSERT_EQ(reader.read_frame(&line), serve::ReadStatus::kFrame);
  EXPECT_TRUE(Json::parse(line)["ok"].as_bool());
  ::close(fd);

  server.request_drain();
  server.wait();
}
