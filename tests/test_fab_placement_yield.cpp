// Placement Monte Carlo (Park trench assembly, quartz growth), the >10k
// device statistics, and wafer-scale yield arithmetic.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "fab/devstats.h"
#include "fab/placement.h"
#include "fab/yield.h"

namespace {

namespace fab = carbon::fab;

fab::ChiralityPopulation sorted_population(double metallic_target = 0.01) {
  fab::ChiralityPopulation pop(1.4e-9, 0.2e-9);
  const double m0 = pop.metallic_fraction();
  pop.reweight(metallic_target / m0 * (1 - metallic_target) / (1 - m0), 1.0);
  return pop;
}

TEST(TrenchAssembly, FillStatistics) {
  const auto pop = sorted_population();
  carbon::phys::Rng rng(11);
  fab::TrenchAssemblyModel model;
  const auto sites = model.run(pop, 20000, rng);
  ASSERT_EQ(sites.size(), 20000u);
  int empty = 0;
  double tubes = 0;
  for (const auto& s : sites) {
    empty += s.tubes.empty() ? 1 : 0;
    tubes += s.tubes.size();
  }
  // P(empty) = (1 - fill) * P(Poisson extra = 0).
  const double p_empty_expected =
      (1.0 - model.fill_probability) * std::exp(-model.mean_extra_tubes);
  EXPECT_NEAR(empty / 20000.0, p_empty_expected, 0.01);
  EXPECT_NEAR(tubes / 20000.0,
              model.fill_probability + model.mean_extra_tubes, 0.03);
}

TEST(QuartzGrowth, BurnoffRemovesMetals) {
  fab::ChiralityPopulation raw(1.4e-9, 0.25e-9);  // ~1/3 metallic
  carbon::phys::Rng rng(13);
  fab::QuartzGrowthModel model;
  const auto sites = model.run(raw, 5000, 1.0, rng);
  int metallic = 0, total = 0;
  for (const auto& s : sites) {
    for (const auto& t : s.tubes) {
      ++total;
      metallic += t.chirality.is_metallic() ? 1 : 0;
    }
  }
  ASSERT_GT(total, 1000);
  // Burn-off at 99%: metallic fraction drops from ~33% to ~0.5%.
  EXPECT_LT(static_cast<double>(metallic) / total, 0.02);
}

TEST(DeviceSite, CountsBridgingAndMetallic) {
  fab::DeviceSite site;
  fab::PlacedTube t1;
  t1.chirality = {19, 0};
  t1.bridges_channel = true;
  fab::PlacedTube t2;
  t2.chirality = {12, 0};  // metallic
  t2.bridges_channel = true;
  fab::PlacedTube t3;
  t3.chirality = {19, 0};
  t3.bridges_channel = false;
  site.tubes = {t1, t2, t3};
  EXPECT_EQ(site.bridging_count(), 2);
  EXPECT_EQ(site.metallic_count(), 1);
}

TEST(DevStats, ParkScaleStudyYield) {
  // The ref [22] reproduction: >10,000 transistors measured blindly.
  const auto pop = sorted_population(0.005);
  carbon::phys::Rng rng(17);
  fab::TrenchAssemblyModel model;
  const auto sites = model.run(pop, 12000, rng);
  const auto devices = fab::measure_sites(sites, {}, rng);
  const auto stats = fab::summarize(devices);
  EXPECT_EQ(stats.devices, 12000);
  EXPECT_GT(stats.yield, 0.5);
  EXPECT_LT(stats.yield, 0.999);
  EXPECT_GT(stats.median_on_off, 1e3);
}

TEST(DevStats, MetallicContaminationKillsYield) {
  carbon::phys::Rng rng(19);
  fab::TrenchAssemblyModel model;
  const auto clean_sites = model.run(sorted_population(0.001), 6000, rng);
  const auto dirty_sites = model.run(sorted_population(0.25), 6000, rng);
  carbon::phys::Rng rng2(19);
  const auto clean = fab::summarize(fab::measure_sites(clean_sites, {}, rng2));
  const auto dirty = fab::summarize(fab::measure_sites(dirty_sites, {}, rng2));
  EXPECT_GT(clean.yield, dirty.yield + 0.1);
  EXPECT_GT(dirty.short_fraction, clean.short_fraction * 5.0);
}

TEST(DevStats, HistogramMassNormalized) {
  carbon::phys::Rng rng(23);
  fab::TrenchAssemblyModel model;
  const auto sites = model.run(sorted_population(), 3000, rng);
  const auto devices = fab::measure_sites(sites, {}, rng);
  const auto hist = fab::on_off_histogram(devices);
  double total = 0.0;
  for (int i = 0; i < hist.num_rows(); ++i) total += hist.at(i, 1);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Yield, GateYieldClosedForm) {
  // 4-FET gate, 3 tubes each, 1% metallic: (0.99^3)^4 = 0.8864.
  EXPECT_NEAR(fab::gate_yield(0.01, 3, 4), std::pow(0.99, 12), 1e-12);
}

TEST(Yield, OpensReduceYield) {
  EXPECT_LT(fab::gate_yield(0.01, 3, 4, 0.05), fab::gate_yield(0.01, 3, 4));
}

TEST(Yield, CircuitYieldLogSafe) {
  const double y = fab::circuit_yield(0.9999, 1000000);
  EXPECT_NEAR(y, std::exp(1e6 * std::log(0.9999)), 1e-9);
  EXPECT_GT(y, 0.0);
  // Huge circuits with modest gate yield: underflows to ~0 without throwing.
  EXPECT_NEAR(fab::circuit_yield(0.99, 1000000000LL), 0.0, 1e-30);
}

TEST(Yield, RequiredPurityInverseOfForwardModel) {
  const long long gates = 100000;
  const double m = fab::required_metallic_fraction(gates, 2, 4, 0.5);
  const double y = fab::circuit_yield(fab::gate_yield(m, 2, 4), gates);
  EXPECT_NEAR(y, 0.5, 1e-6);
}

TEST(Yield, PurityRequirementExplodesWithScale) {
  // The "illusional dream" table: ppm-level metallic tolerance for VLSI.
  const auto t = fab::purity_requirement_table(
      {100, 10000, 1000000, 100000000}, 3, 4, 0.5);
  const int ppm = t.column_index("required_metallic_ppm");
  EXPECT_GT(t.at(0, ppm), 100.0);   // small circuit: relaxed
  EXPECT_LT(t.at(3, ppm), 1.0);     // 1e8 gates: sub-ppm purity needed
  for (int r = 1; r < t.num_rows(); ++r) {
    EXPECT_LT(t.at(r, ppm), t.at(r - 1, ppm));
  }
}

TEST(Yield, ParameterValidation) {
  EXPECT_THROW(fab::gate_yield(1.5, 3, 4), carbon::phys::PreconditionError);
  EXPECT_THROW(fab::gate_yield(0.1, 0, 4), carbon::phys::PreconditionError);
  EXPECT_THROW(fab::circuit_yield(0.5, 0), carbon::phys::PreconditionError);
  EXPECT_THROW(fab::required_metallic_fraction(10, 2, 4, 1.5),
               carbon::phys::PreconditionError);
}

}  // namespace
