// SUBNEG one-instruction computer: interpreter programs (counting, sort)
// and the gate-level datapath checked against the interpreter.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <random>

#include "logic/subneg.h"

namespace {

namespace lg = carbon::logic;

TEST(SubnegMachine, SubtractAndBranchSemantics) {
  lg::SubnegMachine m(16);
  lg::SubnegProgram p;
  p.data = {{0, 5}, {1, 3}};
  p.code = {{1, 0, 0}};  // mem[0] -= mem[1]: 5-3=2, no branch, halt
  m.load(p);
  EXPECT_EQ(m.run(), 1);
  EXPECT_EQ(m.read(0), 2);
  EXPECT_FALSE(m.trace()[0].branched);
}

TEST(SubnegMachine, BranchTakenOnNegative) {
  lg::SubnegMachine m(16);
  lg::SubnegProgram p;
  p.data = {{0, 1}, {1, 3}};
  p.code = {
      {1, 0, 2},  // 1-3 = -2 < 0: jump to 2
      {1, 0, 2},  // skipped
      {0, 0, 3},  // mem[0] -= mem[0] => 0, halt
  };
  m.load(p);
  m.run();
  EXPECT_EQ(m.read(0), 0);
  EXPECT_TRUE(m.trace()[0].branched);
  EXPECT_EQ(m.trace()[1].pc, 2);
}

TEST(SubnegMachine, CountingProgramReachesLimit) {
  // The CNT computer's counting demo.
  lg::SubnegMachine m(16);
  m.load(lg::make_counting_program(0, 1, 10));
  const int steps = m.run();
  EXPECT_EQ(m.read(0), 10);
  EXPECT_GT(steps, 10);  // several instructions per increment
}

TEST(SubnegMachine, CountingWithStrideOvershootsToFirstAtOrAbove) {
  lg::SubnegMachine m(16);
  m.load(lg::make_counting_program(2, 3, 11));
  m.run();
  EXPECT_EQ(m.read(0), 11);  // 2,5,8,11: stops at 11
  lg::SubnegMachine m2(16);
  m2.load(lg::make_counting_program(0, 4, 10));
  m2.run();
  EXPECT_EQ(m2.read(0), 12);  // 0,4,8,12: first >= 10
}

TEST(SubnegMachine, SortTwoAlreadySorted) {
  lg::SubnegMachine m(16);
  m.load(lg::make_sort2_program(3, 8));
  m.run();
  EXPECT_EQ(m.read(10), 3);
  EXPECT_EQ(m.read(11), 8);
}

TEST(SubnegMachine, SortTwoSwaps) {
  lg::SubnegMachine m(16);
  m.load(lg::make_sort2_program(9, 4));
  m.run();
  EXPECT_EQ(m.read(10), 4);
  EXPECT_EQ(m.read(11), 9);
}

TEST(SubnegMachine, SortEqualValuesStable) {
  lg::SubnegMachine m(16);
  m.load(lg::make_sort2_program(6, 6));
  m.run();
  EXPECT_EQ(m.read(10), 6);
  EXPECT_EQ(m.read(11), 6);
}

TEST(SubnegMachine, StepLimitRespected) {
  lg::SubnegMachine m(16);
  lg::SubnegProgram p;
  p.data = {{0, 0}, {1, 0}};
  p.code = {{1, 0, 0}};  // 0-0=0, falls through... actually halts
  // Build a real infinite loop: subtracting a negative keeps result >= 0
  // only until overflow, so use branch-to-self with negative result.
  p.data = {{0, -5}, {1, 1}};
  p.code = {{1, 0, 0}};  // mem[0] -= 1 -> always negative -> loop forever
  m.load(p);
  EXPECT_EQ(m.run(100), 100);
}

lg::CellTiming fake_timing() {
  lg::CellTiming t;
  t.t_inv_s = 1e-12;
  t.t_nand2_s = 1.5e-12;
  t.t_nor2_s = 1.7e-12;
  t.v_dd = 0.5;
  return t;
}

TEST(SubnegDatapath, SubtractorMatchesArithmetic) {
  lg::SubnegDatapath dp(8, fake_timing());
  bool neg = false;
  EXPECT_EQ(dp.subtract(10, 3, &neg), 7u);
  EXPECT_FALSE(neg);
  EXPECT_EQ(dp.subtract(3, 10, &neg) & 0xFF, 0xF9u);  // -7 two's complement
  EXPECT_TRUE(neg);
  EXPECT_EQ(dp.subtract(0, 0, &neg), 0u);
  EXPECT_FALSE(neg);
}

TEST(SubnegDatapath, RandomizedAgainstInterpreterSemantics) {
  lg::SubnegDatapath dp(8, fake_timing());
  std::mt19937 gen(5);
  std::uniform_int_distribution<int> dist(0, 255);
  for (int i = 0; i < 200; ++i) {
    const int b = dist(gen), a = dist(gen);
    bool neg = false;
    const auto d = dp.subtract(b, a, &neg);
    EXPECT_EQ(d, static_cast<unsigned>((b - a) & 0xFF));
    EXPECT_EQ(neg, b < a);
  }
}

TEST(SubnegDatapath, SettleTimeWithinBudgetAndPositive) {
  lg::SubnegDatapath dp(8, fake_timing());
  bool neg;
  dp.subtract(200, 13, &neg);
  EXPECT_GT(dp.last_settle_time_s(), 0.0);
  // Worst-case ripple budget: W stages of borrow logic.
  EXPECT_LT(dp.last_settle_time_s(), 8 * 20e-12);
}

TEST(SubnegDatapath, GateCountScalesWithWidth) {
  lg::SubnegDatapath d4(4, fake_timing());
  lg::SubnegDatapath d16(16, fake_timing());
  EXPECT_NEAR(static_cast<double>(d16.num_gates()) / d4.num_gates(), 4.0,
              0.5);
  // 7 gates per full-subtractor bit (2 XOR, 2 INV, 2 AND, 1 OR).
  EXPECT_EQ(d4.num_gates(), 4 * 7);
}

TEST(SubnegDatapath, WidthValidation) {
  EXPECT_THROW(lg::SubnegDatapath(0, fake_timing()),
               carbon::phys::PreconditionError);
  EXPECT_THROW(lg::SubnegDatapath(64, fake_timing()),
               carbon::phys::PreconditionError);
  lg::CellTiming bad;  // uncharacterized
  EXPECT_THROW(lg::SubnegDatapath(8, bad),
               carbon::phys::PreconditionError);
}

}  // namespace
