// Root finding: Brent correctness, bracketing robustness, the
// Newton-with-bisection safeguard.
#include <gtest/gtest.h>

#include <cmath>

#include "phys/require.h"
#include "phys/roots.h"

namespace {

using carbon::phys::bracket_root;
using carbon::phys::brent;
using carbon::phys::find_root;
using carbon::phys::newton_bisect;

TEST(Brent, SimplePolynomial) {
  const auto f = [](double x) { return x * x - 4.0; };
  EXPECT_NEAR(brent(f, 0.0, 10.0), 2.0, 1e-10);
}

TEST(Brent, TranscendentalRoot) {
  const auto f = [](double x) { return std::cos(x) - x; };
  EXPECT_NEAR(brent(f, 0.0, 1.0), 0.7390851332151607, 1e-10);
}

TEST(Brent, RootAtBracketEndpoint) {
  const auto f = [](double x) { return x - 1.0; };
  EXPECT_DOUBLE_EQ(brent(f, 1.0, 2.0), 1.0);
}

TEST(Brent, ThrowsWithoutSignChange) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(brent(f, -1.0, 1.0), carbon::phys::PreconditionError);
}

TEST(Brent, SteepExponentialCrossing) {
  // The kind of function threshold retargeting produces: decades per volt.
  const auto f = [](double x) { return std::exp(20.0 * x) - 1e3; };
  const double root = std::log(1e3) / 20.0;
  EXPECT_NEAR(brent(f, -1.0, 1.0), root, 1e-9);
}

TEST(BracketRoot, ExpandsToFindSignChange) {
  const auto f = [](double x) { return x - 100.0; };
  const auto br = bracket_root(f, 0.0, 1.0);
  ASSERT_TRUE(br.found);
  EXPECT_LE(f(br.lo) * f(br.hi), 0.0);
}

TEST(BracketRoot, FailsGracefullyOnNoRoot) {
  const auto f = [](double) { return 1.0; };
  EXPECT_FALSE(bracket_root(f, 0.0, 1.0, 8).found);
}

TEST(FindRoot, BracketsThenSolves) {
  const auto f = [](double x) { return std::tanh(x - 3.0); };
  EXPECT_NEAR(find_root(f, 0.0, 1.0), 3.0, 1e-9);
}

TEST(NewtonBisect, QuadraticWithDerivative) {
  const auto f = [](double x) { return x * x - 2.0; };
  const auto df = [](double x) { return 2.0 * x; };
  EXPECT_NEAR(newton_bisect(f, df, 0.0, 2.0), std::sqrt(2.0), 1e-10);
}

TEST(NewtonBisect, SurvivesBadDerivative) {
  // A derivative that is wrong everywhere: the bisection safeguard still
  // converges.
  const auto f = [](double x) { return x - 0.3; };
  const auto df = [](double) { return 1e-30; };
  EXPECT_NEAR(newton_bisect(f, df, 0.0, 1.0, 1e-10, 200), 0.3, 1e-6);
}

TEST(NewtonBisect, ReversedBracketAccepted) {
  const auto f = [](double x) { return 1.0 - x; };  // decreasing
  const auto df = [](double) { return -1.0; };
  EXPECT_NEAR(newton_bisect(f, df, 0.0, 2.0), 1.0, 1e-10);
}

class PolynomialRoots : public ::testing::TestWithParam<double> {};

TEST_P(PolynomialRoots, CubeRootRecovery) {
  const double target = GetParam();
  const auto f = [target](double x) { return x * x * x - target; };
  EXPECT_NEAR(find_root(f, 0.0, 1.0), std::cbrt(target), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Targets, PolynomialRoots,
                         ::testing::Values(0.001, 0.5, 8.0, 1000.0));

}  // namespace
