// DataTable: the carrier of every regenerated figure series.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "phys/require.h"
#include "phys/table.h"

namespace {

using carbon::phys::DataTable;

TEST(DataTable, RowColumnAccess) {
  DataTable t({"x", "y"});
  t.add_row({1.0, 2.0});
  t.add_row({3.0, 4.0});
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.num_cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3.0);
  const auto y = t.column("y");
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(DataTable, ColumnLookupByName) {
  DataTable t({"alpha", "beta", "gamma"});
  EXPECT_EQ(t.column_index("beta"), 1);
  EXPECT_THROW(t.column_index("delta"), carbon::phys::PreconditionError);
}

TEST(DataTable, RejectsRaggedRows) {
  DataTable t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), carbon::phys::PreconditionError);
  EXPECT_THROW(t.add_row({1.0, 2.0, 3.0}), carbon::phys::PreconditionError);
}

TEST(DataTable, OutOfRangeAccessThrows) {
  DataTable t({"a"});
  t.add_row({1.0});
  EXPECT_THROW(t.at(1, 0), carbon::phys::PreconditionError);
  EXPECT_THROW(t.at(0, 1), carbon::phys::PreconditionError);
  EXPECT_THROW(t.column(5), carbon::phys::PreconditionError);
}

TEST(DataTable, PrintContainsHeaderAndValues) {
  DataTable t({"vgs_v", "id_a"});
  t.add_row({0.5, 1.25e-6});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("vgs_v"), std::string::npos);
  EXPECT_NE(s.find("1.25e-06"), std::string::npos);
}

TEST(DataTable, CsvRoundTrip) {
  DataTable t({"x", "y"});
  t.add_row({1.5, -2.25});
  t.add_row({3.0, 4.0});
  const std::string path = "test_table_tmp.csv";
  t.write_csv(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(header, "x,y");
  EXPECT_EQ(row1, "1.5,-2.25");
  EXPECT_EQ(row2, "3,4");
  std::remove(path.c_str());
}

TEST(DataTable, EmptyColumnListRejected) {
  EXPECT_THROW(DataTable(std::vector<std::string>{}),
               carbon::phys::PreconditionError);
}

}  // namespace
