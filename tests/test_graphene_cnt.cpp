// Graphene dispersion and CNT zone folding: the band-structure facts the
// whole device stack is built on.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "band/cnt.h"
#include "band/graphene.h"
#include "phys/constants.h"

namespace {

using carbon::band::Chirality;
using carbon::band::CntBandStructure;
using carbon::band::enumerate_chiralities;
using carbon::band::GrapheneParams;
using carbon::band::graphene_energy;
using carbon::band::make_cnt_ladder_from_gap;

TEST(Graphene, FermiVelocityAboutMillionMs) {
  const GrapheneParams p;
  EXPECT_NEAR(p.fermi_velocity(), 9.7e5, 1e5);
}

TEST(Graphene, EnergyVanishesAtDiracPoint) {
  const GrapheneParams p;
  const double k_dirac = carbon::band::graphene_k_point(p);
  EXPECT_NEAR(graphene_energy(p, 0.0, k_dirac), 0.0, 1e-9);
}

TEST(Graphene, GammaPointEnergyIs3Gamma0) {
  const GrapheneParams p;
  EXPECT_NEAR(graphene_energy(p, 0.0, 0.0), 3.0 * p.gamma0_ev, 1e-12);
}

TEST(ChiralityTest, DiameterOfKnownTubes) {
  // (19,0): d = 0.246*19/pi nm = 1.487 nm; (10,10): 1.356 nm.
  EXPECT_NEAR((Chirality{19, 0}.diameter()) * 1e9, 1.487, 0.01);
  EXPECT_NEAR((Chirality{10, 10}.diameter()) * 1e9, 1.356, 0.01);
  EXPECT_NEAR((Chirality{13, 0}.diameter()) * 1e9, 1.018, 0.01);
}

TEST(ChiralityTest, MetallicRule) {
  EXPECT_TRUE((Chirality{10, 10}.is_metallic()));  // armchair: always
  EXPECT_TRUE((Chirality{9, 0}.is_metallic()));    // n-m = 9
  EXPECT_FALSE((Chirality{19, 0}.is_metallic()));  // n-m = 19
  EXPECT_FALSE((Chirality{13, 5}.is_metallic()));  // n-m = 8
  EXPECT_TRUE((Chirality{13, 4}.is_metallic()));   // n-m = 9
}

TEST(ChiralityTest, ChiralAngleConventions) {
  EXPECT_NEAR((Chirality{10, 0}.chiral_angle_deg()), 0.0, 1e-9);   // zigzag
  EXPECT_NEAR((Chirality{10, 10}.chiral_angle_deg()), 30.0, 1e-9); // armchair
}

TEST(CntBands, GapLawEgTimesDConstant) {
  // Eg * d = 2 gamma0 a_cc = 0.852 eV nm for all semiconducting tubes.
  const double expected = 2.0 * 3.0 * 0.142;  // eV nm
  for (const Chirality ch : {Chirality{13, 0}, Chirality{19, 0},
                             Chirality{17, 0}, Chirality{14, 4}}) {
    const CntBandStructure bs(ch);
    EXPECT_NEAR(bs.band_gap() * bs.diameter() * 1e9, expected, 1e-6)
        << "(" << ch.n << "," << ch.m << ")";
  }
}

TEST(CntBands, MetallicTubesHaveNoGap) {
  EXPECT_DOUBLE_EQ((CntBandStructure({10, 10}).band_gap()), 0.0);
  EXPECT_DOUBLE_EQ((CntBandStructure({12, 0}).band_gap()), 0.0);
}

TEST(CntBands, LadderOrderedAndFourfoldDegenerate) {
  const auto ladder = CntBandStructure({19, 0}).ladder(4);
  ASSERT_EQ(ladder.subbands.size(), 4u);
  for (size_t i = 0; i < ladder.subbands.size(); ++i) {
    EXPECT_EQ(ladder.subbands[i].degeneracy, 4);
    if (i > 0) {
      EXPECT_GT(ladder.subbands[i].delta_ev, ladder.subbands[i - 1].delta_ev);
    }
  }
  // Semiconducting ladder ratio pattern 1 : 2 : 4.
  const double d1 = ladder.subbands[0].delta_ev;
  EXPECT_NEAR(ladder.subbands[1].delta_ev / d1, 2.0, 1e-9);
  EXPECT_NEAR(ladder.subbands[2].delta_ev / d1, 4.0, 1e-9);
}

TEST(CntBands, MetallicLadderStartsGapless) {
  const auto ladder = CntBandStructure({10, 10}).ladder(2);
  EXPECT_DOUBLE_EQ(ladder.subbands[0].delta_ev, 0.0);
  EXPECT_GT(ladder.subbands[1].delta_ev, 0.5);
}

TEST(CntBands, LadderFromGapMatchesRequest) {
  const auto ladder = make_cnt_ladder_from_gap(0.56, 3);
  EXPECT_NEAR(ladder.band_gap(), 0.56, 1e-12);
  EXPECT_NEAR(ladder.subbands[1].delta_ev, 0.56, 1e-12);
  EXPECT_NEAR(carbon::band::cnt_diameter_from_gap(0.56) * 1e9, 1.52, 0.03);
}

// Zone-folding validation: numeric minimization over the full graphene
// dispersion must agree with the analytic linearized ladder near K.
class NumericFold : public ::testing::TestWithParam<Chirality> {};

TEST_P(NumericFold, NumericGapMatchesAnalytic) {
  const CntBandStructure bs(GetParam());
  const double numeric = bs.band_gap_numeric();
  if (bs.is_metallic()) {
    EXPECT_NEAR(numeric, 0.0, 1e-3);
  } else {
    // Linearization around K is good to a few percent at d ~ 1-1.5 nm.
    EXPECT_NEAR(numeric / bs.band_gap(), 1.0, 0.06);
  }
}

INSTANTIATE_TEST_SUITE_P(Tubes, NumericFold,
                         ::testing::Values(Chirality{13, 0}, Chirality{19, 0},
                                           Chirality{10, 10}, Chirality{12, 0},
                                           Chirality{14, 4}, Chirality{16, 2}));

TEST(EnumerateChiralities, WindowAndMetallicFraction) {
  const auto chis = enumerate_chiralities(1.2e-9, 1.8e-9);
  ASSERT_GT(chis.size(), 10u);
  int metallic = 0;
  for (const auto& ch : chis) {
    EXPECT_GE(ch.diameter(), 1.2e-9);
    EXPECT_LE(ch.diameter(), 1.8e-9);
    metallic += ch.is_metallic() ? 1 : 0;
  }
  // Roughly one third of species are metallic.
  const double frac = static_cast<double>(metallic) / chis.size();
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.45);
}

TEST(CntBands, RejectsMetallicChannelRequest) {
  EXPECT_THROW((CntBandStructure{Chirality{-1, 0}}), carbon::phys::PreconditionError);
}

}  // namespace
