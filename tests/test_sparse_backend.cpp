// Dense/sparse backend agreement: every style of deck the library ships —
// linear networks, diode and FET operating points, the inverter VTC sweep,
// the SRAM cross-coupled pair, ring-oscillator transients, parsed netlists
// and generated ladders — must produce the same solution (to 1e-9) whether
// the Newton loop runs on the dense LU or the sparse symbolic-reuse LU,
// including the gmin- and source-stepping homotopy stamp paths.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "circuit/cells.h"
#include "device/alpha_power.h"
#include "device/linear_fet.h"
#include "spice/analyses.h"
#include "spice/circuit.h"
#include "spice/mna.h"
#include "spice/netlist_parser.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;
namespace cc = carbon::circuit;

sp::SolverOptions with_backend(sp::LinearBackend be,
                               const sp::SolverOptions& base = {}) {
  sp::SolverOptions o = base;
  o.backend = be;
  return o;
}

/// Solve the operating point with both backends and require agreement on
/// every unknown (node voltages and branch currents) to @p tol.
void expect_op_agreement(sp::Circuit& ckt, const sp::SolverOptions& base = {},
                         double tol = 1e-9) {
  const auto dense =
      sp::operating_point(ckt, with_backend(sp::LinearBackend::kDense, base));
  const auto sparse =
      sp::operating_point(ckt, with_backend(sp::LinearBackend::kSparse, base));
  ASSERT_EQ(dense.x.size(), sparse.x.size());
  EXPECT_EQ(dense.used_gmin_stepping, sparse.used_gmin_stepping);
  EXPECT_EQ(dense.used_source_stepping, sparse.used_source_stepping);
  for (size_t i = 0; i < dense.x.size(); ++i) {
    EXPECT_NEAR(dense.x[i], sparse.x[i], tol) << "unknown " << i;
  }
}

std::shared_ptr<dev::AlphaPowerModel> saturating_fet() {
  return std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
}

TEST(SparseBackend, LinearNetworks) {
  sp::Circuit divider;
  divider.add_vsource("v1", "a", "0", 10.0);
  divider.add_resistor("r1", "a", "b", 2e3);
  divider.add_resistor("r2", "b", "0", 3e3);
  expect_op_agreement(divider);

  sp::Circuit bridge;
  bridge.add_vsource("v1", "top", "0", 10.0);
  bridge.add_resistor("r1", "top", "l", 1e3);
  bridge.add_resistor("r2", "top", "r", 2e3);
  bridge.add_resistor("r3", "l", "0", 2e3);
  bridge.add_resistor("r4", "r", "0", 1e3);
  bridge.add_resistor("rb", "l", "r", 5e3);
  expect_op_agreement(bridge);
}

TEST(SparseBackend, NonlinearOperatingPoints) {
  sp::Circuit diode;
  diode.add_vsource("v1", "a", "0", 5.0);
  diode.add_resistor("r1", "a", "d", 1e3);
  diode.add_diode("d1", "d", "0", 1e-14, 1.0);
  expect_op_agreement(diode);

  sp::Circuit amp;
  amp.add_vsource("vdd", "vdd", "0", 1.0);
  amp.add_vsource("vg", "g", "0", 0.45);
  amp.add_resistor("rl", "vdd", "d", 2e3);
  amp.add_fet("m1", "d", "g", "0", saturating_fet());
  expect_op_agreement(amp);
}

TEST(SparseBackend, InverterVtcSweepAgrees) {
  auto model = saturating_fet();
  std::vector<double> sweep;
  for (int i = 0; i <= 40; ++i) sweep.push_back(i / 40.0);

  auto run = [&](sp::LinearBackend be) {
    auto bench = cc::make_inverter(model);
    return sp::dc_sweep(*bench.ckt, *bench.vin, sweep, {"out"},
                        with_backend(be));
  };
  const auto dense = run(sp::LinearBackend::kDense);
  const auto sparse = run(sp::LinearBackend::kSparse);
  ASSERT_EQ(dense.num_rows(), sparse.num_rows());
  for (int i = 0; i < dense.num_rows(); ++i) {
    EXPECT_NEAR(dense.at(i, 1), sparse.at(i, 1), 1e-9) << "vin " << dense.at(i, 0);
  }
}

TEST(SparseBackend, SramCrossCoupledPairAgrees) {
  // Hold-state 6T core: two cross-coupled inverters (access FETs off).
  auto n_model = saturating_fet();
  auto p_model = std::make_shared<dev::PTypeMirror>(n_model);
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  ckt.add_fet("mn1", "q", "qb", "0", n_model);
  ckt.add_fet("mp1", "q", "qb", "vdd", p_model);
  ckt.add_fet("mn2", "qb", "q", "0", n_model);
  ckt.add_fet("mp2", "qb", "q", "vdd", p_model);
  // Small skew source nudges the pair off the metastable point the same
  // way for both backends.
  ckt.add_isource("iskew", "0", "q", sp::dc(1e-7));
  expect_op_agreement(ckt);
}

TEST(SparseBackend, RingOscillatorTransientAgrees) {
  auto model = saturating_fet();
  cc::CellOptions copt;
  copt.c_load = 5e-15;

  auto run = [&](sp::LinearBackend be) {
    auto bench = cc::make_ring_oscillator(model, 5, copt);
    sp::TransientOptions topt;
    topt.t_stop = 50e-12;  // short horizon: the ring amplifies noise later
    topt.dt = 0.5e-12;
    topt.solver = with_backend(be);
    return sp::transient(*bench.ckt, topt, {"n0", "n1"});
  };
  const auto dense = run(sp::LinearBackend::kDense);
  const auto sparse = run(sp::LinearBackend::kSparse);
  ASSERT_EQ(dense.num_rows(), sparse.num_rows());
  // The ring is chaotic: the two backends' rounding differences (different
  // elimination order) grow exponentially with simulated time, so even a
  // correct pair of trajectories only agrees to amplified-noise level, not
  // to solver tolerance.  1e-7 over this horizon corresponds to ~1e-16
  // initial rounding noise.
  for (int i = 0; i < dense.num_rows(); ++i) {
    EXPECT_NEAR(dense.at(i, 1), sparse.at(i, 1), 1e-7) << "t " << dense.at(i, 0);
    EXPECT_NEAR(dense.at(i, 2), sparse.at(i, 2), 1e-7) << "t " << dense.at(i, 0);
  }
}

TEST(SparseBackend, ParsedNetlistDecksAgree) {
  {
    const auto ckt = sp::parse_netlist(R"(
v1 a 0 10
r1 a b 2k
r2 b 0 3k
d1 b 0 is=1e-14
)");
    expect_op_agreement(*ckt);
  }
  {
    sp::ModelRegistry models;
    models["nfet"] = saturating_fet();
    models["pfet"] = std::make_shared<dev::PTypeMirror>(models["nfet"]);
    const auto ckt = sp::parse_netlist(R"(
vdd vdd 0 1.0
vin in  0 0.5
mn  out in 0   nfet
mp  out in vdd pfet
c1  out 0 10f
)",
                                       models);
    expect_op_agreement(*ckt);
  }
}

TEST(SparseBackend, GeneratedLaddersAgreeAndScale) {
  // Dense vs sparse on a mid-size nonlinear ladder.
  {
    auto bench = cc::make_diode_ladder(120, 100.0, 1e-14, 1.0);
    expect_op_agreement(*bench.ckt);
  }
  // Large RC ladder, sparse only: DC steady state is analytic (no current
  // flows, every node sits at the source voltage).
  {
    auto bench = cc::make_rc_ladder(2000, 1e3, 1e-15, 0.75);
    const auto sol = sp::operating_point(
        *bench.ckt, with_backend(sp::LinearBackend::kSparse));
    EXPECT_NEAR(sp::node_voltage(*bench.ckt, sol, bench.out_node), 0.75,
                1e-9);
    EXPECT_NEAR(sp::node_voltage(*bench.ckt, sol, "n1"), 0.75, 1e-9);
  }
}

TEST(SparseBackend, HomotopyRungStampsAgree) {
  // Drive newton_solve directly across the gmin- and source-stepping
  // ladders: the fallback stamp paths (gmin shunts, scaled sources) must
  // agree between backends rung by rung.
  auto build = [&](sp::Circuit& ckt) {
    ckt.add_vsource("vdd", "vdd", "0", 1.0);
    ckt.add_vsource("vg", "g", "0", 0.45);
    ckt.add_resistor("rl", "vdd", "d", 2e3);
    ckt.add_fet("m1", "d", "g", "0", saturating_fet());
    ckt.add_diode("dclamp", "d", "0", 1e-15);
    ckt.assign_branches();
  };
  sp::Circuit dense_ckt, sparse_ckt;
  build(dense_ckt);
  build(sparse_ckt);

  const sp::SolverOptions dense_opts =
      with_backend(sp::LinearBackend::kDense);
  const sp::SolverOptions sparse_opts =
      with_backend(sp::LinearBackend::kSparse);
  sp::NewtonWorkspace dense_ws, sparse_ws;
  const sp::StampContext proto;

  for (const double gmin : {1e-3, 1e-6, 1e-12}) {
    for (const double scale : {0.3, 0.7, 1.0}) {
      std::vector<double> xd(dense_ckt.num_unknowns(), 0.0);
      std::vector<double> xs(sparse_ckt.num_unknowns(), 0.0);
      int iters_d = 0, iters_s = 0;
      ASSERT_TRUE(sp::newton_solve(dense_ckt, xd, dense_opts, gmin, scale,
                                   proto, dense_ws, &iters_d));
      ASSERT_TRUE(sp::newton_solve(sparse_ckt, xs, sparse_opts, gmin, scale,
                                   proto, sparse_ws, &iters_s));
      ASSERT_EQ(xd.size(), xs.size());
      for (size_t i = 0; i < xd.size(); ++i) {
        EXPECT_NEAR(xd[i], xs[i], 1e-9)
            << "gmin " << gmin << " scale " << scale << " unknown " << i;
      }
    }
  }
}

TEST(SparseBackend, AutoSelectsByUnknownCount) {
  sp::SolverOptions opts;  // kAuto
  {
    sp::Circuit small;
    small.add_vsource("v1", "a", "0", 1.0);
    small.add_resistor("r1", "a", "0", 1e3);
    sp::NewtonWorkspace ws;
    sp::operating_point(small, opts, nullptr, &ws);
    EXPECT_FALSE(ws.mna.is_sparse());
  }
  {
    auto bench = cc::make_rc_ladder(2 * opts.sparse_threshold, 1e3, 1e-15);
    sp::NewtonWorkspace ws;
    sp::operating_point(*bench.ckt, opts, nullptr, &ws);
    EXPECT_TRUE(ws.mna.is_sparse());
  }
}

TEST(SparseBackend, SymbolicAnalysisRunsOncePerTopology) {
  // A transient re-stamps and re-factors every Newton iteration of every
  // step; the sparse symbolic analysis must happen exactly once.
  auto bench = cc::make_rc_ladder(100, 1e3, 1e-12, 1.0);
  bench.vin->set_wave(sp::pulse(0.0, 1.0, 1e-12, 1e-12, 1e-12, 1e-9, 2e-9));
  sp::TransientOptions topt;
  topt.t_stop = 200e-12;
  topt.dt = 2e-12;
  topt.solver = with_backend(sp::LinearBackend::kSparse);

  // transient() owns its workspace; replicate its loop shape via repeated
  // operating points on one workspace instead.
  sp::NewtonWorkspace ws;
  std::vector<double> warm;
  for (int i = 0; i < 20; ++i) {
    bench.vin->set_wave(sp::dc(i * 0.05));
    const auto sol = sp::operating_point(*bench.ckt, topt.solver,
                                         warm.empty() ? nullptr : &warm, &ws);
    warm = sol.x;
  }
  EXPECT_EQ(ws.mna.analyze_count(), 1);

  // And the transient itself still matches the pulse end state.
  const auto table = sp::transient(*bench.ckt, topt, {bench.out_node});
  EXPECT_GT(table.num_rows(), 10);
}

TEST(SparseBackend, WorkspaceNotFooledByCircuitAddressReuse) {
  // Two stack-local circuits built back to back typically reuse the same
  // address and here have identical element/unknown counts.  The cached
  // slot tables must key on the circuit's unique id, not its address —
  // otherwise the second solve stamps through the first topology's
  // footprint and silently returns wrong voltages.
  sp::NewtonWorkspace ws;
  const auto solve_b = [&](bool r2_to_ground) {
    sp::Circuit ckt;
    ckt.add_vsource("v1", "a", "0", 1.0);
    ckt.add_resistor("r1", "a", "b", 1e3);
    ckt.add_resistor("r2", r2_to_ground ? "b" : "a", "0", 1e3);
    const auto sol = sp::operating_point(ckt, {}, nullptr, &ws);
    return sp::node_voltage(ckt, sol, "b");
  };
  EXPECT_NEAR(solve_b(true), 0.5, 1e-12);   // divider: b = 1/2
  EXPECT_NEAR(solve_b(false), 1.0, 1e-12);  // b floats at a's potential
}

TEST(SparseBackend, SharedWorkspaceAcrossTopologies) {
  // One workspace reused for circuits of different size/topology must
  // rebuild its pattern transparently (and still be correct).
  sp::NewtonWorkspace ws;
  const sp::SolverOptions opts = with_backend(sp::LinearBackend::kSparse);

  sp::Circuit small;
  small.add_vsource("v1", "a", "0", 10.0);
  small.add_resistor("r1", "a", "b", 2e3);
  small.add_resistor("r2", "b", "0", 3e3);
  const auto s1 = sp::operating_point(small, opts, nullptr, &ws);
  EXPECT_NEAR(sp::node_voltage(small, s1, "b"), 6.0, 1e-9);

  auto ladder = cc::make_diode_ladder(50, 100.0);
  const auto s2 = sp::operating_point(*ladder.ckt, opts, nullptr, &ws);
  EXPECT_GT(sp::node_voltage(*ladder.ckt, s2, ladder.out_node), 0.0);

  const auto s3 = sp::operating_point(small, opts, nullptr, &ws);
  EXPECT_NEAR(sp::node_voltage(small, s3, "b"), 6.0, 1e-9);
}

}  // namespace
