// Transient engine: RC networks with analytic solutions, integration-
// method behaviour, waveform sources and nonlinear transients.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "device/alpha_power.h"
#include "spice/analyses.h"
#include "spice/circuit.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;

double value_at(const carbon::phys::DataTable& tr, double t,
                int col = 1) {
  for (int i = 0; i < tr.num_rows(); ++i) {
    if (tr.at(i, 0) >= t) return tr.at(i, col);
  }
  return tr.at(tr.num_rows() - 1, col);
}

TEST(SpiceTran, RcChargingCurve) {
  sp::Circuit ckt;
  ckt.add_vsource("v1", "a", "0",
                  sp::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 2.0));
  ckt.add_resistor("r1", "a", "b", 1e3);
  ckt.add_capacitor("c1", "b", "0", 1e-9);  // tau = 1 us
  sp::TransientOptions opt;
  opt.t_stop = 5e-6;
  opt.dt = 1e-8;
  const auto tr = sp::transient(ckt, opt, {"b"});
  EXPECT_NEAR(value_at(tr, 1e-6), 1.0 - std::exp(-1.0), 5e-3);
  EXPECT_NEAR(value_at(tr, 3e-6), 1.0 - std::exp(-3.0), 5e-3);
  EXPECT_NEAR(value_at(tr, 5e-6), 1.0 - std::exp(-5.0), 5e-3);
}

TEST(SpiceTran, BackwardEulerAlsoAccurateWithSmallStep) {
  sp::Circuit ckt;
  ckt.add_vsource("v1", "a", "0",
                  sp::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 2.0));
  ckt.add_resistor("r1", "a", "b", 1e3);
  ckt.add_capacitor("c1", "b", "0", 1e-9);
  sp::TransientOptions opt;
  opt.t_stop = 2e-6;
  opt.dt = 2e-9;
  opt.trapezoidal = false;
  const auto tr = sp::transient(ckt, opt, {"b"});
  EXPECT_NEAR(value_at(tr, 1e-6), 1.0 - std::exp(-1.0), 2e-3);
}

TEST(SpiceTran, CapacitorInitialConditionRespected) {
  sp::Circuit ckt;
  ckt.add_resistor("r1", "b", "0", 1e3);
  ckt.add_capacitor("c1", "b", "0", 1e-9, /*v_init=*/0.0);
  ckt.add_isource("i1", "0", "b", sp::dc(1e-3));  // 1 mA into b: settles 1 V
  sp::TransientOptions opt;
  opt.t_stop = 6e-6;
  opt.dt = 2e-8;
  const auto tr = sp::transient(ckt, opt, {"b"});
  EXPECT_NEAR(value_at(tr, 6e-6), 1.0, 0.01);
}

TEST(SpiceTran, PwlSourceFollowed) {
  sp::Circuit ckt;
  ckt.add_vsource("v1", "a", "0",
                  sp::pwl({{0.0, 0.0}, {1e-6, 2.0}, {2e-6, 1.0}}));
  ckt.add_resistor("r1", "a", "0", 1e3);
  sp::TransientOptions opt;
  opt.t_stop = 2e-6;
  opt.dt = 1e-8;
  const auto tr = sp::transient(ckt, opt, {"a"});
  EXPECT_NEAR(value_at(tr, 0.5e-6), 1.0, 0.02);
  EXPECT_NEAR(value_at(tr, 2e-6), 1.0, 0.02);
}

TEST(SpiceTran, SinSourceAmplitudeAndPeriod) {
  sp::Circuit ckt;
  ckt.add_vsource("v1", "a", "0", sp::sine(0.5, 0.5, 1e6));
  ckt.add_resistor("r1", "a", "0", 1e3);
  sp::TransientOptions opt;
  opt.t_stop = 2e-6;
  opt.dt = 2e-9;
  const auto tr = sp::transient(ckt, opt, {"a"});
  // Peak near t = 0.25 us, trough near 0.75 us.
  EXPECT_NEAR(value_at(tr, 0.25e-6), 1.0, 0.02);
  EXPECT_NEAR(value_at(tr, 0.75e-6), 0.0, 0.02);
}

TEST(SpiceTran, SupplyCurrentRecorded) {
  sp::Circuit ckt;
  auto* vdd = ckt.add_vsource("vdd", "a", "0", 2.0);
  ckt.add_resistor("r1", "a", "0", 1e3);
  sp::TransientOptions opt;
  opt.t_stop = 1e-7;
  opt.dt = 1e-9;
  const auto tr = sp::transient(ckt, opt, {"a"}, {vdd});
  // Column "i(vdd)" must be ~ -2 mA throughout.
  const int icol = tr.column_index("i(vdd)");
  for (int i = 0; i < tr.num_rows(); ++i) {
    EXPECT_NEAR(tr.at(i, icol), -2e-3, 1e-6);
  }
}

TEST(SpiceTran, InverterDischargesLoad) {
  auto m = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  auto p = std::make_shared<dev::PTypeMirror>(m);
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  ckt.add_vsource("vin", "in", "0",
                  sp::pulse(0.0, 1.0, 1e-10, 2e-11, 2e-11, 1e-9, 2e-9));
  ckt.add_fet("mn", "out", "in", "0", m);
  ckt.add_fet("mp", "out", "in", "vdd", p);
  ckt.add_capacitor("cl", "out", "0", 10e-15);
  sp::TransientOptions opt;
  opt.t_stop = 1e-9;
  opt.dt = 1e-12;
  const auto tr = sp::transient(ckt, opt, {"in", "out"});
  // Starts high (input low), ends low (input high).
  EXPECT_GT(tr.at(0, 2), 0.9);
  EXPECT_LT(value_at(tr, 1e-9, 2), 0.1);
}

TEST(SpiceTran, InvalidOptionsRejected) {
  sp::Circuit ckt;
  ckt.add_resistor("r1", "a", "0", 1.0);
  sp::TransientOptions opt;
  opt.t_stop = 0.0;
  EXPECT_THROW(sp::transient(ckt, opt, {"a"}),
               carbon::phys::PreconditionError);
}

TEST(SpiceTran, EnergyConservationRcCharge) {
  // Charging a cap through a resistor from a step: the source delivers
  // C V^2 (half stored, half dissipated).
  sp::Circuit ckt;
  auto* v1 = ckt.add_vsource(
      "v1", "a", "0", sp::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 1.0, 2.0));
  ckt.add_resistor("r1", "a", "b", 1e3);
  ckt.add_capacitor("c1", "b", "0", 1e-9);
  sp::TransientOptions opt;
  opt.t_stop = 10e-6;  // 10 tau: fully charged
  opt.dt = 1e-8;
  const auto tr = sp::transient(ckt, opt, {"b"}, {v1});
  double energy = 0.0;
  const int icol = tr.column_index("i(v1)");
  for (int i = 1; i < tr.num_rows(); ++i) {
    const double dt = tr.at(i, 0) - tr.at(i - 1, 0);
    energy += -0.5 * (tr.at(i, icol) + tr.at(i - 1, icol)) * 1.0 * dt;
  }
  EXPECT_NEAR(energy, 1e-9, 5e-11);  // C V^2 = 1 nJ
}

}  // namespace
