// Convergence robustness: the escalation ladder (Newton -> gmin ramp ->
// source stepping -> pseudo-transient continuation), structured failure
// diagnostics on pathological decks, and the cold ring-oscillator operating
// points the seed engine could not crack without a VDD power-up ramp.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "circuit/cells.h"
#include "device/alpha_power.h"
#include "device/ivmodel.h"
#include "spice/analyses.h"
#include "spice/circuit.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;
namespace cc = carbon::circuit;

using Cause = sp::SolveFailure::Cause;

sp::SolverOptions newton_only() {
  sp::SolverOptions o;
  o.allow_gmin_stepping = false;
  o.allow_source_stepping = false;
  o.allow_pseudo_transient = false;
  return o;
}

std::shared_ptr<dev::AlphaPowerModel> fig2_model() {
  return std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
}

/// Capture the SolveFailure a deck must produce.  Fails the test (and
/// returns a default-constructed report) when the solve unexpectedly
/// succeeds.
sp::SolveFailure expect_failure(sp::Circuit& ckt, const sp::SolverOptions& o,
                                const std::vector<double>* x0 = nullptr) {
  try {
    sp::operating_point(ckt, o, x0);
  } catch (const sp::SolveFailureError& e) {
    return e.failure();
  }
  ADD_FAILURE() << "operating_point unexpectedly converged";
  return {};
}

// ---------------------------------------------------------------------------
// Pathological decks -> structured SolveFailure
// ---------------------------------------------------------------------------

TEST(SolveFailureDiag, FloatingNodeNamesItself) {
  // "float" hangs off a capacitor only: in DC its row is identically zero.
  sp::Circuit ckt;
  ckt.add_vsource("v1", "a", "0", 1.0);
  ckt.add_resistor("r1", "a", "b", 1e3);
  ckt.add_resistor("r2", "b", "0", 1e3);
  ckt.add_capacitor("cf", "b", "float", 1e-12);

  const auto f = expect_failure(ckt, newton_only());
  EXPECT_EQ(f.stage, sp::SolveStage::kNewton);
  EXPECT_EQ(f.cause, Cause::kSingular);
  EXPECT_NE(f.culprit.find("float"), std::string::npos) << f.to_string();
  EXPECT_NE(f.to_string().find("singular"), std::string::npos);
}

TEST(SolveFailureDiag, FloatingNodeSurvivesTheWholeLadder) {
  // A structurally singular deck defeats every stage (the pseudo-transient
  // shunts mask it, but its verification Newton re-exposes the bare
  // Jacobian).  The report must keep the stage-1 attribution.
  sp::Circuit ckt;
  ckt.add_vsource("v1", "a", "0", 1.0);
  ckt.add_resistor("r1", "a", "0", 1e3);
  ckt.add_capacitor("cf", "a", "float", 1e-12);

  const auto f = expect_failure(ckt, sp::SolverOptions{});
  EXPECT_EQ(f.stage, sp::SolveStage::kPseudoTransient);
  EXPECT_EQ(f.cause, Cause::kSingular);
  EXPECT_NE(f.culprit.find("float"), std::string::npos) << f.to_string();
}

TEST(SolveFailureDiag, ZeroConductanceRowNamesTheIsland) {
  // A current source into a node with no DC path to anywhere: the KCL row
  // has a right-hand side but no conductance entries.
  sp::Circuit ckt;
  ckt.add_isource("i1", "0", "island", sp::dc(1e-3));
  ckt.add_capacitor("c1", "island", "0", 1e-12);
  ckt.add_vsource("v1", "a", "0", 1.0);
  ckt.add_resistor("r1", "a", "0", 1e3);

  const auto f = expect_failure(ckt, newton_only());
  EXPECT_EQ(f.cause, Cause::kSingular);
  EXPECT_NE(f.culprit.find("island"), std::string::npos) << f.to_string();
}

/// Model that goes NaN above a gate threshold — a stand-in for a compact
/// model leaving its fitted range.
struct NanAboveThreshold final : dev::IDeviceModel {
  std::string nm = "nan-model";
  double drain_current(double vgs, double vds) const override {
    if (vgs > 0.3) return std::numeric_limits<double>::quiet_NaN();
    return 1e-5 * vgs * vds;
  }
  const std::string& name() const override { return nm; }
};

TEST(SolveFailureDiag, NanModelRejectedWithDeviceName) {
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  ckt.add_vsource("vin", "in", "0", 0.9);  // bias into the NaN region
  ckt.add_fet("mbad", "out", "in", "0",
              std::make_shared<NanAboveThreshold>());
  ckt.add_resistor("rl", "vdd", "out", 1e4);

  const auto f = expect_failure(ckt, newton_only());
  EXPECT_EQ(f.cause, Cause::kNonFinite);
  EXPECT_NE(f.culprit.find("mbad"), std::string::npos) << f.to_string();
  // Never silent garbage: the ladder variant must also fail cleanly.
  const auto f2 = expect_failure(ckt, sp::SolverOptions{});
  EXPECT_EQ(f2.cause, Cause::kNonFinite);
  EXPECT_NE(f2.culprit.find("mbad"), std::string::npos);
}

TEST(SolveFailureDiag, ExhaustedNewtonReportsWorstNodes) {
  // An adversarial start far outside any basin, fallbacks disabled: the
  // report must rank the worst update/tolerance nodes.  (The 51-stage
  // ring is genuinely outside plain Newton's reach from alternating
  // +-12 V rails; small rings walk back within the iteration budget.)
  cc::CellOptions copt;
  copt.c_load = 5e-15;
  auto bench = cc::make_ring_oscillator(fig2_model(), 51, copt);
  sp::Circuit& ckt = *bench.ckt;
  ckt.assign_branches();
  std::vector<double> bad(ckt.num_unknowns(), 0.0);
  bad[ckt.find_node("vdd") - 1] = 1.0;
  for (int s = 0; s < 51; ++s)
    bad[ckt.find_node("n" + std::to_string(s)) - 1] = (s % 2) ? 12.0 : -12.0;

  const auto f = expect_failure(ckt, newton_only(), &bad);
  EXPECT_EQ(f.stage, sp::SolveStage::kNewton);
  EXPECT_EQ(f.cause, Cause::kMaxIterations);
  ASSERT_FALSE(f.worst_nodes.empty());
  EXPECT_GE(f.worst_nodes.front().ratio, 1.0);
  for (size_t i = 1; i < f.worst_nodes.size(); ++i)
    EXPECT_LE(f.worst_nodes[i].ratio, f.worst_nodes[i - 1].ratio);
  EXPECT_NE(f.to_string().find("worst nodes"), std::string::npos);
}

/// Nearly-ideal threshold switch: the current jumps 0 -> 1 mA across ~1 mV
/// at v = 0.5.  Diode-connected against a 1 kOhm load line that crosses in
/// the middle of the jump, Newton's flat-region tangents land the iterate
/// alternately on either side — the textbook two-cycle.
struct ThresholdSwitch final : dev::IDeviceModel {
  std::string nm = "step";
  double drain_current(double vgs, double /*vds*/) const override {
    return 0.5e-3 * (1.0 + std::tanh((vgs - 0.5) / 1e-3));
  }
  const std::string& name() const override { return nm; }
};

sp::Circuit make_limit_cycle_deck() {
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  ckt.add_resistor("rl", "vdd", "sw", 1e3);
  ckt.add_fet("mstep", "sw", "sw", "0", std::make_shared<ThresholdSwitch>());
  return ckt;
}

TEST(SolveFailureDiag, LimitCycleFlagsOscillatingNode) {
  sp::Circuit ckt = make_limit_cycle_deck();
  const auto f = expect_failure(ckt, newton_only());
  EXPECT_EQ(f.cause, Cause::kMaxIterations);
  ASSERT_FALSE(f.oscillating_nodes.empty());
  EXPECT_EQ(f.oscillating_nodes.front(), "sw");
  EXPECT_NE(f.to_string().find("oscillating"), std::string::npos);
}

TEST(Ladder, GminSteppingRescuesTheLimitCycleDeck) {
  // The same deck plain Newton limit-cycles on is cracked by the gmin ramp
  // (the shunt flattens the jump, the descent walks it back in).
  sp::Circuit ckt = make_limit_cycle_deck();
  const auto sol = sp::operating_point(ckt);
  EXPECT_EQ(sol.stats.stage, sp::SolveStage::kGminStepping);
  EXPECT_TRUE(sol.stats.used_gmin_stepping);
  EXPECT_NEAR(sp::node_voltage(ckt, sol, "sw"), 0.5, 5e-3);
}

// ---------------------------------------------------------------------------
// The escalation ladder on the ring oscillator
// ---------------------------------------------------------------------------

/// 51-stage ring bench plus an adversarial start (alternating +-12 V rails)
/// that plain Newton cannot recover from.
struct RingFixture {
  cc::InverterBench bench;
  std::vector<double> adversarial;

  explicit RingFixture(int stages) {
    cc::CellOptions copt;
    copt.c_load = 5e-15;
    bench = cc::make_ring_oscillator(fig2_model(), stages, copt);
    sp::Circuit& ckt = *bench.ckt;
    ckt.assign_branches();
    adversarial.assign(ckt.num_unknowns(), 0.0);
    adversarial[ckt.find_node("vdd") - 1] = 1.0;
    for (int s = 0; s < stages; ++s)
      adversarial[ckt.find_node("n" + std::to_string(s)) - 1] =
          (s % 2) ? 12.0 : -12.0;
  }
};

void expect_ring_solved(const sp::Circuit& ckt, const sp::Solution& sol,
                        int stages) {
  // Every stage node sits at the shared metastable VM of the symmetric
  // inverter (the DC kick current is zero), here 0.5 V.
  for (int s = 0; s < stages; ++s)
    EXPECT_NEAR(sp::node_voltage(ckt, sol, "n" + std::to_string(s)), 0.5,
                1e-4);
}

TEST(Ladder, RingColdOpConvergesPlainNewton51) {
  RingFixture f(51);
  const auto sol = sp::operating_point(*f.bench.ckt);
  // After the sparse-refactor pivot-quality fix the cold metastable OP is
  // a plain Newton solve; any fallback firing here is a regression.
  EXPECT_EQ(sol.stats.stage, sp::SolveStage::kNewton);
  EXPECT_FALSE(sol.stats.used_gmin_stepping);
  EXPECT_FALSE(sol.stats.used_source_stepping);
  EXPECT_FALSE(sol.stats.used_pseudo_transient);
  EXPECT_LE(sol.stats.iterations, 25);
  expect_ring_solved(*f.bench.ckt, sol, 51);
}

TEST(Ladder, RingColdOpConvergesPlainNewton101) {
  RingFixture f(101);
  const auto sol = sp::operating_point(*f.bench.ckt);
  EXPECT_EQ(sol.stats.stage, sp::SolveStage::kNewton);
  EXPECT_FALSE(sol.stats.used_gmin_stepping);
  EXPECT_FALSE(sol.stats.used_source_stepping);
  EXPECT_FALSE(sol.stats.used_pseudo_transient);
  EXPECT_LE(sol.stats.iterations, 25);
  expect_ring_solved(*f.bench.ckt, sol, 101);
}

TEST(Ladder, AdversarialStartFallsBackToGminStepping) {
  RingFixture f(51);
  const auto sol =
      sp::operating_point(*f.bench.ckt, {}, &f.adversarial);
  EXPECT_EQ(sol.stats.stage, sp::SolveStage::kGminStepping);
  EXPECT_TRUE(sol.stats.used_gmin_stepping);
  EXPECT_GT(sol.stats.gmin_rungs, 0);
  expect_ring_solved(*f.bench.ckt, sol, 51);
}

TEST(Ladder, SourceSteppingCracksItWithGminDisabled) {
  RingFixture f(51);
  sp::SolverOptions o;
  o.allow_gmin_stepping = false;
  const auto sol = sp::operating_point(*f.bench.ckt, o, &f.adversarial);
  EXPECT_EQ(sol.stats.stage, sp::SolveStage::kSourceStepping);
  EXPECT_TRUE(sol.stats.used_source_stepping);
  EXPECT_GT(sol.stats.source_rungs, 0);
  expect_ring_solved(*f.bench.ckt, sol, 51);
}

TEST(Ladder, PseudoTransientIsTheLastResortAndWorks) {
  RingFixture f(51);
  sp::SolverOptions o;
  o.allow_gmin_stepping = false;
  o.allow_source_stepping = false;
  const auto sol = sp::operating_point(*f.bench.ckt, o, &f.adversarial);
  EXPECT_EQ(sol.stats.stage, sp::SolveStage::kPseudoTransient);
  EXPECT_TRUE(sol.stats.used_pseudo_transient);
  EXPECT_GT(sol.stats.ptc_steps, 0);
  expect_ring_solved(*f.bench.ckt, sol, 51);
}

// ---------------------------------------------------------------------------
// Transient dt_min recovery: re-entering the ladder mid-run
// ---------------------------------------------------------------------------

void run_recovery_transient(bool adaptive) {
  // The threshold switch again, now with the supply snapping 0.2 -> 0.9 V
  // across 0.1 fs.  The switching node has no capacitor, so shrinking dt
  // cannot soften the jump: Newton limit-cycles at every step size, the
  // engine bottoms out at dt_min and must re-enter the escalation ladder
  // from the last accepted state instead of aborting.
  sp::Circuit ckt;
  ckt.add_vsource(
      "vdd", "vdd", "0",
      sp::pwl({{0.0, 0.2}, {5e-7, 0.2}, {5.0000000001e-7, 0.9}, {1e-6, 0.9}}));
  ckt.add_resistor("rl", "vdd", "sw", 1e3);
  ckt.add_fet("mstep", "sw", "sw", "0", std::make_shared<ThresholdSwitch>());

  sp::TransientOptions o;
  o.t_stop = 1e-6;
  o.dt = 1e-8;
  o.adaptive = adaptive;
  sp::TransientStats st;
  o.stats = &st;
  const auto tbl = sp::transient(ckt, o, {"sw"});
  EXPECT_GE(st.orchestrator_recoveries, 1);
  EXPECT_GE(st.steps_rejected_newton, 1);
  // After recovery the run continues to the post-jump operating point
  // (load line crosses in the middle of the switch's 1 mV jump).
  EXPECT_NEAR(tbl.column("v(sw)").back(), 0.5, 5e-3);
}

TEST(TransientRecovery, FixedStepReentersTheLadderAtDtMin) {
  run_recovery_transient(false);
}

TEST(TransientRecovery, AdaptiveReentersTheLadderAtDtMin) {
  run_recovery_transient(true);
}

// ---------------------------------------------------------------------------
// Bistable decks: continuation picks the state the warm start selects
// ---------------------------------------------------------------------------

TEST(Ladder, BistableLatchBothOperatingPoints) {
  auto n_model = fig2_model();
  auto p_model = std::make_shared<dev::PTypeMirror>(n_model);
  sp::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", 1.0);
  ckt.add_fet("mn1", "q", "qb", "0", n_model);
  ckt.add_fet("mp1", "q", "qb", "vdd", p_model);
  ckt.add_fet("mn2", "qb", "q", "0", n_model);
  ckt.add_fet("mp2", "qb", "q", "vdd", p_model);
  ckt.add_capacitor("cq", "q", "0", 10e-15);
  ckt.add_capacitor("cqb", "qb", "0", 10e-15);
  ckt.assign_branches();

  const int n = ckt.num_unknowns();
  const int iq = ckt.find_node("q") - 1;
  const int iqb = ckt.find_node("qb") - 1;
  const int ivdd = ckt.find_node("vdd") - 1;

  std::vector<double> hi(n, 0.0), lo(n, 0.0);
  hi[ivdd] = lo[ivdd] = 1.0;
  hi[iq] = 1.0;   // seed q high
  lo[iqb] = 1.0;  // seed q low

  const auto sol_hi = sp::operating_point(ckt, {}, &hi);
  EXPECT_NEAR(sp::node_voltage(ckt, sol_hi, "q"), 1.0, 1e-3);
  EXPECT_NEAR(sp::node_voltage(ckt, sol_hi, "qb"), 0.0, 1e-3);

  const auto sol_lo = sp::operating_point(ckt, {}, &lo);
  EXPECT_NEAR(sp::node_voltage(ckt, sol_lo, "q"), 0.0, 1e-3);
  EXPECT_NEAR(sp::node_voltage(ckt, sol_lo, "qb"), 1.0, 1e-3);

  // Cold start lands on the (valid) metastable symmetric point — the
  // orchestrator must not manufacture asymmetry out of nothing.
  const auto sol_cold = sp::operating_point(ckt);
  EXPECT_NEAR(sp::node_voltage(ckt, sol_cold, "q"),
              sp::node_voltage(ckt, sol_cold, "qb"), 1e-6);
}

}  // namespace
