// Coverage of the small supporting pieces: units, gate-stack
// electrostatics, waveforms, the claim scorer and RF metric plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/report.h"
#include "device/electrostatics.h"
#include "phys/constants.h"
#include "phys/require.h"
#include "phys/units.h"
#include "spice/waveform.h"

namespace {

namespace phys = carbon::phys;
namespace dev = carbon::device;
namespace sp = carbon::spice;
namespace core = carbon::core;

TEST(Units, RoundTrips) {
  EXPECT_DOUBLE_EQ(phys::nm(1.5), 1.5e-9);
  EXPECT_DOUBLE_EQ(phys::to_nm(phys::nm(2.7)), 2.7);
  EXPECT_DOUBLE_EQ(phys::ua(3.0), 3e-6);
  EXPECT_DOUBLE_EQ(phys::to_ua(phys::ua(8.0)), 8.0);
  EXPECT_DOUBLE_EQ(phys::fF(10.0), 1e-14);
  EXPECT_DOUBLE_EQ(phys::kohm(6.45), 6450.0);
  EXPECT_NEAR(phys::joule_to_ev(phys::ev_to_joule(0.56)), 0.56, 1e-15);
}

TEST(Units, CurrentPerWidth) {
  // 2 uA through a 1 nm wide channel = 2 mA/um.
  EXPECT_NEAR(phys::to_ma_per_um(2e-6, 1e-9), 2.0, 1e-12);
  EXPECT_NEAR(phys::to_ua_per_um(2e-6, 1e-6), 2.0, 1e-12);
}

TEST(Constants, ThermalVoltageAt300K) {
  EXPECT_NEAR(phys::thermal_voltage(300.0), 0.02585, 1e-4);
}

TEST(GateStack, CoaxialCapacitanceFormula) {
  dev::GateStack g;
  g.geometry = dev::GateGeometry::kGateAllAround;
  g.t_ox = 3e-9;
  g.eps_r = 16.0;
  g.diameter = 1.5e-9;
  const double expected = 2.0 * M_PI * phys::kEpsilon0 * 16.0 /
                          std::log((0.75e-9 + 3e-9) / 0.75e-9);
  EXPECT_NEAR(g.insulator_capacitance(), expected, 1e-15);
}

TEST(GateStack, GeometryOrderingOfControl) {
  dev::GateStack gaa, omega, planar, back;
  gaa.geometry = dev::GateGeometry::kGateAllAround;
  omega.geometry = dev::GateGeometry::kOmega;
  planar.geometry = dev::GateGeometry::kPlanarTop;
  back.geometry = dev::GateGeometry::kPlanarBack;
  EXPECT_GT(gaa.alpha_g(), omega.alpha_g());
  EXPECT_GT(omega.alpha_g(), planar.alpha_g());
  EXPECT_GT(planar.alpha_g(), back.alpha_g());
  EXPECT_LT(gaa.alpha_d(), back.alpha_d());
  EXPECT_GT(gaa.insulator_capacitance(), omega.insulator_capacitance());
}

TEST(GateStack, ThinnerOxideMoreCapacitance) {
  dev::GateStack thin, thick;
  thin.t_ox = 2e-9;
  thick.t_ox = 8e-9;
  EXPECT_GT(thin.insulator_capacitance(), thick.insulator_capacitance());
}

TEST(ScaleLength, CntBeatsIIIV) {
  // Single-atomic-layer channel: tiny scale length.
  const double cnt = dev::scale_length(1.0, 16.0, 1.5e-9, 3e-9);
  const double iiiv = dev::scale_length(15.0, 9.0, 10e-9, 2.5e-9);
  EXPECT_LT(cnt, 1e-9);
  EXPECT_GT(iiiv / cnt, 3.0);
}

TEST(Waveforms, PulseTimingExact) {
  sp::PulseWave p(0.0, 1.0, 1e-9, 1e-10, 1e-10, 2e-9, 10e-9);
  EXPECT_DOUBLE_EQ(p.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.value(1e-9), 0.0);          // delay edge
  EXPECT_NEAR(p.value(1.05e-9), 0.5, 1e-9);      // mid rise
  EXPECT_DOUBLE_EQ(p.value(2e-9), 1.0);          // plateau
  EXPECT_NEAR(p.value(3.15e-9), 0.5, 1e-9);      // mid fall
  EXPECT_DOUBLE_EQ(p.value(5e-9), 0.0);          // off
  EXPECT_DOUBLE_EQ(p.value(12e-9), 1.0);         // periodic repeat
}

TEST(Waveforms, PwlClampsOutsideRange) {
  sp::PwlWave w({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_DOUBLE_EQ(w.value(0.0), 2.0);
  EXPECT_DOUBLE_EQ(w.value(1.5), 3.0);
  EXPECT_DOUBLE_EQ(w.value(9.0), 4.0);
}

TEST(Waveforms, SinDampingDecays) {
  sp::SinWave w(0.0, 1.0, 1e6, 0.0, 1e6);
  EXPECT_GT(std::abs(w.value(0.25e-6)), std::abs(w.value(1.25e-6)));
}

TEST(Waveforms, ValidationErrors) {
  EXPECT_THROW(sp::PulseWave(0, 1, 0, 0.0, 1e-10, 1e-9, 1e-8),
               phys::PreconditionError);
  EXPECT_THROW(sp::PwlWave({{0.0, 1.0}}), phys::PreconditionError);
  EXPECT_THROW(sp::SinWave(0, 1, 0.0), phys::PreconditionError);
}

TEST(Claims, BandScoring) {
  std::ostringstream os;
  const int misses = core::print_claims(
      os, {{"a", "in band", 10.0, 11.0, "", 0.2},
           {"b", "out of band", 10.0, 20.0, "", 0.2}});
  EXPECT_EQ(misses, 1);
  EXPECT_NE(os.str().find("[MISS]"), std::string::npos);
  EXPECT_NE(os.str().find("[ok]"), std::string::npos);
}

TEST(Claims, DirectionalScoring) {
  std::ostringstream os;
  const int misses = core::print_claims(
      os,
      {{"ge", "exceeds floor", 10.0, 100.0, "", 0.2,
        core::ClaimKind::kAtLeast},
       {"le", "below ceiling", 10.0, 1.0, "", 0.2, core::ClaimKind::kAtMost},
       {"ge2", "misses floor", 10.0, 1.0, "", 0.2,
        core::ClaimKind::kAtLeast}});
  EXPECT_EQ(misses, 1);
}

TEST(Banner, ContainsId) {
  std::ostringstream os;
  core::print_banner(os, "E9", "demo");
  EXPECT_NE(os.str().find("E9"), std::string::npos);
}

}  // namespace
