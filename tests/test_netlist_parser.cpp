// SPICE-deck parser: numbers with engineering suffixes, element cards,
// sources with waveforms, model registry resolution, and error reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "device/alpha_power.h"
#include "spice/ac.h"
#include "spice/analyses.h"
#include "spice/netlist_parser.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;

TEST(SpiceNumber, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("2.5k"), 2500.0);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("10f"), 1e-14);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("1u"), 1e-6);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("7p"), 7e-12);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("2m"), 2e-3);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("1g"), 1e9);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("1e-3"), 1e-3);
}

TEST(SpiceNumber, UnitTailsAccepted) {
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("10kohm"), 10e3);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("100nF"), 100e-9);
}

TEST(SpiceNumber, GarbageRejected) {
  EXPECT_THROW(sp::parse_spice_number("abc"), sp::ParseError);
  EXPECT_THROW(sp::parse_spice_number("1.5x"), sp::ParseError);
}

TEST(Parser, ResistorDividerSolves) {
  const auto ckt = sp::parse_netlist(R"(
* a comment
v1 a 0 10
r1 a b 2k
r2 b 0 3k
)");
  const auto sol = sp::operating_point(*ckt);
  EXPECT_NEAR(sp::node_voltage(*ckt, sol, "b"), 6.0, 1e-9);
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  const auto ckt = sp::parse_netlist(
      "* header\n\n# hash comment\nr1 a 0 1k ; trailing comment\n");
  EXPECT_EQ(ckt->num_nodes(), 1);
}

TEST(Parser, PulseSourceParsed) {
  const auto ckt = sp::parse_netlist(
      "v1 in 0 PULSE(0 1 1n 10p 10p 2n 4n)\nr1 in 0 1k\n");
  sp::TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 1e-11;
  const auto tr = sp::transient(*ckt, opt, {"in"});
  // Before delay: 0; after rise: 1.
  EXPECT_NEAR(tr.at(0, 1), 0.0, 1e-9);
  EXPECT_NEAR(tr.at(tr.num_rows() - 1, 1), 1.0, 1e-6);
}

TEST(Parser, SinAndPwlParsed) {
  EXPECT_NO_THROW(sp::parse_netlist(
      "v1 a 0 SIN(0.5 0.5 1meg)\nv2 b 0 PWL(0 0 1u 1)\nr1 a b 1k\n"));
}

TEST(Parser, DiodeOptionsParsed) {
  const auto ckt = sp::parse_netlist(
      "v1 a 0 5\nr1 a d 1k\nd1 d 0 is=1e-14 n=1.2\n");
  const auto sol = sp::operating_point(*ckt);
  const double vd = sp::node_voltage(*ckt, sol, "d");
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 1.0);
}

TEST(Parser, FetFromModelRegistry) {
  sp::ModelRegistry models;
  models["nfet"] = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  models["pfet"] = std::make_shared<dev::PTypeMirror>(
      std::static_pointer_cast<const dev::IDeviceModel>(models["nfet"]));
  const auto ckt = sp::parse_netlist(R"(
vdd vdd 0 1.0
vin in  0 0.5
mn  out in 0   nfet
mp  out in vdd pfet
c1  out 0 10f
)", models);
  const auto sol = sp::operating_point(*ckt);
  const double vout = sp::node_voltage(*ckt, sol, "out");
  EXPECT_GT(vout, 0.0);
  EXPECT_LT(vout, 1.0);
}

TEST(Parser, FetMultiplierOption) {
  sp::ModelRegistry models;
  models["nfet"] = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  const auto ckt1 = sp::parse_netlist(
      "vd d 0 0.5\nvg g 0 1.0\nmn d g 0 nfet\n", models);
  const auto ckt2 = sp::parse_netlist(
      "vd d 0 0.5\nvg g 0 1.0\nmn d g 0 nfet m=3\n", models);
  const auto s1 = sp::operating_point(*ckt1);
  const auto s2 = sp::operating_point(*ckt2);
  const auto* vd1 = dynamic_cast<sp::VSource*>(ckt1->elements()[0].get());
  const auto* vd2 = dynamic_cast<sp::VSource*>(ckt2->elements()[0].get());
  const double i1 = sp::vsource_current(*ckt1, s1, *vd1);
  const double i2 = sp::vsource_current(*ckt2, s2, *vd2);
  EXPECT_NEAR(i2 / i1, 3.0, 1e-6);
}

TEST(Parser, UnknownModelIsAnError) {
  EXPECT_THROW(sp::parse_netlist("mn d g 0 mystery\n"), sp::ParseError);
}

TEST(Parser, MalformedCardsReportLineNumbers) {
  try {
    sp::parse_netlist("r1 a 0 1k\nr2 a\n");
    FAIL() << "expected ParseError";
  } catch (const sp::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, UnknownElementKindRejected) {
  EXPECT_THROW(sp::parse_netlist("q1 a b c\n"), sp::ParseError);
}

TEST(Parser, CapacitorInitialCondition) {
  const auto ckt = sp::parse_netlist("c1 a 0 1n ic=0.5\nr1 a 0 1k\n");
  sp::TransientOptions opt;
  opt.t_stop = 1e-8;
  opt.dt = 1e-10;
  const auto tr = sp::transient(*ckt, opt, {"a"});
  // The cap starts charged at 0.5 V... after the DC OP it discharges;
  // the IC applies to transient state. First recorded row is the DC OP
  // (0 V since the cap is open in DC); just check the run completes.
  EXPECT_GT(tr.num_rows(), 10);
}

TEST(Parser, DotCardsIgnored) {
  EXPECT_NO_THROW(sp::parse_netlist(".tran 1n 10n\nr1 a 0 1k\n.end\n"));
}

// ---------------------------------------------------------------------------
// parse_spice_number edge cases (table-driven)

TEST(SpiceNumber, SuffixTable) {
  const struct {
    const char* token;
    double expect;
  } kGood[] = {
      {"1e3k", 1e6},        // exponent then suffix
      {"5mil", 127e-6},     // mil, not milli + "il" tail
      {"3MEG", 3e6},        // case-insensitive meg, not milli
      {"2.5K", 2500.0},
      {"1T", 1e12},
      {"4a", 4e-18},
      {"-2u", -2e-6},
      {"+.5m", 0.5e-3},
      {"1E-3", 1e-3},
      {"100pF", 100e-12},   // suffix + unit tail
      {"50mv", 50e-3},
      {"1megohm", 1e6},
  };
  for (const auto& c : kGood) {
    EXPECT_DOUBLE_EQ(sp::parse_spice_number(c.token), c.expect) << c.token;
  }
  const char* kBad[] = {
      "inf", "nan", "-inf", "0x10",  // stod would take these
      "1k5", "10k!", "1.2.3", "e3", "5 ", " 5", "", "--1", "1e",
  };
  for (const char* token : kBad) {
    EXPECT_THROW(sp::parse_spice_number(token), sp::ParseError) << token;
  }
}

// ---------------------------------------------------------------------------
// structured error reporting: every card family names its line

void expect_parse_error(const std::string& deck, int line,
                        const std::string& needle) {
  try {
    sp::parse_deck(deck);
    FAIL() << "expected ParseError for: " << needle;
  } catch (const sp::ParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_FALSE(e.line_text().empty()) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(ParserErrors, EveryCardFamilyNamesItsLine) {
  expect_parse_error("r1 a 0 1k\nr2 a\n", 2, "R wants");
  expect_parse_error("v1 a 0\n", 1, "V wants");
  expect_parse_error("r1 a 0 1k\nc1 a\n", 2, "C wants");
  expect_parse_error("d1 a\n", 1, "D wants");
  expect_parse_error("m1 d g\n", 1, "M wants");
  expect_parse_error("r1 a 0 1k\nx1 a inv\n", 2, "unknown subcircuit");
  expect_parse_error("r1 a 0 bogus\n", 1, "bogus");
  expect_parse_error(".param x=\n", 1, "param");
  expect_parse_error(".step param v 1 2\n", 1, ".step");
  expect_parse_error(".model m1 nosuchtype(k=1)\nr1 a 0 1\n", 1,
                     "unknown .model type");
  expect_parse_error(".dc v1 0 1\nr1 a 0 1\nv1 a 0 1\n", 1, ".dc");
  expect_parse_error(".tran 1n\n", 1, ".tran");
  expect_parse_error(".ac dec 10 1\n", 1, ".ac");
  expect_parse_error(".noise v(out) v1\n", 1, ".noise");
  expect_parse_error(".measure tran\n", 1, ".measure");
  expect_parse_error(".subckt inv in out\nr1 in out 1k\n", 1, "never closed");
  expect_parse_error(".bogus 1 2\n", 1, "unknown");
  expect_parse_error("r1 a 0 1k extra\n", 1, "expected key=value");
}

TEST(ParserErrors, ExpressionErrorsNameTheCardLine) {
  expect_parse_error("r1 a 0 {1k +}\n", 1, "expression");
  expect_parse_error("r1 a 0 {nope*2}\n", 1, "nope");
}

// ---------------------------------------------------------------------------
// parameters, scopes, steps

TEST(Deck, ParamExpressionsResolveInOrder) {
  const auto deck = sp::parse_deck(
      ".param a=2k b={a*2} c={sqrt(b/a)}\n"
      "r1 n 0 {b}\n"
      "v1 n 0 {c}\n");
  const auto envs = sp::expand_steps(deck);
  ASSERT_EQ(envs.size(), 1u);
  const auto ckt = sp::instantiate(deck, {}, envs[0]);
  const auto sol = sp::operating_point(*ckt);
  EXPECT_NEAR(sp::node_voltage(*ckt, sol, "n"), std::sqrt(2.0), 1e-12);
}

TEST(Deck, StepGridIsCartesianLastVariesFastest) {
  const auto deck = sp::parse_deck(
      ".param a=1 b=1\n"
      "r1 n 0 1k\n"
      ".step param a 1 2 1\n"
      ".step param b list 10 20 30\n");
  const auto envs = sp::expand_steps(deck);
  ASSERT_EQ(envs.size(), 6u);
  EXPECT_DOUBLE_EQ(envs[0].at("a"), 1.0);
  EXPECT_DOUBLE_EQ(envs[0].at("b"), 10.0);
  EXPECT_DOUBLE_EQ(envs[1].at("b"), 20.0);
  EXPECT_DOUBLE_EQ(envs[3].at("a"), 2.0);
  EXPECT_DOUBLE_EQ(envs[5].at("b"), 30.0);
}

TEST(Deck, RetuneMatchesReinstantiation) {
  const auto deck = sp::parse_deck(
      ".param rr=1k\n"
      "v1 a 0 1\n"
      "r1 a b {rr}\n"
      "r2 b 0 {2*rr}\n");
  // Retune the base circuit to rr=3k and compare against a fresh build.
  auto tuned = sp::instantiate(deck, {}, {});
  sp::retune(deck, {}, {{"rr", 3000.0}}, *tuned);
  const auto fresh = sp::instantiate(deck, {}, {{"rr", 3000.0}});
  const auto s1 = sp::operating_point(*tuned);
  const auto s2 = sp::operating_point(*fresh);
  EXPECT_NEAR(sp::node_voltage(*tuned, s1, "b"),
              sp::node_voltage(*fresh, s2, "b"), 1e-15);
}

TEST(Deck, TopologyHashIgnoresValues) {
  const auto d1 = sp::parse_deck(".param rr=1k\nr1 a 0 {rr}\nv1 a 0 1\n");
  const auto d2 = sp::parse_deck(".param rr=9k\nr1 a 0 {rr}\nv1 a 0 2\n");
  const auto d3 = sp::parse_deck(".param rr=1k\nr1 a b {rr}\nv1 b 0 1\n");
  EXPECT_EQ(d1.topology_hash, d2.topology_hash);
  EXPECT_NE(d1.topology_hash, d3.topology_hash);
}

// ---------------------------------------------------------------------------
// hierarchy: flattened subcircuits must match the hand-flattened deck

constexpr const char* kModels =
    ".model ndev alphan(vt=0.2 alpha=1.3 k=60u lambda=0.08)\n"
    ".model pdev alphap(vt=0.2 alpha=1.3 k=60u lambda=0.08)\n";

const std::string kHierDeck = std::string(kModels) +
    ".param vdd=1.0 cl=10f\n"
    ".subckt inv in out vdd cl=10f\n"
    "mp out in vdd pdev\n"
    "mn out in 0   ndev\n"
    "cld out 0 {cl}\n"
    ".ends\n"
    "vdd vdd 0 {vdd}\n"
    "vin in  0 PULSE(0 {vdd} 0.1n 10p 10p 1n 2n) ac 1\n"
    "x1 in  m1  vdd inv cl={2*cl}\n"
    "x2 m1  out vdd inv\n";

const std::string kFlatDeck = std::string(kModels) +
    ".param vdd=1.0 cl=10f\n"
    "vdd vdd 0 {vdd}\n"
    "vin in  0 PULSE(0 {vdd} 0.1n 10p 10p 1n 2n) ac 1\n"
    "mp1  m1  in vdd pdev\n"
    "mn1  m1  in 0   ndev\n"
    "cld1 m1  0  {2*cl}\n"
    "mp2  out m1 vdd pdev\n"
    "mn2  out m1 0   ndev\n"
    "cld2 out 0  {cl}\n";

TEST(Hierarchy, FlattenedOpMatchesHandFlattened) {
  const auto hier = sp::parse_netlist(kHierDeck);
  const auto flat = sp::parse_netlist(kFlatDeck);
  const auto sh = sp::operating_point(*hier);
  const auto sf = sp::operating_point(*flat);
  for (const char* node : {"in", "m1", "out"}) {
    EXPECT_NEAR(sp::node_voltage(*hier, sh, node),
                sp::node_voltage(*flat, sf, node), 1e-12)
        << node;
  }
}

TEST(Hierarchy, FlattenedTransientMatchesHandFlattened) {
  const auto hier = sp::parse_netlist(kHierDeck);
  const auto flat = sp::parse_netlist(kFlatDeck);
  sp::TransientOptions opt;
  opt.t_stop = 0.5e-9;
  opt.dt = 5e-12;
  opt.adaptive = false;
  const auto th = sp::transient(*hier, opt, {"out"});
  const auto tf = sp::transient(*flat, opt, {"out"});
  ASSERT_EQ(th.num_rows(), tf.num_rows());
  for (int r = 0; r < th.num_rows(); ++r) {
    ASSERT_NEAR(th.at(r, 1), tf.at(r, 1), 1e-12) << "row " << r;
  }
}

TEST(Hierarchy, FlattenedAcMatchesHandFlattened) {
  const auto hier = sp::parse_netlist(kHierDeck);
  const auto flat = sp::parse_netlist(kFlatDeck);
  auto* in_h = dynamic_cast<sp::VSource*>(hier->elements()[1].get());
  auto* in_f = dynamic_cast<sp::VSource*>(flat->elements()[1].get());
  ASSERT_NE(in_h, nullptr);
  ASSERT_NE(in_f, nullptr);
  sp::AcOptions opt;
  opt.f_start_hz = 1e6;
  opt.f_stop_hz = 1e9;
  opt.points_per_decade = 5;
  const auto ah = sp::ac_sweep(*hier, *in_h, {"out"}, opt);
  const auto af = sp::ac_sweep(*flat, *in_f, {"out"}, opt);
  ASSERT_EQ(ah.num_rows(), af.num_rows());
  for (int r = 0; r < ah.num_rows(); ++r) {
    ASSERT_NEAR(ah.at(r, 1), af.at(r, 1),
                1e-12 * std::max(1.0, std::abs(af.at(r, 1))))
        << "row " << r;
  }
}

TEST(Hierarchy, InstanceParamOverridesReachTheElements) {
  // x1 overrides cl -> its load cap doubles; x2 keeps the default.
  const auto deck = sp::parse_deck(kHierDeck);
  double c1 = 0.0, c2 = 0.0;
  for (const auto& card : deck.elements) {
    if (card.name == "x1.cld") c1 = 1.0;
    if (card.name == "x2.cld") c2 = 1.0;
  }
  EXPECT_EQ(c1, 1.0);
  EXPECT_EQ(c2, 1.0);
  const auto ckt = sp::instantiate(deck, {});
  const sp::Capacitor* cap1 = nullptr;
  const sp::Capacitor* cap2 = nullptr;
  for (const auto& el : ckt->elements()) {
    if (el->name() == "x1.cld")
      cap1 = dynamic_cast<const sp::Capacitor*>(el.get());
    if (el->name() == "x2.cld")
      cap2 = dynamic_cast<const sp::Capacitor*>(el.get());
  }
  ASSERT_NE(cap1, nullptr);
  ASSERT_NE(cap2, nullptr);
  EXPECT_NEAR(cap1->capacitance(), 20e-15, 1e-20);
  EXPECT_NEAR(cap2->capacitance(), 10e-15, 1e-20);
}

TEST(Hierarchy, NestedSubcircuitsFlatten) {
  const auto ckt = sp::parse_netlist(
      ".subckt half a b\nr1 a b 1k\n.ends\n"
      ".subckt full a b\nxh1 a m half\nxh2 m b half\n.ends\n"
      "v1 top 0 1\nxf top 0 full\n");
  const auto sol = sp::operating_point(*ckt);
  // Midpoint of the internal divider: xf.m at 0.5 V.
  EXPECT_NEAR(sp::node_voltage(*ckt, sol, "xf.m"), 0.5, 1e-12);
}

}  // namespace
