// SPICE-deck parser: numbers with engineering suffixes, element cards,
// sources with waveforms, model registry resolution, and error reporting.
#include <gtest/gtest.h>

#include <memory>

#include "device/alpha_power.h"
#include "spice/analyses.h"
#include "spice/netlist_parser.h"

namespace {

namespace sp = carbon::spice;
namespace dev = carbon::device;

TEST(SpiceNumber, PlainAndSuffixed) {
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("2.5k"), 2500.0);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("10f"), 1e-14);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("1u"), 1e-6);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("7p"), 7e-12);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("2m"), 2e-3);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("1g"), 1e9);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("1e-3"), 1e-3);
}

TEST(SpiceNumber, UnitTailsAccepted) {
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("10kohm"), 10e3);
  EXPECT_DOUBLE_EQ(sp::parse_spice_number("100nF"), 100e-9);
}

TEST(SpiceNumber, GarbageRejected) {
  EXPECT_THROW(sp::parse_spice_number("abc"), sp::ParseError);
  EXPECT_THROW(sp::parse_spice_number("1.5x"), sp::ParseError);
}

TEST(Parser, ResistorDividerSolves) {
  const auto ckt = sp::parse_netlist(R"(
* a comment
v1 a 0 10
r1 a b 2k
r2 b 0 3k
)");
  const auto sol = sp::operating_point(*ckt);
  EXPECT_NEAR(sp::node_voltage(*ckt, sol, "b"), 6.0, 1e-9);
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  const auto ckt = sp::parse_netlist(
      "* header\n\n# hash comment\nr1 a 0 1k ; trailing comment\n");
  EXPECT_EQ(ckt->num_nodes(), 1);
}

TEST(Parser, PulseSourceParsed) {
  const auto ckt = sp::parse_netlist(
      "v1 in 0 PULSE(0 1 1n 10p 10p 2n 4n)\nr1 in 0 1k\n");
  sp::TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 1e-11;
  const auto tr = sp::transient(*ckt, opt, {"in"});
  // Before delay: 0; after rise: 1.
  EXPECT_NEAR(tr.at(0, 1), 0.0, 1e-9);
  EXPECT_NEAR(tr.at(tr.num_rows() - 1, 1), 1.0, 1e-6);
}

TEST(Parser, SinAndPwlParsed) {
  EXPECT_NO_THROW(sp::parse_netlist(
      "v1 a 0 SIN(0.5 0.5 1meg)\nv2 b 0 PWL(0 0 1u 1)\nr1 a b 1k\n"));
}

TEST(Parser, DiodeOptionsParsed) {
  const auto ckt = sp::parse_netlist(
      "v1 a 0 5\nr1 a d 1k\nd1 d 0 is=1e-14 n=1.2\n");
  const auto sol = sp::operating_point(*ckt);
  const double vd = sp::node_voltage(*ckt, sol, "d");
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 1.0);
}

TEST(Parser, FetFromModelRegistry) {
  sp::ModelRegistry models;
  models["nfet"] = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  models["pfet"] = std::make_shared<dev::PTypeMirror>(
      std::static_pointer_cast<const dev::IDeviceModel>(models["nfet"]));
  const auto ckt = sp::parse_netlist(R"(
vdd vdd 0 1.0
vin in  0 0.5
mn  out in 0   nfet
mp  out in vdd pfet
c1  out 0 10f
)", models);
  const auto sol = sp::operating_point(*ckt);
  const double vout = sp::node_voltage(*ckt, sol, "out");
  EXPECT_GT(vout, 0.0);
  EXPECT_LT(vout, 1.0);
}

TEST(Parser, FetMultiplierOption) {
  sp::ModelRegistry models;
  models["nfet"] = std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
  const auto ckt1 = sp::parse_netlist(
      "vd d 0 0.5\nvg g 0 1.0\nmn d g 0 nfet\n", models);
  const auto ckt2 = sp::parse_netlist(
      "vd d 0 0.5\nvg g 0 1.0\nmn d g 0 nfet m=3\n", models);
  const auto s1 = sp::operating_point(*ckt1);
  const auto s2 = sp::operating_point(*ckt2);
  const auto* vd1 = dynamic_cast<sp::VSource*>(ckt1->elements()[0].get());
  const auto* vd2 = dynamic_cast<sp::VSource*>(ckt2->elements()[0].get());
  const double i1 = sp::vsource_current(*ckt1, s1, *vd1);
  const double i2 = sp::vsource_current(*ckt2, s2, *vd2);
  EXPECT_NEAR(i2 / i1, 3.0, 1e-6);
}

TEST(Parser, UnknownModelIsAnError) {
  EXPECT_THROW(sp::parse_netlist("mn d g 0 mystery\n"), sp::ParseError);
}

TEST(Parser, MalformedCardsReportLineNumbers) {
  try {
    sp::parse_netlist("r1 a 0 1k\nr2 a\n");
    FAIL() << "expected ParseError";
  } catch (const sp::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, UnknownElementKindRejected) {
  EXPECT_THROW(sp::parse_netlist("q1 a b c\n"), sp::ParseError);
}

TEST(Parser, CapacitorInitialCondition) {
  const auto ckt = sp::parse_netlist("c1 a 0 1n ic=0.5\nr1 a 0 1k\n");
  sp::TransientOptions opt;
  opt.t_stop = 1e-8;
  opt.dt = 1e-10;
  const auto tr = sp::transient(*ckt, opt, {"a"});
  // The cap starts charged at 0.5 V... after the DC OP it discharges;
  // the IC applies to transient state. First recorded row is the DC OP
  // (0 V since the cap is open in DC); just check the run completes.
  EXPECT_GT(tr.num_rows(), 10);
}

TEST(Parser, DotCardsIgnored) {
  EXPECT_NO_THROW(sp::parse_netlist(".tran 1n 10n\nr1 a 0 1k\n.end\n"));
}

}  // namespace
