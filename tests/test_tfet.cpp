// CNT tunnel-FET (Fig. 6): reverse-bias BTBT turn-on with sub-thermal
// segments, ~1 mA/um on-current, forward diode barely gate-modulated.
#include "phys/require.h"
#include <gtest/gtest.h>

#include <cmath>

#include "device/tfet.h"

namespace {

using carbon::device::CntTfetModel;
using carbon::device::CntTfetParams;
using carbon::device::make_fig6_tfet_params;

constexpr double kVrev = -0.5;  // reverse diode bias of the Fig. 6 sweep

TEST(Tfet, OffStateIsLeakageLimited) {
  const CntTfetModel m(make_fig6_tfet_params());
  const double i_off = std::abs(m.drain_current(0.5, kVrev));
  EXPECT_LT(i_off, 2.0 * m.params().leakage_floor_a + 1e-11);
}

TEST(Tfet, ReverseBranchTurnsOnTowardNegativeGate) {
  const CntTfetModel m(make_fig6_tfet_params());
  const double i_mid = std::abs(m.drain_current(-1.0, kVrev));
  const double i_on = std::abs(m.drain_current(-2.0, kVrev));
  EXPECT_GT(i_mid, 1e-9);
  EXPECT_GT(i_on, i_mid);
  EXPECT_GT(i_on / std::abs(m.drain_current(0.3, kVrev)), 1e4);
}

TEST(Tfet, OnCurrentAboutOneMilliampPerMicron) {
  const CntTfetModel m(make_fig6_tfet_params());
  const double i_on = std::abs(m.drain_current(-2.0, kVrev));
  const double ma_um =
      i_on / (m.width_normalization() * 1e6) * 1e3;
  EXPECT_GT(ma_um, 0.3);
  EXPECT_LT(ma_um, 4.0);
}

TEST(Tfet, AverageSwingNearPaperValue) {
  // "a very sharp turn-on ... SS = 83 mV/dec": average over the first two
  // decades of the turn-on.
  const CntTfetModel m(make_fig6_tfet_params());
  // Locate the gate voltage where the current is 100x the leakage floor.
  double vg_start = 0.0;
  for (double vg = 0.0; vg >= -2.5; vg -= 0.005) {
    if (std::abs(m.drain_current(vg, kVrev)) >
        100.0 * m.params().leakage_floor_a) {
      vg_start = vg;
      break;
    }
  }
  ASSERT_LT(vg_start, 0.0);
  const double i1 = std::abs(m.drain_current(vg_start, kVrev));
  const double i2 = std::abs(m.drain_current(vg_start - 0.25, kVrev));
  const double ss = 0.25 / std::log10(i2 / i1) * 1e3;
  EXPECT_GT(ss, 40.0);
  EXPECT_LT(ss, 130.0);
}

TEST(Tfet, BestPointSwingBeatsThermalLimit) {
  // "individual sweep points do even have a better SS like 32 mV/dec":
  // the steepest local segment must beat 60 mV/dec.
  const CntTfetModel m(make_fig6_tfet_params());
  double best = 1e9;
  double prev = std::abs(m.drain_current(0.0, kVrev));
  for (double vg = -0.005; vg >= -2.0; vg -= 0.005) {
    const double cur = std::abs(m.drain_current(vg, kVrev));
    if (cur > prev && prev > m.params().leakage_floor_a * 3.0) {
      best = std::min(best, 0.005 / std::log10(cur / prev) * 1e3);
    }
    prev = cur;
  }
  EXPECT_LT(best, 60.0);
}

TEST(Tfet, ForwardBranchBarelyGateModulated) {
  // "If biased in the forward direction of the diode, the application of
  // the back voltage is hardly modulating the current."
  const CntTfetModel m(make_fig6_tfet_params());
  const double i0 = m.drain_current(0.5, 0.5);
  const double i1 = m.drain_current(-2.0, 0.5);
  EXPECT_GT(i0, 0.0);
  EXPECT_LT(std::abs(i1 - i0) / i0, 0.45);
}

TEST(Tfet, ForwardCurrentSeriesLimited) {
  // Without the series resistance the junction law explodes; with it the
  // forward current stays in the uA range of the measured device.
  const CntTfetModel m(make_fig6_tfet_params());
  EXPECT_LT(m.drain_current(0.0, 0.5), 20e-6);
  EXPECT_GT(m.drain_current(0.0, 0.5), 0.1e-6);
}

TEST(Tfet, WindowClosedAtZeroOpensWithGate) {
  const CntTfetModel m(make_fig6_tfet_params());
  EXPECT_LT(m.tunnel_window_ev(0.5, kVrev), 0.05);
  EXPECT_GT(m.tunnel_window_ev(-2.0, kVrev), 0.3);
}

TEST(Tfet, FieldGrowsWithGateDrive) {
  const CntTfetModel m(make_fig6_tfet_params());
  EXPECT_GT(m.junction_field(-2.0, kVrev), m.junction_field(0.0, kVrev));
}

TEST(Tfet, BetterElectrostaticsSteepenTheSwing) {
  // The paper's Section IV outlook: "if the electrostatic design is
  // improved by implementing high-k dielectrics and segmented gates, an
  // even better result should be obtainable."
  CntTfetParams improved = make_fig6_tfet_params();
  improved.gate_efficiency = 0.9;
  improved.tunnel_length = 2.0e-9;
  const CntTfetModel base(make_fig6_tfet_params());
  const CntTfetModel better(improved);
  const auto s_base = carbon::device::measure_tfet_swing(base);
  const auto s_better = carbon::device::measure_tfet_swing(better);
  EXPECT_LT(s_better.ss_avg_mv_dec, s_base.ss_avg_mv_dec);
  EXPECT_GT(s_better.i_on_a, s_base.i_on_a);
  EXPECT_GT(better.junction_field(-1.0, kVrev),
            base.junction_field(-1.0, kVrev));
}

TEST(Tfet, ReverseCurrentMonotoneInGate) {
  const CntTfetModel m(make_fig6_tfet_params());
  double prev = 0.0;
  for (double vg = 0.0; vg >= -2.2; vg -= 0.05) {
    const double i = std::abs(m.drain_current(vg, kVrev));
    EXPECT_GE(i, prev * 0.999) << "vg=" << vg;
    prev = i;
  }
}

TEST(Tfet, ParameterValidation) {
  CntTfetParams p = make_fig6_tfet_params();
  p.gate_efficiency = 0.0;
  EXPECT_THROW(CntTfetModel{p}, carbon::phys::PreconditionError);
  p = make_fig6_tfet_params();
  p.tunnel_length = -1.0;
  EXPECT_THROW(CntTfetModel{p}, carbon::phys::PreconditionError);
}

}  // namespace
