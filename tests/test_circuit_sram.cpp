// 6T SRAM hold static noise margin: the bistability consequence of the
// Fig. 2 saturation argument.
#include <gtest/gtest.h>

#include "phys/require.h"

#include <memory>

#include "circuit/sram.h"
#include "device/alpha_power.h"
#include "device/cntfet.h"
#include "device/linear_fet.h"

namespace {

namespace ckt = carbon::circuit;
namespace dev = carbon::device;

std::shared_ptr<dev::AlphaPowerModel> saturating() {
  return std::make_shared<dev::AlphaPowerModel>(
      dev::make_fig2_saturating_params());
}

TEST(SramSnm, SaturatingCellIsBistable) {
  const auto r = ckt::hold_snm(saturating());
  EXPECT_TRUE(r.bistable);
  EXPECT_GT(r.snm_v, 0.15);          // healthy hold margin at VDD = 1 V
  EXPECT_LT(r.snm_v, 0.5);           // bounded by VDD/2
  EXPECT_NEAR(r.snm_low_v, r.snm_high_v, 0.05);  // symmetric devices
}

TEST(SramSnm, LinearCellCannotHoldState) {
  // Non-saturating devices: inverter gain < 1 => the butterfly collapses
  // to a single crossing => no storage.
  auto lin = std::make_shared<dev::LinearFetModel>(
      dev::make_fig2_linear_params());
  const auto r = ckt::hold_snm(lin);
  EXPECT_FALSE(r.bistable);
  EXPECT_LT(r.snm_v, 0.01);
}

TEST(SramSnm, CntfetCellWorksAtHalfVolt) {
  auto cnt = std::make_shared<dev::CntfetModel>(
      dev::make_franklin_cntfet_params(20e-9));
  ckt::CellOptions opt;
  opt.v_dd = 0.5;
  opt.c_load = 1e-15;
  const auto r = ckt::hold_snm(cnt, opt);
  EXPECT_TRUE(r.bistable);
  EXPECT_GT(r.snm_v, 0.08);  // > 16% of VDD
}

TEST(SramSnm, MarginGrowsWithSupply) {
  ckt::CellOptions lo, hi;
  lo.v_dd = 0.7;
  hi.v_dd = 1.2;
  const auto r_lo = ckt::hold_snm(saturating(), lo);
  const auto r_hi = ckt::hold_snm(saturating(), hi);
  EXPECT_GT(r_hi.snm_v, r_lo.snm_v);
}

TEST(SramSnm, ButterflyCurveShape) {
  const auto t = ckt::butterfly_curve(saturating());
  // Forward VTC decreasing, mirrored VTC decreasing in the v1 axis sense;
  // ends anchored at the rails.
  EXPECT_GT(t.at(0, 1), 0.95);
  EXPECT_LT(t.at(t.num_rows() - 1, 1), 0.05);
  // The curves cross near mid-rail (the metastable point).
  double min_gap = 1e9;
  double v_at_min = 0.0;
  for (int i = 0; i < t.num_rows(); ++i) {
    const double gap = std::abs(t.at(i, 1) - t.at(i, 2));
    if (gap < min_gap) {
      min_gap = gap;
      v_at_min = t.at(i, 0);
    }
  }
  EXPECT_NEAR(v_at_min, 0.5, 0.05);
}

TEST(SramSnm, ResolutionValidation) {
  EXPECT_THROW(ckt::hold_snm(saturating(), {}, 5),
               carbon::phys::PreconditionError);
}

}  // namespace
