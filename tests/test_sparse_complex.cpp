// Complex sparse LU (SparseLuZ): correctness against the dense complex
// solver, symbolic-pattern reuse across refactors, singularity detection,
// and the transpose (adjoint) solve on both the sparse and dense backends.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "phys/linalg_complex.h"
#include "phys/require.h"
#include "phys/sparse.h"

namespace {

using carbon::phys::Complex;
using carbon::phys::ComplexLuFactorization;
using carbon::phys::ComplexMatrix;
using carbon::phys::SparseLuZ;
using carbon::phys::SparseMatrixZ;

/// Deterministic pseudo-random complex value in [-1, 1]^2.
Complex hash_value(int r, int c) {
  const double a = std::sin(12.9898 * (r + 1) + 78.233 * (c + 1)) * 43758.55;
  const double b = std::sin(39.3467 * (r + 1) + 11.135 * (c + 1)) * 24634.62;
  return {a - std::floor(a) - 0.5, b - std::floor(b) - 0.5};
}

/// Tridiagonal-plus-corners test pattern with a dominant diagonal — the
/// shape of an RC-ladder AC matrix.
SparseMatrixZ make_test_matrix(int n) {
  std::vector<std::pair<int, int>> coords;
  for (int i = 0; i < n; ++i) {
    coords.emplace_back(i, i);
    if (i > 0) coords.emplace_back(i, i - 1);
    if (i + 1 < n) coords.emplace_back(i, i + 1);
  }
  coords.emplace_back(0, n - 1);
  coords.emplace_back(n - 1, 0);
  SparseMatrixZ m = SparseMatrixZ::from_coords(n, coords);
  for (int i = 0; i < n; ++i) {
    for (int t = m.row_ptr()[i]; t < m.row_ptr()[i + 1]; ++t) {
      const int j = m.col_idx()[t];
      m.values()[t] = hash_value(i, j) + (i == j ? Complex{4.0, 2.0} : 0.0);
    }
  }
  return m;
}

std::vector<Complex> make_rhs(int n) {
  std::vector<Complex> b(n);
  for (int i = 0; i < n; ++i) b[i] = hash_value(i, 7 * i + 3);
  return b;
}

double max_abs_diff(const std::vector<Complex>& a,
                    const std::vector<Complex>& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

TEST(SparseLuZ, MatchesDenseComplexSolve) {
  const int n = 40;
  const SparseMatrixZ a = make_test_matrix(n);
  const std::vector<Complex> b = make_rhs(n);

  SparseLuZ lu;
  lu.factor(a);
  const std::vector<Complex> x_sparse = lu.solve(b);
  const std::vector<Complex> x_dense =
      carbon::phys::solve_dense_complex(a.to_dense(), b);
  EXPECT_LT(max_abs_diff(x_sparse, x_dense), 1e-11);
}

TEST(SparseLuZ, RefactorReusesSymbolicAnalysis) {
  const int n = 64;
  SparseMatrixZ a = make_test_matrix(n);
  SparseLuZ lu;
  lu.factor(a);
  EXPECT_EQ(lu.analyze_count(), 1);

  // Rescale the values (an AC sweep moving in frequency) and refactor: the
  // pattern analysis must be reused, and the solves must stay correct.
  for (int pass = 0; pass < 5; ++pass) {
    for (auto& v : a.values()) v *= Complex{1.0, 0.15};
    lu.factor(a);
    const std::vector<Complex> b = make_rhs(n);
    const std::vector<Complex> x = lu.solve(b);
    const std::vector<Complex> x_ref =
        carbon::phys::solve_dense_complex(a.to_dense(), b);
    EXPECT_LT(max_abs_diff(x, x_ref), 1e-10) << "pass " << pass;
  }
  EXPECT_EQ(lu.analyze_count(), 1);
}

TEST(SparseLuZ, SingularDetected) {
  // Row 1 = 2 * row 0 on a shared pattern.
  SparseMatrixZ m = SparseMatrixZ::from_coords(
      2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  m.values()[0] = {1.0, 1.0};
  m.values()[1] = {2.0, 0.0};
  m.values()[2] = {2.0, 2.0};
  m.values()[3] = {4.0, 0.0};
  SparseLuZ lu;
  EXPECT_THROW(lu.analyze_factor(m), carbon::phys::ConvergenceError);
}

TEST(SparseLuZ, SingularityCarriesTypedRowAndColumn) {
  using carbon::phys::SingularMatrixError;
  SparseMatrixZ m = SparseMatrixZ::from_coords(
      2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  m.values()[0] = {1.0, 1.0};
  m.values()[1] = {2.0, 0.0};
  m.values()[2] = {2.0, 2.0};
  m.values()[3] = {4.0, 0.0};
  SparseLuZ lu;
  try {
    lu.analyze_factor(m);
    FAIL() << "rank-1 complex matrix factored";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.kind(), SingularMatrixError::Kind::kSingular);
    EXPECT_GE(e.row(), 0);
    EXPECT_LT(e.row(), 2);
    EXPECT_GE(e.col(), 0);
    EXPECT_LT(e.col(), 2);
  }
}

TEST(ComplexLu, SingularityCarriesTypedRowAndColumn) {
  using carbon::phys::SingularMatrixError;
  ComplexMatrix a(2, 2);
  a(0, 0) = {1.0, 1.0}; a(0, 1) = {2.0, 0.0};
  a(1, 0) = {2.0, 2.0}; a(1, 1) = {4.0, 0.0};  // row 1 = 2 * row 0
  ComplexLuFactorization lu;
  try {
    lu.factor(a);
    FAIL() << "rank-1 complex matrix factored";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.kind(), SingularMatrixError::Kind::kSingular);
    EXPECT_GE(e.row(), 0);
    EXPECT_LT(e.row(), 2);
  }
  EXPECT_FALSE(lu.factored());
}

TEST(ComplexLu, NonFinitePivotIsTypedNotSilent) {
  using carbon::phys::SingularMatrixError;
  ComplexMatrix a(2, 2);
  a(0, 0) = {std::nan(""), 0.0}; a(0, 1) = {1.0, 0.0};
  a(1, 0) = {1.0, 0.0}; a(1, 1) = {1.0, 0.0};
  ComplexLuFactorization lu;
  try {
    lu.factor(a);
    FAIL() << "NaN complex matrix factored";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.kind(), SingularMatrixError::Kind::kNonFinite);
  }
}

TEST(SparseLuZ, TransposeSolveMatchesExplicitTranspose) {
  const int n = 32;
  const SparseMatrixZ a = make_test_matrix(n);
  const std::vector<Complex> b = make_rhs(n);

  SparseLuZ lu;
  lu.factor(a);
  std::vector<Complex> x = b;
  lu.solve_transpose_in_place(x);

  // Reference: solve with the explicitly transposed dense matrix.
  const ComplexMatrix ad = a.to_dense();
  ComplexMatrix at(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) at(r, c) = ad(c, r);
  }
  const std::vector<Complex> x_ref =
      carbon::phys::solve_dense_complex(at, b);
  EXPECT_LT(max_abs_diff(x, x_ref), 1e-11);

  // And A^T x must reproduce b.
  std::vector<Complex> atx(n);
  for (int r = 0; r < n; ++r) {
    Complex s{};
    for (int c = 0; c < n; ++c) s += at(r, c) * x[c];
    atx[r] = s;
  }
  EXPECT_LT(max_abs_diff(atx, b), 1e-11);
}

TEST(ComplexLu, DenseTransposeSolveMatchesExplicitTranspose) {
  const int n = 12;
  ComplexMatrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      a(r, c) = hash_value(r, c) + (r == c ? Complex{3.0, 1.0} : 0.0);
    }
  }
  const std::vector<Complex> b = make_rhs(n);

  ComplexLuFactorization lu;
  lu.factor(a);
  std::vector<Complex> x = b;
  lu.solve_transpose_in_place(x);

  ComplexMatrix at(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) at(r, c) = a(c, r);
  }
  const std::vector<Complex> x_ref =
      carbon::phys::solve_dense_complex(at, b);
  EXPECT_LT(max_abs_diff(x, x_ref), 1e-12);
}

TEST(SparseMatrixZ, SlotAndDenseRoundTrip) {
  SparseMatrixZ m =
      SparseMatrixZ::from_coords(3, {{0, 0}, {1, 2}, {2, 1}, {1, 2}});
  EXPECT_EQ(m.nnz(), 3);  // duplicate merged
  const int s = m.slot(1, 2);
  ASSERT_GE(s, 0);
  m.values()[s] = {1.5, -2.5};
  EXPECT_EQ(m.at(1, 2), (Complex{1.5, -2.5}));
  EXPECT_EQ(m.at(0, 1), Complex{});
  const ComplexMatrix d = m.to_dense();
  EXPECT_EQ(d(1, 2), (Complex{1.5, -2.5}));
  EXPECT_EQ(d(0, 1), Complex{});
}

}  // namespace
