#include "band/graphene.h"

#include <cmath>

#include "phys/constants.h"

namespace carbon::band {

double GrapheneParams::lattice_constant() const {
  return std::sqrt(3.0) * a_cc_m;
}

double GrapheneParams::fermi_velocity() const {
  return 1.5 * gamma0_ev * phys::kQ * a_cc_m / phys::kHbar;
}

double graphene_energy(const GrapheneParams& p, double kx, double ky) {
  const double a = p.lattice_constant();
  const double c1 = std::cos(0.5 * std::sqrt(3.0) * kx * a);
  const double c2 = std::cos(0.5 * ky * a);
  const double f = 1.0 + 4.0 * c1 * c2 + 4.0 * c2 * c2;
  return p.gamma0_ev * std::sqrt(std::max(f, 0.0));
}

double graphene_k_point(const GrapheneParams& p) {
  // K = (0, 4pi / (3a)) in the (zigzag, armchair) convention of
  // graphene_energy; we report the magnitude along the armchair axis.
  return 4.0 * M_PI / (3.0 * p.lattice_constant());
}

}  // namespace carbon::band
