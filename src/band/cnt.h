#pragma once

/// @file cnt.h
/// Single-walled carbon nanotube band structure by zone folding of the
/// graphene pi bands.  Provides both the analytic subband ladder used by the
/// transport solvers and a brute-force numeric fold of the full 2-D
/// dispersion used to validate it.

#include <vector>

#include "band/graphene.h"
#include "band/subband.h"

namespace carbon::band {

/// Chiral indices (n, m) of a nanotube, n >= m >= 0, n > 0.
struct Chirality {
  int n = 0;
  int m = 0;

  /// Tube diameter d = a * sqrt(n^2 + n m + m^2) / pi [m].
  double diameter(const GrapheneParams& p = {}) const;

  /// Metallic when (n - m) mod 3 == 0 (1/3 of a uniform chirality
  /// population, the fraction Section V of the paper worries about).
  bool is_metallic() const;

  /// Family index nu in {-1, 0, +1}: remainder of (n - m) mod 3 mapped to
  /// the symmetric interval.  nu = 0 is metallic.
  int family() const;

  /// Chiral angle in degrees (0 = zigzag, 30 = armchair).
  double chiral_angle_deg() const;
};

/// CNT band structure (zone-folded nearest-neighbour tight binding).
class CntBandStructure {
 public:
  explicit CntBandStructure(Chirality ch, GrapheneParams p = {});

  const Chirality& chirality() const { return ch_; }
  double diameter() const;
  bool is_metallic() const { return ch_.is_metallic(); }

  /// Band gap Eg = 2 gamma0 a_cc / d for semiconducting tubes, 0 for
  /// metallic [eV].  (~0.85 eV nm / d(nm) with the default gamma0.)
  double band_gap() const;

  /// Analytic conduction-subband ladder: Delta_j = hbar vF * 2|3j+nu|/(3d),
  /// each 4-fold degenerate (spin x K/K' valley).  Metallic tubes get a
  /// gapless linear subband first.
  /// @param num_subbands number of distinct subband energies to return
  SubbandLadder ladder(int num_subbands = 3) const;

  /// Numeric subband minimum: minimum |E| of the full graphene dispersion
  /// along the allowed quantization line with index @p mu.  Used in tests to
  /// validate the analytic ladder.  [eV]
  double subband_minimum_numeric(int mu, int k_samples = 4000) const;

  /// Numeric band gap: 2 * min over all quantization lines. [eV]
  double band_gap_numeric() const;

 private:
  Chirality ch_;
  GrapheneParams p_;
};

/// Build a CNT-equivalent subband ladder with a prescribed band gap (used by
/// Fig. 1 of the paper where a CNT and a GNR share Eg = 0.56 eV exactly).
/// Subband spacing follows the semiconducting |3j+1| ladder: Eg/2 * {1,2,4,5}.
SubbandLadder make_cnt_ladder_from_gap(double band_gap_ev,
                                       int num_subbands = 3,
                                       const GrapheneParams& p = {});

/// Diameter of the semiconducting CNT with band gap @p band_gap_ev [m].
double cnt_diameter_from_gap(double band_gap_ev, const GrapheneParams& p = {});

/// Enumerate all chiralities with diameter in [d_lo, d_hi] (metres).
std::vector<Chirality> enumerate_chiralities(double d_lo, double d_hi,
                                             const GrapheneParams& p = {});

}  // namespace carbon::band
