#include "band/cnt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "phys/constants.h"
#include "phys/require.h"

namespace carbon::band {

using phys::kHbar;
using phys::kQ;

double Chirality::diameter(const GrapheneParams& p) const {
  const double a = p.lattice_constant();
  return a * std::sqrt(double(n) * n + double(n) * m + double(m) * m) / M_PI;
}

bool Chirality::is_metallic() const { return (n - m) % 3 == 0; }

int Chirality::family() const {
  int r = (n - m) % 3;
  if (r < 0) r += 3;       // now 0, 1, 2
  return (r == 2) ? -1 : r;  // map 2 -> -1
}

double Chirality::chiral_angle_deg() const {
  return std::atan2(std::sqrt(3.0) * m, 2.0 * n + m) * 180.0 / M_PI;
}

CntBandStructure::CntBandStructure(Chirality ch, GrapheneParams p)
    : ch_(ch), p_(p) {
  CARBON_REQUIRE(ch.n > 0 && ch.m >= 0 && ch.n >= ch.m,
                 "chirality must satisfy n >= m >= 0, n > 0");
}

double CntBandStructure::diameter() const { return ch_.diameter(p_); }

double CntBandStructure::band_gap() const {
  if (ch_.is_metallic()) return 0.0;
  return 2.0 * p_.gamma0_ev * p_.a_cc_m / diameter();
}

SubbandLadder CntBandStructure::ladder(int num_subbands) const {
  CARBON_REQUIRE(num_subbands >= 1, "need at least one subband");
  const double vf = p_.fermi_velocity();
  const double hbar_vf_ev = kHbar * vf / kQ;  // eV m
  const double d = diameter();
  const int nu = ch_.family();

  // Distances of the quantization lines from the K point are
  // (2 / 3d) * |3 j + nu|, j in Z.  Collect the smallest distinct values.
  std::vector<int> indices;
  for (int j = -num_subbands - 2; j <= num_subbands + 2; ++j) {
    indices.push_back(std::abs(3 * j + nu));
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());

  SubbandLadder out;
  for (int i = 0; i < num_subbands && i < static_cast<int>(indices.size());
       ++i) {
    Subband s;
    s.delta_ev = hbar_vf_ev * 2.0 * indices[i] / (3.0 * d);
    s.degeneracy = 4;  // spin x (K, K')
    s.fermi_velocity = vf;
    out.subbands.push_back(s);
  }
  return out;
}

double CntBandStructure::subband_minimum_numeric(int mu, int k_samples) const {
  CARBON_REQUIRE(k_samples >= 16, "need a sensible sampling density");
  const double a = p_.lattice_constant();
  // Circumference vector in the (kx, ky) basis of graphene_energy:
  //   a1 = a (sqrt3/2,  1/2),  a2 = a (sqrt3/2, -1/2).
  const double cx = a * std::sqrt(3.0) / 2.0 * (ch_.n + ch_.m);
  const double cy = a * 0.5 * (ch_.n - ch_.m);
  const double clen = std::hypot(cx, cy);
  const double ux = cx / clen, uy = cy / clen;    // unit circumference
  const double tx = -uy, ty = ux;                 // unit tube axis

  const double k_perp = 2.0 * M_PI * mu / clen;
  // Scan a generous axial window: the 1-D Brillouin zone is within
  // [-pi/T, pi/T] with T <= sqrt(3) * clen; 4pi/a covers every case.
  const double k_max = 4.0 * M_PI / a;
  double best = 1e300;
  for (int i = 0; i <= k_samples; ++i) {
    const double kt = -k_max + 2.0 * k_max * i / k_samples;
    const double kx = k_perp * ux + kt * tx;
    const double ky = k_perp * uy + kt * ty;
    best = std::min(best, graphene_energy(p_, kx, ky));
  }
  // Golden-section refine around the best coarse sample.
  const double step = 2.0 * k_max / k_samples;
  double lo = -k_max, hi = k_max;
  for (int i = 0; i <= k_samples; ++i) {
    const double kt = -k_max + 2.0 * k_max * i / k_samples;
    const double kx = k_perp * ux + kt * tx;
    const double ky = k_perp * uy + kt * ty;
    if (graphene_energy(p_, kx, ky) == best) {
      lo = kt - step;
      hi = kt + step;
      break;
    }
  }
  auto energy_at = [&](double kt) {
    return graphene_energy(p_, k_perp * ux + kt * tx, k_perp * uy + kt * ty);
  };
  const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
  double x1 = hi - phi * (hi - lo), x2 = lo + phi * (hi - lo);
  double f1 = energy_at(x1), f2 = energy_at(x2);
  for (int it = 0; it < 80; ++it) {
    if (f1 < f2) {
      hi = x2; x2 = x1; f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = energy_at(x1);
    } else {
      lo = x1; x1 = x2; f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = energy_at(x2);
    }
  }
  return std::min({best, f1, f2});
}

double CntBandStructure::band_gap_numeric() const {
  // Number of distinct quantization lines equals the number of hexagons in
  // the translational unit cell; scanning mu in [0, N) covers all of them.
  const int nsq = ch_.n * ch_.n + ch_.n * ch_.m + ch_.m * ch_.m;
  const int dr = std::gcd(2 * ch_.n + ch_.m, 2 * ch_.m + ch_.n);
  const int num_lines = 2 * nsq / dr;
  double emin = 1e300;
  for (int mu = 0; mu < num_lines; ++mu) {
    emin = std::min(emin, subband_minimum_numeric(mu, 2000));
    if (emin < 1e-6) break;  // metallic, no point scanning further
  }
  return 2.0 * emin;
}

SubbandLadder make_cnt_ladder_from_gap(double band_gap_ev, int num_subbands,
                                       const GrapheneParams& p) {
  CARBON_REQUIRE(band_gap_ev > 0.0, "band gap must be positive");
  CARBON_REQUIRE(num_subbands >= 1, "need at least one subband");
  // Semiconducting ladder |3j+1| = 1, 2, 4, 5, 7, ... in units of Eg/2.
  static constexpr int kLadder[] = {1, 2, 4, 5, 7, 8, 10, 11};
  SubbandLadder out;
  const int count = std::min<int>(num_subbands, std::size(kLadder));
  for (int i = 0; i < count; ++i) {
    Subband s;
    s.delta_ev = 0.5 * band_gap_ev * kLadder[i];
    s.degeneracy = 4;
    s.fermi_velocity = p.fermi_velocity();
    out.subbands.push_back(s);
  }
  return out;
}

double cnt_diameter_from_gap(double band_gap_ev, const GrapheneParams& p) {
  CARBON_REQUIRE(band_gap_ev > 0.0, "band gap must be positive");
  return 2.0 * p.gamma0_ev * p.a_cc_m / band_gap_ev;
}

std::vector<Chirality> enumerate_chiralities(double d_lo, double d_hi,
                                             const GrapheneParams& p) {
  CARBON_REQUIRE(d_hi > d_lo && d_lo > 0.0, "need a positive diameter window");
  std::vector<Chirality> out;
  const double a = p.lattice_constant();
  const int n_max = static_cast<int>(M_PI * d_hi / a) + 1;
  for (int n = 1; n <= n_max; ++n) {
    for (int m = 0; m <= n; ++m) {
      const Chirality ch{n, m};
      const double d = ch.diameter(p);
      if (d >= d_lo && d <= d_hi) out.push_back(ch);
    }
  }
  return out;
}

}  // namespace carbon::band
