#include "band/subband.h"

#include <algorithm>
#include <cmath>

#include "phys/constants.h"
#include "phys/fermi.h"
#include "phys/integrate.h"
#include "phys/require.h"

namespace carbon::band {

using phys::kHbar;
using phys::kQ;

double Subband::effective_mass() const {
  return delta_ev * kQ / (fermi_velocity * fermi_velocity);
}

double Subband::dos(double energy_ev) const {
  if (energy_ev <= delta_ev) return 0.0;
  const double hbar_vf_ev_m = kHbar * fermi_velocity / kQ;  // eV * m
  // g(E) = (D / (pi * hbar vF)) * E / sqrt(E^2 - Delta^2)  per unit length.
  const double e2 = energy_ev * energy_ev - delta_ev * delta_ev;
  return degeneracy / (M_PI * hbar_vf_ev_m) * energy_ev / std::sqrt(e2);
}

double SubbandLadder::band_gap() const {
  CARBON_REQUIRE(!subbands.empty(), "empty subband ladder");
  double dmin = subbands.front().delta_ev;
  for (const auto& s : subbands) dmin = std::min(dmin, s.delta_ev);
  return 2.0 * dmin;
}

double SubbandLadder::dos(double energy_ev) const {
  double g = 0.0;
  for (const auto& s : subbands) g += s.dos(energy_ev);
  return g;
}

double SubbandLadder::electron_density(double mu_ev, double kt_ev) const {
  double n = 0.0;
  for (const auto& s : subbands) {
    // Substitute E = sqrt(Delta^2 + u^2) to remove the inverse-sqrt van Hove
    // singularity at the band edge: integrand becomes smooth in u = hbar vF k.
    //   integral g(E) f(E) dE = (D / pi hbar vF) * integral f(E(u)) du.
    const double hbar_vf_ev_m = kHbar * s.fermi_velocity / kQ;
    const auto integrand = [&](double u) {
      const double e = std::sqrt(s.delta_ev * s.delta_ev + u * u);
      return phys::fermi(e, mu_ev, kt_ev);
    };
    const double integral = phys::integrate_semi_infinite(
        integrand, 0.0, std::max(kt_ev, 1e-4), 1e-14);
    n += s.degeneracy / (M_PI * hbar_vf_ev_m) * integral;
  }
  return n;
}

double SubbandLadder::quantum_capacitance(double mu_ev, double kt_ev) const {
  double cq = 0.0;
  for (const auto& s : subbands) {
    const double hbar_vf_ev_m = kHbar * s.fermi_velocity / kQ;
    const auto integrand = [&](double u) {
      const double e = std::sqrt(s.delta_ev * s.delta_ev + u * u);
      // electrons and holes both contribute symmetrically
      return phys::fermi_minus_dfde(e, mu_ev, kt_ev) +
             phys::fermi_minus_dfde(-e, mu_ev, kt_ev);
    };
    const double integral = phys::integrate_semi_infinite(
        integrand, 0.0, std::max(kt_ev, 1e-4), 1e-12);
    cq += s.degeneracy / (M_PI * hbar_vf_ev_m) * integral;  // 1/(eV m)
  }
  // Cq = q^2 * integral[1/(J m)] = q^2/q * integral[1/(eV m)] = q * integral.
  return cq * kQ;  // F/m
}

}  // namespace carbon::band
