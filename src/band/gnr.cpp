#include "band/gnr.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "phys/constants.h"
#include "phys/require.h"

namespace carbon::band {

GnrBandStructure::GnrBandStructure(int num_dimer_lines,
                                   double edge_bond_relaxation,
                                   GrapheneParams p)
    : n_(num_dimer_lines), edge_delta_(edge_bond_relaxation), p_(p) {
  CARBON_REQUIRE(num_dimer_lines >= 3, "ribbon too narrow (N >= 3)");
  CARBON_REQUIRE(edge_bond_relaxation >= 0.0 && edge_bond_relaxation < 0.5,
                 "edge relaxation outside the perturbative regime");
}

GnrFamily GnrBandStructure::family() const {
  switch (n_ % 3) {
    case 0: return GnrFamily::kThreeQ;
    case 1: return GnrFamily::kThreeQPlus1;
    default: return GnrFamily::kThreeQPlus2;
  }
}

double GnrBandStructure::width() const {
  return (n_ - 1) * p_.lattice_constant() / 2.0;
}

double GnrBandStructure::subband_edge(int p) const {
  CARBON_REQUIRE(p >= 1 && p <= n_, "subband index out of range");
  const double theta = p * M_PI / (n_ + 1);
  const double bare = p_.gamma0_ev * (1.0 + 2.0 * std::cos(theta));
  // First-order perturbation from strengthening the two edge bonds by
  // edge_delta_: the transverse standing wave sin(p pi x/(N+1)) has weight
  // 2 sin^2(theta)/(N+1) on the edge sites (Son–Cohen–Louie / Zheng et al.).
  const double correction =
      2.0 * edge_delta_ * p_.gamma0_ev * 2.0 * std::sin(theta) *
      std::sin(theta) / (n_ + 1);
  return std::abs(bare + correction);
}

double GnrBandStructure::band_gap() const {
  double dmin = subband_edge(1);
  for (int p = 2; p <= n_; ++p) dmin = std::min(dmin, subband_edge(p));
  return 2.0 * dmin;
}

SubbandLadder GnrBandStructure::ladder(int num_subbands) const {
  CARBON_REQUIRE(num_subbands >= 1, "need at least one subband");
  std::vector<double> edges;
  edges.reserve(n_);
  for (int p = 1; p <= n_; ++p) edges.push_back(subband_edge(p));
  std::sort(edges.begin(), edges.end());

  SubbandLadder out;
  const int count = std::min(num_subbands, n_);
  for (int i = 0; i < count; ++i) {
    Subband s;
    s.delta_ev = edges[i];
    s.degeneracy = 2;  // spin only: the two graphene valleys are mixed
    s.fermi_velocity = p_.fermi_velocity();
    out.subbands.push_back(s);
  }
  return out;
}

int gnr_dimer_lines_for_width(double width_m, const GrapheneParams& p) {
  CARBON_REQUIRE(width_m > 0.0, "width must be positive");
  const int n = static_cast<int>(std::lround(2.0 * width_m /
                                             p.lattice_constant())) + 1;
  return std::max(n, 3);
}

GnrBandStructure make_fig1_gnr(const GrapheneParams& p) {
  // N = 18 (3q family): w = 17 * 0.246/2 nm = 2.09 nm, Eg ~ 0.56-0.57 eV.
  return GnrBandStructure(18, 0.0, p);
}

}  // namespace carbon::band
