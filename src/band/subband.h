#pragma once

/// @file subband.h
/// Generic description of a 1-D hyperbolic subband:
///   E(k) = sqrt(Delta^2 + (hbar vF k)^2)
/// measured from midgap, with a degeneracy factor (spin x valley).  Both CNT
/// and armchair-GNR channels reduce to lists of these subbands near their
/// band edges, which is all the ballistic transport solver needs.

#include <vector>

namespace carbon::band {

/// One hyperbolic 1-D subband (conduction side; valence is mirror symmetric).
struct Subband {
  /// Band-edge energy above midgap, Delta = Eg_i / 2 [eV].
  double delta_ev = 0.0;
  /// Degeneracy (CNT lowest subband: 4 = spin x valley; armchair GNR: 2).
  int degeneracy = 4;
  /// Band velocity parameter vF [m/s].
  double fermi_velocity = 9.0e5;

  /// Band-edge effective mass m* = Delta / vF^2 [kg].
  double effective_mass() const;

  /// Density of states per unit length at energy E above midgap [1/(eV m)];
  /// zero below the band edge.  Includes the degeneracy factor.
  double dos(double energy_ev) const;
};

/// A 1-D channel band structure: a ladder of subbands (conduction side).
struct SubbandLadder {
  std::vector<Subband> subbands;

  /// Band gap = 2 * min Delta [eV].
  double band_gap() const;

  /// Total DOS at E above midgap [1/(eV m)].
  double dos(double energy_ev) const;

  /// Electron line density n [1/m] for Fermi level mu_ev above midgap at
  /// temperature kT (integrates DOS * Fermi over the conduction bands).
  double electron_density(double mu_ev, double kt_ev) const;

  /// Quantum capacitance per unit length [F/m] at Fermi level mu_ev:
  ///   Cq = q^2 * integral DOS(E) * (-df/dE) dE.
  double quantum_capacitance(double mu_ev, double kt_ev) const;
};

}  // namespace carbon::band
