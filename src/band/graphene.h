#pragma once

/// @file graphene.h
/// Nearest-neighbour tight-binding model of graphene.  This is the parent
/// band structure from which both carbon nanotubes (zone folding around the
/// circumference) and armchair graphene nanoribbons (hard-wall transverse
/// quantization) are derived in this library.

namespace carbon::band {

/// Tight-binding parameters of the graphene pi bands.
struct GrapheneParams {
  /// Nearest-neighbour hopping energy gamma0 [eV].  3.0 eV reproduces the
  /// Eg*d ~ 0.85 eV*nm CNT gap law quoted in the literature the paper cites.
  double gamma0_ev = 3.0;
  /// Carbon–carbon bond length [m].
  double a_cc_m = 0.142e-9;

  /// Graphene lattice constant a = sqrt(3) * a_cc [m].
  double lattice_constant() const;

  /// Fermi velocity of the Dirac cone, vF = 3 * gamma0 * a_cc / (2 hbar)
  /// [m/s] (~9.8e5 m/s for the defaults).
  double fermi_velocity() const;
};

/// |E(kx, ky)| of the graphene pi band (electron branch) in eV.
/// kx is along the zigzag direction, ky along armchair; k in 1/m.
double graphene_energy(const GrapheneParams& p, double kx, double ky);

/// Location of the K point (Dirac point) in the kx axis convention used by
/// graphene_energy [1/m].
double graphene_k_point(const GrapheneParams& p);

}  // namespace carbon::band
