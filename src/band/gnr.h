#pragma once

/// @file gnr.h
/// Armchair graphene nanoribbon (aGNR) band structure.  In nearest-neighbour
/// tight binding the transverse hard-wall quantization gives subband edges
///   Delta_p = gamma0 * |1 + 2 cos(p pi / (N+1))|,   p = 1..N,
/// where N is the number of dimer lines across the ribbon.  The three width
/// families behave differently: N = 3q and 3q+1 are semiconducting,
/// N = 3q+2 is metallic in plain tight binding and opens a small gap once
/// edge-bond relaxation is included (Son, Cohen & Louie).  The paper's Fig. 1
/// uses the w = 2.1 nm (N = 18) ribbon with Eg = 0.56 eV.

#include "band/graphene.h"
#include "band/subband.h"

namespace carbon::band {

/// Width-family classification of an armchair ribbon.
enum class GnrFamily {
  kThreeQ,       ///< N = 3q   : moderate gap
  kThreeQPlus1,  ///< N = 3q+1 : largest gap
  kThreeQPlus2,  ///< N = 3q+2 : (near-)metallic
};

/// Armchair GNR band structure.
class GnrBandStructure {
 public:
  /// @param num_dimer_lines  N, the ribbon width in dimer lines (>= 3)
  /// @param edge_bond_relaxation  fractional strengthening of the two edge
  ///        bonds (typical ab-initio value ~0.12); 0 disables the correction
  explicit GnrBandStructure(int num_dimer_lines,
                            double edge_bond_relaxation = 0.0,
                            GrapheneParams p = {});

  int num_dimer_lines() const { return n_; }
  GnrFamily family() const;

  /// Ribbon width w = (N - 1) * a / 2 [m].
  double width() const;

  /// Band gap [eV]; exactly 0 for the 3q+2 family without edge correction.
  double band_gap() const;

  /// Subband-edge energy Delta_p [eV] for p = 1..N (includes the
  /// perturbative edge-bond correction when enabled).
  double subband_edge(int p) const;

  /// Conduction subband ladder sorted by energy; every aGNR subband is
  /// 2-fold (spin) degenerate — half the CNT degeneracy, which is the
  /// "small difference in the linear plot" of the paper's Fig. 1.
  SubbandLadder ladder(int num_subbands = 3) const;

 private:
  int n_;
  double edge_delta_;
  GrapheneParams p_;
};

/// Number of dimer lines of the aGNR closest to width @p width_m [m].
int gnr_dimer_lines_for_width(double width_m, const GrapheneParams& p = {});

/// The ribbon the paper's Fig. 1 discusses: w ~ 2.1 nm, Eg ~ 0.56 eV.
GnrBandStructure make_fig1_gnr(const GrapheneParams& p = {});

}  // namespace carbon::band
