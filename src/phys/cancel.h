#pragma once

/// @file cancel.h
/// Cooperative cancellation with wall-clock deadlines.
///
/// A CancelToken is a cheap, thread-safe stop signal: any thread may call
/// cancel() (or arm a deadline), and long-running numerical loops poll
/// stopped() / throw_if_stopped() at their iteration boundaries — the
/// Newton inner loop and the transient step loop both do (see
/// spice::SolverOptions::cancel).  Tokens chain: a child token constructed
/// with a parent stops whenever the parent stops, which is how the
/// ensemble runner nests a per-trial deadline inside a per-batch one.
///
/// Polling cost is one relaxed atomic load plus (when a deadline is armed)
/// one steady_clock read — negligible against even a single sparse-LU
/// refactor, so checking every Newton iteration is free in practice.

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace carbon::phys {

/// Thrown by throw_if_stopped() when a token fired.  Deliberately NOT a
/// ConvergenceError: cancellation is not a solver failure, and the
/// convergence escalation ladder must never swallow it as "this homotopy
/// rung did not converge".
class CancelledError : public std::runtime_error {
 public:
  CancelledError(bool deadline_expired, const std::string& where);

  /// True when a deadline elapsed; false for an explicit cancel().
  bool deadline_expired() const { return deadline_expired_; }
  /// The loop that observed the stop ("newton", "transient", ...).
  const std::string& where() const { return where_; }

 private:
  bool deadline_expired_;
  std::string where_;
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  /// A child token: stops when either itself or @p parent stops.  The
  /// parent must outlive the child.
  explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

  // The atomic flag is identity, not value; tokens are shared by pointer.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request a stop.  Safe from any thread, repeatable.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm (or re-arm) a wall-clock deadline @p seconds from now.
  /// seconds <= 0 fires immediately.
  void set_deadline_after(double seconds);

  /// True when cancel() was called on this token or an ancestor.
  bool cancelled() const;

  /// True when an armed deadline (here or on an ancestor) has elapsed.
  bool expired() const;

  /// cancelled() || expired() — what polling loops check.
  bool stopped() const { return cancelled() || expired(); }

  /// Seconds until the nearest armed deadline; +inf when none.
  double seconds_remaining() const;

  /// Throw CancelledError when stopped; @p where names the polling loop.
  void throw_if_stopped(const char* where) const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  Clock::time_point deadline_{};
  const CancelToken* parent_ = nullptr;
};

}  // namespace carbon::phys
