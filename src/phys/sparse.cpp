#include "phys/sparse.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "phys/require.h"

namespace carbon::phys {

// ------------------------------------------------------------ SparseMatrixT

template <typename T>
SparseMatrixT<T> SparseMatrixT<T>::from_coords(
    int n, std::vector<std::pair<int, int>> coords) {
  CARBON_REQUIRE(n >= 0, "matrix dimension must be non-negative");
  for (const auto& [r, c] : coords) {
    CARBON_REQUIRE(r >= 0 && r < n && c >= 0 && c < n,
                   "coordinate out of range");
  }
  std::sort(coords.begin(), coords.end());
  coords.erase(std::unique(coords.begin(), coords.end()), coords.end());

  SparseMatrixT m;
  m.n_ = n;
  m.row_ptr_.assign(n + 1, 0);
  m.col_idx_.reserve(coords.size());
  for (const auto& [r, c] : coords) {
    ++m.row_ptr_[r + 1];
    m.col_idx_.push_back(c);
  }
  for (int r = 0; r < n; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  m.values_.assign(coords.size(), T{});
  return m;
}

template <typename T>
int SparseMatrixT<T>::slot(int r, int c) const {
  CARBON_REQUIRE(r >= 0 && r < n_ && c >= 0 && c < n_, "index out of range");
  const auto first = col_idx_.begin() + row_ptr_[r];
  const auto last = col_idx_.begin() + row_ptr_[r + 1];
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return -1;
  return static_cast<int>(it - col_idx_.begin());
}

template <typename T>
T SparseMatrixT<T>::at(int r, int c) const {
  const int s = slot(r, c);
  return s < 0 ? T{} : values_[s];
}

template <typename T>
void SparseMatrixT<T>::zero_values() {
  std::fill(values_.begin(), values_.end(), T{});
}

template <typename T>
double SparseMatrixT<T>::max_abs() const {
  double m = 0.0;
  for (const T& v : values_) m = std::max(m, std::abs(v));
  return m;
}

template <typename T>
typename detail::DenseMatrixFor<T>::type SparseMatrixT<T>::to_dense() const {
  typename detail::DenseMatrixFor<T>::type d(n_, n_);
  for (int r = 0; r < n_; ++r) {
    for (int t = row_ptr_[r]; t < row_ptr_[r + 1]; ++t) {
      d(r, col_idx_[t]) = values_[t];
    }
  }
  return d;
}

// -------------------------------------------------------- min_degree_order

template <typename T>
std::vector<int> min_degree_order(const SparseMatrixT<T>& a) {
  const int n = a.size();
  // Adjacency of the symmetrized pattern (A + At), diagonal dropped.
  std::vector<std::vector<int>> adj(n);
  for (int r = 0; r < n; ++r) {
    for (int t = a.row_ptr()[r]; t < a.row_ptr()[r + 1]; ++t) {
      const int c = a.col_idx()[t];
      if (c == r) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  // Lazy min-heap of (degree, vertex); stale entries skipped on pop.
  using Entry = std::pair<int, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int v = 0; v < n; ++v) heap.emplace(static_cast<int>(adj[v].size()), v);

  std::vector<char> dead(n, 0);
  std::vector<int> mark(n, -1);
  int stamp = 0;  // unique per adjacency rebuild
  std::vector<int> order;
  order.reserve(n);
  std::vector<int> scratch;

  while (static_cast<int>(order.size()) < n) {
    CARBON_REQUIRE(!heap.empty(), "min-degree heap exhausted early");
    const auto [deg, v] = heap.top();
    heap.pop();
    if (dead[v] || deg != static_cast<int>(adj[v].size())) continue;

    dead[v] = 1;
    order.push_back(v);

    // Eliminating v turns its (alive) neighborhood into a clique.
    std::vector<int> nbrs;
    nbrs.reserve(adj[v].size());
    for (int u : adj[v]) {
      if (!dead[u]) nbrs.push_back(u);
    }
    for (int u : nbrs) {
      // adj[u] := (alive(adj[u]) \ {v}) ∪ (nbrs \ {u}), deduped via mark.
      scratch.clear();
      ++stamp;
      mark[u] = stamp;  // never insert self
      for (int w : adj[u]) {
        if (dead[w] || mark[w] == stamp) continue;
        mark[w] = stamp;
        scratch.push_back(w);
      }
      for (int w : nbrs) {
        if (mark[w] == stamp) continue;
        mark[w] = stamp;
        scratch.push_back(w);
      }
      adj[u].swap(scratch);
      heap.emplace(static_cast<int>(adj[u].size()), u);
    }
    adj[v].clear();
    adj[v].shrink_to_fit();
  }
  return order;
}

// ---------------------------------------------------------------- SparseLuT

template <typename T>
void SparseLuT<T>::require_pattern_match(const SparseMatrixT<T>& a) const {
  CARBON_REQUIRE(analyzed_, "SparseLu: analyze_factor() has not run");
  CARBON_REQUIRE(a.size() == n_ && a.nnz() == pattern_nnz_,
                 "SparseLu: matrix pattern does not match the analysis");
}

template <typename T>
void SparseLuT<T>::analyze_factor(const SparseMatrixT<T>& a) {
  const int n = a.size();
  CARBON_REQUIRE(n > 0, "SparseLu: empty matrix");
  analyzed_ = false;
  factored_ = false;
  failure_row_ = -1;
  failure_col_ = -1;
  failure_nonfinite_ = false;
  ++analyze_count_;
  n_ = n;
  pattern_nnz_ = a.nnz();

  // Fill-reducing symmetric preorder: we factor C(i, j) = A(p[i], p[j]).
  p_ = min_degree_order(a);
  std::vector<int> pos(n);  // original index -> permuted index
  for (int i = 0; i < n; ++i) pos[p_[i]] = i;

  const double amax = a.max_abs();
  const double floor_abs =
      std::max(1e-300, std::max(amax, 1e-300) * opt_.singular_tol);

  // Column pivot state: cpiv[j] = pivot position of permuted column j.
  std::vector<int> cpiv(n, -1);

  // Growing factors, indexed in *permuted-column* space during analysis;
  // translated to pivot space at the end.
  aptr_.assign(n + 1, 0);
  asrc_.clear();
  adst_.clear();
  eptr_.assign(n + 1, 0);
  ek_.clear();
  lval_.clear();
  uptr_.assign(n + 1, 0);
  ucol_.clear();
  uval_.clear();
  udiag_.assign(n, T{});

  std::vector<T> x(n, T{});            // dense accumulator (permuted cols)
  std::vector<int> vstamp(n, -1);      // DFS visited marker, stamped by row
  std::vector<int> postorder;          // pivotal columns, DFS postorder
  std::vector<int> cand;               // non-pivotal columns reached
  std::vector<std::pair<int, int>> dfs_stack;  // (column, child cursor)

  for (int i = 0; i < n; ++i) {
    postorder.clear();
    cand.clear();

    // --- symbolic: reach of row i's pattern through the finished U rows.
    const int row = p_[i];
    for (int t = a.row_ptr()[row]; t < a.row_ptr()[row + 1]; ++t) {
      const int seed = pos[a.col_idx()[t]];
      if (vstamp[seed] == i) continue;
      vstamp[seed] = i;
      if (cpiv[seed] < 0) {
        cand.push_back(seed);
        continue;
      }
      dfs_stack.emplace_back(seed, uptr_[cpiv[seed]]);
      while (!dfs_stack.empty()) {
        auto& [j, cursor] = dfs_stack.back();
        const int k = cpiv[j];
        if (cursor < uptr_[k + 1]) {
          const int child = ucol_[cursor++];
          if (vstamp[child] != i) {
            vstamp[child] = i;
            if (cpiv[child] < 0) {
              cand.push_back(child);
            } else {
              dfs_stack.emplace_back(child, uptr_[cpiv[child]]);
            }
          }
        } else {
          postorder.push_back(j);
          dfs_stack.pop_back();
        }
      }
    }

    // --- numeric: scatter A row, eliminate along the reach.
    for (int t = a.row_ptr()[row]; t < a.row_ptr()[row + 1]; ++t) {
      const int j = pos[a.col_idx()[t]];
      x[j] = a.values()[t];
      asrc_.push_back(t);
      adst_.push_back(j);  // translated to pivot space below
    }
    aptr_[i + 1] = static_cast<int>(asrc_.size());

    // Reverse postorder is a topological order of the elimination DAG:
    // every pivot row is applied after all updates into it have landed.
    for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
      const int j = *it;
      const int k = cpiv[j];
      const T l = x[j] / udiag_[k];
      x[j] = T{};
      ek_.push_back(k);
      lval_.push_back(l);
      if (l != T{}) {
        for (int s = uptr_[k]; s < uptr_[k + 1]; ++s) {
          x[ucol_[s]] -= l * uval_[s];
        }
      }
    }
    eptr_[i + 1] = static_cast<int>(ek_.size());

    // --- pivot: largest candidate, preferring the (permuted) diagonal.
    // A NaN candidate must be flagged explicitly: NaN > amax_c compares
    // false, so it would otherwise be skipped and survive in U.
    double amax_c = 0.0;
    int jmax = -1;
    int jbad = -1;
    for (int j : cand) {
      const double v = std::abs(x[j]);
      if (!std::isfinite(v)) jbad = j;
      if (v > amax_c) {
        amax_c = v;
        jmax = j;
      }
    }
    if (jbad >= 0 || jmax < 0 || amax_c <= floor_abs) {
      // Leave no stale state behind for a later refactor().
      for (int j : cand) x[j] = T{};
      failure_nonfinite_ = jbad >= 0;
      failure_row_ = p_[i];
      // Zero row (jmax < 0): no candidate stands out, attribute the
      // would-be diagonal — for MNA systems that is the offending node.
      const int jcol = jbad >= 0 ? jbad : (jmax >= 0 ? jmax : i);
      failure_col_ = p_[jcol];
      throw SingularMatrixError(
          failure_nonfinite_ ? SingularMatrixError::Kind::kNonFinite
                             : SingularMatrixError::Kind::kSingular,
          failure_row_, failure_col_,
          failure_nonfinite_
              ? "sparse LU: non-finite value in pivot row " +
                    std::to_string(failure_row_)
              : "sparse LU: matrix is numerically singular at row " +
                    std::to_string(failure_row_));
    }
    int jp = jmax;
    if (vstamp[i] == i && cpiv[i] < 0 &&
        std::abs(x[i]) >= opt_.pivot_tol * amax_c) {
      jp = i;  // diagonal of C keeps the preorder's fill prediction
    }
    cpiv[jp] = i;
    udiag_[i] = x[jp];
    x[jp] = T{};
    for (int j : cand) {
      if (j == jp) continue;
      ucol_.push_back(j);  // translated to pivot space below
      uval_.push_back(x[j]);
      x[j] = T{};
    }
    uptr_[i + 1] = static_cast<int>(ucol_.size());
  }

  // Translate all permuted-column references into final pivot positions.
  for (int& c : ucol_) c = cpiv[c];
  for (int& c : adst_) c = cpiv[c];
  solcol_.assign(n, 0);
  for (int j = 0; j < n; ++j) solcol_[cpiv[j]] = p_[j];

  work_.assign(n, T{});
  analyzed_ = true;
  factored_ = true;
}

template <typename T>
bool SparseLuT<T>::refactor(const SparseMatrixT<T>& a) {
  require_pattern_match(a);
  factored_ = false;
  failure_row_ = -1;
  failure_col_ = -1;
  failure_nonfinite_ = false;

  const double amax = a.max_abs();
  const double floor_abs =
      std::max(1e-300, std::max(amax, 1e-300) * opt_.singular_tol);
  const std::vector<T>& av = a.values();

  std::vector<T>& x = work_;  // kept all-zero between uses
  for (int i = 0; i < n_; ++i) {
    for (int t = aptr_[i]; t < aptr_[i + 1]; ++t) x[adst_[t]] = av[asrc_[t]];

    for (int t = eptr_[i]; t < eptr_[i + 1]; ++t) {
      const int k = ek_[t];
      const T l = x[k] / udiag_[k];
      x[k] = T{};
      lval_[t] = l;
      if (l != T{}) {
        for (int s = uptr_[k]; s < uptr_[k + 1]; ++s) {
          x[ucol_[s]] -= l * uval_[s];
        }
      }
    }

    const T piv = x[i];
    const double piv_abs = std::abs(piv);
    if (!std::isfinite(piv_abs) || piv_abs <= floor_abs) {
      // Pivot collapse: scrub the scatter and report the stale ordering.
      x[i] = T{};
      for (int s = uptr_[i]; s < uptr_[i + 1]; ++s) x[ucol_[s]] = T{};
      failure_nonfinite_ = !std::isfinite(piv_abs);
      failure_row_ = p_[i];
      failure_col_ = solcol_[i];
      return false;
    }
    udiag_[i] = piv;
    x[i] = T{};
    double rowmax = piv_abs;
    for (int s = uptr_[i]; s < uptr_[i + 1]; ++s) {
      uval_[s] = x[ucol_[s]];
      x[ucol_[s]] = T{};
      rowmax = std::max(rowmax, std::abs(uval_[s]));
    }
    if (piv_abs < opt_.refactor_tol * rowmax) {
      // The recorded order has gone numerically stale: this pivot was the
      // row's (threshold-)largest entry when it was picked, but the values
      // have drifted until it no longer dominates.  Reject so factor()
      // re-picks pivots for the current values.
      failure_row_ = p_[i];
      failure_col_ = solcol_[i];
      return false;
    }
  }
  factored_ = true;
  return true;
}

template <typename T>
void SparseLuT<T>::factor(const SparseMatrixT<T>& a) {
  if (!analyzed_ || a.size() != n_ || a.nnz() != pattern_nnz_) {
    analyze_factor(a);
    return;
  }
  if (refactor(a)) return;
  analyze_factor(a);  // re-pick pivots for the drifted values
}

template <typename T>
void SparseLuT<T>::solve_in_place(std::vector<T>& bx) const {
  CARBON_REQUIRE(factored_, "SparseLu: no factorization held");
  CARBON_REQUIRE(static_cast<int>(bx.size()) == n_, "rhs size mismatch");
  std::vector<T>& w = work_;

  // Row-permuted RHS, then L (unit diagonal, rows = elimination records).
  for (int i = 0; i < n_; ++i) w[i] = bx[p_[i]];
  for (int i = 0; i < n_; ++i) {
    T s = w[i];
    for (int t = eptr_[i]; t < eptr_[i + 1]; ++t) s -= lval_[t] * w[ek_[t]];
    w[i] = s;
  }
  // U back-substitution.
  for (int i = n_ - 1; i >= 0; --i) {
    T s = w[i];
    for (int t = uptr_[i]; t < uptr_[i + 1]; ++t) s -= uval_[t] * w[ucol_[t]];
    w[i] = s / udiag_[i];
  }
  // Undo the column pivoting: position k holds variable solcol_[k].
  for (int k = 0; k < n_; ++k) bx[solcol_[k]] = w[k];
  std::fill(w.begin(), w.end(), T{});  // keep the scatter invariant
}

template <typename T>
void SparseLuT<T>::solve_transpose_in_place(std::vector<T>& bx) const {
  CARBON_REQUIRE(factored_, "SparseLu: no factorization held");
  CARBON_REQUIRE(static_cast<int>(bx.size()) == n_, "rhs size mismatch");
  std::vector<T>& w = work_;

  // The recorded factorization is A = Pᵀ L U Q (solve_in_place applies
  // P, L⁻¹, U⁻¹, Qᵀ in that order), so Aᵀ x = b unwinds as
  // Uᵀ (Lᵀ (Pᵀ x)) = Q b: scatter b through Q, a forward sweep with Uᵀ
  // (lower triangular, diagonal udiag_), a backward sweep with Lᵀ (unit
  // upper triangular), and a final scatter through Pᵀ.
  for (int k = 0; k < n_; ++k) w[k] = bx[solcol_[k]];
  for (int i = 0; i < n_; ++i) {
    const T wi = w[i] / udiag_[i];
    w[i] = wi;
    if (wi != T{}) {
      for (int t = uptr_[i]; t < uptr_[i + 1]; ++t) {
        w[ucol_[t]] -= uval_[t] * wi;
      }
    }
  }
  for (int i = n_ - 1; i >= 0; --i) {
    const T zi = w[i];  // unit diagonal
    if (zi != T{}) {
      for (int t = eptr_[i]; t < eptr_[i + 1]; ++t) {
        w[ek_[t]] -= lval_[t] * zi;
      }
    }
  }
  for (int i = 0; i < n_; ++i) bx[p_[i]] = w[i];
  std::fill(w.begin(), w.end(), T{});  // keep the scatter invariant
}

template <typename T>
std::vector<T> SparseLuT<T>::solve(std::vector<T> b) const {
  solve_in_place(b);
  return b;
}

template <typename T>
int SparseLuT<T>::fill_nnz() const {
  return static_cast<int>(ek_.size() + ucol_.size()) + n_;
}

// ---------------------------------------------------- explicit instantiation

template class SparseMatrixT<double>;
template class SparseMatrixT<Complex>;
template class SparseLuT<double>;
template class SparseLuT<Complex>;
template std::vector<int> min_degree_order(const SparseMatrixT<double>&);
template std::vector<int> min_degree_order(const SparseMatrixT<Complex>&);

}  // namespace carbon::phys
