#pragma once

/// @file require.h
/// Precondition / invariant checking helpers.  Violations throw; they are
/// programming or calibration errors, not recoverable runtime conditions.

#include <sstream>
#include <stdexcept>
#include <string>

namespace carbon::phys {

/// Thrown when a function precondition is violated.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an iterative numerical method fails to converge.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the LU factorizations (dense, complex, sparse) when a pivot
/// collapses numerically or a non-finite value reaches the elimination.
/// Carries the failing matrix position so the solver layers can name the
/// culprit row/node instead of propagating NaNs or a bare failure.
class SingularMatrixError : public ConvergenceError {
 public:
  enum class Kind {
    kSingular,   ///< pivot magnitude below the singularity floor
    kNonFinite,  ///< NaN/Inf entered the elimination
  };

  SingularMatrixError(Kind kind, int row, int col, const std::string& what)
      : ConvergenceError(what), kind_(kind), row_(row), col_(col) {}

  Kind kind() const { return kind_; }
  /// 0-based row of the collapsed pivot (-1 when not attributable).
  int row() const { return row_; }
  /// 0-based column of the collapsed pivot (-1 when not attributable).
  int col() const { return col_; }

 private:
  Kind kind_;
  int row_;
  int col_;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace carbon::phys

/// Check a precondition; throws carbon::phys::PreconditionError on failure.
#define CARBON_REQUIRE(expr, msg)                                            \
  do {                                                                       \
    if (!(expr))                                                             \
      ::carbon::phys::detail::throw_precondition(#expr, __FILE__, __LINE__,  \
                                                 (msg));                     \
  } while (false)
