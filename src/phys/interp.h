#pragma once

/// @file interp.h
/// Tabulated-function interpolation: linear and monotone cubic (PCHIP).

#include <vector>

namespace carbon::phys {

/// Piecewise-linear interpolant over strictly increasing abscissae.
/// Extrapolates with the boundary segments.
class LinearInterp {
 public:
  LinearInterp() = default;
  /// @param x strictly increasing sample locations
  /// @param y sample values, same size as @p x (size >= 2)
  LinearInterp(std::vector<double> x, std::vector<double> y);

  /// Interpolated value at @p xq.
  double operator()(double xq) const;

  /// Slope of the segment containing @p xq.
  double derivative(double xq) const;

  int size() const { return static_cast<int>(x_.size()); }
  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }

 private:
  int segment(double xq) const;
  std::vector<double> x_, y_;
};

/// Monotone piecewise-cubic Hermite interpolant (Fritsch–Carlson slopes).
/// Preserves monotonicity of the data — important when interpolating I–V
/// tables that must not introduce spurious negative conductance.
class PchipInterp {
 public:
  PchipInterp() = default;
  PchipInterp(std::vector<double> x, std::vector<double> y);

  double operator()(double xq) const;
  double derivative(double xq) const;

  int size() const { return static_cast<int>(x_.size()); }

 private:
  int segment(double xq) const;
  std::vector<double> x_, y_, m_;  // m_: endpoint slopes
};

}  // namespace carbon::phys
