#pragma once

/// @file interp.h
/// Tabulated-function interpolation: linear and monotone cubic (PCHIP).

#include <vector>

namespace carbon::phys {

/// Piecewise-linear interpolant over strictly increasing abscissae.
/// Extrapolates with the boundary segments.
class LinearInterp {
 public:
  LinearInterp() = default;
  /// @param x strictly increasing sample locations
  /// @param y sample values, same size as @p x (size >= 2)
  LinearInterp(std::vector<double> x, std::vector<double> y);

  /// Interpolated value at @p xq.
  double operator()(double xq) const;

  /// Slope of the segment containing @p xq.
  double derivative(double xq) const;

  int size() const { return static_cast<int>(x_.size()); }
  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }

 private:
  int segment(double xq) const;
  std::vector<double> x_, y_;
};

/// Monotone piecewise-cubic Hermite interpolant (Fritsch–Carlson slopes).
/// Preserves monotonicity of the data — important when interpolating I–V
/// tables that must not introduce spurious negative conductance.
class PchipInterp {
 public:
  PchipInterp() = default;
  PchipInterp(std::vector<double> x, std::vector<double> y);

  double operator()(double xq) const;
  double derivative(double xq) const;

  int size() const { return static_cast<int>(x_.size()); }

 private:
  int segment(double xq) const;
  std::vector<double> x_, y_, m_;  // m_: endpoint slopes
};

/// 2-D tensor-product cubic Hermite table on a rectilinear grid with
/// shape-preserving (Fritsch–Carlson) slopes along each axis and zero cross
/// derivatives.  Built for tabulated I–V surfaces: C1 everywhere, analytic
/// partial derivatives, and near-monotone along grid lines (the PCHIP slope
/// limiting suppresses the overshoot a plain bicubic spline would add).
/// Queries outside the grid extrapolate with the edge patch, matching the
/// 1-D interpolants' behavior.
class BicubicTable {
 public:
  /// Value and both partial derivatives at a query point.
  struct Eval {
    double f = 0.0;
    double fx = 0.0;  ///< df/dx
    double fy = 0.0;  ///< df/dy
  };

  BicubicTable() = default;
  /// @param x strictly increasing sample locations (size >= 2)
  /// @param y strictly increasing sample locations (size >= 2)
  /// @param z row-major samples: z[i * y.size() + j] = f(x[i], y[j])
  BicubicTable(std::vector<double> x, std::vector<double> y,
               std::vector<double> z);

  /// Value + analytic partials at (xq, yq).
  Eval eval(double xq, double yq) const;
  /// Value only.
  double operator()(double xq, double yq) const { return eval(xq, yq).f; }

  int size_x() const { return static_cast<int>(x_.size()); }
  int size_y() const { return static_cast<int>(y_.size()); }
  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }

 private:
  double z(int i, int j) const { return z_[i * y_.size() + j]; }
  double zx(int i, int j) const { return zx_[i * y_.size() + j]; }
  double zy(int i, int j) const { return zy_[i * y_.size() + j]; }

  std::vector<double> x_, y_;
  std::vector<double> z_;            // values, row-major [i][j]
  std::vector<double> zx_, zy_;      // FC slopes along x and along y
};

}  // namespace carbon::phys
