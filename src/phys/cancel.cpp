#include "phys/cancel.h"

#include <limits>

namespace carbon::phys {

CancelledError::CancelledError(bool deadline_expired, const std::string& where)
    : std::runtime_error(std::string(deadline_expired ? "deadline expired"
                                                      : "cancelled") +
                         " in " + where),
      deadline_expired_(deadline_expired),
      where_(where) {}

void CancelToken::set_deadline_after(double seconds) {
  deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     seconds > 0.0 ? seconds : 0.0));
  has_deadline_.store(true, std::memory_order_release);
}

bool CancelToken::cancelled() const {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  return parent_ != nullptr && parent_->cancelled();
}

bool CancelToken::expired() const {
  if (has_deadline_.load(std::memory_order_acquire) &&
      Clock::now() >= deadline_) {
    return true;
  }
  return parent_ != nullptr && parent_->expired();
}

double CancelToken::seconds_remaining() const {
  double remaining = std::numeric_limits<double>::infinity();
  if (has_deadline_.load(std::memory_order_acquire)) {
    remaining = std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }
  if (parent_ != nullptr) {
    remaining = std::min(remaining, parent_->seconds_remaining());
  }
  return remaining;
}

void CancelToken::throw_if_stopped(const char* where) const {
  // Explicit cancellation wins the tie: it is the caller's intent, while a
  // deadline is the budget backstop.
  if (cancelled()) throw CancelledError(false, where);
  if (expired()) throw CancelledError(true, where);
}

}  // namespace carbon::phys
