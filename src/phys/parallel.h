#pragma once

/// @file parallel.h
/// A small fixed-size thread pool and a blocked parallel_for on top of it,
/// used by the embarrassingly parallel Monte-Carlo loops in the fab layer.
///
/// Determinism contract: parallel_for partitions [0, n) into contiguous
/// blocks whose boundaries depend only on n and the requested thread count,
/// and the caller's body must make per-index work independent (e.g. one RNG
/// stream per index via stream_seed).  Under that contract results are
/// bit-for-bit identical for any number of worker threads.

#include <cstdint>
#include <functional>

#include "phys/rng.h"

namespace carbon::phys {

/// Worker-thread count used when a parallel call passes 0: the
/// CARBON_NUM_THREADS environment variable when set (>= 1), otherwise
/// std::thread::hardware_concurrency (at least 1).
int default_num_threads();

/// Lazily constructed process-wide pool of persistent worker threads.
/// Tasks are submitted in batches; run() blocks until the batch completes.
class ThreadPool {
 public:
  /// The shared pool, created on first use with default_num_threads()
  /// workers.
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return num_workers_; }

  /// Run task(0) ... task(num_tasks - 1) on the pool and wait for all of
  /// them.  The calling thread participates, so the pool also works when it
  /// has a single (or zero) workers.
  ///
  /// Fault isolation: the first exception thrown by any task is captured
  /// and rethrown on the caller after the batch drains — it never escapes a
  /// worker thread (which would std::terminate the process) — and the
  /// batch fails fast: unclaimed tasks are skipped once a task has thrown.
  /// The pool survives a throwing batch and accepts the next one.
  ///
  /// Reentrancy: a nested run() — from inside a task body, or from another
  /// thread while a batch is active — executes its tasks inline on the
  /// calling thread instead of fanning out.  Coverage and determinism
  /// contracts are unchanged; only the nested call's parallelism is lost.
  void run(int num_tasks, const std::function<void(int)>& task);

 private:
  explicit ThreadPool(int num_workers);
  struct Impl;
  Impl* impl_;
  int num_workers_ = 0;
};

/// Blocked parallel loop: body(begin, end) is invoked over contiguous,
/// disjoint blocks covering [0, n).  @p num_threads 0 = default pool size;
/// 1 (or n <= 1) runs inline on the caller.  Block boundaries depend only
/// on n and the resolved thread count's block count — but per-index results
/// must not depend on blocking for the determinism contract to hold.
void parallel_for(long n, const std::function<void(long, long)>& body,
                  int num_threads = 0);

/// Per-index convenience wrapper over parallel_for.
void parallel_for_each(long n, const std::function<void(long)>& body,
                       int num_threads = 0);

/// Deterministic parallel Monte-Carlo loop: [0, n) is split into fixed
/// chunks of ~@p grain indices (the layout depends only on n and grain,
/// never on the thread count) and chunk c runs body(begin, end, rng) with
/// its own Rng seeded from stream_seed(seed, c).  Results are therefore
/// bit-identical for any pool width, while the mt19937 seeding cost is
/// amortized over a chunk instead of being paid per trial.
void parallel_for_seeded(long n, std::uint64_t seed,
                         const std::function<void(long, long, Rng&)>& body,
                         int num_threads = 0, long grain = 64);

/// Decorrelated per-stream seed: a splitmix64 mix of the base seed and a
/// stream index.  Use one stream per Monte-Carlo site so trial i draws the
/// same variates no matter which thread runs it.
std::uint64_t stream_seed(std::uint64_t base_seed, std::uint64_t stream);

}  // namespace carbon::phys
