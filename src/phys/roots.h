#pragma once

/// @file roots.h
/// Scalar root finding: bracketing and Brent's method.  These are the
/// workhorses behind series-resistance solves, threshold retargeting and the
/// self-consistent top-of-barrier potential.

#include <functional>
#include <utility>

namespace carbon::phys {

/// Result of a bracket search.
struct Bracket {
  double lo = 0.0;
  double hi = 0.0;
  bool found = false;
};

/// Expand an initial interval geometrically until f changes sign.
/// @param x0,x1  initial guess interval (x0 != x1)
/// @param max_expansions  number of geometric growth steps
Bracket bracket_root(const std::function<double(double)>& f, double x0,
                     double x1, int max_expansions = 60);

/// Brent's method on a sign-changing bracket [lo, hi].
/// Throws ConvergenceError if the bracket does not change sign or the
/// iteration limit is exceeded.
/// @param x_tol  absolute tolerance on the root location
double brent(const std::function<double(double)>& f, double lo, double hi,
             double x_tol = 1e-12, int max_iter = 200);

/// Convenience: bracket from a guess then run Brent.
double find_root(const std::function<double(double)>& f, double x0, double x1,
                 double x_tol = 1e-12);

/// Safeguarded Newton: uses analytic derivative when it makes progress,
/// falls back to bisection inside a maintained bracket.
double newton_bisect(const std::function<double(double)>& f,
                     const std::function<double(double)>& dfdx, double lo,
                     double hi, double x_tol = 1e-12, int max_iter = 100);

}  // namespace carbon::phys
