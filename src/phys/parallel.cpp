#include "phys/parallel.h"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "phys/require.h"

namespace carbon::phys {

int default_num_threads() {
  if (const char* env = std::getenv("CARBON_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

namespace {
/// Set while the current thread is inside ThreadPool work (a pool worker's
/// drain or the caller's participation).  A nested run() sees it and
/// executes inline instead of deadlocking on / corrupting the active batch.
thread_local bool t_in_pool_run = false;
}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable batch_done;
  std::vector<std::thread> workers;

  // Current batch: task indices [next, num_tasks) remain to be claimed.
  const std::function<void(int)>* task = nullptr;
  int next = 0;
  int num_tasks = 0;
  int pending = 0;  // claimed-but-unfinished + unclaimed tasks
  std::uint64_t generation = 0;
  std::exception_ptr first_error;
  bool stopping = false;

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] {
          return stopping || (task != nullptr && generation != seen_generation);
        });
        if (stopping) return;
        seen_generation = generation;
      }
      t_in_pool_run = true;
      drain(seen_generation);
      t_in_pool_run = false;
    }
  }

  /// Claim one task of batch @p gen under the lock.  Returns false when the
  /// batch is exhausted — or was replaced by a newer one, which is how a
  /// worker that slept through the end of its batch is kept from touching
  /// the next batch's (possibly dangling) task pointer unsynchronized.
  bool claim(std::uint64_t gen, int* index,
             const std::function<void(int)>** fn) {
    std::lock_guard<std::mutex> lock(mutex);
    if (generation != gen || task == nullptr || next >= num_tasks) {
      return false;
    }
    *index = next++;
    *fn = task;  // stays valid while this batch has pending tasks
    return true;
  }

  /// Claim and run tasks until batch @p gen is exhausted.
  void drain(std::uint64_t gen) {
    int i = 0;
    const std::function<void(int)>* fn = nullptr;
    while (claim(gen, &i, &fn)) {
      int finished = 1;  // tasks this loop retires (claimed + skipped)
      try {
        (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
        // Fail fast: the batch's result is already doomed to rethrow, so
        // retire the unclaimed remainder instead of running work whose
        // outcome will be discarded.  Tasks other workers have already
        // claimed still finish and are counted by their own drain loops.
        finished += num_tasks - next;
        next = num_tasks;
      }
      std::lock_guard<std::mutex> lock(mutex);
      if ((pending -= finished) == 0) batch_done.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int num_workers)
    : impl_(new Impl), num_workers_(num_workers) {
  impl_->workers.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_ready.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  // The caller participates in every batch, so keep one fewer persistent
  // worker than the target concurrency.
  static ThreadPool pool(default_num_threads() - 1);
  return pool;
}

void ThreadPool::run(int num_tasks, const std::function<void(int)>& task) {
  if (num_tasks <= 0) return;
  // Nested use — a task body (or another thread while a batch is active)
  // calling back into the pool — degrades to inline serial execution: the
  // nested batch still completes with identical task coverage, it just
  // does not fan out.  This is what lets an ensemble trial compile a
  // tabulated model (whose grid build is itself a parallel_for) inside a
  // pool worker instead of dying on a reentrancy precondition.
  std::uint64_t gen = 0;
  bool inline_run = t_in_pool_run || num_tasks == 1 || num_workers_ == 0;
  if (!inline_run) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->task != nullptr) {
      inline_run = true;  // another thread's batch is active
    } else {
      impl_->task = &task;
      impl_->next = 0;
      impl_->num_tasks = num_tasks;
      impl_->pending = num_tasks;
      gen = ++impl_->generation;
    }
  }
  if (inline_run) {
    for (int i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  impl_->work_ready.notify_all();
  t_in_pool_run = true;
  impl_->drain(gen);  // caller participates
  t_in_pool_run = false;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->batch_done.wait(lock, [&] { return impl_->pending == 0; });
    impl_->task = nullptr;
    error = impl_->first_error;
    impl_->first_error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void parallel_for(long n, const std::function<void(long, long)>& body,
                  int num_threads) {
  if (n <= 0) return;
  int threads = num_threads > 0 ? num_threads : default_num_threads();
  if (threads > n) threads = static_cast<int>(n);
  if (threads <= 1) {
    body(0, n);
    return;
  }
  // Contiguous blocks; boundaries depend only on (n, threads).
  const auto block = [n, threads](int t) {
    return n * t / threads;  // t in [0, threads]
  };
  ThreadPool::instance().run(threads, [&](int t) {
    const long begin = block(t);
    const long end = block(t + 1);
    if (begin < end) body(begin, end);
  });
}

void parallel_for_each(long n, const std::function<void(long)>& body,
                       int num_threads) {
  parallel_for(
      n,
      [&](long begin, long end) {
        for (long i = begin; i < end; ++i) body(i);
      },
      num_threads);
}

void parallel_for_seeded(long n, std::uint64_t seed,
                         const std::function<void(long, long, Rng&)>& body,
                         int num_threads, long grain) {
  if (n <= 0) return;
  CARBON_REQUIRE(grain >= 1, "grain must be at least 1");
  const long chunks = (n + grain - 1) / grain;
  parallel_for_each(
      chunks,
      [&](long c) {
        Rng rng(stream_seed(seed, static_cast<std::uint64_t>(c)));
        body(n * c / chunks, n * (c + 1) / chunks, rng);
      },
      num_threads);
}

std::uint64_t stream_seed(std::uint64_t base_seed, std::uint64_t stream) {
  // splitmix64 finalizer over the combined state; decorrelates adjacent
  // streams even for small seeds and indices.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace carbon::phys
