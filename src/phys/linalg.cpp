#include "phys/linalg.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

Matrix::Matrix(int rows, int cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
  CARBON_REQUIRE(rows >= 0 && cols >= 0, "matrix dims must be non-negative");
}

void Matrix::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

LuFactorization::LuFactorization(Matrix a) : lu_(std::move(a)) {
  factor_stored();
  factored_ = true;
}

void LuFactorization::factor(const Matrix& a) {
  factored_ = false;
  lu_ = a;  // reuses lu_'s buffer when the size matches
  factor_stored();
  factored_ = true;
}

void LuFactorization::factor_stored() {
  const int n = lu_.rows();
  CARBON_REQUIRE(n == lu_.cols(), "LU requires a square matrix");
  perm_.resize(n);
  for (int i = 0; i < n; ++i) perm_[i] = i;
  const double amax = std::max(lu_.max_abs(), 1e-300);
  double min_pivot = amax;

  for (int k = 0; k < n; ++k) {
    // Partial pivot: find the largest entry in column k at/below the diagonal.
    int piv = k;
    double best = std::abs(lu_(k, k));
    for (int i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) { best = v; piv = i; }
    }
    // NaN compares false against every threshold, so a non-finite pivot
    // candidate must be rejected explicitly or it silently propagates
    // through the elimination into the solution vector.
    if (!std::isfinite(best)) {
      throw SingularMatrixError(
          SingularMatrixError::Kind::kNonFinite, perm_[piv], k,
          "LU: non-finite value in pivot column " + std::to_string(k));
    }
    if (best <= amax * 1e-14) {
      throw SingularMatrixError(
          SingularMatrixError::Kind::kSingular, perm_[piv], k,
          "LU: matrix is numerically singular at column " +
              std::to_string(k));
    }
    if (piv != k) {
      for (int j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
    }
    min_pivot = std::min(min_pivot, best);
    const double inv = 1.0 / lu_(k, k);
    for (int i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) * inv;
      lu_(i, k) = factor;
      if (factor != 0.0) {
        for (int j = k + 1; j < n; ++j) lu_(i, j) -= factor * lu_(k, j);
      }
    }
  }
  pivot_quality_ = min_pivot / amax;
}

std::vector<double> LuFactorization::solve(const std::vector<double>& b) const {
  const int n = lu_.rows();
  CARBON_REQUIRE(factored_, "LU: no factorization held");
  CARBON_REQUIRE(static_cast<int>(b.size()) == n, "rhs size mismatch");
  std::vector<double> x(n);
  for (int i = 0; i < n; ++i) x[i] = b[perm_[i]];
  substitute(x);
  return x;
}

void LuFactorization::solve_in_place(std::vector<double>& bx) const {
  const int n = lu_.rows();
  CARBON_REQUIRE(factored_, "LU: no factorization held");
  CARBON_REQUIRE(static_cast<int>(bx.size()) == n, "rhs size mismatch");
  scratch_.resize(n);
  for (int i = 0; i < n; ++i) scratch_[i] = bx[perm_[i]];
  bx.swap(scratch_);
  substitute(bx);
}

void LuFactorization::substitute(std::vector<double>& x) const {
  const int n = lu_.rows();
  // Forward substitution (unit lower triangle).
  for (int i = 1; i < n; ++i) {
    double s = x[i];
    for (int j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (int i = n - 1; i >= 0; --i) {
    double s = x[i];
    for (int j = i + 1; j < n; ++j) s -= lu_(i, j) * x[j];
    x[i] = s / lu_(i, i);
  }
}

std::vector<double> solve_dense(Matrix a, const std::vector<double>& b) {
  return LuFactorization(std::move(a)).solve(b);
}

double norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm_inf(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

std::vector<double> solve_tridiagonal(const std::vector<double>& sub,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& sup,
                                      std::vector<double> rhs) {
  const int n = static_cast<int>(diag.size());
  CARBON_REQUIRE(static_cast<int>(sub.size()) == n - 1 &&
                     static_cast<int>(sup.size()) == n - 1 &&
                     static_cast<int>(rhs.size()) == n,
                 "tridiagonal size mismatch");
  std::vector<double> c(n - 1);
  double piv = diag[0];
  CARBON_REQUIRE(piv != 0.0, "tridiagonal: zero pivot");
  c[0] = sup[0] / piv;
  rhs[0] /= piv;
  for (int i = 1; i < n; ++i) {
    piv = diag[i] - sub[i - 1] * c[i - 1];
    CARBON_REQUIRE(piv != 0.0, "tridiagonal: zero pivot");
    if (i < n - 1) c[i] = sup[i] / piv;
    rhs[i] = (rhs[i] - sub[i - 1] * rhs[i - 1]) / piv;
  }
  for (int i = n - 2; i >= 0; --i) rhs[i] -= c[i] * rhs[i + 1];
  return rhs;
}

}  // namespace carbon::phys
