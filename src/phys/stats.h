#pragma once

/// @file stats.h
/// Descriptive statistics and histograms for the fabrication/variability
/// Monte-Carlo analyses (Section V of the paper).

#include <vector>

namespace carbon::phys {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  long long count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  long long n_ = 0;
  double mean_ = 0.0, m2_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

/// Percentile of a sample set (linear interpolation between order
/// statistics).  @p p in [0, 100].  The input is copied and sorted.
double percentile(std::vector<double> values, double p);

/// Median convenience wrapper.
double median(std::vector<double> values);

/// Simple fixed-bin histogram.
class Histogram {
 public:
  /// @param lo,hi  range (values outside are clamped to edge bins)
  /// @param bins   number of bins (>= 1)
  Histogram(double lo, double hi, int bins);

  void add(double x);
  long long count() const { return total_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  long long bin_count(int i) const { return counts_[i]; }
  double bin_center(int i) const;
  double bin_fraction(int i) const;

 private:
  double lo_, hi_;
  std::vector<long long> counts_;
  long long total_ = 0;
};

}  // namespace carbon::phys
