#pragma once

/// @file linalg_complex.h
/// Dense complex linear algebra for the AC (small-signal) circuit analysis:
/// a complex matrix and LU solve, mirroring the real versions in linalg.h.

#include <complex>
#include <vector>

namespace carbon::phys {

using Complex = std::complex<double>;

/// Dense row-major complex matrix.
class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  ComplexMatrix(int rows, int cols, Complex fill = {});

  Complex& operator()(int r, int c) { return data_[r * cols_ + c]; }
  Complex operator()(int r, int c) const { return data_[r * cols_ + c]; }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  void fill(Complex value);
  double max_abs() const;

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<Complex> data_;
};

/// Solve A x = b by LU with partial pivoting (A copied).  Throws
/// ConvergenceError on numerical singularity.
std::vector<Complex> solve_dense_complex(ComplexMatrix a,
                                         const std::vector<Complex>& b);

}  // namespace carbon::phys
