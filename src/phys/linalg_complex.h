#pragma once

/// @file linalg_complex.h
/// Dense complex linear algebra for the AC (small-signal) circuit analysis:
/// a complex matrix and LU solve, mirroring the real versions in linalg.h.

#include <complex>
#include <vector>

namespace carbon::phys {

using Complex = std::complex<double>;

/// Dense row-major complex matrix.
class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  ComplexMatrix(int rows, int cols, Complex fill = {});

  Complex& operator()(int r, int c) { return data_[r * cols_ + c]; }
  Complex operator()(int r, int c) const { return data_[r * cols_ + c]; }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Raw row-major storage (rows*cols entries); stable until the matrix is
  /// resized.  The AC slot-stamping assembler writes through this.
  Complex* data() { return data_.data(); }
  const Complex* data() const { return data_.data(); }

  void fill(Complex value);
  double max_abs() const;

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<Complex> data_;
};

/// Reusable complex LU workspace (partial pivoting), mirroring the real
/// phys::LuFactorization: after the first factor() for a given size,
/// refactor + solve_in_place perform no heap allocation.  The AC sweep
/// keeps one instance across all frequency points.
class ComplexLuFactorization {
 public:
  ComplexLuFactorization() = default;

  /// (Re)factor @p a, reusing existing storage when the size matches.
  /// Throws SingularMatrixError (with the failing row/column) on numerical
  /// singularity or a non-finite pivot column.
  void factor(const ComplexMatrix& a);
  bool factored() const { return factored_; }

  /// Solve A x = b with b supplied (and x returned) in @p bx.  Reuses an
  /// internal scratch buffer; not safe to call concurrently.
  void solve_in_place(std::vector<Complex>& bx) const;

  /// Solve Aᵀ x = b (plain transpose, NOT conjugated) from the same
  /// factorization — the adjoint-network solve of the noise analysis,
  /// mirroring phys::SparseLuT::solve_transpose_in_place on the dense
  /// backend.
  void solve_transpose_in_place(std::vector<Complex>& bx) const;

 private:
  ComplexMatrix lu_;
  std::vector<int> perm_;
  mutable std::vector<Complex> scratch_;
  bool factored_ = false;
};

/// Solve A x = b by LU with partial pivoting (A copied).  Throws
/// ConvergenceError on numerical singularity.
std::vector<Complex> solve_dense_complex(ComplexMatrix a,
                                         const std::vector<Complex>& b);

}  // namespace carbon::phys
