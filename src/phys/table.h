#pragma once

/// @file table.h
/// Column-oriented data tables used by every benchmark binary to print the
/// regenerated figure series and to write CSV artifacts.

#include <iosfwd>
#include <string>
#include <vector>

namespace carbon::phys {

/// A named-column table of doubles.  Rows are appended one full row at a
/// time, so the table is always rectangular.
class DataTable {
 public:
  DataTable() = default;
  /// Construct with column headers.
  explicit DataTable(std::vector<std::string> columns);

  /// Append a row; size must equal the number of columns.
  void add_row(const std::vector<double>& row);

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_cols() const { return static_cast<int>(columns_.size()); }
  const std::vector<std::string>& columns() const { return columns_; }
  double at(int row, int col) const;

  /// Whole column as a vector.
  std::vector<double> column(int col) const;
  /// Column looked up by header name (throws if absent).
  std::vector<double> column(const std::string& name) const;
  int column_index(const std::string& name) const;

  /// Pretty-print with aligned columns in engineering-friendly %.6g.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Write RFC-4180-ish CSV (header row + data rows).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace carbon::phys
