#pragma once

/// @file fermi.h
/// Numerically stable Fermi–Dirac statistics helpers.  All energies in eV.

namespace carbon::phys {

/// Fermi–Dirac occupation f(E) = 1 / (1 + exp((E - mu)/kT)).
/// Stable for arguments of any magnitude.
/// @param energy_ev   state energy [eV]
/// @param mu_ev       chemical potential [eV]
/// @param kt_ev       thermal energy kT [eV], must be > 0
double fermi(double energy_ev, double mu_ev, double kt_ev);

/// Derivative -df/dE evaluated at E (a positive, bell-shaped function that
/// integrates to 1).  Units: 1/eV.
double fermi_minus_dfde(double energy_ev, double mu_ev, double kt_ev);

/// Numerically stable softplus ln(1 + exp(x)); this is the Fermi–Dirac
/// integral of order 0, F0(x), which gives the ballistic 1-D Landauer
/// current in closed form.
double softplus(double x);

/// Fermi–Dirac integral of order 0: F0(eta) = ln(1 + exp(eta)).
inline double fermi_dirac_f0(double eta) { return softplus(eta); }

/// Fermi–Dirac integral of order -1/2 (normalized, Aymerich-Humet
/// approximation, relative error < 1e-4 across all eta).  Used by the
/// virtual-source MOSFET charge model.
double fermi_dirac_fm_half(double eta);

/// Fermi–Dirac integral of order +1/2 (normalized, Aymerich-Humet
/// approximation).  F_{1/2}(eta) -> exp(eta) for eta << 0.
double fermi_dirac_f_half(double eta);

}  // namespace carbon::phys
