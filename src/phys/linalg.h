#pragma once

/// @file linalg.h
/// Dense linear algebra for the MNA circuit solver: a row-major matrix type
/// and LU factorization with partial pivoting.  The dense path is the right
/// tool up to a few dozen unknowns; above the SolverOptions threshold the
/// solver switches to the sparse engine in phys/sparse.h.

#include <vector>

namespace carbon::phys {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0);

  double& operator()(int r, int c) { return data_[r * cols_ + c]; }
  double operator()(int r, int c) const { return data_[r * cols_ + c]; }

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Raw row-major storage (rows*cols doubles); stable until the matrix is
  /// resized.  The slot-stamping assembler writes through this.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Set every entry to @p value.
  void fill(double value);

  /// Max-abs entry (used for convergence diagnostics).
  double max_abs() const;

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting of a square matrix.
/// Throws SingularMatrixError (a ConvergenceError carrying the failing
/// row/column) on numerical singularity or when a non-finite value reaches
/// the pivot search — NaNs are rejected at the factorization boundary, never
/// propagated into a solution vector.
///
/// Besides the one-shot constructor the class doubles as a reusable
/// workspace: a default-constructed instance can be refactored repeatedly
/// with factor(), which reuses the internal pivot/LU storage — after the
/// first call on a given size, refactor + solve_in_place perform no heap
/// allocation.  This is what the SPICE Newton loop runs on.
class LuFactorization {
 public:
  /// Empty workspace: call factor() before solving.
  LuFactorization() = default;

  /// Factor @p a in-place (a copy is stored).
  explicit LuFactorization(Matrix a);

  /// (Re)factor @p a, reusing the existing storage when the size matches.
  /// Throws SingularMatrixError on singularity or a non-finite pivot
  /// column (factored() stays false).
  void factor(const Matrix& a);

  /// True when a valid factorization is held.
  bool factored() const { return factored_; }

  /// Solve A x = b; returns x.  Safe to call concurrently on a shared
  /// factorization (allocates its own work vector).
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve A x = b with b supplied (and x returned) in @p bx — no
  /// allocation (an internal scratch buffer is reused, so concurrent
  /// solve_in_place calls on one instance are NOT safe; each Newton
  /// workspace owns its factorization).
  void solve_in_place(std::vector<double>& bx) const;

  /// Reciprocal pivot-growth estimate: min|pivot| / max|A| (0 = singular).
  double pivot_quality() const { return pivot_quality_; }

 private:
  void factor_stored();
  /// Forward + back substitution on a permuted RHS.
  void substitute(std::vector<double>& x) const;

  Matrix lu_;
  std::vector<int> perm_;
  mutable std::vector<double> scratch_;
  double pivot_quality_ = 0.0;
  bool factored_ = false;
};

/// One-shot solve of A x = b.
std::vector<double> solve_dense(Matrix a, const std::vector<double>& b);

/// Euclidean norm.
double norm2(const std::vector<double>& v);

/// Max-abs norm.
double norm_inf(const std::vector<double>& v);

/// Solve a tridiagonal system (Thomas algorithm): diag a (sub), b (main),
/// c (super), rhs d.  Used by the 1-D Poisson helper in the TFET model.
std::vector<double> solve_tridiagonal(const std::vector<double>& sub,
                                      const std::vector<double>& diag,
                                      const std::vector<double>& sup,
                                      std::vector<double> rhs);

}  // namespace carbon::phys
