#include "phys/stats.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return (n_ > 1) ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  CARBON_REQUIRE(!values.empty(), "percentile of empty sample");
  CARBON_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * (static_cast<double>(values.size()) - 1.0);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), counts_(static_cast<size_t>(bins), 0) {
  CARBON_REQUIRE(hi > lo, "histogram range must be non-empty");
  CARBON_REQUIRE(bins >= 1, "need at least one bin");
}

void Histogram::add(double x) {
  const int n = bins();
  int i = static_cast<int>((x - lo_) / (hi_ - lo_) * n);
  i = std::clamp(i, 0, n - 1);
  ++counts_[i];
  ++total_;
}

double Histogram::bin_center(int i) const {
  const double w = (hi_ - lo_) / bins();
  return lo_ + (i + 0.5) * w;
}

double Histogram::bin_fraction(int i) const {
  return total_ > 0 ? static_cast<double>(counts_[i]) /
                          static_cast<double>(total_)
                    : 0.0;
}

}  // namespace carbon::phys
