#include "phys/interp.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

namespace {
void check_axis(const std::vector<double>& x) {
  CARBON_REQUIRE(x.size() >= 2, "need at least two samples per axis");
  for (size_t i = 1; i < x.size(); ++i) {
    CARBON_REQUIRE(x[i] > x[i - 1], "abscissae must be strictly increasing");
  }
}

void check_grid(const std::vector<double>& x, const std::vector<double>& y) {
  CARBON_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  check_axis(x);
}

/// Fritsch–Carlson shape-preserving node slopes for samples y over abscissae
/// x (the PCHIP construction, shared by the 1-D and 2-D interpolants).
std::vector<double> pchip_slopes(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  const int n = static_cast<int>(x.size());
  std::vector<double> h(n - 1), delta(n - 1);
  for (int i = 0; i < n - 1; ++i) {
    h[i] = x[i + 1] - x[i];
    delta[i] = (y[i + 1] - y[i]) / h[i];
  }
  std::vector<double> m(n, 0.0);
  // Interior slopes as weighted harmonic means.
  for (int i = 1; i < n - 1; ++i) {
    if (delta[i - 1] * delta[i] > 0.0) {
      const double w1 = 2.0 * h[i] + h[i - 1];
      const double w2 = h[i] + 2.0 * h[i - 1];
      m[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
    }
  }
  // One-sided endpoint slopes (shape-preserving limiting).
  auto endpoint = [](double h0, double h1, double d0, double d1) {
    double me = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if (me * d0 <= 0.0) me = 0.0;
    else if (d0 * d1 < 0.0 && std::abs(me) > 3.0 * std::abs(d0)) me = 3.0 * d0;
    return me;
  };
  if (n == 2) {
    m[0] = m[1] = delta[0];
  } else {
    m[0] = endpoint(h[0], h[1], delta[0], delta[1]);
    m[n - 1] = endpoint(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
  }
  return m;
}

/// Index of the segment containing xq, clamped to valid cells so queries
/// outside the grid extrapolate with the edge segment.
int clamped_segment(const std::vector<double>& x, double xq) {
  const auto it = std::upper_bound(x.begin(), x.end(), xq);
  int i = static_cast<int>(it - x.begin()) - 1;
  return std::clamp(i, 0, static_cast<int>(x.size()) - 2);
}
}  // namespace

LinearInterp::LinearInterp(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  check_grid(x_, y_);
}

int LinearInterp::segment(double xq) const { return clamped_segment(x_, xq); }

double LinearInterp::operator()(double xq) const {
  const int i = segment(xq);
  const double t = (xq - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

double LinearInterp::derivative(double xq) const {
  const int i = segment(xq);
  return (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
}

PchipInterp::PchipInterp(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  check_grid(x_, y_);
  m_ = pchip_slopes(x_, y_);
}

int PchipInterp::segment(double xq) const { return clamped_segment(x_, xq); }

double PchipInterp::operator()(double xq) const {
  const int i = segment(xq);
  const double h = x_[i + 1] - x_[i];
  const double t = (xq - x_[i]) / h;
  const double t2 = t * t, t3 = t2 * t;
  const double h00 = 2 * t3 - 3 * t2 + 1;
  const double h10 = t3 - 2 * t2 + t;
  const double h01 = -2 * t3 + 3 * t2;
  const double h11 = t3 - t2;
  return h00 * y_[i] + h10 * h * m_[i] + h01 * y_[i + 1] + h11 * h * m_[i + 1];
}

double PchipInterp::derivative(double xq) const {
  const int i = segment(xq);
  const double h = x_[i + 1] - x_[i];
  const double t = (xq - x_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6 * t2 - 6 * t) / h;
  const double dh10 = 3 * t2 - 4 * t + 1;
  const double dh01 = (-6 * t2 + 6 * t) / h;
  const double dh11 = 3 * t2 - 2 * t;
  return dh00 * y_[i] + dh10 * m_[i] + dh01 * y_[i + 1] + dh11 * m_[i + 1];
}

BicubicTable::BicubicTable(std::vector<double> x, std::vector<double> y,
                           std::vector<double> z)
    : x_(std::move(x)), y_(std::move(y)), z_(std::move(z)) {
  check_axis(x_);
  check_axis(y_);
  const int nx = static_cast<int>(x_.size());
  const int ny = static_cast<int>(y_.size());
  CARBON_REQUIRE(static_cast<int>(z_.size()) == nx * ny,
                 "z must hold size_x * size_y samples");

  zx_.resize(z_.size());
  zy_.resize(z_.size());
  // Slopes along x: one PCHIP pass per y-column.
  std::vector<double> line(nx);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) line[i] = z_[i * ny + j];
    const std::vector<double> m = pchip_slopes(x_, line);
    for (int i = 0; i < nx; ++i) zx_[i * ny + j] = m[i];
  }
  // Slopes along y: one PCHIP pass per x-row (rows are contiguous).
  for (int i = 0; i < nx; ++i) {
    const std::vector<double> row(z_.begin() + i * ny,
                                  z_.begin() + (i + 1) * ny);
    const std::vector<double> m = pchip_slopes(y_, row);
    std::copy(m.begin(), m.end(), zy_.begin() + i * ny);
  }
}

BicubicTable::Eval BicubicTable::eval(double xq, double yq) const {
  const int i = clamped_segment(x_, xq);
  const int j = clamped_segment(y_, yq);
  const double hx = x_[i + 1] - x_[i];
  const double hy = y_[j + 1] - y_[j];
  const double u = (xq - x_[i]) / hx;
  const double v = (yq - y_[j]) / hy;

  // Hermite bases and their parameter derivatives in each direction.
  const auto basis = [](double t, double b[4], double db[4]) {
    const double t2 = t * t, t3 = t2 * t;
    b[0] = 2 * t3 - 3 * t2 + 1;   // h00: value at left node
    b[1] = t3 - 2 * t2 + t;       // h10: slope at left node
    b[2] = -2 * t3 + 3 * t2;      // h01: value at right node
    b[3] = t3 - t2;               // h11: slope at right node
    db[0] = 6 * t2 - 6 * t;
    db[1] = 3 * t2 - 4 * t + 1;
    db[2] = -6 * t2 + 6 * t;
    db[3] = 3 * t2 - 2 * t;
  };
  double bu[4], dbu[4], bv[4], dbv[4];
  basis(u, bu, dbu);
  basis(v, bv, dbv);

  // Interpolate values and x-slopes along y on both x-edges of the cell;
  // cross derivatives are taken as zero (standard for FC tensor tables).
  const auto along_y = [&](const double bw[4], int ii, bool slopes) {
    if (slopes) return bw[0] * zx(ii, j) + bw[2] * zx(ii, j + 1);
    return bw[0] * z(ii, j) + bw[1] * hy * zy(ii, j) + bw[2] * z(ii, j + 1) +
           bw[3] * hy * zy(ii, j + 1);
  };
  const double a0 = along_y(bv, i, false);      // f(x_i, yq)
  const double a1 = along_y(bv, i + 1, false);  // f(x_{i+1}, yq)
  const double s0 = along_y(bv, i, true);       // fx(x_i, yq)
  const double s1 = along_y(bv, i + 1, true);   // fx(x_{i+1}, yq)
  const double da0 = along_y(dbv, i, false) / hy;
  const double da1 = along_y(dbv, i + 1, false) / hy;
  const double ds0 = along_y(dbv, i, true) / hy;
  const double ds1 = along_y(dbv, i + 1, true) / hy;

  Eval e;
  e.f = bu[0] * a0 + bu[1] * hx * s0 + bu[2] * a1 + bu[3] * hx * s1;
  e.fx = (dbu[0] * a0 + dbu[1] * hx * s0 + dbu[2] * a1 + dbu[3] * hx * s1) /
         hx;
  e.fy = bu[0] * da0 + bu[1] * hx * ds0 + bu[2] * da1 + bu[3] * hx * ds1;
  return e;
}

}  // namespace carbon::phys
