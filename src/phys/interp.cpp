#include "phys/interp.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

namespace {
void check_grid(const std::vector<double>& x, const std::vector<double>& y) {
  CARBON_REQUIRE(x.size() == y.size(), "x/y size mismatch");
  CARBON_REQUIRE(x.size() >= 2, "need at least two samples");
  for (size_t i = 1; i < x.size(); ++i) {
    CARBON_REQUIRE(x[i] > x[i - 1], "abscissae must be strictly increasing");
  }
}
}  // namespace

LinearInterp::LinearInterp(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  check_grid(x_, y_);
}

int LinearInterp::segment(double xq) const {
  const auto it = std::upper_bound(x_.begin(), x_.end(), xq);
  int i = static_cast<int>(it - x_.begin()) - 1;
  return std::clamp(i, 0, static_cast<int>(x_.size()) - 2);
}

double LinearInterp::operator()(double xq) const {
  const int i = segment(xq);
  const double t = (xq - x_[i]) / (x_[i + 1] - x_[i]);
  return y_[i] + t * (y_[i + 1] - y_[i]);
}

double LinearInterp::derivative(double xq) const {
  const int i = segment(xq);
  return (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
}

PchipInterp::PchipInterp(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y)) {
  check_grid(x_, y_);
  const int n = static_cast<int>(x_.size());
  std::vector<double> h(n - 1), delta(n - 1);
  for (int i = 0; i < n - 1; ++i) {
    h[i] = x_[i + 1] - x_[i];
    delta[i] = (y_[i + 1] - y_[i]) / h[i];
  }
  m_.assign(n, 0.0);
  // Fritsch–Carlson: interior slopes as weighted harmonic means.
  for (int i = 1; i < n - 1; ++i) {
    if (delta[i - 1] * delta[i] > 0.0) {
      const double w1 = 2.0 * h[i] + h[i - 1];
      const double w2 = h[i] + 2.0 * h[i - 1];
      m_[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
    }
  }
  // One-sided endpoint slopes (shape-preserving limiting).
  auto endpoint = [](double h0, double h1, double d0, double d1) {
    double m = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
    if (m * d0 <= 0.0) m = 0.0;
    else if (d0 * d1 < 0.0 && std::abs(m) > 3.0 * std::abs(d0)) m = 3.0 * d0;
    return m;
  };
  if (n == 2) {
    m_[0] = m_[1] = delta[0];
  } else {
    m_[0] = endpoint(h[0], h[1], delta[0], delta[1]);
    m_[n - 1] = endpoint(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
  }
}

int PchipInterp::segment(double xq) const {
  const auto it = std::upper_bound(x_.begin(), x_.end(), xq);
  int i = static_cast<int>(it - x_.begin()) - 1;
  return std::clamp(i, 0, static_cast<int>(x_.size()) - 2);
}

double PchipInterp::operator()(double xq) const {
  const int i = segment(xq);
  const double h = x_[i + 1] - x_[i];
  const double t = (xq - x_[i]) / h;
  const double t2 = t * t, t3 = t2 * t;
  const double h00 = 2 * t3 - 3 * t2 + 1;
  const double h10 = t3 - 2 * t2 + t;
  const double h01 = -2 * t3 + 3 * t2;
  const double h11 = t3 - t2;
  return h00 * y_[i] + h10 * h * m_[i] + h01 * y_[i + 1] + h11 * h * m_[i + 1];
}

double PchipInterp::derivative(double xq) const {
  const int i = segment(xq);
  const double h = x_[i + 1] - x_[i];
  const double t = (xq - x_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6 * t2 - 6 * t) / h;
  const double dh10 = 3 * t2 - 4 * t + 1;
  const double dh01 = (-6 * t2 + 6 * t) / h;
  const double dh11 = 3 * t2 - 2 * t;
  return dh00 * y_[i] + dh10 * m_[i] + dh01 * y_[i + 1] + dh11 * m_[i + 1];
}

}  // namespace carbon::phys
