#pragma once

/// @file units.h
/// Small, explicit unit-conversion helpers.  The library stores quantities in
/// the base units documented in constants.h; these helpers make call sites
/// that use "lab units" (nm, eV, uA, ...) read naturally and unambiguously.

#include "phys/constants.h"

namespace carbon::phys {

/// Nanometres to metres.
constexpr double nm(double value_nm) { return value_nm * 1e-9; }

/// Micrometres to metres.
constexpr double um(double value_um) { return value_um * 1e-6; }

/// Metres to nanometres.
constexpr double to_nm(double value_m) { return value_m * 1e9; }

/// Electron volts to joule.
constexpr double ev_to_joule(double e_ev) { return e_ev * kQ; }

/// Joule to electron volts.
constexpr double joule_to_ev(double e_j) { return e_j / kQ; }

/// Amperes to microamperes.
constexpr double to_ua(double i_a) { return i_a * 1e6; }

/// Microamperes to amperes.
constexpr double ua(double i_ua) { return i_ua * 1e-6; }

/// Milliamperes to amperes.
constexpr double ma(double i_ma) { return i_ma * 1e-3; }

/// Current per width: A and m to the conventional mA/um (= kA/m).
constexpr double to_ma_per_um(double i_a, double width_m) {
  return (i_a / width_m) * 1e-3;  // A/m -> mA/um
}

/// Current per width: A and m to uA/um (= mA/mm).
constexpr double to_ua_per_um(double i_a, double width_m) {
  return i_a / width_m;  // A/m == uA/um
}

/// Femtofarad to farad.
constexpr double fF(double c_ff) { return c_ff * 1e-15; }

/// Attofarad to farad.
constexpr double aF(double c_af) { return c_af * 1e-18; }

/// Picoseconds to seconds.
constexpr double ps(double t_ps) { return t_ps * 1e-12; }

/// Nanoseconds to seconds.
constexpr double ns(double t_ns) { return t_ns * 1e-9; }

/// Kilo-ohm to ohm.
constexpr double kohm(double r_kohm) { return r_kohm * 1e3; }

}  // namespace carbon::phys
