#include "phys/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "phys/require.h"

namespace carbon::phys {

DataTable::DataTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  CARBON_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void DataTable::add_row(const std::vector<double>& row) {
  CARBON_REQUIRE(row.size() == columns_.size(), "row width mismatch");
  rows_.push_back(row);
}

double DataTable::at(int row, int col) const {
  CARBON_REQUIRE(row >= 0 && row < num_rows(), "row out of range");
  CARBON_REQUIRE(col >= 0 && col < num_cols(), "col out of range");
  return rows_[row][col];
}

std::vector<double> DataTable::column(int col) const {
  CARBON_REQUIRE(col >= 0 && col < num_cols(), "col out of range");
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[col]);
  return out;
}

int DataTable::column_index(const std::string& name) const {
  const auto it = std::find(columns_.begin(), columns_.end(), name);
  CARBON_REQUIRE(it != columns_.end(), "unknown column: " + name);
  return static_cast<int>(it - columns_.begin());
}

std::vector<double> DataTable::column(const std::string& name) const {
  return column(column_index(name));
}

void DataTable::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "== " << title << " ==\n";
  // Format all cells first so column widths can be computed.
  std::vector<std::vector<std::string>> cells;
  cells.emplace_back(columns_);
  char buf[64];
  for (const auto& r : rows_) {
    std::vector<std::string> line;
    line.reserve(r.size());
    for (double v : r) {
      std::snprintf(buf, sizeof buf, "%.6g", v);
      line.emplace_back(buf);
    }
    cells.push_back(std::move(line));
  }
  std::vector<size_t> width(columns_.size(), 0);
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      width[c] = std::max(width[c], line[c].size());
    }
  }
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      os << (c ? "  " : "");
      os.width(static_cast<std::streamsize>(width[c]));
      os << line[c];
    }
    os << '\n';
  }
}

void DataTable::write_csv(const std::string& path) const {
  std::ofstream os(path);
  CARBON_REQUIRE(os.good(), "cannot open CSV for writing: " + path);
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "," : "") << columns_[c];
  }
  os << '\n';
  char buf[64];
  for (const auto& r : rows_) {
    for (size_t c = 0; c < r.size(); ++c) {
      std::snprintf(buf, sizeof buf, "%.9g", r[c]);
      os << (c ? "," : "") << buf;
    }
    os << '\n';
  }
}

}  // namespace carbon::phys
