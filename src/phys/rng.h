#pragma once

/// @file rng.h
/// Deterministic random number generation for the Monte-Carlo fabrication
/// models.  A thin wrapper over std::mt19937_64 so every experiment is
/// reproducible from its seed.

#include <cstdint>
#include <random>
#include <vector>

namespace carbon::phys {

/// Seeded pseudo-random generator with the distributions the fab models use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via std::normal_distribution.
  double normal(double mean, double sigma);

  /// Normal truncated to [lo, hi] (rejection; bounds must bracket
  /// non-negligible mass).
  double truncated_normal(double mean, double sigma, double lo, double hi);

  /// Poisson with mean @p lambda.
  int poisson(double lambda);

  /// Bernoulli trial with success probability @p p.
  bool bernoulli(double p);

  /// Uniform integer in [0, n).
  int uniform_int(int n);

  /// Sample an index from unnormalized non-negative weights.
  int categorical(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace carbon::phys
