#include "phys/integrate.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const Fn1D& f, double a, double fa, double b, double fb,
                     double m, double fm, double whole, double tol,
                     int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson correction
  }
  return adaptive_step(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
         adaptive_step(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
}

}  // namespace

double integrate_adaptive(const Fn1D& f, double a, double b, double abs_tol,
                          int max_depth) {
  CARBON_REQUIRE(abs_tol > 0.0, "tolerance must be positive");
  if (a == b) return 0.0;
  const double sign = (b >= a) ? 1.0 : -1.0;
  if (b < a) std::swap(a, b);
  const double m = 0.5 * (a + b);
  const double fa = f(a), fb = f(b), fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return sign * adaptive_step(f, a, fa, b, fb, m, fm, whole, abs_tol,
                              max_depth);
}

double integrate_simpson(const Fn1D& f, double a, double b, int n) {
  CARBON_REQUIRE(n >= 2, "need at least 2 panels");
  if (n % 2 != 0) ++n;
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    sum += f(a + i * h) * ((i % 2 == 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

double integrate_semi_infinite(const Fn1D& f, double a, double decay_scale,
                               double abs_tol, double cutoff_scales) {
  CARBON_REQUIRE(decay_scale > 0.0, "decay scale must be positive");
  const double b = a + cutoff_scales * decay_scale;
  // Split: dense region near a (where DOS singularities may live), then tail.
  const double split = a + 5.0 * decay_scale;
  return integrate_adaptive(f, a, split, abs_tol * 0.5) +
         integrate_adaptive(f, split, b, abs_tol * 0.5);
}

double integrate_trapezoid(const double* x, const double* y, int n) {
  CARBON_REQUIRE(n >= 2, "need at least two samples");
  double sum = 0.0;
  for (int i = 1; i < n; ++i) {
    sum += 0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]);
  }
  return sum;
}

}  // namespace carbon::phys
