#include "phys/fermi.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

double fermi(double energy_ev, double mu_ev, double kt_ev) {
  CARBON_REQUIRE(kt_ev > 0.0, "kT must be positive");
  const double x = (energy_ev - mu_ev) / kt_ev;
  if (x > 0.0) {
    const double e = std::exp(-x);
    return e / (1.0 + e);
  }
  return 1.0 / (1.0 + std::exp(x));
}

double fermi_minus_dfde(double energy_ev, double mu_ev, double kt_ev) {
  CARBON_REQUIRE(kt_ev > 0.0, "kT must be positive");
  const double x = std::abs(energy_ev - mu_ev) / kt_ev;
  // -df/dE = (1/kT) * e^x / (1+e^x)^2, symmetric in (E-mu); evaluate with
  // the decaying exponential to avoid overflow.
  const double e = std::exp(-x);
  const double denom = 1.0 + e;
  return (e / (denom * denom)) / kt_ev;
}

double softplus(double x) {
  if (x > 34.0) return x;              // exp(-x) below double epsilon
  if (x < -34.0) return std::exp(x);   // ln(1+e) ~ e
  return std::log1p(std::exp(x));
}

namespace {

// Aymerich-Humet, Serra-Mestres & Millan analytic approximation for the
// normalized Fermi-Dirac integral of order j in {-1/2, +1/2}:
//   F_j(eta) = 1 / ( exp(-eta) + xi(eta)^-1 )  form generalisation.
// We use the standard two-branch blended expression.
double fd_aymerich(double eta, double j) {
  // Coefficients per Aymerich-Humet et al., J. Appl. Phys. 54, 2850 (1983);
  // the expression approximates the unnormalized integral, so divide by
  // Gamma(j+1) to return the normalized F_j with F_j(eta<<0) -> exp(eta).
  const double a = std::sqrt(1.0 + 15.0 / 4.0 * (j + 1.0) +
                             std::pow(j + 1.0, 2.0) / 40.0);
  const double b = 1.8 + 0.61 * j;
  const double c = 2.0 + (2.0 - std::sqrt(2.0)) * std::pow(2.0, -j);
  const double num = (j + 1.0) * std::pow(2.0, j + 1.0);
  const double denom =
      std::pow(b + eta + std::pow(std::pow(std::abs(eta - b), c) + std::pow(a, c),
                                  1.0 / c),
               j + 1.0);
  const double inv = num / denom + std::exp(-eta) / std::tgamma(j + 1.0);
  return 1.0 / (inv * std::tgamma(j + 1.0));
}

}  // namespace

double fermi_dirac_fm_half(double eta) { return fd_aymerich(eta, -0.5); }

double fermi_dirac_f_half(double eta) { return fd_aymerich(eta, 0.5); }

}  // namespace carbon::phys
