#pragma once

/// @file integrate.h
/// One-dimensional quadrature used by the transport solvers.

#include <functional>

namespace carbon::phys {

/// Scalar function of one real variable.
using Fn1D = std::function<double(double)>;

/// Adaptive Simpson quadrature of @p f on [a, b].
/// @param abs_tol  absolute error target
/// @param max_depth  recursion limit (interval halvings)
double integrate_adaptive(const Fn1D& f, double a, double b,
                          double abs_tol = 1e-12, int max_depth = 24);

/// Composite Simpson on a fixed number of panels (n rounded up to even).
double integrate_simpson(const Fn1D& f, double a, double b, int n = 256);

/// Integral of f over [a, +inf) for integrands that decay at least
/// exponentially beyond the scale @p decay_scale (e.g. Fermi tails with
/// decay_scale = kT).  Integrates [a, a + cutoff_scales*decay_scale].
double integrate_semi_infinite(const Fn1D& f, double a, double decay_scale,
                               double abs_tol = 1e-12,
                               double cutoff_scales = 40.0);

/// Trapezoid rule over tabulated samples (x strictly increasing).
double integrate_trapezoid(const double* x, const double* y, int n);

}  // namespace carbon::phys
