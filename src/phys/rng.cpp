#include "phys/rng.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  CARBON_REQUIRE(hi >= lo, "uniform: hi < lo");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

double Rng::normal(double mean, double sigma) {
  return std::normal_distribution<double>(mean, sigma)(engine_);
}

double Rng::truncated_normal(double mean, double sigma, double lo, double hi) {
  CARBON_REQUIRE(hi > lo, "truncated_normal: empty interval");
  for (int i = 0; i < 10000; ++i) {
    const double x = normal(mean, sigma);
    if (x >= lo && x <= hi) return x;
  }
  throw ConvergenceError(
      "truncated_normal: rejection failed (interval has negligible mass)");
}

int Rng::poisson(double lambda) {
  CARBON_REQUIRE(lambda >= 0.0, "poisson: negative mean");
  // Not std::poisson_distribution: libstdc++'s setup calls glibc lgamma(),
  // which writes the process-global `signgam` — a data race when the fab
  // Monte Carlo samples from many pool workers at once.  Sample from
  // uniforms only: Knuth's product method per chunk, with the exact
  // splitting identity Poisson(a + b) = Poisson(a) + Poisson(b) reducing
  // large means to chunks where exp(-lambda) stays well away from
  // underflow.
  const auto knuth = [this](double mean) {
    const double limit = std::exp(-mean);
    int k = -1;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k;
  };
  constexpr double kChunk = 16.0;
  int n = 0;
  while (lambda > kChunk) {
    n += knuth(kChunk);
    lambda -= kChunk;
  }
  return n + knuth(lambda);
}

bool Rng::bernoulli(double p) {
  CARBON_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
  return std::bernoulli_distribution(p)(engine_);
}

int Rng::uniform_int(int n) {
  CARBON_REQUIRE(n > 0, "uniform_int: n must be positive");
  return std::uniform_int_distribution<int>(0, n - 1)(engine_);
}

int Rng::categorical(const std::vector<double>& weights) {
  CARBON_REQUIRE(!weights.empty(), "categorical: no weights");
  double total = 0.0;
  for (double w : weights) {
    CARBON_REQUIRE(w >= 0.0, "categorical: negative weight");
    total += w;
  }
  CARBON_REQUIRE(total > 0.0, "categorical: all-zero weights");
  double u = uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace carbon::phys
