#include "phys/linalg_complex.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

ComplexMatrix::ComplexMatrix(int rows, int cols, Complex fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, fill) {
  CARBON_REQUIRE(rows >= 0 && cols >= 0, "matrix dims must be non-negative");
}

void ComplexMatrix::fill(Complex value) {
  std::fill(data_.begin(), data_.end(), value);
}

double ComplexMatrix::max_abs() const {
  double m = 0.0;
  for (const Complex& v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::vector<Complex> solve_dense_complex(ComplexMatrix a,
                                         const std::vector<Complex>& b) {
  const int n = a.rows();
  CARBON_REQUIRE(n == a.cols(), "LU requires a square matrix");
  CARBON_REQUIRE(static_cast<int>(b.size()) == n, "rhs size mismatch");
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  const double amax = std::max(a.max_abs(), 1e-300);

  for (int k = 0; k < n; ++k) {
    int piv = k;
    double best = std::abs(a(k, k));
    for (int i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) { best = v; piv = i; }
    }
    if (best <= amax * 1e-14) {
      throw ConvergenceError("complex LU: matrix is numerically singular");
    }
    if (piv != k) {
      for (int j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(perm[k], perm[piv]);
    }
    const Complex inv = 1.0 / a(k, k);
    for (int i = k + 1; i < n; ++i) {
      const Complex factor = a(i, k) * inv;
      a(i, k) = factor;
      if (factor != Complex{}) {
        for (int j = k + 1; j < n; ++j) a(i, j) -= factor * a(k, j);
      }
    }
  }

  std::vector<Complex> x(n);
  for (int i = 0; i < n; ++i) x[i] = b[perm[i]];
  for (int i = 1; i < n; ++i) {
    Complex s = x[i];
    for (int j = 0; j < i; ++j) s -= a(i, j) * x[j];
    x[i] = s;
  }
  for (int i = n - 1; i >= 0; --i) {
    Complex s = x[i];
    for (int j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
    x[i] = s / a(i, i);
  }
  return x;
}

}  // namespace carbon::phys
