#include "phys/linalg_complex.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

ComplexMatrix::ComplexMatrix(int rows, int cols, Complex fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, fill) {
  CARBON_REQUIRE(rows >= 0 && cols >= 0, "matrix dims must be non-negative");
}

void ComplexMatrix::fill(Complex value) {
  std::fill(data_.begin(), data_.end(), value);
}

double ComplexMatrix::max_abs() const {
  double m = 0.0;
  for (const Complex& v : data_) m = std::max(m, std::abs(v));
  return m;
}

void ComplexLuFactorization::factor(const ComplexMatrix& a) {
  const int n = a.rows();
  CARBON_REQUIRE(n == a.cols(), "LU requires a square matrix");
  factored_ = false;
  lu_ = a;  // reuses lu_'s buffer when the size matches
  perm_.resize(n);
  for (int i = 0; i < n; ++i) perm_[i] = i;
  const double amax = std::max(lu_.max_abs(), 1e-300);

  for (int k = 0; k < n; ++k) {
    int piv = k;
    double best = std::abs(lu_(k, k));
    for (int i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) { best = v; piv = i; }
    }
    // NaN compares false against every threshold — reject non-finite pivot
    // candidates explicitly instead of letting them survive the search.
    if (!std::isfinite(best)) {
      throw SingularMatrixError(
          SingularMatrixError::Kind::kNonFinite, perm_[piv], k,
          "complex LU: non-finite value in pivot column " + std::to_string(k));
    }
    if (best <= amax * 1e-14) {
      throw SingularMatrixError(
          SingularMatrixError::Kind::kSingular, perm_[piv], k,
          "complex LU: matrix is numerically singular at column " +
              std::to_string(k));
    }
    if (piv != k) {
      for (int j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
    }
    const Complex inv = 1.0 / lu_(k, k);
    for (int i = k + 1; i < n; ++i) {
      const Complex factor = lu_(i, k) * inv;
      lu_(i, k) = factor;
      if (factor != Complex{}) {
        for (int j = k + 1; j < n; ++j) lu_(i, j) -= factor * lu_(k, j);
      }
    }
  }
  factored_ = true;
}

void ComplexLuFactorization::solve_in_place(std::vector<Complex>& bx) const {
  const int n = lu_.rows();
  CARBON_REQUIRE(factored_, "complex LU: no factorization held");
  CARBON_REQUIRE(static_cast<int>(bx.size()) == n, "rhs size mismatch");
  scratch_.resize(n);
  for (int i = 0; i < n; ++i) scratch_[i] = bx[perm_[i]];
  bx.swap(scratch_);
  for (int i = 1; i < n; ++i) {
    Complex s = bx[i];
    for (int j = 0; j < i; ++j) s -= lu_(i, j) * bx[j];
    bx[i] = s;
  }
  for (int i = n - 1; i >= 0; --i) {
    Complex s = bx[i];
    for (int j = i + 1; j < n; ++j) s -= lu_(i, j) * bx[j];
    bx[i] = s / lu_(i, i);
  }
}

void ComplexLuFactorization::solve_transpose_in_place(
    std::vector<Complex>& bx) const {
  const int n = lu_.rows();
  CARBON_REQUIRE(factored_, "complex LU: no factorization held");
  CARBON_REQUIRE(static_cast<int>(bx.size()) == n, "rhs size mismatch");
  // factor() recorded A = Pᵀ L U, so Aᵀ x = b unwinds as a forward sweep
  // with Uᵀ (lower triangular), a backward sweep with Lᵀ (unit upper
  // triangular) and a final row-permutation scatter x = Pᵀ z.
  for (int i = 0; i < n; ++i) {
    Complex s = bx[i];
    for (int j = 0; j < i; ++j) s -= lu_(j, i) * bx[j];
    bx[i] = s / lu_(i, i);
  }
  for (int i = n - 1; i >= 0; --i) {
    Complex s = bx[i];
    for (int j = i + 1; j < n; ++j) s -= lu_(j, i) * bx[j];
    bx[i] = s;
  }
  scratch_.resize(n);
  for (int i = 0; i < n; ++i) scratch_[perm_[i]] = bx[i];
  bx.swap(scratch_);
}

std::vector<Complex> solve_dense_complex(ComplexMatrix a,
                                         const std::vector<Complex>& b) {
  ComplexLuFactorization lu;
  lu.factor(a);
  std::vector<Complex> x = b;
  lu.solve_in_place(x);
  return x;
}

}  // namespace carbon::phys
