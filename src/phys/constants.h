#pragma once

/// @file constants.h
/// Physical constants (CODATA 2018) used across the library.
///
/// Unit conventions used throughout CarbonCMOS:
///  * energies handled by band/transport code are in **electron volts (eV)**,
///  * lengths are in **metres** unless a function name says otherwise,
///  * voltages in volts, currents in amperes, temperatures in kelvin,
///  * capacitances in farad (or F/m for per-length quantities).

namespace carbon::phys {

/// Elementary charge [C].
inline constexpr double kQ = 1.602176634e-19;

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Boltzmann constant [eV/K].
inline constexpr double kBoltzmannEv = kBoltzmann / kQ;  // 8.617333e-5

/// Planck constant [J s].
inline constexpr double kPlanck = 6.62607015e-34;

/// Reduced Planck constant [J s].
inline constexpr double kHbar = 1.054571817e-34;

/// Reduced Planck constant [eV s].
inline constexpr double kHbarEv = kHbar / kQ;

/// Free-electron mass [kg].
inline constexpr double kElectronMass = 9.1093837015e-31;

/// Vacuum permittivity [F/m].
inline constexpr double kEpsilon0 = 8.8541878128e-12;

/// Speed of light [m/s].
inline constexpr double kSpeedOfLight = 2.99792458e8;

/// Quantum of conductance for a single spin-degenerate mode, 2e^2/h [S].
inline constexpr double kConductanceQuantum = 2.0 * kQ * kQ / kPlanck;

/// Resistance quantum of a 4-fold degenerate CNT channel, h/(4e^2) [Ohm]
/// (the theoretical minimum two-terminal resistance of a single nanotube,
/// ~6.45 kOhm; the paper quotes ~11 kOhm as the best achieved series
/// resistance including real contacts).
inline constexpr double kCntQuantumResistance = kPlanck / (4.0 * kQ * kQ);

/// Thermal voltage kT/q at temperature @p temperature_k [V].
constexpr double thermal_voltage(double temperature_k) {
  return kBoltzmannEv * temperature_k;
}

/// Room temperature used by default everywhere [K].
inline constexpr double kRoomTemperature = 300.0;

}  // namespace carbon::phys
