#include "phys/roots.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"

namespace carbon::phys {

Bracket bracket_root(const std::function<double(double)>& f, double x0,
                     double x1, int max_expansions) {
  CARBON_REQUIRE(x0 != x1, "need a non-degenerate initial interval");
  double lo = std::min(x0, x1);
  double hi = std::max(x0, x1);
  double flo = f(lo);
  double fhi = f(hi);
  const double grow = 1.6;
  for (int i = 0; i < max_expansions; ++i) {
    if (flo == 0.0) return {lo, lo, true};
    if (fhi == 0.0) return {hi, hi, true};
    if (flo * fhi < 0.0) return {lo, hi, true};
    // Expand the side with the smaller |f| — it is closer to the root.
    if (std::abs(flo) < std::abs(fhi)) {
      lo -= grow * (hi - lo);
      flo = f(lo);
    } else {
      hi += grow * (hi - lo);
      fhi = f(hi);
    }
  }
  return {lo, hi, false};
}

double brent(const std::function<double(double)>& f, double lo, double hi,
             double x_tol, int max_iter) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  CARBON_REQUIRE(fa * fb < 0.0, "brent: bracket does not change sign");

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 0; iter < max_iter; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * 1e-16 * std::abs(b) + 0.5 * x_tol;
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol1 || fb == 0.0) return b;
    if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      const double min1 = 3.0 * xm * q - std::abs(tol1 * q);
      const double min2 = std::abs(e * q);
      if (2.0 * p < std::min(min1, min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol1) ? d : (xm > 0 ? tol1 : -tol1);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      e = d = b - a;
    }
  }
  throw ConvergenceError("brent: iteration limit exceeded");
}

double find_root(const std::function<double(double)>& f, double x0, double x1,
                 double x_tol) {
  const Bracket br = bracket_root(f, x0, x1);
  CARBON_REQUIRE(br.found, "find_root: failed to bracket a sign change");
  if (br.lo == br.hi) return br.lo;
  return brent(f, br.lo, br.hi, x_tol);
}

double newton_bisect(const std::function<double(double)>& f,
                     const std::function<double(double)>& dfdx, double lo,
                     double hi, double x_tol, int max_iter) {
  double flo = f(lo), fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  CARBON_REQUIRE(flo * fhi < 0.0, "newton_bisect: bracket does not change sign");
  if (flo > 0.0) {
    std::swap(lo, hi);  // keep f(lo) < 0
  }
  double x = 0.5 * (lo + hi);
  for (int i = 0; i < max_iter; ++i) {
    const double fx = f(x);
    if (fx < 0.0) lo = x; else hi = x;
    const double dfx = dfdx(x);
    double x_next = (dfx != 0.0) ? x - fx / dfx : 0.5 * (lo + hi);
    const double a = std::min(lo, hi), b = std::max(lo, hi);
    if (x_next <= a || x_next >= b) x_next = 0.5 * (lo + hi);
    if (std::abs(x_next - x) < x_tol) return x_next;
    x = x_next;
  }
  throw ConvergenceError("newton_bisect: iteration limit exceeded");
}

}  // namespace carbon::phys
