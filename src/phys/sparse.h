#pragma once

/// @file sparse.h
/// Sparse linear algebra for circuit-scale MNA systems: a CSR matrix with an
/// immutable pattern and a sparse LU factorization built for SPICE-style
/// workloads, where one circuit topology is factored thousands of times with
/// different values (Newton iterations, sweep points, transient steps).
///
/// The LU splits the work the way production circuit solvers (Sparse 1.3,
/// KLU) do:
///
///  * analyze_factor() — run once per matrix *pattern*.  Computes a
///    fill-reducing column preorder (minimum degree on the pattern of
///    A + Aᵀ), performs a Gilbert–Peierls row-by-row factorization with
///    threshold partial pivoting (diagonal-preferring, so the preorder's
///    fill prediction survives), and records the pivot sequence, the exact
///    L/U fill pattern and the scatter map from the CSR values into the
///    factorization working set.
///
///  * refactor() — the hot-loop path.  Repeats only the numeric work along
///    the recorded pattern: no ordering, no depth-first search, no pivot
///    search, no allocation.  Cost is O(flops of the factorization), i.e.
///    near-linear in unknowns for circuit-typical sparsity.
///
/// refactor() returns false when a recorded pivot has collapsed numerically
/// (the values drifted too far from the ones the pivot order was chosen
/// for); callers then re-run analyze_factor() — the factor() convenience
/// wrapper does exactly that.

#include <utility>
#include <vector>

#include "phys/linalg.h"

namespace carbon::phys {

/// Sparse matrix in compressed-sparse-row (CSR) form.  The pattern is fixed
/// at construction; only the values are mutable.  Built for assembly loops:
/// callers resolve (row, col) positions to value slots once via slot() and
/// then write straight into values().
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Build an n x n matrix from a coordinate list (0-based row/col pairs).
  /// Duplicates are merged; values start at zero.
  static SparseMatrix from_coords(int n,
                                  std::vector<std::pair<int, int>> coords);

  int size() const { return n_; }
  int nnz() const { return static_cast<int>(col_idx_.size()); }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  std::vector<double>& values() { return values_; }
  const std::vector<double>& values() const { return values_; }

  /// Index into values() of entry (r, c); -1 when the position is not in
  /// the pattern.  O(log nnz(row)).
  int slot(int r, int c) const;

  /// Entry (r, c), zero when outside the pattern.
  double at(int r, int c) const;

  void zero_values();
  double max_abs() const;

  /// Dense copy (tests and small-system diagnostics only).
  Matrix to_dense() const;

 private:
  int n_ = 0;
  std::vector<int> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<double> values_;
};

/// Tuning knobs of SparseLu.
struct SparseLuOptions {
  /// Threshold of the diagonal-preference pivoting: the diagonal candidate
  /// is accepted when |diag| >= pivot_tol * |largest candidate|.
  double pivot_tol = 1e-3;
  /// A pivot with |pivot| <= singular_tol * max|A| is treated as singular
  /// (analyze_factor throws; refactor returns false).
  double singular_tol = 1e-14;
};

/// Sparse LU with symbolic-pattern reuse; see the file comment for the
/// analyze/refactor contract.  Instances are reusable workspaces: after
/// analyze_factor() has run for a pattern, refactor() + solve_in_place()
/// perform no heap allocation.
class SparseLu {
 public:
  SparseLu() = default;
  explicit SparseLu(SparseLuOptions opt) : opt_(opt) {}

  /// Full analysis + factorization of @p a.  Records ordering, pivot
  /// sequence and fill pattern for later refactor() calls.  Throws
  /// ConvergenceError when the matrix is numerically singular.
  void analyze_factor(const SparseMatrix& a);

  /// Numeric-only refactorization of a matrix with the SAME pattern as the
  /// one analyzed.  Returns false (factorization invalidated) when a pivot
  /// collapses; the pattern analysis stays valid numbers-wise but the pivot
  /// sequence should be re-picked via analyze_factor().
  bool refactor(const SparseMatrix& a);

  /// Convenience: analyze on first use, refactor afterwards, transparently
  /// re-analyzing once when the recorded pivot sequence goes stale.  Throws
  /// ConvergenceError when the matrix is truly singular.
  void factor(const SparseMatrix& a);

  bool analyzed() const { return analyzed_; }
  bool factored() const { return factored_; }

  /// Solve A x = b with b supplied (and x returned) in @p bx.  Reuses
  /// internal scratch, so concurrent calls on one instance are not safe.
  void solve_in_place(std::vector<double>& bx) const;

  /// Allocating convenience solve.
  std::vector<double> solve(std::vector<double> b) const;

  /// Entries of L + U including the diagonal (fill diagnostics).
  int fill_nnz() const;

  /// Number of analyze_factor() runs (diagnostics: the Newton loop should
  /// drive this to 1 per topology).
  int analyze_count() const { return analyze_count_; }

 private:
  void require_pattern_match(const SparseMatrix& a) const;

  SparseLuOptions opt_;
  bool analyzed_ = false;
  bool factored_ = false;
  int n_ = 0;
  int pattern_nnz_ = 0;
  int analyze_count_ = 0;

  // Recorded analysis (all column indices in final pivot space).
  std::vector<int> p_;       ///< permuted row i reads A row p_[i]
  std::vector<int> solcol_;  ///< solution position k scatters to x[solcol_[k]]
  std::vector<int> aptr_, asrc_, adst_;  ///< CSR value -> work vector scatter
  std::vector<int> eptr_, ek_;           ///< per-row elimination sequence (L pattern)
  std::vector<int> uptr_, ucol_;         ///< U row patterns (excluding diagonal)

  // Numeric payload, rewritten by every (re)factorization.
  std::vector<double> lval_;   ///< parallel to ek_
  std::vector<double> uval_;   ///< parallel to ucol_
  std::vector<double> udiag_;

  mutable std::vector<double> work_;  ///< dense scatter / solve scratch
};

/// Minimum-degree ordering of the symmetrized pattern of @p a (the pattern
/// of A + Aᵀ).  Returns the elimination order: order[k] = original index
/// eliminated k-th.  Exposed for tests and diagnostics.
std::vector<int> min_degree_order(const SparseMatrix& a);

}  // namespace carbon::phys
