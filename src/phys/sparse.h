#pragma once

/// @file sparse.h
/// Sparse linear algebra for circuit-scale MNA systems: a CSR matrix with an
/// immutable pattern and a sparse LU factorization built for SPICE-style
/// workloads, where one circuit topology is factored thousands of times with
/// different values (Newton iterations, sweep points, transient steps,
/// AC frequency points).
///
/// Both classes are templated over the scalar so the real Newton backend
/// (T = double) and the small-signal AC/noise backend (T = Complex) share
/// one implementation: the symbolic machinery (ordering, reach computation,
/// fill pattern, pivot sequence) only ever looks at |entry|, which is a
/// double either way.  `SparseMatrix`/`SparseLu` are the real aliases the
/// Newton path has always used; `SparseMatrixZ`/`SparseLuZ` are the complex
/// twins behind spice::AcSystem.
///
/// The LU splits the work the way production circuit solvers (Sparse 1.3,
/// KLU) do:
///
///  * analyze_factor() — run once per matrix *pattern*.  Computes a
///    fill-reducing column preorder (minimum degree on the pattern of
///    A + Aᵀ), performs a Gilbert–Peierls row-by-row factorization with
///    threshold partial pivoting (diagonal-preferring, so the preorder's
///    fill prediction survives), and records the pivot sequence, the exact
///    L/U fill pattern and the scatter map from the CSR values into the
///    factorization working set.
///
///  * refactor() — the hot-loop path.  Repeats only the numeric work along
///    the recorded pattern: no ordering, no depth-first search, no pivot
///    search, no allocation.  Cost is O(flops of the factorization), i.e.
///    near-linear in unknowns for circuit-typical sparsity.
///
/// refactor() returns false when a recorded pivot has collapsed numerically
/// (the values drifted too far from the ones the pivot order was chosen
/// for); callers then re-run analyze_factor() — the factor() convenience
/// wrapper does exactly that.

#include <utility>
#include <vector>

#include "phys/linalg.h"
#include "phys/linalg_complex.h"

namespace carbon::phys {

namespace detail {
/// Dense mirror type of a sparse matrix (tests and small-system
/// diagnostics): phys::Matrix for double, phys::ComplexMatrix for Complex.
template <typename T>
struct DenseMatrixFor;
template <>
struct DenseMatrixFor<double> {
  using type = Matrix;
};
template <>
struct DenseMatrixFor<Complex> {
  using type = ComplexMatrix;
};
}  // namespace detail

/// Sparse matrix in compressed-sparse-row (CSR) form.  The pattern is fixed
/// at construction; only the values are mutable.  Built for assembly loops:
/// callers resolve (row, col) positions to value slots once via slot() and
/// then write straight into values().
template <typename T>
class SparseMatrixT {
 public:
  SparseMatrixT() = default;

  /// Build an n x n matrix from a coordinate list (0-based row/col pairs).
  /// Duplicates are merged; values start at zero.
  static SparseMatrixT from_coords(int n,
                                   std::vector<std::pair<int, int>> coords);

  int size() const { return n_; }
  int nnz() const { return static_cast<int>(col_idx_.size()); }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  std::vector<T>& values() { return values_; }
  const std::vector<T>& values() const { return values_; }

  /// Index into values() of entry (r, c); -1 when the position is not in
  /// the pattern.  O(log nnz(row)).
  int slot(int r, int c) const;

  /// Entry (r, c), zero when outside the pattern.
  T at(int r, int c) const;

  void zero_values();
  double max_abs() const;

  /// Dense copy (tests and small-system diagnostics only).
  typename detail::DenseMatrixFor<T>::type to_dense() const;

 private:
  int n_ = 0;
  std::vector<int> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<T> values_;
};

using SparseMatrix = SparseMatrixT<double>;
using SparseMatrixZ = SparseMatrixT<Complex>;

/// Tuning knobs of SparseLu.
struct SparseLuOptions {
  /// Threshold of the diagonal-preference pivoting: the diagonal candidate
  /// is accepted when |diag| >= pivot_tol * |largest candidate|.
  double pivot_tol = 1e-3;
  /// A pivot with |pivot| <= singular_tol * max|A| is treated as singular
  /// (analyze_factor throws; refactor returns false).
  double singular_tol = 1e-14;
  /// Numerical-quality guard of the recorded pivot order: refactor()
  /// returns false (-> factor() re-analyzes with fresh pivots) when a
  /// pivot no longer dominates its eliminated row, |pivot| <
  /// refactor_tol * max|row|.  analyze_factor() guarantees |pivot| >=
  /// pivot_tol * max|row| at selection time, so this only trips after the
  /// values have drifted ~pivot_tol/refactor_tol away from the analyzed
  /// matrix — without it a stale order silently produces factorizations
  /// with unbounded element growth (solves that look fine but carry O(1)
  /// relative error, stalling Newton just above its tolerance).
  double refactor_tol = 1e-5;
};

/// Sparse LU with symbolic-pattern reuse; see the file comment for the
/// analyze/refactor contract.  Instances are reusable workspaces: after
/// analyze_factor() has run for a pattern, refactor() + solve_in_place()
/// perform no heap allocation.
template <typename T>
class SparseLuT {
 public:
  SparseLuT() = default;
  explicit SparseLuT(SparseLuOptions opt) : opt_(opt) {}

  /// Full analysis + factorization of @p a.  Records ordering, pivot
  /// sequence and fill pattern for later refactor() calls.  Throws
  /// SingularMatrixError (carrying the original-space row/col of the
  /// collapsed pivot) when the matrix is numerically singular or a
  /// non-finite value reaches the pivot search.
  void analyze_factor(const SparseMatrixT<T>& a);

  /// Numeric-only refactorization of a matrix with the SAME pattern as the
  /// one analyzed.  Returns false (factorization invalidated) when a pivot
  /// collapses; the pattern analysis stays valid numbers-wise but the pivot
  /// sequence should be re-picked via analyze_factor().  On failure the
  /// failing position is available via failure_row()/failure_col()/
  /// failure_nonfinite().
  bool refactor(const SparseMatrixT<T>& a);

  /// Convenience: analyze on first use, refactor afterwards, transparently
  /// re-analyzing once when the recorded pivot sequence goes stale.  Throws
  /// SingularMatrixError when the matrix is truly singular.
  void factor(const SparseMatrixT<T>& a);

  bool analyzed() const { return analyzed_; }
  bool factored() const { return factored_; }

  /// Solve A x = b with b supplied (and x returned) in @p bx.  Reuses
  /// internal scratch, so concurrent calls on one instance are not safe.
  void solve_in_place(std::vector<T>& bx) const;

  /// Solve Aᵀ x = b (plain transpose, NOT conjugated) in place, from the
  /// same factorization.  This is the adjoint-network solve behind the
  /// noise analysis: one transpose solve per frequency yields the transfer
  /// from *every* noise-current injection site to the output node at once.
  void solve_transpose_in_place(std::vector<T>& bx) const;

  /// Allocating convenience solve.
  std::vector<T> solve(std::vector<T> b) const;

  /// Entries of L + U including the diagonal (fill diagnostics).
  int fill_nnz() const;

  /// Number of analyze_factor() runs (diagnostics: the Newton loop should
  /// drive this to 1 per topology).
  int analyze_count() const { return analyze_count_; }

  /// Original-space row of the most recent pivot collapse (-1 when the last
  /// factorization succeeded or no attribution is possible).  Valid after a
  /// refactor() that returned false or an analyze_factor() that threw.
  int failure_row() const { return failure_row_; }
  /// Original-space column of the most recent pivot collapse (-1 unknown).
  int failure_col() const { return failure_col_; }
  /// True when the last failure was a NaN/Inf rather than a small pivot.
  bool failure_nonfinite() const { return failure_nonfinite_; }

 private:
  void require_pattern_match(const SparseMatrixT<T>& a) const;

  SparseLuOptions opt_;
  bool analyzed_ = false;
  bool factored_ = false;
  int n_ = 0;
  int pattern_nnz_ = 0;
  int analyze_count_ = 0;
  int failure_row_ = -1;
  int failure_col_ = -1;
  bool failure_nonfinite_ = false;

  // Recorded analysis (all column indices in final pivot space).
  std::vector<int> p_;       ///< permuted row i reads A row p_[i]
  std::vector<int> solcol_;  ///< solution position k scatters to x[solcol_[k]]
  std::vector<int> aptr_, asrc_, adst_;  ///< CSR value -> work vector scatter
  std::vector<int> eptr_, ek_;           ///< per-row elimination sequence (L pattern)
  std::vector<int> uptr_, ucol_;         ///< U row patterns (excluding diagonal)

  // Numeric payload, rewritten by every (re)factorization.
  std::vector<T> lval_;   ///< parallel to ek_
  std::vector<T> uval_;   ///< parallel to ucol_
  std::vector<T> udiag_;

  mutable std::vector<T> work_;  ///< dense scatter / solve scratch
};

using SparseLu = SparseLuT<double>;
using SparseLuZ = SparseLuT<Complex>;

/// Minimum-degree ordering of the symmetrized pattern of @p a (the pattern
/// of A + Aᵀ).  Returns the elimination order: order[k] = original index
/// eliminated k-th.  Exposed for tests and diagnostics.
template <typename T>
std::vector<int> min_degree_order(const SparseMatrixT<T>& a);

}  // namespace carbon::phys
