#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace carbon::obs {

double Histogram::bucket_bound(int i) {
  return 1e-6 * static_cast<double>(1ll << i);
}

void Histogram::record_ns(long long ns) {
  if (ns < 0) ns = 0;
  // Bucket i covers (bound(i-1), bound(i)] with bound(i) = 1000 * 2^i ns:
  // ns <= 1000 * 2^i  <=>  (ns - 1) / 1000 >> i == 0, so the index is the
  // bit width of (ns - 1) / 1000.  The 28-entry ladder tops out near
  // 134 s; everything above lands in the overflow cell.
  const unsigned long long q =
      ns > 0 ? (static_cast<unsigned long long>(ns) - 1) / 1000ull : 0;
  int idx = 0;
  while (idx < kBuckets && q >> idx) ++idx;
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  for (int i = 0; i <= kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum_s = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

MetricsRegistry::Instrument& MetricsRegistry::instrument(
    const std::string& name, const std::string& labels,
    const std::string& help, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = nullptr;
  for (const auto& f : families_) {
    if (f->name == name) {
      fam = f.get();
      break;
    }
  }
  if (!fam) {
    families_.push_back(std::make_unique<Family>());
    fam = families_.back().get();
    fam->name = name;
    fam->help = help;
    fam->kind = kind;
  }
  for (const auto& inst : fam->instruments) {
    if (inst->labels == labels) return *inst;
  }
  fam->instruments.push_back(std::make_unique<Instrument>());
  Instrument& inst = *fam->instruments.back();
  inst.labels = labels;
  switch (kind) {
    case Kind::kCounter: inst.counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: inst.gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      inst.histogram = std::make_unique<Histogram>();
      break;
  }
  return inst;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels,
                                  const std::string& help) {
  return *instrument(name, labels, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels,
                              const std::string& help) {
  return *instrument(name, labels, help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& labels,
                                      const std::string& help) {
  return *instrument(name, labels, help, Kind::kHistogram).histogram;
}

namespace {

const char* kind_name(bool counter, bool gauge) {
  return counter ? "counter" : (gauge ? "gauge" : "histogram");
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// `name{labels}` / `name{labels,extra}` / `name` as labels demand.
std::string with_labels(const std::string& name, const std::string& labels,
                        const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

}  // namespace

std::string MetricsRegistry::prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& fam : families_) {
    const char* type = fam->kind == Kind::kCounter
                           ? "counter"
                           : fam->kind == Kind::kGauge ? "gauge" : "histogram";
    if (!fam->help.empty()) {
      out += "# HELP " + fam->name + " " + fam->help + "\n";
    }
    out += "# TYPE " + fam->name + " " + type + "\n";
    for (const auto& inst : fam->instruments) {
      switch (fam->kind) {
        case Kind::kCounter:
          out += with_labels(fam->name, inst->labels) + " " +
                 std::to_string(inst->counter->load()) + "\n";
          break;
        case Kind::kGauge:
          out += with_labels(fam->name, inst->labels) + " " +
                 std::to_string(inst->gauge->load()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot s = inst->histogram->snapshot();
          long cum = 0;
          for (int i = 0; i < Histogram::kBuckets; ++i) {
            cum += s.buckets[i];
            out += with_labels(fam->name + "_bucket", inst->labels,
                               "le=\"" +
                                   fmt_double(Histogram::bucket_bound(i)) +
                                   "\"") +
                   " " + std::to_string(cum) + "\n";
          }
          out += with_labels(fam->name + "_bucket", inst->labels,
                             "le=\"+Inf\"") +
                 " " + std::to_string(s.count) + "\n";
          out += with_labels(fam->name + "_sum", inst->labels) + " " +
                 fmt_double(s.sum_s) + "\n";
          out += with_labels(fam->name + "_count", inst->labels) + " " +
                 std::to_string(s.count) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

core::Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto doc = core::Json::object();
  for (const auto& fam : families_) {
    auto fj = core::Json::object();
    fj.set("type", kind_name(fam->kind == Kind::kCounter,
                             fam->kind == Kind::kGauge));
    if (!fam->help.empty()) fj.set("help", fam->help);
    auto values = core::Json::array();
    for (const auto& inst : fam->instruments) {
      auto vj = core::Json::object();
      if (!inst->labels.empty()) vj.set("labels", inst->labels);
      switch (fam->kind) {
        case Kind::kCounter: vj.set("value", inst->counter->load()); break;
        case Kind::kGauge: vj.set("value", inst->gauge->load()); break;
        case Kind::kHistogram: {
          const Histogram::Snapshot s = inst->histogram->snapshot();
          vj.set("count", s.count);
          vj.set("sum_s", s.sum_s);
          auto buckets = core::Json::array();
          for (int i = 0; i <= Histogram::kBuckets; ++i) {
            buckets.push(s.buckets[i]);
          }
          vj.set("buckets", std::move(buckets));
          break;
        }
      }
      values.push(std::move(vj));
    }
    fj.set("values", std::move(values));
    doc.set(fam->name, std::move(fj));
  }
  return doc;
}

std::vector<std::pair<std::string, std::string>> MetricsRegistry::schema()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(families_.size());
  for (const auto& fam : families_) {
    out.emplace_back(fam->name, kind_name(fam->kind == Kind::kCounter,
                                          fam->kind == Kind::kGauge));
  }
  return out;
}

}  // namespace carbon::obs
