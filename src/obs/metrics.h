#pragma once

/// @file metrics.h
/// The process-wide metrics vocabulary: named counters, gauges and
/// fixed-size log-bucketed latency histograms behind one registry.
///
/// Design contract (shared by the library, carbon_sim and carbon_simd):
///  * The *record* path is lock-free and TSan-clean: instruments are
///    relaxed atomics, histograms bump one bucket cell per record, and a
///    caller holds a stable `Counter&`/`Histogram&` obtained once at
///    registration — no map lookup, no lock, no allocation per record.
///  * The *read* path is snapshot-on-read: exposition walks the atomics
///    with relaxed loads and a histogram's reported count is derived from
///    its bucket cells, so every snapshot is internally conserved
///    (count == sum of buckets) even while writers are running.
///  * Registration (name → instrument) is mutex-protected and expected to
///    happen at setup time; registering the same (name, labels) twice
///    returns the same instrument.
///
/// Exposition: Prometheus text format (prometheus()) and a structured
/// core::Json document (to_json()) carrying the same snapshot shape.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/report.h"

namespace carbon::obs {

/// Monotonic counter (relaxed atomics: diagnostics, not synchronization).
class Counter {
 public:
  void inc(long n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  long load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> v_{0};
};

/// Integer-valued level (can go up and down: in-flight work, cache size).
class Gauge {
 public:
  void set(long v) { v_.store(v, std::memory_order_relaxed); }
  void add(long n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(long n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  long load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<long> v_{0};
};

/// Fixed-size log-bucketed latency histogram.  Bucket upper bounds form a
/// geometric ladder: bound(i) = 1e-6 * 2^i seconds (1 µs ... ~134 s), with
/// one overflow bucket above.  record() is one bucket index computation
/// plus two relaxed fetch_adds; there is no per-record allocation or lock.
///
/// The running count is NOT stored separately: a snapshot's count is the
/// sum of its bucket cells, so concurrent snapshots are always internally
/// conserved.  The sum is tracked in integer nanoseconds (fetch_add-able).
class Histogram {
 public:
  static constexpr int kBuckets = 28;  ///< finite bounds; +1 overflow cell

  /// Upper bound of finite bucket @p i in seconds.
  static double bucket_bound(int i);

  void record(double seconds) {
    record_ns(static_cast<long long>(seconds * 1e9));
  }
  void record_ns(long long ns);

  struct Snapshot {
    long count = 0;     ///< == sum of buckets, by construction
    double sum_s = 0.0; ///< total recorded time [s]
    std::array<long, kBuckets + 1> buckets{};  ///< last cell = overflow
  };
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<long>, kBuckets + 1> buckets_{};
  std::atomic<long long> sum_ns_{0};
};

/// Named instrument registry.  Families are keyed by metric name; each
/// family holds one instrument per label set (Prometheus-style, e.g.
/// counter("carbon_requests_total", "outcome=\"ok\"")).  Instruments have
/// stable addresses for the life of the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) an instrument.  @p labels is the Prometheus
  /// label body without braces (`outcome="ok"`), empty for none.  @p help
  /// is recorded on first registration of the family.
  Counter& counter(const std::string& name, const std::string& labels = "",
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "",
               const std::string& help = "");
  Histogram& histogram(const std::string& name,
                       const std::string& labels = "",
                       const std::string& help = "");

  /// Prometheus text exposition (one HELP/TYPE header per family).
  std::string prometheus() const;
  /// The same snapshot as a structured document:
  ///   {"<family>": {"type": "...", "help": "...",
  ///                 "values": [{"labels": "...", ...}, ...]}}
  core::Json to_json() const;

  /// (family name, type) pairs in registration order — the stable schema
  /// the golden-schema test asserts against.
  std::vector<std::pair<std::string, std::string>> schema() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    std::vector<std::unique_ptr<Instrument>> instruments;
  };

  Instrument& instrument(const std::string& name, const std::string& labels,
                         const std::string& help, Kind kind);

  mutable std::mutex mu_;  ///< registration + exposition; never the record path
  std::vector<std::unique_ptr<Family>> families_;
};

}  // namespace carbon::obs
