#pragma once

/// @file phase.h
/// Phase-time accounting of the solve pipeline the perf PRs optimize:
/// where one solve's wall clock actually goes, split into
///   stamp  — baseline restore + matrix/RHS assembly (minus device eval),
///   eval   — device model evaluation inside the dynamic stamps,
///   factor — LU factorization (numeric refactor; skips excluded),
///   solve  — back-substitution of the factored system.
///
/// A PhaseTimes is plain single-threaded accumulator state, plumbed by
/// nullable pointer (SolverOptions::phases → StampContext::phases): a null
/// pointer costs one branch per phase boundary and zero clock reads, so
/// the default (unprofiled) hot path stays unperturbed.

namespace carbon::obs {

struct PhaseTimes {
  long long stamp_ns = 0;
  long long eval_ns = 0;
  long long factor_ns = 0;
  long long solve_ns = 0;

  bool any() const {
    return stamp_ns || eval_ns || factor_ns || solve_ns;
  }
  void add(const PhaseTimes& o) {
    stamp_ns += o.stamp_ns;
    eval_ns += o.eval_ns;
    factor_ns += o.factor_ns;
    solve_ns += o.solve_ns;
  }
  void reset() { *this = PhaseTimes{}; }
};

}  // namespace carbon::obs
