#pragma once

/// @file trace.h
/// Per-solve span/event tracing into bounded per-thread ring buffers,
/// exportable as Chrome `trace_event` JSON (open in chrome://tracing or
/// https://ui.perfetto.dev).
///
/// Attachment model: a Tracer is attached to the *current thread* with an
/// RAII TraceAttach guard; instrumented hot paths read one thread-local
/// pointer (obs::tracer()) and skip all clock reads when it is null — the
/// unattached cost of an instrumentation site is a TLS load and a branch.
/// Event names must be string literals (or otherwise outlive the Tracer):
/// records store the pointer, never copy the text.
///
/// Each recording thread gets its own fixed-capacity ring buffer (created
/// on first record under the registration mutex, lock-free after); when a
/// ring is full the oldest events are overwritten, so a runaway transient
/// keeps the *latest* window instead of growing without bound.  Export
/// (chrome_json) is meant to run after recording threads quiesce — the
/// drivers attach, run one deck, detach, then export.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/report.h"

namespace carbon::obs {

/// Monotonic timestamp [ns] (steady_clock).
long long now_ns();

class Tracer {
 public:
  /// @p capacity_per_thread: ring size in events for each recording
  /// thread (clamped to >= 16).
  explicit Tracer(std::size_t capacity_per_thread = 1u << 15);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Record one complete span (Chrome "X" event).  @p name must outlive
  /// the tracer (string literal).
  void span(const char* name, long long ts_ns, long long dur_ns);
  /// Record one instant event (Chrome "i" event).
  void instant(const char* name, long long ts_ns);

  /// Chrome trace_event document: {"traceEvents": [...]}.  Call after
  /// recording threads quiesce.
  core::Json chrome_json() const;
  std::string chrome_json_text() const { return chrome_json().dump(); }

  /// Events recorded over the tracer's lifetime, including those already
  /// overwritten by ring wraparound.
  long long total_recorded() const;
  /// Events currently held across all rings (<= threads * capacity).
  std::size_t held() const;
  std::size_t capacity_per_thread() const { return cap_; }

 private:
  struct Event {
    const char* name;
    long long ts_ns;
    long long dur_ns;  ///< < 0: instant event
  };
  struct Ring {
    std::vector<Event> ev;
    std::size_t count = 0;  ///< total recorded; ring index = count % cap
    int tid = 0;
  };

  Ring& ring();
  void push(const char* name, long long ts_ns, long long dur_ns);

  const std::size_t cap_;
  const std::uint64_t id_;  ///< distinguishes tracers for the TLS ring cache
  mutable std::mutex mu_;   ///< ring registration + export; not the record path
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Tracer attached to the current thread (nullptr when none).
Tracer* tracer();

/// RAII: attach @p t to the current thread, restoring the previous
/// attachment on destruction.  Pass nullptr to suppress tracing in a scope.
class TraceAttach {
 public:
  explicit TraceAttach(Tracer* t);
  ~TraceAttach();
  TraceAttach(const TraceAttach&) = delete;
  TraceAttach& operator=(const TraceAttach&) = delete;

 private:
  Tracer* prev_;
};

/// Span helper for the hot paths: captures the start time only when a
/// tracer is attached, records on destruction.  Name must be a literal.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : t_(tracer()), name_(name) {
    if (t_) t0_ = now_ns();
  }
  ~ScopedSpan() {
    if (t_) t_->span(name_, t0_, now_ns() - t0_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* t_;
  const char* name_;
  long long t0_ = 0;
};

}  // namespace carbon::obs
