#include "obs/trace.h"

#include <atomic>
#include <chrono>

namespace carbon::obs {

long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

std::atomic<std::uint64_t> g_tracer_ids{1};

thread_local Tracer* t_attached = nullptr;
// Per-thread ring cache: valid when t_ring_tracer matches the tracer's id
// (ids are never reused, so a dead tracer's cache can never alias a new
// one at the same address).
thread_local std::uint64_t t_ring_tracer = 0;
thread_local void* t_ring = nullptr;

}  // namespace

Tracer* tracer() { return t_attached; }

TraceAttach::TraceAttach(Tracer* t) : prev_(t_attached) { t_attached = t; }
TraceAttach::~TraceAttach() { t_attached = prev_; }

Tracer::Tracer(std::size_t capacity_per_thread)
    : cap_(capacity_per_thread < 16 ? 16 : capacity_per_thread),
      id_(g_tracer_ids.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::Ring& Tracer::ring() {
  if (t_ring_tracer == id_) return *static_cast<Ring*>(t_ring);
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>());
  Ring& r = *rings_.back();
  r.ev.resize(cap_);
  r.tid = static_cast<int>(rings_.size());
  t_ring_tracer = id_;
  t_ring = &r;
  return r;
}

void Tracer::push(const char* name, long long ts_ns, long long dur_ns) {
  Ring& r = ring();
  Event& e = r.ev[r.count % cap_];
  e.name = name;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  ++r.count;
}

void Tracer::span(const char* name, long long ts_ns, long long dur_ns) {
  push(name, ts_ns, dur_ns < 0 ? 0 : dur_ns);
}

void Tracer::instant(const char* name, long long ts_ns) {
  push(name, ts_ns, -1);
}

core::Json Tracer::chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto events = core::Json::array();
  for (const auto& r : rings_) {
    const std::size_t held = r->count < cap_ ? r->count : cap_;
    const std::size_t start = r->count - held;  // oldest surviving event
    for (std::size_t k = 0; k < held; ++k) {
      const Event& e = r->ev[(start + k) % cap_];
      auto ev = core::Json::object();
      ev.set("name", e.name);
      ev.set("cat", "carbon");
      ev.set("ph", e.dur_ns < 0 ? "i" : "X");
      // Chrome trace timestamps are microseconds (doubles).
      ev.set("ts", static_cast<double>(e.ts_ns) * 1e-3);
      if (e.dur_ns >= 0) {
        ev.set("dur", static_cast<double>(e.dur_ns) * 1e-3);
      } else {
        ev.set("s", "t");  // instant scope: thread
      }
      ev.set("pid", 1);
      ev.set("tid", r->tid);
      events.push(std::move(ev));
    }
  }
  auto doc = core::Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc;
}

long long Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  long long total = 0;
  for (const auto& r : rings_) total += static_cast<long long>(r->count);
  return total;
}

std::size_t Tracer::held() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t held = 0;
  for (const auto& r : rings_) held += r->count < cap_ ? r->count : cap_;
  return held;
}

}  // namespace carbon::obs
