#include "logic/gatesim.h"

#include "phys/require.h"

namespace carbon::logic {

NetId GateSim::add_net(const std::string& name) {
  const NetId id = static_cast<NetId>(values_.size());
  names_.push_back(name);
  values_.push_back(false);
  fanout_.emplace_back();
  pending_time_.push_back(-1.0);
  pending_value_.push_back(false);
  return id;
}

const std::string& GateSim::net_name(NetId id) const {
  CARBON_REQUIRE(id >= 0 && id < num_nets(), "net id out of range");
  return names_[id];
}

void GateSim::add_gate(GateType type, const std::vector<NetId>& inputs,
                       NetId output, double delay_s) {
  const size_t expected =
      (type == GateType::kBuf || type == GateType::kInv) ? 1 : 2;
  CARBON_REQUIRE(inputs.size() == expected, "wrong input count for gate");
  CARBON_REQUIRE(output >= 0 && output < num_nets(), "bad output net");
  CARBON_REQUIRE(delay_s >= 0.0, "negative delay");
  for (NetId in : inputs) {
    CARBON_REQUIRE(in >= 0 && in < num_nets(), "bad input net");
  }
  const int gate_index = static_cast<int>(gates_.size());
  gates_.push_back({type, inputs, output, delay_s});
  for (NetId in : inputs) fanout_[in].push_back(gate_index);
}

bool GateSim::eval_gate(const Gate& g) const {
  const auto in = [&](int i) { return values_[g.inputs[i]]; };
  switch (g.type) {
    case GateType::kBuf:   return in(0);
    case GateType::kInv:   return !in(0);
    case GateType::kAnd2:  return in(0) && in(1);
    case GateType::kOr2:   return in(0) || in(1);
    case GateType::kNand2: return !(in(0) && in(1));
    case GateType::kNor2:  return !(in(0) || in(1));
    case GateType::kXor2:  return in(0) != in(1);
    case GateType::kXnor2: return in(0) == in(1);
    case GateType::kDLatch:
      // transparent while enable (input 1) is high, else hold
      return in(1) ? in(0) : values_[g.output];
  }
  return false;
}

void GateSim::schedule(NetId net, bool value, double t) {
  // Inertial delay: a newer event for the same net supersedes the pending
  // one if the values differ; identical values are de-duplicated.
  if (pending_time_[net] >= 0.0 && pending_value_[net] == value) return;
  pending_time_[net] = t;
  pending_value_[net] = value;
  queue_.push({t, seq_++, net, value});
}

void GateSim::set_input(NetId net, bool value, double t_s) {
  CARBON_REQUIRE(net >= 0 && net < num_nets(), "bad net");
  CARBON_REQUIRE(t_s >= now_, "cannot schedule in the past");
  queue_.push({t_s, seq_++, net, value});
}

void GateSim::initialize() {
  // Power-up: evaluate every gate once so constant-input logic settles even
  // before the first external event arrives.
  for (const Gate& g : gates_) {
    const bool out = eval_gate(g);
    if (out != values_[g.output]) schedule(g.output, out, now_ + g.delay);
  }
  initialized_ = true;
}

double GateSim::run_until(double t_stop_s) {
  if (!initialized_) initialize();
  while (!queue_.empty() && queue_.top().time <= t_stop_s) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    // Drop superseded inertial events.
    if (pending_time_[ev.net] >= 0.0 &&
        (pending_time_[ev.net] != ev.time ||
         pending_value_[ev.net] != ev.value)) {
      // A later schedule replaced this one.
      if (pending_time_[ev.net] > ev.time) continue;
    }
    pending_time_[ev.net] = -1.0;
    if (values_[ev.net] == ev.value) continue;  // no change
    values_[ev.net] = ev.value;
    ++events_processed_;
    for (int gi : fanout_[ev.net]) {
      const Gate& g = gates_[gi];
      const bool out = eval_gate(g);
      schedule(g.output, out, now_ + g.delay);
    }
  }
  if (queue_.empty()) return now_;
  now_ = t_stop_s;
  return now_;
}

bool GateSim::value(NetId net) const {
  CARBON_REQUIRE(net >= 0 && net < num_nets(), "bad net");
  return values_[net];
}

std::uint64_t GateSim::read_bus(const std::vector<NetId>& bits) const {
  CARBON_REQUIRE(bits.size() <= 64, "bus too wide");
  std::uint64_t v = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (value(bits[i])) v |= (1ull << i);
  }
  return v;
}

void GateSim::set_bus(const std::vector<NetId>& bits, std::uint64_t value,
                      double t_s) {
  for (size_t i = 0; i < bits.size(); ++i) {
    set_input(bits[i], (value >> i) & 1ull, t_s);
  }
}

}  // namespace carbon::logic
