#include "logic/subneg.h"

#include <algorithm>

#include "phys/require.h"

namespace carbon::logic {

SubnegMachine::SubnegMachine(int memory_words)
    : mem_(static_cast<size_t>(memory_words), 0) {
  CARBON_REQUIRE(memory_words >= 8, "memory too small");
}

void SubnegMachine::load(const SubnegProgram& program) {
  code_ = program.code;
  for (const auto& [addr, value] : program.data) write(addr, value);
  pc_ = 0;
  trace_.clear();
}

std::int64_t SubnegMachine::read(int addr) const {
  CARBON_REQUIRE(addr >= 0 && addr < static_cast<int>(mem_.size()),
                 "address out of range");
  return mem_[addr];
}

void SubnegMachine::write(int addr, std::int64_t value) {
  CARBON_REQUIRE(addr >= 0 && addr < static_cast<int>(mem_.size()),
                 "address out of range");
  mem_[addr] = value;
}

int SubnegMachine::run(int max_steps) {
  int steps = 0;
  while (pc_ >= 0 && pc_ < static_cast<int>(code_.size()) &&
         steps < max_steps) {
    const SubnegInstruction insn = code_[pc_];
    const std::int64_t result = read(insn.b) - read(insn.a);
    write(insn.b, result);
    SubnegStep st;
    st.pc = pc_;
    st.insn = insn;
    st.result = result;
    st.branched = result < 0;
    trace_.push_back(st);
    pc_ = st.branched ? insn.c : pc_ + 1;
    ++steps;
  }
  return steps;
}

SubnegProgram make_counting_program(std::int64_t start, std::int64_t step,
                                    std::int64_t limit) {
  CARBON_REQUIRE(step > 0, "step must be positive");
  CARBON_REQUIRE(limit >= start, "limit below start");
  // Memory map: 0=counter 1=-step 2=limit 3=Z 4=tmp.
  SubnegProgram p;
  p.data = {{0, start}, {1, -step}, {2, limit}, {3, 0}, {4, 0}};
  p.code = {
      {1, 0, 1},  // counter -= (-step)          => counter += step
      {4, 4, 2},  // tmp = 0
      {3, 3, 3},  // Z = 0
      {0, 3, 4},  // Z -= counter                => Z = -counter (branch=next)
      {3, 4, 5},  // tmp -= Z                    => tmp = counter
      {2, 4, 0},  // tmp -= limit; if < 0 loop, else halt (pc walks off)
  };
  return p;
}

SubnegProgram make_sort2_program(std::int64_t x, std::int64_t y) {
  // Memory map: 3=Z 4=t 6=t1 10=x 11=y. Sorted result: 10=min, 11=max.
  SubnegProgram p;
  p.data = {{3, 0}, {4, 0}, {6, 0}, {10, x}, {11, y}};
  p.code = {
      {4, 4, 1},     // 0: t = 0
      {11, 4, 2},    // 1: t -= y            => t = -y
      {3, 3, 3},     // 2: Z = 0
      {10, 3, 4},    // 3: Z -= x            => Z = -x   (branch = next)
      {3, 4, 17},    // 4: t -= Z            => t = x - y; if x<y halt (sorted)
      // swap block: t1 = x; x = y; y = t1 (SUBNEG copy idiom)
      {6, 6, 6},     // 5: t1 = 0
      {3, 3, 7},     // 6: Z = 0
      {10, 3, 8},    // 7: Z -= x
      {3, 6, 9},     // 8: t1 -= Z           => t1 = x
      {10, 10, 10},  // 9: x = 0
      {3, 3, 11},    // 10: Z = 0
      {11, 3, 12},   // 11: Z -= y
      {3, 10, 13},   // 12: x -= Z           => x = y
      {11, 11, 14},  // 13: y = 0
      {3, 3, 15},    // 14: Z = 0
      {6, 3, 16},    // 15: Z -= t1
      {3, 11, 17},   // 16: y -= Z           => y = t1
  };
  return p;
}

SubnegDatapath::SubnegDatapath(int width, const CellTiming& timing)
    : width_(width) {
  CARBON_REQUIRE(width >= 1 && width <= 32, "width must be in [1,32]");
  CARBON_REQUIRE(timing.t_inv_s > 0.0, "cell timing not characterized");
  const double t_inv = timing.t_inv_s;
  const double t_2in = timing.t_nand2_s;
  const double t_xor = 2.0 * timing.t_nand2_s;

  // Build a ripple-borrow subtractor: diff = b - a.
  //   d_i    = b_i ^ a_i ^ bor_i
  //   bor_{i+1} = (~b_i & a_i) | (bor_i & ~(b_i ^ a_i))
  NetId bor = sim_.add_net("bor0");  // constant 0 borrow-in
  for (int i = 0; i < width_; ++i) {
    const std::string s = std::to_string(i);
    const NetId a = sim_.add_net("a" + s);
    const NetId b = sim_.add_net("b" + s);
    a_bits_.push_back(a);
    b_bits_.push_back(b);

    const NetId bxa = sim_.add_net("bxa" + s);
    sim_.add_gate(GateType::kXor2, {b, a}, bxa, t_xor);
    const NetId d = sim_.add_net("d" + s);
    sim_.add_gate(GateType::kXor2, {bxa, bor}, d, t_xor);
    diff_bits_.push_back(d);

    const NetId nb = sim_.add_net("nb" + s);
    sim_.add_gate(GateType::kInv, {b}, nb, t_inv);
    const NetId nb_and_a = sim_.add_net("nba" + s);
    sim_.add_gate(GateType::kAnd2, {nb, a}, nb_and_a, t_2in);
    const NetId nbxa = sim_.add_net("nbxa" + s);
    sim_.add_gate(GateType::kInv, {bxa}, nbxa, t_inv);
    const NetId prop = sim_.add_net("prop" + s);
    sim_.add_gate(GateType::kAnd2, {bor, nbxa}, prop, t_2in);
    const NetId bor_next = sim_.add_net("bor" + std::to_string(i + 1));
    sim_.add_gate(GateType::kOr2, {nb_and_a, prop}, bor_next, t_2in);
    bor = bor_next;
  }
  borrow_out_ = bor;
  // Worst path: borrow ripple through every stage plus the final XOR.
  gate_delay_budget_s_ = width_ * (t_xor + 2.0 * t_2in + t_inv) + 4.0 * t_xor;
}

std::uint64_t SubnegDatapath::subtract(std::uint64_t b, std::uint64_t a,
                                       bool* negative) {
  const double t0 = epoch_s_;
  sim_.set_bus(a_bits_, a, t0);
  sim_.set_bus(b_bits_, b, t0);
  const double t_done = sim_.run_until(t0 + 4.0 * gate_delay_budget_s_);
  settle_s_ = std::max(t_done - t0, 0.0);
  epoch_s_ = t0 + 4.0 * gate_delay_budget_s_;
  if (negative) *negative = sim_.value(borrow_out_);
  return sim_.read_bus(diff_bits_);
}

int SubnegDatapath::num_gates() const { return sim_.num_gates(); }

}  // namespace carbon::logic
