#include "logic/stdcell.h"

#include <algorithm>
#include <cmath>

#include "circuit/cells.h"
#include "circuit/vtc.h"
#include "phys/require.h"

namespace carbon::logic {

CellTiming characterize_cells(const device::DeviceModelPtr& n_model,
                              const CharacterizationOptions& opt) {
  CARBON_REQUIRE(n_model != nullptr, "null model");
  CellTiming ct;
  ct.v_dd = opt.v_dd;
  ct.c_load_f = opt.c_load_f;

  circuit::CellOptions copt;
  copt.v_dd = opt.v_dd;
  copt.c_load = opt.c_load_f;
  copt.fet_multiplier = opt.fet_multiplier;
  circuit::InverterBench bench = circuit::make_inverter(n_model, copt);

  // Pick a window from the CV/I estimate unless the caller fixed one.
  double window = opt.t_window_s;
  if (window <= 0.0) {
    const double i_on = std::abs(
        n_model->drain_current(opt.v_dd, opt.v_dd)) * opt.fet_multiplier;
    CARBON_REQUIRE(i_on > 0.0, "device does not conduct at VDD");
    const double rc = opt.c_load_f * opt.v_dd / i_on;
    window = 60.0 * rc;
  }
  const circuit::SwitchingEnergy se =
      circuit::measure_switching(bench, window, window / 3000.0);

  ct.t_inv_s = 0.5 * (se.t_phl_s + se.t_plh_s);
  ct.energy_per_transition_j = 0.5 * se.energy_j;
  // Stack-depth derating for 2-input gates with symmetric p/n devices.
  ct.t_nand2_s = 1.5 * ct.t_inv_s;
  ct.t_nor2_s = 1.7 * ct.t_inv_s;
  return ct;
}

}  // namespace carbon::logic
