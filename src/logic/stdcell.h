#pragma once

/// @file stdcell.h
/// Standard-cell timing characterized from device physics: SPICE transient
/// runs of the inverter and NAND built from a device model give the gate
/// delays used by the logic simulator.  This is the bridge from the
/// compact models to the one-bit computer demonstration.

#include "device/ivmodel.h"

namespace carbon::logic {

/// Characterized cell delays.
struct CellTiming {
  double t_inv_s = 0.0;    ///< inverter propagation delay (avg of HL/LH)
  double t_nand2_s = 0.0;  ///< NAND2 delay estimate
  double t_nor2_s = 0.0;   ///< NOR2 delay estimate
  double energy_per_transition_j = 0.0;  ///< inverter switching energy
  double v_dd = 0.0;
  double c_load_f = 0.0;
};

/// Options for characterization.
struct CharacterizationOptions {
  double v_dd = 0.5;
  double c_load_f = 0.1e-15;   ///< local-interconnect-scale load
  double fet_multiplier = 1.0; ///< parallel tubes per FET
  double t_window_s = 0.0;     ///< 0 = auto from an Ion-based RC estimate
};

/// Run the SPICE characterization of @p n_model.
/// Series gates are estimated from the inverter delay with standard
/// stack-depth factors (NAND2 ~ 1.5x, NOR2 ~ 1.7x for symmetric devices).
CellTiming characterize_cells(const device::DeviceModelPtr& n_model,
                              const CharacterizationOptions& opt = {});

}  // namespace carbon::logic
