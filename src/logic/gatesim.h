#pragma once

/// @file gatesim.h
/// Event-driven gate-level logic simulator with inertial delays.  Gate
/// timing comes from SPICE characterization of the CNTFET cells
/// (see stdcell.h), which is how the repository connects device physics to
/// the paper's "carbon nanotube computer" claim (refs [20, 21]).

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace carbon::logic {

/// Supported gate types.
enum class GateType {
  kBuf, kInv, kAnd2, kOr2, kNand2, kNor2, kXor2, kXnor2,
  kDLatch,  ///< inputs {d, enable}: transparent while enable is high
};

/// Net identifier.
using NetId = int;

/// Event-driven logic simulator.
class GateSim {
 public:
  /// Create a named net; initial value false.
  NetId add_net(const std::string& name);
  int num_nets() const { return static_cast<int>(values_.size()); }
  const std::string& net_name(NetId id) const;

  /// Add a gate driving @p output from @p inputs with @p delay_s inertial
  /// delay.  DLatch expects inputs {d, en}.
  void add_gate(GateType type, const std::vector<NetId>& inputs,
                NetId output, double delay_s);

  /// Schedule an external drive of @p net to @p value at time @p t_s.
  void set_input(NetId net, bool value, double t_s);

  /// Run until the event queue is empty or @p t_stop_s is reached.
  /// Returns the time of the last processed event.
  double run_until(double t_stop_s);

  /// Present value of a net.
  bool value(NetId net) const;

  /// Read a bus (LSB first) as an unsigned integer.
  std::uint64_t read_bus(const std::vector<NetId>& bits) const;

  /// Drive a bus (LSB first) at a given time.
  void set_bus(const std::vector<NetId>& bits, std::uint64_t value,
               double t_s);

  long long events_processed() const { return events_processed_; }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  double now() const { return now_; }

 private:
  struct Gate {
    GateType type;
    std::vector<NetId> inputs;
    NetId output;
    double delay;
  };
  struct Event {
    double time;
    long long seq;  // FIFO tiebreak
    NetId net;
    bool value;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  bool eval_gate(const Gate& g) const;
  void schedule(NetId net, bool value, double t);
  void initialize();  // power-up evaluation of every gate

  bool initialized_ = false;

  std::vector<std::string> names_;
  std::vector<bool> values_;
  std::vector<Gate> gates_;
  std::vector<std::vector<int>> fanout_;  // net -> gate indices
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<double> pending_time_;   // net -> scheduled event time (or <0)
  std::vector<bool> pending_value_;
  long long seq_ = 0;
  long long events_processed_ = 0;
  double now_ = 0.0;
};

}  // namespace carbon::logic
