#pragma once

/// @file subneg.h
/// The SUBNEG one-instruction-set computer: the architecture of the carbon
/// nanotube computer of Shulaker et al. (ref [20]; see also ref [21]).
/// Every instruction is (a, b, c):
///     mem[b] <- mem[b] - mem[a];  if mem[b] < 0 jump to c, else fall through.
/// SUBNEG is Turing-complete; the Nature demonstration ran counting and
/// sorting with exactly this instruction, implemented in 178 CNT FETs.
///
/// Two implementations live here:
///  * a word-level interpreter (the architectural reference), and
///  * a gate-level datapath (ripple-borrow subtractor + negative flag)
///    built in GateSim from NAND/INV cells whose delays come from CNTFET
///    SPICE characterization — so one "cycle" has a physical time and
///    energy, and the gate-level result is checked against the interpreter.

#include <cstdint>
#include <string>
#include <vector>

#include "logic/gatesim.h"
#include "logic/stdcell.h"

namespace carbon::logic {

/// One SUBNEG instruction.
struct SubnegInstruction {
  int a = 0;  ///< subtrahend address
  int b = 0;  ///< minuend / destination address
  int c = 0;  ///< branch target when the result is negative
};

/// A program plus initial data segment.
struct SubnegProgram {
  std::vector<SubnegInstruction> code;
  std::vector<std::pair<int, std::int64_t>> data;  ///< (address, value)
};

/// Execution trace entry.
struct SubnegStep {
  int pc = 0;
  SubnegInstruction insn;
  std::int64_t result = 0;
  bool branched = false;
};

/// Word-level SUBNEG machine.
class SubnegMachine {
 public:
  explicit SubnegMachine(int memory_words = 64);

  void load(const SubnegProgram& program);
  std::int64_t read(int addr) const;
  void write(int addr, std::int64_t value);

  /// Run until pc walks off the end of code or @p max_steps executed.
  /// Returns the number of executed instructions.
  int run(int max_steps = 100000);

  const std::vector<SubnegStep>& trace() const { return trace_; }
  int pc() const { return pc_; }

 private:
  std::vector<std::int64_t> mem_;
  std::vector<SubnegInstruction> code_;
  std::vector<SubnegStep> trace_;
  int pc_ = 0;
};

/// The counting program of the CNT-computer demo: counts up from
/// @p start by @p step until reaching @p limit.  Result: counter address 0.
SubnegProgram make_counting_program(std::int64_t start, std::int64_t step,
                                    std::int64_t limit);

/// Bubble-sort of @p values using SUBNEG only (the Nature demo's second
/// workload class).  The sorted values end up in data addresses
/// 10..10+n-1.
SubnegProgram make_sort2_program(std::int64_t x, std::int64_t y);

/// Gate-level W-bit subtract-and-test datapath built from NAND/INV cells.
class SubnegDatapath {
 public:
  /// @param width   word width in bits
  /// @param timing  characterized cell delays (CNT standard cells)
  SubnegDatapath(int width, const CellTiming& timing);

  /// Compute b - a through the gate-level ripple-borrow subtractor.
  /// @param[out] negative  sign flag (borrow out)
  /// Returns the W-bit result (two's complement truncation).
  std::uint64_t subtract(std::uint64_t b, std::uint64_t a, bool* negative);

  /// Settling time of the last subtract [s] — the physical cycle-time bound
  /// of the CNT computer datapath.
  double last_settle_time_s() const { return settle_s_; }
  int num_gates() const;

 private:
  int width_;
  GateSim sim_;
  std::vector<NetId> a_bits_, b_bits_, diff_bits_;
  NetId borrow_out_ = -1;
  double settle_s_ = 0.0;
  double epoch_s_ = 0.0;
  double gate_delay_budget_s_ = 0.0;
};

}  // namespace carbon::logic
