#include "transport/landauer.h"

#include "phys/constants.h"
#include "phys/fermi.h"
#include "phys/integrate.h"
#include "phys/require.h"

namespace carbon::transport {

using phys::kPlanck;
using phys::kQ;

double conductance_quantum_per_mode() { return kQ * kQ / kPlanck; }

double landauer_current_conduction(double ec_ev, double mu_s_ev,
                                   double mu_d_ev, double kt_ev,
                                   int degeneracy, double transmission) {
  CARBON_REQUIRE(kt_ev > 0.0, "kT must be positive");
  CARBON_REQUIRE(transmission >= 0.0 && transmission <= 1.0,
                 "transmission must be in [0,1]");
  const double f0s = phys::fermi_dirac_f0((mu_s_ev - ec_ev) / kt_ev);
  const double f0d = phys::fermi_dirac_f0((mu_d_ev - ec_ev) / kt_ev);
  return degeneracy * transmission * conductance_quantum_per_mode() * kt_ev *
         (f0s - f0d);
}

double landauer_current_valence(double ev_ev, double mu_s_ev, double mu_d_ev,
                                double kt_ev, int degeneracy,
                                double transmission) {
  CARBON_REQUIRE(kt_ev > 0.0, "kT must be positive");
  // integral_{-inf}^{Ev} [f(E,mu_s) - f(E,mu_d)] dE
  //   = kT [F0((Ev - mu_d)/kT) - F0((Ev - mu_s)/kT)].
  const double f0d = phys::fermi_dirac_f0((ev_ev - mu_d_ev) / kt_ev);
  const double f0s = phys::fermi_dirac_f0((ev_ev - mu_s_ev) / kt_ev);
  return degeneracy * transmission * conductance_quantum_per_mode() * kt_ev *
         (f0d - f0s);
}

double landauer_current_numeric(const std::function<double(double)>& t_of_e,
                                double mu_s_ev, double mu_d_ev, double kt_ev,
                                double e_lo_ev, double e_hi_ev) {
  CARBON_REQUIRE(kt_ev > 0.0, "kT must be positive");
  const auto integrand = [&](double e) {
    return t_of_e(e) *
           (phys::fermi(e, mu_s_ev, kt_ev) - phys::fermi(e, mu_d_ev, kt_ev));
  };
  const double integral =
      phys::integrate_adaptive(integrand, e_lo_ev, e_hi_ev, 1e-14);
  return conductance_quantum_per_mode() * integral;
}

}  // namespace carbon::transport
