#include "transport/mfp.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::transport {

double MfpModel::lambda_eff(double vds_v) const {
  CARBON_REQUIRE(lambda_acoustic > 0.0 && lambda_optical > 0.0,
                 "mean free paths must be positive");
  // Fraction of carriers able to emit an optical phonon.
  const double x =
      (std::abs(vds_v) - hbar_omega_op_ev) / activation_width_ev;
  const double activation = 1.0 / (1.0 + std::exp(-x));
  const double inv =
      1.0 / lambda_acoustic + activation / lambda_optical;
  return 1.0 / inv;
}

double MfpModel::transmission(double length_m, double vds_v) const {
  CARBON_REQUIRE(length_m >= 0.0, "length must be non-negative");
  const double lambda = lambda_eff(vds_v);
  return lambda / (lambda + length_m);
}

}  // namespace carbon::transport
