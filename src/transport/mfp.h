#pragma once

/// @file mfp.h
/// Mean-free-path based quasi-ballistic transmission.  CNT channels are
/// near-ballistic at sub-100 nm lengths (acoustic-phonon MFP of hundreds of
/// nm); once carriers can gain more than the optical-phonon energy
/// (~0.18 eV) from the bias, the very short OP emission MFP (~15 nm) kicks
/// in.  This is what limits single-tube currents to the ~20-25 uA range the
/// paper's Fig. 4 data show.

namespace carbon::transport {

/// Phonon-limited mean-free-path model for a carbon channel.
struct MfpModel {
  /// Acoustic-phonon (low field) mean free path [m].
  double lambda_acoustic = 300e-9;
  /// Optical-phonon emission mean free path [m].
  double lambda_optical = 15e-9;
  /// Optical phonon energy [eV].
  double hbar_omega_op_ev = 0.18;
  /// Smoothing width of the OP activation with bias [eV].
  double activation_width_ev = 0.025;

  /// Effective MFP at drain bias @p vds_v (Matthiessen combination with a
  /// logistic OP activation once qVds exceeds the phonon energy) [m].
  double lambda_eff(double vds_v) const;

  /// Channel transmission T = lambda / (lambda + L) at bias @p vds_v for a
  /// channel of length @p length_m.
  double transmission(double length_m, double vds_v) const;
};

}  // namespace carbon::transport
