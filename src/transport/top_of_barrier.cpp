#include "transport/top_of_barrier.h"

#include <cmath>
#include <vector>

#include "phys/constants.h"
#include "phys/require.h"
#include "phys/roots.h"
#include "transport/landauer.h"

namespace carbon::transport {

using phys::kBoltzmannEv;
using phys::kQ;

TopOfBarrierSolver::TopOfBarrierSolver(TopOfBarrierParams params)
    : params_(std::move(params)) {
  CARBON_REQUIRE(!params_.ladder.subbands.empty(), "empty subband ladder");
  CARBON_REQUIRE(params_.c_total > 0.0, "C_total must be positive");
  CARBON_REQUIRE(params_.alpha_g > 0.0 && params_.alpha_g <= 1.0,
                 "alpha_g must be in (0,1]");
  CARBON_REQUIRE(params_.alpha_d >= 0.0 && params_.alpha_d < 1.0,
                 "alpha_d must be in [0,1)");
  CARBON_REQUIRE(params_.transmission > 0.0 && params_.transmission <= 1.0,
                 "transmission must be in (0,1]");

  // Pre-tabulate the reservoir electron density n(eta) where eta is the
  // Fermi level measured from midgap.  The exact integral is smooth and
  // monotone, so a monotone PCHIP over a uniform grid is accurate and keeps
  // each SPICE Newton iteration cheap.
  //
  // Window sizing: eta = mu - u_mid excursions grow with the subband ladder
  // extent and with how far the terminals are swept, so a fixed +-2.5 eV
  // window silently degraded deep sweeps (e.g. TFET gates to -2 V) into
  // exact-integral evaluations inside the root loop.  Cover the ladder
  // extent plus a 3.5 eV bias allowance; fallbacks past that are counted
  // per solve in TopOfBarrierState::table_fallbacks.
  const double kt = kBoltzmannEv * params_.temperature_k;
  double ladder_extent = 0.0;
  for (const auto& sb : params_.ladder.subbands) {
    ladder_extent = std::max(ladder_extent, sb.delta_ev);
  }
  const double half_width =
      std::max(2.5, ladder_extent + 3.5 + std::abs(params_.ef_source_ev));
  eta_hi_ = half_width;
  eta_lo_ = -half_width;
  const double spacing_ev = 0.01;  // same resolution as the old table
  const int n_pts =
      static_cast<int>(std::ceil((eta_hi_ - eta_lo_) / spacing_ev)) + 1;
  std::vector<double> eta(n_pts), dens(n_pts);
  for (int i = 0; i < n_pts; ++i) {
    eta[i] = eta_lo_ + (eta_hi_ - eta_lo_) * i / (n_pts - 1);
    dens[i] = params_.ladder.electron_density(eta[i], kt);
  }
  density_table_ = phys::PchipInterp(std::move(eta), std::move(dens));

  n0_ = density_vs_eta(params_.ef_source_ev, nullptr);
  // Keep the equilibrium hole density consistent with hole_density(): both
  // must vanish together or the charging term picks up a spurious offset.
  p0_ = params_.include_holes ? density_vs_eta(-params_.ef_source_ev, nullptr)
                              : 0.0;
}

double TopOfBarrierSolver::density_vs_eta(double eta_ev,
                                          int* fallbacks) const {
  if (eta_ev >= eta_lo_ && eta_ev <= eta_hi_) return density_table_(eta_ev);
  if (fallbacks) ++*fallbacks;
  const double kt = kBoltzmannEv * params_.temperature_k;
  return params_.ladder.electron_density(eta_ev, kt);  // rare fallback
}

double TopOfBarrierSolver::electron_density(double u_mid_ev, double mu_s,
                                            double mu_d,
                                            int* fallbacks) const {
  // +k states filled from the source, -k from the drain: average the two
  // reservoir densities.
  return 0.5 * (density_vs_eta(mu_s - u_mid_ev, fallbacks) +
                density_vs_eta(mu_d - u_mid_ev, fallbacks));
}

double TopOfBarrierSolver::hole_density(double u_mid_ev, double mu_s,
                                        double mu_d, int* fallbacks) const {
  if (!params_.include_holes) return 0.0;
  // Valence bands mirror the conduction bands: p(mu) = n(-mu) about midgap.
  return 0.5 * (density_vs_eta(u_mid_ev - mu_s, fallbacks) +
                density_vs_eta(u_mid_ev - mu_d, fallbacks));
}

TopOfBarrierState TopOfBarrierSolver::solve(double vg, double vd) const {
  const double mu_s = 0.0;
  const double mu_d = -vd;  // eV, electron energy convention
  const double u_laplace = -(params_.alpha_g * vg + params_.alpha_d * vd);
  const double charging_ev = kQ / params_.c_total;  // eV per unit line density

  int evals = 0;
  int fallbacks = 0;
  const auto residual = [&](double u) {
    ++evals;
    const double mid = u - params_.ef_source_ev;  // midgap vs source Fermi
    const double dn = electron_density(mid, mu_s, mu_d, &fallbacks) - n0_;
    const double dp = hole_density(mid, mu_s, mu_d, &fallbacks) - p0_;
    return u - u_laplace - charging_ev * (dn - dp);
  };

  // residual is strictly increasing in u (dn decreases, dp increases with
  // u), so a sign-changing bracket always exists around the solution.
  double lo = u_laplace - 1.5;
  double hi = u_laplace + 1.5;
  const phys::Bracket br = phys::bracket_root(residual, lo, hi, 40);
  CARBON_REQUIRE(br.found, "top-of-barrier: failed to bracket U_scf");
  const double u =
      (br.lo == br.hi) ? br.lo : phys::brent(residual, br.lo, br.hi, 1e-12);

  TopOfBarrierState st;
  st.u_scf_ev = u;
  st.iterations = evals;
  const double mid = u - params_.ef_source_ev;
  st.n_electrons = electron_density(mid, mu_s, mu_d, &fallbacks);
  st.p_holes = hole_density(mid, mu_s, mu_d, &fallbacks);
  st.table_fallbacks = fallbacks;

  const double kt = kBoltzmannEv * params_.temperature_k;
  double current = 0.0;
  for (const auto& sb : params_.ladder.subbands) {
    const double ec = mid + sb.delta_ev;
    current += landauer_current_conduction(ec, mu_s, mu_d, kt, sb.degeneracy,
                                           params_.transmission);
    if (params_.include_holes) {
      const double ev = mid - sb.delta_ev;
      current += landauer_current_valence(ev, mu_s, mu_d, kt, sb.degeneracy,
                                          params_.transmission);
    }
  }
  st.current_a = current;
  return st;
}

double TopOfBarrierSolver::current(double vg, double vd) const {
  return solve(vg, vd).current_a;
}

}  // namespace carbon::transport
