#pragma once

/// @file landauer.h
/// Landauer ballistic current formulas for 1-D channels.  All energies and
/// chemical potentials in eV; currents in amperes.

#include <functional>

namespace carbon::transport {

/// Conductance prefactor q^2/h [S] (one spinless mode carries q^2/h).
double conductance_quantum_per_mode();

/// Closed-form Landauer current for a constant transmission above a band
/// edge (the textbook ballistic-FET expression):
///   I = D * T * (q^2/h) * kT * [F0((mu_s - Ec)/kT) - F0((mu_d - Ec)/kT)]
/// @param ec_ev           band edge [eV]
/// @param mu_s_ev,mu_d_ev source/drain chemical potentials [eV]
/// @param kt_ev           thermal energy [eV]
/// @param degeneracy      mode degeneracy D (CNT first subband: 4)
/// @param transmission    energy-independent transmission in [0, 1]
double landauer_current_conduction(double ec_ev, double mu_s_ev,
                                   double mu_d_ev, double kt_ev,
                                   int degeneracy, double transmission);

/// Same for a valence band edge Ev (holes conduct below Ev); the result has
/// the same sign convention (positive from source to drain when
/// mu_s > mu_d).
double landauer_current_valence(double ev_ev, double mu_s_ev, double mu_d_ev,
                                double kt_ev, int degeneracy,
                                double transmission);

/// General numeric Landauer current with an arbitrary transmission function
/// T(E) integrated over [e_lo, e_hi]:
///   I = (q^2/h) * integral T(E) [f(E,mu_s) - f(E,mu_d)] dE.
double landauer_current_numeric(const std::function<double(double)>& t_of_e,
                                double mu_s_ev, double mu_d_ev, double kt_ev,
                                double e_lo_ev, double e_hi_ev);

}  // namespace carbon::transport
