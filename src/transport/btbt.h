#pragma once

/// @file btbt.h
/// Band-to-band tunneling (BTBT) for the CNT tunnel-FET of the paper's
/// Section IV / Fig. 6.  The interband barrier is treated in the WKB
/// approximation with the two-band (Kane) imaginary dispersion, giving the
/// standard result
///   T = exp( - pi sqrt(m*) Eg^{3/2} / (2 sqrt(2) q hbar F) ).

namespace carbon::transport {

/// WKB interband tunneling probability through a junction of band gap
/// @p eg_ev with reduced effective mass @p mass_kg under field
/// @p field_v_per_m.
double btbt_transmission(double eg_ev, double mass_kg, double field_v_per_m);

/// Ballistic BTBT current of a 1-D channel over an energy window
/// @p window_ev in which filled valence states face empty conduction states:
///   I = D * (q^2/h) * T * window.
/// (Constant-T approximation over the window; adequate for the narrow
/// windows of a low-voltage TFET.)
/// @param degeneracy  mode degeneracy of the tunneling subband
double btbt_current(double transmission, double window_ev, int degeneracy);

}  // namespace carbon::transport
