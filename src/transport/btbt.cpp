#include "transport/btbt.h"

#include <cmath>

#include "phys/constants.h"
#include "phys/require.h"
#include "transport/landauer.h"

namespace carbon::transport {

using phys::kHbar;
using phys::kQ;

double btbt_transmission(double eg_ev, double mass_kg, double field_v_per_m) {
  CARBON_REQUIRE(eg_ev > 0.0, "band gap must be positive");
  CARBON_REQUIRE(mass_kg > 0.0, "mass must be positive");
  if (field_v_per_m <= 0.0) return 0.0;
  const double eg_j = eg_ev * kQ;
  const double exponent = M_PI * std::sqrt(mass_kg) * std::pow(eg_j, 1.5) /
                          (2.0 * std::sqrt(2.0) * kQ * kHbar *
                           field_v_per_m);
  return std::exp(-exponent);
}

double btbt_current(double transmission, double window_ev, int degeneracy) {
  CARBON_REQUIRE(transmission >= 0.0 && transmission <= 1.0,
                 "transmission must be in [0,1]");
  if (window_ev <= 0.0) return 0.0;
  return degeneracy * conductance_quantum_per_mode() * transmission *
         window_ev;
}

}  // namespace carbon::transport
