#include "transport/schottky.h"

#include <cmath>

#include "phys/constants.h"
#include "phys/require.h"

namespace carbon::transport {

using phys::kCntQuantumResistance;
using phys::kHbar;
using phys::kQ;

double wkb_triangular_transmission(double barrier_ev, double field_v_per_m,
                                   double mass_kg) {
  CARBON_REQUIRE(mass_kg > 0.0, "mass must be positive");
  if (barrier_ev <= 0.0) return 1.0;
  CARBON_REQUIRE(field_v_per_m > 0.0, "field must be positive");
  const double phi_j = barrier_ev * kQ;
  const double exponent = 4.0 * std::sqrt(2.0 * mass_kg) *
                          std::pow(phi_j, 1.5) /
                          (3.0 * kQ * kHbar * field_v_per_m);
  return std::exp(-exponent);
}

double ContactResistanceModel::contact_resistance(double lc_m) const {
  CARBON_REQUIRE(lc_m > 0.0, "contact length must be positive");
  CARBON_REQUIRE(transfer_length > 0.0, "transfer length must be positive");
  const double x = lc_m / transfer_length;
  return r_long_ohm / std::tanh(x);
}

double ContactResistanceModel::total_series_resistance(double lc_m) const {
  return kCntQuantumResistance + 2.0 * contact_resistance(lc_m);
}

double junction_field(double delta_phi_v, double screening_length_m) {
  CARBON_REQUIRE(screening_length_m > 0.0,
                 "screening length must be positive");
  return delta_phi_v / screening_length_m;
}

}  // namespace carbon::transport
