#pragma once

/// @file schottky.h
/// Metal–channel contact physics: WKB tunneling through a triangular
/// Schottky barrier and the transfer-length model for contact-length
/// scaling.  Backs the paper's Section III.B discussion: a single CNT-FET
/// reaches ~11 kOhm total series resistance, and contact resistance grows
/// when the metal overlap shrinks below ~100 nm (yet 20 nm contacts still
/// perform well).

namespace carbon::transport {

/// WKB transmission through a triangular barrier of height @p barrier_ev
/// under electric field @p field_v_per_m for carriers of mass @p mass_kg:
///   T = exp( -4 sqrt(2 m) phi^{3/2} / (3 q hbar F) ).
double wkb_triangular_transmission(double barrier_ev, double field_v_per_m,
                                   double mass_kg);

/// Transfer-length model of a side-bonded metal–nanotube contact.
///
/// The current transfers from metal to tube over a characteristic transfer
/// length L_T; shortening the metal overlap Lc below L_T raises the contact
/// resistance as coth(Lc/LT) ~ LT/Lc.
struct ContactResistanceModel {
  /// Long-contact (asymptotic) resistance of one contact [Ohm].
  double r_long_ohm = 2.5e3;
  /// Transfer length [m]; experiments on CNTs place it around tens of nm.
  double transfer_length = 40e-9;

  /// Resistance of one contact of metal overlap length @p lc_m [Ohm].
  double contact_resistance(double lc_m) const;

  /// Total two-terminal series resistance including the intrinsic quantum
  /// resistance h/4e^2 of the tube: Rq + 2 * Rc(lc).
  double total_series_resistance(double lc_m) const;
};

/// Field at a metal-CNT junction estimated from the depletion/screening
/// length: F = delta_phi / lambda.  Small-diameter tubes screen over ~d,
/// which is the "sharp features have strong field enhancement" argument of
/// Section IV.
double junction_field(double delta_phi_v, double screening_length_m);

}  // namespace carbon::transport
