#pragma once

/// @file top_of_barrier.h
/// Self-consistent top-of-barrier (Natori / "FETToy") ballistic transistor
/// model over a ladder of hyperbolic 1-D subbands.  This is the solver that
/// regenerates the paper's Fig. 1 device simulations (which in turn match
/// the Ouyang et al. NEGF results the figure was taken from).
///
/// Physics: the channel is represented by the potential energy U at the top
/// of the source-drain barrier.  U responds to the terminals through
/// capacitive coupling (Laplace part) and to the mobile charge through the
/// total capacitance (Poisson part):
///     U = -q(alpha_g Vg + alpha_d Vd) + q^2 (N - N0 - (P - P0)) / C_sigma
/// where N (P) is the electron (hole) line density at the barrier top filled
/// by the two reservoirs.  +k states equilibrate with the source, -k states
/// with the drain.  The drain current follows from the Landauer formula over
/// the same barrier.  See Rahman, Guo, Datta & Lundstrom, IEEE TED 50, 1853
/// (2003).

#include "band/subband.h"
#include "phys/interp.h"

namespace carbon::transport {

/// Inputs of the top-of-barrier model.
struct TopOfBarrierParams {
  /// Conduction-subband ladder of the channel (valence bands are assumed
  /// mirror symmetric, as in CNT/GNR tight binding).
  band::SubbandLadder ladder;

  /// Gate control of the barrier top (1 = ideal gate-all-around; the paper's
  /// Fig. 3 argument is exactly that GAA maximizes this).
  double alpha_g = 0.88;

  /// Drain coupling: sets DIBL. 0 = perfectly screened channel.
  double alpha_d = 0.035;

  /// Total electrostatic capacitance per unit length seen by the barrier
  /// charge [F/m] (insulator + parasitics; quantum capacitance is handled
  /// self-consistently through the charge itself).
  double c_total = 4.0e-10;

  /// Source Fermi level relative to the channel midgap at flat band [eV].
  /// More negative = lower off-current (deeper in the gap).
  double ef_source_ev = -0.30;

  /// Lattice temperature [K].
  double temperature_k = 300.0;

  /// Energy-independent channel transmission in [0,1] (from MfpModel for
  /// quasi-ballistic channels; 1 = fully ballistic).
  double transmission = 1.0;

  /// Include the valence bands (ambipolar branch).  On by default — CNTFETs
  /// are ambipolar Schottky-type devices unless engineered otherwise.
  bool include_holes = true;
};

/// Converged operating point of the barrier.
struct TopOfBarrierState {
  double u_scf_ev = 0.0;     ///< self-consistent potential energy shift
  double n_electrons = 0.0;  ///< electron line density at the barrier [1/m]
  double p_holes = 0.0;      ///< hole line density [1/m]
  double current_a = 0.0;    ///< drain current [A]
  int iterations = 0;        ///< root-finder evaluations used
  /// Density lookups that fell off the pre-tabulated eta window and paid
  /// for the exact DOS integral.  The window is sized from the subband
  /// ladder extent plus a generous bias allowance, so this should stay 0
  /// for any physical sweep; a nonzero count flags a mis-sized table (the
  /// silent performance trap this counter was added to expose).
  int table_fallbacks = 0;
};

/// Self-consistent ballistic FET solver.  Thread-compatible (const solve).
class TopOfBarrierSolver {
 public:
  explicit TopOfBarrierSolver(TopOfBarrierParams params);

  const TopOfBarrierParams& params() const { return params_; }

  /// Solve the barrier self-consistency at gate bias @p vg and drain bias
  /// @p vd (source grounded; voltages in V, n-type convention).
  TopOfBarrierState solve(double vg, double vd) const;

  /// Drain current only [A].
  double current(double vg, double vd) const;

  /// Equilibrium electron density N0 [1/m] (cached at construction).
  double equilibrium_density() const { return n0_; }

  /// Half-width of the pre-tabulated n(eta) window [eV].
  double table_window_ev() const { return eta_hi_; }

 private:
  /// Reservoir-averaged electron density for midgap at energy u rel. source
  /// Fermi level (uses the cached density table).  @p fallbacks counts
  /// lookups that left the table window (may be null).
  double electron_density(double u_mid_ev, double mu_s, double mu_d,
                          int* fallbacks) const;
  double hole_density(double u_mid_ev, double mu_s, double mu_d,
                      int* fallbacks) const;
  /// Density for a single reservoir: Fermi level at eta above midgap.
  double density_vs_eta(double eta_ev, int* fallbacks) const;

  TopOfBarrierParams params_;
  phys::PchipInterp density_table_;  ///< n(eta): Fermi level above midgap
  double eta_lo_ = 0.0, eta_hi_ = 0.0;
  double n0_ = 0.0, p0_ = 0.0;
};

}  // namespace carbon::transport
