#pragma once

/// @file scaling.h
/// Voltage-scaling studies.  The paper's core thesis is that CNT-FETs "will
/// enable further voltage and gate length scaling"; this module quantifies
/// it: sweep VDD at constant field, track Ion, Ioff, intrinsic delay and
/// the inverter noise margins, for any device model.

#include <functional>
#include <vector>

#include "device/ivmodel.h"
#include "phys/table.h"

namespace carbon::core {

/// Options of a supply-scaling sweep.
struct ScalingOptions {
  double vdd_max = 1.0;
  double vdd_min = 0.3;
  int steps = 8;
  double c_load_f = 10e-15;  ///< load for the CV/I delay metric
};

/// Columns: vdd_v, ion_a, ioff_a, on_off_ratio, cv_over_i_s, gain@half-vdd.
phys::DataTable supply_scaling_table(const device::IDeviceModel& model,
                                     const ScalingOptions& opt = {});

/// Gate-length scaling of SS and DIBL for a parameterized family.
/// @param make  factory from gate length to model
/// Columns: lg_nm, ss_mv_dec, dibl_mv_v.
phys::DataTable short_channel_table(
    const std::function<device::DeviceModelPtr(double)>& make,
    const std::vector<double>& gate_lengths_m, double vdd_v);

}  // namespace carbon::core
