#include "core/technology.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "device/cntfet.h"
#include "device/mosfet.h"
#include "phys/require.h"
#include "phys/roots.h"
#include "phys/units.h"

namespace carbon::core {

using device::DeviceModelPtr;
using device::GateShifted;

BenchmarkPoint benchmark_at_fixed_ioff(const DeviceModelPtr& model,
                                       double vdd_v, double ioff_a_per_um) {
  CARBON_REQUIRE(model != nullptr, "null model");
  CARBON_REQUIRE(vdd_v > 0.0, "vdd must be positive");
  const double w_m = model->width_normalization();
  CARBON_REQUIRE(w_m > 0.0, "model has no normalization width");
  const double w_um = w_m * 1e6;
  const double ioff_target_a = ioff_a_per_um * w_um;

  // Find the gate shift that puts |Id(vgs=0, vds=vdd)| on the off-spec.
  // Id is monotone in the shift, so log-current crossing is bracketable.
  const auto f = [&](double shift) {
    const double id =
        std::abs(model->drain_current(shift, vdd_v));
    return std::log10(std::max(id, 1e-30)) - std::log10(ioff_target_a);
  };
  const double shift = phys::find_root(f, -0.5, 0.5, 1e-7);

  BenchmarkPoint pt;
  pt.technology = model->name();
  pt.vdd_v = vdd_v;
  pt.ioff_spec_a_per_um = ioff_a_per_um;
  pt.gate_shift_v = shift;
  pt.ion_a = std::abs(model->drain_current(vdd_v + shift, vdd_v));
  pt.ion_a_per_um = pt.ion_a / w_um;

  // Subthreshold swing over the first half-volt above off-state.
  const device::GateShifted shifted(model, shift);
  const double i1 = std::abs(shifted.drain_current(0.0, vdd_v));
  const double i2 = std::abs(shifted.drain_current(0.2, vdd_v));
  if (i2 > i1 && i1 > 0.0) {
    pt.ss_mv_dec = 0.2 / std::log10(i2 / i1) * 1e3;
  }
  return pt;
}

std::vector<BenchmarkPoint> benchmark_points(
    const std::vector<Technology>& techs, double vdd_v,
    double ioff_a_per_um) {
  std::vector<BenchmarkPoint> out;
  for (const auto& tech : techs) {
    for (double lg : tech.gate_lengths) {
      const DeviceModelPtr dev = tech.make_device(lg);
      BenchmarkPoint pt = benchmark_at_fixed_ioff(
          dev, vdd_v, ioff_a_per_um * tech.ioff_spec_scale);
      pt.technology = tech.name;
      pt.gate_length_m = lg;
      out.push_back(pt);
    }
  }
  return out;
}

phys::DataTable benchmark_table(const std::vector<Technology>& techs,
                                double vdd_v, double ioff_a_per_um) {
  const std::vector<BenchmarkPoint> pts =
      benchmark_points(techs, vdd_v, ioff_a_per_um);

  // Collect the union of gate lengths.
  std::vector<double> lgs;
  for (const auto& p : pts) {
    bool seen = false;
    for (double l : lgs) {
      if (std::abs(l - p.gate_length_m) < 1e-12) { seen = true; break; }
    }
    if (!seen) lgs.push_back(p.gate_length_m);
  }
  std::sort(lgs.begin(), lgs.end());

  std::vector<std::string> cols{"lg_nm"};
  for (const auto& t : techs) cols.push_back("ion_ma_um:" + t.name);
  phys::DataTable table(cols);
  for (double lg : lgs) {
    std::vector<double> row{phys::to_nm(lg)};
    for (const auto& t : techs) {
      double val = std::numeric_limits<double>::quiet_NaN();
      for (const auto& p : pts) {
        if (p.technology == t.name &&
            std::abs(p.gate_length_m - lg) < 1e-12) {
          val = p.ion_a_per_um * 1e3;  // A/um -> mA/um
          break;
        }
      }
      row.push_back(val);
    }
    table.add_row(row);
  }
  return table;
}

Technology make_cnt_technology() {
  Technology t;
  t.name = "cntfet";
  t.make_device = [](double lg) -> DeviceModelPtr {
    device::CntfetParams p = device::make_franklin_cntfet_params(lg);
    // The paper's champion series resistance: ~11 kOhm total (III.B).
    p.r_source_ohm = 5.5e3;
    p.r_drain_ohm = 5.5e3;
    // The length-scaling / 9 nm devices behind Fig. 5 are bottom-gated:
    // measured SS ~ 94 mV/dec and DIBL ~ 100 mV/V, well short of the GAA
    // ideal.  Model that electrostatics explicitly.
    p.alpha_g_override = 0.65;
    p.alpha_d_override = 0.10;
    return std::make_shared<device::CntfetModel>(p);
  };
  // Franklin length-scaling points, plus the 9 nm record device.
  t.gate_lengths = {9e-9, 15e-9, 20e-9, 40e-9, 100e-9, 300e-9};
  return t;
}

Technology make_si_technology() {
  Technology t;
  t.name = "si-finfet";
  t.make_device = [](double lg) -> DeviceModelPtr {
    return std::make_shared<device::VirtualSourceModel>(
        device::make_si_trigate_params(lg));
  };
  t.gate_lengths = {20e-9, 26e-9, 30e-9, 35e-9, 45e-9, 60e-9};
  return t;
}

Technology make_inas_technology() {
  Technology t;
  t.name = "inas-hemt";
  t.make_device = [](double lg) -> DeviceModelPtr {
    return std::make_shared<device::VirtualSourceModel>(
        device::make_inas_hemt_params(lg));
  };
  t.gate_lengths = {30e-9, 40e-9, 60e-9, 90e-9, 130e-9};
  return t;
}

Technology make_ingaas_technology() {
  Technology t;
  t.name = "ingaas-hemt";
  t.make_device = [](double lg) -> DeviceModelPtr {
    return std::make_shared<device::VirtualSourceModel>(
        device::make_ingaas_hemt_params(lg));
  };
  t.gate_lengths = {30e-9, 40e-9, 60e-9, 90e-9, 130e-9};
  return t;
}

std::vector<Technology> fig5_technologies() {
  std::vector<Technology> techs;
  Technology cnt = make_cnt_technology();
  // The 9 nm device is benchmarked at 10x the off-spec in the paper; give
  // it its own single-point entry so the footnote is preserved.
  Technology cnt9 = cnt;
  cnt9.name = "cntfet-9nm(10x ioff)";
  cnt9.gate_lengths = {9e-9};
  cnt9.ioff_spec_scale = 10.0;
  cnt.gate_lengths.erase(cnt.gate_lengths.begin());  // drop 9 nm from main
  techs.push_back(cnt);
  techs.push_back(cnt9);
  techs.push_back(make_si_technology());
  techs.push_back(make_inas_technology());
  techs.push_back(make_ingaas_technology());
  return techs;
}

}  // namespace carbon::core
