#include "core/scaling.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::core {

phys::DataTable supply_scaling_table(const device::IDeviceModel& model,
                                     const ScalingOptions& opt) {
  CARBON_REQUIRE(opt.steps >= 2, "need at least two supply points");
  phys::DataTable t({"vdd_v", "ion_a", "ioff_a", "on_off_ratio",
                     "cv_over_i_s", "gain_half_vdd"});
  for (int i = 0; i < opt.steps; ++i) {
    const double vdd = opt.vdd_max +
                       (opt.vdd_min - opt.vdd_max) * i / (opt.steps - 1);
    const double ion = std::abs(model.drain_current(vdd, vdd));
    const double ioff = std::abs(model.drain_current(0.0, vdd));
    const double delay = ion > 0.0 ? opt.c_load_f * vdd / ion : 1e9;
    const double gain =
        device::intrinsic_gain(model, 0.5 * vdd, 0.5 * vdd);
    t.add_row({vdd, ion, ioff, ioff > 0.0 ? ion / ioff : 0.0, delay, gain});
  }
  return t;
}

phys::DataTable short_channel_table(
    const std::function<device::DeviceModelPtr(double)>& make,
    const std::vector<double>& gate_lengths_m, double vdd_v) {
  CARBON_REQUIRE(!gate_lengths_m.empty(), "no gate lengths given");
  phys::DataTable t({"lg_nm", "ss_mv_dec", "dibl_mv_v"});
  for (double lg : gate_lengths_m) {
    const device::DeviceModelPtr dev = make(lg);
    // SS in the decade around 1% of the on-current; DIBL between a 50 mV
    // linear probe and vdd.
    const double i_on = std::abs(dev->drain_current(vdd_v, vdd_v));
    const double i_crit = std::max(i_on * 1e-4, 1e-15);
    double ss = 0.0, dibl = 0.0;
    try {
      const double vt_sat =
          device::threshold_voltage(*dev, i_crit, vdd_v, -0.5, vdd_v);
      ss = device::subthreshold_swing_mv_dec(*dev, vt_sat - 0.15,
                                             vt_sat - 0.05, vdd_v);
      dibl = device::dibl_mv_per_v(*dev, i_crit, 0.05, vdd_v, -0.5, vdd_v);
    } catch (const phys::PreconditionError&) {
      // Devices that never cross the probe current report zeros.
    }
    t.add_row({lg * 1e9, ss, dibl});
  }
  return t;
}

}  // namespace carbon::core
