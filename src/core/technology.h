#pragma once

/// @file technology.h
/// Cross-technology benchmarking (the paper's Fig. 5 methodology): every
/// candidate switch is re-targeted to the same off-current at the same
/// supply, then compared on on-current per unit width.  "The data are all
/// plotted at VDS = 0.5 V and scaled to an off-current of 100 nA/um."

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "device/ivmodel.h"
#include "phys/table.h"

namespace carbon::core {

/// A named technology: a factory producing a device model for a given gate
/// length plus benchmarking metadata.
struct Technology {
  std::string name;
  /// Build the device at gate length @p lg_m.
  std::function<device::DeviceModelPtr(double lg_m)> make_device;
  /// Gate lengths this technology is benchmarked at [m].
  std::vector<double> gate_lengths;
  /// Off-current spec multiplier (the paper's 9 nm CNT point is plotted at
  /// 10x the 100 nA/um spec).
  double ioff_spec_scale = 1.0;
};

/// Result of one Ion@fixed-Ioff benchmark point.
struct BenchmarkPoint {
  std::string technology;
  double gate_length_m = 0.0;
  double vdd_v = 0.0;
  double ioff_spec_a_per_um = 0.0;  ///< spec actually applied (incl. scale)
  double gate_shift_v = 0.0;        ///< threshold retarget that met the spec
  double ion_a_per_um = 0.0;        ///< |Id| at vgs = vdd, per um width
  double ion_a = 0.0;               ///< absolute on-current of the device
  double ss_mv_dec = 0.0;           ///< subthreshold swing after retarget
};

/// Re-target @p model's threshold so |Id(0, vdd)| / width equals
/// @p ioff_a_per_um, then measure Ion = |Id(vdd, vdd)|.
/// The model must expose a positive width_normalization().
BenchmarkPoint benchmark_at_fixed_ioff(const device::DeviceModelPtr& model,
                                       double vdd_v, double ioff_a_per_um);

/// Run the full Fig. 5 style benchmark over a set of technologies.
/// Columns: lg_nm, then ion_ma_um per technology (NaN where not evaluated).
phys::DataTable benchmark_table(const std::vector<Technology>& techs,
                                double vdd_v, double ioff_a_per_um);

/// Per-point long format table. Columns: tech index, lg_nm, ion_ma_um,
/// shift_v, ss_mv_dec.
std::vector<BenchmarkPoint> benchmark_points(
    const std::vector<Technology>& techs, double vdd_v,
    double ioff_a_per_um);

// --- canned technologies (the four curves of Fig. 5) ---

/// Quasi-ballistic CNTFET (Franklin-class GAA device, 11 kOhm series R).
Technology make_cnt_technology();
/// Si trigate FinFET.
Technology make_si_technology();
/// InAs HEMT.
Technology make_inas_technology();
/// InGaAs HEMT.
Technology make_ingaas_technology();

/// All four, in the paper's plotting order.
std::vector<Technology> fig5_technologies();

}  // namespace carbon::core
