#include "core/report.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <ostream>

namespace carbon::core {

void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& description) {
  os << "\n================================================================\n"
     << experiment_id << " — " << description
     << "\n================================================================\n";
}

void emit_table(std::ostream& os, const phys::DataTable& table,
                const std::string& title, const std::string& csv_name,
                const std::string& out_dir) {
  table.print(os, title);
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (!ec) {
    table.write_csv(out_dir + "/" + csv_name);
    os << "[csv] " << out_dir << "/" << csv_name << "\n";
  }
}

int print_claims(std::ostream& os, const std::vector<Claim>& claims) {
  int misses = 0;
  os << "\npaper-vs-measured:\n";
  char buf[256];
  for (const auto& c : claims) {
    const double denom = std::max(std::abs(c.paper_value), 1e-30);
    const double rel = std::abs(c.measured_value - c.paper_value) / denom;
    bool ok = false;
    switch (c.kind) {
      case ClaimKind::kBand:
        ok = rel <= c.rel_tolerance;
        break;
      case ClaimKind::kAtLeast:
        ok = c.measured_value >= c.paper_value * (1.0 - c.rel_tolerance);
        break;
      case ClaimKind::kAtMost:
        ok = c.measured_value <= c.paper_value * (1.0 + c.rel_tolerance);
        break;
    }
    if (!ok) ++misses;
    std::snprintf(buf, sizeof buf,
                  "  [%s] %-14s %-38s paper=%-10.4g measured=%-10.4g %s "
                  "(dev %.0f%%)",
                  ok ? "ok" : "MISS", c.id.c_str(), c.description.c_str(),
                  c.paper_value, c.measured_value, c.unit.c_str(),
                  rel * 100.0);
    os << buf << "\n";
  }
  return misses;
}

}  // namespace carbon::core
