#include "core/report.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <ostream>
#include <stdexcept>

namespace carbon::core {

Json& Json::set(std::string key, Json value) {
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  items_.push_back(std::move(value));
  return *this;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) *
                                         (static_cast<std::size_t>(depth) + 1)
                                   : 0,
                        ' ');
  const std::string close_pad(
      indent > 0 ? static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(depth)
                 : 0,
      ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Kind::kDouble: {
      if (std::isfinite(double_)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
      } else {
        // JSON has no NaN/Inf literal; a failed-trial metric serializes as
        // null rather than producing an unparseable document.
        out += "null";
      }
      break;
    }
    case Kind::kString:
      out += escape(string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out.push_back(',');
        first = false;
        out += nl;
        out += pad;
        item.write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out.push_back(',');
        first = false;
        out += nl;
        out += pad;
        out += escape(key);
        out += colon;
        value.write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON reader over a string view of the document.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  Json run() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of document");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  Json value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json(string());
      case 't':
        if (!literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!literal("null")) fail("bad literal");
        return Json();
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json out = Json::object();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      expect(':');
      out.set(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json array() {
    expect('[');
    Json out = Json::array();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("truncated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, hex4()); break;
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  unsigned hex4() {
    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    // Surrogate pair: a high surrogate must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 2 > s_.size() || s_[pos_] != '\\' || s_[pos_ + 1] != 'u') {
        fail("lone high surrogate");
      }
      pos_ += 2;
      const unsigned lo = hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("lone low surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("expected a value");
    // JSON forbids leading zeros ("01") and a bare leading '.'.
    const std::size_t d = tok[0] == '-' ? 1 : 0;
    if (tok.size() > d + 1 && tok[d] == '0' && tok[d + 1] >= '0' &&
        tok[d + 1] <= '9') {
      fail("malformed number: " + tok);
    }
    if (d < tok.size() && tok[d] == '.') fail("malformed number: " + tok);
    const bool integral =
        tok.find('.') == std::string::npos &&
        tok.find('e') == std::string::npos &&
        tok.find('E') == std::string::npos;
    try {
      if (integral) {
        std::size_t used = 0;
        const long long v = std::stoll(tok, &used);
        if (used == tok.size()) return Json(v);
      }
      std::size_t used = 0;
      const double v = std::stod(tok, &used);
      if (used != tok.size()) fail("malformed number: " + tok);
      return Json(v);
    } catch (const std::exception&) {
      fail("malformed number: " + tok);
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

[[noreturn]] void type_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not ") + want);
}

}  // namespace

Json Json::parse(const std::string& text) { return JsonReader(text).run(); }

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) type_error("a bool");
  return bool_;
}

double Json::as_double() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  type_error("a number");
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble) return static_cast<std::int64_t>(double_);
  type_error("a number");
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) type_error("a string");
  return string_;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  if (kind_ != Kind::kArray) type_error("an array");
  if (i >= items_.size()) throw std::out_of_range("json: array index");
  return items_[i];
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::operator[](const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw std::out_of_range("json: missing key '" + key + "'");
  return *v;
}

void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& description) {
  os << "\n================================================================\n"
     << experiment_id << " — " << description
     << "\n================================================================\n";
}

void emit_table(std::ostream& os, const phys::DataTable& table,
                const std::string& title, const std::string& csv_name,
                const std::string& out_dir) {
  table.print(os, title);
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (!ec) {
    table.write_csv(out_dir + "/" + csv_name);
    os << "[csv] " << out_dir << "/" << csv_name << "\n";
  }
}

int print_claims(std::ostream& os, const std::vector<Claim>& claims) {
  int misses = 0;
  os << "\npaper-vs-measured:\n";
  char buf[256];
  for (const auto& c : claims) {
    const double denom = std::max(std::abs(c.paper_value), 1e-30);
    const double rel = std::abs(c.measured_value - c.paper_value) / denom;
    bool ok = false;
    switch (c.kind) {
      case ClaimKind::kBand:
        ok = rel <= c.rel_tolerance;
        break;
      case ClaimKind::kAtLeast:
        ok = c.measured_value >= c.paper_value * (1.0 - c.rel_tolerance);
        break;
      case ClaimKind::kAtMost:
        ok = c.measured_value <= c.paper_value * (1.0 + c.rel_tolerance);
        break;
    }
    if (!ok) ++misses;
    std::snprintf(buf, sizeof buf,
                  "  [%s] %-14s %-38s paper=%-10.4g measured=%-10.4g %s "
                  "(dev %.0f%%)",
                  ok ? "ok" : "MISS", c.id.c_str(), c.description.c_str(),
                  c.paper_value, c.measured_value, c.unit.c_str(),
                  rel * 100.0);
    os << buf << "\n";
  }
  return misses;
}

}  // namespace carbon::core
