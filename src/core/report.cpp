#include "core/report.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <ostream>

namespace carbon::core {

Json& Json::set(std::string key, Json value) {
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  items_.push_back(std::move(value));
  return *this;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad(indent > 0 ? static_cast<std::size_t>(indent) *
                                         (static_cast<std::size_t>(depth) + 1)
                                   : 0,
                        ' ');
  const std::string close_pad(
      indent > 0 ? static_cast<std::size_t>(indent) *
                       static_cast<std::size_t>(depth)
                 : 0,
      ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(int_));
      out += buf;
      break;
    }
    case Kind::kDouble: {
      if (std::isfinite(double_)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        out += buf;
      } else {
        // JSON has no NaN/Inf literal; a failed-trial metric serializes as
        // null rather than producing an unparseable document.
        out += "null";
      }
      break;
    }
    case Kind::kString:
      out += escape(string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out.push_back(',');
        first = false;
        out += nl;
        out += pad;
        item.write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : members_) {
        if (!first) out.push_back(',');
        first = false;
        out += nl;
        out += pad;
        out += escape(key);
        out += colon;
        value.write(out, indent, depth + 1);
      }
      out += nl;
      out += close_pad;
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& description) {
  os << "\n================================================================\n"
     << experiment_id << " — " << description
     << "\n================================================================\n";
}

void emit_table(std::ostream& os, const phys::DataTable& table,
                const std::string& title, const std::string& csv_name,
                const std::string& out_dir) {
  table.print(os, title);
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (!ec) {
    table.write_csv(out_dir + "/" + csv_name);
    os << "[csv] " << out_dir << "/" << csv_name << "\n";
  }
}

int print_claims(std::ostream& os, const std::vector<Claim>& claims) {
  int misses = 0;
  os << "\npaper-vs-measured:\n";
  char buf[256];
  for (const auto& c : claims) {
    const double denom = std::max(std::abs(c.paper_value), 1e-30);
    const double rel = std::abs(c.measured_value - c.paper_value) / denom;
    bool ok = false;
    switch (c.kind) {
      case ClaimKind::kBand:
        ok = rel <= c.rel_tolerance;
        break;
      case ClaimKind::kAtLeast:
        ok = c.measured_value >= c.paper_value * (1.0 - c.rel_tolerance);
        break;
      case ClaimKind::kAtMost:
        ok = c.measured_value <= c.paper_value * (1.0 + c.rel_tolerance);
        break;
    }
    if (!ok) ++misses;
    std::snprintf(buf, sizeof buf,
                  "  [%s] %-14s %-38s paper=%-10.4g measured=%-10.4g %s "
                  "(dev %.0f%%)",
                  ok ? "ok" : "MISS", c.id.c_str(), c.description.c_str(),
                  c.paper_value, c.measured_value, c.unit.c_str(),
                  rel * 100.0);
    os << buf << "\n";
  }
  return misses;
}

}  // namespace carbon::core
