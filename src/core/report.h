#pragma once

/// @file report.h
/// Output helpers shared by the bench binaries: consistent stdout banners,
/// table printing, CSV artifact writing and paper-vs-measured comparison
/// rows for EXPERIMENTS.md.

#include <iosfwd>
#include <string>
#include <vector>

#include "phys/table.h"

namespace carbon::core {

/// Print a top-level experiment banner to @p os.
void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& description);

/// Print a table and also write it as CSV under out_dir (created when
/// needed; default "bench_out" relative to the CWD).
void emit_table(std::ostream& os, const phys::DataTable& table,
                const std::string& title, const std::string& csv_name,
                const std::string& out_dir = "bench_out");

/// How a claim is scored against the paper value.
enum class ClaimKind {
  kBand,     ///< within +/- rel_tolerance of the paper value
  kAtLeast,  ///< measured >= paper * (1 - rel_tolerance)
  kAtMost,   ///< measured <= paper * (1 + rel_tolerance)
};

/// One paper-vs-measured comparison row.
struct Claim {
  std::string id;           ///< e.g. "fig2.nmh"
  std::string description;
  double paper_value;
  double measured_value;
  std::string unit;
  /// Acceptable relative deviation for the "shape holds" verdict (e.g. 0.5
  /// means within a factor ~2).
  double rel_tolerance = 0.5;
  ClaimKind kind = ClaimKind::kBand;
};

/// Print claims with pass/deviation verdicts; returns number of misses.
int print_claims(std::ostream& os, const std::vector<Claim>& claims);

}  // namespace carbon::core
