#pragma once

/// @file report.h
/// Output helpers shared by the bench binaries: consistent stdout banners,
/// table printing, CSV artifact writing, paper-vs-measured comparison rows
/// for EXPERIMENTS.md — and a minimal JSON value builder for the
/// machine-readable reports (solver failure records, ensemble yield runs).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "phys/table.h"

namespace carbon::core {

/// A minimal JSON value: null, bool, number (integers kept exact, doubles
/// emitted with %.17g so they round-trip bit-identically), string, array,
/// object.  Objects preserve insertion order, so reports diff cleanly.
/// Build with the fluent set()/push() and serialize with dump():
///
///   auto j = Json::object();
///   j.set("yield", 0.97).set("failures", Json::array().push("timed-out"));
///   std::string text = j.dump(2);   // indent 2; dump() = compact
class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  Json() : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(long v) : kind_(Kind::kInt), int_(v) {}
  Json(long long v) : kind_(Kind::kInt), int_(v) {}
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}
  Json(const char* v) : kind_(Kind::kString), string_(v) {}

  /// Append @p key: @p value to an object (keys are not deduplicated; the
  /// caller owns uniqueness).  Returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Append @p value to an array.  Returns *this for chaining.
  Json& push(Json value);

  /// Serialize.  indent 0 = compact single line; > 0 = pretty-printed
  /// with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// JSON string escaping of @p s (quotes included).
  static std::string escape(const std::string& s);

  /// Parse a JSON document (the reader side of dump(); tests round-trip
  /// carbon_sim output through it instead of string-grepping).  Accepts
  /// exactly one top-level value with optional surrounding whitespace;
  /// numbers without '.', 'e' or '-0' fraction parse as kInt when they fit
  /// an int64, as kDouble otherwise; \uXXXX escapes decode to UTF-8.
  /// Throws std::runtime_error with a character offset on malformed input.
  static Json parse(const std::string& text);

  // --- read-side accessors -------------------------------------------------
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const;
  /// Numeric value (kInt or kDouble).
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array length / object member count (0 for scalars).
  std::size_t size() const;
  /// Array element (throws out_of_range past the end or on non-arrays).
  const Json& at(std::size_t i) const;
  /// Object member lookup; nullptr when absent (first match wins).
  const Json* find(const std::string& key) const;
  /// Object member access; throws out_of_range when absent.
  const Json& operator[](const std::string& key) const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  explicit Json(Kind kind) : kind_(kind) {}
  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                            // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

/// Print a top-level experiment banner to @p os.
void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& description);

/// Print a table and also write it as CSV under out_dir (created when
/// needed; default "bench_out" relative to the CWD).
void emit_table(std::ostream& os, const phys::DataTable& table,
                const std::string& title, const std::string& csv_name,
                const std::string& out_dir = "bench_out");

/// How a claim is scored against the paper value.
enum class ClaimKind {
  kBand,     ///< within +/- rel_tolerance of the paper value
  kAtLeast,  ///< measured >= paper * (1 - rel_tolerance)
  kAtMost,   ///< measured <= paper * (1 + rel_tolerance)
};

/// One paper-vs-measured comparison row.
struct Claim {
  std::string id;           ///< e.g. "fig2.nmh"
  std::string description;
  double paper_value;
  double measured_value;
  std::string unit;
  /// Acceptable relative deviation for the "shape holds" verdict (e.g. 0.5
  /// means within a factor ~2).
  double rel_tolerance = 0.5;
  ClaimKind kind = ClaimKind::kBand;
};

/// Print claims with pass/deviation verdicts; returns number of misses.
int print_claims(std::ostream& os, const std::vector<Claim>& claims);

}  // namespace carbon::core
