#pragma once

/// @file sram.h
/// 6T SRAM cell static noise margin (SNM) analysis — the canonical
/// circuit-level consequence of the paper's Fig. 2 argument: a cross-
/// coupled inverter pair only holds state if each inverter is
/// regenerative, so devices without current saturation cannot store a bit.
///
/// The hold-state SNM is computed the standard way (Seevinck): overlay the
/// VTC of one inverter with the mirrored VTC of the other and find the
/// side of the largest square that fits inside the two lobes of the
/// butterfly curve.

#include "circuit/cells.h"
#include "phys/table.h"

namespace carbon::circuit {

/// Butterfly-curve analysis result.
struct SnmResult {
  double snm_v = 0.0;        ///< hold static noise margin [V]
  double snm_low_v = 0.0;    ///< square in the lower lobe
  double snm_high_v = 0.0;   ///< square in the upper lobe
  bool bistable = false;     ///< the butterfly has two stable lobes
};

/// Compute the hold SNM of a 6T cell made of two identical inverters built
/// from @p n_model (pass devices ignored in hold state, as usual).
/// @param points VTC resolution
SnmResult hold_snm(device::DeviceModelPtr n_model, const CellOptions& opt = {},
                   int points = 161);

/// The butterfly curve itself (for plotting / benches).
/// Columns: v1, vtc(v1), mirrored_vtc(v1).
phys::DataTable butterfly_curve(device::DeviceModelPtr n_model,
                                const CellOptions& opt = {},
                                int points = 161);

/// A 6T-cell write test bench: cross-coupled inverter pair (nodes "q",
/// "qb", storage capacitors on both), nFET access transistors to the
/// bitlines, and a wordline pulse.  A small skew current source makes the
/// t = 0 operating point settle deterministically into the q = 1 hold
/// state; the bitlines are driven to write a 0 onto q, so a successful
/// write flips the cell — the dynamic counterpart of hold_snm, and the
/// paper's SRAM argument under write conditions.
struct SramWriteBench {
  std::unique_ptr<spice::Circuit> ckt;
  spice::VSource* vdd = nullptr;
  spice::VSource* vwl = nullptr;  ///< wordline pulse
  spice::VSource* vbl = nullptr;  ///< bitline (driven low: writes 0 on q)
  spice::VSource* vblb = nullptr; ///< complement bitline (driven high)
  double v_dd = 1.0;
  double t_wl_on_s = 0.0;   ///< wordline rise start
  double t_wl_off_s = 0.0;  ///< wordline fall end
};

/// Options for the write bench beyond CellOptions.
struct SramWriteOptions {
  double c_node = 2e-15;       ///< storage-node capacitance [F]
  double t_wl_on_s = 1e-9;     ///< wordline turn-on time
  double t_wl_edge_s = 50e-12; ///< wordline rise/fall time
  double t_wl_width_s = 1.5e-9;///< wordline high time
  double i_skew_a = 1e-7;      ///< OP-steering skew current into q
};

SramWriteBench make_sram_write_bench(device::DeviceModelPtr n_model,
                                     const CellOptions& opt = {},
                                     const SramWriteOptions& wopt = {});

/// A column of 6T cells sharing one bitline pair — the kilodevice-array
/// scaling workload.  Row 0 is written exactly like make_sram_write_bench
/// (wordline pulse, BL low / BLB high); every other row holds its state
/// with a grounded wordline, its access devices loading the bitlines.
/// Storage nodes are "q<i>" / "qb<i>".
struct SramColumnBench {
  std::unique_ptr<spice::Circuit> ckt;
  spice::VSource* vdd = nullptr;
  spice::VSource* vwl = nullptr;   ///< row-0 wordline pulse
  spice::VSource* vbl = nullptr;
  spice::VSource* vblb = nullptr;
  int cells = 0;
  double v_dd = 1.0;
};

SramColumnBench make_sram_column_bench(device::DeviceModelPtr n_model,
                                       int cells, const CellOptions& opt = {},
                                       const SramWriteOptions& wopt = {});

}  // namespace carbon::circuit
