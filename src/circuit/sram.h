#pragma once

/// @file sram.h
/// 6T SRAM cell static noise margin (SNM) analysis — the canonical
/// circuit-level consequence of the paper's Fig. 2 argument: a cross-
/// coupled inverter pair only holds state if each inverter is
/// regenerative, so devices without current saturation cannot store a bit.
///
/// The hold-state SNM is computed the standard way (Seevinck): overlay the
/// VTC of one inverter with the mirrored VTC of the other and find the
/// side of the largest square that fits inside the two lobes of the
/// butterfly curve.

#include "circuit/cells.h"
#include "phys/table.h"

namespace carbon::circuit {

/// Butterfly-curve analysis result.
struct SnmResult {
  double snm_v = 0.0;        ///< hold static noise margin [V]
  double snm_low_v = 0.0;    ///< square in the lower lobe
  double snm_high_v = 0.0;   ///< square in the upper lobe
  bool bistable = false;     ///< the butterfly has two stable lobes
};

/// Compute the hold SNM of a 6T cell made of two identical inverters built
/// from @p n_model (pass devices ignored in hold state, as usual).
/// @param points VTC resolution
SnmResult hold_snm(device::DeviceModelPtr n_model, const CellOptions& opt = {},
                   int points = 161);

/// The butterfly curve itself (for plotting / benches).
/// Columns: v1, vtc(v1), mirrored_vtc(v1).
phys::DataTable butterfly_curve(device::DeviceModelPtr n_model,
                                const CellOptions& opt = {},
                                int points = 161);

}  // namespace carbon::circuit
