#include "circuit/vtc.h"

#include "phys/require.h"

namespace carbon::circuit {

phys::DataTable run_vtc(InverterBench& bench, int points) {
  CARBON_REQUIRE(bench.ckt != nullptr && bench.vin != nullptr,
                 "bench has no input source");
  std::vector<double> values;
  values.reserve(points);
  for (int i = 0; i < points; ++i) {
    values.push_back(bench.v_dd * i / (points - 1));
  }
  return spice::dc_sweep(*bench.ckt, *bench.vin, values,
                         {bench.out_node});
}

spice::VtcMetrics measure_vtc(InverterBench& bench, int points) {
  const phys::DataTable vtc = run_vtc(bench, points);
  return spice::analyze_vtc(vtc, "sweep_v", "v(" + bench.out_node + ")",
                            bench.v_dd);
}

namespace {

/// Shared transient configuration of the characterization paths: adaptive
/// LTE stepping at timing-grade tolerance, rows recorded on the caller's
/// dt grid so downstream crossing/energy extraction sees the resolution it
/// asked for, OP-consistent capacitor initialization (no t = 0 reload
/// glitch in the energy integral), and quiescent-FET bypass scaled to the
/// supply.
spice::TransientOptions characterization_transient(double t_stop, double dt,
                                                   double v_dd) {
  spice::TransientOptions opts;
  opts.t_stop = t_stop;
  opts.dt = dt;
  opts.adaptive = true;
  opts.lte_reltol = 1e-4;
  opts.dt_print = dt;
  opts.bypass_vtol = 1e-4 * v_dd;
  opts.ic = spice::TransientIc::kFromOperatingPoint;
  return opts;
}

}  // namespace

phys::DataTable run_step_response(InverterBench& bench, double t_ramp,
                                  double t_stop, double dt, bool rising) {
  CARBON_REQUIRE(bench.vin != nullptr, "bench has no input source");
  const double v0 = rising ? 0.0 : bench.v_dd;
  const double v1 = rising ? bench.v_dd : 0.0;
  bench.vin->set_wave(spice::pwl({{0.0, v0},
                                  {0.1 * t_stop, v0},
                                  {0.1 * t_stop + t_ramp, v1},
                                  {t_stop, v1}}));
  const spice::TransientOptions opts =
      characterization_transient(t_stop, dt, bench.v_dd);
  return spice::transient(*bench.ckt, opts, {bench.in_node, bench.out_node},
                          {bench.vdd});
}

SwitchingEnergy measure_switching(InverterBench& bench, double t_period,
                                  double dt) {
  CARBON_REQUIRE(bench.vin != nullptr, "bench has no input source");
  const double edge = t_period / 50.0;
  bench.vin->set_wave(spice::pulse(0.0, bench.v_dd, 0.1 * t_period, edge,
                                   edge, 0.4 * t_period, t_period));
  const spice::TransientOptions opts =
      characterization_transient(t_period, dt, bench.v_dd);
  const phys::DataTable tr = spice::transient(
      *bench.ckt, opts, {bench.in_node, bench.out_node}, {bench.vdd});

  SwitchingEnergy se;
  const std::string vin_col = "v(" + bench.in_node + ")";
  const std::string vout_col = "v(" + bench.out_node + ")";
  se.t_phl_s =
      spice::propagation_delay(tr, vin_col, vout_col, bench.v_dd, true);
  se.t_plh_s =
      spice::propagation_delay(tr, vin_col, vout_col, bench.v_dd, false);
  se.energy_j = spice::supply_energy(tr, "i(vdd)", bench.v_dd);
  return se;
}

}  // namespace carbon::circuit
