#include "circuit/sram.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "circuit/vtc.h"
#include "phys/interp.h"
#include "phys/require.h"

namespace carbon::circuit {

namespace {

/// Sampled inverter VTC as x -> f(x).
std::vector<double> sample_vtc(device::DeviceModelPtr n_model,
                               const CellOptions& opt, int points) {
  InverterBench bench = make_inverter(std::move(n_model), opt);
  const phys::DataTable t = run_vtc(bench, points);
  std::vector<double> out(points);
  for (int i = 0; i < points; ++i) out[i] = t.at(i, 1);
  return out;
}

}  // namespace

phys::DataTable butterfly_curve(device::DeviceModelPtr n_model,
                                const CellOptions& opt, int points) {
  const std::vector<double> f = sample_vtc(std::move(n_model), opt, points);
  phys::DataTable t({"v1", "v2_fwd", "v2_mirror"});
  // Forward: V2 = f(V1).  Mirror: V1 = f(V2) drawn as V2_mirror(V1) by
  // numerically inverting the monotone-decreasing f.
  const double vdd = opt.v_dd;
  for (int i = 0; i < points; ++i) {
    const double v1 = vdd * i / (points - 1);
    // invert: find y with f(y) = v1 (f decreasing).
    int lo = 0, hi = points - 1;
    while (hi - lo > 1) {
      const int mid = (lo + hi) / 2;
      if (f[mid] >= v1) lo = mid; else hi = mid;
    }
    const double x0 = vdd * lo / (points - 1);
    const double x1 = vdd * hi / (points - 1);
    const double f0 = f[lo], f1 = f[hi];
    const double y = (f1 == f0) ? x0 : x0 + (v1 - f0) / (f1 - f0) * (x1 - x0);
    t.add_row({v1, f[i], std::clamp(y, 0.0, vdd)});
  }
  return t;
}

SnmResult hold_snm(device::DeviceModelPtr n_model, const CellOptions& opt,
                   int points) {
  CARBON_REQUIRE(points >= 21, "need a reasonable VTC resolution");
  const std::vector<double> f = sample_vtc(std::move(n_model), opt, points);
  const double vdd = opt.v_dd;

  // Bistability first: the cross-coupled pair holds state iff the composed
  // map f(f(x)) has three fixed points (two stable lobes around the
  // metastable midpoint).  A max-gain <= 1 inverter has a single fixed
  // point — the Fig. 2(d) situation — and stores nothing, however fat the
  // lens between the butterfly curves may look.
  const phys::LinearInterp vtc(
      [&] {
        std::vector<double> xs(points);
        for (int i = 0; i < points; ++i) xs[i] = vdd * i / (points - 1);
        return xs;
      }(),
      f);
  int sign_changes = 0;
  double prev_h = vtc(vtc(0.0)) - 0.0;
  for (int i = 1; i < 8 * points; ++i) {
    const double x = vdd * i / (8.0 * points - 1);
    const double h = vtc(vtc(x)) - x;
    if ((prev_h > 0.0 && h <= 0.0) || (prev_h < 0.0 && h >= 0.0)) {
      ++sign_changes;
    }
    if (h != 0.0) prev_h = h;
  }
  SnmResult r;
  r.bistable = sign_changes >= 3;
  if (!r.bistable) return r;  // SNM is zero: no state to disturb

  // Rotate both curves by 45 degrees: curve1 = (x, f(x)),
  // curve2 = (f(y), y).  In (u, v) = ((a-b), (a+b))/sqrt2 coordinates the
  // largest embedded square's side is |v1(u) - v2(u)|_max / sqrt2 per lobe
  // (Seevinck's construction).
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  std::vector<double> u1(points), v1(points), u2(points), v2(points);
  for (int i = 0; i < points; ++i) {
    const double x = vdd * i / (points - 1);
    u1[i] = (x - f[i]) * inv_sqrt2;
    v1[i] = (x + f[i]) * inv_sqrt2;
    // curve2 parameterized by y, ordered so u2 is increasing.
    const int j = points - 1 - i;
    const double y = vdd * j / (points - 1);
    u2[i] = (f[j] - y) * inv_sqrt2;
    v2[i] = (f[j] + y) * inv_sqrt2;
  }
  // Monotone parameterizations (f strictly decreasing makes u1/u2
  // increasing); guard against flat numerical segments.
  for (int i = 1; i < points; ++i) {
    if (u1[i] <= u1[i - 1]) u1[i] = u1[i - 1] + 1e-12;
    if (u2[i] <= u2[i - 1]) u2[i] = u2[i - 1] + 1e-12;
  }
  const phys::LinearInterp c1(u1, v1);
  const phys::LinearInterp c2(u2, v2);

  const double u_lo = std::max(u1.front(), u2.front());
  const double u_hi = std::min(u1.back(), u2.back());
  if (u_hi <= u_lo) return r;

  double max_pos = 0.0, max_neg = 0.0;
  const int n_scan = 4 * points;
  for (int i = 0; i <= n_scan; ++i) {
    const double u = u_lo + (u_hi - u_lo) * i / n_scan;
    const double gap = c1(u) - c2(u);
    max_pos = std::max(max_pos, gap);
    max_neg = std::max(max_neg, -gap);
  }
  r.snm_high_v = max_pos * inv_sqrt2;
  r.snm_low_v = max_neg * inv_sqrt2;
  r.snm_v = std::min(r.snm_low_v, r.snm_high_v);
  return r;
}

SramWriteBench make_sram_write_bench(device::DeviceModelPtr n_model,
                                     const CellOptions& opt,
                                     const SramWriteOptions& wopt) {
  CARBON_REQUIRE(n_model != nullptr, "null device model");
  CARBON_REQUIRE(wopt.t_wl_on_s > 0.0 && wopt.t_wl_edge_s > 0.0 &&
                     wopt.t_wl_width_s > 0.0,
                 "wordline pulse needs positive timing");
  auto p_model = std::make_shared<device::PTypeMirror>(n_model);

  SramWriteBench b;
  b.v_dd = opt.v_dd;
  b.t_wl_on_s = wopt.t_wl_on_s;
  b.t_wl_off_s = wopt.t_wl_on_s + 2.0 * wopt.t_wl_edge_s + wopt.t_wl_width_s;
  b.ckt = std::make_unique<spice::Circuit>();
  auto& c = *b.ckt;

  b.vdd = c.add_vsource("vdd", "vdd", "0", opt.v_dd);
  // Cross-coupled pair with storage capacitance on both internal nodes.
  c.add_fet("mn1", "q", "qb", "0", n_model, opt.fet_multiplier);
  c.add_fet("mp1", "q", "qb", "vdd", p_model, opt.fet_multiplier);
  c.add_fet("mn2", "qb", "q", "0", n_model, opt.fet_multiplier);
  c.add_fet("mp2", "qb", "q", "vdd", p_model, opt.fet_multiplier);
  c.add_capacitor("cq", "q", "0", wopt.c_node);
  c.add_capacitor("cqb", "qb", "0", wopt.c_node);
  // Deterministic hold state: the skew tips the bistable OP to q = 1.
  c.add_isource("iskew", "0", "q", spice::dc(wopt.i_skew_a));
  // Access transistors and write drive: BL low / BLB high write a 0.
  b.vwl = c.add_vsource(
      "vwl", "wl", "0",
      spice::pulse(0.0, opt.v_dd, wopt.t_wl_on_s, wopt.t_wl_edge_s,
                   wopt.t_wl_edge_s, wopt.t_wl_width_s,
                   100.0 * (b.t_wl_off_s + wopt.t_wl_on_s)));
  b.vbl = c.add_vsource("vbl", "bl", "0", 0.0);
  b.vblb = c.add_vsource("vblb", "blb", "0", opt.v_dd);
  c.add_fet("ma1", "bl", "wl", "q", n_model, opt.fet_multiplier);
  c.add_fet("ma2", "blb", "wl", "qb", n_model, opt.fet_multiplier);
  return b;
}

SramColumnBench make_sram_column_bench(device::DeviceModelPtr n_model,
                                       int cells, const CellOptions& opt,
                                       const SramWriteOptions& wopt) {
  CARBON_REQUIRE(n_model != nullptr, "null device model");
  CARBON_REQUIRE(cells >= 1, "need at least one cell");
  auto p_model = std::make_shared<device::PTypeMirror>(n_model);

  SramColumnBench b;
  b.cells = cells;
  b.v_dd = opt.v_dd;
  b.ckt = std::make_unique<spice::Circuit>();
  auto& c = *b.ckt;

  b.vdd = c.add_vsource("vdd", "vdd", "0", opt.v_dd);
  b.vwl = c.add_vsource(
      "vwl", "wl0", "0",
      spice::pulse(0.0, opt.v_dd, wopt.t_wl_on_s, wopt.t_wl_edge_s,
                   wopt.t_wl_edge_s, wopt.t_wl_width_s,
                   1000.0 * wopt.t_wl_width_s));
  b.vbl = c.add_vsource("vbl", "bl", "0", 0.0);
  b.vblb = c.add_vsource("vblb", "blb", "0", opt.v_dd);
  // Bitline wire capacitance grows with the column height.
  c.add_capacitor("cbl", "bl", "0", wopt.c_node * cells);
  c.add_capacitor("cblb", "blb", "0", wopt.c_node * cells);

  for (int i = 0; i < cells; ++i) {
    const std::string s = std::to_string(i);
    const std::string q = "q" + s, qb = "qb" + s;
    c.add_fet("mn1_" + s, q, qb, "0", n_model, opt.fet_multiplier);
    c.add_fet("mp1_" + s, q, qb, "vdd", p_model, opt.fet_multiplier);
    c.add_fet("mn2_" + s, qb, q, "0", n_model, opt.fet_multiplier);
    c.add_fet("mp2_" + s, qb, q, "vdd", p_model, opt.fet_multiplier);
    c.add_capacitor("cq" + s, q, "0", wopt.c_node);
    c.add_capacitor("cqb" + s, qb, "0", wopt.c_node);
    // Deterministic hold state: every cell's OP tips to q = 1.
    c.add_isource("iskew" + s, "0", q, spice::dc(wopt.i_skew_a));
    // Only row 0 sees the wordline pulse; held rows' gates are grounded.
    const std::string wl = i == 0 ? "wl0" : "0";
    c.add_fet("ma1_" + s, "bl", wl, q, n_model, opt.fet_multiplier);
    c.add_fet("ma2_" + s, "blb", wl, qb, n_model, opt.fet_multiplier);
  }
  return b;
}

}  // namespace carbon::circuit
