#include "circuit/cells.h"

#include "phys/require.h"

namespace carbon::circuit {

using device::DeviceModelPtr;
using device::PTypeMirror;

InverterBench make_inverter(DeviceModelPtr n_model, const CellOptions& opt) {
  CARBON_REQUIRE(n_model != nullptr, "null device model");
  InverterBench b;
  b.v_dd = opt.v_dd;
  b.ckt = std::make_unique<spice::Circuit>();
  auto p_model = std::make_shared<PTypeMirror>(n_model);

  b.vdd = b.ckt->add_vsource("vdd", "vdd", "0", opt.v_dd);
  b.vin = b.ckt->add_vsource("vin", "in", "0", 0.0);
  // Pull-down nFET: drain=out, gate=in, source=gnd.
  b.ckt->add_fet("mn", "out", "in", "0", n_model, opt.fet_multiplier);
  // Pull-up pFET: drain=out, gate=in, source=vdd.
  b.ckt->add_fet("mp", "out", "in", "vdd", p_model, opt.fet_multiplier);
  b.ckt->add_capacitor("cl", "out", "0", opt.c_load);
  return b;
}

namespace {

void add_inverter_stage(spice::Circuit& ckt, const std::string& in,
                        const std::string& out, DeviceModelPtr n_model,
                        DeviceModelPtr p_model, const CellOptions& opt,
                        const std::string& suffix) {
  ckt.add_fet("mn" + suffix, out, in, "0", std::move(n_model),
              opt.fet_multiplier);
  ckt.add_fet("mp" + suffix, out, in, "vdd", std::move(p_model),
              opt.fet_multiplier);
  ckt.add_capacitor("cl" + suffix, out, "0", opt.c_load);
}

}  // namespace

InverterBench make_inverter_chain(DeviceModelPtr n_model, int stages,
                                  const CellOptions& opt) {
  CARBON_REQUIRE(stages >= 1, "need at least one stage");
  InverterBench b;
  b.v_dd = opt.v_dd;
  b.ckt = std::make_unique<spice::Circuit>();
  auto p_model = std::make_shared<PTypeMirror>(n_model);

  b.vdd = b.ckt->add_vsource("vdd", "vdd", "0", opt.v_dd);
  b.vin = b.ckt->add_vsource("vin", "n0", "0", 0.0);
  for (int s = 0; s < stages; ++s) {
    add_inverter_stage(*b.ckt, "n" + std::to_string(s),
                       "n" + std::to_string(s + 1), n_model, p_model, opt,
                       std::to_string(s));
  }
  b.in_node = "n0";
  b.out_node = "n" + std::to_string(stages);
  return b;
}

InverterBench make_ring_oscillator(DeviceModelPtr n_model, int stages,
                                   const CellOptions& opt) {
  CARBON_REQUIRE(stages >= 3 && stages % 2 == 1,
                 "ring oscillator needs an odd stage count >= 3");
  InverterBench b;
  b.v_dd = opt.v_dd;
  b.ckt = std::make_unique<spice::Circuit>();
  auto p_model = std::make_shared<PTypeMirror>(n_model);

  b.vdd = b.ckt->add_vsource("vdd", "vdd", "0", opt.v_dd);
  for (int s = 0; s < stages; ++s) {
    const std::string in = "n" + std::to_string(s);
    const std::string out = "n" + std::to_string((s + 1) % stages);
    add_inverter_stage(*b.ckt, in, out, n_model, p_model, opt,
                       std::to_string(s));
  }
  // Kick: a brief current pulse into n0 knocks the ring off the
  // metastable all-at-VM operating point.
  b.ckt->add_isource("ikick", "0", "n0",
                     spice::pulse(0.0, opt.v_dd * opt.c_load * 2e11, 0.0,
                                  1e-12, 1e-12, 5e-12, 1.0));
  b.in_node = b.out_node = "n0";
  b.vin = nullptr;
  return b;
}

LadderBench make_rc_ladder(int sections, double r_ohm, double c_f,
                           double v_in) {
  CARBON_REQUIRE(sections >= 1, "need at least one ladder section");
  LadderBench b;
  b.ckt = std::make_unique<spice::Circuit>();
  b.vin = b.ckt->add_vsource("vin", "n0", "0", v_in);
  for (int s = 1; s <= sections; ++s) {
    const std::string prev = "n" + std::to_string(s - 1);
    const std::string node = "n" + std::to_string(s);
    b.ckt->add_resistor("r" + std::to_string(s), prev, node, r_ohm);
    b.ckt->add_capacitor("c" + std::to_string(s), node, "0", c_f);
  }
  b.out_node = "n" + std::to_string(sections);
  return b;
}

LadderBench make_diode_ladder(int sections, double r_ohm, double i_sat_a,
                              double v_in) {
  CARBON_REQUIRE(sections >= 1, "need at least one ladder section");
  LadderBench b;
  b.ckt = std::make_unique<spice::Circuit>();
  b.vin = b.ckt->add_vsource("vin", "n0", "0", v_in);
  for (int s = 1; s <= sections; ++s) {
    const std::string prev = "n" + std::to_string(s - 1);
    const std::string node = "n" + std::to_string(s);
    b.ckt->add_resistor("r" + std::to_string(s), prev, node, r_ohm);
    b.ckt->add_diode("d" + std::to_string(s), node, "0", i_sat_a);
  }
  b.out_node = "n" + std::to_string(sections);
  return b;
}

Nand2Bench make_nand2(DeviceModelPtr n_model, const CellOptions& opt) {
  CARBON_REQUIRE(n_model != nullptr, "null device model");
  Nand2Bench b;
  b.v_dd = opt.v_dd;
  b.ckt = std::make_unique<spice::Circuit>();
  auto p_model = std::make_shared<PTypeMirror>(n_model);

  b.vdd = b.ckt->add_vsource("vdd", "vdd", "0", opt.v_dd);
  b.va = b.ckt->add_vsource("va", "a", "0", 0.0);
  b.vb = b.ckt->add_vsource("vb", "b", "0", 0.0);
  // Series nFET stack.
  b.ckt->add_fet("mna", "out", "a", "mid", n_model, opt.fet_multiplier);
  b.ckt->add_fet("mnb", "mid", "b", "0", n_model, opt.fet_multiplier);
  // Parallel pFET pull-ups.
  b.ckt->add_fet("mpa", "out", "a", "vdd", p_model, opt.fet_multiplier);
  b.ckt->add_fet("mpb", "out", "b", "vdd", p_model, opt.fet_multiplier);
  b.ckt->add_capacitor("cl", "out", "0", opt.c_load);
  return b;
}

}  // namespace carbon::circuit
