#pragma once

/// @file vtc.h
/// Voltage-transfer-curve experiments: run the Fig. 2 inverter DC sweep,
/// extract gain and noise margins, and characterize transient switching
/// (propagation delay, short-circuit energy).

#include "circuit/cells.h"
#include "phys/table.h"
#include "spice/measure.h"

namespace carbon::circuit {

/// Sweep the inverter input 0..VDD and return the VTC.
/// Columns: "sweep_v" (input) and "v(out)".
phys::DataTable run_vtc(InverterBench& bench, int points = 121);

/// Run the VTC and analyze it (gain, VIL/VIH, noise margins).
spice::VtcMetrics measure_vtc(InverterBench& bench, int points = 121);

/// Transient step response of the inverter or chain.
/// @param t_ramp  input edge time
/// @param t_stop  total simulated time
phys::DataTable run_step_response(InverterBench& bench, double t_ramp,
                                  double t_stop, double dt, bool rising);

/// Switching energetics of one full low->high->low input cycle.
struct SwitchingEnergy {
  double t_phl_s = 0.0;     ///< propagation delay, output falling
  double t_plh_s = 0.0;     ///< propagation delay, output rising
  double energy_j = 0.0;    ///< total energy drawn from VDD over the cycle
};
SwitchingEnergy measure_switching(InverterBench& bench, double t_period,
                                  double dt);

}  // namespace carbon::circuit
