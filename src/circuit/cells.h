#pragma once

/// @file cells.h
/// Parameterized logic-cell builders on top of the SPICE engine: the
/// CMOS-style inverter of the paper's Fig. 2, NAND/NOR gates, inverter
/// chains and ring oscillators.  Every builder takes an n-type model and
/// mirrors it into the complementary pFET ("symmetrical pFET and nFET", as
/// the paper puts it).

#include <memory>
#include <string>
#include <vector>

#include "device/ivmodel.h"
#include "spice/analyses.h"
#include "spice/circuit.h"

namespace carbon::circuit {

/// A built test bench: the circuit plus handles to its sources and nodes.
struct InverterBench {
  std::unique_ptr<spice::Circuit> ckt;
  spice::VSource* vdd = nullptr;
  spice::VSource* vin = nullptr;
  std::string in_node = "in";
  std::string out_node = "out";
  double v_dd = 1.0;
};

/// Options shared by the cell builders.
struct CellOptions {
  double v_dd = 1.0;          ///< supply [V] (Fig. 2 uses 1 V)
  double c_load = 10e-15;     ///< output load [F] (Fig. 2 uses 10 fF)
  double fet_multiplier = 1;  ///< parallel devices per transistor
};

/// Build the Fig. 2 inverter: symmetric n/p pair from @p n_model, VDD
/// supply, input source and a c_load capacitor on the output.
InverterBench make_inverter(device::DeviceModelPtr n_model,
                            const CellOptions& opt = {});

/// A chain of @p stages identical inverters; nodes are "n0" (input) through
/// "n<stages>" (output), each with c_load to ground.
InverterBench make_inverter_chain(device::DeviceModelPtr n_model, int stages,
                                  const CellOptions& opt = {});

/// Ring oscillator of @p stages (odd) inverters with c_load per stage.
/// A small kick source is attached so the transient leaves the metastable
/// point.  Probe node: "n0".
InverterBench make_ring_oscillator(device::DeviceModelPtr n_model, int stages,
                                   const CellOptions& opt = {});

/// Two-input NAND bench with inputs "a", "b" and output "out".
struct Nand2Bench {
  std::unique_ptr<spice::Circuit> ckt;
  spice::VSource* vdd = nullptr;
  spice::VSource* va = nullptr;
  spice::VSource* vb = nullptr;
  double v_dd = 1.0;
};
Nand2Bench make_nand2(device::DeviceModelPtr n_model,
                      const CellOptions& opt = {});

/// A generated scaling bench: circuit plus its driving source and the node
/// at the far end.  Used by the Newton-scaling benchmarks and the
/// dense/sparse agreement tests, where the interesting parameter is the
/// number of MNA unknowns rather than the logic function.
struct LadderBench {
  std::unique_ptr<spice::Circuit> ckt;
  spice::VSource* vin = nullptr;
  std::string out_node;
};

/// RC ladder: vin -> R -> "n1" -> R -> ... -> "n<sections>", a capacitor
/// to ground at every interior node.  MNA unknowns: sections + 2 (input
/// node + ladder nodes + one source branch).  Linear; its sparse pattern
/// is tridiagonal, the classic interconnect / RC-delay model.
LadderBench make_rc_ladder(int sections, double r_ohm = 1e3,
                           double c_f = 1e-15, double v_in = 1.0);

/// Diode-loaded resistor ladder: like make_rc_ladder but with a junction
/// diode to ground at every node, making the system nonlinear so a Newton
/// solve takes several iterations — the scaling workload of
/// BM_NewtonSolve.  MNA unknowns: sections + 2.
LadderBench make_diode_ladder(int sections, double r_ohm = 1e3,
                              double i_sat_a = 1e-14, double v_in = 1.0);

}  // namespace carbon::circuit
