#pragma once

/// @file queue.h
/// The server's bounded MPMC work queue.  Admission control lives here:
/// try_push() is non-blocking and returns false when the queue is full (or
/// closed), so the accept loop can shed load with a structured overload
/// rejection instead of buffering connections without bound.  Workers
/// block in pop(); close() starts the drain — already-admitted items keep
/// draining (every admitted connection gets a response), new pushes are
/// refused, and pop() returns nullopt once the queue runs dry.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace carbon::serve {

/// An admitted connection: the fd plus the instant admission control let
/// it through, so the worker that eventually pops it can report the time
/// the connection sat in the queue separately from its service time
/// (the carbon_queue_wait_seconds histogram).
struct Admitted {
  int fd = -1;
  std::chrono::steady_clock::time_point admitted_at{};
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admit @p value unless the queue is at capacity or closed.  Never
  /// blocks — a full queue is the caller's signal to shed load.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed *and* empty
  /// (nullopt — the worker's signal to exit).  Items admitted before
  /// close() still drain.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Refuse new pushes and wake every blocked pop().  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace carbon::serve
