#pragma once

/// @file framing.h
/// Newline-delimited JSON framing over POSIX stream sockets.
///
/// The wire protocol of carbon_simd is deliberately primitive: one JSON
/// document per line in each direction.  What this layer adds is the
/// robustness the server needs at the socket boundary:
///
///  * FrameReader enforces a hard per-frame byte ceiling while the frame
///    is still arriving — an oversized request is detected (and reported
///    as kTooLarge) after at most max_frame_bytes of buffering, never
///    after the client finished streaming an arbitrarily large line.
///  * read_frame() can be woken by a second fd (the server's drain pipe),
///    so a worker blocked on an idle keep-alive connection notices a
///    SIGTERM drain immediately instead of at the next client byte.
///  * write_frame() is a poll()-driven bounded write: a client that stops
///    reading (slow consumer, dead peer behind a full TCP window) costs at
///    most the write timeout, after which the connection is abandoned.

#include <cstddef>
#include <string>

namespace carbon::serve {

/// Outcome of one read_frame() call.
enum class ReadStatus {
  kFrame,        ///< a complete line was extracted into *out
  kEof,          ///< orderly end of stream (any unterminated tail dropped)
  kTooLarge,     ///< frame exceeded max_frame_bytes before its newline
  kInterrupted,  ///< the wake fd fired (server drain) with no frame ready
  kError,        ///< socket error
};

/// Buffered line reader over a blocking socket fd (not owned).
class FrameReader {
 public:
  FrameReader(int fd, std::size_t max_frame_bytes)
      : fd_(fd), max_bytes_(max_frame_bytes) {}

  /// Block until a full newline-terminated frame is available (stored in
  /// *out without the newline) or one of the other ReadStatus conditions
  /// hits.  @p wake_fd (-1 = none) interrupts the wait when it becomes
  /// readable or hangs up; buffered complete frames are served before an
  /// interrupt is reported, so pipelined requests already received are
  /// not lost to a drain.
  ReadStatus read_frame(std::string* out, int wake_fd = -1);

 private:
  int fd_;
  std::size_t max_bytes_;
  std::string buf_;
};

/// Write all of @p line plus a terminating newline, bounded by
/// @p timeout_s of cumulative poll()+write() time.  Returns false on
/// timeout, EPIPE/reset or any other socket error.  The caller must have
/// SIGPIPE ignored (carbon_simd and the tests do).
bool write_frame(int fd, const std::string& line, double timeout_s);

}  // namespace carbon::serve
