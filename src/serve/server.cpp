#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/framing.h"

#ifndef POLLRDHUP
#define POLLRDHUP 0  // non-Linux fallback: rely on POLLERR/POLLHUP only
#endif

namespace carbon::serve {

using core::Json;

namespace {

Json error_doc(const std::string& type, const std::string& what) {
  auto err = Json::object();
  err.set("type", type);
  err.set("what", what);
  auto doc = Json::object();
  doc.set("ok", false);
  doc.set("error", std::move(err));
  return doc;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

struct Server::WorkerState {
  // Session-cache counters exported after every request so the health
  // handler (running on a different worker) can aggregate them without
  // touching another thread's SimSession.
  std::atomic<long> cache_hits{0};
  std::atomic<long> cache_misses{0};
  std::atomic<long> cache_evictions{0};
  std::atomic<long> cache_entries{0};
};

/// One in-flight request as the disconnect monitor sees it.
struct Server::Watch {
  int fd = -1;
  phys::CancelToken* token = nullptr;
  std::atomic<bool> gone{false};
};

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(static_cast<std::size_t>(std::max(1, cfg_.queue_capacity))) {
  cfg_.workers = std::max(1, cfg_.workers);
}

Server::~Server() {
  if (started_.load() && !stopped_.load()) {
    request_drain();
    wait();
  }
  close_fd(signal_pipe_[0]);
  close_fd(signal_pipe_[1]);
  close_fd(drain_pipe_[0]);
  close_fd(drain_pipe_[1]);
  close_fd(listen_fd_);
}

void Server::start() {
  if (started_.exchange(true)) {
    throw std::runtime_error("serve: start() called twice");
  }
  if (::pipe(signal_pipe_) != 0 || ::pipe(drain_pipe_) != 0) {
    throw std::runtime_error("serve: pipe() failed");
  }

  if (!cfg_.unix_path.empty()) {
    struct sockaddr_un addr;
    if (cfg_.unix_path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("serve: unix socket path too long: " +
                               cfg_.unix_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a previous run
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw std::runtime_error("serve: cannot bind " + cfg_.unix_path + ": " +
                               std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
    if (::inet_pton(AF_INET, cfg_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("serve: bad listen address " + cfg_.tcp_host);
    }
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw std::runtime_error("serve: cannot bind " + cfg_.tcp_host + ":" +
                               std::to_string(cfg_.tcp_port) + ": " +
                               std::strerror(errno));
    }
    struct sockaddr_in bound;
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    throw std::runtime_error("serve: listen() failed");
  }

  monitor_thread_ = std::thread([this] { monitor_main(); });
  worker_states_.clear();
  for (int i = 0; i < cfg_.workers; ++i) {
    worker_states_.push_back(std::make_unique<WorkerState>());
  }
  for (int i = 0; i < cfg_.workers; ++i) {
    WorkerState* w = worker_states_[static_cast<std::size_t>(i)].get();
    worker_threads_.emplace_back([this, w] { worker_main(*w); });
  }
  accept_thread_ = std::thread([this] { accept_main(); });
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    monitor_stop_ = true;
  }
  watch_cv_.notify_all();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
  stopped_.store(true);
}

int Server::run() {
  start();
  wait();
  return 0;
}

void Server::request_drain() {
  if (!started_.load() || signal_pipe_[1] < 0) return;
  const char byte = 'q';
  // A full pipe means a drain byte is already pending: same effect.
  [[maybe_unused]] const ssize_t n = ::write(signal_pipe_[1], &byte, 1);
}

std::string Server::endpoint() const {
  if (!cfg_.unix_path.empty()) return "unix:" + cfg_.unix_path;
  return cfg_.tcp_host + ":" + std::to_string(port_);
}

// --------------------------------------------------------------- accept loop

void Server::accept_main() {
  for (;;) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = signal_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & (POLLIN | POLLHUP | POLLERR)) break;  // drain
    if (!(fds[0].revents & POLLIN)) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    if (!queue_.try_push(conn)) {
      // Admission control: shed the connection with a structured overload
      // document inside a small write budget, never buffer it.
      stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
      const Json doc =
          error_doc("overload", "request queue full; retry later");
      write_frame(conn, doc.dump(),
                  std::min(1.0, std::max(0.05, cfg_.write_timeout_s)));
      ::close(conn);
    }
  }

  // --- graceful drain -------------------------------------------------------
  draining_.store(true, std::memory_order_release);
  close_fd(listen_fd_);  // stop accepting
  queue_.close();        // admitted connections still drain
  if (cfg_.drain_budget_s > 0.0) {
    // In-flight (and still-queued) work gets this much wall clock; a hung
    // solve is cancelled at the budget and renders as a timeout document.
    drain_token_.set_deadline_after(cfg_.drain_budget_s);
  } else {
    drain_token_.cancel();
  }
  close_fd(drain_pipe_[1]);  // POLLHUP wakes workers idling in read_frame
}

// -------------------------------------------------------------- worker pool

void Server::worker_main(WorkerState& w) {
  // One long-lived session per worker; all workers share the immutable
  // model registry by value (DeviceModelPtr copies of const models).
  spice::SimSession session(cfg_.registry, cfg_.session);
  while (std::optional<int> fd = queue_.pop()) {
    serve_connection(*fd, session, w);
  }
}

void Server::serve_connection(int fd, spice::SimSession& session,
                              WorkerState& w) {
  FrameReader reader(fd, cfg_.max_request_bytes);
  std::string line;
  for (;;) {
    const ReadStatus st = reader.read_frame(&line, drain_pipe_[0]);
    if (st == ReadStatus::kFrame) {
      if (!handle_request(fd, line, session, w)) break;
      // Drain: the response of the request that was already in flight is
      // flushed above; close the keep-alive connection instead of waiting
      // for more frames.
      if (draining()) break;
      continue;
    }
    if (st == ReadStatus::kTooLarge) {
      // The frame boundary is lost once a line is cut off mid-stream, so
      // reject-and-close is the only safe resynchronization.
      stats_.rejected_too_large.fetch_add(1, std::memory_order_relaxed);
      send_doc(fd,
               error_doc("too_large",
                         "request frame exceeds " +
                             std::to_string(cfg_.max_request_bytes) +
                             " bytes"),
               cfg_.write_timeout_s);
    }
    break;  // kEof / kError / kInterrupted (drain while idle) / kTooLarge
  }
  ::close(fd);
}

bool Server::handle_request(int fd, const std::string& line,
                            spice::SimSession& session, WorkerState& w) {
  Json req;
  try {
    req = Json::parse(line);
  } catch (const std::exception& e) {
    stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    return send_doc(fd,
                    error_doc("bad_request",
                              std::string("request is not valid JSON: ") +
                                  e.what()),
                    cfg_.write_timeout_s);
  }
  if (!req.is_object()) {
    stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    return send_doc(fd,
                    error_doc("bad_request", "request must be a JSON object"),
                    cfg_.write_timeout_s);
  }
  const Json* id = req.find("id");

  auto reply = [&](Json doc) {
    if (id) doc.set("id", *id);
    return send_doc(fd, doc, cfg_.write_timeout_s);
  };

  std::string type;
  if (const Json* t = req.find("type")) {
    if (!t->is_string()) {
      stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      return reply(error_doc("bad_request", "'type' must be a string"));
    }
    type = t->as_string();
  } else {
    type = req.find("deck") ? "run" : "";
  }

  if (type == "health" || type == "stats") {
    stats_.health_requests.fetch_add(1, std::memory_order_relaxed);
    return reply(health_doc());
  }
  if (type != "run") {
    stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    return reply(error_doc(
        "bad_request", "unknown request type '" + type +
                           "' (want run, health or stats)"));
  }

  const Json* deck = req.find("deck");
  if (!deck || !deck->is_string()) {
    stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
    return reply(error_doc("bad_request", "run request wants a 'deck' string"));
  }
  double deadline_s = cfg_.default_deadline_s;
  if (const Json* dl = req.find("deadline_ms")) {
    if (!dl->is_number()) {
      stats_.bad_requests.fetch_add(1, std::memory_order_relaxed);
      return reply(error_doc("bad_request", "'deadline_ms' must be a number"));
    }
    deadline_s = dl->as_double() * 1e-3;
  }
  deadline_s = std::min(std::max(deadline_s, 1e-3), cfg_.max_deadline_s);

  // Per-request deadline chained to the server-wide drain token: whichever
  // fires first cancels the solve at its next poll point.
  phys::CancelToken token(&drain_token_);
  token.set_deadline_after(deadline_s);
  Watch watch;
  watch.fd = fd;
  watch.token = &token;
  watch_add(&watch);
  stats_.requests_run.fetch_add(1, std::memory_order_relaxed);
  stats_.in_flight.fetch_add(1, std::memory_order_relaxed);

  Json doc;
  try {
    doc = session.run_deck_text(deck->as_string(), &token);
  } catch (const std::exception& e) {
    // run_deck_text is contractually no-throw; this is the last-ditch
    // request-isolation boundary all the same.
    doc = error_doc("internal", e.what());
  } catch (...) {
    doc = error_doc("internal", "unknown exception");
  }

  watch_remove(&watch);
  stats_.in_flight.fetch_sub(1, std::memory_order_relaxed);

  // Export this worker's session-cache counters for health aggregation.
  const spice::SessionCacheStats cs = session.cache_stats();
  w.cache_hits.store(cs.hits, std::memory_order_relaxed);
  w.cache_misses.store(cs.misses, std::memory_order_relaxed);
  w.cache_evictions.store(cs.evictions, std::memory_order_relaxed);
  w.cache_entries.store(cs.entries, std::memory_order_relaxed);

  // Outcome accounting.
  const Json* ok = doc.find("ok");
  if (ok && ok->is_bool() && ok->as_bool()) {
    stats_.requests_ok.fetch_add(1, std::memory_order_relaxed);
  } else {
    std::string etype = "internal";
    if (const Json* err = doc.find("error")) {
      if (const Json* t = err->find("type")) {
        if (t->is_string()) etype = t->as_string();
      }
    }
    if (etype == "parse") {
      stats_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    } else if (etype == "solve_failure") {
      stats_.solve_failures.fetch_add(1, std::memory_order_relaxed);
    } else if (etype == "timeout") {
      stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
    } else if (etype == "cancelled") {
      stats_.cancelled.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.internal_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (watch.gone.load(std::memory_order_acquire)) {
    // The client hung up mid-solve (the monitor cancelled it); there is
    // nobody left to write the document to.
    stats_.disconnects.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!reply(std::move(doc))) {
    stats_.disconnects.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

Json Server::health_doc() const {
  auto r = [](const std::atomic<long>& v) {
    return v.load(std::memory_order_relaxed);
  };
  auto server = Json::object();
  server.set("endpoint", endpoint());
  server.set("workers", cfg_.workers);
  server.set("draining", draining());
  server.set("queue_depth", static_cast<long>(queue_.depth()));
  server.set("queue_capacity", static_cast<long>(queue_.capacity()));
  server.set("in_flight", r(stats_.in_flight));
  server.set("accepted", r(stats_.accepted));
  server.set("rejected_overload", r(stats_.rejected_overload));
  server.set("rejected_too_large", r(stats_.rejected_too_large));
  server.set("bad_requests", r(stats_.bad_requests));
  server.set("disconnects", r(stats_.disconnects));

  auto outcomes = Json::object();
  outcomes.set("run", r(stats_.requests_run));
  outcomes.set("ok", r(stats_.requests_ok));
  outcomes.set("parse", r(stats_.parse_errors));
  outcomes.set("solve_failure", r(stats_.solve_failures));
  outcomes.set("timeout", r(stats_.timeouts));
  outcomes.set("cancelled", r(stats_.cancelled));
  outcomes.set("internal", r(stats_.internal_errors));
  outcomes.set("health", r(stats_.health_requests));
  server.set("requests", std::move(outcomes));

  long hits = 0, misses = 0, evictions = 0, entries = 0;
  for (const auto& w : worker_states_) {
    hits += w->cache_hits.load(std::memory_order_relaxed);
    misses += w->cache_misses.load(std::memory_order_relaxed);
    evictions += w->cache_evictions.load(std::memory_order_relaxed);
    entries += w->cache_entries.load(std::memory_order_relaxed);
  }
  auto cache = Json::object();
  cache.set("hits", hits);
  cache.set("misses", misses);
  cache.set("evictions", evictions);
  cache.set("entries", entries);
  server.set("session_cache", std::move(cache));

  auto doc = Json::object();
  doc.set("ok", true);
  doc.set("type", "health");
  doc.set("server", std::move(server));
  return doc;
}

bool Server::send_doc(int fd, const core::Json& doc, double timeout_s) {
  return write_frame(fd, doc.dump(), timeout_s);
}

// ------------------------------------------------------- disconnect monitor

void Server::watch_add(Watch* w) {
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watches_.push_back(w);
  }
  watch_cv_.notify_all();
}

void Server::watch_remove(Watch* w) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watches_.erase(std::remove(watches_.begin(), watches_.end(), w),
                 watches_.end());
}

void Server::monitor_main() {
  std::unique_lock<std::mutex> lock(watch_mu_);
  std::vector<struct pollfd> fds;
  while (!monitor_stop_) {
    if (watches_.empty()) {
      watch_cv_.wait(lock,
                     [&] { return monitor_stop_ || !watches_.empty(); });
      continue;
    }
    fds.clear();
    for (const Watch* w : watches_) {
      struct pollfd p;
      p.fd = w->fd;
      // POLLRDHUP catches an orderly close() by the peer; POLLERR/POLLHUP
      // (always reported) catch resets.  POLLIN is deliberately absent:
      // pipelined request bytes must not look like a disconnect.
      p.events = POLLRDHUP;
      p.revents = 0;
      fds.push_back(p);
    }
    if (::poll(fds.data(), fds.size(), 0) > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) {
          // Cancel the in-flight solve; the worker sees `gone` and skips
          // the (pointless) response write.
          watches_[i]->gone.store(true, std::memory_order_release);
          watches_[i]->token->cancel();
        }
      }
    }
    // ~25 ms disconnect-detection latency: far below any solve worth
    // cancelling, far above the poll syscall cost.
    watch_cv_.wait_for(lock, std::chrono::milliseconds(25));
  }
}

}  // namespace carbon::serve
