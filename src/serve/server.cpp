#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/framing.h"

#ifndef POLLRDHUP
#define POLLRDHUP 0  // non-Linux fallback: rely on POLLERR/POLLHUP only
#endif

namespace carbon::serve {

using core::Json;

namespace {

Json error_doc(const std::string& type, const std::string& what) {
  auto err = Json::object();
  err.set("type", type);
  err.set("what", what);
  auto doc = Json::object();
  doc.set("ok", false);
  doc.set("error", std::move(err));
  return doc;
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

long long since_ns(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ServerStats::ServerStats(obs::MetricsRegistry& m)
    : accepted(m.counter("carbon_accepted_total", "",
                         "Connections accepted by the listener")),
      rejected_overload(m.counter("carbon_rejected_total",
                                  "reason=\"overload\"",
                                  "Connections/frames shed by admission "
                                  "control")),
      rejected_too_large(
          m.counter("carbon_rejected_total", "reason=\"too_large\"")),
      bad_requests(m.counter("carbon_bad_requests_total", "",
                             "Frames that were not a valid request")),
      requests_run(m.counter("carbon_requests_started_total", "",
                             "Run requests admitted to a worker session")),
      requests_ok(m.counter("carbon_requests_total", "outcome=\"ok\"",
                            "Run requests by outcome class")),
      parse_errors(m.counter("carbon_requests_total", "outcome=\"parse\"")),
      solve_failures(
          m.counter("carbon_requests_total", "outcome=\"solve_failure\"")),
      timeouts(m.counter("carbon_requests_total", "outcome=\"timeout\"")),
      cancelled(m.counter("carbon_requests_total", "outcome=\"cancelled\"")),
      internal_errors(
          m.counter("carbon_requests_total", "outcome=\"internal\"")),
      health_requests(m.counter("carbon_health_requests_total", "",
                                "health/stats requests served")),
      metrics_requests(m.counter("carbon_metrics_requests_total", "",
                                 "metrics requests served")),
      disconnects(m.counter("carbon_disconnects_total", "",
                            "Clients gone before their response")),
      in_flight(m.gauge("carbon_in_flight", "",
                        "Run requests currently executing")) {}

ServerInstruments::ServerInstruments(obs::MetricsRegistry& m)
    : queue_depth(m.gauge("carbon_queue_depth", "",
                          "Admitted connections waiting for a worker")),
      queue_wait(m.histogram("carbon_queue_wait_seconds", "",
                             "Admission to worker pop, per connection")),
      lat_ok(m.histogram("carbon_request_seconds", "outcome=\"ok\"",
                         "Run request service latency by outcome class")),
      lat_parse(m.histogram("carbon_request_seconds", "outcome=\"parse\"")),
      lat_solve_failure(
          m.histogram("carbon_request_seconds", "outcome=\"solve_failure\"")),
      lat_timeout(m.histogram("carbon_request_seconds", "outcome=\"timeout\"")),
      lat_cancelled(
          m.histogram("carbon_request_seconds", "outcome=\"cancelled\"")),
      lat_internal(
          m.histogram("carbon_request_seconds", "outcome=\"internal\"")),
      cache_hits(m.counter("carbon_session_cache_total", "event=\"hit\"",
                           "Session topology-cache events, all workers")),
      cache_misses(m.counter("carbon_session_cache_total", "event=\"miss\"")),
      cache_evictions(
          m.counter("carbon_session_cache_total", "event=\"eviction\"")),
      phase_stamp_ns(m.counter("carbon_phase_ns_total", "phase=\"stamp\"",
                               "Solver phase time [ns], all workers")),
      phase_eval_ns(m.counter("carbon_phase_ns_total", "phase=\"eval\"")),
      phase_factor_ns(m.counter("carbon_phase_ns_total", "phase=\"factor\"")),
      phase_solve_ns(m.counter("carbon_phase_ns_total", "phase=\"solve\"")) {}

struct Server::WorkerState {
  WorkerState(obs::MetricsRegistry& m, int index)
      : entries(m.gauge("carbon_session_cache_entries",
                        "worker=\"" + std::to_string(index) + "\"",
                        "Live topology-cache entries per worker")) {}

  /// Live topology-cache size of this worker's session, for health
  /// aggregation (hit/miss/eviction counters flow through the shared
  /// registry instead — ServerInstruments is the single source of truth).
  obs::Gauge& entries;

  // What this worker already folded into the shared counters; worker-local
  // (single writer), so no atomics needed.
  spice::SessionCacheStats exported{};
  obs::PhaseTimes exported_phases{};
};

/// One in-flight request as the disconnect monitor sees it.
struct Server::Watch {
  int fd = -1;
  phys::CancelToken* token = nullptr;
  std::atomic<bool> gone{false};
};

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      stats_(metrics_),
      inst_(metrics_),
      queue_(static_cast<std::size_t>(std::max(1, cfg_.queue_capacity))) {
  cfg_.workers = std::max(1, cfg_.workers);
  // Worker states (and their labeled gauges) exist from construction so
  // metrics() exposes the complete schema before start().
  for (int i = 0; i < cfg_.workers; ++i) {
    worker_states_.push_back(std::make_unique<WorkerState>(metrics_, i));
  }
}

Server::~Server() {
  if (started_.load() && !stopped_.load()) {
    request_drain();
    wait();
  }
  close_fd(signal_pipe_[0]);
  close_fd(signal_pipe_[1]);
  close_fd(drain_pipe_[0]);
  close_fd(drain_pipe_[1]);
  close_fd(listen_fd_);
}

void Server::start() {
  if (started_.exchange(true)) {
    throw std::runtime_error("serve: start() called twice");
  }
  if (::pipe(signal_pipe_) != 0 || ::pipe(drain_pipe_) != 0) {
    throw std::runtime_error("serve: pipe() failed");
  }

  if (!cfg_.unix_path.empty()) {
    struct sockaddr_un addr;
    if (cfg_.unix_path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("serve: unix socket path too long: " +
                               cfg_.unix_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
    ::unlink(cfg_.unix_path.c_str());  // stale socket from a previous run
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw std::runtime_error("serve: cannot bind " + cfg_.unix_path + ": " +
                               std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
    if (::inet_pton(AF_INET, cfg_.tcp_host.c_str(), &addr.sin_addr) != 1) {
      throw std::runtime_error("serve: bad listen address " + cfg_.tcp_host);
    }
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof addr) != 0) {
      throw std::runtime_error("serve: cannot bind " + cfg_.tcp_host + ":" +
                               std::to_string(cfg_.tcp_port) + ": " +
                               std::strerror(errno));
    }
    struct sockaddr_in bound;
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    throw std::runtime_error("serve: listen() failed");
  }

  monitor_thread_ = std::thread([this] { monitor_main(); });
  for (int i = 0; i < cfg_.workers; ++i) {
    WorkerState* w = worker_states_[static_cast<std::size_t>(i)].get();
    worker_threads_.emplace_back([this, w] { worker_main(*w); });
  }
  if (cfg_.stats_interval_s > 0.0) {
    stats_thread_ = std::thread([this] { stats_main(); });
  }
  accept_thread_ = std::thread([this] { accept_main(); });
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    monitor_stop_ = true;
  }
  watch_cv_.notify_all();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_stop_ = true;
  }
  stats_cv_.notify_all();
  if (stats_thread_.joinable()) stats_thread_.join();
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
  stopped_.store(true);
}

int Server::run() {
  start();
  wait();
  return 0;
}

void Server::request_drain() {
  if (!started_.load() || signal_pipe_[1] < 0) return;
  const char byte = 'q';
  // A full pipe means a drain byte is already pending: same effect.
  [[maybe_unused]] const ssize_t n = ::write(signal_pipe_[1], &byte, 1);
}

std::string Server::endpoint() const {
  if (!cfg_.unix_path.empty()) return "unix:" + cfg_.unix_path;
  return cfg_.tcp_host + ":" + std::to_string(port_);
}

// --------------------------------------------------------------- accept loop

void Server::accept_main() {
  for (;;) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = signal_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & (POLLIN | POLLHUP | POLLERR)) break;  // drain
    if (!(fds[0].revents & POLLIN)) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    stats_.accepted.inc();
    if (!queue_.try_push({conn, std::chrono::steady_clock::now()})) {
      // Admission control: shed the connection with a structured overload
      // document inside a small write budget, never buffer it.
      stats_.rejected_overload.inc();
      const Json doc =
          error_doc("overload", "request queue full; retry later");
      write_frame(conn, doc.dump(),
                  std::min(1.0, std::max(0.05, cfg_.write_timeout_s)));
      ::close(conn);
    }
  }

  // --- graceful drain -------------------------------------------------------
  draining_.store(true, std::memory_order_release);
  close_fd(listen_fd_);  // stop accepting
  queue_.close();        // admitted connections still drain
  if (cfg_.drain_budget_s > 0.0) {
    // In-flight (and still-queued) work gets this much wall clock; a hung
    // solve is cancelled at the budget and renders as a timeout document.
    drain_token_.set_deadline_after(cfg_.drain_budget_s);
  } else {
    drain_token_.cancel();
  }
  close_fd(drain_pipe_[1]);  // POLLHUP wakes workers idling in read_frame
}

// -------------------------------------------------------------- worker pool

void Server::worker_main(WorkerState& w) {
  // One long-lived session per worker; all workers share the immutable
  // model registry by value (DeviceModelPtr copies of const models).
  // Phase collection is always on in the service: the per-iteration cost
  // is a few clock reads, and it feeds the carbon_phase_ns_total family.
  spice::SessionOptions sopts = cfg_.session;
  sopts.collect_phases = true;
  spice::SimSession session(cfg_.registry, sopts);
  while (std::optional<Admitted> adm = queue_.pop()) {
    // Queue wait (admission → pop) is recorded apart from service time:
    // a saturated worker pool shows up here, a slow deck shows up in
    // carbon_request_seconds.
    inst_.queue_wait.record_ns(since_ns(adm->admitted_at));
    serve_connection(adm->fd, session, w);
  }
}

void Server::serve_connection(int fd, spice::SimSession& session,
                              WorkerState& w) {
  FrameReader reader(fd, cfg_.max_request_bytes);
  std::string line;
  for (;;) {
    const ReadStatus st = reader.read_frame(&line, drain_pipe_[0]);
    if (st == ReadStatus::kFrame) {
      if (!handle_request(fd, line, session, w)) break;
      // Drain: the response of the request that was already in flight is
      // flushed above; close the keep-alive connection instead of waiting
      // for more frames.
      if (draining()) break;
      continue;
    }
    if (st == ReadStatus::kTooLarge) {
      // The frame boundary is lost once a line is cut off mid-stream, so
      // reject-and-close is the only safe resynchronization.
      stats_.rejected_too_large.inc();
      send_doc(fd,
               error_doc("too_large",
                         "request frame exceeds " +
                             std::to_string(cfg_.max_request_bytes) +
                             " bytes"),
               cfg_.write_timeout_s);
    }
    break;  // kEof / kError / kInterrupted (drain while idle) / kTooLarge
  }
  ::close(fd);
}

bool Server::handle_request(int fd, const std::string& line,
                            spice::SimSession& session, WorkerState& w) {
  const auto t_service0 = std::chrono::steady_clock::now();
  Json req;
  try {
    req = Json::parse(line);
  } catch (const std::exception& e) {
    stats_.bad_requests.inc();
    return send_doc(fd,
                    error_doc("bad_request",
                              std::string("request is not valid JSON: ") +
                                  e.what()),
                    cfg_.write_timeout_s);
  }
  if (!req.is_object()) {
    stats_.bad_requests.inc();
    return send_doc(fd,
                    error_doc("bad_request", "request must be a JSON object"),
                    cfg_.write_timeout_s);
  }
  const Json* id = req.find("id");

  auto reply = [&](Json doc) {
    if (id) doc.set("id", *id);
    return send_doc(fd, doc, cfg_.write_timeout_s);
  };

  std::string type;
  if (const Json* t = req.find("type")) {
    if (!t->is_string()) {
      stats_.bad_requests.inc();
      return reply(error_doc("bad_request", "'type' must be a string"));
    }
    type = t->as_string();
  } else {
    type = req.find("deck") ? "run" : "";
  }

  if (type == "health" || type == "stats") {
    stats_.health_requests.inc();
    return reply(health_doc());
  }
  if (type == "metrics") {
    stats_.metrics_requests.inc();
    return reply(metrics_doc());
  }
  if (type != "run") {
    stats_.bad_requests.inc();
    return reply(error_doc(
        "bad_request", "unknown request type '" + type +
                           "' (want run, health, stats or metrics)"));
  }

  const Json* deck = req.find("deck");
  if (!deck || !deck->is_string()) {
    stats_.bad_requests.inc();
    return reply(error_doc("bad_request", "run request wants a 'deck' string"));
  }
  double deadline_s = cfg_.default_deadline_s;
  if (const Json* dl = req.find("deadline_ms")) {
    if (!dl->is_number()) {
      stats_.bad_requests.inc();
      return reply(error_doc("bad_request", "'deadline_ms' must be a number"));
    }
    deadline_s = dl->as_double() * 1e-3;
  }
  deadline_s = std::min(std::max(deadline_s, 1e-3), cfg_.max_deadline_s);

  // Per-request deadline chained to the server-wide drain token: whichever
  // fires first cancels the solve at its next poll point.
  phys::CancelToken token(&drain_token_);
  token.set_deadline_after(deadline_s);
  Watch watch;
  watch.fd = fd;
  watch.token = &token;
  watch_add(&watch);
  stats_.requests_run.inc();
  stats_.in_flight.add(1);

  Json doc;
  try {
    doc = session.run_deck_text(deck->as_string(), &token);
  } catch (const std::exception& e) {
    // run_deck_text is contractually no-throw; this is the last-ditch
    // request-isolation boundary all the same.
    doc = error_doc("internal", e.what());
  } catch (...) {
    doc = error_doc("internal", "unknown exception");
  }

  watch_remove(&watch);
  stats_.in_flight.sub(1);

  // Fold this worker's session counters into the shared registry: the
  // delta against what was already exported goes to the monotonic cache
  // and phase counters (single source of truth — health and metrics both
  // read the registry), and the live entry count to the per-worker gauge.
  const spice::SessionCacheStats cs = session.cache_stats();
  inst_.cache_hits.inc(cs.hits - w.exported.hits);
  inst_.cache_misses.inc(cs.misses - w.exported.misses);
  inst_.cache_evictions.inc(cs.evictions - w.exported.evictions);
  w.entries.set(cs.entries);
  w.exported = cs;
  const obs::PhaseTimes& pt = session.phase_times();
  inst_.phase_stamp_ns.inc(pt.stamp_ns - w.exported_phases.stamp_ns);
  inst_.phase_eval_ns.inc(pt.eval_ns - w.exported_phases.eval_ns);
  inst_.phase_factor_ns.inc(pt.factor_ns - w.exported_phases.factor_ns);
  inst_.phase_solve_ns.inc(pt.solve_ns - w.exported_phases.solve_ns);
  w.exported_phases = pt;

  // Outcome accounting.  The latency record sits in the same branch as
  // the counter increment, before the response write, so every outcome's
  // histogram count equals its counter at any quiescent point.
  const long long service_ns = since_ns(t_service0);
  const Json* ok = doc.find("ok");
  if (ok && ok->is_bool() && ok->as_bool()) {
    stats_.requests_ok.inc();
    inst_.lat_ok.record_ns(service_ns);
  } else {
    std::string etype = "internal";
    if (const Json* err = doc.find("error")) {
      if (const Json* t = err->find("type")) {
        if (t->is_string()) etype = t->as_string();
      }
    }
    if (etype == "parse") {
      stats_.parse_errors.inc();
      inst_.lat_parse.record_ns(service_ns);
    } else if (etype == "solve_failure") {
      stats_.solve_failures.inc();
      inst_.lat_solve_failure.record_ns(service_ns);
    } else if (etype == "timeout") {
      stats_.timeouts.inc();
      inst_.lat_timeout.record_ns(service_ns);
    } else if (etype == "cancelled") {
      stats_.cancelled.inc();
      inst_.lat_cancelled.record_ns(service_ns);
    } else {
      stats_.internal_errors.inc();
      inst_.lat_internal.record_ns(service_ns);
    }
  }

  if (watch.gone.load(std::memory_order_acquire)) {
    // The client hung up mid-solve (the monitor cancelled it); there is
    // nobody left to write the document to.
    stats_.disconnects.inc();
    return false;
  }
  if (!reply(std::move(doc))) {
    stats_.disconnects.inc();
    return false;
  }
  return true;
}

Json Server::health_doc() const {
  auto server = Json::object();
  server.set("endpoint", endpoint());
  server.set("workers", cfg_.workers);
  server.set("draining", draining());
  server.set("queue_depth", static_cast<long>(queue_.depth()));
  server.set("queue_capacity", static_cast<long>(queue_.capacity()));
  server.set("in_flight", stats_.in_flight.load());
  server.set("accepted", stats_.accepted.load());
  server.set("rejected_overload", stats_.rejected_overload.load());
  server.set("rejected_too_large", stats_.rejected_too_large.load());
  server.set("bad_requests", stats_.bad_requests.load());
  server.set("disconnects", stats_.disconnects.load());

  auto outcomes = Json::object();
  outcomes.set("run", stats_.requests_run.load());
  outcomes.set("ok", stats_.requests_ok.load());
  outcomes.set("parse", stats_.parse_errors.load());
  outcomes.set("solve_failure", stats_.solve_failures.load());
  outcomes.set("timeout", stats_.timeouts.load());
  outcomes.set("cancelled", stats_.cancelled.load());
  outcomes.set("internal", stats_.internal_errors.load());
  outcomes.set("health", stats_.health_requests.load());
  server.set("requests", std::move(outcomes));

  // Monotonic cache events come from the shared registry counters; only
  // the live entry count is aggregated across the per-worker gauges.
  long entries = 0;
  for (const auto& w : worker_states_) entries += w->entries.load();
  auto cache = Json::object();
  cache.set("hits", inst_.cache_hits.load());
  cache.set("misses", inst_.cache_misses.load());
  cache.set("evictions", inst_.cache_evictions.load());
  cache.set("entries", entries);
  server.set("session_cache", std::move(cache));

  auto doc = Json::object();
  doc.set("ok", true);
  doc.set("type", "health");
  doc.set("server", std::move(server));
  return doc;
}

Json Server::metrics_doc() const {
  // Pull gauges only the scrape observes up to date first.
  inst_.queue_depth.set(static_cast<long>(queue_.depth()));
  auto doc = Json::object();
  doc.set("ok", true);
  doc.set("type", "metrics");
  doc.set("prometheus", metrics_.prometheus());
  doc.set("metrics", metrics_.to_json());
  return doc;
}

void Server::stats_main() {
  const auto interval = std::chrono::duration<double>(cfg_.stats_interval_s);
  std::unique_lock<std::mutex> lock(stats_mu_);
  while (!stats_cv_.wait_for(lock, interval, [&] { return stats_stop_; })) {
    const long run = stats_.requests_run.load();
    const long ok = stats_.requests_ok.load();
    const long failed = stats_.parse_errors.load() +
                        stats_.solve_failures.load() +
                        stats_.timeouts.load() + stats_.cancelled.load() +
                        stats_.internal_errors.load();
    std::fprintf(stderr,
                 "[carbon_simd] accepted=%ld run=%ld ok=%ld failed=%ld "
                 "in_flight=%ld queue=%zu cache_hits=%ld cache_misses=%ld\n",
                 stats_.accepted.load(), run, ok, failed,
                 stats_.in_flight.load(), queue_.depth(),
                 inst_.cache_hits.load(), inst_.cache_misses.load());
  }
}

bool Server::send_doc(int fd, const core::Json& doc, double timeout_s) {
  return write_frame(fd, doc.dump(), timeout_s);
}

// ------------------------------------------------------- disconnect monitor

void Server::watch_add(Watch* w) {
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    watches_.push_back(w);
  }
  watch_cv_.notify_all();
}

void Server::watch_remove(Watch* w) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  watches_.erase(std::remove(watches_.begin(), watches_.end(), w),
                 watches_.end());
}

void Server::monitor_main() {
  std::unique_lock<std::mutex> lock(watch_mu_);
  std::vector<struct pollfd> fds;
  while (!monitor_stop_) {
    if (watches_.empty()) {
      watch_cv_.wait(lock,
                     [&] { return monitor_stop_ || !watches_.empty(); });
      continue;
    }
    fds.clear();
    for (const Watch* w : watches_) {
      struct pollfd p;
      p.fd = w->fd;
      // POLLRDHUP catches an orderly close() by the peer; POLLERR/POLLHUP
      // (always reported) catch resets.  POLLIN is deliberately absent:
      // pipelined request bytes must not look like a disconnect.
      p.events = POLLRDHUP;
      p.revents = 0;
      fds.push_back(p);
    }
    if (::poll(fds.data(), fds.size(), 0) > 0) {
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if (fds[i].revents & (POLLRDHUP | POLLHUP | POLLERR | POLLNVAL)) {
          // Cancel the in-flight solve; the worker sees `gone` and skips
          // the (pointless) response write.
          watches_[i]->gone.store(true, std::memory_order_release);
          watches_[i]->token->cancel();
        }
      }
    }
    // ~25 ms disconnect-detection latency: far below any solve worth
    // cancelling, far above the poll syscall cost.
    watch_cv_.wait_for(lock, std::chrono::milliseconds(25));
  }
}

}  // namespace carbon::serve
