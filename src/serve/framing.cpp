#include "serve/framing.h"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

#include <poll.h>
#include <unistd.h>

namespace carbon::serve {

namespace {

/// Remaining whole milliseconds until @p deadline, clamped to >= 0.
int ms_until(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() < 0 ? 0 : static_cast<int>(left.count());
}

}  // namespace

ReadStatus FrameReader::read_frame(std::string* out, int wake_fd) {
  char chunk[4096];
  for (;;) {
    // Serve a buffered complete frame first: pipelined requests that
    // already arrived are handled even when the wake fd is firing.
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      if (nl > max_bytes_) return ReadStatus::kTooLarge;
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return ReadStatus::kFrame;
    }
    // The ceiling applies to the *partial* line too: an attacker (or a
    // runaway client) streaming newline-free data is cut off after
    // max_bytes_, not buffered until memory runs out.
    if (buf_.size() > max_bytes_) return ReadStatus::kTooLarge;

    struct pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_fd;
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int n = ::poll(fds, wake_fd >= 0 ? 2 : 1, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      const ssize_t got = ::read(fd_, chunk, sizeof chunk);
      if (got > 0) {
        buf_.append(chunk, static_cast<std::size_t>(got));
        continue;
      }
      if (got == 0) return ReadStatus::kEof;
      if (errno == EINTR || errno == EAGAIN) continue;
      return ReadStatus::kError;
    }
    if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      return ReadStatus::kInterrupted;
    }
  }
}

bool write_frame(int fd, const std::string& line, double timeout_s) {
  std::string data = line;
  data += '\n';
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          static_cast<long>(std::ceil(timeout_s * 1000.0)));
  std::size_t off = 0;
  while (off < data.size()) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int ms = ms_until(deadline);
    if (ms == 0) return false;  // slow-client write timeout
    const int n = ::poll(&pfd, 1, ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // timeout
    if (pfd.revents & (POLLERR | POLLNVAL)) return false;
    const ssize_t wrote = ::write(fd, data.data() + off, data.size() - off);
    if (wrote < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;  // EPIPE / reset: client went away
    }
    off += static_cast<std::size_t>(wrote);
  }
  return true;
}

}  // namespace carbon::serve
