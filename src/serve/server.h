#pragma once

/// @file server.h
/// The hardened concurrent simulation service behind tools/carbon_simd:
/// a netlist-in → JSON-out server on a TCP or Unix-domain socket speaking
/// newline-delimited JSON frames.
///
/// Architecture (one Server instance per process):
///
///   accept loop ──> BoundedQueue<fd> ──> worker pool (one SimSession per
///        │            (admission         worker, all sharing one
///        │             control)          immutable ModelRegistry)
///        │                                   │
///        └── signal pipe (SIGTERM/INT)       └── disconnect monitor
///            starts the graceful drain           (cancels in-flight
///                                                 solves of dead peers)
///
/// Robustness contract:
///  * Load is shed, never buffered unboundedly: a full queue rejects the
///    connection with {"ok":false,"error":{"type":"overload"}}; a frame
///    over max_request_bytes gets {"type":"too_large"}.
///  * Every request admitted produces exactly one response document.  Any
///    exception at the request boundary renders as {"type":"internal"} —
///    a bad deck can never take the process down.
///  * Every run request executes under a phys::CancelToken deadline
///    (request deadline_ms, capped by max_deadline_s) chained to the
///    server-wide drain token and polled through every Newton iteration,
///    transient step and AC/noise frequency point: a hung solve becomes a
///    bounded {"type":"timeout"} document, mirroring the ensemble
///    engine's hung-corner handling.
///  * Disconnect detection: a monitor thread polls in-flight connections
///    for peer hang-up and cancels their solves, so a client that gives
///    up does not keep burning a worker.
///  * Slow-client writes are bounded by write_timeout_s.
///  * Graceful drain (SIGTERM/SIGINT via drain_notify_fd(), or
///    request_drain()): stop accepting, finish — or cancel at the drain
///    budget — all admitted work, flush every response, exit run() with 0.
///
/// Wire protocol: one JSON object per line.
///   {"type":"run","deck":"...netlist...","deadline_ms":5000,"id":7}
///   {"type":"health"}            (alias: "stats")
///   {"type":"metrics"}           (Prometheus text + JSON snapshot)
/// Responses echo "id" verbatim when present.  Run responses are the
/// SimSession document (ok / error.type in {parse, solve_failure,
/// timeout, cancelled, internal}); health responses expose queue depth,
/// in-flight count, per-outcome counters and aggregated session-cache
/// stats.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "phys/cancel.h"
#include "serve/queue.h"
#include "spice/netlist_parser.h"
#include "spice/session.h"

namespace carbon::serve {

struct ServerConfig {
  /// Non-empty: listen on this Unix-domain socket path (unlinked on
  /// close).  Empty: TCP on tcp_host:tcp_port.
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = 0;  ///< 0 = ephemeral; read the bound port via port()

  int workers = 4;          ///< worker threads (one SimSession each)
  int queue_capacity = 64;  ///< admitted-connection backlog before overload

  std::size_t max_request_bytes = 4u << 20;  ///< per-frame ceiling

  double default_deadline_s = 30.0;  ///< run budget when the request has none
  double max_deadline_s = 600.0;     ///< cap on client-requested deadlines
  double write_timeout_s = 10.0;     ///< slow-client response write budget
  double drain_budget_s = 5.0;       ///< in-flight work budget after drain
                                     ///< starts (0 = cancel immediately)
  double stats_interval_s = 0.0;     ///< > 0: print a one-line counter
                                     ///< summary to stderr at this period

  /// Shared immutable model registry every worker session reads.
  spice::ModelRegistry registry;
  /// Per-worker session options (cache capacity, table emission).
  spice::SessionOptions session;
};

/// The server's monotonic counters, registry-backed: every member is a
/// stable reference into the server's obs::MetricsRegistry, so the same
/// instrument feeds the health document, the Prometheus exposition and
/// these (API-compatible, .load()-able) fields.  Updates stay relaxed
/// atomics — diagnostics, not synchronization.
struct ServerStats {
  explicit ServerStats(obs::MetricsRegistry& m);

  obs::Counter& accepted;
  obs::Counter& rejected_overload;
  obs::Counter& rejected_too_large;
  obs::Counter& bad_requests;
  obs::Counter& requests_run;
  obs::Counter& requests_ok;
  obs::Counter& parse_errors;
  obs::Counter& solve_failures;
  obs::Counter& timeouts;
  obs::Counter& cancelled;
  obs::Counter& internal_errors;
  obs::Counter& health_requests;
  obs::Counter& metrics_requests;
  obs::Counter& disconnects;
  obs::Gauge& in_flight;
};

/// The server's non-counter instruments: latency/queue-wait histograms,
/// session-cache aggregation and solver phase-time counters.  Like
/// ServerStats, every member is a stable registry reference.
struct ServerInstruments {
  explicit ServerInstruments(obs::MetricsRegistry& m);

  obs::Gauge& queue_depth;      ///< refreshed at exposition time
  obs::Histogram& queue_wait;   ///< admission → worker pop, per connection
  // Request service latency, one histogram per outcome class; recording
  // happens adjacent to the matching ServerStats counter increment so the
  // histogram count and the counter are always conserved together.
  obs::Histogram& lat_ok;
  obs::Histogram& lat_parse;
  obs::Histogram& lat_solve_failure;
  obs::Histogram& lat_timeout;
  obs::Histogram& lat_cancelled;
  obs::Histogram& lat_internal;
  // Session-cache counters aggregated across workers (single source of
  // truth; workers fold per-session deltas in after every request).
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& cache_evictions;
  // Solver phase-time totals [ns] across all workers (obs/phase.h split).
  obs::Counter& phase_stamp_ns;
  obs::Counter& phase_eval_ns;
  obs::Counter& phase_factor_ns;
  obs::Counter& phase_solve_ns;
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the accept loop, worker pool and disconnect
  /// monitor.  Throws std::runtime_error when the socket cannot be set
  /// up.  Returns once the server is accepting.
  void start();

  /// Block until the drain completes (all threads joined, all admitted
  /// responses flushed).  start() must have been called.
  void wait();

  /// start() + wait(); the tool's main loop.  Returns 0 on a clean drain.
  int run();

  /// Begin the graceful drain from any thread: stop accepting, let
  /// admitted work finish within drain_budget_s (hung solves are
  /// cancelled at the budget), flush responses, then wake wait().
  /// Idempotent.  NOT async-signal-safe — from a signal handler, write
  /// one byte to drain_notify_fd() instead.
  void request_drain();

  /// Write end of the drain pipe: a signal handler writing a single byte
  /// here triggers the same graceful drain (async-signal-safe).
  int drain_notify_fd() const { return signal_pipe_[1]; }

  /// Bound TCP port (after start(); 0 for Unix-domain listeners).
  int port() const { return port_; }
  /// Worker-pool size (after construction clamping).
  int workers() const { return cfg_.workers; }
  /// Human-readable listen endpoint (after start()).
  std::string endpoint() const;

  const ServerStats& stats() const { return stats_; }
  /// The registry behind every server instrument; {"type":"metrics"}
  /// requests and tests read the same snapshot through it.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  std::size_t queue_depth() const { return queue_.depth(); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

 private:
  struct WorkerState;
  struct Watch;

  void accept_main();
  void worker_main(WorkerState& w);
  void monitor_main();
  void stats_main();
  void begin_drain_locked();

  /// Serve one admitted connection until EOF, error, oversized frame or
  /// drain.
  void serve_connection(int fd, spice::SimSession& session, WorkerState& w);
  /// Handle one parsed frame.  Returns false when the connection must be
  /// dropped (client gone / write failed).
  bool handle_request(int fd, const std::string& line,
                      spice::SimSession& session, WorkerState& w);
  core::Json health_doc() const;
  core::Json metrics_doc() const;
  bool send_doc(int fd, const core::Json& doc, double timeout_s);

  void watch_add(Watch* w);
  void watch_remove(Watch* w);

  ServerConfig cfg_;
  obs::MetricsRegistry metrics_;  ///< must precede the instrument structs
  ServerStats stats_;
  ServerInstruments inst_;
  BoundedQueue<Admitted> queue_;

  int listen_fd_ = -1;
  int port_ = 0;
  int signal_pipe_[2] = {-1, -1};  ///< [0] polled by accept loop
  int drain_pipe_[2] = {-1, -1};   ///< write end closed on drain; workers
                                   ///< poll [0] and wake on POLLHUP

  phys::CancelToken drain_token_;  ///< parent of every request token
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::thread monitor_thread_;

  // Periodic stderr summary (stats_interval_s > 0).
  std::thread stats_thread_;
  std::mutex stats_mu_;
  std::condition_variable stats_cv_;
  bool stats_stop_ = false;

  // Disconnect monitor state.
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  std::vector<Watch*> watches_;
  bool monitor_stop_ = false;
};

}  // namespace carbon::serve
