#pragma once

/// @file electrostatics.h
/// Gate-stack electrostatics for 1-D channels: insulator capacitance per
/// unit length for the geometries the paper discusses (Fig. 3 argues for
/// gate-all-around; back-gated devices appear in the TFET of Fig. 6), and
/// the derived barrier-control parameters used by the top-of-barrier solver.

namespace carbon::device {

/// Gate geometry around a cylindrical 1-D channel.
enum class GateGeometry {
  kGateAllAround,  ///< coaxial gate (paper Fig. 3) — best channel control
  kOmega,          ///< gate wraps most of the tube (partial GAA)
  kPlanarTop,      ///< tube on substrate, gate above across the oxide
  kPlanarBack,     ///< global back gate through a thick oxide (Fig. 6 TFET)
};

/// Gate stack description.
struct GateStack {
  GateGeometry geometry = GateGeometry::kGateAllAround;
  /// Oxide (insulator) thickness [m].
  double t_ox = 3e-9;
  /// Relative permittivity of the gate dielectric (HfO2 ~ 16, SiO2 3.9).
  /// Section III.D: CNT sidewalls accept Al/Ti/Ta/Hf/Zr/La based high-k.
  double eps_r = 16.0;
  /// Channel diameter [m].
  double diameter = 1.5e-9;

  /// Insulator capacitance per unit channel length [F/m].
  double insulator_capacitance() const;

  /// Gate coupling factor alpha_g = Cg / C_total including a
  /// geometry-dependent parasitic share (1 for ideal GAA).
  double alpha_g() const;

  /// Drain coupling factor alpha_d (DIBL knob); grows as the geometry gets
  /// worse at screening the drain.
  double alpha_d() const;

  /// Total capacitance C_total = Cg / alpha_g [F/m], the value the
  /// top-of-barrier solver wants.
  double total_capacitance() const;
};

/// Natural scale length of the channel/gate system,
///   lambda = sqrt((eps_ch / eps_ox) * t_ch * t_ox),
/// the yardstick for short-channel effects.  For single-atomic-layer
/// carbon channels t_ch collapses to the body diameter with eps_ch ~ 1,
/// which is the paper's "no dark space in CNTFETs" advantage (III.C).
double scale_length(double eps_ch, double eps_ox, double t_ch, double t_ox);

}  // namespace carbon::device
