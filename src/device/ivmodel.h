#pragma once

/// @file ivmodel.h
/// The common transistor-model interface every compact model in this
/// library implements, plus numeric characterization helpers (sweeps,
/// threshold, subthreshold slope, small-signal parameters).

#include <cmath>
#include <memory>
#include <string>

#include "phys/table.h"

namespace carbon::device {

/// Channel polarity.  P-type models use mirrored conventions: for a pFET
/// both vgs and vds are <= 0 in normal operation and the drain current is
/// <= 0 (current flows source -> drain internally).
enum class Polarity { kNType, kPType };

/// One-shot small-signal evaluation of a device model at a bias point: the
/// drain current together with both conductances.  This is the unit of work
/// a SPICE Newton iteration consumes per transistor.
struct DeviceEval {
  double id = 0.0;   ///< drain current [A]
  double gm = 0.0;   ///< transconductance dId/dVgs [S]
  double gds = 0.0;  ///< output conductance dId/dVds [S]

  /// True when every component is finite.  The stamp layer rejects a
  /// non-finite evaluation by element name instead of letting a NaN/Inf
  /// poison the Jacobian silently.
  bool is_finite() const {
    return std::isfinite(id) && std::isfinite(gm) && std::isfinite(gds);
  }
};

/// Small-signal noise parameters of a transistor model, SPICE-style.  The
/// channel thermal noise is S_id = gamma * 4kT * gm [A^2/Hz] (gamma = 2/3
/// is the classic long-channel saturation value; quasi-ballistic CNT/GNR
/// channels measure closer to 1); flicker noise is S_id = kf * |Id|^af / f.
/// spice::noise_sweep reads these through Fet::collect_noise.
struct NoiseParams {
  double gamma = 2.0 / 3.0;  ///< channel thermal excess factor
  double kf = 0.0;           ///< flicker (1/f) coefficient [A^(2-af)]
  double af = 1.0;           ///< flicker current exponent
};

/// Abstract DC transistor model: terminal current as a function of terminal
/// voltages.  Implementations must be:
///  * deterministic and continuous in (vgs, vds),
///  * monotone non-decreasing in vgs and in vds for n-type devices in
///    forward operation (the SPICE Newton solver relies on sane curvature),
///  * thread-compatible (const member functions without mutable state).
class IDeviceModel {
 public:
  virtual ~IDeviceModel() = default;

  /// Drain current [A] for gate-source voltage @p vgs and drain-source
  /// voltage @p vds (source is the reference terminal).
  virtual double drain_current(double vgs, double vds) const = 0;

  /// Current and conductances in one call.  The base implementation falls
  /// back to central finite differences (five drain_current calls); models
  /// with analytic or tabulated derivatives override this so a SPICE stamp
  /// costs a single cheap evaluation.
  virtual DeviceEval eval(double vgs, double vds) const;

  /// Human-readable model name used in reports.
  virtual const std::string& name() const = 0;

  /// Polarity of the device.
  virtual Polarity polarity() const { return Polarity::kNType; }

  /// Normalization width [m] used to express currents in mA/um for
  /// cross-technology comparison (CNT: diameter; GNR: ribbon width;
  /// MOSFET: gate width).  Zero means "not normalizable".
  virtual double width_normalization() const { return 0.0; }

  /// Noise parameters of the device (channel thermal gamma, flicker
  /// kf/af).  Defaults to long-channel thermal noise with no flicker;
  /// adapter models forward to their base, and with_noise() overrides them
  /// on any model.
  virtual NoiseParams noise_params() const { return {}; }
};

/// Shared pointer alias used across the circuit layers.
using DeviceModelPtr = std::shared_ptr<const IDeviceModel>;

/// Mirror adapter that turns an n-type model into its complementary p-type
/// twin: Id_p(vgs, vds) = -Id_n(-vgs, -vds).  This is how the paper builds
/// its "symmetrical pFET and nFET" inverter (Fig. 2).
class PTypeMirror final : public IDeviceModel {
 public:
  explicit PTypeMirror(DeviceModelPtr n_model);

  double drain_current(double vgs, double vds) const override;
  DeviceEval eval(double vgs, double vds) const override;
  const std::string& name() const override { return name_; }
  Polarity polarity() const override { return Polarity::kPType; }
  double width_normalization() const override;
  NoiseParams noise_params() const override {
    return n_model_->noise_params();
  }

 private:
  DeviceModelPtr n_model_;
  std::string name_;
};

/// Rigid gate-voltage shift (threshold retargeting):
/// Id'(vgs, vds) = Id(vgs + shift, vds).  The Fig. 5 benchmark uses this to
/// re-target every technology to the same off-current before comparing
/// on-currents.
class GateShifted final : public IDeviceModel {
 public:
  GateShifted(DeviceModelPtr base, double shift_v);

  double drain_current(double vgs, double vds) const override;
  DeviceEval eval(double vgs, double vds) const override;
  const std::string& name() const override { return name_; }
  Polarity polarity() const override { return base_->polarity(); }
  double width_normalization() const override {
    return base_->width_normalization();
  }
  NoiseParams noise_params() const override { return base_->noise_params(); }
  double shift() const { return shift_; }

 private:
  DeviceModelPtr base_;
  double shift_;
  std::string name_;
};

/// Decorator that attaches explicit noise parameters to any model without
/// touching its I–V behaviour: the Kf/Af flicker pair and the channel
/// thermal gamma the paper-level RF/analog comparisons sweep.
class WithNoise final : public IDeviceModel {
 public:
  WithNoise(DeviceModelPtr base, NoiseParams params);

  double drain_current(double vgs, double vds) const override {
    return base_->drain_current(vgs, vds);
  }
  DeviceEval eval(double vgs, double vds) const override {
    return base_->eval(vgs, vds);
  }
  const std::string& name() const override { return base_->name(); }
  Polarity polarity() const override { return base_->polarity(); }
  double width_normalization() const override {
    return base_->width_normalization();
  }
  NoiseParams noise_params() const override { return params_; }

 private:
  DeviceModelPtr base_;
  NoiseParams params_;
};

/// Convenience factory for the WithNoise decorator.
DeviceModelPtr with_noise(DeviceModelPtr base, NoiseParams params);

// ---------------------------------------------------------------------------
// Characterization helpers
// ---------------------------------------------------------------------------

/// Transconductance gm = dId/dVgs by central difference [S].
double transconductance(const IDeviceModel& m, double vgs, double vds,
                        double h = 1e-4);

/// Output conductance gds = dId/dVds by central difference [S].
double output_conductance(const IDeviceModel& m, double vgs, double vds,
                          double h = 1e-4);

/// Intrinsic voltage gain gm/gds (the quantity that collapses for the
/// paper's non-saturating GNRs).
double intrinsic_gain(const IDeviceModel& m, double vgs, double vds);

/// Subthreshold swing [mV/dec] evaluated between two gate voltages on the
/// transfer curve at fixed vds (log-slope average).
double subthreshold_swing_mv_dec(const IDeviceModel& m, double vgs_lo,
                                 double vgs_hi, double vds);

/// Minimum point subthreshold swing over a swept range [mV/dec]: the "best
/// individual sweep points" number the paper quotes for the TFET.
double min_point_swing_mv_dec(const IDeviceModel& m, double vgs_lo,
                              double vgs_hi, double vds, int points = 101);

/// Constant-current threshold voltage: vgs where |Id| crosses
/// @p i_crit_a at the given vds.  Requires the transfer curve to cross.
double threshold_voltage(const IDeviceModel& m, double i_crit_a, double vds,
                         double vgs_lo, double vgs_hi);

/// DIBL [mV/V] from the threshold shift between a low and a high drain bias.
double dibl_mv_per_v(const IDeviceModel& m, double i_crit_a, double vds_lin,
                     double vds_sat, double vgs_lo, double vgs_hi);

/// Transfer curve Id(vgs) at fixed vds.  Columns: vgs, id_a.
phys::DataTable transfer_curve(const IDeviceModel& m, double vgs_lo,
                               double vgs_hi, int points, double vds);

/// Output family Id(vds) for a list of gate voltages.
/// Columns: vds, id_a@vg0, id_a@vg1, ...
phys::DataTable output_family(const IDeviceModel& m, double vds_lo,
                              double vds_hi, int points,
                              const std::vector<double>& vgs_values);

}  // namespace carbon::device
