#include "device/faulty.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "phys/require.h"

namespace carbon::device {

namespace {

const char* fault_tag(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kNanEval: return "nan";
    case FaultKind::kOpenCircuit: return "open";
    case FaultKind::kNonMonotone: return "wiggle";
    case FaultKind::kStall: return "stall";
  }
  return "?";
}

}  // namespace

FaultyModelDecorator::FaultyModelDecorator(DeviceModelPtr base, FaultSpec spec)
    : base_(std::move(base)), spec_(spec) {
  CARBON_REQUIRE(base_ != nullptr, "faulty decorator needs a base model");
  name_ = base_->name() + "+fault(" + fault_tag(spec_.kind) + ")";
}

bool FaultyModelDecorator::armed_after_count() const {
  // One fetch_add per eval; the fault is armed once the pre-fault budget
  // is exhausted.  Relaxed order is fine: the count only gates behaviour
  // of this model, never synchronizes other memory.
  const long n = evals_.fetch_add(1, std::memory_order_relaxed);
  return n >= spec_.trigger_evals;
}

DeviceEval FaultyModelDecorator::eval(double vgs, double vds) const {
  const bool armed = armed_after_count();
  if (!armed || spec_.kind == FaultKind::kNone) {
    return base_->eval(vgs, vds);
  }
  switch (spec_.kind) {
    case FaultKind::kNanEval: {
      DeviceEval e;
      e.id = std::numeric_limits<double>::quiet_NaN();
      e.gm = std::numeric_limits<double>::quiet_NaN();
      e.gds = std::numeric_limits<double>::quiet_NaN();
      return e;
    }
    case FaultKind::kOpenCircuit:
      return DeviceEval{};  // all zero: the device vanishes
    case FaultKind::kNonMonotone: {
      // Additive wiggle with a derivative large enough to flip the sign of
      // the local conductance: a plain damped Newton rattles between the
      // folds, while a gmin-shunted or pseudo-transient system stays
      // diagonally dominant and walks through.
      DeviceEval e = base_->eval(vgs, vds);
      const double w = spec_.wiggle_freq_per_v;
      const double phase = w * (vgs + vds);
      e.id += spec_.wiggle_amp_a * std::sin(phase);
      e.gm += spec_.wiggle_amp_a * w * std::cos(phase);
      e.gds += spec_.wiggle_amp_a * w * std::cos(phase);
      return e;
    }
    case FaultKind::kStall:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(spec_.stall_s));
      return base_->eval(vgs, vds);
    case FaultKind::kNone:
      break;
  }
  return base_->eval(vgs, vds);
}

double FaultyModelDecorator::drain_current(double vgs, double vds) const {
  // Route through eval() so the fault accounting and behaviour are
  // identical no matter which entry point a consumer uses.
  return eval(vgs, vds).id;
}

DeviceModelPtr with_fault(DeviceModelPtr base, FaultSpec spec) {
  return std::make_shared<FaultyModelDecorator>(std::move(base), spec);
}

}  // namespace carbon::device
