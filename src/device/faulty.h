#pragma once

/// @file faulty.h
/// Deterministic fault injection for robustness testing: a decorator that
/// wraps any compact model and misbehaves on command — NaN evaluations,
/// vanishing conductances (singular-row corners), non-monotone I-V that
/// defeats plain Newton, and artificial stalls that simulate a hung model.
///
/// The ensemble tests and benchmarks use it to force every failure, retry
/// and timeout path of spice::EnsembleRunner on purpose: trial N gets a
/// faulty device, and the batch must still complete with a structured
/// TrialResult for it instead of crashing, hanging, or poisoning its
/// neighbours.

#include <atomic>
#include <string>

#include "device/ivmodel.h"

namespace carbon::device {

/// What the decorator does once armed.
enum class FaultKind {
  kNone = 0,     ///< transparent pass-through
  kNanEval,      ///< NaN current/conductances (permanent once triggered)
  kOpenCircuit,  ///< all-zero eval: the device vanishes — where it was a
                 ///< node's only DC path, that row degenerates to the gmin
                 ///< shunt and the Jacobian goes (near-)singular
  kNonMonotone,  ///< adds a non-monotone wiggle to the I-V: plain damped
                 ///< Newton limit-cycles, but the escalation ladder (gmin
                 ///< ramp / pseudo-transient) can still crack it — the
                 ///< "recoverable by retry" corner
  kStall,        ///< sleeps stall_s per eval(): a hung / pathologically
                 ///< slow model, used to exercise deadlines
};

/// A fault and when it triggers.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  /// eval() calls served faithfully before the fault arms (0 = from the
  /// first call).  Lets a transient run fail mid-flight rather than at the
  /// operating point.
  long trigger_evals = 0;
  double wiggle_amp_a = 5e-5;      ///< kNonMonotone current amplitude [A]
  double wiggle_freq_per_v = 60.0; ///< kNonMonotone frequency [rad/V]
  double stall_s = 1e-3;           ///< kStall sleep per eval [s]
};

/// The decorator.  Thread-safe: the eval counter is atomic, so one
/// instance may be shared by the FETs of a trial circuit (they then share
/// the trigger budget, which is usually what a fault scenario wants).
class FaultyModelDecorator final : public IDeviceModel {
 public:
  FaultyModelDecorator(DeviceModelPtr base, FaultSpec spec);

  double drain_current(double vgs, double vds) const override;
  DeviceEval eval(double vgs, double vds) const override;
  const std::string& name() const override { return name_; }
  Polarity polarity() const override { return base_->polarity(); }
  double width_normalization() const override {
    return base_->width_normalization();
  }
  NoiseParams noise_params() const override { return base_->noise_params(); }

  /// eval() calls observed so far (diagnostics for tests).
  long evals() const { return evals_.load(std::memory_order_relaxed); }
  const FaultSpec& spec() const { return spec_; }

 private:
  bool armed_after_count() const;

  DeviceModelPtr base_;
  FaultSpec spec_;
  std::string name_;
  mutable std::atomic<long> evals_{0};
};

/// Convenience factory.
DeviceModelPtr with_fault(DeviceModelPtr base, FaultSpec spec);

}  // namespace carbon::device
