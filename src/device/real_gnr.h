#pragma once

/// @file real_gnr.h
/// The *experimental* graphene-nanoribbon FET the paper contrasts with the
/// simulations: a gate-voltage-steered linear resistor.  Real GNR devices
/// (refs [4], [5]) switch with Ion/Ioff up to 1e6 and carry ~2 mA/um at
/// VDS = 1 V, but show **no current saturation** below ~2 V — the property
/// that destroys inverter gain in Fig. 2(d) and RF fmax (Section II).
///
/// Model: Id = G(Vgs) * Vds, with a logistic gate-controlled conductance
/// G spanning Gmin..Gmax.  Strictly linear in Vds by construction.

#include <string>

#include "device/ivmodel.h"

namespace carbon::device {

/// Parameters of the phenomenological experimental-GNR model.
struct RealGnrParams {
  std::string name = "gnr-real";

  /// Ribbon width [m] (sub-10 nm in ref [5]).
  double width = 8e-9;

  /// On-state sheet-limited conductance: calibrated so that
  /// Id(on) = 2 mA/um * width at VDS = 1 V  =>  Gmax = 2e3 S/m * width.
  double g_max_s = 2e3 * 8e-9;

  /// Ion/Ioff ratio achieved over the gate sweep (1e6 in ref [5]).
  double on_off_ratio = 1e6;

  /// Gate voltage of maximum transconductance (logistic midpoint) [V].
  /// Experimental GNRs develop their on/off ratio over a multi-volt
  /// back-gate sweep, not within a CMOS-scale 1 V swing.
  double v_mid = 1.5;

  /// Logistic steepness [V]: sets the effective subthreshold swing
  /// SS ~ ln(10) * v_steep at the foot of the curve (~0.8 V/dec for the
  /// measured back-gated ribbons).
  double v_steep = 0.35;
};

/// Gate-steered linear-resistor FET (n-type convention; mirror for p).
class RealGnrModel final : public IDeviceModel {
 public:
  explicit RealGnrModel(RealGnrParams params);

  double drain_current(double vgs, double vds) const override;
  const std::string& name() const override { return params_.name; }
  double width_normalization() const override { return params_.width; }

  /// Gate-controlled conductance G(vgs) [S].
  double conductance(double vgs) const;

  const RealGnrParams& params() const { return params_; }

 private:
  RealGnrParams params_;
  double g_min_;
};

/// Calibration of ref [5]: w < 10 nm, Ion/Ioff = 1e6, 2 mA/um @ 1 V.
RealGnrParams make_wang_gnr_params();

}  // namespace carbon::device
