#pragma once

/// @file cntfet.h
/// Quasi-ballistic CNT-FET compact model: zone-folded CNT subbands inside a
/// self-consistent top-of-barrier solver, with phonon-limited transmission,
/// an optical-phonon current ceiling, and optional contact series
/// resistance.  This is the model used for the paper's Figs. 1, 2, 4 and the
/// CNT points of Fig. 5.

#include <optional>
#include <string>

#include "band/cnt.h"
#include "device/electrostatics.h"
#include "device/ivmodel.h"
#include "transport/mfp.h"
#include "transport/top_of_barrier.h"

namespace carbon::device {

/// Construction parameters of a CntfetModel.
struct CntfetParams {
  std::string name = "cntfet";

  /// Tube chirality; ignored when band_gap_override is set.
  band::Chirality chirality{19, 0};  // d ~ 1.49 nm, Eg ~ 0.57 eV

  /// Directly prescribe the band gap [eV] (Fig. 1 uses exactly 0.56 eV).
  std::optional<double> band_gap_override;

  /// Number of conduction subbands to keep.
  int num_subbands = 3;

  /// Physical gate length = transport length for the MFP model [m].
  double gate_length = 20e-9;

  /// Gate stack (geometry, oxide, dielectric).
  GateStack gate;

  /// Override the gate/drain coupling derived from the gate stack.  Used to
  /// model measured devices whose electrostatics are worse than their
  /// nominal geometry (e.g. the bottom-gated length-scaling devices behind
  /// Fig. 5, SS ~ 90-95 mV/dec).
  std::optional<double> alpha_g_override;
  std::optional<double> alpha_d_override;

  /// Source Fermi level relative to midgap at flat band [eV]; sets Ioff.
  double ef_source_ev = -0.30;

  /// Phonon mean-free paths.
  transport::MfpModel mfp;

  /// Fully ballistic (transmission = 1, no OP ceiling) when true.
  bool ballistic = false;

  /// Optical-phonon-limited per-tube current ceiling [A] applied as a
  /// smooth soft-minimum; experimental single-tube currents saturate around
  /// 20-25 uA.  Ignored when ballistic.
  double op_current_ceiling_a = 30e-6;
  /// Sharpness of the soft-minimum (higher = later, harder limiting).
  double op_ceiling_order = 4.0;

  /// Contact series resistance per terminal [Ohm] (0 = ideal; Fig. 4 uses
  /// 50 kOhm on each side).
  double r_source_ohm = 0.0;
  double r_drain_ohm = 0.0;

  /// Include the valence band (ambipolar branch).  Off by default: the
  /// benchmark devices are MOSFET-like CNTFETs with doped contacts that
  /// block the hole path; enable for Schottky-type ambipolar studies.
  bool include_holes = false;

  double temperature_k = 300.0;
};

/// n-type CNT-FET model (wrap with PTypeMirror for the complementary FET).
class CntfetModel final : public IDeviceModel {
 public:
  explicit CntfetModel(CntfetParams params);
  ~CntfetModel() override;  // out-of-line: IntrinsicView is incomplete here

  double drain_current(double vgs, double vds) const override;
  const std::string& name() const override { return params_.name; }
  double width_normalization() const override { return diameter_; }

  const CntfetParams& params() const { return params_; }
  double diameter() const { return diameter_; }
  double band_gap() const { return band_gap_; }
  const transport::TopOfBarrierSolver& barrier_solver() const {
    return *solver_;
  }

  /// Intrinsic current (no series resistance) — used by the series solver
  /// and exposed for diagnostics.
  double intrinsic_current(double vgs, double vds) const;

 private:
  CntfetParams params_;
  double diameter_ = 0.0;
  double band_gap_ = 0.0;
  std::unique_ptr<transport::TopOfBarrierSolver> solver_;

  /// Private intrinsic view used by solve_with_series_resistance.
  class IntrinsicView;
  std::unique_ptr<IntrinsicView> intrinsic_view_;
};

/// The paper's Fig. 1 CNT-FET: Eg = 0.56 eV, ballistic, ideal GAA gate.
CntfetParams make_fig1_cntfet_params();

/// A realistic scaled CNT-FET in the spirit of Franklin et al. (refs [6],
/// [13], [14]): d ~ 1.3 nm tube, GAA high-k gate, quasi-ballistic.
CntfetParams make_franklin_cntfet_params(double gate_length_m);

}  // namespace carbon::device
