#pragma once

/// @file tfet.h
/// Gated PIN CNT tunnel-FET (paper Section IV, Fig. 6).  The device of ref
/// [19]: half the channel n-doped by PEI charge transfer, the other half
/// naturally p, a common Si back gate across 10 nm SiO2 steering the
/// intrinsic segment.
///
/// Reverse diode bias: the gate pulls the intrinsic segment p+, opening a
/// band-to-band tunneling window at the i/n junction; the WKB transmission
/// through the interband barrier and the window width set the current —
/// this is the branch with the sharp sub-thermal turn-on (SS ~ 83 mV/dec
/// average, individual segments below 60).  Forward bias: a plain diode
/// which the gate barely modulates.
///
/// Terminal mapping onto IDeviceModel: vgs = back-gate voltage, vds = diode
/// bias (positive = forward).  The device conducts BTBT current for
/// negative gate drive, so sweeps go toward negative vgs.

#include <string>

#include "device/ivmodel.h"

namespace carbon::device {

/// CNT TFET construction parameters.
struct CntTfetParams {
  std::string name = "cnt-tfet";

  double band_gap_ev = 0.60;     ///< tube gap (d ~ 1.4 nm)
  double diameter = 1.4e-9;      ///< [m] for mA/um normalization
  double m_tunnel_rel = 0.06;    ///< reduced tunneling mass / m0

  /// Back-gate efficiency d psi / d Vg (10 nm SiO2 back gate + quantum
  /// capacitance: ~0.5; improved high-k segmented gates push toward 1 —
  /// the paper's suggested optimization, swept in the a3 ablation bench).
  double gate_efficiency = 0.55;

  /// Tunneling junction screening length [m]: smaller = sharper bands =
  /// more field = more current ("sharp features have strong field
  /// enhancement", Section IV).  ~sqrt(d * t_ox) scale: 10 nm SiO2 back
  /// gate over a 1.4 nm tube gives ~5 nm.
  double tunnel_length = 4.2e-9;

  /// Junction coupling prefactor on the WKB transmission: accounts for the
  /// 1-D mode mismatch and non-ideality of the chemically doped junction
  /// (standard fitting knob of calibrated TFET compact models).
  double transmission_prefactor = 0.035;

  /// Gate onset reference [V]: the tunneling window opens once
  /// gate_efficiency * (v_onset - vgs) + |reverse bias| exceeds zero, i.e.
  /// the gate must pull the intrinsic segment well below the n+ conduction
  /// band before the interband window appears.  With the default reverse
  /// bias of 0.5 V the turn-on lands near vgs ~ -0.3 V, as in Fig. 6(b).
  double v_onset = -1.2;

  /// Window smoothing sets how abrupt the turn-on is [eV].
  double window_smoothing_ev = 8e-3;

  /// Reverse-branch leakage floor [A] (SRH/ambient, limits min current).
  double leakage_floor_a = 2e-12;

  /// Forward diode saturation current [A] and ideality.
  double diode_i_sat_a = 2e-9;
  double diode_ideality = 1.8;
  /// Forward-branch series resistance [Ohm] (contacts + ungated tube);
  /// limits the forward current to the uA scale of the measured device.
  double diode_series_ohm = 2.0e5;
  /// Weak relative gate modulation of the forward branch (paper: "hardly
  /// modulating").
  double forward_gate_modulation = 0.15;

  double temperature_k = 300.0;
};

/// Gated PIN CNT tunnel FET.
class CntTfetModel final : public IDeviceModel {
 public:
  explicit CntTfetModel(CntTfetParams params);

  /// vgs: back gate voltage; vds: diode bias (+ forward / - reverse).
  double drain_current(double vgs, double vds) const override;
  const std::string& name() const override { return params_.name; }
  double width_normalization() const override { return params_.diameter; }

  const CntTfetParams& params() const { return params_; }

  /// BTBT window opening [eV] at the given biases (0 when closed).
  double tunnel_window_ev(double vgs, double vds) const;
  /// Junction field [V/m] at the given biases.
  double junction_field(double vgs, double vds) const;

 private:
  CntTfetParams params_;
  double m_tunnel_kg_;
};

/// The fabricated PEI-doped device of Fig. 6 (back gate, 10 nm SiO2).
CntTfetParams make_fig6_tfet_params();

/// Swing metrics of a TFET reverse-branch transfer curve.
struct TfetSwing {
  double vg_onset = 0.0;     ///< gate voltage at 100x the leakage floor
  double ss_avg_mv_dec = 0;  ///< average swing over the next N decades
  double ss_best_mv_dec = 0; ///< steepest local segment (sub-thermal points)
  double i_on_a = 0.0;       ///< current at the sweep end
};

/// Extract the Fig. 6 swing metrics: sweep the gate from +0.5 V toward
/// @p vg_stop at diode bias @p vds (reverse) and measure the average SS
/// over @p decades decades of current above the onset point, plus the best
/// local point swing.
TfetSwing measure_tfet_swing(const CntTfetModel& model, double vds = -0.5,
                             double vg_stop = -2.5, double decades = 2.0);

}  // namespace carbon::device
