#include "device/tabulated.h"

#include <algorithm>
#include <vector>

#include "phys/parallel.h"
#include "phys/require.h"

namespace carbon::device {

TabulatedDeviceModel::TabulatedDeviceModel(DeviceModelPtr base,
                                           const TabulatedGrid& grid)
    : base_(std::move(base)), grid_(grid) {
  CARBON_REQUIRE(base_ != nullptr, "null base model");
  CARBON_REQUIRE(grid_.n_vgs >= 4 && grid_.n_vds >= 4,
                 "need at least a 4x4 bias grid");
  CARBON_REQUIRE(grid_.vgs_max > grid_.vgs_min && grid_.vds_max > grid_.vds_min,
                 "empty bias box");
  CARBON_REQUIRE(!grid_.mirror_vds || grid_.vds_min >= 0.0,
                 "mirror_vds requires a vds >= 0 grid");
  name_ = base_->name() + "/tab";

  std::vector<double> vgs(grid_.n_vgs), vds(grid_.n_vds);
  for (int i = 0; i < grid_.n_vgs; ++i) {
    vgs[i] = grid_.vgs_min +
             (grid_.vgs_max - grid_.vgs_min) * i / (grid_.n_vgs - 1);
  }
  for (int j = 0; j < grid_.n_vds; ++j) {
    vds[j] = grid_.vds_min +
             (grid_.vds_max - grid_.vds_min) * j / (grid_.n_vds - 1);
  }
  // Grid compilation is the expensive part of construction (each sample is
  // a self-consistent barrier solve for physical base models) and each
  // sample is independent, so the bias-grid rows fan out across the shared
  // pool.  IDeviceModel requires const-thread-compatible implementations,
  // and the row layout is independent of the worker count, so the table is
  // bit-identical to the serial build.
  std::vector<double> id(static_cast<size_t>(grid_.n_vgs) * grid_.n_vds);
  phys::parallel_for(grid_.n_vgs, [&](long row_begin, long row_end) {
    for (long i = row_begin; i < row_end; ++i) {
      for (int j = 0; j < grid_.n_vds; ++j) {
        id[i * grid_.n_vds + j] = base_->drain_current(vgs[i], vds[j]);
      }
    }
  });
  table_ = phys::BicubicTable(std::move(vgs), std::move(vds), std::move(id));
}

phys::BicubicTable::Eval TabulatedDeviceModel::lookup(double vgs,
                                                      double vds) const {
  // Clamp the query to the bias box and extend C1-linearly with the edge
  // gradient.  Cubic extrapolation grows fast enough off the box to hand
  // the Newton homotopy spurious equilibria (e.g. an inverter output above
  // VDD); the linear extension keeps the surface monotone and tame while
  // staying continuous in value and derivative.
  const double cg = std::clamp(vgs, grid_.vgs_min, grid_.vgs_max);
  const double cd = std::clamp(vds, grid_.vds_min, grid_.vds_max);
  phys::BicubicTable::Eval t = table_.eval(cg, cd);
  t.f += t.fx * (vgs - cg) + t.fy * (vds - cd);
  return t;
}

double TabulatedDeviceModel::drain_current(double vgs, double vds) const {
  if (grid_.mirror_vds && vds < 0.0) {
    return -lookup(vgs - vds, -vds).f;
  }
  return lookup(vgs, vds).f;
}

DeviceEval TabulatedDeviceModel::eval(double vgs, double vds) const {
  DeviceEval e;
  if (grid_.mirror_vds && vds < 0.0) {
    // I(vgs, vds) = -T(w, u) with w = vgs - vds, u = -vds:
    //   dI/dvgs = -Tw,   dI/dvds = Tw + Tu.
    const phys::BicubicTable::Eval t = lookup(vgs - vds, -vds);
    e.id = -t.f;
    e.gm = -t.fx;
    e.gds = t.fx + t.fy;
    return e;
  }
  const phys::BicubicTable::Eval t = lookup(vgs, vds);
  e.id = t.f;
  e.gm = t.fx;
  e.gds = t.fy;
  return e;
}

DeviceModelPtr make_tabulated(DeviceModelPtr base, double v_max, int n_vgs,
                              int n_vds) {
  CARBON_REQUIRE(v_max > 0.0, "supply must be positive");
  TabulatedGrid g;
  const double guard = 0.1 * v_max;
  g.vgs_min = -guard;
  g.vgs_max = v_max + guard;
  g.n_vgs = n_vgs;
  g.vds_min = 0.0;
  g.vds_max = v_max + guard;
  g.n_vds = n_vds;
  g.mirror_vds = true;
  return std::make_shared<TabulatedDeviceModel>(std::move(base), g);
}

}  // namespace carbon::device
