#include "device/gnrfet.h"

#include "phys/constants.h"
#include "phys/require.h"

namespace carbon::device {

GnrfetModel::GnrfetModel(GnrfetParams params) : params_(std::move(params)) {
  band::GrapheneParams gp;
  band::GnrBandStructure bs(params_.num_dimer_lines,
                            params_.edge_bond_relaxation, gp);
  width_ = bs.width();
  band::SubbandLadder ladder = bs.ladder(params_.num_subbands);

  if (params_.band_gap_override.has_value()) {
    // Rescale every subband edge so the gap matches the override while the
    // spacing pattern of the ribbon is preserved (Fig. 1 pins Eg=0.56 eV).
    const double scale = *params_.band_gap_override / bs.band_gap();
    for (auto& s : ladder.subbands) s.delta_ev *= scale;
    band_gap_ = *params_.band_gap_override;
  } else {
    band_gap_ = bs.band_gap();
  }
  CARBON_REQUIRE(band_gap_ > 0.05,
                 "GNR-FET needs a semiconducting ribbon (gap too small)");

  // An effectively planar ribbon: approximate the gate capacitance with a
  // parallel-plate term over the ribbon width (plus fringe ~ factor 1.5).
  transport::TopOfBarrierParams tob;
  tob.ladder = std::move(ladder);
  tob.alpha_g = params_.gate.alpha_g();
  tob.alpha_d = params_.gate.alpha_d();
  const double c_plate = 1.5 * phys::kEpsilon0 * params_.gate.eps_r *
                         width_ / params_.gate.t_ox;
  tob.c_total = c_plate / tob.alpha_g;
  tob.ef_source_ev = params_.ef_source_ev;
  tob.temperature_k = params_.temperature_k;
  tob.include_holes = params_.include_holes;
  tob.transmission = 1.0;  // Fig. 1 compares ballistic limits
  solver_ = std::make_unique<transport::TopOfBarrierSolver>(tob);
}

double GnrfetModel::drain_current(double vgs, double vds) const {
  if (vds < 0.0) return -drain_current(vgs - vds, -vds);
  return solver_->current(vgs, vds);
}

GnrfetParams make_fig1_gnrfet_params() {
  GnrfetParams p;
  p.name = "gnr-fet(Eg=0.56eV,sim)";
  p.num_dimer_lines = 18;  // w = 2.09 nm
  p.band_gap_override = 0.56;
  p.num_subbands = 3;
  // Ref [3] simulated both devices with the same idealized gate control, so
  // the Fig. 1 comparison uses GAA-grade coupling for the ribbon as well.
  p.gate.geometry = GateGeometry::kGateAllAround;
  p.gate.t_ox = 2e-9;
  p.gate.eps_r = 16.0;
  p.ef_source_ev = -0.14;  // matched to the CNT twin for the Fig. 1 overlay
  return p;
}

}  // namespace carbon::device
