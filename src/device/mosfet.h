#pragma once

/// @file mosfet.h
/// Virtual-source (MVS-class) compact model for the benchmark baselines of
/// the paper's Fig. 5: the Intel-style Si trigate FinFET and the
/// InAs/InGaAs high-mobility HEMTs benchmarked by del Alamo (ref [18]).
/// Short-channel degradation (SS, DIBL) follows scale-length electrostatics
/// including the Skotnicki–Boeuf dark-space penalty of low-DOS high-k
/// channels (ref [1]) — the effect that makes III-V FETs fall off at short
/// gate length while the single-atomic-layer CNT does not (Section III.C).

#include <string>

#include "device/ivmodel.h"

namespace carbon::device {

/// Virtual-source MOSFET parameters (all per-width quantities in SI).
struct VirtualSourceParams {
  std::string name = "vs-mosfet";

  double gate_length = 30e-9;       ///< [m]
  double width = 1e-6;              ///< normalization width [m]

  double v_t0 = 0.35;               ///< long-channel threshold [V]
  double ss_long_mv_dec = 68.0;     ///< long-channel subthreshold swing
  double c_inv = 2.6e-2;            ///< effective inversion cap [F/m^2]
  double v_inj = 0.9e5;             ///< injection velocity [m/s]
  double mobility = 0.025;          ///< apparent mobility [m^2/Vs]
  double beta_sat = 1.8;            ///< saturation-knee sharpness
  double rs_ohm_um = 80.0;          ///< source access resistance [Ohm um]
  double rd_ohm_um = 80.0;          ///< drain access resistance [Ohm um]

  // --- short-channel electrostatics ---
  double eps_ch = 11.7;             ///< channel permittivity (relative)
  double eps_ox = 3.9;              ///< gate-oxide permittivity (relative)
  double t_ch = 8e-9;               ///< electrostatic body thickness [m]
  double t_ox_phys = 1.0e-9;        ///< physical EOT [m]
  double dark_space = 0.4e-9;       ///< charge-centroid dark space [m]
  double dibl_prefactor_mv_v = 900; ///< DIBL at Lg -> 0 [mV/V]
  double ss_degradation = 1.2;      ///< SS growth prefactor

  double temperature_k = 300.0;

  /// Electrostatic scale length including the dark-space EOT penalty [m].
  double scale_length_m() const;
  /// Effective DIBL [V/V] at this gate length.
  double dibl() const;
  /// Effective subthreshold ideality n = SS / (60 mV/dec at 300 K).
  double ideality() const;
};

/// Virtual-source MOSFET model (n-type).  Current flow:
///   Id/W = Q_inv(vgs', vds) * v_inj * Fsat(vds'),
/// with the standard smooth-log charge, DIBL-shifted threshold and a
/// beta-knee saturation function; access resistances are solved
/// self-consistently.
class VirtualSourceModel final : public IDeviceModel {
 public:
  explicit VirtualSourceModel(VirtualSourceParams params);
  ~VirtualSourceModel() override;  // out-of-line: IntrinsicView is incomplete

  double drain_current(double vgs, double vds) const override;
  const std::string& name() const override { return params_.name; }
  double width_normalization() const override { return params_.width; }

  const VirtualSourceParams& params() const { return params_; }
  /// Intrinsic current before access resistance [A].
  double intrinsic_current(double vgs, double vds) const;

 private:
  class IntrinsicView;
  VirtualSourceParams params_;
  std::unique_ptr<IntrinsicView> intrinsic_view_;
};

/// Intel-class 30 nm trigate Si FinFET (fin 35 nm tall / 18 nm wide,
/// Weff = 88 nm) calibrated to ~66 uA per fin at VGS = VDS = 1 V (paper
/// Section III.E).
VirtualSourceParams make_si_trigate_params(double gate_length_m = 30e-9);

/// InAs HEMT per del Alamo's benchmark (high v_inj, large dark space).
VirtualSourceParams make_inas_hemt_params(double gate_length_m = 30e-9);

/// In(0.7)Ga(0.3)As HEMT: slightly lower injection velocity than InAs.
VirtualSourceParams make_ingaas_hemt_params(double gate_length_m = 30e-9);

}  // namespace carbon::device
