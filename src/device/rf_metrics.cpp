#include "device/rf_metrics.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::device {

SmallSignal extract_small_signal(const IDeviceModel& m, double vgs, double vds,
                                 const RfParasitics& par) {
  CARBON_REQUIRE(par.c_gs > 0.0 && par.c_gd >= 0.0,
                 "capacitances must be positive");
  SmallSignal ss;
  ss.gm_s = std::abs(transconductance(m, vgs, vds));
  ss.gds_s = std::abs(output_conductance(m, vgs, vds));
  ss.gain = ss.gds_s > 0.0 ? ss.gm_s / ss.gds_s : 1e12;
  ss.ft_hz = ss.gm_s / (2.0 * M_PI * (par.c_gs + par.c_gd));
  const double denom = ss.gds_s * (par.r_gate + par.r_source) +
                       2.0 * M_PI * ss.ft_hz * par.r_gate * par.c_gd;
  ss.fmax_hz = denom > 0.0 ? ss.ft_hz / (2.0 * std::sqrt(denom)) : ss.ft_hz;
  return ss;
}

}  // namespace carbon::device
