#include "device/mosfet.h"

#include <cmath>

#include "device/electrostatics.h"
#include "device/series_resistance.h"
#include "phys/constants.h"
#include "phys/fermi.h"
#include "phys/require.h"

namespace carbon::device {

using phys::kBoltzmannEv;

double VirtualSourceParams::scale_length_m() const {
  // Dark space adds to the electrical oxide thickness in inversion,
  // referred through the permittivity ratio (Skotnicki & Boeuf).
  const double t_ox_inv = t_ox_phys + dark_space * eps_ox / eps_ch;
  return scale_length(eps_ch, eps_ox, t_ch, t_ox_inv);
}

double VirtualSourceParams::dibl() const {
  const double lambda = scale_length_m();
  return dibl_prefactor_mv_v * 1e-3 * std::exp(-gate_length / (2.0 * lambda));
}

double VirtualSourceParams::ideality() const {
  const double lambda = scale_length_m();
  const double ss = ss_long_mv_dec *
                    (1.0 + ss_degradation *
                               std::exp(-gate_length / (2.0 * lambda)));
  const double ss_ideal = kBoltzmannEv * temperature_k * std::log(10.0) * 1e3;
  return ss / ss_ideal;
}

/// Resistance-free inner model handed to the generic series solver.
class VirtualSourceModel::IntrinsicView final : public IDeviceModel {
 public:
  explicit IntrinsicView(const VirtualSourceModel& owner) : owner_(owner) {}
  double drain_current(double vgs, double vds) const override {
    return owner_.intrinsic_current(vgs, vds);
  }
  const std::string& name() const override { return owner_.name(); }

 private:
  const VirtualSourceModel& owner_;
};

VirtualSourceModel::~VirtualSourceModel() = default;

VirtualSourceModel::VirtualSourceModel(VirtualSourceParams params)
    : params_(std::move(params)) {
  CARBON_REQUIRE(params_.gate_length > 0.0, "gate length must be positive");
  CARBON_REQUIRE(params_.width > 0.0, "width must be positive");
  CARBON_REQUIRE(params_.c_inv > 0.0 && params_.v_inj > 0.0 &&
                     params_.mobility > 0.0,
                 "transport parameters must be positive");
  intrinsic_view_ = std::make_unique<IntrinsicView>(*this);
}

double VirtualSourceModel::intrinsic_current(double vgs, double vds) const {
  if (vds < 0.0) return -intrinsic_current(vgs - vds, -vds);

  const double vt_th = kBoltzmannEv * params_.temperature_k;  // kT/q
  const double n = params_.ideality();
  const double vt_eff = params_.v_t0 - params_.dibl() * vds;

  // Smooth unified charge: exponential below threshold, linear above.
  const double eta = (vgs - vt_eff) / (n * vt_th);
  const double q_inv =
      params_.c_inv * n * vt_th * phys::softplus(eta);  // [C/m^2]

  // Saturation knee between the mobility-limited linear region and the
  // injection-velocity-limited saturation region.
  const double v_dsat =
      params_.v_inj * params_.gate_length / params_.mobility + 2.0 * vt_th;
  const double x = vds / v_dsat;
  const double f_sat =
      x / std::pow(1.0 + std::pow(x, params_.beta_sat),
                   1.0 / params_.beta_sat);

  return q_inv * params_.v_inj * f_sat * params_.width;
}

double VirtualSourceModel::drain_current(double vgs, double vds) const {
  const double w_um = params_.width * 1e6;
  const double rs = params_.rs_ohm_um / w_um;
  const double rd = params_.rd_ohm_um / w_um;
  if (rs == 0.0 && rd == 0.0) return intrinsic_current(vgs, vds);
  return solve_with_series_resistance(*intrinsic_view_, vgs, vds, rs, rd);
}

VirtualSourceParams make_si_trigate_params(double gate_length_m) {
  VirtualSourceParams p;
  p.name = "si-trigate";
  p.gate_length = gate_length_m;
  p.width = 88e-9;  // Weff = 2*35 + 18 nm per fin
  p.v_t0 = 0.40;
  p.ss_long_mv_dec = 66.0;
  p.c_inv = 2.7e-2;        // EOT ~ 1.1 nm incl. Si dark space
  p.v_inj = 0.50e5;        // ~0.5e7 cm/s apparent (Rext-degraded)
  p.mobility = 0.020;
  p.beta_sat = 1.8;
  p.rs_ohm_um = 90.0;
  p.rd_ohm_um = 90.0;
  p.eps_ch = 11.7;
  p.eps_ox = 3.9;
  p.t_ch = 9e-9;           // fin half-width electrostatics (trigate)
  p.t_ox_phys = 0.9e-9;
  p.dark_space = 0.35e-9;  // Si: high DOS, small centroid offset
  return p;
}

VirtualSourceParams make_inas_hemt_params(double gate_length_m) {
  VirtualSourceParams p;
  p.name = "inas-hemt";
  p.gate_length = gate_length_m;
  p.width = 1e-6;
  p.v_t0 = 0.30;
  p.ss_long_mv_dec = 70.0;
  p.c_inv = 1.4e-2;        // low-DOS channel: large effective EOT
  p.v_inj = 3.2e5;         // ~3.2e7 cm/s (del Alamo)
  p.mobility = 0.9;        // 9000 cm^2/Vs
  p.beta_sat = 1.6;
  p.rs_ohm_um = 190.0;
  p.rd_ohm_um = 190.0;
  p.eps_ch = 15.1;
  p.eps_ox = 9.0;          // Al2O3/high-k composite
  p.t_ch = 10e-9;          // quantum-well channel
  p.t_ox_phys = 1.2e-9;
  p.dark_space = 1.8e-9;   // low DOS + high eps: large dark space (ref [1])
  return p;
}

VirtualSourceParams make_ingaas_hemt_params(double gate_length_m) {
  VirtualSourceParams p = make_inas_hemt_params(gate_length_m);
  p.name = "ingaas-hemt";
  p.v_inj = 2.5e5;
  p.mobility = 0.55;
  p.c_inv = 1.5e-2;
  p.dark_space = 1.5e-9;
  p.eps_ch = 13.9;
  return p;
}

}  // namespace carbon::device
