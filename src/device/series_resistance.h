#pragma once

/// @file series_resistance.h
/// Source/drain series resistance handling.  The paper's Fig. 4 shows how a
/// 50 kOhm resistance on each contact degrades an ideal CNTFET: the current
/// drops and the output characteristic becomes linear (saturation is pushed
/// out of the usable voltage window).  This wrapper reproduces exactly that
/// experiment for any intrinsic model.

#include "device/ivmodel.h"

namespace carbon::device {

/// Solve the internal bias of a transistor with external series resistors:
/// given external (vgs, vds) find I such that
///   I = intrinsic(vgs - I*rs, vds - I*(rs + rd)).
/// Works for both polarities; monotone in I so the root is unique.
double solve_with_series_resistance(const IDeviceModel& intrinsic, double vgs,
                                    double vds, double rs_ohm, double rd_ohm);

/// IDeviceModel adapter adding rs/rd around an intrinsic model.
class SeriesResistanceModel final : public IDeviceModel {
 public:
  SeriesResistanceModel(DeviceModelPtr intrinsic, double rs_ohm,
                        double rd_ohm);

  double drain_current(double vgs, double vds) const override;
  const std::string& name() const override { return name_; }
  Polarity polarity() const override { return intrinsic_->polarity(); }
  double width_normalization() const override {
    return intrinsic_->width_normalization();
  }
  NoiseParams noise_params() const override {
    return intrinsic_->noise_params();
  }

  double rs() const { return rs_; }
  double rd() const { return rd_; }

 private:
  DeviceModelPtr intrinsic_;
  double rs_, rd_;
  std::string name_;
};

}  // namespace carbon::device
