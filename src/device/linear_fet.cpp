#include "device/linear_fet.h"

#include <cmath>

#include "phys/fermi.h"
#include "phys/require.h"

namespace carbon::device {

LinearFetModel::LinearFetModel(LinearFetParams params)
    : params_(std::move(params)) {
  CARBON_REQUIRE(params_.k_s_per_v > 0.0, "k must be positive");
  CARBON_REQUIRE(params_.smooth_v > 0.0, "smoothing must be positive");
}

double LinearFetModel::conductance(double vgs) const {
  const double ov = params_.smooth_v *
                    phys::softplus((vgs - params_.v_t) / params_.smooth_v);
  return params_.k_s_per_v * ov + params_.g_off;
}

double LinearFetModel::drain_current(double vgs, double vds) const {
  return conductance(vgs) * vds;  // straight lines through the origin
}

LinearFetParams make_fig2_linear_params() {
  LinearFetParams p;
  p.name = "fig2-linear-fet";
  p.v_t = 0.0;
  p.k_s_per_v = 4.3e-4;  // I(1,1) ~ 0.43 mA, matching the saturating twin
  p.smooth_v = 0.05;
  return p;
}

}  // namespace carbon::device
