#pragma once

/// @file alpha_power.h
/// Sakurai–Newton alpha-power-law MOSFET: the classic "well-behaved FET
/// with current saturation" used for the paper's Fig. 2(a)/(c) inverter.
/// It saturates above Vdsat but keeps a finite output conductance — the
/// paper notes its Fig. 2(a) device is "a more realistic model as it has
/// not a perfect saturation behavior".

#include <string>

#include "device/ivmodel.h"

namespace carbon::device {

/// Alpha-power-law parameters.
struct AlphaPowerParams {
  std::string name = "alpha-power-fet";
  double v_t = 0.2;          ///< threshold voltage [V]
  double alpha = 1.3;        ///< velocity-saturation exponent (1..2)
  double k_sat = 60e-6;      ///< saturation current factor [A/V^alpha]
  double lambda = 0.08;      ///< channel-length modulation [1/V]
  double ss_mv_dec = 80.0;   ///< subthreshold swing [mV/dec]
  double i_off_floor = 1e-12;///< leakage floor [A]
  double width = 1e-6;       ///< normalization width [m]
};

/// n-type alpha-power-law FET with a smooth subthreshold tail.
class AlphaPowerModel final : public IDeviceModel {
 public:
  explicit AlphaPowerModel(AlphaPowerParams params);

  double drain_current(double vgs, double vds) const override;
  const std::string& name() const override { return params_.name; }
  double width_normalization() const override { return params_.width; }

  const AlphaPowerParams& params() const { return params_; }

 private:
  AlphaPowerParams params_;
};

/// The Fig. 2 inverter device: saturating I-V reaching ~0.4 mA at
/// VGS = 1 V (constant-field-scaled family as plotted in Fig. 2(a)).
AlphaPowerParams make_fig2_saturating_params();

}  // namespace carbon::device
