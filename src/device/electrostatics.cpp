#include "device/electrostatics.h"

#include <cmath>

#include "phys/constants.h"
#include "phys/require.h"

namespace carbon::device {

using phys::kEpsilon0;

double GateStack::insulator_capacitance() const {
  CARBON_REQUIRE(t_ox > 0.0 && diameter > 0.0 && eps_r > 0.0,
                 "gate stack dimensions must be positive");
  const double r = 0.5 * diameter;
  switch (geometry) {
    case GateGeometry::kGateAllAround:
      // Coaxial capacitor.
      return 2.0 * M_PI * kEpsilon0 * eps_r / std::log((r + t_ox) / r);
    case GateGeometry::kOmega: {
      // Wraps ~3/4 of the circumference.
      const double full =
          2.0 * M_PI * kEpsilon0 * eps_r / std::log((r + t_ox) / r);
      return 0.75 * full;
    }
    case GateGeometry::kPlanarTop:
    case GateGeometry::kPlanarBack:
      // Wire over an infinite plane at distance t_ox from the wire surface.
      return 2.0 * M_PI * kEpsilon0 * eps_r /
             std::acosh((r + t_ox) / r);
  }
  return 0.0;  // unreachable
}

double GateStack::alpha_g() const {
  switch (geometry) {
    case GateGeometry::kGateAllAround: return 0.97;
    case GateGeometry::kOmega:         return 0.92;
    case GateGeometry::kPlanarTop:     return 0.85;
    case GateGeometry::kPlanarBack:    return 0.55;
  }
  return 0.9;
}

double GateStack::alpha_d() const {
  switch (geometry) {
    case GateGeometry::kGateAllAround: return 0.015;
    case GateGeometry::kOmega:         return 0.03;
    case GateGeometry::kPlanarTop:     return 0.06;
    case GateGeometry::kPlanarBack:    return 0.18;
  }
  return 0.05;
}

double GateStack::total_capacitance() const {
  return insulator_capacitance() / alpha_g();
}

double scale_length(double eps_ch, double eps_ox, double t_ch, double t_ox) {
  CARBON_REQUIRE(eps_ch > 0.0 && eps_ox > 0.0 && t_ch > 0.0 && t_ox > 0.0,
                 "scale length inputs must be positive");
  return std::sqrt(eps_ch / eps_ox * t_ch * t_ox);
}

}  // namespace carbon::device
