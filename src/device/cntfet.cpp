#include "device/cntfet.h"

#include <cmath>

#include "device/series_resistance.h"
#include "phys/require.h"

namespace carbon::device {

/// Adapter exposing the intrinsic (resistance-free) device as an
/// IDeviceModel so the generic series-resistance solver can drive it.
class CntfetModel::IntrinsicView final : public IDeviceModel {
 public:
  explicit IntrinsicView(const CntfetModel& owner) : owner_(owner) {}
  double drain_current(double vgs, double vds) const override {
    return owner_.intrinsic_current(vgs, vds);
  }
  const std::string& name() const override { return owner_.name(); }

 private:
  const CntfetModel& owner_;
};

CntfetModel::~CntfetModel() = default;

CntfetModel::CntfetModel(CntfetParams params) : params_(std::move(params)) {
  CARBON_REQUIRE(params_.gate_length > 0.0, "gate length must be positive");
  CARBON_REQUIRE(params_.num_subbands >= 1, "need at least one subband");

  band::GrapheneParams gp;
  band::SubbandLadder ladder;
  if (params_.band_gap_override.has_value()) {
    band_gap_ = *params_.band_gap_override;
    ladder = band::make_cnt_ladder_from_gap(band_gap_, params_.num_subbands,
                                            gp);
    diameter_ = band::cnt_diameter_from_gap(band_gap_, gp);
  } else {
    band::CntBandStructure bs(params_.chirality, gp);
    CARBON_REQUIRE(!bs.is_metallic(),
                   "CNTFET channel must be a semiconducting tube");
    band_gap_ = bs.band_gap();
    ladder = bs.ladder(params_.num_subbands);
    diameter_ = bs.diameter();
  }
  // Keep the gate stack consistent with the tube geometry.
  params_.gate.diameter = diameter_;

  transport::TopOfBarrierParams tob;
  tob.ladder = std::move(ladder);
  tob.alpha_g = params_.alpha_g_override.value_or(params_.gate.alpha_g());
  tob.alpha_d = params_.alpha_d_override.value_or(params_.gate.alpha_d());
  tob.c_total = params_.gate.total_capacitance();
  tob.ef_source_ev = params_.ef_source_ev;
  tob.temperature_k = params_.temperature_k;
  tob.include_holes = params_.include_holes;
  tob.transmission = 1.0;  // per-bias transmission applied to the current
  solver_ = std::make_unique<transport::TopOfBarrierSolver>(tob);
  intrinsic_view_ = std::make_unique<IntrinsicView>(*this);
}

double CntfetModel::intrinsic_current(double vgs, double vds) const {
  // The model is defined for vds >= 0; use source/drain exchange symmetry
  // I(vgs, -vds) = -I(vgs - vds, vds) of a symmetric device for reverse
  // bias so the SPICE engine can hand us any operating point.
  if (vds < 0.0) return -intrinsic_current(vgs - vds, -vds);

  const double ballistic_i = solver_->current(vgs, vds);
  if (params_.ballistic) return ballistic_i;

  // Quasi-ballistic: low-field transmission through the channel.
  const double t_channel =
      params_.mfp.lambda_acoustic /
      (params_.mfp.lambda_acoustic + params_.gate_length);
  double i = ballistic_i * t_channel;

  // Optical-phonon ceiling: a smooth soft-min toward the per-tube
  // saturation current.  Preserves monotonicity in both terminals and the
  // saturating shape of the output characteristic.
  const double i_max = params_.op_current_ceiling_a;
  if (i_max > 0.0) {
    const double m = params_.op_ceiling_order;
    const double ratio = std::abs(i) / i_max;
    i = i / std::pow(1.0 + std::pow(ratio, m), 1.0 / m);
  }
  return i;
}

double CntfetModel::drain_current(double vgs, double vds) const {
  if (params_.r_source_ohm == 0.0 && params_.r_drain_ohm == 0.0) {
    return intrinsic_current(vgs, vds);
  }
  return solve_with_series_resistance(*intrinsic_view_, vgs, vds,
                                      params_.r_source_ohm,
                                      params_.r_drain_ohm);
}

CntfetParams make_fig1_cntfet_params() {
  CntfetParams p;
  p.name = "cnt-fet(Eg=0.56eV)";
  p.band_gap_override = 0.56;
  p.num_subbands = 3;
  p.gate_length = 15e-9;
  p.gate.geometry = GateGeometry::kGateAllAround;
  p.gate.t_ox = 2e-9;
  p.gate.eps_r = 16.0;
  p.ef_source_ev = -0.14;  // threshold ~0.35 V: on-current ~5 uA at 0.5 V
  p.ballistic = true;  // ref [3] simulated ballistic limits
  return p;
}

CntfetParams make_franklin_cntfet_params(double gate_length_m) {
  CntfetParams p;
  p.name = "cnt-fet(franklin)";
  p.chirality = {17, 0};  // d ~ 1.33 nm, Eg ~ 0.64 eV
  p.num_subbands = 3;
  p.gate_length = gate_length_m;
  p.gate.geometry = GateGeometry::kGateAllAround;
  p.gate.t_ox = 3e-9;
  p.gate.eps_r = 16.0;
  p.ef_source_ev = -0.06;  // ~20 uA at VGS=VDS=0.6 V (Franklin wrap gate)
  p.ballistic = false;
  return p;
}

}  // namespace carbon::device
