#include "device/real_gnr.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::device {

RealGnrModel::RealGnrModel(RealGnrParams params) : params_(std::move(params)) {
  CARBON_REQUIRE(params_.g_max_s > 0.0, "Gmax must be positive");
  CARBON_REQUIRE(params_.on_off_ratio > 1.0, "on/off ratio must exceed 1");
  CARBON_REQUIRE(params_.v_steep > 0.0, "steepness must be positive");
  g_min_ = params_.g_max_s / params_.on_off_ratio;
}

double RealGnrModel::conductance(double vgs) const {
  const double x = (vgs - params_.v_mid) / params_.v_steep;
  // Logistic between Gmin and Gmax on a log axis: the experimental transfer
  // curves are exponential below threshold and flatten at the sheet limit.
  const double sigma = 1.0 / (1.0 + std::exp(-x));
  const double log_g = std::log(g_min_) +
                       sigma * (std::log(params_.g_max_s) - std::log(g_min_));
  return std::exp(log_g);
}

double RealGnrModel::drain_current(double vgs, double vds) const {
  // The defining property: strictly linear output, no saturation.
  return conductance(vgs) * vds;
}

RealGnrParams make_wang_gnr_params() {
  RealGnrParams p;
  p.name = "gnr-real(wang08)";
  p.width = 8e-9;
  p.g_max_s = 2e3 * p.width;  // 2 mA/um at 1 V
  p.on_off_ratio = 1e6;
  p.v_mid = 1.5;
  p.v_steep = 0.35;
  return p;
}

}  // namespace carbon::device
