#include "device/series_resistance.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"
#include "phys/roots.h"

namespace carbon::device {

double solve_with_series_resistance(const IDeviceModel& intrinsic, double vgs,
                                    double vds, double rs_ohm, double rd_ohm) {
  CARBON_REQUIRE(rs_ohm >= 0.0 && rd_ohm >= 0.0,
                 "series resistances must be non-negative");
  if (rs_ohm == 0.0 && rd_ohm == 0.0) {
    return intrinsic.drain_current(vgs, vds);
  }
  const double i0 = intrinsic.drain_current(vgs, vds);
  if (i0 == 0.0) return 0.0;

  // F(I) = intrinsic(vgs - I rs, vds - I (rs+rd)) - I is strictly
  // decreasing in I (raising I lowers both internal drives), so the root is
  // bracketed by 0 and the ideal current i0 (for either current sign).
  const auto f = [&](double i) {
    return intrinsic.drain_current(vgs - i * rs_ohm,
                                   vds - i * (rs_ohm + rd_ohm)) -
           i;
  };
  double lo = std::min(0.0, i0);
  double hi = std::max(0.0, i0);
  // Guard against flat numerical edges: expand a hair.
  const double pad = 1e-3 * (hi - lo) + 1e-18;
  lo -= pad;
  hi += pad;
  return phys::brent(f, lo, hi, std::abs(i0) * 1e-10 + 1e-18);
}

SeriesResistanceModel::SeriesResistanceModel(DeviceModelPtr intrinsic,
                                             double rs_ohm, double rd_ohm)
    : intrinsic_(std::move(intrinsic)), rs_(rs_ohm), rd_(rd_ohm) {
  CARBON_REQUIRE(intrinsic_ != nullptr, "null intrinsic model");
  CARBON_REQUIRE(rs_ >= 0.0 && rd_ >= 0.0,
                 "series resistances must be non-negative");
  name_ = intrinsic_->name() + "+Rsd";
}

double SeriesResistanceModel::drain_current(double vgs, double vds) const {
  return solve_with_series_resistance(*intrinsic_, vgs, vds, rs_, rd_);
}

}  // namespace carbon::device
