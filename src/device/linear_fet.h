#pragma once

/// @file linear_fet.h
/// The "FET without current saturation" of the paper's Fig. 2(b)/(d): a
/// gate-steered triode that turns off below threshold but whose output
/// characteristic is a family of straight lines through the origin —
/// exactly the experimentally observed short-channel GNR behaviour.
///
/// With equally spaced linear output curves (conductance linear in the
/// gate overdrive, threshold near zero) the inverter built from a
/// complementary pair of these devices has a maximum absolute gain that
/// never exceeds unity, so its noise margins are zero: the paper's
/// Fig. 2(d).
///
/// Note the contrast with RealGnrModel: that model reproduces the
/// *measured* wide-sweep transfer data of refs [4,5] (a 1e6 on/off ratio
/// developed over several volts of back-gate drive), while LinearFetModel
/// is the idealized constant-field-scaled device of the Fig. 2 SPICE study.

#include <string>

#include "device/ivmodel.h"

namespace carbon::device {

/// Linear-FET parameters.
struct LinearFetParams {
  std::string name = "linear-fet";
  double v_t = 0.0;          ///< threshold [V] (Fig. 2(b) turns off ~0)
  double k_s_per_v = 4e-4;   ///< transconductance of G(vgs): G = k * ov [S/V]
  double smooth_v = 0.05;    ///< softplus smoothing of the overdrive [V]
  double g_off = 1e-10;      ///< off-state conductance floor [S]
  double width = 1e-6;       ///< normalization width [m]
};

/// Gate-steered linear resistor FET (no saturation whatsoever).
class LinearFetModel final : public IDeviceModel {
 public:
  explicit LinearFetModel(LinearFetParams params);

  double drain_current(double vgs, double vds) const override;
  const std::string& name() const override { return params_.name; }
  double width_normalization() const override { return params_.width; }

  /// G(vgs) [S].
  double conductance(double vgs) const;

  const LinearFetParams& params() const { return params_; }

 private:
  LinearFetParams params_;
};

/// Fig. 2(b) calibration: same on-current as the Fig. 2(a) saturating FET
/// at VGS = VDS = 1 V (~0.4 mA), equally spaced linear curves.
LinearFetParams make_fig2_linear_params();

}  // namespace carbon::device
