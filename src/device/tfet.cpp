#include "device/tfet.h"

#include <cmath>

#include "phys/constants.h"
#include "phys/fermi.h"
#include "phys/require.h"
#include "phys/roots.h"
#include "transport/btbt.h"

namespace carbon::device {

using phys::kBoltzmannEv;
using phys::kElectronMass;

CntTfetModel::CntTfetModel(CntTfetParams params) : params_(std::move(params)) {
  CARBON_REQUIRE(params_.band_gap_ev > 0.0, "band gap must be positive");
  CARBON_REQUIRE(params_.gate_efficiency > 0.0 &&
                     params_.gate_efficiency <= 1.0,
                 "gate efficiency must be in (0,1]");
  CARBON_REQUIRE(params_.tunnel_length > 0.0,
                 "tunnel length must be positive");
  m_tunnel_kg_ = params_.m_tunnel_rel * kElectronMass;
}

double CntTfetModel::tunnel_window_ev(double vgs, double vds) const {
  // Gate drive past onset plus the reverse diode bias both widen the
  // valence(i) / conduction(n) overlap.
  const double drive =
      params_.gate_efficiency * (params_.v_onset - vgs) + std::max(-vds, 0.0);
  // Smooth max(drive, 0): softplus with the configured smoothing width.
  const double w0 = params_.window_smoothing_ev;
  return w0 * phys::softplus(drive / w0);
}

double CntTfetModel::junction_field(double vgs, double vds) const {
  // The junction drops the full gap plus the opened window over the
  // screening length.
  const double drop = params_.band_gap_ev + tunnel_window_ev(vgs, vds);
  return drop / params_.tunnel_length;
}

double CntTfetModel::drain_current(double vgs, double vds) const {
  const double kt = kBoltzmannEv * params_.temperature_k;

  // --- forward diode branch (weakly gate modulated) ---
  // Solve I = Isat (exp((V - I Rs)/(n kT)) - 1) for the series-limited
  // junction; the residual is strictly decreasing in I.
  double i_forward = 0.0;
  if (vds > 0.0) {
    const double nvt = params_.diode_ideality * kt;
    const double rs = params_.diode_series_ohm;
    const auto diode_i = [&](double v_junction) {
      return params_.diode_i_sat_a *
             (std::exp(std::min(v_junction, 1.5) / nvt) - 1.0);
    };
    const double i_hi = diode_i(vds);  // zero-resistance bound
    const auto residual = [&](double i) { return diode_i(vds - i * rs) - i; };
    i_forward = (rs > 0.0) ? phys::brent(residual, 0.0, i_hi + 1e-30, 1e-18)
                           : i_hi;
    const double gate_mod =
        1.0 + params_.forward_gate_modulation * std::tanh(-vgs);
    i_forward *= gate_mod;
  }

  // --- reverse BTBT branch ---
  const double window = tunnel_window_ev(vgs, vds);
  const double t_wkb = params_.transmission_prefactor *
                       transport::btbt_transmission(
                           params_.band_gap_ev, m_tunnel_kg_,
                           junction_field(vgs, vds));
  // Occupation: the window must also be drained by the reverse bias; at
  // zero diode bias filled states face filled states and no net current
  // flows.  A thermal factor on the reverse bias captures this.
  const double drain_occupancy =
      (vds < 0.0) ? (1.0 - std::exp(vds / kt)) : 0.0;
  const double i_btbt =
      transport::btbt_current(t_wkb, window, 4) * drain_occupancy;
  // Reverse leakage floor.
  const double i_leak =
      (vds < 0.0) ? params_.leakage_floor_a * (1.0 - std::exp(vds / kt))
                  : 0.0;

  // Net terminal current: forward positive, reverse negative.
  return i_forward - i_btbt - i_leak;
}

CntTfetParams make_fig6_tfet_params() {
  return CntTfetParams{};  // defaults are the Fig. 6 calibration
}

TfetSwing measure_tfet_swing(const CntTfetModel& model, double vds,
                             double vg_stop, double decades) {
  CARBON_REQUIRE(vds < 0.0, "swing is defined on the reverse branch");
  CARBON_REQUIRE(decades > 0.0, "need a positive decade window");
  const double floor_a = model.params().leakage_floor_a;
  const double dv = 1e-3;

  TfetSwing out;
  out.i_on_a = std::abs(model.drain_current(vg_stop, vds));

  // Onset: first gate voltage with current 100x above the leakage floor.
  double vg_on = 0.5;
  bool found = false;
  for (double vg = 0.5; vg >= vg_stop; vg -= dv) {
    if (std::abs(model.drain_current(vg, vds)) > 100.0 * floor_a) {
      vg_on = vg;
      found = true;
      break;
    }
  }
  CARBON_REQUIRE(found, "device never turns on in the sweep window");
  out.vg_onset = vg_on;

  // Average swing: gate voltage needed for the next `decades` decades.
  const double i_start = std::abs(model.drain_current(vg_on, vds));
  const double i_target = i_start * std::pow(10.0, decades);
  double vg_end = vg_stop;
  for (double vg = vg_on; vg >= vg_stop; vg -= dv) {
    if (std::abs(model.drain_current(vg, vds)) >= i_target) {
      vg_end = vg;
      break;
    }
  }
  out.ss_avg_mv_dec = (vg_on - vg_end) / decades * 1e3;

  // Best local segment above 3x floor.
  double best = 1e12;
  double prev = std::abs(model.drain_current(0.5, vds));
  for (double vg = 0.5 - dv; vg >= vg_stop; vg -= dv) {
    const double cur = std::abs(model.drain_current(vg, vds));
    if (cur > prev && prev > 3.0 * floor_a) {
      best = std::min(best, dv / std::log10(cur / prev) * 1e3);
    }
    prev = cur;
  }
  out.ss_best_mv_dec = best;
  return out;
}

}  // namespace carbon::device
