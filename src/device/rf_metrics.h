#pragma once

/// @file rf_metrics.h
/// Small-signal / RF figures of merit.  Backs the paper's Section II
/// argument (via Schwierz, ref [8]): without current saturation a FET's
/// voltage gain gm/gds collapses, and with it the maximum frequency of
/// oscillation fmax — which is why non-saturating GNRs fail in RF no matter
/// how short the gate.

#include "device/ivmodel.h"

namespace carbon::device {

/// Small-signal snapshot of a device at a bias point.
struct SmallSignal {
  double gm_s = 0.0;         ///< transconductance [S]
  double gds_s = 0.0;        ///< output conductance [S]
  double gain = 0.0;         ///< intrinsic voltage gain gm/gds
  double ft_hz = 0.0;        ///< unity-current-gain frequency
  double fmax_hz = 0.0;      ///< maximum oscillation frequency
};

/// Parasitics used for the fT/fmax estimates.
struct RfParasitics {
  double c_gs = 50e-18;   ///< gate-source capacitance [F]
  double c_gd = 25e-18;   ///< gate-drain (Miller) capacitance [F]
  double r_gate = 50.0;   ///< gate resistance [Ohm]
  double r_source = 0.0;  ///< source access resistance [Ohm]
};

/// Extract gm, gds, gain and estimate fT and fmax at a bias point:
///   fT = gm / (2 pi (Cgs + Cgd)),
///   fmax = fT / (2 sqrt(gds (Rg + Rs) + 2 pi fT Rg Cgd)).
SmallSignal extract_small_signal(const IDeviceModel& m, double vgs, double vds,
                                 const RfParasitics& par = {});

}  // namespace carbon::device
