#include "device/alpha_power.h"

#include <cmath>

#include "phys/require.h"

namespace carbon::device {

AlphaPowerModel::AlphaPowerModel(AlphaPowerParams params)
    : params_(std::move(params)) {
  CARBON_REQUIRE(params_.alpha >= 1.0 && params_.alpha <= 2.0,
                 "alpha outside the physical 1..2 range");
  CARBON_REQUIRE(params_.k_sat > 0.0, "k_sat must be positive");
  CARBON_REQUIRE(params_.ss_mv_dec > 0.0, "SS must be positive");
}

double AlphaPowerModel::drain_current(double vgs, double vds) const {
  if (vds < 0.0) return -drain_current(vgs - vds, -vds);

  // Smooth overdrive: exponential subthreshold blending into (Vgs-Vt).
  const double ss_v = params_.ss_mv_dec * 1e-3 / std::log(10.0);  // V/e-fold
  const double ov = ss_v * std::log1p(std::exp((vgs - params_.v_t) / ss_v));

  const double i_dsat =
      params_.k_sat * std::pow(ov, params_.alpha) *
      (1.0 + params_.lambda * vds);
  // Vdsat scales with overdrive (alpha-power form: Vdsat = Kv * ov^(a/2)).
  const double v_dsat = std::max(0.9 * std::pow(ov, params_.alpha / 2.0),
                                 0.05);
  double i;
  if (vds >= v_dsat) {
    i = i_dsat;
  } else {
    const double x = vds / v_dsat;
    i = i_dsat * x * (2.0 - x);  // parabolic triode, C1 at the knee
  }
  return i + params_.i_off_floor * std::tanh(vds / 0.025);
}

AlphaPowerParams make_fig2_saturating_params() {
  AlphaPowerParams p;
  p.name = "fig2-saturating-fet";
  p.v_t = 0.2;
  p.alpha = 1.3;
  p.k_sat = 5.0e-4;   // ~0.4 mA at 1 V overdrive ^ 1.3 with lambda term
  p.lambda = 0.08;    // realistic, imperfect saturation
  p.ss_mv_dec = 80.0;
  p.width = 1e-6;
  return p;
}

}  // namespace carbon::device
