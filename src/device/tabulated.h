#pragma once

/// @file tabulated.h
/// Table-compiled device models.  TabulatedDeviceModel pre-samples any
/// IDeviceModel on a bias grid into a phys::BicubicTable, turning every
/// subsequent drain_current / eval call — and therefore every SPICE Newton
/// stamp — into a constant-time table lookup with analytic derivatives.
/// This is the fast path that makes VTC sweeps, SRAM SNM maps and Monte
/// Carlo studies on the self-consistent CNTFET/TFET models affordable.

#include <string>

#include "device/ivmodel.h"
#include "phys/interp.h"

namespace carbon::device {

/// Bias box and resolution of the table.
struct TabulatedGrid {
  double vgs_min = 0.0;
  double vgs_max = 1.0;
  int n_vgs = 97;

  double vds_min = 0.0;
  double vds_max = 1.0;
  int n_vds = 65;

  /// When true (default), the grid covers vds >= 0 only and queries with
  /// vds < 0 are answered through the source/drain exchange symmetry
  /// I(vgs, vds) = -I(vgs - vds, -vds) of a symmetric device — the same
  /// convention the CNTFET model uses internally.  The mirrored lookup
  /// lands at gate bias vgs - vds, so full accuracy at reverse bias needs
  /// vgs_max to exceed the largest expected vgs + |vds|; beyond that the
  /// edge patch extrapolates (C1, adequate for the transient excursions
  /// Newton makes near vds = 0).  Disable for devices that are asymmetric
  /// in vds (e.g. the gated-PIN TFET, whose reverse branch is the
  /// interesting one) and give a grid spanning negative vds.
  bool mirror_vds = true;
};

/// A device model compiled to a bicubic I–V table.
///
/// Accuracy is set by the grid resolution; for the smooth ballistic models
/// in this library the default grid holds the current to well under 1%
/// relative error across the box.  Queries outside the box continue
/// C1-linearly from the nearest edge point (Newton homotopy may visit such
/// points transiently; the linear extension cannot manufacture spurious
/// equilibria), but accuracy is only guaranteed inside.
class TabulatedDeviceModel final : public IDeviceModel {
 public:
  /// Samples @p base on @p grid ((n_vgs * n_vds) drain_current calls).
  TabulatedDeviceModel(DeviceModelPtr base, const TabulatedGrid& grid);

  double drain_current(double vgs, double vds) const override;
  /// Constant-time: one bicubic cell evaluation, derivatives analytic.
  DeviceEval eval(double vgs, double vds) const override;

  const std::string& name() const override { return name_; }
  Polarity polarity() const override { return base_->polarity(); }
  double width_normalization() const override {
    return base_->width_normalization();
  }
  NoiseParams noise_params() const override { return base_->noise_params(); }

  const TabulatedGrid& grid() const { return grid_; }
  /// The exact model the table was compiled from.
  const IDeviceModel& base() const { return *base_; }

 private:
  /// Table evaluation with the clamped linear extension past the box.
  phys::BicubicTable::Eval lookup(double vgs, double vds) const;

  DeviceModelPtr base_;
  TabulatedGrid grid_;
  phys::BicubicTable table_;  // axes: (vgs, vds)
  std::string name_;
};

/// Convenience: compile @p base over the bias box a digital cell at supply
/// @p v_max exercises, with a 10% guard band on every edge so Newton
/// iterates that overshoot the rails stay on the table.  Wrap the result in
/// PTypeMirror for the complementary device — the mirror adapter forwards
/// eval() with the chain rule, so the p-side is just as fast.
DeviceModelPtr make_tabulated(DeviceModelPtr base, double v_max,
                              int n_vgs = 97, int n_vds = 65);

}  // namespace carbon::device
