#pragma once

/// @file gnrfet.h
/// The *simulated* ballistic GNR-FET of the paper's Fig. 1 — an armchair
/// graphene nanoribbon channel inside the same self-consistent
/// top-of-barrier solver as the CNT-FET.  With the same band gap the two
/// transfer curves overlap on a log scale; the ribbon's 2-fold (vs 4-fold)
/// subband degeneracy shows up only as the small linear-scale difference the
/// paper points out.  (The *experimental* non-saturating GNR is
/// RealGnrModel in real_gnr.h.)

#include <optional>
#include <string>

#include "band/gnr.h"
#include "device/electrostatics.h"
#include "device/ivmodel.h"
#include "transport/top_of_barrier.h"

namespace carbon::device {

/// Construction parameters of a GnrfetModel.
struct GnrfetParams {
  std::string name = "gnrfet-sim";

  /// Ribbon width in dimer lines (N = 18 is the 2.1 nm / 0.56 eV ribbon of
  /// Fig. 1).
  int num_dimer_lines = 18;

  /// Edge-bond relaxation used by the band model.
  double edge_bond_relaxation = 0.0;

  /// Prescribe the gap directly (overrides the tight-binding value but
  /// keeps the subband spacing pattern).
  std::optional<double> band_gap_override;

  int num_subbands = 3;

  /// Gate stack; Fig. 1's simulation assumed ideal thin-oxide gating.
  GateStack gate;

  double ef_source_ev = -0.32;
  /// MOSFET-like doped contacts by default (no ambipolar hole branch).
  bool include_holes = false;
  double temperature_k = 300.0;
};

/// n-type ballistic armchair-GNR FET.
class GnrfetModel final : public IDeviceModel {
 public:
  explicit GnrfetModel(GnrfetParams params);

  double drain_current(double vgs, double vds) const override;
  const std::string& name() const override { return params_.name; }
  double width_normalization() const override { return width_; }

  const GnrfetParams& params() const { return params_; }
  double width() const { return width_; }
  double band_gap() const { return band_gap_; }
  const transport::TopOfBarrierSolver& barrier_solver() const {
    return *solver_;
  }

 private:
  GnrfetParams params_;
  double width_ = 0.0;
  double band_gap_ = 0.0;
  std::unique_ptr<transport::TopOfBarrierSolver> solver_;
};

/// The paper's Fig. 1 GNR-FET: w = 2.1 nm ribbon with Eg pinned to 0.56 eV.
GnrfetParams make_fig1_gnrfet_params();

}  // namespace carbon::device
