#include "device/ivmodel.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "phys/require.h"
#include "phys/roots.h"

namespace carbon::device {

DeviceEval IDeviceModel::eval(double vgs, double vds) const {
  DeviceEval e;
  e.id = drain_current(vgs, vds);
  e.gm = transconductance(*this, vgs, vds);
  e.gds = output_conductance(*this, vgs, vds);
  return e;
}

PTypeMirror::PTypeMirror(DeviceModelPtr n_model)
    : n_model_(std::move(n_model)) {
  CARBON_REQUIRE(n_model_ != nullptr, "null base model");
  CARBON_REQUIRE(n_model_->polarity() == Polarity::kNType,
                 "PTypeMirror expects an n-type base model");
  name_ = n_model_->name() + "/p";
}

double PTypeMirror::drain_current(double vgs, double vds) const {
  return -n_model_->drain_current(-vgs, -vds);
}

DeviceEval PTypeMirror::eval(double vgs, double vds) const {
  // Id_p(vgs, vds) = -Id_n(-vgs, -vds); the sign flips of current and
  // voltage cancel in both derivatives.
  DeviceEval e = n_model_->eval(-vgs, -vds);
  e.id = -e.id;
  return e;
}

double PTypeMirror::width_normalization() const {
  return n_model_->width_normalization();
}

GateShifted::GateShifted(DeviceModelPtr base, double shift_v)
    : base_(std::move(base)), shift_(shift_v) {
  CARBON_REQUIRE(base_ != nullptr, "null base model");
  name_ = base_->name() + "/shifted";
}

double GateShifted::drain_current(double vgs, double vds) const {
  return base_->drain_current(vgs + shift_, vds);
}

DeviceEval GateShifted::eval(double vgs, double vds) const {
  return base_->eval(vgs + shift_, vds);
}

WithNoise::WithNoise(DeviceModelPtr base, NoiseParams params)
    : base_(std::move(base)), params_(params) {
  CARBON_REQUIRE(base_ != nullptr, "null base model");
  CARBON_REQUIRE(params.gamma >= 0.0 && params.kf >= 0.0 && params.af > 0.0,
                 "noise parameters must be non-negative (af > 0)");
}

DeviceModelPtr with_noise(DeviceModelPtr base, NoiseParams params) {
  return std::make_shared<WithNoise>(std::move(base), params);
}

double transconductance(const IDeviceModel& m, double vgs, double vds,
                        double h) {
  return (m.drain_current(vgs + h, vds) - m.drain_current(vgs - h, vds)) /
         (2.0 * h);
}

double output_conductance(const IDeviceModel& m, double vgs, double vds,
                          double h) {
  return (m.drain_current(vgs, vds + h) - m.drain_current(vgs, vds - h)) /
         (2.0 * h);
}

double intrinsic_gain(const IDeviceModel& m, double vgs, double vds) {
  const double gm = std::abs(transconductance(m, vgs, vds));
  const double gds = std::abs(output_conductance(m, vgs, vds));
  return gds > 0.0 ? gm / gds : 1e12;
}

double subthreshold_swing_mv_dec(const IDeviceModel& m, double vgs_lo,
                                 double vgs_hi, double vds) {
  CARBON_REQUIRE(vgs_hi != vgs_lo, "need distinct gate voltages");
  const double i_lo = std::abs(m.drain_current(vgs_lo, vds));
  const double i_hi = std::abs(m.drain_current(vgs_hi, vds));
  CARBON_REQUIRE(i_lo > 0.0 && i_hi > 0.0 && i_lo != i_hi,
                 "transfer curve is flat or zero in the requested range");
  const double decades = std::log10(i_hi / i_lo);
  return (vgs_hi - vgs_lo) / decades * 1e3;
}

double min_point_swing_mv_dec(const IDeviceModel& m, double vgs_lo,
                              double vgs_hi, double vds, int points) {
  CARBON_REQUIRE(points >= 3, "need at least 3 points");
  const double dv = (vgs_hi - vgs_lo) / (points - 1);
  double best = 1e12;
  double prev = std::abs(m.drain_current(vgs_lo, vds));
  for (int i = 1; i < points; ++i) {
    const double cur = std::abs(m.drain_current(vgs_lo + i * dv, vds));
    if (prev > 0.0 && cur > prev) {
      const double ss = dv / std::log10(cur / prev) * 1e3;
      best = std::min(best, std::abs(ss));
    }
    prev = cur;
  }
  return best;
}

double threshold_voltage(const IDeviceModel& m, double i_crit_a, double vds,
                         double vgs_lo, double vgs_hi) {
  CARBON_REQUIRE(i_crit_a > 0.0, "critical current must be positive");
  const auto f = [&](double vgs) {
    return std::log10(std::max(std::abs(m.drain_current(vgs, vds)), 1e-30)) -
           std::log10(i_crit_a);
  };
  return phys::brent(f, vgs_lo, vgs_hi, 1e-6);
}

double dibl_mv_per_v(const IDeviceModel& m, double i_crit_a, double vds_lin,
                     double vds_sat, double vgs_lo, double vgs_hi) {
  const double vt_lin = threshold_voltage(m, i_crit_a, vds_lin, vgs_lo, vgs_hi);
  const double vt_sat = threshold_voltage(m, i_crit_a, vds_sat, vgs_lo, vgs_hi);
  return (vt_lin - vt_sat) / (vds_sat - vds_lin) * 1e3;
}

phys::DataTable transfer_curve(const IDeviceModel& m, double vgs_lo,
                               double vgs_hi, int points, double vds) {
  CARBON_REQUIRE(points >= 2, "need at least 2 points");
  phys::DataTable t({"vgs_v", "id_a"});
  for (int i = 0; i < points; ++i) {
    const double vgs = vgs_lo + (vgs_hi - vgs_lo) * i / (points - 1);
    t.add_row({vgs, m.drain_current(vgs, vds)});
  }
  return t;
}

phys::DataTable output_family(const IDeviceModel& m, double vds_lo,
                              double vds_hi, int points,
                              const std::vector<double>& vgs_values) {
  CARBON_REQUIRE(points >= 2, "need at least 2 points");
  CARBON_REQUIRE(!vgs_values.empty(), "need at least one gate voltage");
  std::vector<std::string> cols{"vds_v"};
  for (double vg : vgs_values) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "id_a@vg=%.3g", vg);
    cols.emplace_back(buf);
  }
  phys::DataTable t(cols);
  for (int i = 0; i < points; ++i) {
    const double vds = vds_lo + (vds_hi - vds_lo) * i / (points - 1);
    std::vector<double> row{vds};
    for (double vg : vgs_values) row.push_back(m.drain_current(vg, vds));
    t.add_row(row);
  }
  return t;
}

}  // namespace carbon::device
