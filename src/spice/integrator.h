#pragma once

/// @file integrator.h
/// The adaptive-transient building blocks: a local-truncation-error (LTE)
/// step-size controller and the polynomial predictor history it feeds on.
///
/// The transient engine integrates with an implicit corrector (trapezoidal
/// after start-up, backward Euler at discontinuities) and estimates the
/// corrector's LTE from its divergence from an explicit polynomial
/// predictor extrapolated through the previous accepted solutions.  With
/// step h into the new point and previous accepted steps h1, h2 the
/// classic divided-difference error constants give
///
///   predictor (quadratic):  E_p =  x'''/6 * h (h+h1) (h+h1+h2)
///   trapezoidal corrector:  E_c = -x'''/12 * h^3
///   predictor (linear):     E_p =  x''/2  * h (h+h1)
///   backward Euler:         E_c = -x''/2  * h^2
///
/// so |LTE| = |x_corr - x_pred| * |E_c| / |E_p - E_c|, a factor that
/// depends only on the step history.  The controller turns the worst
/// per-node ratio of LTE against tolerance into an accept/reject decision
/// and the next step size (growth/shrink clamped, bounded by dt_min/max).
/// Both pieces are pure and independently unit-tested.

#include <vector>

namespace carbon::spice {

/// Tolerances and limits of the LTE step controller.
struct LteControlConfig {
  double reltol = 1e-3;       ///< relative LTE tolerance per node
  double abstol = 1e-6;       ///< absolute LTE tolerance [V]
  double trtol = 7.0;         ///< SPICE-style LTE overestimation factor
  double safety = 0.9;        ///< target a fraction of the allowed error
  double growth_limit = 2.0;  ///< max step growth per accepted step
  double shrink_limit = 0.1;  ///< max step shrink per rejected step
  double dt_min = 0.0;        ///< smallest step; a step at the floor is
                              ///< always accepted (progress guarantee)
  double dt_max = 0.0;        ///< largest step (waveform sampling bound)

  /// PI (proportional–integral, Gustafsson-style) step control.  The
  /// classic deadbeat rule grows every in-tolerance step by
  /// safety * r^(-1/order), which on fast waveforms walks the step
  /// straight past the tolerance and rejects (~18% of ring-oscillator
  /// steps): the controller has no memory of the error *trend*.  With pi
  /// enabled, step() adds a proportional term against the previous
  /// accepted step's error ratio,
  ///   dt_next = dt * safety * r^(-ki/order) * (r_prev/r)^(kp/order),
  /// damping growth while the error is rising and capping regrowth right
  /// after a rejection.  decide() stays the stateless deadbeat rule.
  bool pi = false;
  double pi_ki = 0.4;  ///< integral exponent numerator
  double pi_kp = 0.6;  ///< proportional exponent numerator
};

/// Accept/reject + next-step policy from a scalar error ratio.  One
/// instance serves a whole transient run; only the PI path (step()) keeps
/// state between calls.
class LteController {
 public:
  explicit LteController(const LteControlConfig& cfg);

  struct Decision {
    bool accept = false;
    double dt_next = 0.0;
  };

  /// Decide on a step of size @p dt whose worst LTE/tolerance ratio is
  /// @p err_ratio (<= 1 means within tolerance).  @p error_order is the
  /// corrector's local error order: 2 for backward Euler (error ~ h^2),
  /// 3 for trapezoidal (error ~ h^3).  A step already at dt_min is always
  /// accepted so the engine cannot stall.  Stateless deadbeat rule.
  Decision decide(double dt, double err_ratio, int error_order) const;

  /// The decision the transient engine calls: with config().pi, applies
  /// the PI growth law against the previous accepted step's error ratio
  /// (first step after reset_history() falls back to decide()); without
  /// it, exactly decide().  Call reset_history() wherever the integrator
  /// restarts (breakpoints, Newton failures) — the stored error belongs
  /// to the abandoned trajectory.
  Decision step(double dt, double err_ratio, int error_order);

  /// Forget the PI error history.
  void reset_history();

  const LteControlConfig& config() const { return cfg_; }

 private:
  LteControlConfig cfg_;
  double prev_ratio_ = -1.0;    ///< error ratio of the last accepted step
  bool just_rejected_ = false;  ///< cap regrowth on the next accept
};

/// Ring of the last two accepted solutions, feeding the explicit predictor
/// (which doubles as the Newton warm start) and the divided-difference LTE
/// factor.  reset() after a waveform discontinuity: extrapolating across a
/// source corner would poison both.
class PredictorHistory {
 public:
  /// Forget everything (history restarts from the next accepted point).
  void reset();

  /// Record that the engine accepted a step of size @p h_s that started
  /// from @p x_old (the previously current solution).
  void advance(const std::vector<double>& x_old, double h_s);

  /// Accepted points available, counting the engine's current solution:
  /// 1 right after reset, 2 after one accepted step, capped at 3.
  int depth() const { return depth_; }

  /// Polynomial predictor order usable for a step from the current
  /// solution: 0 (none), 1 (linear) or 2 (quadratic).
  int order() const { return depth_ - 1 > 2 ? 2 : depth_ - 1; }

  /// Extrapolate @p h_s past the current solution @p x_now into @p out
  /// (resized).  Returns the predictor order used; 0 leaves out = x_now.
  int predict(const std::vector<double>& x_now, double h_s,
              std::vector<double>& out) const;

  /// |LTE| = factor * |x_corr - x_pred| for a step of size @p h_s with the
  /// given corrector and the predictor order @p pred_order that produced
  /// x_pred.  Requires pred_order >= 1.
  double lte_factor(double h_s, bool trapezoidal, int pred_order) const;

 private:
  std::vector<double> x1_, x2_;  ///< previous / before-previous solutions
  double h1_ = 0.0, h2_ = 0.0;   ///< step sizes that produced them
  int depth_ = 1;
};

/// Worst per-node ratio |x_corr - x_pred| * factor / (trtol * (abstol +
/// reltol * max(|corr|, |pred|))) over the first @p n_nodes entries (node
/// voltages only; branch currents are not LTE-controlled).
double lte_error_ratio(const std::vector<double>& x_corr,
                       const std::vector<double>& x_pred, int n_nodes,
                       double factor, const LteControlConfig& cfg);

/// Worst per-entry ratio |a[i] - b[i]| / (abstol + reltol * max(|a[i]|,
/// |b[i]|)) over the first @p n entries — movement between two states in
/// Newton-tolerance units.  The pseudo-transient continuation uses it as
/// its settledness measure: a pseudo-step whose ratio drops below 1 moved
/// the solution less than the Newton tolerance, so the trajectory has
/// reached (pseudo-)steady state.
double max_update_ratio(const std::vector<double>& a,
                        const std::vector<double>& b, int n, double abstol,
                        double reltol);

/// Sort, clip to (0, t_stop) and dedupe (within a relative epsilon) a raw
/// breakpoint list collected from the circuit's sources.
std::vector<double> merge_breakpoints(std::vector<double> pts, double t_stop);

}  // namespace carbon::spice
