#include "spice/ensemble.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "obs/trace.h"
#include "phys/parallel.h"
#include "phys/require.h"
#include "spice/elements.h"

namespace carbon::spice {

namespace {

using Clock = std::chrono::steady_clock;

long long elapsed_ns(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              since)
      .count();
}

// ---------------------------------------------------------------------------
// Checkpoint format (single-host binary, bit-exact doubles):
//
//   header : u32 magic | u32 version | u64 config_hash | i64 num_trials
//   record : u32 marker | u32 payload_size | payload
//
// Records are appended (and flushed) one per completed trial, so a killed
// run leaves at most one torn record at the tail.  The loader accepts every
// intact prefix and truncates the rest: resume never needs a clean
// shutdown.  The config hash folds seed / trial count / retry budget / the
// caller's config_tag, so a checkpoint is only ever replayed into the run
// that produced it.
//
// Persisted per trial: identity, disposition, retries, wall time, metric,
// the structured failure core (stage / cause / bad row / culprit / message)
// and the headline work counters.  Per-node attribution lists and eval
// counters are diagnostics of the original run and are not carried across
// a resume.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kMagic = 0x454e5343;         // "ENSC"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kRecordMarker = 0x5452494c;  // "TRIL"
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8;
constexpr std::uint32_t kMaxRecordBytes = 1u << 20;

void put_bytes(std::string& buf, const void* p, std::size_t n) {
  buf.append(static_cast<const char*>(p), n);
}

template <typename T>
void put(std::string& buf, T v) {
  put_bytes(buf, &v, sizeof v);
}

void put_str(std::string& buf, const std::string& s) {
  put<std::uint32_t>(buf, static_cast<std::uint32_t>(s.size()));
  buf.append(s);
}

struct ByteReader {
  const char* p;
  const char* end;

  template <typename T>
  bool get(T& v) {
    if (static_cast<std::size_t>(end - p) < sizeof v) return false;
    std::memcpy(&v, p, sizeof v);
    p += sizeof v;
    return true;
  }
  bool get_str(std::string& s) {
    std::uint32_t n = 0;
    if (!get(n)) return false;
    if (static_cast<std::size_t>(end - p) < n) return false;
    s.assign(p, n);
    p += n;
    return true;
  }
};

std::string serialize_record(const TrialResult& r) {
  std::string payload;
  payload.reserve(128);
  put<std::int64_t>(payload, r.index);
  put<std::uint8_t>(payload, r.ok ? 1 : 0);
  put<std::uint8_t>(payload, r.pass ? 1 : 0);
  put<std::int32_t>(payload, static_cast<std::int32_t>(r.outcome));
  put<std::int32_t>(payload, r.retries);
  put<std::int64_t>(payload, r.wall_ns);
  put<double>(payload, r.metric);
  put<std::int32_t>(payload, static_cast<std::int32_t>(r.failure.stage));
  put<std::int32_t>(payload, static_cast<std::int32_t>(r.failure.cause));
  put<std::int32_t>(payload, r.failure.bad_row);
  put_str(payload, r.failure.culprit);
  put_str(payload, r.error);
  put<std::int64_t>(payload, r.stats.steps_accepted);
  put<std::int64_t>(payload, r.stats.steps_rejected_lte);
  put<std::int64_t>(payload, r.stats.steps_rejected_newton);
  put<std::int64_t>(payload, r.stats.newton_iterations);
  put<std::int64_t>(payload, r.stats.breakpoints_hit);
  put<std::int64_t>(payload, r.stats.jacobian_reuses);
  put<std::int64_t>(payload, r.stats.orchestrator_recoveries);
  put<double>(payload, r.stats.dt_smallest);
  put<double>(payload, r.stats.dt_largest);
  put<std::int32_t>(payload, static_cast<std::int32_t>(r.stats.op.stage));
  put<std::int32_t>(payload, r.stats.op.iterations);
  put<std::int64_t>(payload, r.stats.op.ptc_steps);

  std::string record;
  record.reserve(payload.size() + 8);
  put<std::uint32_t>(record, kRecordMarker);
  put<std::uint32_t>(record, static_cast<std::uint32_t>(payload.size()));
  record.append(payload);
  return record;
}

bool parse_record(ByteReader& in, TrialResult& r) {
  std::int64_t index = 0;
  std::uint8_t ok = 0, pass = 0;
  std::int32_t outcome = 0, retries = 0;
  std::int64_t wall_ns = 0;
  std::int32_t f_stage = 0, f_cause = 0, f_bad_row = 0;
  std::int32_t op_stage = 0, op_iterations = 0;
  if (!in.get(index) || !in.get(ok) || !in.get(pass) || !in.get(outcome) ||
      !in.get(retries) || !in.get(wall_ns) || !in.get(r.metric) ||
      !in.get(f_stage) || !in.get(f_cause) || !in.get(f_bad_row) ||
      !in.get_str(r.failure.culprit) || !in.get_str(r.error) ||
      !in.get(r.stats.steps_accepted) || !in.get(r.stats.steps_rejected_lte) ||
      !in.get(r.stats.steps_rejected_newton) ||
      !in.get(r.stats.newton_iterations) || !in.get(r.stats.breakpoints_hit) ||
      !in.get(r.stats.jacobian_reuses) ||
      !in.get(r.stats.orchestrator_recoveries) ||
      !in.get(r.stats.dt_smallest) || !in.get(r.stats.dt_largest) ||
      !in.get(op_stage) || !in.get(op_iterations) ||
      !in.get(r.stats.op.ptc_steps)) {
    return false;
  }
  if (outcome < 0 || outcome > static_cast<int>(TrialOutcome::kError)) {
    return false;
  }
  r.index = index;
  r.ok = ok != 0;
  r.pass = pass != 0;
  r.outcome = static_cast<TrialOutcome>(outcome);
  r.retries = retries;
  r.wall_ns = wall_ns;
  r.failure.stage = static_cast<SolveStage>(f_stage);
  r.failure.cause = static_cast<SolveFailure::Cause>(f_cause);
  r.failure.bad_row = f_bad_row;
  r.stats.op.stage = static_cast<SolveStage>(op_stage);
  r.stats.op.iterations = op_iterations;
  r.from_checkpoint = true;
  return true;
}

std::uint64_t config_hash(const EnsembleOptions& opts, long num_trials) {
  std::uint64_t h = phys::stream_seed(opts.seed, 0x9d);
  h = phys::stream_seed(h, static_cast<std::uint64_t>(num_trials));
  h = phys::stream_seed(h, static_cast<std::uint64_t>(opts.max_retries));
  for (unsigned char c : opts.config_tag) h = phys::stream_seed(h, c);
  return h;
}

/// Incremental checkpoint file: load on construction context, append per
/// completed trial.  All methods assume external serialization (the runner
/// holds a mutex around append()).
class Checkpoint {
 public:
  Checkpoint(const EnsembleOptions& opts, long num_trials)
      : path_(opts.checkpoint_path),
        hash_(config_hash(opts, num_trials)),
        num_trials_(num_trials) {}

  bool enabled() const { return !path_.empty(); }

  /// Load every intact record into @p trials (marking from_checkpoint),
  /// truncate any torn tail, and leave the file open for appending.
  /// Returns the number of trials restored.
  long load(std::vector<TrialResult>& trials) {
    if (!enabled()) return 0;

    std::string data;
    {
      std::ifstream in(path_, std::ios::binary);
      if (in) {
        data.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
      }
    }

    long loaded = 0;
    std::size_t valid_end = 0;
    if (data.size() >= kHeaderBytes) {
      ByteReader head{data.data(), data.data() + kHeaderBytes};
      std::uint32_t magic = 0, version = 0;
      std::uint64_t hash = 0;
      std::int64_t trials_in_file = 0;
      head.get(magic);
      head.get(version);
      head.get(hash);
      head.get(trials_in_file);
      CARBON_REQUIRE(magic == kMagic && version == kVersion,
                     "'" + path_ + "' is not an ensemble checkpoint");
      CARBON_REQUIRE(
          hash == hash_ && trials_in_file == num_trials_,
          "checkpoint '" + path_ +
              "' was written by a different ensemble configuration "
              "(seed/trials/retries/config_tag); refusing to mix results");
      valid_end = kHeaderBytes;
      while (true) {
        std::uint32_t marker = 0, size = 0;
        ByteReader frame{data.data() + valid_end, data.data() + data.size()};
        if (!frame.get(marker) || marker != kRecordMarker) break;
        if (!frame.get(size) || size > kMaxRecordBytes) break;
        if (static_cast<std::size_t>(frame.end - frame.p) < size) break;
        ByteReader body{frame.p, frame.p + size};
        TrialResult r;
        if (!parse_record(body, r)) break;
        if (r.index >= 0 && r.index < num_trials_) {
          if (!trials[r.index].from_checkpoint) ++loaded;
          trials[r.index] = std::move(r);
        }
        valid_end += 8 + size;
      }
    }

    if (valid_end == 0) {
      // Absent, torn-header or foreign-free file: start a fresh checkpoint.
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      CARBON_REQUIRE(out.good(),
                     "cannot create checkpoint file '" + path_ + "'");
      std::string header;
      put<std::uint32_t>(header, kMagic);
      put<std::uint32_t>(header, kVersion);
      put<std::uint64_t>(header, hash_);
      put<std::int64_t>(header, num_trials_);
      out.write(header.data(), static_cast<std::streamsize>(header.size()));
      out.flush();
    } else if (valid_end < data.size()) {
      std::filesystem::resize_file(path_, valid_end);
    }

    out_.open(path_, std::ios::binary | std::ios::app);
    CARBON_REQUIRE(out_.good(),
                   "cannot open checkpoint file '" + path_ + "' for append");
    return loaded;
  }

  void append(const TrialResult& r) {
    const std::string record = serialize_record(r);
    out_.write(record.data(), static_cast<std::streamsize>(record.size()));
    out_.flush();
  }

 private:
  std::string path_;
  std::uint64_t hash_ = 0;
  long num_trials_ = 0;
  std::ofstream out_;
};

}  // namespace

const char* solve_cause_name(SolveFailure::Cause cause) {
  switch (cause) {
    case SolveFailure::Cause::kMaxIterations: return "max-iterations";
    case SolveFailure::Cause::kSingular: return "singular";
    case SolveFailure::Cause::kNonFinite: return "non-finite";
    case SolveFailure::Cause::kStalled: return "stalled";
  }
  return "?";
}

const char* trial_outcome_name(TrialOutcome outcome) {
  switch (outcome) {
    case TrialOutcome::kOk: return "ok";
    case TrialOutcome::kSolveFailure: return "solve_failure";
    case TrialOutcome::kNonFinite: return "non_finite";
    case TrialOutcome::kSingular: return "singular";
    case TrialOutcome::kTimedOut: return "timed_out";
    case TrialOutcome::kCancelled: return "cancelled";
    case TrialOutcome::kError: return "error";
  }
  return "?";
}

std::string TrialResult::taxonomy() const {
  switch (outcome) {
    case TrialOutcome::kOk:
      return "ok";
    case TrialOutcome::kSolveFailure:
      return std::string("solve-failure/") + solve_stage_name(failure.stage) +
             "/" + solve_cause_name(failure.cause);
    case TrialOutcome::kNonFinite: return "non-finite-eval";
    case TrialOutcome::kSingular: return "singular-matrix";
    case TrialOutcome::kTimedOut: return "timed-out";
    case TrialOutcome::kCancelled: return "cancelled";
    case TrialOutcome::kError: return "error";
  }
  return "?";
}

TransientOptions TrialContext::tuned(TransientOptions base) const {
  base.solver = solver;
  EnsembleRunner::escalate_transient(base, attempt);
  return base;
}

SolverOptions EnsembleRunner::escalate_solver(const SolverOptions& base,
                                              int attempt) {
  SolverOptions o = base;
  if (attempt <= 0) return o;
  // A retry means the base options already lost; stop being polite.  Open
  // the whole ladder, add iteration/rung/pseudo-step headroom per attempt,
  // and tighten the Newton damping — smaller per-step moves converge more
  // corners at the price of more iterations, which we just granted.
  o.allow_gmin_stepping = true;
  o.allow_source_stepping = true;
  o.allow_pseudo_transient = true;
  const int boost = 1 << std::min(attempt, 4);
  o.max_iterations = std::min(2000, base.max_iterations * boost);
  o.gmin_max_rungs = base.gmin_max_rungs + 32 * attempt;
  o.source_max_rungs = base.source_max_rungs + 32 * attempt;
  o.ptc_max_steps = base.ptc_max_steps + 500 * attempt;
  o.v_step_limit =
      std::max(0.05, base.v_step_limit / (1 << std::min(attempt, 3)));
  return o;
}

void EnsembleRunner::escalate_transient(TransientOptions& tran, int attempt) {
  if (attempt <= 0) return;
  const double shrink = std::pow(4.0, std::min(attempt, 5));
  tran.dt /= shrink;
  if (tran.dt_min > 0.0) tran.dt_min /= shrink;
  tran.max_step_halvings += 4 * attempt;
}

EnsembleRunner::RunOne EnsembleRunner::run_one(
    long index, const TrialFn& fn, const phys::CancelToken& batch) const {
  RunOne out;
  TrialResult& r = out.result;
  r.index = index;
  obs::ScopedSpan trial_span("ensemble-trial");
  const auto t0 = Clock::now();

  for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    if (batch.stopped()) {
      // Batch-level stop before this attempt started: record why the trial
      // never ran, and keep it out of the checkpoint so a resumed run
      // executes it for real.
      r.ok = false;
      r.outcome = batch.cancelled() ? TrialOutcome::kCancelled
                                    : TrialOutcome::kTimedOut;
      r.error = batch.cancelled() ? "batch cancelled before the trial ran"
                                  : "batch deadline expired before the trial "
                                    "ran";
      out.terminal = false;
      break;
    }

    phys::CancelToken trial_token(&batch);
    if (opts_.trial_deadline_s > 0.0) {
      trial_token.set_deadline_after(opts_.trial_deadline_s);
    }
    SolverOptions solver = escalate_solver(opts_.solver, attempt);
    solver.cancel = &trial_token;
    // A fresh stream per attempt: the retry redraws the *same* perturbed
    // device, so escalation changes only the solve strategy, and trial
    // results stay independent of how many retries other trials burned.
    phys::Rng rng(phys::stream_seed(opts_.seed, static_cast<std::uint64_t>(index)));
    TrialContext ctx{index, attempt, rng, solver, &trial_token};
    r.retries = attempt;

    try {
      TrialMeasurement m = fn(ctx);
      r.ok = true;
      r.pass = m.pass;
      r.metric = m.metric;
      r.stats = m.stats;
      r.outcome = TrialOutcome::kOk;
      r.failure = SolveFailure{};
      r.error.clear();
      break;
    } catch (const phys::CancelledError& e) {
      r.ok = false;
      r.error = e.what();
      if (batch.stopped()) {
        // The batch pulled the plug mid-trial; this is not the trial's own
        // fault, so it is re-runnable on resume.
        r.outcome = batch.cancelled() ? TrialOutcome::kCancelled
                                      : TrialOutcome::kTimedOut;
        out.terminal = false;
      } else {
        r.outcome = TrialOutcome::kTimedOut;
      }
      break;  // the wall budget is spent: retrying would time out again
    } catch (const SolveFailureError& e) {
      r.ok = false;
      r.outcome = TrialOutcome::kSolveFailure;
      r.failure = e.failure();
      r.error = e.what();
    } catch (const NonFiniteEvalError& e) {
      r.ok = false;
      r.outcome = TrialOutcome::kNonFinite;
      r.failure.culprit = e.element();
      r.error = e.what();
    } catch (const phys::SingularMatrixError& e) {
      r.ok = false;
      r.outcome = TrialOutcome::kSingular;
      r.failure.bad_row = e.row();
      r.error = e.what();
    } catch (const std::exception& e) {
      r.ok = false;
      r.outcome = TrialOutcome::kError;
      r.error = e.what();
    }
    // Structured failure: fall through into the next escalated attempt.
  }

  r.wall_ns = elapsed_ns(t0);
  return out;
}

EnsembleResult EnsembleRunner::run(long num_trials,
                                   const WorkerFactory& make_worker) const {
  CARBON_REQUIRE(num_trials > 0, "ensemble needs at least one trial");
  CARBON_REQUIRE(make_worker != nullptr, "ensemble needs a worker factory");
  const auto t_start = Clock::now();

  EnsembleResult res;
  res.trials.resize(static_cast<std::size_t>(num_trials));
  for (long i = 0; i < num_trials; ++i) res.trials[i].index = i;

  Checkpoint ckpt(opts_, num_trials);
  const long loaded = ckpt.load(res.trials);

  phys::CancelToken batch(opts_.cancel);
  if (opts_.batch_deadline_s > 0.0) {
    batch.set_deadline_after(opts_.batch_deadline_s);
  }

  std::vector<long> pending;
  pending.reserve(static_cast<std::size_t>(num_trials - loaded));
  for (long i = 0; i < num_trials; ++i) {
    if (!res.trials[i].from_checkpoint) pending.push_back(i);
  }

  if (!pending.empty()) {
    std::mutex ckpt_mutex;
    std::atomic<int> next_worker{0};
    // Propagate the caller's tracer onto the worker threads: each worker
    // records into its own ring, so trial spans stay lock-free.
    obs::Tracer* const parent_tracer = obs::tracer();
    phys::parallel_for(
        static_cast<long>(pending.size()),
        [&](long begin, long end) {
          obs::TraceAttach trace_attach(parent_tracer);
          const int worker =
              next_worker.fetch_add(1, std::memory_order_relaxed);
          TrialFn fn = make_worker(worker);
          CARBON_REQUIRE(fn != nullptr,
                         "worker factory returned a null trial function");
          for (long k = begin; k < end; ++k) {
            RunOne out = run_one(pending[k], fn, batch);
            if (out.terminal && ckpt.enabled()) {
              std::lock_guard<std::mutex> lock(ckpt_mutex);
              ckpt.append(out.result);
            }
            res.trials[static_cast<std::size_t>(pending[k])] =
                std::move(out.result);
          }
        },
        opts_.num_threads);
  }

  EnsembleSummary& s = res.summary;
  s.trials = num_trials;
  for (const TrialResult& r : res.trials) {
    if (r.from_checkpoint) ++s.from_checkpoint;
    if (r.retries > 0) {
      ++s.retried_trials;
      s.retries_total += r.retries;
    }
    if (r.ok) {
      ++s.ok;
      if (r.pass) ++s.passed;
      if (r.retries > 0) ++s.recovered_by_retry;
    } else {
      ++s.failure_taxonomy[r.taxonomy()];
      switch (r.outcome) {
        case TrialOutcome::kTimedOut: ++s.timed_out; break;
        case TrialOutcome::kCancelled: ++s.cancelled; break;
        default: ++s.failed; break;
      }
    }
  }
  s.yield = static_cast<double>(s.passed) / static_cast<double>(num_trials);
  s.threads =
      opts_.num_threads > 0 ? opts_.num_threads : phys::default_num_threads();
  s.wall_s = static_cast<double>(elapsed_ns(t_start)) * 1e-9;
  return res;
}

core::Json to_json(const SolveFailure& failure) {
  auto j = core::Json::object();
  j.set("stage", solve_stage_name(failure.stage));
  j.set("cause", solve_cause_name(failure.cause));
  j.set("bad_row", failure.bad_row);
  j.set("culprit", failure.culprit);
  auto worst = core::Json::array();
  for (const auto& n : failure.worst_nodes) {
    worst.push(core::Json::object().set("node", n.node).set("ratio", n.ratio));
  }
  j.set("worst_nodes", std::move(worst));
  auto osc = core::Json::array();
  for (const auto& n : failure.oscillating_nodes) osc.push(n);
  j.set("oscillating_nodes", std::move(osc));
  return j;
}

core::Json to_json(const NewtonStats& stats) {
  auto j = core::Json::object();
  j.set("stage", solve_stage_name(stats.stage));
  j.set("iterations", stats.iterations);
  j.set("gmin_rungs", stats.gmin_rungs);
  j.set("gmin_backtracks", stats.gmin_backtracks);
  j.set("source_rungs", stats.source_rungs);
  j.set("source_backtracks", stats.source_backtracks);
  j.set("ptc_steps", stats.ptc_steps);
  j.set("ptc_rejections", stats.ptc_rejections);
  j.set("used_gmin_stepping", stats.used_gmin_stepping);
  j.set("used_source_stepping", stats.used_source_stepping);
  j.set("used_pseudo_transient", stats.used_pseudo_transient);
  return j;
}

core::Json to_json(const TransientStats& stats) {
  auto j = core::Json::object();
  j.set("steps_accepted", stats.steps_accepted);
  j.set("steps_rejected_lte", stats.steps_rejected_lte);
  j.set("steps_rejected_newton", stats.steps_rejected_newton);
  j.set("newton_iterations", stats.newton_iterations);
  j.set("breakpoints_hit", stats.breakpoints_hit);
  j.set("jacobian_reuses", stats.jacobian_reuses);
  j.set("orchestrator_recoveries", stats.orchestrator_recoveries);
  j.set("dt_smallest", stats.dt_smallest);
  j.set("dt_largest", stats.dt_largest);
  j.set("op", to_json(stats.op));
  return j;
}

core::Json to_json(const TrialResult& result) {
  auto j = core::Json::object();
  j.set("index", result.index);
  j.set("outcome", trial_outcome_name(result.outcome));
  j.set("taxonomy", result.taxonomy());
  j.set("ok", result.ok);
  j.set("pass", result.pass);
  j.set("metric", result.metric);
  j.set("retries", result.retries);
  j.set("wall_ns", static_cast<long long>(result.wall_ns));
  j.set("from_checkpoint", result.from_checkpoint);
  if (!result.ok) {
    j.set("error", result.error);
    if (result.outcome == TrialOutcome::kSolveFailure) {
      j.set("failure", to_json(result.failure));
    }
  } else {
    j.set("stats", to_json(result.stats));
  }
  return j;
}

core::Json to_json(const EnsembleSummary& summary) {
  auto j = core::Json::object();
  j.set("trials", summary.trials);
  j.set("ok", summary.ok);
  j.set("passed", summary.passed);
  j.set("failed", summary.failed);
  j.set("timed_out", summary.timed_out);
  j.set("cancelled", summary.cancelled);
  j.set("from_checkpoint", summary.from_checkpoint);
  j.set("retried_trials", summary.retried_trials);
  j.set("retries_total", summary.retries_total);
  j.set("recovered_by_retry", summary.recovered_by_retry);
  j.set("yield", summary.yield);
  j.set("wall_s", summary.wall_s);
  j.set("threads", summary.threads);
  auto taxonomy = core::Json::object();
  for (const auto& [bucket, count] : summary.failure_taxonomy) {
    taxonomy.set(bucket, count);
  }
  j.set("failure_taxonomy", std::move(taxonomy));
  return j;
}

core::Json to_json(const EnsembleResult& result) {
  auto j = core::Json::object();
  j.set("summary", to_json(result.summary));
  auto trials = core::Json::array();
  for (const TrialResult& r : result.trials) trials.push(to_json(r));
  j.set("trials", std::move(trials));
  return j;
}

}  // namespace carbon::spice
