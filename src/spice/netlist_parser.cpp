#include "spice/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "device/alpha_power.h"
#include "device/cntfet.h"
#include "device/linear_fet.h"
#include "phys/require.h"

namespace carbon::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(int line_no, const std::string& line,
                       const std::string& why) {
  throw ParseError(why, line_no, line);
}

/// Split a card into whitespace/comma separated tokens, keeping
/// parenthesized groups like PULSE(0 1 1n ...) and braced expressions like
/// {vdd / 2} together with their surrounding token.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : line) {
    if (c == ';') break;  // trailing comment
    if (c == '(' || c == '{') ++depth;
    if (c == ')' || c == '}') --depth;
    if ((std::isspace(static_cast<unsigned char>(c)) || c == ',') &&
        depth == 0) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Extract the arguments of a "tag(a b c)" token; false if not that form.
/// Braced sub-expressions survive as single arguments.
bool split_call(const std::string& token, std::string* tag,
                std::vector<std::string>* args) {
  const auto open = token.find('(');
  if (open == std::string::npos || token.back() != ')') return false;
  *tag = lower(token.substr(0, open));
  const std::string inner = token.substr(open + 1, token.size() - open - 2);
  std::string piece;
  int depth = 0;
  args->clear();
  for (char c : inner) {
    if (c == '(' || c == '{') ++depth;
    if (c == ')' || c == '}') --depth;
    if ((std::isspace(static_cast<unsigned char>(c)) || c == ',') &&
        depth == 0) {
      if (!piece.empty()) args->push_back(piece);
      piece.clear();
    } else {
      piece.push_back(c);
    }
  }
  if (!piece.empty()) args->push_back(piece);
  return true;
}

bool all_alpha(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isalpha(static_cast<unsigned char>(c));
  });
}

}  // namespace

ParseError::ParseError(const std::string& reason, int line_no,
                       std::string line_text)
    : std::runtime_error(
          line_no > 0
              ? "netlist parse error at line " + std::to_string(line_no) +
                    " (" + reason + "): " + line_text
              : "netlist parse error: " + reason),
      line_no_(line_no),
      line_text_(std::move(line_text)),
      reason_(reason) {}

double parse_spice_number(const std::string& token) {
  const std::string t = lower(token);
  if (t.empty()) throw ParseError("empty numeric literal");
  size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw ParseError("not a number: " + token);
  }
  if (pos == 0) throw ParseError("not a number: " + token);
  // std::stod accepts hex ("0x10") and the inf/nan words; a SPICE deck
  // means none of them.  The consumed prefix must be a plain decimal.
  for (size_t i = 0; i < pos; ++i) {
    const char c = t[i];
    const bool decimal = std::isdigit(static_cast<unsigned char>(c)) ||
                         c == '.' || c == '+' || c == '-' || c == 'e';
    if (!decimal) throw ParseError("not a plain decimal number: " + token);
  }
  if (!std::isfinite(value)) {
    throw ParseError("non-finite numeric literal: " + token);
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return value;
  // Longest match first: "meg"/"mil" before "m".  A recognized suffix may
  // carry a purely alphabetic unit tail ("10kohm", "100nF"); any other
  // trailing text is junk.
  static const struct {
    const char* text;
    double scale;
  } kSuffixes[] = {{"meg", 1e6},  {"mil", 25.4e-6}, {"t", 1e12}, {"g", 1e9},
                   {"k", 1e3},    {"m", 1e-3},      {"u", 1e-6}, {"n", 1e-9},
                   {"p", 1e-12},  {"f", 1e-15},     {"a", 1e-18}};
  for (const auto& s : kSuffixes) {
    const size_t len = std::strlen(s.text);
    if (suffix.compare(0, len, s.text) == 0) {
      const std::string rest = suffix.substr(len);
      if (all_alpha(rest)) return value * s.scale;
      throw ParseError("trailing junk after number: " + token);
    }
  }
  throw ParseError("unknown engineering suffix: " + token);
}

// ---------------------------------------------------------------------------
// Expression evaluator
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent evaluator over a lowercased expression string.
class ExprEval {
 public:
  ExprEval(const std::string& text, const ParamEnv& env)
      : s_(text), env_(env) {}

  double run() {
    const double v = expr();
    skip_ws();
    if (pos_ != s_.size()) {
      throw ParseError("unexpected trailing text in expression: " + s_);
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  double expr() {
    double v = term();
    for (;;) {
      if (eat('+')) {
        v += term();
      } else if (eat('-')) {
        v -= term();
      } else {
        return v;
      }
    }
  }

  double term() {
    double v = factor();
    for (;;) {
      if (eat('*')) {
        v *= factor();
      } else if (eat('/')) {
        v /= factor();
      } else {
        return v;
      }
    }
  }

  double factor() {
    const double base = unary();
    if (eat('^')) return std::pow(base, factor());  // right-associative
    return base;
  }

  double unary() {
    if (eat('-')) return -unary();
    if (eat('+')) return unary();
    return primary();
  }

  double primary() {
    skip_ws();
    if (pos_ >= s_.size()) throw ParseError("truncated expression: " + s_);
    const char c = s_[pos_];
    if (c == '(') {
      ++pos_;
      const double v = expr();
      if (!eat(')')) throw ParseError("missing ')' in expression: " + s_);
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return identifier();
    }
    throw ParseError("unexpected character '" + std::string(1, c) +
                     "' in expression: " + s_);
  }

  /// A numeric literal with optional exponent and engineering suffix/unit
  /// tail — lexed greedily and handed to parse_spice_number.
  double number() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == 'e') {
      size_t p = pos_ + 1;
      if (p < s_.size() && (s_[p] == '+' || s_[p] == '-')) ++p;
      if (p < s_.size() && std::isdigit(static_cast<unsigned char>(s_[p]))) {
        ++p;
        while (p < s_.size() &&
               std::isdigit(static_cast<unsigned char>(s_[p]))) {
          ++p;
        }
        pos_ = p;
      }
    }
    // Engineering suffix / unit tail ("k", "meg", "nF").
    while (pos_ < s_.size() &&
           std::isalpha(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return parse_spice_number(s_.substr(start, pos_ - start));
  }

  double identifier() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_')) {
      ++pos_;
    }
    const std::string name = s_.substr(start, pos_ - start);
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '(') return call(name);
    const auto it = env_.find(name);
    if (it == env_.end()) {
      throw ParseError("unknown parameter '" + name + "' in expression: " +
                       s_);
    }
    return it->second;
  }

  double call(const std::string& fn) {
    ++pos_;  // '('
    std::vector<double> args;
    skip_ws();
    if (!eat(')')) {
      for (;;) {
        args.push_back(expr());
        if (eat(')')) break;
        if (!eat(',')) {
          throw ParseError("missing ',' or ')' in call to " + fn + ": " + s_);
        }
      }
    }
    auto want = [&](size_t n) {
      if (args.size() != n) {
        throw ParseError(fn + "() wants " + std::to_string(n) +
                         " argument(s): " + s_);
      }
    };
    if (fn == "sqrt") { want(1); return std::sqrt(args[0]); }
    if (fn == "abs") { want(1); return std::abs(args[0]); }
    if (fn == "exp") { want(1); return std::exp(args[0]); }
    if (fn == "log") { want(1); return std::log(args[0]); }
    if (fn == "log10") { want(1); return std::log10(args[0]); }
    if (fn == "floor") { want(1); return std::floor(args[0]); }
    if (fn == "ceil") { want(1); return std::ceil(args[0]); }
    if (fn == "pow") { want(2); return std::pow(args[0], args[1]); }
    if (fn == "min") { want(2); return std::min(args[0], args[1]); }
    if (fn == "max") { want(2); return std::max(args[0], args[1]); }
    throw ParseError("unknown function '" + fn + "' in expression: " + s_);
  }

  const std::string s_;
  const ParamEnv& env_;
  size_t pos_ = 0;
};

}  // namespace

double eval_expr(const std::string& expr, const ParamEnv& env) {
  std::string body = expr;
  if (body.size() >= 2 && body.front() == '{' && body.back() == '}') {
    body = body.substr(1, body.size() - 2);
  }
  return ExprEval(lower(body), env).run();
}

// ---------------------------------------------------------------------------
// Deck parsing: logical lines, subckt collection, flattening
// ---------------------------------------------------------------------------

namespace {

struct RawCard {
  int line_no = 0;
  std::string text;
  std::vector<std::string> tokens;
};

struct SubcktDef {
  std::string name;
  std::vector<std::string> ports;      ///< lowercase port node names
  std::vector<ParamSpec> formals;      ///< header k=v defaults
  std::vector<ParamSpec> locals;       ///< body .param cards
  std::vector<RawCard> body;           ///< element and x cards
  int line_no = 0;
  std::string line;
};

/// key=value split; false when the token has no '='.
bool split_kv(const std::string& token, std::string* key, std::string* val) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  *key = lower(token.substr(0, eq));
  *val = token.substr(eq + 1);
  return true;
}

/// Parse trailing key=value options starting at @p first; any bare token
/// is an error (strict: typos surface instead of being ignored).
std::vector<std::pair<std::string, std::string>> parse_options(
    const std::vector<std::string>& tokens, size_t first, int line_no,
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = first; i < tokens.size(); ++i) {
    std::string k, v;
    if (!split_kv(tokens[i], &k, &v)) {
      fail(line_no, line, "expected key=value, got '" + tokens[i] + "'");
    }
    out.emplace_back(std::move(k), std::move(v));
  }
  return out;
}

const std::string* find_option(
    const std::vector<std::pair<std::string, std::string>>& options,
    const std::string& key) {
  for (const auto& [k, v] : options) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Strip comments, join '+' continuation lines, keep 1-based line numbers.
std::vector<RawCard> logical_lines(const std::string& text) {
  std::vector<RawCard> out;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto first_ns = line.find_first_not_of(" \t");
    if (first_ns == std::string::npos) continue;
    const char c = line[first_ns];
    if (c == '*' || c == '#') continue;  // comment line
    if (c == '+') {
      if (out.empty()) {
        fail(line_no, line, "continuation line with nothing to continue");
      }
      out.back().text += " " + line.substr(first_ns + 1);
      continue;
    }
    out.push_back({line_no, line, {}});
  }
  for (RawCard& card : out) card.tokens = tokenize(card.text);
  return out;
}

/// Signal reference "v(node)" / "i(source)"; bare tokens count as nodes.
bool parse_signal(const std::string& token, std::string* kind,
                  std::string* name) {
  std::string tag;
  std::vector<std::string> args;
  if (split_call(token, &tag, &args)) {
    if ((tag != "v" && tag != "i") || args.size() != 1) return false;
    *kind = tag;
    *name = lower(args[0]);
    return true;
  }
  *kind = "v";
  *name = lower(token);
  return true;
}

// --- per-kind element card parsing (shared by top level and subckt bodies)

ElementCard parse_element_card(const RawCard& card, const std::string& name) {
  const auto& tokens = card.tokens;
  ElementCard el;
  // Kind comes from the raw card, not @p name: inside a subcircuit the
  // name is already instance-prefixed ("x1.mp").
  el.kind = static_cast<char>(std::tolower(
      static_cast<unsigned char>(card.tokens[0][0])));
  el.name = name;
  el.line_no = card.line_no;
  el.line = card.text;
  auto need = [&](size_t n, const char* grammar) {
    if (tokens.size() < n) fail(card.line_no, card.text, grammar);
  };
  auto nodes = [&](size_t count) {
    for (size_t i = 1; i <= count; ++i) el.nodes.push_back(lower(tokens[i]));
  };
  switch (el.kind) {
    case 'r':
      need(4, "R wants: name n1 n2 ohms");
      nodes(2);
      el.values.push_back(tokens[3]);
      el.options = parse_options(tokens, 4, card.line_no, card.text);
      break;
    case 'c':
      need(4, "C wants: name n1 n2 farad [ic=v]");
      nodes(2);
      el.values.push_back(tokens[3]);
      el.options = parse_options(tokens, 4, card.line_no, card.text);
      break;
    case 'v':
    case 'i':
      need(4, el.kind == 'v' ? "V wants: name n+ n- value"
                             : "I wants: name n+ n- value");
      nodes(2);
      for (size_t i = 3; i < tokens.size(); ++i) el.values.push_back(tokens[i]);
      break;
    case 'd':
      need(3, "D wants: name anode cathode [is= n=]");
      nodes(2);
      el.options = parse_options(tokens, 3, card.line_no, card.text);
      break;
    case 'm':
      need(5, "M wants: name drain gate source model [m=]");
      nodes(3);
      el.model = lower(tokens[4]);
      el.options = parse_options(tokens, 5, card.line_no, card.text);
      break;
    default:
      fail(card.line_no, card.text, "unknown element kind");
  }
  return el;
}

/// The flattening pass: expand x-cards recursively, mangling node and
/// element names with the instance path and creating one parameter scope
/// per instance.
class Flattener {
 public:
  Flattener(Deck& deck, const std::map<std::string, SubcktDef>& subckts)
      : deck_(deck), subckts_(subckts) {}

  void expand(const std::vector<RawCard>& cards, const std::string& prefix,
              const std::map<std::string, std::string>& node_map, int scope,
              int depth) {
    if (depth > 50) {
      throw ParseError("subcircuit nesting deeper than 50 (recursive x?)");
    }
    for (const RawCard& card : cards) {
      const std::string name = lower(card.tokens[0]);
      if (name[0] == 'x') {
        expand_instance(card, prefix, node_map, scope, depth);
        continue;
      }
      ElementCard el = parse_element_card(card, prefix + name);
      for (std::string& n : el.nodes) n = map_node(n, prefix, node_map);
      el.scope = scope;
      deck_.elements.push_back(std::move(el));
    }
  }

 private:
  static std::string map_node(
      const std::string& node, const std::string& prefix,
      const std::map<std::string, std::string>& node_map) {
    if (node == "0" || node == "gnd") return "0";  // ground stays global
    const auto it = node_map.find(node);
    if (it != node_map.end()) return it->second;
    return prefix + node;
  }

  void expand_instance(const RawCard& card, const std::string& prefix,
                       const std::map<std::string, std::string>& node_map,
                       int scope, int depth) {
    const auto& tokens = card.tokens;
    // x<name> n1 n2 ... subckt [k=v ...]: the subckt name is the last
    // bare (non key=value) token.
    size_t last_bare = 0;
    for (size_t i = 1; i < tokens.size(); ++i) {
      std::string k, v;
      if (!split_kv(tokens[i], &k, &v)) last_bare = i;
    }
    if (last_bare < 2) {
      fail(card.line_no, card.text, "X wants: name nodes... subckt [k=v]");
    }
    const std::string sub_name = lower(tokens[last_bare]);
    const auto it = subckts_.find(sub_name);
    if (it == subckts_.end()) {
      fail(card.line_no, card.text, "unknown subcircuit: " + sub_name);
    }
    const SubcktDef& def = it->second;
    const size_t n_nodes = last_bare - 1;
    if (n_nodes != def.ports.size()) {
      fail(card.line_no, card.text,
           "subcircuit " + sub_name + " wants " +
               std::to_string(def.ports.size()) + " nodes, got " +
               std::to_string(n_nodes));
    }
    const auto overrides =
        parse_options(tokens, last_bare + 1, card.line_no, card.text);
    for (const auto& [k, v] : overrides) {
      const bool known = std::any_of(
          def.formals.begin(), def.formals.end(),
          [&k = k](const ParamSpec& p) { return p.name == k; });
      if (!known) {
        fail(card.line_no, card.text,
             "subcircuit " + sub_name + " has no parameter '" + k + "'");
      }
    }

    // Child parameter scope: formals (override beats default), then the
    // subckt-local .param cards.
    ParamScope child;
    child.parent = scope;
    for (const ParamSpec& formal : def.formals) {
      const std::string* ov = find_option(overrides, formal.name);
      ParamSpec bound = formal;
      if (ov) {
        bound.expr = *ov;
        bound.line_no = card.line_no;
        bound.line = card.text;
      }
      child.params.push_back(std::move(bound));
    }
    for (const ParamSpec& local : def.locals) child.params.push_back(local);
    deck_.scopes.push_back(std::move(child));
    const int child_scope = static_cast<int>(deck_.scopes.size()) - 1;

    // Port binding + recursion with the extended instance path.
    const std::string inst = prefix + lower(tokens[0]) + ".";
    std::map<std::string, std::string> child_map;
    for (size_t p = 0; p < def.ports.size(); ++p) {
      child_map[def.ports[p]] =
          map_node(lower(tokens[1 + p]), prefix, node_map);
    }
    expand(def.body, inst, child_map, child_scope, depth + 1);
  }

  Deck& deck_;
  const std::map<std::string, SubcktDef>& subckts_;
};

// --- dot-card parsing ------------------------------------------------------

std::vector<ParamSpec> parse_param_card(const RawCard& card) {
  std::vector<ParamSpec> out;
  if (card.tokens.size() < 2) {
    fail(card.line_no, card.text, ".param wants name=value pairs");
  }
  for (size_t i = 1; i < card.tokens.size(); ++i) {
    std::string k, v;
    if (!split_kv(card.tokens[i], &k, &v) || v.empty()) {
      fail(card.line_no, card.text,
           ".param wants name=value, got '" + card.tokens[i] + "'");
    }
    out.push_back({k, v, card.line_no, card.text});
  }
  return out;
}

StepSpec parse_step_card(const RawCard& card) {
  auto tokens = card.tokens;
  size_t i = 1;
  if (i < tokens.size() && lower(tokens[i]) == "param") ++i;
  if (i >= tokens.size()) {
    fail(card.line_no, card.text, ".step wants: param <name> <grid>");
  }
  StepSpec step;
  step.param = lower(tokens[i++]);
  step.line_no = card.line_no;
  step.line = card.text;
  if (i < tokens.size() && lower(tokens[i]) == "list") {
    for (++i; i < tokens.size(); ++i) step.values.push_back(tokens[i]);
    if (step.values.empty()) {
      fail(card.line_no, card.text, ".step list wants at least one value");
    }
    return step;
  }
  if (tokens.size() - i != 3) {
    fail(card.line_no, card.text,
         ".step wants: param <name> <start> <stop> <incr> | list v...");
  }
  // start/stop/incr expand to an explicit grid at parse time so the step
  // grid is part of the deck, not of any parameter environment.
  const double start = parse_spice_number(tokens[i]);
  const double stop = parse_spice_number(tokens[i + 1]);
  const double incr = parse_spice_number(tokens[i + 2]);
  if (incr == 0.0 || (stop - start) * incr < 0.0) {
    fail(card.line_no, card.text, ".step increment does not reach stop");
  }
  const int n = static_cast<int>(
                    std::floor((stop - start) / incr + 1e-9)) + 1;
  if (n > 10000) fail(card.line_no, card.text, ".step grid over 10000 points");
  char buf[40];
  for (int k = 0; k < n; ++k) {
    std::snprintf(buf, sizeof buf, "%.17g", start + k * incr);
    step.values.push_back(buf);
  }
  return step;
}

AnalysisCard parse_analysis_card(const RawCard& card,
                                 const std::string& dot) {
  const auto& tokens = card.tokens;
  AnalysisCard a;
  a.line_no = card.line_no;
  a.line = card.text;
  auto options_from = [&](size_t first) {
    a.options = parse_options(tokens, first, card.line_no, card.text);
  };
  if (dot == ".op") {
    a.kind = AnalysisCard::Kind::kOp;
    options_from(1);
    return a;
  }
  if (dot == ".dc") {
    if (tokens.size() < 5) {
      fail(card.line_no, card.text, ".dc wants: source start stop step");
    }
    a.kind = AnalysisCard::Kind::kDc;
    a.source = lower(tokens[1]);
    a.start_expr = tokens[2];
    a.stop_expr = tokens[3];
    a.step_expr = tokens[4];
    options_from(5);
    return a;
  }
  if (dot == ".tran") {
    if (tokens.size() < 3) {
      fail(card.line_no, card.text, ".tran wants: tstep tstop [k=v]");
    }
    a.kind = AnalysisCard::Kind::kTran;
    a.dt_expr = tokens[1];
    a.tstop_expr = tokens[2];
    options_from(3);
    return a;
  }
  if (dot == ".ac") {
    if (tokens.size() < 5 || lower(tokens[1]) != "dec") {
      fail(card.line_no, card.text, ".ac wants: dec points fstart fstop");
    }
    a.kind = AnalysisCard::Kind::kAc;
    a.npd_expr = tokens[2];
    a.fstart_expr = tokens[3];
    a.fstop_expr = tokens[4];
    options_from(5);
    return a;
  }
  if (dot == ".noise") {
    if (tokens.size() < 7 || lower(tokens[3]) != "dec") {
      fail(card.line_no, card.text,
           ".noise wants: v(out) input dec points fstart fstop");
    }
    std::string kind, name;
    if (!parse_signal(tokens[1], &kind, &name) || kind != "v") {
      fail(card.line_no, card.text, ".noise output must be v(<node>)");
    }
    a.kind = AnalysisCard::Kind::kNoise;
    a.output = name;
    a.source = lower(tokens[2]);
    a.npd_expr = tokens[4];
    a.fstart_expr = tokens[5];
    a.fstop_expr = tokens[6];
    options_from(7);
    return a;
  }
  fail(card.line_no, card.text, "unknown analysis card " + dot);
}

MeasureCard parse_measure_card(const RawCard& card) {
  const auto& tokens = card.tokens;
  if (tokens.size() < 4) {
    fail(card.line_no, card.text,
         ".measure wants: <analysis> <name> <fn> ...");
  }
  MeasureCard m;
  m.analysis = lower(tokens[1]);
  if (m.analysis != "op" && m.analysis != "dc" && m.analysis != "tran" &&
      m.analysis != "ac" && m.analysis != "noise") {
    fail(card.line_no, card.text,
         "unknown .measure analysis '" + m.analysis + "'");
  }
  m.name = lower(tokens[2]);
  m.fn = lower(tokens[3]);
  m.line_no = card.line_no;
  m.line = card.text;
  static const char* kFns[] = {"max", "min",    "avg",    "rms",  "pp",
                               "cross", "delay", "period", "energy",
                               "find", "corner", "vtc",    "value"};
  if (std::none_of(std::begin(kFns), std::end(kFns),
                   [&](const char* f) { return m.fn == f; })) {
    fail(card.line_no, card.text, "unknown .measure function '" + m.fn + "'");
  }
  for (size_t i = 4; i < tokens.size(); ++i) {
    std::string k, v;
    if (split_kv(tokens[i], &k, &v)) {
      m.options.emplace_back(k, v);
      continue;
    }
    const std::string t = lower(tokens[i]);
    if (t == "rise" || t == "fall") {
      m.options.emplace_back(t, "1");
      continue;
    }
    m.signals.push_back(tokens[i]);
  }
  return m;
}

ModelCard parse_model_card(const RawCard& card) {
  const auto& tokens = card.tokens;
  if (tokens.size() < 3) {
    fail(card.line_no, card.text, ".model wants: name type [k=v ...]");
  }
  ModelCard mc;
  mc.name = lower(tokens[1]);
  mc.line_no = card.line_no;
  mc.line = card.text;
  // Either ".model n type k=v k=v" or ".model n type(k=v k=v)".
  std::string tag;
  std::vector<std::string> args;
  if (split_call(tokens[2], &tag, &args)) {
    mc.type = tag;
    for (const auto& arg : args) {
      std::string k, v;
      if (!split_kv(arg, &k, &v)) {
        fail(card.line_no, card.text,
             ".model wants key=value options, got '" + arg + "'");
      }
      mc.options.emplace_back(k, v);
    }
    if (tokens.size() > 3) {
      fail(card.line_no, card.text, "unexpected tokens after .model(...)");
    }
  } else {
    mc.type = lower(tokens[2]);
    mc.options = parse_options(tokens, 3, card.line_no, card.text);
  }
  // Validate the type now so the error names the .model line, not the
  // first m-card that happens to reference it.
  static const char* kTypes[] = {"alphan", "alphap", "nfet",  "pfet",
                                 "linn",   "linp",   "cnfet", "cpfet"};
  if (std::find_if(std::begin(kTypes), std::end(kTypes), [&](const char* t) {
        return mc.type == t;
      }) == std::end(kTypes)) {
    fail(card.line_no, card.text, "unknown .model type '" + mc.type + "'");
  }
  return mc;
}

// --- parameter-environment resolution --------------------------------------

/// Evaluate every scope's parameters.  @p overrides replaces global
/// (scope-0) parameter values by name — the .step mechanism — and may also
/// introduce names no .param card declared.
std::vector<ParamEnv> resolve_scopes(const Deck& deck,
                                     const ParamEnv& overrides) {
  std::vector<ParamEnv> envs(deck.scopes.size());
  for (size_t s = 0; s < deck.scopes.size(); ++s) {
    const ParamScope& sc = deck.scopes[s];
    ParamEnv env = sc.parent >= 0 ? envs[sc.parent] : ParamEnv{};
    for (const ParamSpec& p : sc.params) {
      try {
        const auto ov = s == 0 ? overrides.find(p.name) : overrides.end();
        env[p.name] =
            ov != overrides.end() ? ov->second : eval_expr(p.expr, env);
      } catch (const ParseError& e) {
        fail(p.line_no, p.line, e.reason());
      }
    }
    if (s == 0) {
      for (const auto& [k, v] : overrides) env.emplace(k, v);
    }
    envs[s] = std::move(env);
  }
  return envs;
}

double eval_card_value(const std::string& expr, const ParamEnv& env,
                       int line_no, const std::string& line) {
  try {
    return eval_expr(expr, env);
  } catch (const ParseError& e) {
    fail(line_no, line, e.reason());
  }
}

// --- device model construction ---------------------------------------------

std::map<std::string, double> eval_model_options(const ModelCard& mc,
                                                 const ParamEnv& env) {
  std::map<std::string, double> out;
  for (const auto& [k, v] : mc.options) {
    out[k] = eval_card_value(v, env, mc.line_no, mc.line);
  }
  return out;
}

device::DeviceModelPtr build_model(const ModelCard& mc, const ParamEnv& env) {
  namespace dev = carbon::device;
  auto opts = eval_model_options(mc, env);
  auto take = [&](const char* key, double fallback) {
    const auto it = opts.find(key);
    if (it == opts.end()) return fallback;
    const double v = it->second;
    opts.erase(it);
    return v;
  };
  // Noise options are common to every family.
  dev::NoiseParams noise;
  const double gamma = take("gamma", noise.gamma);
  const double kf = take("kf", noise.kf);
  const double af = take("af", noise.af);
  const bool has_noise = gamma != noise.gamma || kf != 0.0 || af != 1.0;

  dev::DeviceModelPtr model;
  bool p_type = false;
  const std::string& t = mc.type;
  if (t == "alphan" || t == "alphap" || t == "nfet" || t == "pfet") {
    p_type = t == "alphap" || t == "pfet";
    dev::AlphaPowerParams p;
    p.name = mc.name;
    p.v_t = take("vt", p.v_t);
    p.alpha = take("alpha", p.alpha);
    p.k_sat = take("k", p.k_sat);
    p.lambda = take("lambda", p.lambda);
    p.ss_mv_dec = take("ss", p.ss_mv_dec);
    p.i_off_floor = take("ioff", p.i_off_floor);
    p.width = take("w", p.width);
    model = std::make_shared<dev::AlphaPowerModel>(p);
  } else if (t == "linn" || t == "linp") {
    p_type = t == "linp";
    dev::LinearFetParams p;
    p.name = mc.name;
    p.v_t = take("vt", p.v_t);
    p.k_s_per_v = take("k", p.k_s_per_v);
    p.smooth_v = take("smooth", p.smooth_v);
    p.g_off = take("goff", p.g_off);
    p.width = take("w", p.width);
    model = std::make_shared<dev::LinearFetModel>(p);
  } else if (t == "cnfet" || t == "cpfet") {
    p_type = t == "cpfet";
    dev::CntfetParams p = dev::make_franklin_cntfet_params(
        take("l", 20e-9));
    p.name = mc.name;
    p.ef_source_ev = take("ef", p.ef_source_ev);
    p.r_source_ohm = take("rs", p.r_source_ohm);
    p.r_drain_ohm = take("rd", p.r_drain_ohm);
    p.ballistic = take("ballistic", p.ballistic ? 1.0 : 0.0) != 0.0;
    p.num_subbands = static_cast<int>(take("subbands", p.num_subbands));
    model = std::make_shared<dev::CntfetModel>(std::move(p));
  } else {
    fail(mc.line_no, mc.line, "unknown .model type '" + t + "'");
  }
  if (!opts.empty()) {
    fail(mc.line_no, mc.line,
         "unknown .model option '" + opts.begin()->first + "' for type '" +
             t + "'");
  }
  if (has_noise) {
    noise.gamma = gamma;
    noise.kf = kf;
    noise.af = af;
    model = dev::with_noise(std::move(model), noise);
  }
  if (p_type) model = std::make_shared<dev::PTypeMirror>(std::move(model));
  return model;
}

/// Resolve an m-card model: deck-local .model cards shadow the base
/// registry.  Deck models are memoized on (name, evaluated options) so a
/// stepped deck rebuilds a (possibly expensive) model only when a stepped
/// parameter actually reaches it.
device::DeviceModelPtr resolve_model(
    const Deck& deck, const ModelRegistry& base, const ElementCard& card,
    const ParamEnv& env, std::map<std::string, device::DeviceModelPtr>* memo) {
  const ModelCard* mc = nullptr;
  for (const ModelCard& m : deck.models) {
    if (m.name == card.model) mc = &m;
  }
  if (!mc) {
    const auto it = base.find(card.model);
    if (it == base.end()) {
      fail(card.line_no, card.line, "unknown device model: " + card.model);
    }
    return it->second;
  }
  std::string key;
  {
    std::ostringstream os;
    os << mc->name << '|' << mc->type;
    for (const auto& [k, v] : eval_model_options(*mc, env)) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      os << '|' << k << '=' << buf;
    }
    key = os.str();
  }
  if (memo) {
    const auto it = memo->find(key);
    if (it != memo->end()) return it->second;
  }
  device::DeviceModelPtr model = build_model(*mc, env);
  if (memo) (*memo)[key] = model;
  return model;
}

// --- waveform construction --------------------------------------------------

WaveformPtr build_wave(const ElementCard& card, const ParamEnv& env,
                       double* ac_mag) {
  *ac_mag = 0.0;
  WaveformPtr wave;
  auto value = [&](const std::string& tok) {
    return eval_card_value(tok, env, card.line_no, card.line);
  };
  for (size_t i = 0; i < card.values.size(); ++i) {
    const std::string& tok = card.values[i];
    std::string tag;
    std::vector<std::string> args;
    if (split_call(tok, &tag, &args)) {
      std::vector<double> v;
      v.reserve(args.size());
      for (const auto& a : args) v.push_back(value(a));
      if (tag == "pulse") {
        if (v.size() != 7) {
          fail(card.line_no, card.line, "PULSE wants 7 arguments");
        }
        wave = pulse(v[0], v[1], v[2], v[3], v[4], v[5], v[6]);
      } else if (tag == "sin") {
        if (v.size() < 3 || v.size() > 5) {
          fail(card.line_no, card.line, "SIN wants 3-5 arguments");
        }
        wave = sine(v[0], v[1], v[2], v.size() > 3 ? v[3] : 0.0,
                    v.size() > 4 ? v[4] : 0.0);
      } else if (tag == "pwl") {
        if (v.size() < 4 || v.size() % 2 != 0) {
          fail(card.line_no, card.line, "PWL wants time/value pairs");
        }
        std::vector<std::pair<double, double>> pts;
        for (size_t k = 0; k < v.size(); k += 2) {
          pts.emplace_back(v[k], v[k + 1]);
        }
        wave = pwl(std::move(pts));
      } else {
        fail(card.line_no, card.line, "unknown source function: " + tag);
      }
      continue;
    }
    const std::string word = lower(tok);
    if (word == "dc") {
      if (++i >= card.values.size()) {
        fail(card.line_no, card.line, "missing DC value");
      }
      wave = dc(value(card.values[i]));
      continue;
    }
    if (word == "ac") {
      if (++i >= card.values.size()) {
        fail(card.line_no, card.line, "missing AC magnitude");
      }
      *ac_mag = value(card.values[i]);
      continue;
    }
    wave = dc(value(tok));
  }
  if (!wave) fail(card.line_no, card.line, "missing source value");
  return wave;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::vector<ParamEnv> expand_steps(const Deck& deck) {
  if (deck.steps.empty()) return {ParamEnv{}};
  // Grid values may be expressions over the (un-stepped) globals.
  const ParamEnv base = resolve_scopes(deck, {}).front();
  std::vector<std::vector<double>> grids;
  for (const StepSpec& s : deck.steps) {
    std::vector<double> g;
    for (const std::string& v : s.values) {
      g.push_back(eval_card_value(v, base, s.line_no, s.line));
    }
    grids.push_back(std::move(g));
  }
  std::vector<ParamEnv> out;
  std::vector<size_t> idx(grids.size(), 0);
  for (;;) {
    ParamEnv env;
    for (size_t i = 0; i < grids.size(); ++i) {
      env[deck.steps[i].param] = grids[i][idx[i]];
    }
    out.push_back(std::move(env));
    // Odometer: the last .step card varies fastest.
    size_t i = grids.size();
    while (i > 0) {
      --i;
      if (++idx[i] < grids[i].size()) break;
      idx[i] = 0;
      if (i == 0) return out;
    }
  }
}

namespace {

/// Shared element-construction logic of instantiate() and retune().
struct CardValues {
  double ohms = 0.0, farad = 0.0, v_init = 0.0;
  double i_sat = 1e-14, ideality = 1.0, mult = 1.0, ac_mag = 0.0;
  WaveformPtr wave;
  device::DeviceModelPtr model;
};

CardValues eval_card(const Deck& deck, const ModelRegistry& base,
                     const ElementCard& card, const std::vector<ParamEnv>& envs,
                     std::map<std::string, device::DeviceModelPtr>* memo) {
  const ParamEnv& env = envs[card.scope];
  auto value = [&](const std::string& tok) {
    return eval_card_value(tok, env, card.line_no, card.line);
  };
  CardValues out;
  switch (card.kind) {
    case 'r':
      out.ohms = value(card.values[0]);
      break;
    case 'c':
      out.farad = value(card.values[0]);
      if (const auto* ic = find_option(card.options, "ic")) {
        out.v_init = value(*ic);
      }
      break;
    case 'v':
    case 'i':
      out.wave = build_wave(card, env, &out.ac_mag);
      break;
    case 'd':
      if (const auto* is = find_option(card.options, "is")) {
        out.i_sat = value(*is);
      }
      if (const auto* n = find_option(card.options, "n")) {
        out.ideality = value(*n);
      }
      break;
    case 'm':
      out.model = resolve_model(deck, base, card, env, memo);
      if (const auto* m = find_option(card.options, "m")) {
        out.mult = value(*m);
      }
      break;
    default:
      fail(card.line_no, card.line, "unknown element kind");
  }
  return out;
}

std::unique_ptr<Circuit> instantiate_impl(
    const Deck& deck, const ModelRegistry& models, const ParamEnv& overrides,
    std::map<std::string, device::DeviceModelPtr>* memo) {
  const std::vector<ParamEnv> envs = resolve_scopes(deck, overrides);
  auto ckt = std::make_unique<Circuit>();
  for (const ElementCard& card : deck.elements) {
    const CardValues v = eval_card(deck, models, card, envs, memo);
    switch (card.kind) {
      case 'r':
        ckt->add_resistor(card.name, card.nodes[0], card.nodes[1], v.ohms);
        break;
      case 'c':
        ckt->add_capacitor(card.name, card.nodes[0], card.nodes[1], v.farad,
                           v.v_init);
        break;
      case 'v': {
        VSource* src =
            ckt->add_vsource(card.name, card.nodes[0], card.nodes[1], v.wave);
        if (v.ac_mag != 0.0) src->set_ac_magnitude(v.ac_mag);
        break;
      }
      case 'i':
        ckt->add_isource(card.name, card.nodes[0], card.nodes[1], v.wave);
        break;
      case 'd':
        ckt->add_diode(card.name, card.nodes[0], card.nodes[1], v.i_sat,
                       v.ideality);
        break;
      case 'm':
        ckt->add_fet(card.name, card.nodes[0], card.nodes[1], card.nodes[2],
                     v.model, v.mult);
        break;
      default:
        break;
    }
  }
  return ckt;
}

}  // namespace

std::unique_ptr<Circuit> instantiate(const Deck& deck,
                                     const ModelRegistry& models,
                                     const ParamEnv& overrides,
                                     ModelMemo* memo) {
  return instantiate_impl(deck, models, overrides, memo);
}

void retune(const Deck& deck, const ModelRegistry& models,
            const ParamEnv& overrides, Circuit& ckt, ModelMemo* memo) {
  const std::vector<ParamEnv> envs = resolve_scopes(deck, overrides);
  const auto& elements = ckt.elements();
  CARBON_REQUIRE(elements.size() == deck.elements.size(),
                 "retune: circuit does not match the deck's card list");
  for (size_t i = 0; i < deck.elements.size(); ++i) {
    const ElementCard& card = deck.elements[i];
    const CardValues v = eval_card(deck, models, card, envs, memo);
    Element* el = elements[i].get();
    switch (card.kind) {
      case 'r':
        static_cast<Resistor*>(el)->set_resistance(v.ohms);
        break;
      case 'c': {
        auto* cap = static_cast<Capacitor*>(el);
        cap->set_capacitance(v.farad);
        cap->set_v_init(v.v_init);
        break;
      }
      case 'v': {
        auto* src = static_cast<VSource*>(el);
        src->set_wave(v.wave);
        src->set_ac_magnitude(v.ac_mag);
        break;
      }
      case 'i':
        static_cast<ISource*>(el)->set_wave(v.wave);
        break;
      case 'd':
        static_cast<Diode*>(el)->set_params(v.i_sat, v.ideality);
        break;
      case 'm': {
        auto* fet = static_cast<Fet*>(el);
        fet->set_model(v.model);
        fet->set_multiplier(v.mult);
        break;
      }
      default:
        break;
    }
  }
}

Deck parse_deck(const std::string& text, const ModelRegistry& models) {
  Deck deck;
  deck.scopes.push_back(ParamScope{});  // scope 0: globals

  const std::vector<RawCard> cards = logical_lines(text);
  std::map<std::string, SubcktDef> subckts;
  std::vector<RawCard> top;
  SubcktDef* open_subckt = nullptr;

  for (const RawCard& card : cards) {
    if (card.tokens.empty()) continue;
    const std::string head = lower(card.tokens[0]);

    if (head[0] != '.') {
      if (open_subckt) {
        open_subckt->body.push_back(card);
      } else {
        top.push_back(card);
      }
      continue;
    }

    if (head == ".subckt") {
      if (open_subckt) {
        fail(card.line_no, card.text, "nested .subckt definitions");
      }
      if (card.tokens.size() < 3) {
        fail(card.line_no, card.text, ".subckt wants: name ports... [k=v]");
      }
      SubcktDef def;
      def.name = lower(card.tokens[1]);
      def.line_no = card.line_no;
      def.line = card.text;
      for (size_t i = 2; i < card.tokens.size(); ++i) {
        std::string k, v;
        if (split_kv(card.tokens[i], &k, &v)) {
          def.formals.push_back({k, v, card.line_no, card.text});
        } else {
          if (!def.formals.empty()) {
            fail(card.line_no, card.text,
                 ".subckt ports must precede parameter defaults");
          }
          def.ports.push_back(lower(card.tokens[i]));
        }
      }
      if (subckts.count(def.name)) {
        fail(card.line_no, card.text,
             "duplicate subcircuit definition: " + def.name);
      }
      open_subckt = &subckts.emplace(def.name, std::move(def)).first->second;
      continue;
    }
    if (head == ".ends") {
      if (!open_subckt) fail(card.line_no, card.text, ".ends without .subckt");
      open_subckt = nullptr;
      continue;
    }
    if (open_subckt) {
      if (head == ".param") {
        for (ParamSpec& p : parse_param_card(card)) {
          open_subckt->locals.push_back(std::move(p));
        }
        continue;
      }
      fail(card.line_no, card.text,
           head + " is not allowed inside a .subckt definition");
    }

    if (head == ".end") break;
    if (head == ".title") {
      const auto at = card.text.find(card.tokens[0]);
      deck.title = card.text.substr(at + card.tokens[0].size());
      const auto ns = deck.title.find_first_not_of(" \t");
      deck.title = ns == std::string::npos ? "" : deck.title.substr(ns);
      continue;
    }
    if (head == ".param") {
      for (ParamSpec& p : parse_param_card(card)) {
        deck.scopes[0].params.push_back(std::move(p));
      }
      continue;
    }
    if (head == ".step") {
      deck.steps.push_back(parse_step_card(card));
      continue;
    }
    if (head == ".model") {
      ModelCard mc = parse_model_card(card);
      for (const ModelCard& prev : deck.models) {
        if (prev.name == mc.name) {
          fail(card.line_no, card.text, "duplicate .model name: " + mc.name);
        }
      }
      deck.models.push_back(std::move(mc));
      continue;
    }
    if (head == ".options" || head == ".option") {
      for (auto& kv : parse_options(card.tokens, 1, card.line_no, card.text)) {
        deck.options.push_back(std::move(kv));
      }
      continue;
    }
    if (head == ".probe" || head == ".print") {
      if (card.tokens.size() == 2 && lower(card.tokens[1]) == "none") {
        deck.probe_none = true;
        continue;
      }
      for (size_t i = 1; i < card.tokens.size(); ++i) {
        std::string kind, name;
        if (!parse_signal(card.tokens[i], &kind, &name)) {
          fail(card.line_no, card.text,
               ".probe wants v(<node>) / i(<vsource>) entries");
        }
        (kind == "v" ? deck.probe_nodes : deck.probe_currents)
            .push_back(name);
      }
      continue;
    }
    if (head == ".measure" || head == ".meas") {
      deck.measures.push_back(parse_measure_card(card));
      continue;
    }
    if (head == ".op" || head == ".dc" || head == ".tran" || head == ".ac" ||
        head == ".noise") {
      deck.analyses.push_back(parse_analysis_card(card, head));
      continue;
    }
    fail(card.line_no, card.text, "unknown dot card " + head);
  }
  if (open_subckt) {
    fail(open_subckt->line_no, open_subckt->line,
         ".subckt " + open_subckt->name + " never closed by .ends");
  }

  Flattener(deck, subckts).expand(top, "", {}, 0, 0);

  // Value-free canonical topology description -> session cache key.
  {
    std::ostringstream os;
    for (const ElementCard& el : deck.elements) {
      os << el.kind << '|' << el.name << '|';
      for (const std::string& n : el.nodes) os << n << ',';
      os << '\n';
    }
    deck.topology_signature = os.str();
    deck.topology_hash = fnv1a64(deck.topology_signature);
  }

  deck.circuit = instantiate(deck, models, {});
  return deck;
}

std::unique_ptr<Circuit> parse_netlist(const std::string& text,
                                       const ModelRegistry& models) {
  Deck deck = parse_deck(text, models);
  return std::move(deck.circuit);
}

}  // namespace carbon::spice
