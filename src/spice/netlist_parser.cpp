#include "spice/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <vector>

namespace carbon::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(int line_no, const std::string& line,
                       const std::string& why) {
  std::ostringstream os;
  os << "netlist parse error at line " << line_no << " (" << why
     << "): " << line;
  throw ParseError(os.str());
}

/// Split a card into whitespace/comma separated tokens, keeping
/// parenthesized groups like PULSE(0 1 1n ...) together with their tag.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : line) {
    if (c == ';') break;  // trailing comment
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if ((std::isspace(static_cast<unsigned char>(c)) || c == ',') &&
        depth == 0) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

/// Extract the arguments of a "tag(a b c)" token; empty if not that form.
bool split_call(const std::string& token, std::string* tag,
                std::vector<std::string>* args) {
  const auto open = token.find('(');
  if (open == std::string::npos || token.back() != ')') return false;
  *tag = lower(token.substr(0, open));
  const std::string inner = token.substr(open + 1,
                                         token.size() - open - 2);
  std::string piece;
  args->clear();
  for (char c : inner) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!piece.empty()) args->push_back(piece);
      piece.clear();
    } else {
      piece.push_back(c);
    }
  }
  if (!piece.empty()) args->push_back(piece);
  return true;
}

}  // namespace

double parse_spice_number(const std::string& token) {
  const std::string t = lower(token);
  size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw ParseError("not a number: " + token);
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return value;
  if (suffix == "t") return value * 1e12;
  if (suffix == "g") return value * 1e9;
  if (suffix == "meg") return value * 1e6;
  if (suffix == "k") return value * 1e3;
  if (suffix == "m") return value * 1e-3;
  if (suffix == "u") return value * 1e-6;
  if (suffix == "n") return value * 1e-9;
  if (suffix == "p") return value * 1e-12;
  if (suffix == "f") return value * 1e-15;
  if (suffix == "a") return value * 1e-18;
  // SPICE tradition: unknown trailing letters (e.g. "10kohm") — accept a
  // known suffix followed by letters, otherwise reject.
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  const char c = suffix[0];
  const std::string rest = suffix.substr(1);
  const bool alpha = std::all_of(rest.begin(), rest.end(), [](char ch) {
    return std::isalpha(static_cast<unsigned char>(ch));
  });
  if (alpha) {
    switch (c) {
      case 't': return value * 1e12;
      case 'g': return value * 1e9;
      case 'k': return value * 1e3;
      case 'm': return value * 1e-3;
      case 'u': return value * 1e-6;
      case 'n': return value * 1e-9;
      case 'p': return value * 1e-12;
      case 'f': return value * 1e-15;
      default: break;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      throw ParseError("unknown engineering suffix: " + token);
    }
  }
  throw ParseError("unknown engineering suffix: " + token);
}

namespace {

WaveformPtr parse_source_value(const std::vector<std::string>& tokens,
                               size_t first, int line_no,
                               const std::string& line) {
  if (first >= tokens.size()) fail(line_no, line, "missing source value");
  std::string tag;
  std::vector<std::string> args;
  if (split_call(tokens[first], &tag, &args)) {
    std::vector<double> v;
    v.reserve(args.size());
    for (const auto& a : args) v.push_back(parse_spice_number(a));
    if (tag == "pulse") {
      if (v.size() != 7) fail(line_no, line, "PULSE wants 7 arguments");
      return pulse(v[0], v[1], v[2], v[3], v[4], v[5], v[6]);
    }
    if (tag == "sin") {
      if (v.size() < 3 || v.size() > 5) {
        fail(line_no, line, "SIN wants 3-5 arguments");
      }
      return sine(v[0], v[1], v[2], v.size() > 3 ? v[3] : 0.0,
                  v.size() > 4 ? v[4] : 0.0);
    }
    if (tag == "pwl") {
      if (v.size() < 4 || v.size() % 2 != 0) {
        fail(line_no, line, "PWL wants time/value pairs");
      }
      std::vector<std::pair<double, double>> pts;
      for (size_t i = 0; i < v.size(); i += 2) pts.emplace_back(v[i], v[i + 1]);
      return pwl(std::move(pts));
    }
    fail(line_no, line, "unknown source function: " + tag);
  }
  // Plain DC value; allow an optional leading "dc" keyword.
  size_t idx = first;
  if (lower(tokens[idx]) == "dc") {
    ++idx;
    if (idx >= tokens.size()) fail(line_no, line, "missing DC value");
  }
  return dc(parse_spice_number(tokens[idx]));
}

/// key=value option scan over trailing tokens.
std::map<std::string, std::string> parse_options(
    const std::vector<std::string>& tokens, size_t first) {
  std::map<std::string, std::string> out;
  for (size_t i = first; i < tokens.size(); ++i) {
    const auto eq = tokens[i].find('=');
    if (eq == std::string::npos) continue;
    out[lower(tokens[i].substr(0, eq))] = tokens[i].substr(eq + 1);
  }
  return out;
}

}  // namespace

std::unique_ptr<Circuit> parse_netlist(const std::string& text,
                                       const ModelRegistry& models) {
  auto ckt = std::make_unique<Circuit>();
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and blank lines.
    const auto first_ns = line.find_first_not_of(" \t\r");
    if (first_ns == std::string::npos) continue;
    if (line[first_ns] == '*' || line[first_ns] == '#') continue;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0][0] == '.') continue;  // analysis cards handled elsewhere

    const std::string name = lower(tokens[0]);
    const char kind = name[0];
    switch (kind) {
      case 'r': {
        if (tokens.size() < 4) fail(line_no, line, "R wants: name n1 n2 ohms");
        ckt->add_resistor(name, tokens[1], tokens[2],
                          parse_spice_number(tokens[3]));
        break;
      }
      case 'c': {
        if (tokens.size() < 4) fail(line_no, line, "C wants: name n1 n2 farad");
        double v_init = 0.0;
        const auto opts = parse_options(tokens, 4);
        if (const auto it = opts.find("ic"); it != opts.end()) {
          v_init = parse_spice_number(it->second);
        }
        ckt->add_capacitor(name, tokens[1], tokens[2],
                           parse_spice_number(tokens[3]), v_init);
        break;
      }
      case 'v': {
        if (tokens.size() < 4) fail(line_no, line, "V wants: name n+ n- value");
        ckt->add_vsource(name, tokens[1], tokens[2],
                         parse_source_value(tokens, 3, line_no, line));
        break;
      }
      case 'i': {
        if (tokens.size() < 4) fail(line_no, line, "I wants: name n+ n- value");
        ckt->add_isource(name, tokens[1], tokens[2],
                         parse_source_value(tokens, 3, line_no, line));
        break;
      }
      case 'd': {
        if (tokens.size() < 3) fail(line_no, line, "D wants: name anode cathode");
        double i_sat = 1e-14, ideality = 1.0;
        const auto opts = parse_options(tokens, 3);
        if (const auto it = opts.find("is"); it != opts.end()) {
          i_sat = parse_spice_number(it->second);
        }
        if (const auto it = opts.find("n"); it != opts.end()) {
          ideality = parse_spice_number(it->second);
        }
        ckt->add_diode(name, tokens[1], tokens[2], i_sat, ideality);
        break;
      }
      case 'm': {
        if (tokens.size() < 5) {
          fail(line_no, line, "M wants: name drain gate source model");
        }
        const std::string model_name = lower(tokens[4]);
        const auto it = models.find(model_name);
        if (it == models.end()) {
          fail(line_no, line, "unknown device model: " + model_name);
        }
        double mult = 1.0;
        const auto opts = parse_options(tokens, 5);
        if (const auto mit = opts.find("m"); mit != opts.end()) {
          mult = parse_spice_number(mit->second);
        }
        ckt->add_fet(name, tokens[1], tokens[2], tokens[3], it->second, mult);
        break;
      }
      default:
        fail(line_no, line, "unknown element kind");
    }
  }
  return ckt;
}

}  // namespace carbon::spice
