#include "spice/integrator.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"

namespace carbon::spice {

LteController::LteController(const LteControlConfig& cfg) : cfg_(cfg) {
  CARBON_REQUIRE(cfg.reltol > 0.0 && cfg.abstol > 0.0, "bad LTE tolerances");
  CARBON_REQUIRE(cfg.trtol >= 1.0, "trtol must be >= 1");
  CARBON_REQUIRE(cfg.growth_limit > 1.0 && cfg.shrink_limit < 1.0 &&
                     cfg.shrink_limit > 0.0,
                 "bad step growth/shrink limits");
  CARBON_REQUIRE(cfg.dt_min > 0.0 && cfg.dt_max >= cfg.dt_min,
                 "bad dt_min/dt_max");
  CARBON_REQUIRE(!cfg.pi || (cfg.pi_ki > 0.0 && cfg.pi_kp >= 0.0),
                 "bad PI controller exponents");
}

LteController::Decision LteController::decide(double dt, double err_ratio,
                                              int error_order) const {
  CARBON_REQUIRE(error_order == 2 || error_order == 3,
                 "corrector error order must be 2 (BE) or 3 (trap)");
  const double r = std::max(err_ratio, 1e-10);  // flat regions: full growth
  const double ideal = cfg_.safety * std::pow(r, -1.0 / error_order);

  Decision d;
  if (err_ratio <= 1.0 || dt <= cfg_.dt_min * (1.0 + 1e-12)) {
    d.accept = true;  // within tolerance, or at the floor (must progress)
    d.dt_next = dt * std::min(ideal, cfg_.growth_limit);
  } else {
    d.accept = false;
    // Retry strictly smaller, but never collapse faster than shrink_limit.
    d.dt_next = dt * std::clamp(ideal, cfg_.shrink_limit, 0.9);
  }
  d.dt_next = std::clamp(d.dt_next, cfg_.dt_min, cfg_.dt_max);
  return d;
}

LteController::Decision LteController::step(double dt, double err_ratio,
                                            int error_order) {
  if (!cfg_.pi) return decide(dt, err_ratio, error_order);
  CARBON_REQUIRE(error_order == 2 || error_order == 3,
                 "corrector error order must be 2 (BE) or 3 (trap)");
  const double r = std::max(err_ratio, 1e-10);

  Decision d;
  if (err_ratio <= 1.0 || dt <= cfg_.dt_min * (1.0 + 1e-12)) {
    d.accept = true;
    double factor;
    if (prev_ratio_ > 0.0) {
      // Gustafsson PI: the (r_prev / r) term damps growth while the error
      // is rising, so the step approaches the tolerance instead of being
      // thrown past it and rejected.
      factor = cfg_.safety * std::pow(r, -cfg_.pi_ki / error_order) *
               std::pow(prev_ratio_ / r, cfg_.pi_kp / error_order);
    } else {
      factor = cfg_.safety * std::pow(r, -1.0 / error_order);
    }
    if (just_rejected_) factor = std::min(factor, 1.0);  // no instant regrow
    d.dt_next = dt * std::min(factor, cfg_.growth_limit);
    prev_ratio_ = r;
    just_rejected_ = false;
  } else {
    d.accept = false;
    // Same shrink policy as the deadbeat rule: retry strictly smaller.
    const double ideal = cfg_.safety * std::pow(r, -1.0 / error_order);
    d.dt_next = dt * std::clamp(ideal, cfg_.shrink_limit, 0.9);
    just_rejected_ = true;
  }
  d.dt_next = std::clamp(d.dt_next, cfg_.dt_min, cfg_.dt_max);
  return d;
}

void LteController::reset_history() {
  prev_ratio_ = -1.0;
  just_rejected_ = false;
}

void PredictorHistory::reset() {
  depth_ = 1;
  h1_ = h2_ = 0.0;
}

void PredictorHistory::advance(const std::vector<double>& x_old, double h_s) {
  x2_.swap(x1_);
  h2_ = h1_;
  x1_ = x_old;
  h1_ = h_s;
  if (depth_ < 3) ++depth_;
}

int PredictorHistory::predict(const std::vector<double>& x_now, double h_s,
                              std::vector<double>& out) const {
  const size_t n = x_now.size();
  out.resize(n);
  if (depth_ < 2 || h1_ <= 0.0) {
    std::copy(x_now.begin(), x_now.end(), out.begin());
    return 0;
  }
  if (depth_ < 3 || h2_ <= 0.0) {
    const double a = h_s / h1_;  // linear extrapolation
    for (size_t i = 0; i < n; ++i) {
      out[i] = x_now[i] + a * (x_now[i] - x1_[i]);
    }
    return 1;
  }
  // Quadratic Newton extrapolation through (t-h1-h2, t-h1, t).
  for (size_t i = 0; i < n; ++i) {
    const double d1 = (x_now[i] - x1_[i]) / h1_;
    const double d2 = (x1_[i] - x2_[i]) / h2_;
    const double dd = (d1 - d2) / (h1_ + h2_);
    out[i] = x_now[i] + h_s * d1 + h_s * (h_s + h1_) * dd;
  }
  return 2;
}

double PredictorHistory::lte_factor(double h_s, bool trapezoidal,
                                    int pred_order) const {
  CARBON_REQUIRE(pred_order >= 1 && h_s > 0.0,
                 "lte_factor needs a predictor and a positive step");
  if (trapezoidal && pred_order >= 2) {
    // Both errors carry x''': E_c = -h^3/12, E_p = h(h+h1)(h+h1+h2)/6.
    const double ec = h_s * h_s * h_s / 12.0;
    const double ep = h_s * (h_s + h1_) * (h_s + h1_ + h2_) / 6.0;
    return ec / (ep + ec);
  }
  if (!trapezoidal && pred_order >= 2) {
    // Backward Euler against a quadratic predictor: the predictor is
    // x''-exact, so the divergence already *is* the corrector's x'' error
    // term (the predictor's own x''' error is higher order).
    return 1.0;
  }
  // Linear-predictor cases — BE, or trapezoidal before the quadratic
  // predictor is available (the x''-based estimate is conservative
  // there): E_c = -x''/2 h^2, E_p = x''/2 h(h+h1).
  const double ec = h_s * h_s;
  const double ep = h_s * (h_s + h1_);
  return ec / (ep + ec);
}

double lte_error_ratio(const std::vector<double>& x_corr,
                       const std::vector<double>& x_pred, int n_nodes,
                       double factor, const LteControlConfig& cfg) {
  double worst = 0.0;
  for (int i = 0; i < n_nodes; ++i) {
    const double lte = factor * std::abs(x_corr[i] - x_pred[i]);
    const double tol =
        cfg.trtol *
        (cfg.abstol +
         cfg.reltol * std::max(std::abs(x_corr[i]), std::abs(x_pred[i])));
    worst = std::max(worst, lte / tol);
  }
  return worst;
}

double max_update_ratio(const std::vector<double>& a,
                        const std::vector<double>& b, int n, double abstol,
                        double reltol) {
  double worst = 0.0;
  for (int i = 0; i < n; ++i) {
    const double tol =
        abstol + reltol * std::max(std::abs(a[i]), std::abs(b[i]));
    worst = std::max(worst, std::abs(a[i] - b[i]) / tol);
  }
  return worst;
}

std::vector<double> merge_breakpoints(std::vector<double> pts, double t_stop) {
  std::sort(pts.begin(), pts.end());
  const double eps = 1e-12 * t_stop;
  std::vector<double> out;
  out.reserve(pts.size());
  for (double t : pts) {
    if (t <= eps || t >= t_stop - eps) continue;
    if (!out.empty() && t - out.back() <= eps) continue;
    out.push_back(t);
  }
  return out;
}

}  // namespace carbon::spice
