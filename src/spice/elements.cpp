#include "spice/elements.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "phys/require.h"

namespace carbon::spice {

void StampContext::add_jac(int row, int col, double val) const {
  if (jac_slots) {
#ifndef NDEBUG
    assert(jac_cursor < debug_jac_count &&
           "stamp() issued more add_jac calls than its captured footprint");
    assert(debug_jac[jac_cursor] == std::make_pair(row, col) &&
           "stamp() add_jac order diverged from its captured footprint");
#endif
    if (suppress_jac) {
      ++jac_cursor;  // value already lives in the static baseline
      return;
    }
    *jac_slots[jac_cursor++] += val;
    return;
  }
  if (capture_jac) {
    capture_jac->emplace_back(row, col);
    return;
  }
  if (row <= 0 || col <= 0) return;  // ground row/col eliminated
  (*jac)(row - 1, col - 1) += val;
}

void StampContext::add_rhs(int row, double val) const {
  if (rhs_slots) {
#ifndef NDEBUG
    assert(rhs_cursor < debug_rhs_count &&
           "stamp() issued more add_rhs calls than its captured footprint");
    assert(debug_rhs[rhs_cursor] == row &&
           "stamp() add_rhs order diverged from its captured footprint");
#endif
    *rhs_slots[rhs_cursor++] += val;
    return;
  }
  if (capture_rhs) {
    capture_rhs->push_back(row);
    return;
  }
  if (row <= 0) return;
  (*rhs)[row - 1] += val;
}

void AcStampContext::add_g(int row, int col, double g_siemens) const {
  if (cap_g) {
    cap_g->push_back({row, col, g_siemens});
    return;
  }
  if (row <= 0 || col <= 0) return;  // ground row/col eliminated
  (*jac)(row - 1, col - 1) += phys::Complex{g_siemens, 0.0};
}

void AcStampContext::add_c(int row, int col, double c_farad) const {
  if (cap_c) {
    cap_c->push_back({row, col, c_farad});
    return;
  }
  if (row <= 0 || col <= 0) return;
  (*jac)(row - 1, col - 1) += phys::Complex{0.0, omega * c_farad};
}

void AcStampContext::add_rhs(int row, phys::Complex val) const {
  if (cap_rhs) {
    cap_rhs->push_back({row, val});
    return;
  }
  if (row <= 0) return;
  (*rhs)[row - 1] += val;
}

double NoiseSource::psd_a2_hz(double f_hz) const {
  double s = white_a2_hz;
  if (flicker_a2 > 0.0 && f_hz > 0.0) {
    s += flicker_a2 * std::pow(f_hz, -flicker_exp);
  }
  return s;
}

namespace {
constexpr double kBoltzmann = 1.380649e-23;       // [J/K]
constexpr double kElementaryCharge = 1.602176634e-19;  // [C]
}  // namespace

Element::Element(std::string name, std::vector<NodeId> nodes)
    : name_(std::move(name)), nodes_(std::move(nodes)) {
  for (NodeId n : nodes_) {
    CARBON_REQUIRE(n >= 0, "negative node id");
  }
}

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId n1, NodeId n2, double ohms)
    : Element(std::move(name), {n1, n2}), ohms_(ohms) {
  CARBON_REQUIRE(ohms > 0.0, "resistance must be positive");
}

void Resistor::stamp(const StampContext& ctx) const {
  const double g = 1.0 / ohms_;
  const NodeId a = nodes_[0], b = nodes_[1];
  ctx.add_jac(a, a, g);
  ctx.add_jac(b, b, g);
  ctx.add_jac(a, b, -g);
  ctx.add_jac(b, a, -g);
}

void Resistor::stamp_ac(const AcStampContext& ctx) const {
  const double g = 1.0 / ohms_;
  const NodeId a = nodes_[0], b = nodes_[1];
  ctx.add_g(a, a, g);
  ctx.add_g(b, b, g);
  ctx.add_g(a, b, -g);
  ctx.add_g(b, a, -g);
}

void Resistor::collect_noise(const NoiseContext& ctx,
                             std::vector<NoiseSource>& out) const {
  NoiseSource s;
  s.label = name_ + ".thermal";
  s.n_plus = nodes_[0];
  s.n_minus = nodes_[1];
  s.white_a2_hz = 4.0 * kBoltzmann * ctx.temperature_k / ohms_;
  out.push_back(std::move(s));
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId n1, NodeId n2, double farad,
                     double v_init)
    : Element(std::move(name), {n1, n2}), farad_(farad), v_init_(v_init) {
  CARBON_REQUIRE(farad > 0.0, "capacitance must be positive");
}

void Capacitor::reset_state() {
  v_prev_ = v_init_;
  i_prev_ = 0.0;
}

void Capacitor::stamp(const StampContext& ctx) const {
  if (!ctx.transient) return;  // open circuit in DC
  const NodeId a = nodes_[0], b = nodes_[1];
  // Companion model:  BE:   i = C/dt (v - v_prev)
  //                   TRAP: i = 2C/dt (v - v_prev) - i_prev
  double geq, ieq;
  if (ctx.trapezoidal) {
    geq = 2.0 * farad_ / ctx.dt_s;
    ieq = -geq * v_prev_ - i_prev_;
  } else {
    geq = farad_ / ctx.dt_s;
    ieq = -geq * v_prev_;
  }
  ctx.add_jac(a, a, geq);
  ctx.add_jac(b, b, geq);
  ctx.add_jac(a, b, -geq);
  ctx.add_jac(b, a, -geq);
  // i(v) = geq*v + ieq; Norton current ieq leaves node a.
  ctx.add_rhs(a, -ieq);
  ctx.add_rhs(b, ieq);
}

void Capacitor::stamp_ac(const AcStampContext& ctx) const {
  const NodeId a = nodes_[0], b = nodes_[1];
  ctx.add_c(a, a, farad_);
  ctx.add_c(b, b, farad_);
  ctx.add_c(a, b, -farad_);
  ctx.add_c(b, a, -farad_);
}

void Capacitor::set_transient_ic(const StampContext& ctx) {
  v_prev_ = ctx.v(nodes_[0]) - ctx.v(nodes_[1]);
  i_prev_ = 0.0;
}

void Capacitor::accept_step(const StampContext& ctx) {
  const double v_new = ctx.v(nodes_[0]) - ctx.v(nodes_[1]);
  if (ctx.trapezoidal) {
    i_prev_ = 2.0 * farad_ / ctx.dt_s * (v_new - v_prev_) - i_prev_;
  } else {
    i_prev_ = farad_ / ctx.dt_s * (v_new - v_prev_);
  }
  v_prev_ = v_new;
}

// ----------------------------------------------------------------- VSource

VSource::VSource(std::string name, NodeId n_plus, NodeId n_minus,
                 WaveformPtr wave)
    : Element(std::move(name), {n_plus, n_minus}), wave_(std::move(wave)) {
  CARBON_REQUIRE(wave_ != nullptr, "null waveform");
}

void VSource::stamp(const StampContext& ctx) const {
  const NodeId a = nodes_[0], b = nodes_[1];
  const int br = branch_base_;  // row/col index (1-based after nodes)
  CARBON_REQUIRE(br > 0, "branch index not assigned");
  // KCL: branch current enters node a, leaves node b.
  ctx.add_jac(a, br, 1.0);
  ctx.add_jac(b, br, -1.0);
  // Branch equation: v(a) - v(b) = V(t).
  ctx.add_jac(br, a, 1.0);
  ctx.add_jac(br, b, -1.0);
  const double v = ctx.transient ? wave_->value(ctx.time_s)
                                 : wave_->dc_value();
  ctx.add_rhs(br, ctx.source_scale * v);
}

void VSource::collect_breakpoints(double t_stop,
                                  std::vector<double>& out) const {
  wave_->breakpoints(t_stop, out);
}

void VSource::stamp_ac(const AcStampContext& ctx) const {
  const NodeId a = nodes_[0], b = nodes_[1];
  const int br = branch_base_;
  ctx.add_g(a, br, 1.0);
  ctx.add_g(b, br, -1.0);
  ctx.add_g(br, a, 1.0);
  ctx.add_g(br, b, -1.0);
  ctx.add_rhs(br, phys::Complex{ac_magnitude_, 0.0});
}

// ----------------------------------------------------------------- ISource

ISource::ISource(std::string name, NodeId n_plus, NodeId n_minus,
                 WaveformPtr wave)
    : Element(std::move(name), {n_plus, n_minus}), wave_(std::move(wave)) {
  CARBON_REQUIRE(wave_ != nullptr, "null waveform");
}

void ISource::collect_breakpoints(double t_stop,
                                  std::vector<double>& out) const {
  wave_->breakpoints(t_stop, out);
}

void ISource::stamp(const StampContext& ctx) const {
  const double i = ctx.source_scale * (ctx.transient
                                           ? wave_->value(ctx.time_s)
                                           : wave_->dc_value());
  // Current flows from n+ through the source to n-: injects into n-.
  ctx.add_rhs(nodes_[0], -i);
  ctx.add_rhs(nodes_[1], i);
}

// ------------------------------------------------------------------- Diode

Diode::Diode(std::string name, NodeId anode, NodeId cathode, double i_sat_a,
             double ideality, double temperature_k)
    : Element(std::move(name), {anode, cathode}), i_sat_(i_sat_a),
      n_(ideality), vt_(8.617333e-5 * temperature_k) {
  CARBON_REQUIRE(i_sat_a > 0.0, "saturation current must be positive");
  CARBON_REQUIRE(ideality >= 1.0, "ideality must be >= 1");
}

void Diode::reset_state() { cache_valid_ = false; }

double Diode::evaluate(double v_raw, double* i0, double* g) const {
  // Junction-voltage limiting keeps exp() in range during NR.
  const double v_crit = n_ * vt_ * std::log(n_ * vt_ / (i_sat_ * 1.414));
  const double v = std::min(v_raw, std::max(v_crit, 0.8));
  const double e = std::exp(v / (n_ * vt_));
  *i0 = i_sat_ * (e - 1.0);
  *g = i_sat_ * e / (n_ * vt_);
  return v;
}

void Diode::stamp(const StampContext& ctx) const {
  const NodeId a = nodes_[0], b = nodes_[1];
  const double v_raw = ctx.v(a) - ctx.v(b);

  // Quiescent-device bypass, mirroring Fet: when the junction voltage
  // moved less than bypass_vtol since the cached evaluation, reuse the
  // cached {i0, g} and linearize about the cached (limited) bias — the
  // Taylor expansion the cache is valid for, consistent to
  // O(bypass_vtol^2 / Vt) here.
  double i0, g_exp, v_lin;
  if (cache_valid_ && ctx.bypass_vtol > 0.0 &&
      std::abs(v_raw - v_cache_) <= ctx.bypass_vtol) {
    i0 = i0_cache_;
    g_exp = g_cache_;
    v_lin = vlim_cache_;
    if (ctx.counters) ++ctx.counters->device_bypasses;
  } else {
    v_lin = evaluate(v_raw, &i0, &g_exp);
    if (!std::isfinite(i0) || !std::isfinite(g_exp)) {
      throw NonFiniteEvalError(
          name_, "diode '" + name_ + "': non-finite junction evaluation at v=" +
                     std::to_string(v_raw));
    }
    v_cache_ = v_raw;
    vlim_cache_ = v_lin;
    i0_cache_ = i0;
    g_cache_ = g_exp;
    cache_valid_ = true;
    if (ctx.counters) ++ctx.counters->device_evals;
  }

  const double g = std::max(g_exp, ctx.gmin);
  const double ieq = i0 - g * v_lin;
  ctx.add_jac(a, a, g);
  ctx.add_jac(b, b, g);
  ctx.add_jac(a, b, -g);
  ctx.add_jac(b, a, -g);
  ctx.add_rhs(a, -ieq);
  ctx.add_rhs(b, ieq);
}

void Diode::stamp_ac(const AcStampContext& ctx) const {
  const NodeId a = nodes_[0], b = nodes_[1];
  // Same junction linearization as the DC stamp and collect_noise, so the
  // AC conductance and the shot-noise current always describe one bias.
  double i0, g_exp;
  evaluate(ctx.v_dc(a) - ctx.v_dc(b), &i0, &g_exp);
  const double g = g_exp + 1e-12;  // floor keeps a reverse-biased row regular
  ctx.add_g(a, a, g);
  ctx.add_g(b, b, g);
  ctx.add_g(a, b, -g);
  ctx.add_g(b, a, -g);
}

void Diode::collect_noise(const NoiseContext& ctx,
                          std::vector<NoiseSource>& out) const {
  double i0, g;
  evaluate(ctx.v_dc(nodes_[0]) - ctx.v_dc(nodes_[1]), &i0, &g);
  NoiseSource s;
  s.label = name_ + ".shot";
  s.n_plus = nodes_[0];
  s.n_minus = nodes_[1];
  s.white_a2_hz = 2.0 * kElementaryCharge * std::abs(i0);
  out.push_back(std::move(s));
}

// --------------------------------------------------------------------- Fet

Fet::Fet(std::string name, NodeId drain, NodeId gate, NodeId source,
         device::DeviceModelPtr model, double multiplier)
    : Element(std::move(name), {drain, gate, source}),
      model_(std::move(model)), mult_(multiplier) {
  CARBON_REQUIRE(model_ != nullptr, "null device model");
  CARBON_REQUIRE(multiplier > 0.0, "multiplier must be positive");
}

void Fet::reset_state() { cache_valid_ = false; }

void Fet::set_model(device::DeviceModelPtr model) {
  CARBON_REQUIRE(model != nullptr, "fet model must not be null");
  model_ = std::move(model);
  cache_valid_ = false;  // cached eval belongs to the old model
}

void Fet::stamp(const StampContext& ctx) const {
  const NodeId d = nodes_[0], g = nodes_[1], s = nodes_[2];
  const double vgs = ctx.v(g) - ctx.v(s);
  const double vds = ctx.v(d) - ctx.v(s);

  // Quiescent-device bypass: when the terminal voltages moved less than
  // bypass_vtol since the cached eval(), reuse the cached {id, gm, gds}
  // and linearize the companion around the *cached* bias point — that is
  // exactly the Taylor expansion the cache is valid for, so the served
  // stamp is consistent to O(bypass_vtol^2 * curvature).
  double vgs_lin = vgs, vds_lin = vds;
  device::DeviceEval e;
  if (cache_valid_ && ctx.bypass_vtol > 0.0 &&
      std::abs(vgs - vgs_cache_) <= ctx.bypass_vtol &&
      std::abs(vds - vds_cache_) <= ctx.bypass_vtol) {
    e = eval_cache_;
    vgs_lin = vgs_cache_;
    vds_lin = vds_cache_;
    if (ctx.counters) ++ctx.counters->device_bypasses;
  } else {
    // One eval() gives current and both conductances — a single table
    // lookup for tabulated models, a finite-difference fallback otherwise.
    e = model_->eval(vgs, vds);
    if (!e.is_finite()) {
      throw NonFiniteEvalError(
          name_, "fet '" + name_ + "': model '" + model_->name() +
                     "' returned a non-finite eval at vgs=" +
                     std::to_string(vgs) + " vds=" + std::to_string(vds));
    }
    eval_cache_ = e;
    vgs_cache_ = vgs;
    vds_cache_ = vds;
    cache_valid_ = true;
    if (ctx.counters) ++ctx.counters->device_evals;
  }
  const double id0 = mult_ * e.id;
  const double gm = mult_ * e.gm;
  const double gds = mult_ * e.gds + ctx.gmin;  // keep Jacobian non-singular

  // Norton companion: id = id0 + gm (vgs - vgs0) + gds (vds - vds0)
  //                     = gm*vgs + gds*vds + ieq.
  const double ieq = id0 - gm * vgs_lin - gds * vds_lin;

  // Drain row: +id; source row: -id.
  ctx.add_jac(d, g, gm);
  ctx.add_jac(d, s, -gm);
  ctx.add_jac(d, d, gds);
  ctx.add_jac(d, s, -gds);
  ctx.add_rhs(d, -ieq);

  ctx.add_jac(s, g, -gm);
  ctx.add_jac(s, s, gm);
  ctx.add_jac(s, d, -gds);
  ctx.add_jac(s, s, gds);
  ctx.add_rhs(s, ieq);

  // Tiny shunt on the gate so an otherwise-floating gate node never makes
  // the Jacobian singular (the gate is DC-open in this model).
  ctx.add_jac(g, g, std::max(ctx.gmin, 1e-12));
}

void Fet::stamp_ac(const AcStampContext& ctx) const {
  const NodeId d = nodes_[0], g = nodes_[1], s = nodes_[2];
  const double vgs = ctx.v_dc(g) - ctx.v_dc(s);
  const double vds = ctx.v_dc(d) - ctx.v_dc(s);
  const device::DeviceEval e = model_->eval(vgs, vds);
  const double gm = mult_ * e.gm;
  const double gds = mult_ * e.gds + 1e-12;
  ctx.add_g(d, g, gm);
  ctx.add_g(d, s, -gm - gds);
  ctx.add_g(d, d, gds);
  ctx.add_g(s, g, -gm);
  ctx.add_g(s, s, gm + gds);
  ctx.add_g(s, d, -gds);
  ctx.add_g(g, g, 1e-12);
}

void Fet::collect_noise(const NoiseContext& ctx,
                        std::vector<NoiseSource>& out) const {
  const NodeId d = nodes_[0], g = nodes_[1], s = nodes_[2];
  const double vgs = ctx.v_dc(g) - ctx.v_dc(s);
  const double vds = ctx.v_dc(d) - ctx.v_dc(s);
  const device::DeviceEval e = model_->eval(vgs, vds);
  const device::NoiseParams p = model_->noise_params();

  NoiseSource th;
  th.label = name_ + ".thermal";
  th.n_plus = d;
  th.n_minus = s;
  th.white_a2_hz =
      p.gamma * 4.0 * kBoltzmann * ctx.temperature_k * std::abs(mult_ * e.gm);
  out.push_back(std::move(th));

  if (p.kf > 0.0) {
    NoiseSource fl;
    fl.label = name_ + ".flicker";
    fl.n_plus = d;
    fl.n_minus = s;
    fl.flicker_a2 = p.kf * std::pow(std::abs(mult_ * e.id), p.af);
    fl.flicker_exp = 1.0;
    out.push_back(std::move(fl));
  }
}

}  // namespace carbon::spice