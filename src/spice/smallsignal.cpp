#include "spice/smallsignal.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "obs/trace.h"
#include "phys/require.h"

namespace carbon::spice {

// ----------------------------------------------------------------- AcSystem

void AcSystem::build(Circuit& ckt, const std::vector<double>& x_dc,
                     LinearBackend backend, int sparse_threshold) {
  ckt.assign_branches();
  const int n = ckt.num_unknowns();
  CARBON_REQUIRE(n > 0, "empty circuit");
  CARBON_REQUIRE(static_cast<int>(x_dc.size()) == n,
                 "operating-point vector does not match the circuit");

  // Same topology + backend request: keep the pattern AND the sparse LU's
  // symbolic analysis; only the captured values are refreshed below.
  const bool structure_ok = built_ && uid_ == ckt.uid() &&
                            revision_ == ckt.revision() && n_ == n &&
                            requested_ == backend &&
                            threshold_ == sparse_threshold;

  n_ = n;
  sparse_ = backend == LinearBackend::kSparse ||
            (backend == LinearBackend::kAuto && n >= sparse_threshold);

  // --- value-capture pass: one stamp_ac per element records footprint and
  // value of every G / C / stimulus contribution.  After this pass no
  // element is consulted again for the whole sweep.
  std::vector<AcStampContext::CoordValue> gcap, ccap;
  std::vector<AcStampContext::RhsValue> rcap;
  AcStampContext cap;
  cap.x_dc = &x_dc;
  cap.cap_g = &gcap;
  cap.cap_c = &ccap;
  cap.cap_rhs = &rcap;
  for (const auto& el : ckt.elements()) el->stamp_ac(cap);

  if (!structure_ok) {
    // --- pattern from the union of the G and C footprints (the MNA
    // pattern is frequency-independent, so it is built exactly once per
    // topology and every frequency point refactors on it).
    std::vector<std::pair<int, int>> coords;
    coords.reserve(gcap.size() + ccap.size());
    for (const auto& e : gcap) {
      if (e.row > 0 && e.col > 0) coords.emplace_back(e.row - 1, e.col - 1);
    }
    for (const auto& e : ccap) {
      if (e.row > 0 && e.col > 0) coords.emplace_back(e.row - 1, e.col - 1);
    }
    if (sparse_) {
      smat_ = phys::SparseMatrixZ::from_coords(n, std::move(coords));
      slu_ = phys::SparseLuZ();  // drop any stale pattern analysis
      djac_ = phys::ComplexMatrix();
    } else {
      djac_ = phys::ComplexMatrix(n, n);
      smat_ = phys::SparseMatrixZ();
      slu_ = phys::SparseLuZ();
    }
  }

  // --- G baseline: sum the conductance image into the value storage once;
  // assemble_factor() memcpy-restores it at every frequency point.
  const auto slot_of = [&](int row, int col) {
    return sparse_ ? smat_.slot(row - 1, col - 1)
                   : (row - 1) * n_ + (col - 1);
  };
  if (sparse_) {
    smat_.zero_values();
  } else {
    djac_.fill({});
  }
  phys::Complex* vals = sparse_ ? smat_.values().data() : djac_.data();
  for (const auto& e : gcap) {
    if (e.row <= 0 || e.col <= 0) continue;  // ground row/col eliminated
    vals[slot_of(e.row, e.col)] += phys::Complex{e.value, 0.0};
  }
  const size_t nvals =
      sparse_ ? static_cast<size_t>(smat_.nnz()) : static_cast<size_t>(n) * n;
  baseline_.assign(vals, vals + nvals);

  // --- jωC entries, merged per value slot: the only per-frequency writes.
  std::map<int, double> c_by_slot;
  for (const auto& e : ccap) {
    if (e.row <= 0 || e.col <= 0 || e.value == 0.0) continue;
    c_by_slot[slot_of(e.row, e.col)] += e.value;
  }
  c_entries_.assign(c_by_slot.begin(), c_by_slot.end());

  // --- stimulus phasor (frequency-independent).
  rhs_.assign(n, phys::Complex{});
  for (const auto& e : rcap) {
    if (e.row > 0) rhs_[e.row - 1] += e.value;
  }

  uid_ = ckt.uid();
  revision_ = ckt.revision();
  requested_ = backend;
  threshold_ = sparse_threshold;
  dense_factored_ = false;
  built_ = true;
}

int AcSystem::nnz() const { return sparse_ ? smat_.nnz() : n_ * n_; }

bool AcSystem::assemble_factor(double omega) {
  CARBON_REQUIRE(built_, "AcSystem: build() has not run");
  phys::Complex* vals = sparse_ ? smat_.values().data() : djac_.data();
  std::memcpy(vals, baseline_.data(),
              baseline_.size() * sizeof(phys::Complex));
  for (const auto& [slot, c] : c_entries_) {
    vals[slot] += phys::Complex{0.0, omega * c};
  }
  try {
    if (sparse_) {
      slu_.factor(smat_);
    } else {
      dlu_.factor(djac_);
      dense_factored_ = true;
    }
  } catch (const phys::ConvergenceError&) {
    dense_factored_ = false;
    return false;
  }
  return true;
}

void AcSystem::solve_in_place(std::vector<phys::Complex>& bx) const {
  if (sparse_) {
    slu_.solve_in_place(bx);
  } else {
    CARBON_REQUIRE(dense_factored_, "AcSystem: no factorization held");
    dlu_.solve_in_place(bx);
  }
}

void AcSystem::solve_transpose_in_place(std::vector<phys::Complex>& bx) const {
  if (sparse_) {
    slu_.solve_transpose_in_place(bx);
  } else {
    CARBON_REQUIRE(dense_factored_, "AcSystem: no factorization held");
    dlu_.solve_transpose_in_place(bx);
  }
}

// ------------------------------------------------------- log_frequency_grid

std::vector<double> log_frequency_grid(double f_start_hz, double f_stop_hz,
                                       int points_per_decade) {
  CARBON_REQUIRE(f_stop_hz > f_start_hz && f_start_hz > 0.0,
                 "need a positive ascending frequency range");
  CARBON_REQUIRE(points_per_decade >= 1, "points per decade >= 1");
  const double decades = std::log10(f_stop_hz / f_start_hz);
  const int n =
      static_cast<int>(std::ceil(decades * points_per_decade)) + 1;
  std::vector<double> f(n);
  for (int i = 0; i < n; ++i) {
    f[i] = f_start_hz * std::pow(10.0, decades * i / (n - 1));
  }
  return f;
}

// -------------------------------------------------------------- noise_sweep

NoiseResult noise_sweep(Circuit& ckt, VSource& input,
                        const std::string& output_node,
                        const NoiseOptions& opt) {
  const std::vector<double> freqs =
      log_frequency_grid(opt.f_start_hz, opt.f_stop_hz, opt.points_per_decade);

  // Operating point; all small-signal values and noise PSDs are evaluated
  // at it.
  const Solution dc_sol = operating_point(ckt, opt.dc, nullptr, opt.workspace);
  const NodeId out = ckt.find_node(output_node);
  CARBON_REQUIRE(out != 0, "noise output node cannot be ground");

  NoiseContext nctx;
  nctx.x_dc = &dc_sol.x;
  nctx.temperature_k = opt.temperature_k;
  std::vector<NoiseSource> sources;
  for (const auto& el : ckt.elements()) el->collect_noise(nctx, sources);

  // Restore the input's AC magnitude even when the sweep throws (singular
  // small-signal system at some frequency).
  struct MagnitudeGuard {
    VSource& src;
    double prev;
    ~MagnitudeGuard() { src.set_ac_magnitude(prev); }
  } guard{input, input.ac_magnitude()};
  input.set_ac_magnitude(1.0);
  AcSystem local;
  AcSystem& sys = opt.system ? *opt.system : local;
  sys.build(ckt, dc_sol.x, opt.dc.backend, opt.dc.sparse_threshold);
  const int n = sys.size();

  NoiseResult res;
  res.table = phys::DataTable(
      {"freq_hz", "onoise_v2_hz", "inoise_v2_hz", "gain_mag"});
  res.contributions.reserve(sources.size());
  for (const auto& s : sources) res.contributions.emplace_back(s.label, 0.0);

  std::vector<phys::Complex> x, y(n);
  std::vector<double> psd_prev(sources.size(), 0.0);
  std::vector<double> psd_now(sources.size(), 0.0);
  double onoise_prev = 0.0, inoise_prev = 0.0, f_prev = 0.0;

  obs::Tracer* const tr = obs::tracer();
  obs::PhaseTimes* const ph = opt.dc.phases;
  const bool timing = (ph != nullptr) || (tr != nullptr);

  for (size_t i = 0; i < freqs.size(); ++i) {
    const double f = freqs[i];
    const double omega = 2.0 * M_PI * f;
    // Cooperative deadline/cancel poll, mirroring the Newton, transient
    // and AC-sweep loops.
    if (opt.dc.cancel) opt.dc.cancel->throw_if_stopped("noise");
    long long t0 = 0, t1 = 0;
    if (timing) t0 = obs::now_ns();
    CARBON_REQUIRE(sys.assemble_factor(omega),
                   "noise_sweep: singular small-signal system");
    if (timing) {
      t1 = obs::now_ns();
      if (ph) ph->factor_ns += t1 - t0;
    }

    // Forward solve: gain from the designated input to the output node.
    x = sys.stimulus();
    sys.solve_in_place(x);
    const double gain2 = std::norm(x[out - 1]);

    // Adjoint solve: y[j] = transfer from a unit current injected at MNA
    // row j to V(out) — every noise source's transfer in one solve.
    std::fill(y.begin(), y.end(), phys::Complex{});
    y[out - 1] = phys::Complex{1.0, 0.0};
    sys.solve_transpose_in_place(y);
    if (timing) {
      const long long t2 = obs::now_ns();
      if (ph) ph->solve_ns += t2 - t1;  // forward + adjoint solves
      if (tr) tr->span("noise-point", t0, t2 - t0);
    }

    double s_out = 0.0;
    for (size_t k = 0; k < sources.size(); ++k) {
      const NoiseSource& src = sources[k];
      const phys::Complex t =
          (src.n_plus > 0 ? y[src.n_plus - 1] : phys::Complex{}) -
          (src.n_minus > 0 ? y[src.n_minus - 1] : phys::Complex{});
      psd_now[k] = src.psd_a2_hz(f) * std::norm(t);
      s_out += psd_now[k];
    }
    const double s_in = s_out / std::max(gain2, 1e-300);
    res.table.add_row({f, s_out, s_in, std::sqrt(gain2)});

    // Integrate: flat extension of the first point down to DC, trapezoid
    // across the band.
    if (i == 0) {
      res.onoise_total_v2 += s_out * f;
      res.inoise_total_v2 += s_in * f;
      for (size_t k = 0; k < sources.size(); ++k) {
        res.contributions[k].second += psd_now[k] * f;
      }
    } else {
      const double half_df = 0.5 * (f - f_prev);
      res.onoise_total_v2 += (onoise_prev + s_out) * half_df;
      res.inoise_total_v2 += (inoise_prev + s_in) * half_df;
      for (size_t k = 0; k < sources.size(); ++k) {
        res.contributions[k].second += (psd_prev[k] + psd_now[k]) * half_df;
      }
    }
    onoise_prev = s_out;
    inoise_prev = s_in;
    f_prev = f;
    psd_prev.swap(psd_now);
  }
  return res;
}

}  // namespace carbon::spice
