#pragma once

/// @file measure.h
/// Waveform and transfer-curve measurements: the inverter metrics of the
/// paper's Fig. 2 (gain, noise margins) plus transient delay/period/energy
/// extraction used by the ring-oscillator and logic characterization.

#include <string>

#include "phys/table.h"

namespace carbon::spice {

/// Voltage-transfer-curve metrics of an inverter.
struct VtcMetrics {
  double v_dd = 0.0;
  double v_switch = 0.0;    ///< input where vout = vin
  double max_abs_gain = 0.0;///< peak |dVout/dVin|
  double v_il = 0.0;        ///< low unity-gain input point
  double v_ih = 0.0;        ///< high unity-gain input point
  double v_ol = 0.0;        ///< output at vin = v_ih (logic-low level)
  double v_oh = 0.0;        ///< output at vin = v_il (logic-high level)
  double nm_low = 0.0;      ///< NML = v_il - v_ol
  double nm_high = 0.0;     ///< NMH = v_oh - v_ih
  bool regenerative = false;///< max gain > 1 (a working logic gate)
};

/// Analyze a VTC table (column @p vin_col vs @p vout_col).
/// For a non-regenerative curve (max |gain| <= 1, the paper's Fig. 2(d)
/// case) the unity-gain points collapse and both noise margins are
/// reported as 0.
VtcMetrics analyze_vtc(const phys::DataTable& vtc, const std::string& vin_col,
                       const std::string& vout_col, double v_dd);

/// Time of the first crossing of @p level in column @p col after @p t_min
/// (linear interpolation; rising = true for upward crossings).
/// Returns a negative value when no crossing exists.
double crossing_time(const phys::DataTable& tran, const std::string& col,
                     double level, bool rising, double t_min = 0.0);

/// Propagation delay between a step on @p in_col and the response on
/// @p out_col, both measured at 50% of v_dd.
double propagation_delay(const phys::DataTable& tran,
                         const std::string& in_col,
                         const std::string& out_col, double v_dd,
                         bool in_rising);

/// Average period of an oscillating column: mean spacing of rising
/// mid-level crossings, skipping the first @p skip_cycles.
double oscillation_period(const phys::DataTable& tran, const std::string& col,
                          double v_mid, int skip_cycles = 2);

/// Energy delivered by a source over the run: integral of v * i(t) dt,
/// with i taken from column @p i_col (SPICE sign: sourcing = negative), so
/// a positive result means the source delivered energy.
double supply_energy(const phys::DataTable& tran, const std::string& i_col,
                     double v_dd);

/// Column statistics of `.measure <an> <name> max|min|avg|rms|pp` cards.
/// avg/rms are trapezoid-weighted over the abscissa (robust on adaptive
/// transient grids where rows are not equally spaced).
enum class ColumnStat { kMax, kMin, kAvg, kRms, kPeakToPeak };

/// Evaluate @p stat of column @p col over the abscissa window
/// [@p from, @p to] of column @p xcol (the full range by default).
/// Throws on an empty window.
double column_stat(const phys::DataTable& table, const std::string& xcol,
                   const std::string& col, ColumnStat stat,
                   double from = -1e308, double to = 1e308);

/// Linear interpolation of column @p col at abscissa @p x of column
/// @p xcol (`.measure find ... at=`).  Clamps outside the table range;
/// the abscissa must be monotonically non-decreasing.
double value_at(const phys::DataTable& table, const std::string& xcol,
                const std::string& col, double x);

}  // namespace carbon::spice
