#pragma once

/// @file session.h
/// SimSession: the deck dispatcher behind the netlist-in → results-out
/// surface.  It takes a parsed Deck (netlist_parser.h), runs every
/// analysis request per .step point through the existing engine
/// (operating_point / dc_sweep / transient / ac_sweep / noise_sweep),
/// evaluates the .measure cards against the recorded tables, and renders
/// one structured core::Json document per deck.
///
/// The session is long-lived: a cache keyed on the deck's value-free
/// topology signature holds one instantiated Circuit, one NewtonWorkspace
/// and one AcSystem per topology.  Step points — and repeated decks that
/// differ only in values — *retune* the cached circuit in place (element
/// setters, no revision bump) and refresh the MNA static baseline, so the
/// matrix pattern, slot tables and the sparse symbolic analyses (real and
/// complex) are built exactly once per topology.  The JSON "session"
/// block reports those counters so callers (and the acceptance tests) can
/// assert the reuse actually happened.
///
/// run_deck_text() never throws: malformed decks render as
///   {"ok": false, "error": {"type": "parse", "line": N, ...}}
/// and convergence failures as
///   {"ok": false, "error": {"type": "solve_failure", ...}}  (the
/// structured SolveFailure ladder diagnostics), so a batch driver can keep
/// consuming decks after a bad one.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/report.h"
#include "spice/ac.h"
#include "spice/analyses.h"
#include "spice/netlist_parser.h"
#include "spice/smallsignal.h"

namespace carbon::spice {

/// Session-wide options of the JSON rendering.
struct SessionOptions {
  /// Emit the recorded analysis tables ("table" blocks).  Off leaves only
  /// stats + measures — the .probe none behaviour for every deck.
  bool emit_tables = true;
  /// Hard ceiling on rows per emitted table (tables are thinned by the
  /// deck's print interval first; this is the backstop).
  int max_table_rows = 100000;
};

class SimSession {
 public:
  explicit SimSession(ModelRegistry registry = {}, SessionOptions opts = {});

  /// Parse + run one deck.  Never throws; errors become structured JSON.
  core::Json run_deck_text(const std::string& text);

  /// Run an already parsed deck.  Throws ParseError on card-level
  /// evaluation errors and SolveFailureError on convergence failure
  /// (run_deck_text wraps both).
  core::Json run_deck(const Deck& deck);

  const ModelRegistry& registry() const { return registry_; }
  std::size_t cache_entries() const { return cache_.size(); }
  long decks_run() const { return decks_run_; }

 private:
  struct CacheEntry {
    std::unique_ptr<Circuit> circuit;
    NewtonWorkspace workspace;
    AcSystem ac;
    /// Deck-model memo (see netlist_parser's resolve_model): unchanged
    /// .model cards keep their built DeviceModelPtr across steps/decks.
    std::map<std::string, device::DeviceModelPtr> model_memo;
    long uses = 0;
  };

  CacheEntry& entry_for(const Deck& deck, bool* cache_hit);

  ModelRegistry registry_;
  SessionOptions opts_;
  std::map<std::string, CacheEntry> cache_;  ///< key: topology signature
  long decks_run_ = 0;
};

}  // namespace carbon::spice
