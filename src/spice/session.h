#pragma once

/// @file session.h
/// SimSession: the deck dispatcher behind the netlist-in → results-out
/// surface.  It takes a parsed Deck (netlist_parser.h), runs every
/// analysis request per .step point through the existing engine
/// (operating_point / dc_sweep / transient / ac_sweep / noise_sweep),
/// evaluates the .measure cards against the recorded tables, and renders
/// one structured core::Json document per deck.
///
/// The session is long-lived: a cache keyed on the deck's value-free
/// topology signature holds one instantiated Circuit, one NewtonWorkspace
/// and one AcSystem per topology.  Step points — and repeated decks that
/// differ only in values — *retune* the cached circuit in place (element
/// setters, no revision bump) and refresh the MNA static baseline, so the
/// matrix pattern, slot tables and the sparse symbolic analyses (real and
/// complex) are built exactly once per topology.  The cache is *bounded*:
/// SessionOptions::cache_capacity topologies are kept in LRU order and the
/// least-recently-used entry is evicted beyond that, so a server-lifetime
/// session over arbitrary client decks cannot grow without limit.  The
/// JSON "session" block reports the reuse and eviction counters so callers
/// (and the acceptance tests) can assert the caching actually happened.
///
/// run_deck_text() never throws: malformed decks render as
///   {"ok": false, "error": {"type": "parse", "line": N, ...}}
/// convergence failures as
///   {"ok": false, "error": {"type": "solve_failure", ...}}  (the
/// structured SolveFailure ladder diagnostics), and an expired deadline or
/// a fired cancel token (the optional phys::CancelToken argument, polled
/// through every Newton iteration, transient step and AC/noise frequency
/// point) as
///   {"ok": false, "error": {"type": "timeout" | "cancelled", ...}}
/// so a batch driver — or a server worker — can keep consuming decks
/// after a bad, diverging or hung one.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>

#include "core/report.h"
#include "phys/cancel.h"
#include "spice/ac.h"
#include "spice/analyses.h"
#include "spice/netlist_parser.h"
#include "spice/smallsignal.h"

namespace carbon::spice {

/// Session-wide options of the JSON rendering.
struct SessionOptions {
  /// Emit the recorded analysis tables ("table" blocks).  Off leaves only
  /// stats + measures — the .probe none behaviour for every deck.
  bool emit_tables = true;
  /// Hard ceiling on rows per emitted table (tables are thinned by the
  /// deck's print interval first; this is the backstop).
  int max_table_rows = 100000;
  /// Topology-cache capacity: at most this many {Circuit, workspace,
  /// AcSystem} entries are kept, evicting least-recently-used beyond it.
  /// Values < 1 clamp to 1 (the most recent topology is always cached).
  int cache_capacity = 16;
  /// Collect the solver phase-time split (stamp/eval/factor/solve, see
  /// obs/phase.h) per deck: the session block gains a "phase_ns" object
  /// and phase_times() accumulates across decks.  Off (the default) keeps
  /// the solve hot path free of clock reads.
  bool collect_phases = false;
};

/// Topology-cache effectiveness counters (monotonic over the session).
struct SessionCacheStats {
  long hits = 0;       ///< decks served by a cached topology
  long misses = 0;     ///< decks that had to instantiate
  long evictions = 0;  ///< LRU entries dropped to respect cache_capacity
  long entries = 0;    ///< current live entries
};

class SimSession {
 public:
  explicit SimSession(ModelRegistry registry = {}, SessionOptions opts = {});

  /// Parse + run one deck.  Never throws; errors become structured JSON.
  /// @p cancel (optional, not owned) is polled through every analysis:
  /// when it fires the document renders as error type "timeout" (deadline)
  /// or "cancelled" (explicit stop) instead of wedging the caller.
  core::Json run_deck_text(const std::string& text,
                           const phys::CancelToken* cancel = nullptr);

  /// Run an already parsed deck.  Throws ParseError on card-level
  /// evaluation errors, SolveFailureError on convergence failure and
  /// phys::CancelledError on a fired @p cancel (run_deck_text wraps all).
  core::Json run_deck(const Deck& deck,
                      const phys::CancelToken* cancel = nullptr);

  const ModelRegistry& registry() const { return registry_; }
  std::size_t cache_entries() const { return cache_.size(); }
  long decks_run() const { return decks_run_; }
  SessionCacheStats cache_stats() const {
    return {cache_hits_, cache_misses_, cache_evictions_,
            static_cast<long>(cache_.size())};
  }
  /// Lifetime phase-time accumulation (all zeros unless
  /// SessionOptions::collect_phases).
  const obs::PhaseTimes& phase_times() const { return phases_; }

 private:
  struct CacheEntry {
    std::unique_ptr<Circuit> circuit;
    NewtonWorkspace workspace;
    AcSystem ac;
    /// Deck-model memo (see netlist_parser's resolve_model): unchanged
    /// .model cards keep their built DeviceModelPtr across steps/decks.
    std::map<std::string, device::DeviceModelPtr> model_memo;
    long uses = 0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_pos;
  };

  CacheEntry& entry_for(const Deck& deck, bool* cache_hit);

  ModelRegistry registry_;
  SessionOptions opts_;
  std::map<std::string, CacheEntry> cache_;  ///< key: topology signature
  std::list<std::string> lru_;  ///< signatures, most recently used first
  long decks_run_ = 0;
  long cache_hits_ = 0;
  long cache_misses_ = 0;
  long cache_evictions_ = 0;
  obs::PhaseTimes phases_;  ///< lifetime accumulation (collect_phases)
};

}  // namespace carbon::spice
