#pragma once

/// @file elements.h
/// Circuit elements and their MNA stamps.  The solver formulation is the
/// classic Newton–Raphson companion-model scheme: at each iteration every
/// element stamps a linearized conductance into the Jacobian and a Norton
/// equivalent current into the right-hand side, around the present iterate.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "device/ivmodel.h"
#include "obs/phase.h"
#include "phys/linalg.h"
#include "phys/linalg_complex.h"
#include "phys/require.h"
#include "spice/waveform.h"

namespace carbon::spice {

/// Node index; 0 is ground.
using NodeId = int;

/// Thrown by a nonlinear element's stamp() when its device model returns a
/// non-finite current or conductance.  Carries the element name so the
/// convergence-failure report can point at the culprit device instead of
/// letting a NaN poison the Jacobian and surface as an unattributed
/// singularity.
class NonFiniteEvalError : public phys::ConvergenceError {
 public:
  NonFiniteEvalError(std::string element, const std::string& what)
      : phys::ConvergenceError(what), element_(std::move(element)) {}
  const std::string& element() const { return element_; }

 private:
  std::string element_;
};

/// Device-evaluation accounting for a transient run (quiescent-device
/// bypass diagnostics).  Attached to a StampContext by the analysis; null
/// when nobody is counting.
struct EvalCounters {
  long device_evals = 0;     ///< compact-model eval() calls issued
  long device_bypasses = 0;  ///< stamps served from the quiescent cache
};

/// Everything an element needs to stamp itself.
///
/// Three write modes, in priority order:
///  1. slot mode — jac_slots/rhs_slots point at the element's pre-resolved
///     value-pointer list (built once per topology by spice::MnaSystem);
///     add_jac/add_rhs stream through them with no index arithmetic and no
///     ground branch.  This is the Newton hot path for both the dense and
///     the sparse backend.
///  2. capture mode — capture_jac/capture_rhs record the (row, col) /
///     row footprint of each add call instead of writing values; MnaSystem
///     uses one capture pass to build the matrix pattern and slot tables.
///  3. direct mode — the original dense write into *jac / *rhs.
///
/// Contract for slot mode: an element must issue its add_jac/add_rhs calls
/// in a fixed order; a mode may truncate the sequence (e.g. a capacitor
/// stamps nothing in DC) but never reorder or extend it beyond the sequence
/// captured with transient=true.
struct StampContext {
  phys::Matrix* jac = nullptr;          ///< (n_nodes-1 + n_branches)^2
  std::vector<double>* rhs = nullptr;
  const std::vector<double>* x = nullptr;  ///< current iterate

  double time_s = 0.0;       ///< simulation time (sources)
  double source_scale = 1.0; ///< source-stepping homotopy factor
  double gmin = 0.0;         ///< gmin-stepping shunt added by nonlinears

  bool transient = false;    ///< capacitors: companion model vs open
  double dt_s = 0.0;         ///< current step size
  bool trapezoidal = false;  ///< trapezoidal vs backward Euler companion

  /// Quiescent-device bypass tolerance [V]; > 0 lets a FET whose terminal
  /// voltages moved less than this since its last eval() reuse the cached
  /// {id, gm, gds} stamp.  0 disables the bypass (every stamp evaluates).
  double bypass_vtol = 0.0;
  /// Optional eval/bypass accounting (owned by the analysis driver).
  EvalCounters* counters = nullptr;
  /// Optional phase-time accumulator (obs/phase.h); stamp_all charges the
  /// dynamic elements' stamp() time to eval_ns when non-null.
  obs::PhaseTimes* phases = nullptr;

  /// When true, add_jac advances the slot cursor without writing: set by
  /// MnaSystem::stamp_all for elements whose Jacobian footprint is constant
  /// and already present in the memcpy-restored static baseline.
  bool suppress_jac = false;

  // --- slot mode (set per element by MnaSystem::stamp_all) ---
  double* const* jac_slots = nullptr;  ///< value pointer per add_jac call
  double* const* rhs_slots = nullptr;  ///< value pointer per add_rhs call
  mutable int jac_cursor = 0;
  mutable int rhs_cursor = 0;

  // --- capture mode (set by MnaSystem::build) ---
  std::vector<std::pair<int, int>>* capture_jac = nullptr;
  std::vector<int>* capture_rhs = nullptr;

#ifndef NDEBUG
  // Captured footprint of the element being stamped; add_jac/add_rhs
  // assert the slot-mode call sequence against it.
  const std::pair<int, int>* debug_jac = nullptr;
  const int* debug_rhs = nullptr;
  int debug_jac_count = 0;
  int debug_rhs_count = 0;
#endif

  /// Voltage of node @p n in the current iterate (0 for ground).
  double v(NodeId n) const { return n == 0 ? 0.0 : (*x)[n - 1]; }
  /// Add to Jacobian entry for (row node/branch i, col j), skipping ground.
  void add_jac(int row, int col, double val) const;
  /// Add to RHS entry, skipping ground.
  void add_rhs(int row, double val) const;
};

/// Context of a small-signal (AC) assembly around a DC operating point.
///
/// Elements describe their linearized equivalent through three calls whose
/// *values* are all frequency-independent:
///   add_g(r, c, g)    — conductance part [S] (the real G matrix),
///   add_c(r, c, c_f)  — capacitance part [F], entering as j*omega*c_f,
///   add_rhs(r, v)     — stimulus phasor.
/// Two write modes:
///  1. direct mode — jac/rhs point at a dense complex system and omega is
///     set; add_g writes {g, 0}, add_c writes {0, omega*c}.  One-off
///     assemblies and tests.
///  2. value-capture mode — cap_g/cap_c/cap_rhs record the footprint AND
///     the value of every call.  spice::AcSystem runs ONE capture pass per
///     (topology, operating point) and then never calls stamp_ac again:
///     per frequency point it memcpy-restores the captured G image and
///     rescales the captured jωC entries through direct value pointers.
struct AcStampContext {
  phys::ComplexMatrix* jac = nullptr;
  std::vector<phys::Complex>* rhs = nullptr;
  const std::vector<double>* x_dc = nullptr;  ///< converged DC solution
  double omega = 0.0;                          ///< angular frequency [rad/s]

  /// One captured add_g/add_c call: MNA coordinates (1-based, 0 = ground)
  /// plus the frequency-independent value.
  struct CoordValue {
    int row = 0;
    int col = 0;
    double value = 0.0;
  };
  struct RhsValue {
    int row = 0;
    phys::Complex value;
  };
  std::vector<CoordValue>* cap_g = nullptr;
  std::vector<CoordValue>* cap_c = nullptr;
  std::vector<RhsValue>* cap_rhs = nullptr;

  double v_dc(NodeId n) const { return n == 0 ? 0.0 : (*x_dc)[n - 1]; }
  void add_g(int row, int col, double g_siemens) const;
  void add_c(int row, int col, double c_farad) const;
  void add_rhs(int row, phys::Complex val) const;
};

/// One equivalent noise-current source between two circuit nodes, with the
/// standard white + 1/f^exp power spectral density [A^2/Hz]:
///   S_i(f) = white_a2_hz + flicker_a2 / f^flicker_exp.
/// Elements emit these from collect_noise() at the DC operating point;
/// spice::noise_sweep propagates each to the output through one adjoint
/// solve per frequency.
struct NoiseSource {
  std::string label;           ///< "element.kind", e.g. "m1.flicker"
  NodeId n_plus = 0;           ///< current injected into this node...
  NodeId n_minus = 0;          ///< ...and drawn from this one
  double white_a2_hz = 0.0;    ///< white PSD [A^2/Hz]
  double flicker_a2 = 0.0;     ///< flicker coefficient [A^2 * Hz^(exp-1)]
  double flicker_exp = 1.0;    ///< flicker frequency exponent

  double psd_a2_hz(double f_hz) const;
};

/// Operating-point context handed to Element::collect_noise.
struct NoiseContext {
  const std::vector<double>* x_dc = nullptr;  ///< converged DC solution
  double temperature_k = 300.0;

  double v_dc(NodeId n) const { return n == 0 ? 0.0 : (*x_dc)[n - 1]; }
};

/// Base class of all circuit elements.
class Element {
 public:
  Element(std::string name, std::vector<NodeId> nodes);
  virtual ~Element() = default;

  const std::string& name() const { return name_; }
  const std::vector<NodeId>& nodes() const { return nodes_; }

  /// True when the element's I(V) is nonlinear (affects gmin placement).
  virtual bool is_nonlinear() const { return false; }

  /// True when every value this element adds to the Jacobian is a constant
  /// of the netlist (independent of the iterate, time, step size, gmin and
  /// source scale).  MnaSystem stamps such elements once into a static
  /// baseline that is memcpy-restored each iteration instead of re-stamped;
  /// their RHS contributions (if any) are still stamped every iteration.
  virtual bool jacobian_is_constant() const { return false; }

  /// Append the element's waveform discontinuity times in [0, t_stop] to
  /// @p out (source corner points).  The adaptive transient engine steps
  /// exactly onto these so the LTE controller never straddles a corner.
  virtual void collect_breakpoints(double /*t_stop*/,
                                   std::vector<double>& /*out*/) const {}

  /// Number of MNA branch-current unknowns this element owns.
  virtual int num_branches() const { return 0; }
  /// Assign the element's first branch index (rows after node voltages).
  void set_branch_base(int base) { branch_base_ = base; }
  int branch_base() const { return branch_base_; }

  /// Stamp the linearized element into the system.
  virtual void stamp(const StampContext& ctx) const = 0;

  /// Stamp the small-signal equivalent at the DC operating point.  The
  /// default stamps nothing (ideal current sources are AC-open).
  virtual void stamp_ac(const AcStampContext& /*ctx*/) const {}

  /// Append the element's small-signal noise sources, evaluated at the DC
  /// operating point in @p ctx, to @p out.  Default: noiseless (sources,
  /// capacitors, ideal elements).
  virtual void collect_noise(const NoiseContext& /*ctx*/,
                             std::vector<NoiseSource>& /*out*/) const {}

  /// Transient bookkeeping: accept the converged step (update state).
  virtual void accept_step(const StampContext& /*ctx*/) {}

  /// Adopt the t = 0 operating point @p ctx.x as the element's initial
  /// dynamic state (TransientIc::kFromOperatingPoint).  Default: nothing.
  virtual void set_transient_ic(const StampContext& /*ctx*/) {}

  /// Reset dynamic state (before a new analysis).
  virtual void reset_state() {}

 protected:
  std::string name_;
  std::vector<NodeId> nodes_;
  int branch_base_ = -1;
};

/// Linear resistor.
class Resistor final : public Element {
 public:
  Resistor(std::string name, NodeId n1, NodeId n2, double ohms);
  bool jacobian_is_constant() const override { return true; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  /// Thermal (Johnson) noise: white 4kT/R current PSD across the resistor.
  void collect_noise(const NoiseContext& ctx,
                     std::vector<NoiseSource>& out) const override;
  double resistance() const { return ohms_; }
  /// Retarget the resistance in place (deck retune).  The Jacobian
  /// footprint is value-independent, so slot tables stay valid; any
  /// MnaSystem static baseline must be refreshed afterwards.
  void set_resistance(double ohms) {
    CARBON_REQUIRE(ohms != 0.0, "resistance must be nonzero");
    ohms_ = ohms;
  }

 private:
  double ohms_;
};

/// Linear capacitor with optional initial condition.
class Capacitor final : public Element {
 public:
  Capacitor(std::string name, NodeId n1, NodeId n2, double farad,
            double v_init = 0.0);
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  void accept_step(const StampContext& ctx) override;
  void set_transient_ic(const StampContext& ctx) override;
  void reset_state() override;
  double capacitance() const { return farad_; }
  /// Retarget the capacitance / initial condition in place (deck retune).
  void set_capacitance(double farad) { farad_ = farad; }
  void set_v_init(double v) { v_init_ = v; }
  /// Current charging current (after accept_step) [A].
  double branch_current() const { return i_prev_; }

 private:
  double farad_;
  double v_init_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

/// Independent voltage source (owns one branch current unknown).
class VSource final : public Element {
 public:
  VSource(std::string name, NodeId n_plus, NodeId n_minus, WaveformPtr wave);
  int num_branches() const override { return 1; }
  /// The incidence/branch rows are +-1 constants; only the RHS follows the
  /// waveform, so the Jacobian footprint lives in the static baseline.
  bool jacobian_is_constant() const override { return true; }
  void collect_breakpoints(double t_stop,
                           std::vector<double>& out) const override;
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  const Waveform& wave() const { return *wave_; }
  /// Replace the waveform (used by DC sweeps).
  void set_wave(WaveformPtr wave) { wave_ = std::move(wave); }
  /// AC stimulus amplitude of this source (default 0; the ac_sweep driver
  /// sets 1 on the designated input).
  void set_ac_magnitude(double mag) { ac_magnitude_ = mag; }
  double ac_magnitude() const { return ac_magnitude_; }

 private:
  WaveformPtr wave_;
  double ac_magnitude_ = 0.0;
};

/// Independent current source (flows from n+ through the source to n-).
class ISource final : public Element {
 public:
  ISource(std::string name, NodeId n_plus, NodeId n_minus, WaveformPtr wave);
  /// Stamps no Jacobian entries at all, so trivially constant.
  bool jacobian_is_constant() const override { return true; }
  void collect_breakpoints(double t_stop,
                           std::vector<double>& out) const override;
  void stamp(const StampContext& ctx) const override;
  /// Replace the waveform (deck retune).
  void set_wave(WaveformPtr wave) { wave_ = std::move(wave); }

 private:
  WaveformPtr wave_;
};

/// Junction diode (anode, cathode) with exponential law and NR limiting.
class Diode final : public Element {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, double i_sat_a,
        double ideality = 1.0, double temperature_k = 300.0);
  bool is_nonlinear() const override { return true; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  /// Shot noise 2qI at the operating-point junction current.
  void collect_noise(const NoiseContext& ctx,
                     std::vector<NoiseSource>& out) const override;
  void reset_state() override;
  /// Retarget the junction parameters in place (deck retune); the thermal
  /// voltage keeps the construction temperature.
  void set_params(double i_sat_a, double ideality) {
    CARBON_REQUIRE(i_sat_a > 0.0, "saturation current must be positive");
    i_sat_ = i_sat_a;
    n_ = ideality;
    cache_valid_ = false;  // cached linearization belongs to the old law
  }

 private:
  /// Junction current/conductance at @p v_raw with NR junction-voltage
  /// limiting; returns the limited voltage actually used.
  double evaluate(double v_raw, double* i0, double* g) const;

  double i_sat_, n_, vt_;
  // Quiescent-device bypass, mirroring Fet: when StampContext::bypass_vtol
  // > 0 and the junction voltage moved less than it since the cache was
  // filled, stamp() reuses the cached {i0, g} linearization about the
  // cached (limited) bias instead of recomputing the exponential.
  mutable double v_cache_ = 0.0;     ///< raw junction voltage at cache fill
  mutable double vlim_cache_ = 0.0;  ///< limited voltage the stamp expands at
  mutable double i0_cache_ = 0.0, g_cache_ = 0.0;
  mutable bool cache_valid_ = false;
};

/// Three-terminal FET wrapping any device compact model.
/// Conventions follow IDeviceModel: current flows drain -> source for
/// n-type with positive vgs/vds.  Gate is DC-open (add explicit capacitors
/// for gate loading).
class Fet final : public Element {
 public:
  Fet(std::string name, NodeId drain, NodeId gate, NodeId source,
      device::DeviceModelPtr model, double multiplier = 1.0);
  bool is_nonlinear() const override { return true; }
  void stamp(const StampContext& ctx) const override;
  void stamp_ac(const AcStampContext& ctx) const override;
  /// Channel thermal noise gamma*4kT*gm plus Kf/Af flicker noise, with the
  /// parameters supplied by the device model's noise_params().
  void collect_noise(const NoiseContext& ctx,
                     std::vector<NoiseSource>& out) const override;
  void reset_state() override;
  const device::IDeviceModel& model() const { return *model_; }
  /// Swap the compact model in place (ensemble trials re-solve one
  /// topology under thousands of perturbed models this way).  The stamp
  /// footprint is model-independent, so the matrix pattern and slot tables
  /// stay valid; the quiescent-bypass cache is invalidated.
  void set_model(device::DeviceModelPtr model);
  double multiplier() const { return mult_; }
  /// Retarget the parallel-device multiplier in place (deck retune).
  void set_multiplier(double mult) {
    mult_ = mult;
    cache_valid_ = false;
  }

 private:
  device::DeviceModelPtr model_;
  double mult_;
  // Quiescent-device bypass: the last evaluated bias point and its raw
  // (unscaled) model evaluation.  When StampContext::bypass_vtol > 0 and
  // the terminal voltages moved less than it since the cache was filled,
  // stamp() reuses the cached linearization instead of calling eval().
  // mutable because stamp() is const; analyses are single-threaded.
  mutable double vgs_cache_ = 0.0, vds_cache_ = 0.0;
  mutable device::DeviceEval eval_cache_{};
  mutable bool cache_valid_ = false;
};

}  // namespace carbon::spice
