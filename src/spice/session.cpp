#include "spice/session.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "phys/require.h"
#include "spice/ensemble.h"  // to_json(SolveFailure / NewtonStats / ...)
#include "spice/measure.h"

namespace carbon::spice {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

const std::string* find_opt(
    const std::vector<std::pair<std::string, std::string>>& options,
    const std::string& key) {
  for (const auto& [k, v] : options) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// "v(out)" / "i(vdd)" / bare token -> (is_current, name).  Bare tokens
/// count as node voltages (and as literal column names for noise tables).
struct Signal {
  bool current = false;
  std::string name;
};

Signal parse_signal(const std::string& token, int line_no,
                    const std::string& line) {
  const auto open = token.find('(');
  if (open == std::string::npos) return {false, lower(token)};
  if (token.back() != ')') {
    throw ParseError("malformed signal reference: " + token, line_no, line);
  }
  const std::string tag = lower(token.substr(0, open));
  const std::string name =
      lower(token.substr(open + 1, token.size() - open - 2));
  if (tag == "v") return {false, name};
  if (tag == "i") return {true, name};
  throw ParseError("unknown signal kind '" + tag + "' in " + token, line_no,
                   line);
}

void push_unique(std::vector<std::string>& out, const std::string& name) {
  if (std::find(out.begin(), out.end(), name) == out.end()) {
    out.push_back(name);
  }
}

core::Json table_json(const phys::DataTable& table, int max_rows) {
  auto cols = core::Json::array();
  for (const std::string& c : table.columns()) cols.push(c);
  auto rows = core::Json::array();
  const int n =
      std::min(table.num_rows(), max_rows < 0 ? table.num_rows() : max_rows);
  for (int r = 0; r < n; ++r) {
    auto row = core::Json::array();
    for (int c = 0; c < table.num_cols(); ++c) row.push(table.at(r, c));
    rows.push(std::move(row));
  }
  auto out = core::Json::object();
  out.set("columns", std::move(cols));
  out.set("num_rows", table.num_rows());
  out.set("rows", std::move(rows));
  return out;
}

/// Deck-level .options -> solver configuration.  Strict: a typo'd key is
/// an error, not a silently ignored knob.
struct DeckConfig {
  SolverOptions solver;
  double temperature_k = 300.0;
};

DeckConfig config_from(const Deck& deck) {
  DeckConfig cfg;
  for (const auto& [k, v] : deck.options) {
    if (k == "backend") {
      const std::string b = lower(v);
      if (b == "sparse") cfg.solver.backend = LinearBackend::kSparse;
      else if (b == "dense") cfg.solver.backend = LinearBackend::kDense;
      else if (b == "auto") cfg.solver.backend = LinearBackend::kAuto;
      else throw ParseError(".options backend must be dense|sparse|auto");
    } else if (k == "reltol") {
      cfg.solver.reltol = parse_spice_number(v);
    } else if (k == "abstol" || k == "vabstol") {
      cfg.solver.v_abstol = parse_spice_number(v);
    } else if (k == "maxiter") {
      cfg.solver.max_iterations = static_cast<int>(parse_spice_number(v));
    } else if (k == "sparse_threshold") {
      cfg.solver.sparse_threshold = static_cast<int>(parse_spice_number(v));
    } else if (k == "gmin") {
      cfg.solver.gmin_final = parse_spice_number(v);
    } else if (k == "temp") {
      cfg.temperature_k = parse_spice_number(v);
    } else {
      throw ParseError("unknown .options key '" + k + "'");
    }
  }
  return cfg;
}

/// Everything one step point's analyses record, for the measure pass.
struct StepResults {
  bool have_op = false;
  Solution op;
  std::map<std::string, phys::DataTable> tables;  ///< by analysis kind name
};

const char* analysis_kind_name(AnalysisCard::Kind kind) {
  switch (kind) {
    case AnalysisCard::Kind::kOp: return "op";
    case AnalysisCard::Kind::kDc: return "dc";
    case AnalysisCard::Kind::kTran: return "tran";
    case AnalysisCard::Kind::kAc: return "ac";
    case AnalysisCard::Kind::kNoise: return "noise";
  }
  return "?";
}

/// Abscissa column of each analysis table.
std::string x_column(const std::string& analysis) {
  if (analysis == "tran") return "time_s";
  if (analysis == "dc") return "sweep_v";
  return "freq_hz";  // ac, noise
}

/// Map a measure signal to the table column recorded for this analysis.
std::string column_for(const std::string& analysis, const Signal& sig) {
  if (analysis == "ac") {
    return sig.current ? "i(" + sig.name + ")" : "mag(" + sig.name + ")";
  }
  if (analysis == "noise") return sig.name;  // fixed column names
  return (sig.current ? "i(" : "v(") + sig.name + ")";
}

/// One step point's full execution: retune, run analyses, measures.
class StepRunner {
 public:
  StepRunner(const Deck& deck, const DeckConfig& cfg, Circuit& ckt,
             NewtonWorkspace& ws, AcSystem& ac, const ModelRegistry& registry,
             ModelMemo& memo, const ParamEnv& overrides,
             const SessionOptions& session_opts)
      : deck_(deck),
        cfg_(cfg),
        ckt_(ckt),
        ws_(ws),
        ac_(ac),
        registry_(registry),
        memo_(memo),
        overrides_(overrides),
        session_opts_(session_opts) {}

  core::Json run() {
    auto step = core::Json::object();
    if (!overrides_.empty()) {
      auto params = core::Json::object();
      for (const auto& [k, v] : overrides_) params.set(k, v);
      step.set("params", std::move(params));
    }

    retune(deck_, registry_, overrides_, ckt_, &memo_);
    ws_.prepare(ckt_, cfg_.solver);
    // Element *values* may have changed under the unchanged topology; the
    // static Jacobian baseline follows them, the pattern does not.
    ws_.mna.refresh_baseline();

    auto analyses = core::Json::array();
    for (const AnalysisCard& card : deck_.analyses) {
      // Restore source waveforms a previous analysis left mid-sweep
      // (dc_sweep parks the swept source at its last value).
      retune(deck_, registry_, overrides_, ckt_, &memo_);
      analyses.push(run_analysis(card));
    }
    step.set("analyses", std::move(analyses));

    if (!deck_.measures.empty()) {
      auto measures = core::Json::object();
      auto errors = core::Json::object();
      bool any_error = false;
      for (const MeasureCard& m : deck_.measures) {
        try {
          measures.set(m.name, measure_value(m));
        } catch (const std::exception& e) {
          measures.set(m.name, core::Json());
          errors.set(m.name, std::string(e.what()));
          any_error = true;
        }
      }
      step.set("measures", std::move(measures));
      if (any_error) step.set("measure_errors", std::move(errors));
    }
    return step;
  }

 private:
  /// `.probe none` means measures only: no tables even when the session
  /// would emit them.
  bool emit_tables() const {
    return session_opts_.emit_tables && !deck_.probe_none;
  }

  double eval_in_env(const std::string& expr, int line_no,
                     const std::string& line) const {
    try {
      return eval_expr(expr, genv());
    } catch (const ParseError& e) {
      throw ParseError(e.reason(), line_no, line);
    }
  }

  /// Global parameter env of this step (globals + overrides), evaluated
  /// lazily once: analysis and measure card options are expressions too.
  const ParamEnv& genv() const {
    if (!genv_ready_) {
      ParamEnv env;
      for (const ParamScope& scope : deck_.scopes) {
        if (scope.parent != -1) continue;
        for (const ParamSpec& p : scope.params) {
          const auto ov = overrides_.find(p.name);
          env[p.name] =
              ov != overrides_.end() ? ov->second : eval_expr(p.expr, env);
        }
      }
      for (const auto& [k, v] : overrides_) env.emplace(k, v);
      genv_ = std::move(env);
      genv_ready_ = true;
    }
    return genv_;
  }

  /// Voltage-probe set of an analysis: .probe selections (all nodes when
  /// none and not `.probe none`) plus every node a measure of this
  /// analysis reads — measures must never fail because nobody probed
  /// their signal.
  std::vector<std::string> voltage_probes(const std::string& analysis) const {
    std::vector<std::string> out;
    if (!deck_.probe_none) {
      for (const std::string& p : deck_.probe_nodes) push_unique(out, p);
      if (deck_.probe_nodes.empty()) {
        for (int id = 1; id <= ckt_.num_nodes(); ++id) {
          push_unique(out, ckt_.node_name(id));
        }
      }
    }
    for (const MeasureCard& m : deck_.measures) {
      if (m.analysis != analysis || analysis == "noise") continue;
      for (const std::string& s : m.signals) {
        const Signal sig = parse_signal(s, m.line_no, m.line);
        // A signal naming an unknown node must not abort the analysis —
        // its own measure reports the failure (null + measure_errors).
        if (!sig.current && ckt_.has_node(sig.name)) {
          push_unique(out, sig.name);
        }
      }
    }
    // Sweeps need at least one probe column.
    if (out.empty() && ckt_.num_nodes() > 0) {
      out.push_back(ckt_.node_name(1));
    }
    return out;
  }

  std::vector<std::string> current_probe_names(
      const std::string& analysis) const {
    std::vector<std::string> out;
    if (!deck_.probe_none) {
      for (const std::string& p : deck_.probe_currents) push_unique(out, p);
    }
    for (const MeasureCard& m : deck_.measures) {
      if (m.analysis != analysis || analysis == "noise") continue;
      for (const std::string& s : m.signals) {
        const Signal sig = parse_signal(s, m.line_no, m.line);
        if (sig.current && has_vsource(sig.name)) push_unique(out, sig.name);
      }
    }
    return out;
  }

  bool has_vsource(const std::string& name) const {
    for (const auto& el : ckt_.elements()) {
      if (el->name() == name) return dynamic_cast<VSource*>(el.get()) != nullptr;
    }
    return false;
  }

  VSource* find_vsource(const std::string& name, int line_no,
                        const std::string& line) const {
    for (const auto& el : ckt_.elements()) {
      if (el->name() == name) {
        auto* src = dynamic_cast<VSource*>(el.get());
        if (!src) {
          throw ParseError("'" + name + "' is not a voltage source", line_no,
                           line);
        }
        return src;
      }
    }
    throw ParseError("unknown voltage source '" + name + "'", line_no, line);
  }

  /// The deck's designated AC input: the v-card carrying an `ac <mag>`
  /// token (retune re-applies it before every analysis, so scanning the
  /// live circuit is reliable even though ac_sweep zeroes it afterwards).
  VSource* find_ac_input(int line_no, const std::string& line) const {
    VSource* input = nullptr;
    for (const auto& el : ckt_.elements()) {
      auto* src = dynamic_cast<VSource*>(el.get());
      if (!src || src->ac_magnitude() == 0.0) continue;
      if (input) {
        throw ParseError("more than one source carries an 'ac' magnitude",
                         line_no, line);
      }
      input = src;
    }
    if (!input) {
      throw ParseError(
          "deck has no AC input (add 'ac 1' to a v card)", line_no, line);
    }
    return input;
  }

  core::Json run_analysis(const AnalysisCard& card) {
    // Deadline poll at the analysis boundary: a deck whose budget expired
    // during one analysis must not start the next.
    if (cfg_.solver.cancel) cfg_.solver.cancel->throw_if_stopped("session");
    const std::string kind = analysis_kind_name(card.kind);
    // Span names must be string literals (the tracer stores the pointer),
    // so the per-analysis span cannot reuse the kind string above.
    const char* span_name = "analysis";
    switch (card.kind) {
      case AnalysisCard::Kind::kOp: span_name = "analysis:op"; break;
      case AnalysisCard::Kind::kDc: span_name = "analysis:dc"; break;
      case AnalysisCard::Kind::kTran: span_name = "analysis:tran"; break;
      case AnalysisCard::Kind::kAc: span_name = "analysis:ac"; break;
      case AnalysisCard::Kind::kNoise: span_name = "analysis:noise"; break;
    }
    obs::ScopedSpan span(span_name);
    auto out = core::Json::object();
    out.set("type", kind);
    switch (card.kind) {
      case AnalysisCard::Kind::kOp: run_op(out); break;
      case AnalysisCard::Kind::kDc: run_dc(card, out); break;
      case AnalysisCard::Kind::kTran: run_tran(card, out); break;
      case AnalysisCard::Kind::kAc: run_ac(card, out); break;
      case AnalysisCard::Kind::kNoise: run_noise(card, out); break;
    }
    return out;
  }

  void run_op(core::Json& out) {
    results_.op = operating_point(ckt_, cfg_.solver, nullptr, &ws_);
    results_.have_op = true;
    out.set("stats", to_json(results_.op.stats));
    if (emit_tables()) {
      auto voltages = core::Json::object();
      for (const std::string& node : voltage_probes("op")) {
        voltages.set("v(" + node + ")",
                     node_voltage(ckt_, results_.op, node));
      }
      out.set("voltages", std::move(voltages));
      const auto currents = current_probe_names("op");
      if (!currents.empty()) {
        auto ij = core::Json::object();
        for (const std::string& name : currents) {
          VSource* src = find_vsource(name, 0, "");
          ij.set("i(" + name + ")",
                 vsource_current(ckt_, results_.op, *src));
        }
        out.set("currents", std::move(ij));
      }
    }
  }

  void run_dc(const AnalysisCard& card, core::Json& out) {
    VSource* swept = find_vsource(card.source, card.line_no, card.line);
    const double start = eval_in_env(card.start_expr, card.line_no, card.line);
    const double stop = eval_in_env(card.stop_expr, card.line_no, card.line);
    const double step = eval_in_env(card.step_expr, card.line_no, card.line);
    if (step == 0.0 || (stop - start) * step < 0.0) {
      throw ParseError(".dc step does not reach stop", card.line_no,
                       card.line);
    }
    std::vector<double> values;
    const int n = static_cast<int>(std::floor((stop - start) / step + 1e-9));
    for (int i = 0; i <= n; ++i) values.push_back(start + i * step);
    phys::DataTable table = dc_sweep(ckt_, *swept, values,
                                     voltage_probes("dc"), cfg_.solver, &ws_);
    out.set("source", card.source);
    if (emit_tables()) {
      out.set("table", table_json(table, session_opts_.max_table_rows));
    }
    results_.tables.insert_or_assign("dc", std::move(table));
  }

  void run_tran(const AnalysisCard& card, core::Json& out) {
    TransientOptions topt;
    topt.dt = eval_in_env(card.dt_expr, card.line_no, card.line);
    topt.t_stop = eval_in_env(card.tstop_expr, card.line_no, card.line);
    topt.adaptive = true;
    topt.dt_print = topt.dt;  // tstep is the print/report interval
    topt.ic = TransientIc::kFromOperatingPoint;
    topt.solver = cfg_.solver;
    topt.workspace = &ws_;
    TransientStats stats;
    topt.stats = &stats;
    for (const auto& [k, v] : card.options) {
      if (k == "fixed") {
        topt.adaptive = eval_in_env(v, card.line_no, card.line) == 0.0;
      } else if (k == "ic") {
        const std::string mode = lower(v);
        if (mode == "init") topt.ic = TransientIc::kFromInit;
        else if (mode == "op") topt.ic = TransientIc::kFromOperatingPoint;
        else throw ParseError(".tran ic must be init|op", card.line_no,
                              card.line);
      } else if (k == "dtmin") {
        topt.dt_min = eval_in_env(v, card.line_no, card.line);
      } else if (k == "dtmax") {
        topt.dt_max = eval_in_env(v, card.line_no, card.line);
      } else if (k == "lte_reltol") {
        topt.lte_reltol = eval_in_env(v, card.line_no, card.line);
      } else if (k == "lte_abstol") {
        topt.lte_abstol = eval_in_env(v, card.line_no, card.line);
      } else if (k == "print") {
        topt.dt_print = eval_in_env(v, card.line_no, card.line);
      } else if (k == "bypass") {
        topt.bypass_vtol = eval_in_env(v, card.line_no, card.line);
      } else if (k == "trap") {
        topt.trapezoidal = eval_in_env(v, card.line_no, card.line) != 0.0;
      } else {
        throw ParseError("unknown .tran option '" + k + "'", card.line_no,
                         card.line);
      }
    }
    std::vector<const VSource*> current_probes;
    std::vector<std::string> current_names;
    for (const std::string& name : current_probe_names("tran")) {
      current_probes.push_back(find_vsource(name, card.line_no, card.line));
      current_names.push_back(name);
    }
    phys::DataTable table =
        transient(ckt_, topt, voltage_probes("tran"), current_probes);
    out.set("stats", to_json(stats));
    if (emit_tables()) {
      out.set("table", table_json(table, session_opts_.max_table_rows));
    }
    results_.tables.insert_or_assign("tran", std::move(table));
  }

  void run_ac(const AnalysisCard& card, core::Json& out) {
    AcOptions aopt;
    aopt.points_per_decade =
        static_cast<int>(eval_in_env(card.npd_expr, card.line_no, card.line));
    aopt.f_start_hz = eval_in_env(card.fstart_expr, card.line_no, card.line);
    aopt.f_stop_hz = eval_in_env(card.fstop_expr, card.line_no, card.line);
    aopt.dc = cfg_.solver;
    aopt.workspace = &ws_;
    aopt.system = &ac_;
    VSource* input = find_ac_input(card.line_no, card.line);
    phys::DataTable table = ac_sweep(ckt_, *input, voltage_probes("ac"), aopt);
    out.set("input", input->name());
    if (emit_tables()) {
      out.set("table", table_json(table, session_opts_.max_table_rows));
    }
    results_.tables.insert_or_assign("ac", std::move(table));
  }

  void run_noise(const AnalysisCard& card, core::Json& out) {
    NoiseOptions nopt;
    nopt.points_per_decade =
        static_cast<int>(eval_in_env(card.npd_expr, card.line_no, card.line));
    nopt.f_start_hz = eval_in_env(card.fstart_expr, card.line_no, card.line);
    nopt.f_stop_hz = eval_in_env(card.fstop_expr, card.line_no, card.line);
    nopt.temperature_k = cfg_.temperature_k;
    nopt.dc = cfg_.solver;
    nopt.workspace = &ws_;
    nopt.system = &ac_;
    VSource* input = find_vsource(card.source, card.line_no, card.line);
    NoiseResult res = noise_sweep(ckt_, *input, card.output, nopt);
    out.set("output", card.output);
    out.set("input", card.source);
    out.set("onoise_total_v2", res.onoise_total_v2);
    out.set("inoise_total_v2", res.inoise_total_v2);
    auto contributions = core::Json::object();
    for (const auto& [label, v2] : res.contributions) {
      contributions.set(label, v2);
    }
    out.set("contributions", std::move(contributions));
    if (emit_tables()) {
      out.set("table", table_json(res.table, session_opts_.max_table_rows));
    }
    results_.tables.insert_or_assign("noise", std::move(res.table));
  }

  // --- measures -------------------------------------------------------------

  double measure_opt(const MeasureCard& m, const char* key,
                     double fallback) const {
    const std::string* v = find_opt(m.options, key);
    return v ? eval_in_env(*v, m.line_no, m.line) : fallback;
  }

  double measure_opt_required(const MeasureCard& m, const char* key) const {
    const std::string* v = find_opt(m.options, key);
    if (!v) {
      throw ParseError(".measure " + m.name + " needs " + key + "=",
                       m.line_no, m.line);
    }
    return eval_in_env(*v, m.line_no, m.line);
  }

  const phys::DataTable& table_for(const MeasureCard& m) const {
    const auto it = results_.tables.find(m.analysis);
    if (it == results_.tables.end()) {
      throw ParseError("measure '" + m.name + "': no ." + m.analysis +
                           " analysis was run",
                       m.line_no, m.line);
    }
    return it->second;
  }

  Signal signal_at(const MeasureCard& m, size_t index) const {
    if (index >= m.signals.size()) {
      throw ParseError(
          "measure '" + m.name + "' (" + m.fn + ") wants " +
              std::to_string(index + 1) + " signal(s)",
          m.line_no, m.line);
    }
    return parse_signal(m.signals[index], m.line_no, m.line);
  }

  core::Json measure_value(const MeasureCard& m) const {
    const double v = measure_value_raw(m);
    if (!std::isfinite(v)) {
      throw ParseError("measure '" + m.name + "' produced a non-finite value",
                       m.line_no, m.line);
    }
    return core::Json(v);
  }

  double measure_value_raw(const MeasureCard& m) const {
    const bool rising = find_opt(m.options, "fall") == nullptr;
    if (m.fn == "value") {
      if (m.analysis != "op") {
        throw ParseError("measure fn 'value' reads the .op solution",
                         m.line_no, m.line);
      }
      if (!results_.have_op) {
        throw ParseError("measure '" + m.name + "': no .op analysis was run",
                         m.line_no, m.line);
      }
      const Signal sig = signal_at(m, 0);
      if (sig.current) {
        VSource* src = find_vsource(sig.name, m.line_no, m.line);
        return vsource_current(ckt_, results_.op, *src);
      }
      return node_voltage(ckt_, results_.op, sig.name);
    }

    const phys::DataTable& table = table_for(m);
    const std::string xcol = x_column(m.analysis);

    if (m.fn == "max" || m.fn == "min" || m.fn == "avg" || m.fn == "rms" ||
        m.fn == "pp") {
      const ColumnStat stat = m.fn == "max"   ? ColumnStat::kMax
                              : m.fn == "min" ? ColumnStat::kMin
                              : m.fn == "avg" ? ColumnStat::kAvg
                              : m.fn == "rms" ? ColumnStat::kRms
                                              : ColumnStat::kPeakToPeak;
      return column_stat(table, xcol,
                         column_for(m.analysis, signal_at(m, 0)), stat,
                         measure_opt(m, "from", -1e308),
                         measure_opt(m, "to", 1e308));
    }
    if (m.fn == "cross") {
      const double t =
          crossing_time(table, column_for(m.analysis, signal_at(m, 0)),
                        measure_opt_required(m, "val"), rising,
                        measure_opt(m, "after", 0.0));
      if (t < 0.0) {
        throw ParseError("measure '" + m.name + "': no crossing found",
                         m.line_no, m.line);
      }
      return t;
    }
    if (m.fn == "delay") {
      return propagation_delay(
          table, column_for(m.analysis, signal_at(m, 0)),
          column_for(m.analysis, signal_at(m, 1)),
          measure_opt_required(m, "vdd"), rising);
    }
    if (m.fn == "period") {
      const double vdd = measure_opt(m, "vdd", 0.0);
      const double mid = measure_opt(m, "mid", vdd * 0.5);
      if (mid == 0.0) {
        throw ParseError(".measure period needs mid= or vdd=", m.line_no,
                         m.line);
      }
      return oscillation_period(
          table, column_for(m.analysis, signal_at(m, 0)), mid,
          static_cast<int>(measure_opt(m, "skip", 2)));
    }
    if (m.fn == "energy") {
      const Signal sig = signal_at(m, 0);
      if (!sig.current) {
        throw ParseError(".measure energy wants i(<vsource>)", m.line_no,
                         m.line);
      }
      return supply_energy(table, "i(" + sig.name + ")",
                           measure_opt_required(m, "vdd"));
    }
    if (m.fn == "find") {
      return value_at(table, xcol, column_for(m.analysis, signal_at(m, 0)),
                      measure_opt_required(m, "at"));
    }
    if (m.fn == "corner") {
      const double f =
          corner_frequency(table, column_for(m.analysis, signal_at(m, 0)));
      if (f < 0.0) {
        throw ParseError("measure '" + m.name + "': no -3 dB corner in band",
                         m.line_no, m.line);
      }
      return f;
    }
    if (m.fn == "vtc") {
      const VtcMetrics vtc = analyze_vtc(
          table, column_for(m.analysis, signal_at(m, 0)),
          column_for(m.analysis, signal_at(m, 1)),
          measure_opt_required(m, "vdd"));
      const std::string* metric = find_opt(m.options, "metric");
      const std::string which = metric ? lower(*metric) : "gain";
      if (which == "gain") return vtc.max_abs_gain;
      if (which == "nml") return vtc.nm_low;
      if (which == "nmh") return vtc.nm_high;
      if (which == "vil") return vtc.v_il;
      if (which == "vih") return vtc.v_ih;
      if (which == "vol") return vtc.v_ol;
      if (which == "voh") return vtc.v_oh;
      if (which == "vswitch") return vtc.v_switch;
      throw ParseError("unknown vtc metric '" + which + "'", m.line_no,
                       m.line);
    }
    throw ParseError("unknown measure fn '" + m.fn + "'", m.line_no, m.line);
  }

  const Deck& deck_;
  const DeckConfig& cfg_;
  Circuit& ckt_;
  NewtonWorkspace& ws_;
  AcSystem& ac_;
  const ModelRegistry& registry_;
  ModelMemo& memo_;
  const ParamEnv& overrides_;
  const SessionOptions& session_opts_;
  StepResults results_;
  mutable ParamEnv genv_;
  mutable bool genv_ready_ = false;
};

}  // namespace

SimSession::SimSession(ModelRegistry registry, SessionOptions opts)
    : registry_(std::move(registry)), opts_(opts) {}

SimSession::CacheEntry& SimSession::entry_for(const Deck& deck,
                                              bool* cache_hit) {
  const auto it = cache_.find(deck.topology_signature);
  if (it != cache_.end()) {
    *cache_hit = true;
    ++cache_hits_;
    // Refresh recency: move to the front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second;
  }
  *cache_hit = false;
  ++cache_misses_;
  const std::size_t capacity =
      static_cast<std::size_t>(std::max(1, opts_.cache_capacity));
  while (cache_.size() >= capacity && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++cache_evictions_;
  }
  CacheEntry& entry = cache_[deck.topology_signature];
  lru_.push_front(deck.topology_signature);
  entry.lru_pos = lru_.begin();
  entry.circuit = instantiate(deck, registry_, {}, &entry.model_memo);
  return entry;
}

core::Json SimSession::run_deck(const Deck& deck,
                                const phys::CancelToken* cancel) {
  ++decks_run_;
  obs::ScopedSpan deck_span("deck");
  bool cache_hit = false;
  CacheEntry& entry = entry_for(deck, &cache_hit);
  ++entry.uses;
  DeckConfig cfg = config_from(deck);
  cfg.solver.cancel = cancel;  // polled by every Newton/transient/AC loop
  obs::PhaseTimes deck_phases;
  if (opts_.collect_phases) cfg.solver.phases = &deck_phases;

  auto doc = core::Json::object();
  doc.set("ok", true);
  if (!deck.title.empty()) doc.set("title", deck.title);

  {
    char hash[24];
    std::snprintf(hash, sizeof hash, "0x%016llx",
                  static_cast<unsigned long long>(deck.topology_hash));
    auto topo = core::Json::object();
    topo.set("hash", std::string(hash));
    topo.set("elements", static_cast<long>(deck.elements.size()));
    topo.set("nodes", entry.circuit->num_nodes());
    topo.set("cache_hit", cache_hit);
    doc.set("topology", std::move(topo));
  }

  auto steps = core::Json::array();
  for (const ParamEnv& overrides : expand_steps(deck)) {
    if (cancel) cancel->throw_if_stopped("session");
    const int sym0 = entry.workspace.mna.analyze_count();
    StepRunner runner(deck, cfg, *entry.circuit, entry.workspace, entry.ac,
                      registry_, entry.model_memo, overrides, opts_);
    steps.push(runner.run());
    if (obs::Tracer* trc = obs::tracer()) {
      // Marker for a symbolic re-analysis performed somewhere inside the
      // step (stamped after the fact; the event is a counter, not a span).
      if (entry.workspace.mna.analyze_count() > sym0) {
        trc->instant("symbolic-analyze", obs::now_ns());
      }
    }
  }
  doc.set("steps", std::move(steps));

  // Cache-effectiveness counters: the acceptance tests assert the pattern
  // and symbolic-analysis work happened once per topology, not per step.
  auto session = core::Json::object();
  session.set("decks_run", decks_run_);
  session.set("cache_entries", static_cast<long>(cache_.size()));
  session.set("cache_capacity", std::max(1, opts_.cache_capacity));
  session.set("cache_hits", cache_hits_);
  session.set("cache_misses", cache_misses_);
  session.set("cache_evictions", cache_evictions_);
  session.set("topology_uses", entry.uses);
  session.set("mna_pattern_builds", entry.workspace.mna.build_count());
  session.set("symbolic_analyses", entry.workspace.mna.analyze_count());
  session.set("ac_symbolic_analyses", entry.ac.analyze_count());
  if (deck_phases.any()) {
    // Only present when phase collection ran and measured something, so
    // default-session documents stay byte-identical to earlier releases.
    auto phase = core::Json::object();
    phase.set("stamp", deck_phases.stamp_ns);
    phase.set("eval", deck_phases.eval_ns);
    phase.set("factor", deck_phases.factor_ns);
    phase.set("solve", deck_phases.solve_ns);
    session.set("phase_ns", std::move(phase));
    phases_.add(deck_phases);
  }
  doc.set("session", std::move(session));
  return doc;
}

core::Json SimSession::run_deck_text(const std::string& text,
                                     const phys::CancelToken* cancel) {
  try {
    const Deck deck = parse_deck(text, registry_);
    return run_deck(deck, cancel);
  } catch (const phys::CancelledError& e) {
    auto err = core::Json::object();
    err.set("type", e.deadline_expired() ? "timeout" : "cancelled");
    err.set("where", e.where());
    err.set("what", std::string(e.what()));
    auto doc = core::Json::object();
    doc.set("ok", false);
    doc.set("error", std::move(err));
    return doc;
  } catch (const ParseError& e) {
    auto err = core::Json::object();
    err.set("type", "parse");
    err.set("reason", e.reason());
    err.set("line", e.line());
    err.set("line_text", e.line_text());
    err.set("what", std::string(e.what()));
    auto doc = core::Json::object();
    doc.set("ok", false);
    doc.set("error", std::move(err));
    return doc;
  } catch (const SolveFailureError& e) {
    auto err = to_json(e.failure());
    err.set("type", "solve_failure");
    err.set("what", std::string(e.what()));
    auto doc = core::Json::object();
    doc.set("ok", false);
    doc.set("error", std::move(err));
    return doc;
  } catch (const phys::ConvergenceError& e) {
    // A convergence-class error that escaped the escalation ladder (e.g. a
    // model going non-finite during the very first stamp, before Newton
    // starts).  Still a solver outcome, not an internal fault — classify
    // it the same way regardless of where in the pipeline it surfaced.
    auto err = core::Json::object();
    err.set("type", "solve_failure");
    err.set("what", std::string(e.what()));
    auto doc = core::Json::object();
    doc.set("ok", false);
    doc.set("error", std::move(err));
    return doc;
  } catch (const std::exception& e) {
    auto err = core::Json::object();
    err.set("type", "internal");
    err.set("what", std::string(e.what()));
    auto doc = core::Json::object();
    doc.set("ok", false);
    doc.set("error", std::move(err));
    return doc;
  }
}

}  // namespace carbon::spice
