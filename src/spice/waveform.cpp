#include "spice/waveform.h"

#include <algorithm>
#include <cmath>

#include "phys/require.h"

namespace carbon::spice {

PulseWave::PulseWave(double v1, double v2, double delay_s, double rise_s,
                     double fall_s, double width_s, double period_s)
    : v1_(v1), v2_(v2), delay_(delay_s), rise_(rise_s), fall_(fall_s),
      width_(width_s), period_(period_s) {
  CARBON_REQUIRE(rise_s > 0.0 && fall_s > 0.0,
                 "pulse edges must have finite slew");
  CARBON_REQUIRE(period_s >= rise_s + fall_s + width_s,
                 "pulse period shorter than one cycle");
}

double PulseWave::value(double t_s) const {
  if (t_s <= delay_) return v1_;
  const double t = std::fmod(t_s - delay_, period_);
  if (t < rise_) return v1_ + (v2_ - v1_) * t / rise_;
  if (t < rise_ + width_) return v2_;
  if (t < rise_ + width_ + fall_) {
    return v2_ + (v1_ - v2_) * (t - rise_ - width_) / fall_;
  }
  return v1_;
}

void PulseWave::breakpoints(double t_stop, std::vector<double>& out) const {
  // One corner set per period until t_stop; capped so a pathological
  // period/t_stop ratio cannot explode the list (beyond the cap the LTE
  // controller re-finds the edges by rejection, just less cheaply).
  constexpr int kMaxPeriods = 100000;
  for (int k = 0; k < kMaxPeriods; ++k) {
    const double base = delay_ + k * period_;
    if (base >= t_stop) break;
    out.push_back(base);
    out.push_back(base + rise_);
    out.push_back(base + rise_ + width_);
    out.push_back(base + rise_ + width_ + fall_);
  }
}

PwlWave::PwlWave(std::vector<std::pair<double, double>> points)
    : pts_(std::move(points)) {
  CARBON_REQUIRE(pts_.size() >= 2, "PWL needs at least two points");
  for (size_t i = 1; i < pts_.size(); ++i) {
    CARBON_REQUIRE(pts_[i].first > pts_[i - 1].first,
                   "PWL times must be strictly increasing");
  }
}

double PwlWave::value(double t_s) const {
  if (t_s <= pts_.front().first) return pts_.front().second;
  if (t_s >= pts_.back().first) return pts_.back().second;
  const auto it = std::upper_bound(
      pts_.begin(), pts_.end(), t_s,
      [](double t, const auto& p) { return t < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double f = (t_s - lo.first) / (hi.first - lo.first);
  return lo.second + f * (hi.second - lo.second);
}

void PwlWave::breakpoints(double /*t_stop*/, std::vector<double>& out) const {
  for (const auto& p : pts_) out.push_back(p.first);
}

SinWave::SinWave(double offset, double amplitude, double freq_hz,
                 double delay_s, double damping)
    : offset_(offset), amplitude_(amplitude), freq_(freq_hz), delay_(delay_s),
      damping_(damping) {
  CARBON_REQUIRE(freq_hz > 0.0, "frequency must be positive");
}

double SinWave::value(double t_s) const {
  if (t_s < delay_) return offset_;
  const double t = t_s - delay_;
  return offset_ + amplitude_ * std::exp(-damping_ * t) *
                       std::sin(2.0 * M_PI * freq_ * t);
}

void SinWave::breakpoints(double /*t_stop*/, std::vector<double>& out) const {
  if (delay_ > 0.0) out.push_back(delay_);
}

WaveformPtr dc(double value) { return std::make_shared<DcWave>(value); }

WaveformPtr pulse(double v1, double v2, double delay_s, double rise_s,
                  double fall_s, double width_s, double period_s) {
  return std::make_shared<PulseWave>(v1, v2, delay_s, rise_s, fall_s, width_s,
                                     period_s);
}

WaveformPtr pwl(std::vector<std::pair<double, double>> points) {
  return std::make_shared<PwlWave>(std::move(points));
}

WaveformPtr sine(double offset, double amplitude, double freq_hz,
                 double delay_s, double damping) {
  return std::make_shared<SinWave>(offset, amplitude, freq_hz, delay_s,
                                   damping);
}

}  // namespace carbon::spice
